// Package benchkit defines the hot-path kernel micro-benchmarks shared by
// the repo's `go test -bench` suite and the aegis-bench harness. Each
// Kernel is a standard testing.B benchmark body over a deterministic
// fixture; the harness runs them through testing.Benchmark to record
// per-kernel ns/op and allocs/op alongside the experiment wall-clock in
// the aegis-bench/v2 report, so a regression in one kernel is attributable
// directly instead of being smeared across an end-to-end experiment time.
//
// The fixture builders are exported and deterministic (fixed rng seeds),
// so the in-repo benchmarks and the harness measure exactly the same work.
package benchkit

import (
	"testing"

	"github.com/repro/aegis/internal/obfuscator"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/stats"
	"github.com/repro/aegis/internal/telemetry"
)

// PCARows builds a deterministic n×d sample matrix with a dominant
// direction, shaped like the profiler's per-event trace population.
func PCARows(n, d int) [][]float64 {
	r := rng.New(21).Split("pca-bench")
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, d)
		base := r.Gaussian(0, 3)
		for j := range row {
			row[j] = base*float64(j%7) + r.Gaussian(0, 1)
		}
		rows[i] = row
	}
	return rows
}

// PCASlab flattens PCARows(n, d) into the contiguous row-major block
// FitPCASlab consumes; the values are identical to the row form.
func PCASlab(n, d int) []float64 {
	rows := PCARows(n, d)
	slab := make([]float64, n*d)
	for i, row := range rows {
		copy(slab[i*d:(i+1)*d], row)
	}
	return slab
}

// BinnedPairs builds a deterministic correlated sample pair of the Fig. 9c
// shape (clean vs. noised leakage traces).
func BinnedPairs(n int) (xs, ys []float64) {
	r := rng.New(12).Split("binned-bench")
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := range xs {
		xs[i] = r.Gaussian(0, 1)
		ys[i] = xs[i]*0.7 + r.Gaussian(0, 0.5)
	}
	return xs, ys
}

// MIClasses builds k well-separated Gaussian secret classes for the MI
// quadrature kernel.
func MIClasses(k int) []stats.ClassModel {
	classes := make([]stats.ClassModel, k)
	for i := range classes {
		classes[i] = stats.ClassModel{
			Secret: string(rune('a' + i)),
			Dist:   stats.Gaussian{Mu: float64(i) * 2.5, Sigma: 1 + 0.2*float64(i)},
		}
	}
	return classes
}

// Kernel is one named hot-path micro-benchmark.
type Kernel struct {
	Name  string
	Bench func(b *testing.B)
}

// Kernels returns the per-kernel benchmark suite at the canonical fixture
// shapes (the profiler's 72×150 ranking block, the Fig. 9c 400×16
// histogram, the 6-class/600-step quadrature, the two DP draw paths).
func Kernels() []Kernel {
	return []Kernel{
		{Name: "fitpca", Bench: func(b *testing.B) {
			rows := PCARows(72, 150)
			var s stats.Scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.FitPCA(rows, 1); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Name: "fitpca_slab", Bench: func(b *testing.B) {
			slab := PCASlab(72, 150)
			var s stats.Scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.FitPCASlab(slab, 72, 150, 1); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Name: "binnedmi", Bench: func(b *testing.B) {
			xs, ys := BinnedPairs(400)
			var s stats.Scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.BinnedMI(xs, ys, 16); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Name: "mutualinfo", Bench: func(b *testing.B) {
			classes := MIClasses(6)
			var s stats.Scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.MutualInformation(classes, 600); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{Name: "draw_laplace", Bench: func(b *testing.B) {
			mech, err := obfuscator.NewLaplaceMechanism(1, 1500, rng.New(6).Split("lap"))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mech.Noise(int64(i), 0)
			}
		}},
		{Name: "draw_dstar", Bench: func(b *testing.B) {
			mech, err := obfuscator.NewDStarMechanism(1, 1500, rng.New(7).Split("dstar"))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Cycle ticks over a bounded window so the d* memo reaches
				// its plateau and stays there (steady-state draw cost, not
				// map growth).
				t := int64(i%2048) + 1
				mech.Commit(t, mech.Noise(t, 0))
			}
		}},
	}
}

// Result is one kernel's measured cost.
type Result struct {
	Name        string
	NsPerOp     float64
	AllocsPerOp int64
	BytesPerOp  int64
}

// Measure runs one kernel under testing.Benchmark (default ~1s of
// iterations) with telemetry disabled, matching the experiment harness's
// -telemetry=false configuration.
func Measure(k Kernel) Result {
	reg := telemetry.Default()
	was := reg.Enabled()
	reg.SetEnabled(false)
	defer reg.SetEnabled(was)
	r := testing.Benchmark(k.Bench)
	res := Result{Name: k.Name, AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp()}
	if r.N > 0 {
		res.NsPerOp = float64(r.T.Nanoseconds()) / float64(r.N)
	}
	return res
}

// MeasureAll measures every kernel in suite order.
func MeasureAll() []Result {
	ks := Kernels()
	out := make([]Result, 0, len(ks))
	for _, k := range ks {
		out = append(out, Measure(k))
	}
	return out
}
