package microarch

import (
	"errors"
	"testing"

	"github.com/repro/aegis/internal/isa"
	"github.com/repro/aegis/internal/rng"
)

func testCore(t *testing.T) *Core {
	t.Helper()
	return NewCore(0, DefaultCoreConfig(), nil) // nil noise: deterministic
}

func variantOf(t *testing.T, class isa.Class) isa.Variant {
	t.Helper()
	res := isa.Cleanup(isa.SpecAMDEpyc(1), isa.AMDEpycFeatures())
	for _, v := range res.Legal {
		if v.Class == class {
			return v
		}
	}
	t.Fatalf("no legal variant of class %v", class)
	return isa.Variant{}
}

func TestExecuteCountsInstructions(t *testing.T) {
	c := testCore(t)
	ctx := NewScratchContext(0x10000)
	v := variantOf(t, isa.ClassALU)
	for i := 0; i < 10; i++ {
		if err := c.Execute(v, ctx); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Counters().Instructions; got != 10 {
		t.Errorf("instructions = %d, want 10", got)
	}
	if c.Counters().UopsRetired < 10 {
		t.Errorf("uops = %d, want >= 10", c.Counters().UopsRetired)
	}
}

func TestLoadDispatchAndRefill(t *testing.T) {
	c := testCore(t)
	ctx := NewScratchContext(0x10000)
	load := variantOf(t, isa.ClassLoad)

	if err := c.Execute(load, ctx); err != nil {
		t.Fatal(err)
	}
	ctrs := c.Counters()
	if ctrs.LoadsDisp == 0 {
		t.Error("load dispatched no load µop")
	}
	// First access misses everywhere → refill from system + MAB alloc.
	if ctrs.RefillsFromSystem == 0 {
		t.Error("cold load did not refill from system")
	}
	if ctrs.MABAllocations == 0 {
		t.Error("cold load did not allocate a MAB entry")
	}

	before := c.Counters()
	if err := c.Execute(load, ctx); err != nil {
		t.Fatal(err)
	}
	delta := c.Counters().Sub(before)
	if delta.L1DMisses != 0 {
		t.Error("warm load missed L1D")
	}
}

func TestFlushThenLoadRefills(t *testing.T) {
	// The fundamental reset/trigger mechanism of the fuzzer: CLFLUSH
	// evicts the scratch line; the next load must miss and refill.
	c := testCore(t)
	ctx := NewScratchContext(0x10000)
	load := variantOf(t, isa.ClassLoad)
	flush := variantOf(t, isa.ClassFlush)

	// Warm the line.
	if err := c.Execute(load, ctx); err != nil {
		t.Fatal(err)
	}
	before := c.Counters()
	if err := c.Execute(flush, ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Execute(load, ctx); err != nil {
		t.Fatal(err)
	}
	delta := c.Counters().Sub(before)
	if delta.CacheFlushes != 1 {
		t.Errorf("flushes = %d, want 1", delta.CacheFlushes)
	}
	if delta.RefillsFromSystem != 1 {
		t.Errorf("refills from system = %d, want 1 (flush must evict L2 too)", delta.RefillsFromSystem)
	}
}

func TestPrefetchWarmsCache(t *testing.T) {
	c := testCore(t)
	ctx := NewScratchContext(0x20000)
	prefetch := variantOf(t, isa.ClassPrefetch)
	load := variantOf(t, isa.ClassLoad)

	if err := c.Execute(prefetch, ctx); err != nil {
		t.Fatal(err)
	}
	before := c.Counters()
	if err := c.Execute(load, ctx); err != nil {
		t.Fatal(err)
	}
	delta := c.Counters().Sub(before)
	if delta.L1DMisses != 0 {
		t.Error("load missed after prefetch of same line")
	}
}

func TestStoreCountsWrites(t *testing.T) {
	c := testCore(t)
	ctx := NewScratchContext(0x30000)
	store := variantOf(t, isa.ClassStore)
	if err := c.Execute(store, ctx); err != nil {
		t.Fatal(err)
	}
	ctrs := c.Counters()
	if ctrs.StoresDisp == 0 || ctrs.L1DWrites == 0 || ctrs.MemWrites == 0 {
		t.Errorf("store accounting: dispatches=%d writes=%d mem=%d",
			ctrs.StoresDisp, ctrs.L1DWrites, ctrs.MemWrites)
	}
}

func TestVectorClassCounters(t *testing.T) {
	c := testCore(t)
	ctx := NewScratchContext(0x40000)
	for _, tc := range []struct {
		class isa.Class
		get   func(Counters) uint64
		name  string
	}{
		{isa.ClassSSE, func(c Counters) uint64 { return c.SSEOps }, "sse"},
		{isa.ClassAVX, func(c Counters) uint64 { return c.AVXOps }, "avx"},
		{isa.ClassX87, func(c Counters) uint64 { return c.X87Ops }, "x87"},
		{isa.ClassDiv, func(c Counters) uint64 { return c.DivOps }, "div"},
		{isa.ClassMul, func(c Counters) uint64 { return c.MulOps }, "mul"},
		{isa.ClassCrypto, func(c Counters) uint64 { return c.CryptoOps }, "crypto"},
		{isa.ClassSerial, func(c Counters) uint64 { return c.SerializeOps }, "serialize"},
		{isa.ClassFence, func(c Counters) uint64 { return c.Fences }, "fence"},
		{isa.ClassString, func(c Counters) uint64 { return c.StringOps }, "string"},
		{isa.ClassBit, func(c Counters) uint64 { return c.BitOps }, "bit"},
	} {
		before := tc.get(c.Counters())
		if err := c.Execute(variantOf(t, tc.class), ctx); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if tc.get(c.Counters()) <= before {
			t.Errorf("%s counter did not advance", tc.name)
		}
	}
}

func TestBranchExecution(t *testing.T) {
	c := testCore(t)
	r := rng.New(5)
	ctx := NewWorkloadContext(0x50000, 1<<16, r)
	branch := variantOf(t, isa.ClassBranch)
	for i := 0; i < 200; i++ {
		if err := c.Execute(branch, ctx); err != nil {
			t.Fatal(err)
		}
	}
	ctrs := c.Counters()
	if ctrs.BranchesRet != 200 {
		t.Errorf("branches retired = %d, want 200", ctrs.BranchesRet)
	}
	if ctrs.BranchMispred == 0 {
		t.Error("no mispredictions on 60/40 random branches")
	}
	if ctrs.BranchMispred >= ctrs.BranchesRet {
		t.Error("every branch mispredicted")
	}
}

func TestIllegalExecutionFaults(t *testing.T) {
	c := testCore(t)
	ctx := NewScratchContext(0x60000)
	reserved := isa.Variant{Mnemonic: "DB 0x0F", Reserved: true, Class: isa.ClassInvalid}
	err := c.Execute(reserved, ctx)
	var illegal *ErrIllegalInstruction
	if !errors.As(err, &illegal) {
		t.Fatalf("err = %v, want ErrIllegalInstruction", err)
	}
	if illegal.Fault != isa.FaultUD {
		t.Errorf("fault = %v, want #UD", illegal.Fault)
	}

	priv := isa.Variant{Mnemonic: "RDMSR", Privileged: true, Class: isa.ClassSystem}
	err = c.Execute(priv, ctx)
	if !errors.As(err, &illegal) || illegal.Fault != isa.FaultGP {
		t.Errorf("privileged fault = %v, want #GP", err)
	}
}

func TestExecuteSequenceStopsAtFault(t *testing.T) {
	c := testCore(t)
	ctx := NewScratchContext(0x70000)
	seq := []isa.Variant{
		variantOf(t, isa.ClassALU),
		{Mnemonic: "BAD", Reserved: true, Class: isa.ClassInvalid},
		variantOf(t, isa.ClassALU),
	}
	if err := c.ExecuteSequence(seq, ctx); err == nil {
		t.Fatal("sequence with fault returned nil error")
	}
	if got := c.Counters().Instructions; got != 1 {
		t.Errorf("instructions = %d, want 1 (stop at fault)", got)
	}
}

func TestWorkingSetDrivesMissRate(t *testing.T) {
	// Larger working sets must produce more L1D misses, the mechanism
	// that differentiates workload signatures.
	missRate := func(ws uint64) float64 {
		c := testCore(t)
		r := rng.New(9)
		ctx := NewWorkloadContext(0x100000, ws, r)
		load := variantOf(t, isa.ClassLoad)
		for i := 0; i < 5000; i++ {
			if err := c.Execute(load, ctx); err != nil {
				t.Fatal(err)
			}
		}
		ctrs := c.Counters()
		return float64(ctrs.L1DMisses) / float64(ctrs.L1DAccesses)
	}
	small := missRate(16 << 10) // fits in 32K L1D
	large := missRate(8 << 20)  // far exceeds L2
	if small >= large {
		t.Errorf("miss rates: small-ws %v >= large-ws %v", small, large)
	}
	if large < 0.5 {
		t.Errorf("large working set miss rate = %v, want > 0.5", large)
	}
}

func TestInterruptPollutesCounters(t *testing.T) {
	c := testCore(t)
	before := c.Counters()
	c.Interrupt()
	delta := c.Counters().Sub(before)
	if delta.Interrupts != 1 || delta.Instructions == 0 {
		t.Errorf("interrupt delta = %+v", delta)
	}
}

func TestInterruptNoiseRate(t *testing.T) {
	cfg := DefaultCoreConfig()
	cfg.InterruptRate = 1e5 // 10% per instruction: clearly visible
	c := NewCore(0, cfg, rng.New(7).Split("noise"))
	ctx := NewScratchContext(0x80000)
	alu := variantOf(t, isa.ClassALU)
	for i := 0; i < 1000; i++ {
		if err := c.Execute(alu, ctx); err != nil {
			t.Fatal(err)
		}
	}
	if c.Counters().Interrupts == 0 {
		t.Error("no interrupts at 10% rate over 1000 instructions")
	}
}

func TestCountersVectorMatchesSignalNames(t *testing.T) {
	var c Counters
	if len(c.Vector()) != NumSignals {
		t.Fatalf("Vector length %d != NumSignals %d", len(c.Vector()), NumSignals)
	}
	if len(SignalNames()) != NumSignals {
		t.Fatalf("SignalNames length mismatch")
	}
}

func TestCountersSub(t *testing.T) {
	a := Counters{Instructions: 10, Cycles: 100, L1DMisses: 3}
	b := Counters{Instructions: 4, Cycles: 40, L1DMisses: 1}
	d := a.Sub(b)
	if d.Instructions != 6 || d.Cycles != 60 || d.L1DMisses != 2 {
		t.Errorf("Sub = %+v", d)
	}
}

func TestContextSwitchFlushesTLB(t *testing.T) {
	c := testCore(t)
	ctx := NewScratchContext(0x90000)
	load := variantOf(t, isa.ClassLoad)
	if err := c.Execute(load, ctx); err != nil {
		t.Fatal(err)
	}
	c.ContextSwitch()
	before := c.Counters()
	if err := c.Execute(load, ctx); err != nil {
		t.Fatal(err)
	}
	delta := c.Counters().Sub(before)
	if delta.DTLBMisses != 1 {
		t.Errorf("post-context-switch load DTLB misses = %d, want 1", delta.DTLBMisses)
	}
}
