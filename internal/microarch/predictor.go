package microarch

// BranchPredictor is a table of 2-bit saturating counters indexed by a hash
// of the branch address, the classic bimodal predictor.
type BranchPredictor struct {
	table []uint8

	predictions uint64
	mispredicts uint64
}

// NewBranchPredictor builds a predictor with the given table size (rounded
// up to at least 16 entries).
func NewBranchPredictor(entries int) *BranchPredictor {
	if entries < 16 {
		entries = 16
	}
	return &BranchPredictor{table: make([]uint8, entries)}
}

func (b *BranchPredictor) index(pc uint64) int {
	// Mix the PC so nearby branches don't systematically alias.
	pc ^= pc >> 16
	pc *= 0x45d9f3b3335b369d
	pc ^= pc >> 32
	return int(pc % uint64(len(b.table)))
}

// Predict returns the predicted direction for the branch at pc.
func (b *BranchPredictor) Predict(pc uint64) bool {
	return b.table[b.index(pc)] >= 2
}

// Resolve records the actual outcome, updates the counter, and reports
// whether the prediction was wrong.
func (b *BranchPredictor) Resolve(pc uint64, taken bool) bool {
	idx := b.index(pc)
	predicted := b.table[idx] >= 2
	b.predictions++
	mispredicted := predicted != taken
	if mispredicted {
		b.mispredicts++
	}
	if taken {
		if b.table[idx] < 3 {
			b.table[idx]++
		}
	} else {
		if b.table[idx] > 0 {
			b.table[idx]--
		}
	}
	return mispredicted
}

// Stats returns total predictions and mispredictions.
func (b *BranchPredictor) Stats() (predictions, mispredicts uint64) {
	return b.predictions, b.mispredicts
}
