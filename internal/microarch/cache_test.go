package microarch

import (
	"testing"
	"testing/quick"

	"github.com/repro/aegis/internal/rng"
)

func TestCacheHitAfterFill(t *testing.T) {
	c := NewCache(CacheConfig{Sets: 4, Ways: 2, LineSize: 64})
	if c.Access(0x1000) {
		t.Error("first access hit an empty cache")
	}
	if !c.Access(0x1000) {
		t.Error("second access to same address missed")
	}
	if !c.Access(0x1010) {
		t.Error("access within same line missed")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 1 set, 2 ways: the third distinct line evicts the least recent.
	c := NewCache(CacheConfig{Sets: 1, Ways: 2, LineSize: 64})
	c.Access(0x0)  // fill A
	c.Access(0x40) // fill B
	c.Access(0x0)  // touch A; B is now LRU
	c.Access(0x80) // fill C, evicting B
	if !c.Contains(0x0) {
		t.Error("A was evicted but is most-recently used")
	}
	if c.Contains(0x40) {
		t.Error("B survived but was LRU")
	}
	if !c.Contains(0x80) {
		t.Error("C missing after fill")
	}
}

func TestCacheFlush(t *testing.T) {
	c := NewCache(CacheConfig{Sets: 8, Ways: 2, LineSize: 64})
	c.Access(0x2000)
	if !c.Flush(0x2000) {
		t.Error("flush of resident line returned false")
	}
	if c.Contains(0x2000) {
		t.Error("line still resident after flush")
	}
	if c.Flush(0x2000) {
		t.Error("flush of absent line returned true")
	}
}

func TestCacheFlushAll(t *testing.T) {
	c := NewCache(CacheConfig{Sets: 8, Ways: 2, LineSize: 64})
	for i := uint64(0); i < 16; i++ {
		c.Access(i * 64)
	}
	c.FlushAll()
	for i := uint64(0); i < 16; i++ {
		if c.Contains(i * 64) {
			t.Fatalf("line %d survived FlushAll", i)
		}
	}
}

func TestCacheInsertDoesNotCountAccess(t *testing.T) {
	c := NewCache(CacheConfig{Sets: 4, Ways: 2, LineSize: 64})
	c.Insert(0x3000)
	accesses, misses, _ := c.Stats()
	if accesses != 0 || misses != 0 {
		t.Errorf("Insert counted as access: a=%d m=%d", accesses, misses)
	}
	if !c.Contains(0x3000) {
		t.Error("inserted line not resident")
	}
}

func TestCacheStats(t *testing.T) {
	c := NewCache(CacheConfig{Sets: 1, Ways: 1, LineSize: 64})
	c.Access(0x0)
	c.Access(0x0)
	c.Access(0x40) // evicts
	accesses, misses, evictions := c.Stats()
	if accesses != 3 || misses != 2 || evictions != 1 {
		t.Errorf("stats = %d/%d/%d, want 3/2/1", accesses, misses, evictions)
	}
}

func TestCacheWorkingSetProperty(t *testing.T) {
	// Property: a working set no larger than one set's capacity never
	// misses after the first pass.
	if err := quick.Check(func(seed uint64) bool {
		c := NewCache(CacheConfig{Sets: 16, Ways: 4, LineSize: 64})
		r := rng.New(seed)
		// 4 lines all in set 0 (stride = 16*64).
		addrs := make([]uint64, 4)
		for i := range addrs {
			addrs[i] = uint64(i) * 16 * 64
		}
		for _, a := range addrs {
			c.Access(a)
		}
		for i := 0; i < 100; i++ {
			if !c.Access(addrs[r.Intn(len(addrs))]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCacheContainsInvariant(t *testing.T) {
	// Property: immediately after Access(a), Contains(a) is true.
	if err := quick.Check(func(addrs []uint64) bool {
		c := NewCache(CacheConfig{Sets: 8, Ways: 2, LineSize: 64})
		for _, a := range addrs {
			c.Access(a)
			if !c.Contains(a) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(4, 4096)
	if tlb.Access(0x1000) {
		t.Error("empty TLB hit")
	}
	if !tlb.Access(0x1fff) {
		t.Error("same page missed")
	}
	if tlb.Access(0x2000) {
		t.Error("new page hit")
	}
}

func TestTLBLRUReplacement(t *testing.T) {
	tlb := NewTLB(2, 4096)
	tlb.Access(0x0000) // page 0
	tlb.Access(0x1000) // page 1
	tlb.Access(0x0000) // touch page 0
	tlb.Access(0x2000) // page 2 evicts page 1
	if !tlb.Access(0x0000) {
		t.Error("page 0 evicted despite recent use")
	}
	if tlb.Access(0x1000) {
		t.Error("page 1 survived but was LRU")
	}
}

func TestTLBFlush(t *testing.T) {
	tlb := NewTLB(8, 4096)
	tlb.Access(0x5000)
	tlb.Flush()
	if tlb.Access(0x5000) {
		t.Error("entry survived flush")
	}
}

func TestBranchPredictorLearnsBias(t *testing.T) {
	bp := NewBranchPredictor(64)
	pc := uint64(0x400100)
	// Always-taken branch: after warmup, mispredict rate must vanish.
	for i := 0; i < 10; i++ {
		bp.Resolve(pc, true)
	}
	mispredicts := 0
	for i := 0; i < 100; i++ {
		if bp.Resolve(pc, true) {
			mispredicts++
		}
	}
	if mispredicts != 0 {
		t.Errorf("biased branch mispredicted %d/100 after warmup", mispredicts)
	}
}

func TestBranchPredictorAlternating(t *testing.T) {
	bp := NewBranchPredictor(64)
	pc := uint64(0x400200)
	mispredicts := 0
	taken := false
	for i := 0; i < 100; i++ {
		taken = !taken
		if bp.Resolve(pc, taken) {
			mispredicts++
		}
	}
	// A bimodal predictor does badly on alternating patterns.
	if mispredicts < 30 {
		t.Errorf("alternating branch mispredicted only %d/100", mispredicts)
	}
}

func TestBranchPredictorStats(t *testing.T) {
	bp := NewBranchPredictor(16)
	for i := 0; i < 10; i++ {
		bp.Resolve(uint64(i)*4096, i%2 == 0)
	}
	preds, _ := bp.Stats()
	if preds != 10 {
		t.Errorf("predictions = %d, want 10", preds)
	}
}

func TestZeroConfigNormalised(t *testing.T) {
	c := NewCache(CacheConfig{})
	if c.Access(0) {
		t.Error("zero-config cache hit on first access")
	}
	if !c.Access(0) {
		t.Error("zero-config cache missed on second access")
	}
	tlb := NewTLB(0, 0)
	tlb.Access(0x1000)
}
