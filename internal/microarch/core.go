package microarch

import (
	"fmt"

	"github.com/repro/aegis/internal/isa"
	"github.com/repro/aegis/internal/rng"
)

// Counters is the raw micro-event ledger of a core. Every field is a
// monotonically increasing count; the hpc package derives performance
// counter events as (possibly weighted) functions of deltas of these
// fields.
type Counters struct {
	Cycles            uint64
	Instructions      uint64
	UopsRetired       uint64
	LoadsDisp         uint64 // load micro-ops dispatched
	StoresDisp        uint64 // store micro-ops dispatched
	L1DAccesses       uint64
	L1DMisses         uint64
	L1DWrites         uint64
	RefillsFromL2     uint64 // L1D refills satisfied by L2
	RefillsFromSystem uint64 // L1D refills that went to memory
	L1IAccesses       uint64
	L1IMisses         uint64
	L2Accesses        uint64
	L2Misses          uint64
	MABAllocations    uint64 // miss-address-buffer allocations
	DTLBAccesses      uint64
	DTLBMisses        uint64
	ITLBMisses        uint64
	BranchesRet       uint64
	BranchMispred     uint64
	X87Ops            uint64
	SSEOps            uint64 // MMX+SSE family
	AVXOps            uint64
	MulOps            uint64
	DivOps            uint64
	BitOps            uint64
	StringOps         uint64
	CryptoOps         uint64
	Prefetches        uint64
	CacheFlushes      uint64
	Fences            uint64
	SerializeOps      uint64
	StackOps          uint64
	MemReads          uint64
	MemWrites         uint64
	PageFaults        uint64
	Interrupts        uint64
	CtxSwitches       uint64
}

// Sub returns the element-wise difference c - prev.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		Cycles:            c.Cycles - prev.Cycles,
		Instructions:      c.Instructions - prev.Instructions,
		UopsRetired:       c.UopsRetired - prev.UopsRetired,
		LoadsDisp:         c.LoadsDisp - prev.LoadsDisp,
		StoresDisp:        c.StoresDisp - prev.StoresDisp,
		L1DAccesses:       c.L1DAccesses - prev.L1DAccesses,
		L1DMisses:         c.L1DMisses - prev.L1DMisses,
		L1DWrites:         c.L1DWrites - prev.L1DWrites,
		RefillsFromL2:     c.RefillsFromL2 - prev.RefillsFromL2,
		RefillsFromSystem: c.RefillsFromSystem - prev.RefillsFromSystem,
		L1IAccesses:       c.L1IAccesses - prev.L1IAccesses,
		L1IMisses:         c.L1IMisses - prev.L1IMisses,
		L2Accesses:        c.L2Accesses - prev.L2Accesses,
		L2Misses:          c.L2Misses - prev.L2Misses,
		MABAllocations:    c.MABAllocations - prev.MABAllocations,
		DTLBAccesses:      c.DTLBAccesses - prev.DTLBAccesses,
		DTLBMisses:        c.DTLBMisses - prev.DTLBMisses,
		ITLBMisses:        c.ITLBMisses - prev.ITLBMisses,
		BranchesRet:       c.BranchesRet - prev.BranchesRet,
		BranchMispred:     c.BranchMispred - prev.BranchMispred,
		X87Ops:            c.X87Ops - prev.X87Ops,
		SSEOps:            c.SSEOps - prev.SSEOps,
		AVXOps:            c.AVXOps - prev.AVXOps,
		MulOps:            c.MulOps - prev.MulOps,
		DivOps:            c.DivOps - prev.DivOps,
		BitOps:            c.BitOps - prev.BitOps,
		StringOps:         c.StringOps - prev.StringOps,
		CryptoOps:         c.CryptoOps - prev.CryptoOps,
		Prefetches:        c.Prefetches - prev.Prefetches,
		CacheFlushes:      c.CacheFlushes - prev.CacheFlushes,
		Fences:            c.Fences - prev.Fences,
		SerializeOps:      c.SerializeOps - prev.SerializeOps,
		StackOps:          c.StackOps - prev.StackOps,
		MemReads:          c.MemReads - prev.MemReads,
		MemWrites:         c.MemWrites - prev.MemWrites,
		PageFaults:        c.PageFaults - prev.PageFaults,
		Interrupts:        c.Interrupts - prev.Interrupts,
		CtxSwitches:       c.CtxSwitches - prev.CtxSwitches,
	}
}

// Vector flattens the counters into a fixed-order float slice; the hpc
// event catalog addresses raw signals by these indices.
func (c Counters) Vector() []float64 {
	return c.VectorInto(nil)
}

// VectorInto writes the counters into dst in Vector order and returns the
// filled slice. dst's backing array is reused when it has capacity for
// NumSignals elements, so per-tick readers can flatten deltas without
// allocating.
func (c Counters) VectorInto(dst []float64) []float64 {
	if cap(dst) < NumSignals {
		dst = make([]float64, NumSignals)
	}
	dst = dst[:NumSignals]
	dst[0] = float64(c.Cycles)
	dst[1] = float64(c.Instructions)
	dst[2] = float64(c.UopsRetired)
	dst[3] = float64(c.LoadsDisp)
	dst[4] = float64(c.StoresDisp)
	dst[5] = float64(c.L1DAccesses)
	dst[6] = float64(c.L1DMisses)
	dst[7] = float64(c.L1DWrites)
	dst[8] = float64(c.RefillsFromL2)
	dst[9] = float64(c.RefillsFromSystem)
	dst[10] = float64(c.L1IAccesses)
	dst[11] = float64(c.L1IMisses)
	dst[12] = float64(c.L2Accesses)
	dst[13] = float64(c.L2Misses)
	dst[14] = float64(c.MABAllocations)
	dst[15] = float64(c.DTLBAccesses)
	dst[16] = float64(c.DTLBMisses)
	dst[17] = float64(c.ITLBMisses)
	dst[18] = float64(c.BranchesRet)
	dst[19] = float64(c.BranchMispred)
	dst[20] = float64(c.X87Ops)
	dst[21] = float64(c.SSEOps)
	dst[22] = float64(c.AVXOps)
	dst[23] = float64(c.MulOps)
	dst[24] = float64(c.DivOps)
	dst[25] = float64(c.BitOps)
	dst[26] = float64(c.StringOps)
	dst[27] = float64(c.CryptoOps)
	dst[28] = float64(c.Prefetches)
	dst[29] = float64(c.CacheFlushes)
	dst[30] = float64(c.Fences)
	dst[31] = float64(c.SerializeOps)
	dst[32] = float64(c.StackOps)
	dst[33] = float64(c.MemReads)
	dst[34] = float64(c.MemWrites)
	dst[35] = float64(c.PageFaults)
	dst[36] = float64(c.Interrupts)
	dst[37] = float64(c.CtxSwitches)
	return dst
}

// SignalNames lists the raw signal names in Vector order.
func SignalNames() []string {
	return []string{
		"cycles", "instructions", "uops_retired",
		"loads_dispatched", "stores_dispatched",
		"l1d_accesses", "l1d_misses", "l1d_writes",
		"l1d_refills_l2", "l1d_refills_system",
		"l1i_accesses", "l1i_misses",
		"l2_accesses", "l2_misses",
		"mab_allocations",
		"dtlb_accesses", "dtlb_misses", "itlb_misses",
		"branches_retired", "branch_mispredicts",
		"x87_ops", "sse_ops", "avx_ops",
		"mul_ops", "div_ops", "bit_ops",
		"string_ops", "crypto_ops",
		"prefetches", "cache_flushes", "fences",
		"serialize_ops", "stack_ops",
		"mem_reads", "mem_writes",
		"page_faults", "interrupts", "ctx_switches",
	}
}

// NumSignals is the length of Counters.Vector().
var NumSignals = len(SignalNames())

// ExecContext supplies the dynamic operand values of an execution stream:
// where memory operands point and which way branches go. The fuzzer uses a
// fixed scratch page so reset/trigger sequences interact through the cache;
// workloads use larger working sets.
type ExecContext struct {
	// Base is the starting address of the data region.
	Base uint64
	// WorkingSet is the size in bytes of the region addresses are drawn
	// from. Zero means every access hits the same line (the fuzzer's
	// pre-allocated scratch page behaviour).
	WorkingSet uint64
	// PC is the current instruction address; it advances per instruction.
	PC uint64
	// Rand drives address and branch-direction draws; nil makes the
	// context fully deterministic (always offset 0, branches taken).
	Rand *rng.Source
}

// NewScratchContext returns the fuzzer's execution context: a dedicated
// writable data page, every memory operand resolving to the same line
// (paper §VI-D: registers used as memory operands are initialised to the
// address of a pre-allocated data page).
func NewScratchContext(base uint64) *ExecContext {
	return &ExecContext{Base: base, PC: 0x400000}
}

// NewWorkloadContext returns a context whose memory operands range over a
// working set, producing realistic cache behaviour.
func NewWorkloadContext(base, workingSet uint64, r *rng.Source) *ExecContext {
	return &ExecContext{Base: base, WorkingSet: workingSet, PC: 0x400000, Rand: r}
}

// dataAddr picks the next memory operand address.
func (e *ExecContext) dataAddr() uint64 {
	if e.WorkingSet == 0 || e.Rand == nil {
		return e.Base
	}
	return e.Base + e.Rand.Uint64()%e.WorkingSet
}

// branchTaken picks the direction of a conditional branch.
func (e *ExecContext) branchTaken() bool {
	if e.Rand == nil {
		return true
	}
	return e.Rand.Bernoulli(0.6)
}

// CoreConfig sizes the micro-architecture of a simulated core. The defaults
// approximate a Zen-2 class core (AMD EPYC 7252).
type CoreConfig struct {
	L1DSets, L1DWays int
	L1ISets, L1IWays int
	L2Sets, L2Ways   int
	LineSize         int
	TLBEntries       int
	PredictorEntries int
	// InterruptRate is the expected number of spurious hardware
	// interrupts per million instructions; interrupts flush the TLB and
	// pollute counters, modelling the paper's C2 non-determinism.
	InterruptRate float64
}

// DefaultCoreConfig returns the Zen-2 class configuration.
func DefaultCoreConfig() CoreConfig {
	return CoreConfig{
		L1DSets: 64, L1DWays: 8,
		L1ISets: 64, L1IWays: 8,
		L2Sets: 1024, L2Ways: 8,
		LineSize:         64,
		TLBEntries:       64,
		PredictorEntries: 4096,
		InterruptRate:    30,
	}
}

// Core simulates one physical CPU core.
type Core struct {
	ID   int
	L1D  *Cache
	L1I  *Cache
	L2   *Cache
	TLB  *TLB
	BP   *BranchPredictor
	ctrs Counters

	interruptRate float64
	noise         *rng.Source
}

// NewCore builds a core with the given configuration and noise stream.
func NewCore(id int, cfg CoreConfig, noise *rng.Source) *Core {
	return NewCoreWithL2(id, cfg, noise, nil)
}

// NewCoreWithL2 builds a core that uses the given L2 cache instead of a
// private one; passing the same cache to two cores models a shared L2
// complex, the substrate of cross-core cache-occupancy side channels. A
// nil shared cache allocates a private L2.
func NewCoreWithL2(id int, cfg CoreConfig, noise *rng.Source, sharedL2 *Cache) *Core {
	l2 := sharedL2
	if l2 == nil {
		l2 = NewCache(CacheConfig{Name: "L2", Sets: cfg.L2Sets, Ways: cfg.L2Ways, LineSize: cfg.LineSize})
	}
	return &Core{
		ID:  id,
		L1D: NewCache(CacheConfig{Name: "L1D", Sets: cfg.L1DSets, Ways: cfg.L1DWays, LineSize: cfg.LineSize}),
		L1I: NewCache(CacheConfig{Name: "L1I", Sets: cfg.L1ISets, Ways: cfg.L1IWays, LineSize: cfg.LineSize}),
		L2:  l2,
		TLB: NewTLB(cfg.TLBEntries, 4096),
		BP:  NewBranchPredictor(cfg.PredictorEntries),

		interruptRate: cfg.InterruptRate,
		noise:         noise,
	}
}

// Counters returns a snapshot of the core's raw counters.
func (c *Core) Counters() Counters { return c.ctrs }

// ErrIllegalInstruction reports execution of a variant that faults on this
// core; the fuzzer's cleanup step is expected to have removed them.
type ErrIllegalInstruction struct {
	Variant isa.Variant
	Fault   isa.FaultKind
}

func (e *ErrIllegalInstruction) Error() string {
	return fmt.Sprintf("microarch: %s faults with %s", e.Variant.Key(), e.Fault)
}

// Execute retires one instruction variant in the given context, updating
// caches, predictor and counters mechanistically. It returns an error for
// variants that fault (reserved encodings, privileged instructions).
func (c *Core) Execute(v isa.Variant, ctx *ExecContext) error {
	if v.Reserved || v.PageFaults || v.Privileged || v.Class == isa.ClassIO || v.Class == isa.ClassInvalid {
		kind := isa.FaultUD
		switch {
		case v.PageFaults:
			kind = isa.FaultPF
			c.ctrs.PageFaults++
		case v.Privileged, v.Class == isa.ClassIO:
			kind = isa.FaultGP
		}
		return &ErrIllegalInstruction{Variant: v, Fault: kind}
	}

	ctx.PC += 4
	c.ctrs.Instructions++
	uops := v.Uops
	if uops < 1 {
		uops = 1
	}
	c.ctrs.UopsRetired += uint64(uops)
	cycles := uint64(1)

	// Instruction fetch.
	if !c.L1I.Access(ctx.PC) {
		c.ctrs.L1IMisses++
		c.ctrs.L2Accesses++
		if !c.L2.Access(ctx.PC) {
			c.ctrs.L2Misses++
			cycles += 40
		} else {
			cycles += 8
		}
	}
	c.ctrs.L1IAccesses++

	// Memory reads.
	for i := 0; i < v.MemReads; i++ {
		cycles += c.dataAccess(ctx.dataAddr(), false)
	}
	// Memory writes.
	for i := 0; i < v.MemWrites; i++ {
		cycles += c.dataAccess(ctx.dataAddr(), true)
	}

	// Class-specific behaviour.
	switch v.Class {
	case isa.ClassALU, isa.ClassNop:
		// Plain retirement.
	case isa.ClassMul:
		c.ctrs.MulOps++
		cycles += 2
	case isa.ClassDiv:
		c.ctrs.DivOps++
		cycles += 20
	case isa.ClassBit:
		c.ctrs.BitOps++
	case isa.ClassLoad, isa.ClassStore, isa.ClassLoadStore:
		// Dispatch accounting happens in dataAccess.
	case isa.ClassBranch:
		taken := ctx.branchTaken()
		if c.BP.Resolve(ctx.PC, taken) {
			c.ctrs.BranchMispred++
			cycles += 14
		}
		c.ctrs.BranchesRet++
		if v.MemWrites > 0 || v.MemReads > 0 {
			c.ctrs.StackOps++ // CALL/RET stack engine activity
		}
	case isa.ClassX87:
		c.ctrs.X87Ops++
		cycles += 3
	case isa.ClassSSE:
		c.ctrs.SSEOps++
	case isa.ClassAVX:
		c.ctrs.AVXOps++
		cycles++
	case isa.ClassString:
		c.ctrs.StringOps++
		cycles += 4
	case isa.ClassCrypto:
		c.ctrs.CryptoOps++
		cycles += 2
	case isa.ClassPrefetch:
		addr := ctx.dataAddr()
		c.ctrs.Prefetches++
		// Prefetch pulls the line into L1D through L2 without counting a
		// demand access.
		if !c.L1D.Contains(addr) {
			c.L2.Insert(addr)
			c.L1D.Insert(addr)
		}
	case isa.ClassFlush:
		addr := ctx.dataAddr()
		c.ctrs.CacheFlushes++
		c.L1D.Flush(addr)
		c.L2.Flush(addr)
		cycles += 3
	case isa.ClassFence:
		c.ctrs.Fences++
		cycles += 4
	case isa.ClassSerial:
		c.ctrs.SerializeOps++
		cycles += 30
	}

	// Stack push/pop accounting.
	if v.Mnemonic == "PUSH" || v.Mnemonic == "POP" {
		c.ctrs.StackOps++
	}

	c.ctrs.Cycles += cycles

	// Spurious interrupts (paper challenge C2: HPCs cannot count
	// precisely because of external interference).
	if c.noise != nil && c.interruptRate > 0 {
		if c.noise.Float64() < c.interruptRate/1e6 {
			c.Interrupt()
		}
	}
	return nil
}

// dataAccess performs one data memory access and returns its cycle cost.
func (c *Core) dataAccess(addr uint64, write bool) uint64 {
	cycles := uint64(4)
	c.ctrs.DTLBAccesses++
	if !c.TLB.Access(addr) {
		c.ctrs.DTLBMisses++
		cycles += 7 // page walk
	}
	if write {
		c.ctrs.StoresDisp++
		c.ctrs.MemWrites++
		c.ctrs.L1DWrites++
	} else {
		c.ctrs.LoadsDisp++
		c.ctrs.MemReads++
	}
	c.ctrs.L1DAccesses++
	if !c.L1D.Access(addr) {
		c.ctrs.L1DMisses++
		c.ctrs.MABAllocations++
		c.ctrs.L2Accesses++
		if c.L2.Access(addr) {
			c.ctrs.RefillsFromL2++
			cycles += 8
		} else {
			c.ctrs.L2Misses++
			c.ctrs.RefillsFromSystem++
			cycles += 60
		}
	}
	return cycles
}

// ExecuteSequence retires a slice of variants in order, stopping at the
// first fault.
func (c *Core) ExecuteSequence(seq []isa.Variant, ctx *ExecContext) error {
	for _, v := range seq {
		if err := c.Execute(v, ctx); err != nil {
			return err
		}
	}
	return nil
}

// Interrupt models a hardware interrupt: kernel entry/exit pollutes the
// counters with a burst of unrelated activity and flushes the TLB.
func (c *Core) Interrupt() {
	c.ctrs.Interrupts++
	c.ctrs.Instructions += 180
	c.ctrs.UopsRetired += 250
	c.ctrs.Cycles += 900
	c.ctrs.L1DAccesses += 40
	c.ctrs.LoadsDisp += 25
	c.ctrs.StoresDisp += 15
	c.ctrs.MemReads += 25
	c.ctrs.MemWrites += 15
	c.ctrs.BranchesRet += 30
	c.TLB.Flush()
}

// ContextSwitch models a scheduler context switch on this core.
func (c *Core) ContextSwitch() {
	c.ctrs.CtxSwitches++
	c.ctrs.Cycles += 2000
	c.ctrs.Instructions += 500
	c.ctrs.UopsRetired += 700
	c.TLB.Flush()
}
