// Package microarch simulates the micro-architectural state of one CPU core:
// set-associative caches with LRU replacement, a TLB, a branch predictor and
// an execution engine that retires instruction variants from the isa package
// while accounting every raw micro-event (dispatches, refills, mispredicts,
// ...). The hpc package derives its performance-counter events from these
// raw counts, so instruction gadgets perturb HPC events through the same
// mechanistic paths as on real hardware: a CLFLUSH analog actually evicts
// the line a subsequent load will miss on.
package microarch

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	name     string
	sets     int
	ways     int
	lineBits uint
	// lines[set][way] holds the cached line tag; lru[set][way] holds the
	// recency rank (0 = most recent).
	lines [][]uint64
	valid [][]bool
	lru   [][]uint8

	// Stats.
	accesses  uint64
	misses    uint64
	evictions uint64
}

// CacheConfig sizes a cache.
type CacheConfig struct {
	Name     string
	Sets     int
	Ways     int
	LineSize int // bytes; must be a power of two
}

// NewCache builds a cache. Invalid configurations are normalised to small
// positive values so a zero-value config still yields a working cache.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.Sets < 1 {
		cfg.Sets = 1
	}
	if cfg.Ways < 1 {
		cfg.Ways = 1
	}
	if cfg.LineSize < 1 {
		cfg.LineSize = 64
	}
	bits := uint(0)
	for 1<<bits < cfg.LineSize {
		bits++
	}
	c := &Cache{
		name:     cfg.Name,
		sets:     cfg.Sets,
		ways:     cfg.Ways,
		lineBits: bits,
	}
	c.lines = make([][]uint64, cfg.Sets)
	c.valid = make([][]bool, cfg.Sets)
	c.lru = make([][]uint8, cfg.Sets)
	for s := 0; s < cfg.Sets; s++ {
		c.lines[s] = make([]uint64, cfg.Ways)
		c.valid[s] = make([]bool, cfg.Ways)
		c.lru[s] = make([]uint8, cfg.Ways)
	}
	return c
}

// line returns the line address (tag) and set index for addr.
func (c *Cache) line(addr uint64) (tag uint64, set int) {
	tag = addr >> c.lineBits
	set = int(tag % uint64(c.sets))
	return tag, set
}

// Access touches addr and returns whether it hit. On a miss the line is
// filled, evicting the LRU way if the set is full.
func (c *Cache) Access(addr uint64) bool {
	c.accesses++
	tag, set := c.line(addr)
	for w := 0; w < c.ways; w++ {
		if c.valid[set][w] && c.lines[set][w] == tag {
			c.touch(set, w)
			return true
		}
	}
	c.misses++
	c.fill(set, tag)
	return false
}

// Contains reports whether addr's line is cached, without updating LRU or
// statistics (a probe, not an access).
func (c *Cache) Contains(addr uint64) bool {
	tag, set := c.line(addr)
	for w := 0; w < c.ways; w++ {
		if c.valid[set][w] && c.lines[set][w] == tag {
			return true
		}
	}
	return false
}

// Flush evicts addr's line if present and reports whether it was cached.
func (c *Cache) Flush(addr uint64) bool {
	tag, set := c.line(addr)
	for w := 0; w < c.ways; w++ {
		if c.valid[set][w] && c.lines[set][w] == tag {
			c.valid[set][w] = false
			return true
		}
	}
	return false
}

// FlushAll invalidates every line (WBINVD analog).
func (c *Cache) FlushAll() {
	for s := range c.valid {
		for w := range c.valid[s] {
			c.valid[s][w] = false
		}
	}
}

// Insert fills addr's line without counting an access (prefetch/refill path).
func (c *Cache) Insert(addr uint64) {
	tag, set := c.line(addr)
	for w := 0; w < c.ways; w++ {
		if c.valid[set][w] && c.lines[set][w] == tag {
			c.touch(set, w)
			return
		}
	}
	c.fill(set, tag)
}

// fill installs tag into set, evicting the LRU victim if needed.
func (c *Cache) fill(set int, tag uint64) {
	victim := -1
	for w := 0; w < c.ways; w++ {
		if !c.valid[set][w] {
			victim = w
			break
		}
	}
	if victim < 0 {
		// Evict the way with the highest recency rank.
		var worst uint8
		for w := 0; w < c.ways; w++ {
			if c.lru[set][w] >= worst {
				worst = c.lru[set][w]
				victim = w
			}
		}
		c.evictions++
	}
	c.lines[set][victim] = tag
	c.valid[set][victim] = true
	c.touch(set, victim)
}

// touch marks way as most recently used within set.
func (c *Cache) touch(set, way int) {
	old := c.lru[set][way]
	for w := 0; w < c.ways; w++ {
		if c.valid[set][w] && c.lru[set][w] < old {
			c.lru[set][w]++
		}
	}
	c.lru[set][way] = 0
}

// Stats returns the access/miss/eviction counts since construction.
func (c *Cache) Stats() (accesses, misses, evictions uint64) {
	return c.accesses, c.misses, c.evictions
}

// Name returns the cache's configured name.
func (c *Cache) Name() string { return c.name }

// TLB is a fully-associative translation lookaside buffer with LRU
// replacement over page numbers.
type TLB struct {
	entries  int
	pageBits uint
	pages    []uint64
	valid    []bool
	lru      []uint8

	accesses uint64
	misses   uint64
}

// NewTLB builds a TLB with the given entry count and page size.
func NewTLB(entries, pageSize int) *TLB {
	if entries < 1 {
		entries = 1
	}
	if pageSize < 1 {
		pageSize = 4096
	}
	bits := uint(0)
	for 1<<bits < pageSize {
		bits++
	}
	return &TLB{
		entries:  entries,
		pageBits: bits,
		pages:    make([]uint64, entries),
		valid:    make([]bool, entries),
		lru:      make([]uint8, entries),
	}
}

// Access translates addr and returns whether the page entry was resident.
func (t *TLB) Access(addr uint64) bool {
	t.accesses++
	page := addr >> t.pageBits
	for i := 0; i < t.entries; i++ {
		if t.valid[i] && t.pages[i] == page {
			t.touch(i)
			return true
		}
	}
	t.misses++
	victim := -1
	for i := 0; i < t.entries; i++ {
		if !t.valid[i] {
			victim = i
			break
		}
	}
	if victim < 0 {
		var worst uint8
		for i := 0; i < t.entries; i++ {
			if t.lru[i] >= worst {
				worst = t.lru[i]
				victim = i
			}
		}
	}
	t.pages[victim] = page
	t.valid[victim] = true
	t.touch(victim)
	return false
}

// Flush invalidates every entry (context-switch analog).
func (t *TLB) Flush() {
	for i := range t.valid {
		t.valid[i] = false
	}
}

func (t *TLB) touch(entry int) {
	old := t.lru[entry]
	for i := 0; i < t.entries; i++ {
		if t.valid[i] && t.lru[i] < old {
			t.lru[i]++
		}
	}
	t.lru[entry] = 0
}

// Stats returns the access and miss counts since construction.
func (t *TLB) Stats() (accesses, misses uint64) {
	return t.accesses, t.misses
}
