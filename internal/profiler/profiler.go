// Package profiler implements Aegis's Application Profiler (paper §V): the
// offline module that, given a protected application and its secrets,
// identifies which HPC events of the processor can act as side channels
// and ranks them by vulnerability.
//
// The profiler launches a template VM on a template server whose processor
// model matches the attested cloud server, runs the application per secret
// while monitoring HPC events, and proceeds in two stages:
//
//  1. Warm-up profiling: events whose counts do not differ between an idle
//     VM and the running application are removed — they cannot reflect the
//     application's behaviour. This shrinks thousands of events to ~10%.
//  2. Event ranking: per surviving event, leakage traces are reduced to a
//     scalar feature with PCA, modelled as per-secret Gaussians, and scored
//     by the mutual information between secret and feature (paper Eq. 1).
package profiler

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/repro/aegis/internal/artifact"
	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/microarch"
	"github.com/repro/aegis/internal/parallel"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/sev"
	"github.com/repro/aegis/internal/stats"
	"github.com/repro/aegis/internal/telemetry"
	"github.com/repro/aegis/internal/telemetry/flight"
	"github.com/repro/aegis/internal/workload"
)

// Profiler metrics: warm-up filtering volume and MI-ranking timings.
var (
	mWarmupRuns      = telemetry.C("profiler_warmup_runs_total")
	mWarmupFiltered  = telemetry.C("profiler_warmup_filtered_total")
	mWarmupRemaining = telemetry.C("profiler_warmup_remaining_total")
	mRankDegenerate  = telemetry.C("profiler_rank_degenerate_total")
	mRankedEvents    = telemetry.C("profiler_ranked_events_total")
	hTraceSeconds    = telemetry.H("profiler_trace_collect_seconds", telemetry.DefBuckets)
	hMIScoreSeconds  = telemetry.H("profiler_mi_score_seconds",
		telemetry.ExpBuckets(1e-5, 10, 8))

	// fStage journals stage completions at stage boundaries only (never
	// from shard workers), keeping the journal replay-stable.
	fStage = flight.Get(flight.KindStage)
)

// Errors returned by the profiler.
var (
	ErrNoSecrets = errors.New("profiler: application has no secrets")
	ErrNoEvents  = errors.New("profiler: no events to rank")
)

// Config tunes the profiling runs.
type Config struct {
	// WarmupTicks is the monitoring window of each warm-up measurement
	// (the paper monitors each event for 1 second).
	WarmupTicks int
	// WarmupRepeats is how often the idle/active comparison is repeated;
	// an event is kept if it differs in any repeat (paper: 5 repeats with
	// near-identical results).
	WarmupRepeats int
	// WarmupThreshold is the minimum relative count change (with a small
	// absolute floor) for an event to be considered "changed".
	WarmupThreshold float64
	// RankRepeats is the number of measurements per secret (paper: 100,
	// reducible to 10 for rough analysis).
	RankRepeats int
	// TraceTicks is the leakage-trace length used for ranking.
	TraceTicks int
	// QuadratureSteps controls the MI integration grid.
	QuadratureSteps int
	// RawMeanFeature replaces the PCA feature with the plain per-trace
	// sum. Only the PCA ablation uses this; the paper's design extracts
	// the feature with PCA (§V-B).
	RawMeanFeature bool
	// Seed drives all stochastic behaviour.
	Seed uint64
	// World configures the template server; zero value uses the AMD
	// default testbed.
	World sev.Config
	// Parallelism bounds the worker count of trace collection and event
	// scoring; <= 0 uses GOMAXPROCS. Results are byte-identical at any
	// value: every shard derives its RNG stream from (Seed, secret,
	// repeat) or scores pure per-event statistics, and shard outputs
	// merge in input order.
	Parallelism int
	// Store, when set, checkpoints campaign shards (warm-up verdicts,
	// per-secret traces, per-event scores) as versioned artifacts at
	// input-ordered merge points and resumes from shards whose
	// fingerprint matches on restart. Resume is invisible to results:
	// loaded shards are byte-identical to recomputed ones.
	Store *artifact.Store
}

// DefaultConfig returns evaluation-scale defaults (scaled down ~10x from
// the paper's wall-clock settings; the simulator tick models 1 ms).
func DefaultConfig(seed uint64) Config {
	return Config{
		WarmupTicks:     100,
		WarmupRepeats:   5,
		WarmupThreshold: 0.05,
		RankRepeats:     10,
		TraceTicks:      150,
		QuadratureSteps: 600,
		Seed:            seed,
		World:           sev.DefaultConfig(seed),
	}
}

// Profiler profiles applications against a processor's event catalog.
type Profiler struct {
	catalog *hpc.Catalog
	cfg     Config
	lib     *workload.Library
	root    *rng.Source
	// scorePool recycles per-worker scoring scratch (series slab, PCA/MI
	// arena) across the thousands of scoreEvent calls a ranking makes.
	// Pooling is safe because scoreEvent is pure: the scratch never
	// carries state between calls, only capacity.
	scorePool sync.Pool
	// catOnce/catFP cache the catalog fingerprint for artifact addressing.
	catOnce sync.Once
	catFP   string
}

// scoreScratch is one worker's reusable scoring buffers.
type scoreScratch struct {
	slab  []float64   // all per-trace series, back to back
	all   [][]float64 // row views into slab
	feats []float64
	st    stats.Scratch
}

// New builds a profiler for the catalog.
func New(catalog *hpc.Catalog, cfg Config) *Profiler {
	if cfg.WarmupTicks <= 0 {
		cfg.WarmupTicks = 100
	}
	if cfg.WarmupRepeats <= 0 {
		cfg.WarmupRepeats = 5
	}
	if cfg.WarmupThreshold <= 0 {
		cfg.WarmupThreshold = 0.05
	}
	if cfg.RankRepeats <= 0 {
		cfg.RankRepeats = 10
	}
	if cfg.TraceTicks <= 0 {
		cfg.TraceTicks = 150
	}
	if cfg.QuadratureSteps <= 0 {
		cfg.QuadratureSteps = 600
	}
	if cfg.World.PhysicalCores == 0 {
		cfg.World = sev.DefaultConfig(cfg.Seed)
	}
	p := &Profiler{
		catalog: catalog,
		cfg:     cfg,
		lib:     workload.DefaultLibrary(cfg.Seed),
		root:    rng.New(cfg.Seed).Split("profiler"),
	}
	p.scorePool.New = func() any { return new(scoreScratch) }
	return p
}

// rawTrace collects per-tick raw signal deltas from the core backing the
// template VM's vCPU while the app runs the given jobs. Evaluating every
// event formula on the same raw trace is equivalent to the paper's scheme
// of repeating identical runs for each 4-event register group.
func (p *Profiler) rawTrace(app workload.App, secret string, ticks int, stream *rng.Source, idle bool) ([][]float64, error) {
	world := sev.NewWorld(p.cfg.World)
	vm, err := world.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		return nil, fmt.Errorf("launch template VM: %w", err)
	}
	runner := workload.NewRunner(app.Name(), p.lib, stream.Split("runner"))
	if err := vm.AddProcess(0, runner); err != nil {
		return nil, err
	}
	if !idle {
		job, err := app.Job(secret, stream.Split("job"))
		if err != nil {
			return nil, err
		}
		runner.Enqueue(job)
	}
	coreIdx, err := vm.PhysicalCore(0)
	if err != nil {
		return nil, err
	}
	core, err := world.Core(coreIdx)
	if err != nil {
		return nil, err
	}
	// One slab for the whole trace: ticks rows are carved out of a single
	// allocation instead of one make per tick.
	out := make([][]float64, ticks)
	slab := make([]float64, ticks*microarch.NumSignals)
	prev := core.Counters()
	for i := 0; i < ticks; i++ {
		world.Step()
		now := core.Counters()
		row := slab[i*microarch.NumSignals : (i+1)*microarch.NumSignals : (i+1)*microarch.NumSignals]
		now.Sub(prev).VectorInto(row)
		out[i] = row
		prev = now
	}
	return out, nil
}

// sumVec sums raw per-tick vectors into one delta vector.
func sumVec(trace [][]float64) []float64 {
	if len(trace) == 0 {
		return nil
	}
	out := make([]float64, len(trace[0]))
	for _, row := range trace {
		for i, v := range row {
			out[i] += v
		}
	}
	return out
}

// WarmupResult reports the outcome of warm-up profiling.
type WarmupResult struct {
	// Remaining are the events that responded to the application.
	Remaining []*hpc.Event
	// TotalEvents is the catalog size M.
	TotalEvents int
	// RemainingPerType counts survivors per event type (paper Table II
	// bracket percentages).
	RemainingPerType map[hpc.EventType]int
}

// RemainingFraction returns N/M.
func (w WarmupResult) RemainingFraction() float64 {
	if w.TotalEvents == 0 {
		return 0
	}
	return float64(len(w.Remaining)) / float64(w.TotalEvents)
}

// Warmup performs the warm-up profiling of paper §V-B: measure every event
// with the VM idle and with the application running (under a representative
// secret), repeated WarmupRepeats times; keep events whose counts change.
func (p *Profiler) Warmup(app workload.App) (*WarmupResult, error) {
	secrets := app.Secrets()
	if len(secrets) == 0 {
		return nil, ErrNoSecrets
	}
	span := telemetry.StartSpan("profiler.warmup")
	defer span.End()
	mWarmupRuns.Inc()
	// Resume: a matching warm-up artifact replaces the whole fan-out. The
	// verdict bitmap is a pure function of the fingerprinted inputs, so the
	// restored result equals the recomputed one.
	if p.cfg.Store != nil {
		if res, ok := p.loadWarmup(app); ok {
			mResumeWarmupHit.Inc()
			fStage.Record(0, flight.CodeStageProfilerResume, flight.CodeStageProfilerWarmup, 1, 0, 0)
			return p.finishWarmup(app, res), nil
		}
		mResumeWarmupMiss.Inc()
	}
	res := &WarmupResult{
		TotalEvents:      p.catalog.Size(),
		RemainingPerType: make(map[hpc.EventType]int),
	}
	// Each repeat's idle and active measurements are independent shards:
	// they launch their own template VM and derive their RNG stream from
	// (Seed, repeat, phase), so the fan-out collects exactly the traces
	// the serial loop would. A repeat's "changed" verdicts are OR-ed into
	// the final set, which is commutative — merge order cannot matter.
	type warmShard struct {
		rep  int
		idle bool
	}
	shards := make([]warmShard, 0, 2*p.cfg.WarmupRepeats)
	for rep := 0; rep < p.cfg.WarmupRepeats; rep++ {
		shards = append(shards, warmShard{rep: rep, idle: true}, warmShard{rep: rep, idle: false})
	}
	pool := parallel.NewPool("profiler.warmup", p.cfg.Parallelism)
	sums, err := parallel.Map(context.Background(), pool, len(shards),
		func(_ context.Context, i int) ([]float64, error) {
			sh := shards[i]
			stream := p.root.SplitN("warmup", sh.rep)
			secret := secrets[sh.rep%len(secrets)]
			label := "active"
			if sh.idle {
				label = "idle"
			}
			trace, err := p.rawTrace(app, secret, p.cfg.WarmupTicks, stream.Split(label), sh.idle)
			if err != nil {
				return nil, err
			}
			return sumVec(trace), nil
		})
	if err != nil {
		return nil, err
	}
	changed := make([]bool, p.catalog.Size())
	for rep := 0; rep < p.cfg.WarmupRepeats; rep++ {
		idleSum, activeSum := sums[2*rep], sums[2*rep+1]
		for i, e := range p.catalog.Events {
			if changed[i] {
				continue
			}
			// Host-only events read host-side constructs; from the guest
			// workload's perspective they are flat. GuestVisible events
			// are evaluated on the measured raw deltas.
			iv := e.Value(idleSum)
			av := e.Value(activeSum)
			diff := math.Abs(av - iv)
			floor := 5.0
			if diff > floor && diff > p.cfg.WarmupThreshold*(iv+1) {
				changed[i] = true
			}
		}
	}
	for i, e := range p.catalog.Events {
		if changed[i] {
			res.Remaining = append(res.Remaining, e)
			res.RemainingPerType[e.Type]++
		}
	}
	// Merge point: every shard has landed, so the verdict bitmap is final
	// and safe to checkpoint.
	if p.cfg.Store != nil {
		p.storeWarmup(app, changed)
		fStage.Record(0, flight.CodeStageProfilerResume, flight.CodeStageProfilerWarmup, 0, 1, 0)
	}
	return p.finishWarmup(app, res), nil
}

// finishWarmup records the result-volume metrics, stage journal entry and
// log line shared by the computed and resumed warm-up paths.
func (p *Profiler) finishWarmup(app workload.App, res *WarmupResult) *WarmupResult {
	mWarmupRemaining.Add(float64(len(res.Remaining)))
	mWarmupFiltered.Add(float64(res.TotalEvents - len(res.Remaining)))
	fStage.Record(0, flight.CodeStageProfilerWarmup, flight.CodeNone,
		float64(len(res.Remaining)), float64(res.TotalEvents-len(res.Remaining)), 0)
	telemetry.Log().Info("profiler: warm-up filtering done",
		telemetry.F("app", app.Name()),
		telemetry.F("total", res.TotalEvents),
		telemetry.F("remaining", len(res.Remaining)))
	return res
}

// RankedEvent is one event with its vulnerability score.
type RankedEvent struct {
	Event *hpc.Event
	// MI is the mutual information I(Y;X) in bits.
	MI float64
	// Classes holds the fitted per-secret Gaussians of the PCA feature.
	Classes []stats.ClassModel
}

// rawSet is the collected leakage-trace matrix of one secret.
type rawSet struct {
	secret string
	traces [][][]float64 // repeat -> tick -> signals
}

// scoreEvent reduces one event's traces to a PCA feature, fits per-secret
// Gaussians and scores the mutual information. It is a pure function of
// (event, raws) — no RNG, no shared mutable state — which is what lets
// Rank score events concurrently without changing any score. A nil return
// marks a degenerate, unrankable event.
func (p *Profiler) scoreEvent(e *hpc.Event, raws []rawSet, timed bool) *RankedEvent {
	var scoreStart time.Time
	if timed {
		scoreStart = time.Now() //aegis:allow(detrand) wall-clock feeds timing histograms only, never ranking state
		defer func() {
			hMIScoreSeconds.Observe(time.Since(scoreStart).Seconds()) //aegis:allow(detrand) wall-clock feeds timing histograms only, never ranking state
		}()
	}
	// All intermediates are staged in pooled per-worker scratch: the
	// series slab, the PCA fit and the MI grids only allocate until each
	// worker's buffers reach the campaign's trace shape.
	sc := p.scorePool.Get().(*scoreScratch)
	defer p.scorePool.Put(sc)

	// Build per-trace event time series, back to back in one slab.
	total := 0
	for si := range raws {
		for _, raw := range raws[si].traces {
			total += len(raw)
		}
	}
	if cap(sc.slab) < total {
		sc.slab = make([]float64, total)
	}
	sc.slab = sc.slab[:total]
	all := sc.all[:0]
	off := 0
	d, uniform := -1, true
	for si := range raws {
		for _, raw := range raws[si].traces {
			series := sc.slab[off : off+len(raw) : off+len(raw)]
			off += len(raw)
			for t, sig := range raw {
				series[t] = e.Value(sig)
			}
			if d < 0 {
				d = len(raw)
			} else if len(raw) != d {
				uniform = false
			}
			all = append(all, series)
		}
	}
	sc.all = all
	// Feature extraction over the full trace population: the paper's
	// PCA first component, or the raw sum for the ablation. The trace
	// matrix already lives in one contiguous row-major slab, so the fit
	// goes through FitPCASlab and the blocked covariance kernel streams
	// the block directly — `all` stays around as the per-trace row views
	// the feature-extraction loop below projects. Campaign traces share
	// one length (TraceTicks), so the slab is always a dense matrix;
	// FitPCASlab is bit-identical to FitPCA over the same rows.
	var pca *stats.PCA
	if !p.cfg.RawMeanFeature {
		var err error
		if uniform && d > 0 {
			pca, err = sc.st.FitPCASlab(sc.slab[:total], len(all), d, 1)
		} else {
			pca, err = sc.st.FitPCA(all, 1) // ragged traces: row-view path
		}
		if err != nil {
			mRankDegenerate.Inc()
			return nil // degenerate event; cannot be ranked
		}
	}
	// classes escapes in the returned RankedEvent, so it is the one
	// allocation this function keeps.
	classes := make([]stats.ClassModel, 0, len(raws))
	secStart := 0
	for si := range raws {
		secSeries := all[secStart : secStart+len(raws[si].traces)]
		secStart += len(raws[si].traces)
		feats := sc.feats[:0]
		for _, series := range secSeries {
			var f float64
			if pca != nil {
				var err error
				f, err = pca.FirstComponent(series)
				if err != nil {
					mRankDegenerate.Inc()
					return nil
				}
			} else {
				for _, v := range series {
					f += v
				}
			}
			feats = append(feats, f)
		}
		sc.feats = feats
		g, err := stats.FitGaussian(feats)
		if err != nil {
			mRankDegenerate.Inc()
			return nil
		}
		classes = append(classes, stats.ClassModel{Secret: raws[si].secret, Dist: g})
	}
	mi, err := sc.st.MutualInformation(classes, p.cfg.QuadratureSteps)
	if err != nil {
		mRankDegenerate.Inc()
		return nil
	}
	return &RankedEvent{Event: e, MI: mi, Classes: classes}
}

// Rank scores each event's vulnerability for the application and returns
// the events sorted by descending mutual information (paper §V-B "Event
// ranking").
func (p *Profiler) Rank(app workload.App, events []*hpc.Event) ([]RankedEvent, error) {
	secrets := app.Secrets()
	if len(secrets) == 0 {
		return nil, ErrNoSecrets
	}
	if len(events) == 0 {
		return nil, ErrNoEvents
	}
	span := telemetry.StartSpan("profiler.rank")
	defer span.End()
	timed := telemetry.Enabled()

	// Collect raw traces once per (secret, repeat); every event formula is
	// evaluated on the same traces. The (secret, repeat) matrix fans out
	// across workers: each shard launches its own template VM and derives
	// its RNG stream from (Seed, secret, repeat) — the doc comment on
	// rng.Source forbids sharing a stream — and the shard outputs land in
	// (secret, repeat) order, so the matrix is identical to a serial
	// collection.
	var traceStart time.Time
	if timed {
		traceStart = time.Now() //aegis:allow(detrand) wall-clock feeds timing histograms only, never ranking state
	}
	pool := parallel.NewPool("profiler.rank", p.cfg.Parallelism)
	reps := p.cfg.RankRepeats
	// Resume: restore whole per-secret trace matrices from the store and
	// collect only the missing secrets. A shard's RNG stream depends only
	// on (Seed, secret, repeat), never on which other shards run, so
	// skipping cached secrets leaves the recomputed ones bit-identical.
	raws := make([]rawSet, len(secrets))
	missing := make([]int, 0, len(secrets))
	for si, secret := range secrets {
		raws[si].secret = secret
		if p.cfg.Store != nil {
			if traces, ok := p.loadTraces(app, secret); ok {
				raws[si].traces = traces
				mResumeTraceHit.Inc()
				continue
			}
			mResumeTraceMiss.Inc()
		}
		missing = append(missing, si)
	}
	traceHits := len(secrets) - len(missing)
	flat, err := parallel.Map(context.Background(), pool, len(missing)*reps,
		func(_ context.Context, i int) ([][]float64, error) {
			secret := secrets[missing[i/reps]]
			stream := p.root.SplitN("rank/"+secret, i%reps)
			return p.rawTrace(app, secret, p.cfg.TraceTicks, stream, false)
		})
	if err != nil {
		return nil, err
	}
	for mi, si := range missing {
		raws[si].traces = flat[mi*reps : (mi+1)*reps]
	}
	// Merge point: all trace shards landed in (secret, repeat) order;
	// checkpoint the freshly collected matrices.
	if p.cfg.Store != nil {
		for _, si := range missing {
			p.storeTraces(app, secrets[si], raws[si].traces)
		}
	}
	if timed {
		hTraceSeconds.Observe(time.Since(traceStart).Seconds()) //aegis:allow(detrand) wall-clock feeds timing histograms only, never ranking state
	}

	// Score the events concurrently: PCA + MI over the shared raw traces
	// is a pure per-event computation, so shards stay deterministic and
	// merge in input-event order (nil = degenerate, unrankable).
	scoreSpan := span.Child("profiler.rank.score")
	// Resume: a score cell depends only on (event formula, trace matrix,
	// scoring config), all covered by its fingerprint; restore hits
	// (including cached degenerate verdicts) and score only the misses.
	scored := make([]*RankedEvent, len(events))
	var scoreFPs []string
	missIdx := make([]int, 0, len(events))
	if p.cfg.Store != nil {
		combined := p.tracesFP(app, secrets)
		scoreFPs = make([]string, len(events))
		for i, e := range events {
			scoreFPs[i] = p.scoreFP(e, combined)
			if re, ok := p.loadScore(e, scoreFPs[i], secrets); ok {
				scored[i] = re
				mResumeScoreHit.Inc()
				continue
			}
			mResumeScoreMiss.Inc()
			missIdx = append(missIdx, i)
		}
	} else {
		for i := range events {
			missIdx = append(missIdx, i)
		}
	}
	fresh, err := parallel.Map(context.Background(), pool, len(missIdx),
		func(_ context.Context, i int) (*RankedEvent, error) {
			return p.scoreEvent(events[missIdx[i]], raws, timed), nil
		})
	if err != nil {
		return nil, err
	}
	// Merge point: fold freshly scored cells back in input-event order and
	// checkpoint them (nil persists as a degenerate verdict).
	for mi, i := range missIdx {
		scored[i] = fresh[mi]
		if p.cfg.Store != nil {
			p.storeScore(events[i], scoreFPs[i], fresh[mi])
		}
	}
	ranked := make([]RankedEvent, 0, len(events))
	for _, re := range scored {
		if re != nil {
			ranked = append(ranked, *re)
		}
	}
	scoreSpan.End()
	mRankedEvents.Add(float64(len(ranked)))
	fStage.Record(0, flight.CodeStageProfilerRank, flight.CodeNone,
		float64(len(ranked)), float64(len(events)-len(ranked)), 0)
	if p.cfg.Store != nil {
		fStage.Record(0, flight.CodeStageProfilerResume, flight.CodeStageProfilerRank,
			float64(traceHits+len(events)-len(missIdx)),
			float64(len(missing)+len(missIdx)), 0)
	}
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].MI > ranked[j].MI })
	return ranked, nil
}

// Result is the complete profiling outcome.
type Result struct {
	Warmup *WarmupResult
	Ranked []RankedEvent
}

// TopEvents returns the n most vulnerable events.
func (r *Result) TopEvents(n int) []*hpc.Event {
	if n > len(r.Ranked) {
		n = len(r.Ranked)
	}
	out := make([]*hpc.Event, n)
	for i := 0; i < n; i++ {
		out[i] = r.Ranked[i].Event
	}
	return out
}

// Profile runs warm-up profiling followed by ranking.
func (p *Profiler) Profile(app workload.App) (*Result, error) {
	warm, err := p.Warmup(app)
	if err != nil {
		return nil, err
	}
	ranked, err := p.Rank(app, warm.Remaining)
	if err != nil {
		return nil, err
	}
	return &Result{Warmup: warm, Ranked: ranked}, nil
}

// EventDistribution collects the Fig. 3 artefacts for one event and secret:
// the distribution of per-trace summed counts, its Gaussian fit, Q-Q
// correlation against the standard normal and the KS statistic.
type EventDistribution struct {
	Event     string
	Secret    string
	Samples   []float64
	Fit       stats.Gaussian
	QQCorr    float64
	KS        float64
	Histogram stats.Histogram
}

// DistributionFor measures the event's per-trace totals over repeats of the
// secret and fits the Gaussian model (paper Fig. 3 evidence that event
// values are normally distributed).
func (p *Profiler) DistributionFor(app workload.App, secret string, event *hpc.Event, repeats int) (*EventDistribution, error) {
	if repeats <= 0 {
		repeats = p.cfg.RankRepeats
	}
	// Repeats are independent shards (per-repeat streams, private VMs) and
	// merge in repeat order, like Rank's trace collection.
	pool := parallel.NewPool("profiler.distribution", p.cfg.Parallelism)
	samples, err := parallel.Map(context.Background(), pool, repeats,
		func(_ context.Context, rep int) (float64, error) {
			stream := p.root.SplitN("dist/"+secret, rep)
			raw, err := p.rawTrace(app, secret, p.cfg.TraceTicks, stream, false)
			if err != nil {
				return 0, err
			}
			return event.Value(sumVec(raw)), nil
		})
	if err != nil {
		return nil, err
	}
	fit, err := stats.FitGaussian(samples)
	if err != nil {
		return nil, err
	}
	return &EventDistribution{
		Event:     event.Name,
		Secret:    secret,
		Samples:   samples,
		Fit:       fit,
		QQCorr:    stats.QQCorrelation(stats.QQNormal(samples)),
		KS:        stats.KSNormal(samples),
		Histogram: stats.NewHistogram(samples, 16),
	}, nil
}

// Wall-clock cost model of paper §VIII-A, used to reproduce the quoted
// profiling times: T_W = (M × t_w × 2) / C and T_P = (N × S × R × t_p) / C.

// EstimateWarmupHours returns the warm-up profiling time for M events
// monitored t_w seconds each (twice: idle and active) over C registers.
func EstimateWarmupHours(mEvents, cRegisters int, twSeconds float64) float64 {
	return float64(mEvents) * twSeconds * 2 / float64(cRegisters) / 3600
}

// EstimateRankingHours returns the ranking time for N events, S secrets,
// R repeats, t_p seconds per measurement over C registers.
func EstimateRankingHours(nEvents, sSecrets, repeats, cRegisters int, tpSeconds float64) float64 {
	return float64(nEvents) * float64(sSecrets) * float64(repeats) * tpSeconds / float64(cRegisters) / 3600
}

var _ = microarch.NumSignals // raw traces use microarch's signal order
