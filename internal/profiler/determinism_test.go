package profiler

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"

	"github.com/repro/aegis/internal/hpc"
)

// fingerprintRanking serialises a ranking with bit-exact scores so two runs
// can be compared for byte identity.
func fingerprintRanking(ranked []RankedEvent) string {
	var sb strings.Builder
	for _, r := range ranked {
		fmt.Fprintf(&sb, "%s mi=%x\n", r.Event.Name, math.Float64bits(r.MI))
		for _, c := range r.Classes {
			fmt.Fprintf(&sb, "  %s mu=%x sigma=%x\n",
				c.Secret, math.Float64bits(c.Dist.Mu), math.Float64bits(c.Dist.Sigma))
		}
	}
	return sb.String()
}

// TestRankDeterministicAcrossParallelism is the determinism regression test
// of the ranking fan-out: parallelism 1, 4 and GOMAXPROCS must produce
// byte-identical rankings (same events, same bit-exact MI, same order).
func TestRankDeterministicAcrossParallelism(t *testing.T) {
	cat := hpc.NewAMDEpyc7252Catalog(1)
	events := []*hpc.Event{
		cat.MustByName("RETIRED_UOPS"),
		cat.MustByName("LS_DISPATCH"),
		cat.MustByName("DATA_CACHE_REFILLS_FROM_SYSTEM"),
		cat.MustByName("MAB_ALLOCATION_BY_PIPE"),
		cat.MustByName("HW_CACHE_L1D:WRITE"),
		cat.MustByName("RETIRED_X87_FP_OPS"),
	}
	run := func(parallelism int) string {
		cfg := smallConfig(77)
		cfg.Parallelism = parallelism
		p := New(cat, cfg)
		ranked, err := p.Rank(smallWebsiteApp(), events)
		if err != nil {
			t.Fatal(err)
		}
		return fingerprintRanking(ranked)
	}
	serial := run(1)
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := run(w); got != serial {
			t.Errorf("ranking at parallelism %d differs from serial run", w)
		}
	}
}

// TestWarmupDeterministicAcrossParallelism: the warm-up sweep must keep the
// same surviving event set at any worker count.
func TestWarmupDeterministicAcrossParallelism(t *testing.T) {
	cat := hpc.NewAMDEpyc7252Catalog(1)
	run := func(parallelism int) string {
		cfg := smallConfig(78)
		cfg.Parallelism = parallelism
		p := New(cat, cfg)
		res, err := p.Warmup(smallWebsiteApp())
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, e := range res.Remaining {
			sb.WriteString(e.Name)
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	serial := run(1)
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := run(w); got != serial {
			t.Errorf("warm-up at parallelism %d differs from serial run", w)
		}
	}
}

// TestDistributionDeterministicAcrossParallelism: the per-secret sampling
// fan-out must reproduce the serial sample vector exactly.
func TestDistributionDeterministicAcrossParallelism(t *testing.T) {
	cat := hpc.NewAMDEpyc7252Catalog(1)
	ev := cat.MustByName("DATA_CACHE_REFILLS_FROM_SYSTEM")
	run := func(parallelism int) string {
		cfg := smallConfig(79)
		cfg.Parallelism = parallelism
		p := New(cat, cfg)
		dist, err := p.DistributionFor(smallWebsiteApp(), "github.com", ev, 24)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, s := range dist.Samples {
			fmt.Fprintf(&sb, "%x\n", math.Float64bits(s))
		}
		return sb.String()
	}
	serial := run(1)
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := run(w); got != serial {
			t.Errorf("distribution at parallelism %d differs from serial run", w)
		}
	}
}
