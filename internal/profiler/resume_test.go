package profiler

import (
	"runtime"
	"strings"
	"testing"

	"github.com/repro/aegis/internal/artifact"
	"github.com/repro/aegis/internal/hpc"
)

func resumeEvents(cat *hpc.Catalog) []*hpc.Event {
	return []*hpc.Event{
		cat.MustByName("RETIRED_UOPS"),
		cat.MustByName("LS_DISPATCH"),
		cat.MustByName("DATA_CACHE_REFILLS_FROM_SYSTEM"),
		cat.MustByName("MAB_ALLOCATION_BY_PIPE"),
		cat.MustByName("HW_CACHE_L1D:WRITE"),
		cat.MustByName("RETIRED_X87_FP_OPS"),
	}
}

// TestRankResumeByteIdentical pins the campaign-resume contract: a cold
// store-less ranking, a partial campaign killed after K events, and a
// resumed full campaign against the partial campaign's store must produce
// byte-identical rankings — at parallelism 1, 4 and GOMAXPROCS. It also
// pins the delta-recompute funnel: the resumed run must re-score only the
// cells the partial campaign never finished.
func TestRankResumeByteIdentical(t *testing.T) {
	cat := hpc.NewAMDEpyc7252Catalog(1)
	events := resumeEvents(cat)
	app := smallWebsiteApp()
	const kill = 3 // the partial campaign dies after K=3 events

	coldCfg := smallConfig(91)
	coldCfg.Parallelism = 1
	cold, err := New(cat, coldCfg).Rank(app, events)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprintRanking(cold)

	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		store, err := artifact.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		cfg := smallConfig(91)
		cfg.Parallelism = w
		cfg.Store = store
		// Partial campaign: emulates a run killed at shard K — its store
		// holds every trace artifact and the first K score artifacts.
		if _, err := New(cat, cfg).Rank(app, events[:kill]); err != nil {
			t.Fatal(err)
		}

		traceHit0, scoreHit0 := mResumeTraceHit.Value(), mResumeScoreHit.Value()
		traceMiss0, scoreMiss0 := mResumeTraceMiss.Value(), mResumeScoreMiss.Value()
		resumed, err := New(cat, cfg).Rank(app, events)
		if err != nil {
			t.Fatal(err)
		}
		if got := fingerprintRanking(resumed); got != want {
			t.Errorf("parallelism %d: resumed ranking differs from cold run", w)
		}
		// Funnel: every secret's traces and the first K scores come from
		// the store; only the unfinished cells recompute.
		secrets := len(app.Secrets())
		if hits := mResumeTraceHit.Value() - traceHit0; hits != float64(secrets) {
			t.Errorf("parallelism %d: trace hits = %v, want %d", w, hits, secrets)
		}
		if misses := mResumeTraceMiss.Value() - traceMiss0; misses != 0 {
			t.Errorf("parallelism %d: trace misses = %v, want 0", w, misses)
		}
		if hits := mResumeScoreHit.Value() - scoreHit0; hits != kill {
			t.Errorf("parallelism %d: score hits = %v, want %d", w, hits, kill)
		}
		if misses := mResumeScoreMiss.Value() - scoreMiss0; misses != float64(len(events)-kill) {
			t.Errorf("parallelism %d: score misses = %v, want %d", w, misses, len(events)-kill)
		}
	}
}

// TestWarmupResumeByteIdentical: a second warm-up against the same store
// restores the verdict bitmap instead of re-measuring, with an identical
// surviving set.
func TestWarmupResumeByteIdentical(t *testing.T) {
	cat := hpc.NewAMDEpyc7252Catalog(1)
	app := smallWebsiteApp()
	names := func(res *WarmupResult) string {
		var sb strings.Builder
		for _, e := range res.Remaining {
			sb.WriteString(e.Name)
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	coldCfg := smallConfig(92)
	cold, err := New(cat, coldCfg).Warmup(app)
	if err != nil {
		t.Fatal(err)
	}

	store, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(92)
	cfg.Store = store
	first, err := New(cat, cfg).Warmup(app)
	if err != nil {
		t.Fatal(err)
	}
	hit0 := mResumeWarmupHit.Value()
	second, err := New(cat, cfg).Warmup(app)
	if err != nil {
		t.Fatal(err)
	}
	if mResumeWarmupHit.Value()-hit0 != 1 {
		t.Error("second warm-up did not resume from the store")
	}
	if names(first) != names(cold) || names(second) != names(cold) {
		t.Error("store-backed warm-up differs from cold run")
	}
	if second.TotalEvents != cold.TotalEvents ||
		len(second.RemainingPerType) != len(cold.RemainingPerType) {
		t.Error("resumed warm-up result shape drifted")
	}

	// A different seed must not hit the cached bitmap: the fingerprint
	// covers every input of the sweep.
	other := smallConfig(93)
	other.Store = store
	miss0 := mResumeWarmupMiss.Value()
	if _, err := New(cat, other).Warmup(app); err != nil {
		t.Fatal(err)
	}
	if mResumeWarmupMiss.Value()-miss0 != 1 {
		t.Error("changed seed resumed from a stale artifact")
	}
}
