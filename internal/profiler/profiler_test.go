package profiler

import (
	"math"
	"testing"

	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/workload"
)

// smallConfig keeps profiling runs fast for unit tests.
func smallConfig(seed uint64) Config {
	cfg := DefaultConfig(seed)
	cfg.WarmupTicks = 40
	cfg.WarmupRepeats = 2
	cfg.RankRepeats = 5
	cfg.TraceTicks = 60
	cfg.QuadratureSteps = 300
	return cfg
}

func smallWebsiteApp() *workload.WebsiteApp {
	return &workload.WebsiteApp{Sites: []string{
		"google.com", "youtube.com", "facebook.com", "github.com",
	}}
}

func TestWarmupFiltersHostOnlyEvents(t *testing.T) {
	cat := hpc.NewAMDEpyc7252Catalog(1)
	p := New(cat, smallConfig(1))
	res, err := p.Warmup(smallWebsiteApp())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Remaining) == 0 {
		t.Fatal("warm-up removed every event")
	}
	// Paper: only ~10% of events remain; software/other events vanish.
	frac := res.RemainingFraction()
	if frac > 0.15 {
		t.Errorf("remaining fraction = %.3f, want < 0.15", frac)
	}
	if res.RemainingPerType[hpc.TypeSoftware] != 0 {
		t.Errorf("%d software events survived warm-up", res.RemainingPerType[hpc.TypeSoftware])
	}
	if res.RemainingPerType[hpc.TypeOther] != 0 {
		t.Errorf("%d 'other' events survived warm-up", res.RemainingPerType[hpc.TypeOther])
	}
	if res.RemainingPerType[hpc.TypeHardware] == 0 {
		t.Error("no hardware events survived warm-up")
	}
	// The paper's AMD website case keeps 137 events; allow a generous
	// band around that (the catalog and workload are synthetic).
	if n := len(res.Remaining); n < 80 || n > 220 {
		t.Errorf("remaining events = %d, want within [80, 220] (paper: 137)", n)
	}
}

func TestWarmupKeepsKeyEvents(t *testing.T) {
	cat := hpc.NewAMDEpyc7252Catalog(1)
	p := New(cat, smallConfig(2))
	res, err := p.Warmup(smallWebsiteApp())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"RETIRED_UOPS":                   false,
		"LS_DISPATCH":                    false,
		"MAB_ALLOCATION_BY_PIPE":         false,
		"DATA_CACHE_REFILLS_FROM_SYSTEM": false,
	}
	for _, e := range res.Remaining {
		if _, ok := want[e.Name]; ok {
			want[e.Name] = true
		}
	}
	for name, found := range want {
		if !found {
			t.Errorf("key event %s filtered out by warm-up", name)
		}
	}
}

func TestRankOrdersByMI(t *testing.T) {
	cat := hpc.NewAMDEpyc7252Catalog(1)
	p := New(cat, smallConfig(3))
	events := []*hpc.Event{
		cat.MustByName("RETIRED_UOPS"),
		cat.MustByName("DATA_CACHE_REFILLS_FROM_SYSTEM"),
		cat.MustByName("RETIRED_X87_FP_OPS"), // websites do no x87 work
		cat.MustByName("SERIALIZING_OPS"),    // nor serialising work
	}
	ranked, err := p.Rank(smallWebsiteApp(), events)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) == 0 {
		t.Fatal("no events ranked")
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].MI > ranked[i-1].MI+1e-9 {
			t.Errorf("ranking not sorted: %v then %v", ranked[i-1].MI, ranked[i].MI)
		}
	}
	// Workload-relevant events must outrank events the app never touches.
	pos := map[string]int{}
	for i, r := range ranked {
		pos[r.Event.Name] = i
	}
	if uopsPos, x87Pos := pos["RETIRED_UOPS"], pos["RETIRED_X87_FP_OPS"]; uopsPos > x87Pos {
		t.Errorf("RETIRED_UOPS ranked %d, below untouched RETIRED_X87_FP_OPS at %d", uopsPos, x87Pos)
	}
	// MI is bounded by H(Y) = log2(4 secrets) = 2 bits.
	for _, r := range ranked {
		if r.MI < 0 || r.MI > 2.0001 {
			t.Errorf("event %s MI = %v out of [0,2]", r.Event.Name, r.MI)
		}
	}
	top := ranked[0]
	if top.MI < 0.5 {
		t.Errorf("top event MI = %v, want substantial leakage (> 0.5 bits)", top.MI)
	}
}

func TestProfileEndToEnd(t *testing.T) {
	cat := hpc.NewAMDEpyc7252Catalog(1)
	cfg := smallConfig(4)
	cfg.RankRepeats = 4
	cfg.TraceTicks = 50
	p := New(cat, cfg)
	app := &workload.WebsiteApp{Sites: []string{"google.com", "netflix.com"}}
	res, err := p.Profile(app)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranked) == 0 {
		t.Fatal("profile produced no ranked events")
	}
	top := res.TopEvents(4)
	if len(top) != 4 {
		t.Fatalf("TopEvents(4) returned %d", len(top))
	}
	if res.TopEvents(len(res.Ranked)+100) == nil {
		t.Error("TopEvents with large n returned nil")
	}
}

func TestRankErrors(t *testing.T) {
	cat := hpc.NewAMDEpyc7252Catalog(1)
	p := New(cat, smallConfig(5))
	if _, err := p.Rank(smallWebsiteApp(), nil); err != ErrNoEvents {
		t.Errorf("no-events error = %v", err)
	}
	if _, err := p.Warmup(&workload.WebsiteApp{Sites: []string{}}); err != ErrNoSecrets {
		t.Errorf("no-secrets error = %v", err)
	}
}

func TestDistributionForIsGaussianLike(t *testing.T) {
	cat := hpc.NewAMDEpyc7252Catalog(1)
	cfg := smallConfig(6)
	cfg.TraceTicks = 60
	p := New(cat, cfg)
	app := smallWebsiteApp()
	dist, err := p.DistributionFor(app, "facebook.com",
		cat.MustByName("DATA_CACHE_REFILLS_FROM_SYSTEM"), 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist.Samples) != 30 {
		t.Fatalf("samples = %d", len(dist.Samples))
	}
	if dist.Fit.Sigma <= 0 {
		t.Error("degenerate Gaussian fit")
	}
	// Paper Fig. 3: event values are near-Gaussian; Q-Q correlation ~1.
	if dist.QQCorr < 0.9 {
		t.Errorf("Q-Q correlation = %v, want > 0.9", dist.QQCorr)
	}
	crit := 1.36 / math.Sqrt(float64(len(dist.Samples)))
	if dist.KS > 2*crit {
		t.Errorf("KS statistic = %v, far above critical %v", dist.KS, crit)
	}
}

func TestTimeModelMatchesPaper(t *testing.T) {
	// Paper §VIII-A: warm-up takes 0.85h on Intel (6166 events) and 0.26h
	// on AMD (1903 events) with 4 registers and 1s per measurement.
	if h := EstimateWarmupHours(6166, 4, 1); math.Abs(h-0.85) > 0.01 {
		t.Errorf("intel warm-up estimate = %v h, want 0.85", h)
	}
	if h := EstimateWarmupHours(1903, 4, 1); math.Abs(h-0.26) > 0.01 {
		t.Errorf("amd warm-up estimate = %v h, want 0.26", h)
	}
	// Ranking: 42.81h for WFA (738 events × 45 secrets... on Intel) etc.
	// WFA: N=738? paper computes per-app on its platform; for AMD (137
	// events, 45 sites, 100 repeats): (137×45×100×1)/4 s = 42.81 h.
	if h := EstimateRankingHours(137, 45, 100, 4, 1); math.Abs(h-42.81) > 0.05 {
		t.Errorf("WFA ranking estimate = %v h, want 42.81", h)
	}
	// KSA: 10 secrets -> 9.51 h.
	if h := EstimateRankingHours(137, 10, 100, 4, 1); math.Abs(h-9.51) > 0.05 {
		t.Errorf("KSA ranking estimate = %v h, want 9.51", h)
	}
	// MEA: 30 secrets -> 28.54 h.
	if h := EstimateRankingHours(137, 30, 100, 4, 1); math.Abs(h-28.54) > 0.05 {
		t.Errorf("MEA ranking estimate = %v h, want 28.54", h)
	}
}
