package profiler

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/repro/aegis/internal/hpc"
)

// BenchmarkRank measures profiler ranking at several worker counts; the
// serial (parallelism=1) case is the baseline the parallel cases are
// compared against in EXPERIMENTS.md.
func BenchmarkRank(b *testing.B) {
	cat := hpc.NewAMDEpyc7252Catalog(1)
	events := []*hpc.Event{
		cat.MustByName("RETIRED_UOPS"),
		cat.MustByName("LS_DISPATCH"),
		cat.MustByName("DATA_CACHE_REFILLS_FROM_SYSTEM"),
		cat.MustByName("MAB_ALLOCATION_BY_PIPE"),
		cat.MustByName("HW_CACHE_L1D:WRITE"),
		cat.MustByName("RETIRED_INSTRUCTIONS"),
	}
	app := smallWebsiteApp()
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := smallConfig(1)
			cfg.Parallelism = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := New(cat, cfg)
				if _, err := p.Rank(app, events); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
