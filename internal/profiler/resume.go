// Code in this file is the profiler's artifact-store integration: the
// fingerprint derivations, the load/store adapters for the three profile
// artifact kinds, and the resume-skip funnel instrumentation. Campaign
// resume never changes a result: artifacts hold exact float64 bit
// patterns of values that are pure functions of their fingerprinted
// inputs, so a loaded shard is byte-identical to a recomputed one
// (pinned by TestRankResumeByteIdentical).
package profiler

import (
	"strconv"

	"github.com/repro/aegis/internal/artifact"
	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/microarch"
	"github.com/repro/aegis/internal/stats"
	"github.com/repro/aegis/internal/telemetry"
	"github.com/repro/aegis/internal/workload"
)

// Profile artifact kinds. Granularity follows the recompute units of
// incremental re-profiling: warm-up is one verdict bitmap per (app,
// config), traces are one matrix per (app, secret), scores are one cell
// per (event, trace-matrix) — so a catalog delta hits every trace
// artifact and re-scores only the new events, and a workload delta
// invalidates exactly the touched (event, secret) cells.
const (
	kindWarmup = "profile-warmup"
	kindTrace  = "profile-trace"
	kindScore  = "profile-score"
)

// Resume-skip funnel: per-stage hit/miss counters for artifact-backed
// campaign shards.
var (
	mResumeWarmupHit  = resumeCounter("warmup", "hit")
	mResumeWarmupMiss = resumeCounter("warmup", "miss")
	mResumeTraceHit   = resumeCounter("trace", "hit")
	mResumeTraceMiss  = resumeCounter("trace", "miss")
	mResumeScoreHit   = resumeCounter("score", "hit")
	mResumeScoreMiss  = resumeCounter("score", "miss")
)

func resumeCounter(stage, outcome string) *telemetry.Counter {
	return telemetry.C("profiler_resume_shards_total",
		telemetry.L("stage", stage), telemetry.L("outcome", outcome))
}

// fpCore mixes a core configuration into a fingerprint.
func fpCore(f *artifact.Fingerprint, c microarch.CoreConfig) {
	f.Int("core.l1d-sets", c.L1DSets).Int("core.l1d-ways", c.L1DWays)
	f.Int("core.l1i-sets", c.L1ISets).Int("core.l1i-ways", c.L1IWays)
	f.Int("core.l2-sets", c.L2Sets).Int("core.l2-ways", c.L2Ways)
	f.Int("core.line", c.LineSize).Int("core.tlb", c.TLBEntries)
	f.Int("core.predictor", c.PredictorEntries)
	f.Float("core.interrupt-rate", c.InterruptRate)
}

// fpEvent mixes an event's identity and derivation formula into a
// fingerprint; the formula (terms) is what scoring evaluates, so a
// catalog delta that redefines an event invalidates its score cells.
func fpEvent(f *artifact.Fingerprint, e *hpc.Event) {
	f.Int("event.id", e.ID).String("event.name", e.Name)
	f.Int("event.type", int(e.Type)).Bool("event.guest", e.GuestVisible)
	f.Float("event.noise", e.NoiseSigma).Int("event.terms", len(e.Terms))
	for _, t := range e.Terms {
		f.Int("term.signal", t.Signal).Float("term.weight", t.Weight)
	}
}

// worldFP mixes the template-server world configuration into a
// fingerprint: it shapes every collected trace.
func (p *Profiler) worldFP(f *artifact.Fingerprint) {
	w := p.cfg.World
	f.String("world.processor", w.Processor)
	f.Int("world.cores", w.PhysicalCores).Int("world.budget", w.TickBudget)
	f.Bool("world.shared-l2", w.SharedL2).Uint64("world.seed", w.Seed)
	fpCore(f, w.Core)
}

// catalogFP hashes the full event catalog once per Profiler.
func (p *Profiler) catalogFP() string {
	p.catOnce.Do(func() {
		f := artifact.NewFingerprint("catalog")
		f.String("processor", p.catalog.Processor).Int("size", p.catalog.Size())
		for _, e := range p.catalog.Events {
			fpEvent(f, e)
		}
		p.catFP = f.Sum()
	})
	return p.catFP
}

// warmupFP addresses the warm-up verdict bitmap for an application.
func (p *Profiler) warmupFP(app workload.App) string {
	f := artifact.NewFingerprint(kindWarmup)
	f.Uint64("seed", p.cfg.Seed).String("app", app.Name())
	f.Int("warmup-ticks", p.cfg.WarmupTicks).Int("warmup-repeats", p.cfg.WarmupRepeats)
	f.Float("warmup-threshold", p.cfg.WarmupThreshold)
	f.String("catalog", p.catalogFP())
	for _, s := range app.Secrets() {
		f.String("secret", s)
	}
	p.worldFP(f)
	return f.Sum()
}

// traceFP addresses one secret's leakage-trace matrix. It deliberately
// excludes the catalog: raw traces are core-signal deltas, valid for any
// event formula evaluated on them later.
func (p *Profiler) traceFP(app workload.App, secret string) string {
	f := artifact.NewFingerprint(kindTrace)
	f.Uint64("seed", p.cfg.Seed).String("app", app.Name()).String("secret", secret)
	f.Int("repeats", p.cfg.RankRepeats).Int("ticks", p.cfg.TraceTicks)
	f.Int("signals", microarch.NumSignals)
	p.worldFP(f)
	return f.Sum()
}

// tracesFP combines the ordered per-secret trace fingerprints into the
// score artifacts' upstream address: a score is stale exactly when any
// trace feeding it changed.
func (p *Profiler) tracesFP(app workload.App, secrets []string) string {
	f := artifact.NewFingerprint("profile-traces")
	for _, s := range secrets {
		f.String("trace", p.traceFP(app, s))
	}
	return f.Sum()
}

// scoreFP addresses one (event, trace-matrix) score cell.
func (p *Profiler) scoreFP(e *hpc.Event, tracesFP string) string {
	f := artifact.NewFingerprint(kindScore)
	f.String("traces", tracesFP)
	f.Int("quadrature", p.cfg.QuadratureSteps).Bool("raw-mean", p.cfg.RawMeanFeature)
	fpEvent(f, e)
	return f.Sum()
}

// ArtifactUniverse returns every artifact fingerprint this profiler
// configuration would consult when profiling app, mapped to a
// human-readable label. Inspection tools (aegisctl -artifacts) diff a
// store's entries against this set to call them current or stale under
// the present configuration.
func (p *Profiler) ArtifactUniverse(app workload.App) map[string]string {
	secrets := app.Secrets()
	out := make(map[string]string, 1+len(secrets)+p.catalog.Size())
	out[p.warmupFP(app)] = kindWarmup + " " + app.Name()
	for _, s := range secrets {
		out[p.traceFP(app, s)] = kindTrace + " " + app.Name() + "/" + s
	}
	combined := p.tracesFP(app, secrets)
	for _, e := range p.catalog.Events {
		out[p.scoreFP(e, combined)] = kindScore + " " + e.Name
	}
	return out
}

// loadWarmup restores a cached warm-up result, rebuilding Remaining in
// catalog order from the verdict bitmap.
func (p *Profiler) loadWarmup(app workload.App) (*WarmupResult, bool) {
	a, ok := p.cfg.Store.Get(kindWarmup, p.warmupFP(app))
	if !ok {
		return nil, false
	}
	changed := a.Section("changed")
	if len(changed) != p.catalog.Size() {
		return nil, false
	}
	res := &WarmupResult{
		TotalEvents:      p.catalog.Size(),
		RemainingPerType: make(map[hpc.EventType]int),
	}
	for i, e := range p.catalog.Events {
		if changed[i] != 0 {
			res.Remaining = append(res.Remaining, e)
			res.RemainingPerType[e.Type]++
		}
	}
	return res, true
}

// storeWarmup checkpoints the warm-up verdict bitmap.
func (p *Profiler) storeWarmup(app workload.App, changed []bool) {
	a := artifact.New(kindWarmup, p.warmupFP(app))
	a.SetMeta("app", app.Name())
	bits := make([]float64, len(changed))
	for i, c := range changed {
		if c {
			bits[i] = 1
		}
	}
	a.AddSection("changed", bits)
	p.putArtifact(a)
}

// loadTraces restores one secret's trace matrix as repeat-major row views
// into the loaded slab. Float64 slabs round-trip bit-exactly, so scoring
// a loaded matrix equals scoring the collected one.
func (p *Profiler) loadTraces(app workload.App, secret string) ([][][]float64, bool) {
	a, ok := p.cfg.Store.Get(kindTrace, p.traceFP(app, secret))
	if !ok {
		return nil, false
	}
	reps, ticks, signals := p.cfg.RankRepeats, p.cfg.TraceTicks, microarch.NumSignals
	slab := a.Section("slab")
	if len(slab) != reps*ticks*signals {
		return nil, false
	}
	traces := make([][][]float64, reps)
	for rep := 0; rep < reps; rep++ {
		trace := make([][]float64, ticks)
		base := rep * ticks * signals
		for t := 0; t < ticks; t++ {
			off := base + t*signals
			trace[t] = slab[off : off+signals : off+signals]
		}
		traces[rep] = trace
	}
	return traces, true
}

// storeTraces checkpoints one secret's trace matrix as a single slab.
func (p *Profiler) storeTraces(app workload.App, secret string, traces [][][]float64) {
	a := artifact.New(kindTrace, p.traceFP(app, secret))
	a.SetMeta("app", app.Name())
	a.SetMeta("secret", secret)
	a.SetMeta("repeats", strconv.Itoa(len(traces)))
	buf := make([]float64, 0, p.cfg.RankRepeats*p.cfg.TraceTicks*microarch.NumSignals)
	for _, trace := range traces {
		for _, row := range trace {
			buf = append(buf, row...)
		}
	}
	a.AddSection("slab", buf)
	p.putArtifact(a)
}

// loadScore restores one event's score cell: MI plus the fitted
// per-secret class models, or the cached "degenerate, unrankable"
// verdict.
func (p *Profiler) loadScore(e *hpc.Event, fp string, secrets []string) (re *RankedEvent, ok bool) {
	a, ok := p.cfg.Store.Get(kindScore, fp)
	if !ok {
		return nil, false
	}
	if a.Meta["degenerate"] == "1" {
		return nil, true
	}
	mi := a.Section("mi")
	classes := a.Section("classes")
	if len(mi) != 1 || len(classes) != 3*len(secrets) {
		return nil, false
	}
	out := &RankedEvent{Event: e, MI: mi[0], Classes: make([]stats.ClassModel, len(secrets))}
	for i, s := range secrets {
		out.Classes[i] = stats.ClassModel{
			Secret: s,
			Prior:  classes[3*i],
			Dist:   stats.Gaussian{Mu: classes[3*i+1], Sigma: classes[3*i+2]},
		}
	}
	return out, true
}

// storeScore checkpoints one event's score cell (nil = degenerate).
func (p *Profiler) storeScore(e *hpc.Event, fp string, re *RankedEvent) {
	a := artifact.New(kindScore, fp)
	a.SetMeta("event", e.Name)
	if re == nil {
		a.SetMeta("degenerate", "1")
		p.putArtifact(a)
		return
	}
	a.AddSection("mi", []float64{re.MI})
	classes := make([]float64, 0, 3*len(re.Classes))
	for _, c := range re.Classes {
		classes = append(classes, c.Prior, c.Dist.Mu, c.Dist.Sigma)
	}
	a.AddSection("classes", classes)
	p.putArtifact(a)
}

// putArtifact writes a checkpoint; a failed write degrades resume, never
// the campaign, so it is logged and dropped.
func (p *Profiler) putArtifact(a *artifact.Artifact) {
	if err := p.cfg.Store.Put(a); err != nil {
		telemetry.Log().Warn("profiler: artifact checkpoint failed",
			telemetry.F("kind", a.Kind), telemetry.F("error", err.Error()))
	}
}
