package ops

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/repro/aegis/internal/telemetry"
	"github.com/repro/aegis/internal/telemetry/flight"
)

// newTestServer builds a server on fresh registry/recorder state with a
// couple of records journaled.
func newTestServer(t *testing.T, budget *OverheadBudget) *Server {
	t.Helper()
	rec := flight.NewRecorder(128)
	rec.Handle(flight.KindObfuscatorTick).Record(1, flight.CodeTickInjected, flight.CodeMechLaplace, 2, 1, 0)
	rec.Handle(flight.KindObfuscatorTick).Incident(2, flight.CodeDegradedPMURead, flight.CodeMechLaplace, 0, 0, 3)
	rec.Handle(flight.KindFault).Incident(2, flight.CodeFaultPMURead, flight.CodeNone, 0, 0, 0)
	reg := telemetry.NewRegistry()
	reg.Counter("obfuscator_ticks_total").Add(2)
	return NewServer(Config{Registry: reg, Recorder: rec, Budget: budget})
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
	return w
}

// TestHandlerTable pins status codes and content types per endpoint.
func TestHandlerTable(t *testing.T) {
	srv := newTestServer(t, NewOverheadBudget(0))
	h := srv.Handler()
	tests := []struct {
		path        string
		wantStatus  int
		wantType    string
		wantContain string
	}{
		{"/healthz", 200, "application/json", `"overhead-budget"`},
		{"/readyz", 200, "application/json", `"status"`},
		{"/metrics", 200, "text/plain; version=0.0.4; charset=utf-8", "obfuscator_ticks_total"},
		{"/flight", 200, "application/x-ndjson", flight.SchemaV1},
		{"/snapshot", 200, "application/json", SnapshotSchema},
		{"/flight?window=1", 200, "application/x-ndjson", `"seq":3`},
		{"/flight?kind=fault", 200, "application/x-ndjson", "fault:pmu-read"},
		{"/flight?since=2", 200, "application/x-ndjson", `"seq_first":3`},
		{"/flight?window=-1", 400, "", "bad window"},
		{"/flight?window=9999999999", 400, "", "bad window"},
		{"/flight?window=notanumber", 400, "", "bad window"},
		{"/flight?since=notanumber", 400, "", "bad since"},
		{"/flight?kind=bogus", 400, "", "unknown kind"},
		{"/debug/pprof/cmdline", 200, "", ""},
	}
	for _, tc := range tests {
		w := get(t, h, tc.path)
		if w.Code != tc.wantStatus {
			t.Errorf("%s: status %d, want %d (body %q)", tc.path, w.Code, tc.wantStatus, w.Body.String())
			continue
		}
		if tc.wantType != "" && w.Header().Get("Content-Type") != tc.wantType {
			t.Errorf("%s: content type %q, want %q", tc.path, w.Header().Get("Content-Type"), tc.wantType)
		}
		if tc.wantContain != "" && !strings.Contains(w.Body.String(), tc.wantContain) {
			t.Errorf("%s: body does not contain %q:\n%s", tc.path, tc.wantContain, w.Body.String())
		}
	}
}

// TestHealthStateTransitions walks a probe through ok → degraded →
// failed → ok and checks the aggregate status and HTTP code.
func TestHealthStateTransitions(t *testing.T) {
	srv := newTestServer(t, nil)
	var mu sync.Mutex
	state := StateOK
	srv.RegisterHealth(Probe{Name: "hpc", Check: func() ProbeResult {
		mu.Lock()
		defer mu.Unlock()
		return ProbeResult{State: state, Detail: "test"}
	}})
	srv.RegisterHealth(Probe{Name: "sev", Check: func() ProbeResult { return OK("ticks=2") }})
	h := srv.Handler()

	check := func(want State, wantCode int) {
		t.Helper()
		w := get(t, h, "/healthz")
		if w.Code != wantCode {
			t.Fatalf("state %v: status %d, want %d", want, w.Code, wantCode)
		}
		var rep struct {
			Status     string                 `json:"status"`
			Components map[string]ProbeResult `json:"components"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Status != want.String() {
			t.Fatalf("aggregate %q, want %q", rep.Status, want)
		}
		if rep.Components["hpc"].State != want {
			t.Fatalf("component hpc = %v, want %v", rep.Components["hpc"].State, want)
		}
	}
	check(StateOK, 200)
	mu.Lock()
	state = StateDegraded
	mu.Unlock()
	check(StateDegraded, 200) // degraded is alive-but-impaired
	mu.Lock()
	state = StateFailed
	mu.Unlock()
	check(StateFailed, 503)
	mu.Lock()
	state = StateOK
	mu.Unlock()
	check(StateOK, 200)
}

func TestReadyzGate(t *testing.T) {
	srv := newTestServer(t, nil)
	gate := NewGate("plan-warmup")
	srv.RegisterReadiness(gate.Probe())
	h := srv.Handler()
	if w := get(t, h, "/readyz"); w.Code != 503 {
		t.Fatalf("closed gate: /readyz = %d, want 503", w.Code)
	}
	gate.Open()
	if !gate.Opened() {
		t.Fatal("gate did not open")
	}
	if w := get(t, h, "/readyz"); w.Code != 200 {
		t.Fatalf("open gate: /readyz = %d, want 200", w.Code)
	}
	gate.Close()
	if w := get(t, h, "/readyz"); w.Code != 503 {
		t.Fatalf("re-closed gate: /readyz = %d, want 503", w.Code)
	}
}

func TestOverheadBudget(t *testing.T) {
	b := NewOverheadBudget(0)
	if st := b.Status(); st.Breached || st.Fraction != 0 || st.Target != DefaultOverheadTarget {
		t.Fatalf("empty budget status = %+v", st)
	}
	b.Add(1, 100) // 1%
	if st := b.Status(); st.Breached || st.Fraction != 0.01 {
		t.Fatalf("1%% status = %+v", st)
	}
	b.Add(4, 100) // cumulative 5/200 = 2.5%
	st := b.Status()
	if !st.Breached || st.Fraction != 0.025 {
		t.Fatalf("2.5%% status = %+v", st)
	}
	if !strings.Contains(st.Verdict(), "BREACHED") {
		t.Fatalf("verdict %q does not flag the breach", st.Verdict())
	}
	res := b.Probe().Check()
	if res.State != StateDegraded {
		t.Fatalf("breached probe state = %v, want degraded", res.State)
	}
}

func TestBudgetTelemetrySource(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter(telemetry.MetricObfuscatorInjectedInstructionsTotal).Add(10)
	reg.Counter(telemetry.MetricObfuscatorMultiInjectedInstructionsTotal).Add(5)
	reg.Counter(telemetry.MetricSevVcpuStepsTotal).Add(100)
	reg.Gauge(telemetry.MetricSevTickBudget).Set(20)
	b := NewOverheadBudget(0)
	b.SetSource(TelemetrySource(reg))
	st := b.Status()
	if st.Injected != 15 || st.Capacity != 2000 {
		t.Fatalf("source status = %+v, want injected 15 capacity 2000", st)
	}
	if st.Breached { // 0.75% < 2%
		t.Fatalf("0.75%% must not breach: %+v", st)
	}
}

// TestSnapshotBody checks /snapshot carries every section.
func TestSnapshotBody(t *testing.T) {
	b := NewOverheadBudget(0)
	b.Add(3, 100) // 3% — breached
	srv := newTestServer(t, b)
	w := get(t, srv.Handler(), "/snapshot")
	var body struct {
		Schema string `json:"schema"`
		Health struct {
			Status string `json:"status"`
		} `json:"health"`
		Budget  *BudgetStatus `json:"budget"`
		Metrics struct {
			Counters []struct {
				Name  string  `json:"name"`
				Value float64 `json:"value"`
			} `json:"counters"`
		} `json:"metrics"`
		Flight []string `json:"flight_tail"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("snapshot not JSON: %v", err)
	}
	if body.Schema != SnapshotSchema {
		t.Fatalf("schema %q", body.Schema)
	}
	if body.Budget == nil || !body.Budget.Breached {
		t.Fatalf("budget section missing or not breached: %+v", body.Budget)
	}
	if body.Health.Status != "degraded" {
		t.Fatalf("health %q, want degraded (breached budget probe)", body.Health.Status)
	}
	if len(body.Flight) != 4 { // header + 3 records
		t.Fatalf("flight tail has %d lines, want 4: %v", len(body.Flight), body.Flight)
	}
	if !strings.Contains(body.Flight[0], flight.SchemaV1) {
		t.Fatalf("flight tail header %q", body.Flight[0])
	}
	found := false
	for _, c := range body.Metrics.Counters {
		if c.Name == "obfuscator_ticks_total" && c.Value == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("metrics section missing obfuscator_ticks_total")
	}
}

// TestStartServesOverTCP is the end-to-end loopback test: Start on :0,
// hit the endpoints over real HTTP, Close.
func TestStartServesOverTCP(t *testing.T) {
	srv := newTestServer(t, NewOverheadBudget(0))
	srv.cfg.Addr = "127.0.0.1:0"
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Addr() != addr {
		t.Fatalf("Addr() = %q, want %q", srv.Addr(), addr)
	}
	for _, path := range []string{"/healthz", "/metrics", "/flight", "/snapshot"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d\n%s", path, resp.StatusCode, b)
		}
		if len(b) == 0 {
			t.Fatalf("GET %s: empty body", path)
		}
	}
	if _, err := srv.Start(); err == nil {
		srv.Close()
	}
}

func TestStartWithoutAddrFails(t *testing.T) {
	srv := NewServer(Config{})
	if _, err := srv.Start(); err == nil {
		t.Fatal("Start without Addr must fail")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close before Start: %v", err)
	}
}

// TestConcurrentProbeAndServe hammers handlers while registering probes
// and journaling records; meaningful under -race.
func TestConcurrentProbeAndServe(t *testing.T) {
	srv := newTestServer(t, NewOverheadBudget(0))
	h := srv.Handler()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 30; j++ {
				get(t, h, "/healthz")
				get(t, h, "/flight?window=8")
				get(t, h, "/snapshot")
			}
		}()
		go func() {
			defer wg.Done()
			hd := srv.cfg.Recorder.Handle(flight.KindFault)
			for j := 0; j < 100; j++ {
				hd.Incident(int64(j), flight.CodeFaultGadgetInterrupt, flight.CodeNone, 0, 0, 0)
			}
			srv.RegisterHealth(Probe{Name: "x", Check: func() ProbeResult { return OK("") }})
		}()
	}
	wg.Wait()
}
