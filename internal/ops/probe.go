package ops

import "sync/atomic"

// State is a component health verdict. Degraded components keep the
// process alive (healthz stays 200) but are visibly impaired; a failed
// component fails the whole health check.
type State int

// Health states, in increasing severity.
const (
	StateOK State = iota
	StateDegraded
	StateFailed
)

// String returns the stable wire name of the state.
func (s State) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateDegraded:
		return "degraded"
	case StateFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// ProbeResult is one probe's verdict with optional human detail.
type ProbeResult struct {
	State  State  `json:"state"`
	Detail string `json:"detail,omitempty"`
}

// Probe is one named component check. Check must be safe for concurrent
// use and cheap: it runs on every /healthz or /readyz request.
type Probe struct {
	Name  string
	Check func() ProbeResult
}

// OK builds a healthy result.
func OK(detail string) ProbeResult { return ProbeResult{State: StateOK, Detail: detail} }

// Degraded builds a degraded result.
func Degraded(detail string) ProbeResult {
	return ProbeResult{State: StateDegraded, Detail: detail}
}

// Failed builds a failed result.
func Failed(detail string) ProbeResult {
	return ProbeResult{State: StateFailed, Detail: detail}
}

// Gate is an atomic readiness latch: a readiness probe that fails until
// Open is called. The framework opens its warm-up gate once the first
// defense is deployed, so /readyz keeps load away until the plan is warm.
type Gate struct {
	name string
	open atomic.Bool
}

// NewGate builds a closed gate.
func NewGate(name string) *Gate { return &Gate{name: name} }

// Open marks the gate ready. Idempotent.
func (g *Gate) Open() { g.open.Store(true) }

// Close marks the gate not ready again.
func (g *Gate) Close() { g.open.Store(false) }

// Opened reports whether the gate is open.
func (g *Gate) Opened() bool { return g.open.Load() }

// Probe returns the gate as a readiness probe.
func (g *Gate) Probe() Probe {
	return Probe{Name: g.name, Check: func() ProbeResult {
		if g.open.Load() {
			return OK("")
		}
		return Failed("warming up")
	}}
}
