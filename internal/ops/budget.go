package ops

import (
	"fmt"
	"sync"

	"github.com/repro/aegis/internal/telemetry"
)

// DefaultOverheadTarget is the paper's injection overhead ceiling: the
// defense's gadget injection must stay under 2% of the protected
// workload's capacity (paper §IX-C evaluates ~1.26%).
const DefaultOverheadTarget = 0.02

// BudgetStatus is a point-in-time overhead verdict.
type BudgetStatus struct {
	// Injected and Capacity are the cumulative injected work and the
	// cumulative capacity it is measured against, in the same unit
	// (instructions when fed from telemetry, seconds when fed from
	// wall-clock accounting).
	Injected float64 `json:"injected"`
	Capacity float64 `json:"capacity"`
	// Fraction is Injected/Capacity (0 while Capacity is 0).
	Fraction float64 `json:"fraction"`
	// Target is the ceiling Fraction is held to.
	Target float64 `json:"target"`
	// Breached reports Fraction > Target.
	Breached bool `json:"breached"`
}

// Verdict renders the one-line human verdict printed by aegis-bench.
func (s BudgetStatus) Verdict() string {
	v := "within budget"
	if s.Breached {
		v = "BREACHED"
	}
	return fmt.Sprintf("overhead budget: %.2f%% of capacity injected (target %.2f%%) — %s",
		s.Fraction*100, s.Target*100, v)
}

// OverheadBudget continuously compares injected work against capacity and
// flips its health probe to degraded when the fraction crosses the
// target. Feed it either by accumulation (Add) or by attaching a Source
// that reports cumulative totals (e.g. TelemetrySource).
type OverheadBudget struct {
	mu       sync.Mutex
	target   float64
	injected float64
	capacity float64
	source   func() (injected, capacity float64)
}

// NewOverheadBudget builds a tracker; target <= 0 means
// DefaultOverheadTarget.
func NewOverheadBudget(target float64) *OverheadBudget {
	if target <= 0 {
		target = DefaultOverheadTarget
	}
	return &OverheadBudget{target: target}
}

// SetSource attaches a cumulative-totals source consulted on every
// Status call; it overrides values accumulated with Add.
func (b *OverheadBudget) SetSource(src func() (injected, capacity float64)) {
	b.mu.Lock()
	b.source = src
	b.mu.Unlock()
}

// Add accumulates injected work and capacity deltas.
func (b *OverheadBudget) Add(injected, capacity float64) {
	b.mu.Lock()
	b.injected += injected
	b.capacity += capacity
	b.mu.Unlock()
}

// Status returns the current verdict.
func (b *OverheadBudget) Status() BudgetStatus {
	b.mu.Lock()
	injected, capacity, src := b.injected, b.capacity, b.source
	target := b.target
	b.mu.Unlock()
	if src != nil {
		injected, capacity = src()
	}
	st := BudgetStatus{Injected: injected, Capacity: capacity, Target: target}
	if capacity > 0 {
		st.Fraction = injected / capacity
	}
	st.Breached = st.Fraction > target
	return st
}

// Probe returns the tracker as a health probe: degraded while breached.
func (b *OverheadBudget) Probe() Probe {
	return Probe{Name: "overhead-budget", Check: func() ProbeResult {
		st := b.Status()
		detail := fmt.Sprintf("%.2f%% of %.2f%% target", st.Fraction*100, st.Target*100)
		if st.Breached {
			return Degraded(detail)
		}
		return OK(detail)
	}}
}

// TelemetrySource derives cumulative (injected, capacity) instruction
// totals from a registry: injected is the obfuscators' injected
// instructions, capacity is vCPU steps × the per-tick instruction budget.
// This is the overhead-budget math of DESIGN.md: the defense's share of
// the machine's instruction capacity, the quantity the paper holds under
// 2%.
func TelemetrySource(reg *telemetry.Registry) func() (float64, float64) {
	if reg == nil {
		reg = telemetry.Default()
	}
	injected := reg.Counter(telemetry.MetricObfuscatorInjectedInstructionsTotal)
	multi := reg.Counter(telemetry.MetricObfuscatorMultiInjectedInstructionsTotal)
	steps := reg.Counter(telemetry.MetricSevVcpuStepsTotal)
	budget := reg.Gauge(telemetry.MetricSevTickBudget)
	return func() (float64, float64) {
		return injected.Value() + multi.Value(), steps.Value() * budget.Value()
	}
}
