// Package ops is the unified operations surface of the Aegis runtime: one
// stdlib net/http server exposing liveness and readiness (/healthz,
// /readyz, fed by registered component probes), Prometheus metrics
// (/metrics, the telemetry registry's existing exposition), profiling
// (/debug/pprof/*), the flight recorder (/flight, versioned JSONL with
// window/kind/since filters) and a one-shot incident snapshot (/snapshot:
// metrics + recent spans + flight tail + overhead-budget status). The
// ROADMAP's aegisd daemon mounts this same server; aegisctl serves it
// with -ops.
package ops

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/repro/aegis/internal/telemetry"
	"github.com/repro/aegis/internal/telemetry/flight"
)

// Config configures the ops server. The zero value serves the process
// defaults (default registry and recorder, no budget probe) on Addr.
type Config struct {
	// Addr is the listen address (e.g. ":9144" or "127.0.0.1:0"); the
	// empty string disables the server.
	Addr string
	// Registry backs /metrics and /snapshot; nil means the process-wide
	// default.
	Registry *telemetry.Registry
	// Recorder backs /flight; nil means the process-wide default.
	Recorder *flight.Recorder
	// Budget, when set, adds the overhead-budget health probe and the
	// budget section of /snapshot.
	Budget *OverheadBudget
	// SnapshotFlightWindow bounds the flight tail embedded in /snapshot;
	// 0 means 64.
	SnapshotFlightWindow int
}

// Server is the ops HTTP server. Construct with NewServer, register
// probes, then Start (or mount Handler on an external server).
type Server struct {
	cfg Config

	mu     sync.Mutex
	health []Probe
	ready  []Probe
	mounts []mountEntry

	ln   net.Listener
	http *http.Server
}

// mountEntry is an extra handler subtree registered with Mount.
type mountEntry struct {
	pattern  string
	endpoint string
	handler  http.Handler
}

// NewServer builds a server. A configured Budget's probe is
// pre-registered.
func NewServer(cfg Config) *Server {
	if cfg.Registry == nil {
		cfg.Registry = telemetry.Default()
	}
	if cfg.Recorder == nil {
		cfg.Recorder = flight.Default()
	}
	if cfg.SnapshotFlightWindow <= 0 {
		cfg.SnapshotFlightWindow = 64
	}
	s := &Server{cfg: cfg}
	if cfg.Budget != nil {
		s.RegisterHealth(cfg.Budget.Probe())
	}
	return s
}

// Budget returns the configured overhead tracker (nil when absent).
func (s *Server) Budget() *OverheadBudget { return s.cfg.Budget }

// RegisterHealth adds a component probe to /healthz.
func (s *Server) RegisterHealth(p Probe) {
	s.mu.Lock()
	s.health = append(s.health, p)
	s.mu.Unlock()
}

// RegisterReadiness adds a probe to /readyz (e.g. a warm-up Gate).
func (s *Server) RegisterReadiness(p Probe) {
	s.mu.Lock()
	s.ready = append(s.ready, p)
	s.mu.Unlock()
}

// Mount registers an additional handler subtree on the ops mux (e.g. the
// aegisd control API under "/ctl/v1/"). Served requests are counted under
// the given endpoint label. Must be called before Handler or Start.
func (s *Server) Mount(pattern, endpoint string, h http.Handler) {
	s.mu.Lock()
	s.mounts = append(s.mounts, mountEntry{pattern: pattern, endpoint: endpoint, handler: h})
	s.mu.Unlock()
}

// mOpsRequests counts served requests per endpoint; the label set is
// bounded by the fixed route table below.
func countRequest(endpoint string) {
	telemetry.C("ops_http_requests_total", telemetry.L("endpoint", endpoint)).Inc()
}

// Handler builds the full ops mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern, endpoint string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			countRequest(endpoint)
			h(w, r)
		})
	}
	route("/healthz", "healthz", s.handleHealthz)
	route("/readyz", "readyz", s.handleReadyz)
	route("/flight", "flight", s.handleFlight)
	route("/snapshot", "snapshot", s.handleSnapshot)
	metrics := s.cfg.Registry.Handler()
	route("/metrics", "metrics", func(w http.ResponseWriter, r *http.Request) {
		metrics.ServeHTTP(w, r)
	})
	route("/debug/pprof/", "pprof", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mu.Lock()
	mounts := append([]mountEntry(nil), s.mounts...)
	s.mu.Unlock()
	for _, m := range mounts {
		m := m
		mux.HandleFunc(m.pattern, func(w http.ResponseWriter, r *http.Request) {
			countRequest(m.endpoint)
			m.handler.ServeHTTP(w, r)
		})
	}
	return mux
}

// Start listens on Config.Addr and serves in a background goroutine,
// returning the bound address (useful with ":0" in tests). Returns an
// error when Addr is empty or the listen fails.
func (s *Server) Start() (string, error) {
	if s.cfg.Addr == "" {
		return "", fmt.Errorf("ops: no listen address configured")
	}
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return "", fmt.Errorf("ops: listen %s: %w", s.cfg.Addr, err)
	}
	h := s.Handler() // before taking mu: Handler copies the mounts under it
	s.mu.Lock()
	s.ln = ln
	s.http = &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	srv := s.http
	s.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Addr returns the bound listen address, or "" before Start.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server. Safe to call without Start.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.http
	s.http = nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

// healthReport is the JSON body of /healthz and /readyz.
type healthReport struct {
	Status     string                 `json:"status"`
	Components map[string]ProbeResult `json:"components,omitempty"`
}

// evaluate runs a probe set: the aggregate is the worst component state.
func evaluate(probes []Probe) healthReport {
	rep := healthReport{Status: StateOK.String()}
	worst := StateOK
	if len(probes) > 0 {
		rep.Components = make(map[string]ProbeResult, len(probes))
	}
	for _, p := range probes {
		res := p.Check()
		rep.Components[p.Name] = res
		if res.State > worst {
			worst = res.State
		}
	}
	rep.Status = worst.String()
	return rep
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// handleHealthz reports liveness: 200 while no component has failed
// (degraded components stay 200 — alive but impaired), 503 otherwise.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	probes := append([]Probe(nil), s.health...)
	s.mu.Unlock()
	rep := evaluate(probes)
	status := http.StatusOK
	if rep.Status == StateFailed.String() {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, rep)
}

// handleReadyz reports readiness: 503 until every readiness probe stops
// failing (a degraded component is still ready).
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	probes := append([]Probe(nil), s.ready...)
	s.mu.Unlock()
	rep := evaluate(probes)
	status := http.StatusOK
	if rep.Status == StateFailed.String() {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, rep)
}

// maxFlightWindow bounds ?window= so a typo cannot ask for a
// pathological dump size.
const maxFlightWindow = 1 << 20

// handleFlight dumps the recorder as aegis-flight/v1 JSONL. Query
// parameters: ?window=N (newest N records), ?kind=a,b (filter by record
// kind), ?since=SEQ (records newer than SEQ, for tailing).
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var opts flight.DumpOptions
	if v := q.Get("window"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 || n > maxFlightWindow {
			http.Error(w, fmt.Sprintf("ops: bad window %q (want 0..%d)", v, maxFlightWindow),
				http.StatusBadRequest)
			return
		}
		opts.Window = n
	}
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("ops: bad since %q", v), http.StatusBadRequest)
			return
		}
		opts.Since = n
	}
	if v := q.Get("kind"); v != "" {
		for _, name := range strings.Split(v, ",") {
			k, ok := flight.KindByName(strings.TrimSpace(name))
			if !ok {
				http.Error(w, fmt.Sprintf("ops: unknown kind %q", name), http.StatusBadRequest)
				return
			}
			opts.Kinds = append(opts.Kinds, k)
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = s.cfg.Recorder.WriteJSONL(w, opts)
}

// snapshotBody is the JSON shape of /snapshot.
type snapshotBody struct {
	Schema  string                 `json:"schema"`
	Health  healthReport           `json:"health"`
	Ready   healthReport           `json:"ready"`
	Budget  *BudgetStatus          `json:"budget,omitempty"`
	Metrics telemetry.Snapshot     `json:"metrics"`
	Spans   []telemetry.SpanRecord `json:"recent_spans,omitempty"`
	Flight  json.RawMessage        `json:"flight_tail"`
}

// SnapshotSchema versions the /snapshot body.
const SnapshotSchema = "aegis-snapshot/v1"

// handleSnapshot returns one JSON document with everything an incident
// report needs: health, budget, metrics, recent spans and the flight
// tail.
func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	health := append([]Probe(nil), s.health...)
	ready := append([]Probe(nil), s.ready...)
	s.mu.Unlock()
	body := snapshotBody{
		Schema:  SnapshotSchema,
		Health:  evaluate(health),
		Ready:   evaluate(ready),
		Metrics: s.cfg.Registry.Snapshot(),
		Spans:   s.cfg.Registry.Tracer().Recent(),
	}
	if s.cfg.Budget != nil {
		st := s.cfg.Budget.Status()
		body.Budget = &st
	}
	var tail strings.Builder
	if err := s.cfg.Recorder.WriteJSONL(&tail, flight.DumpOptions{
		Window: s.cfg.SnapshotFlightWindow, Label: "snapshot",
	}); err == nil {
		lines, _ := json.Marshal(strings.Split(strings.TrimSuffix(tail.String(), "\n"), "\n"))
		body.Flight = lines
	}
	writeJSON(w, http.StatusOK, body)
}
