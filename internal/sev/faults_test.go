package sev

import (
	"testing"

	"github.com/repro/aegis/internal/faultinject"
	"github.com/repro/aegis/internal/isa"
)

// seqProc runs one fixed instruction sequence per tick via ExecuteSeq and
// records how many instructions retired each tick.
type seqProc struct {
	name string
	seq  []isa.Variant
	ran  []int
}

func (p *seqProc) Name() string { return p.name }

func (p *seqProc) Step(g *GuestExecutor) {
	n, err := g.ExecuteSeq(p.seq)
	if err != nil {
		return
	}
	p.ran = append(p.ran, n)
}

func launchOne(t *testing.T, seed uint64) (*World, *VM) {
	t.Helper()
	w := NewWorld(DefaultConfig(seed))
	vm, err := w.LaunchVM(VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	return w, vm
}

func TestPreemptionSlashesBudget(t *testing.T) {
	w, vm := launchOne(t, 1)
	p := &burnProc{name: "burner", perTick: 1 << 30, instr: aluVariant(t)}
	if err := vm.AddProcess(0, p); err != nil {
		t.Fatal(err)
	}
	// Every tick preempted at 25% budget: the burner retires only a
	// quarter of the tick budget.
	w.SetFaults(faultinject.New(faultinject.Config{
		Seed: 1, PreemptionRate: 1, PreemptionBurstTicks: 1, PreemptionBudgetFrac: 0.25,
	}))
	w.Run(4)
	want := 4 * w.TickBudget() / 4
	if p.total != want {
		t.Errorf("retired %d instructions under full preemption, want %d", p.total, want)
	}
	// Host-visible CPU usage is measured against the FULL tick budget, so
	// a preempted guest looks under-utilised (as `top` on the host would).
	u, err := vm.CPUUsage(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if u < 0.2 || u > 0.3 {
		t.Errorf("preempted usage = %v, want ~0.25 of the full budget", u)
	}
	if w.Faults().Count(faultinject.KindPreemption) == 0 {
		t.Error("preemption faults not accounted on the injector")
	}
}

func TestGadgetInterruptExecutesPartialSequence(t *testing.T) {
	w, vm := launchOne(t, 2)
	seq := make([]isa.Variant, 16)
	for i := range seq {
		seq[i] = aluVariant(t)
	}
	p := &seqProc{name: "gadget", seq: seq}
	if err := vm.AddProcess(0, p); err != nil {
		t.Fatal(err)
	}
	w.SetFaults(faultinject.New(faultinject.Config{Seed: 2, GadgetInterruptRate: 1}))
	w.Run(20)
	if len(p.ran) != 20 {
		t.Fatalf("process stepped %d times, want 20", len(p.ran))
	}
	for i, n := range p.ran {
		// Budget is ample, so every shortfall is an injected interrupt.
		if n >= len(seq) {
			t.Fatalf("tick %d: full sequence retired under rate-1 interrupts", i)
		}
		if n < 0 {
			t.Fatalf("tick %d: negative retire count %d", i, n)
		}
	}
}

func TestHealthyWorldUnchangedByNilInjector(t *testing.T) {
	run := func(set bool) int {
		w, vm := launchOne(t, 3)
		if set {
			w.SetFaults(nil)
		}
		p := &burnProc{name: "b", perTick: 300, instr: aluVariant(t)}
		if err := vm.AddProcess(0, p); err != nil {
			t.Fatal(err)
		}
		w.Run(10)
		return p.total
	}
	if a, b := run(false), run(true); a != b {
		t.Errorf("nil injector changed execution: %d vs %d instructions", a, b)
	}
}

func TestFaultSchedulesIndependentOfVMOrder(t *testing.T) {
	// Fault handles are labelled by (vm, vcpu), so what one vCPU suffers
	// must not depend on how many other VMs exist or map iteration order.
	retired := func(extraVMs int) []int {
		w := NewWorld(DefaultConfig(4))
		vm, err := w.LaunchVM(VMConfig{VCPUs: 1, SEV: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < extraVMs; i++ {
			other, err := w.LaunchVM(VMConfig{VCPUs: 1, SEV: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := other.AddProcess(0, &burnProc{name: "other", perTick: 100, instr: aluVariant(t)}); err != nil {
				t.Fatal(err)
			}
		}
		p := &seqProc{name: "probe", seq: make([]isa.Variant, 8)}
		for i := range p.seq {
			p.seq[i] = aluVariant(t)
		}
		if err := vm.AddProcess(0, p); err != nil {
			t.Fatal(err)
		}
		cfg, err := faultinject.Preset(faultinject.PresetHeavy, 4)
		if err != nil {
			t.Fatal(err)
		}
		w.SetFaults(faultinject.New(cfg))
		w.Run(50)
		return p.ran
	}
	alone, crowded := retired(0), retired(3)
	if len(alone) != len(crowded) {
		t.Fatalf("step counts differ: %d vs %d", len(alone), len(crowded))
	}
	for i := range alone {
		if alone[i] != crowded[i] {
			t.Fatalf("tick %d: vm0/vcpu0 schedule depends on other VMs (%d vs %d)",
				i, alone[i], crowded[i])
		}
	}
}
