package sev

import (
	"errors"
	"testing"

	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/isa"
)

// burnProc executes a fixed number of ALU instructions per tick.
type burnProc struct {
	name    string
	perTick int
	instr   isa.Variant
	total   int
}

func (b *burnProc) Name() string { return b.name }

func (b *burnProc) Step(g *GuestExecutor) {
	for i := 0; i < b.perTick; i++ {
		ok, err := g.Execute(b.instr)
		if err != nil || !ok {
			return
		}
		b.total++
	}
}

func aluVariant(t *testing.T) isa.Variant {
	t.Helper()
	res := isa.Cleanup(isa.SpecAMDEpyc(1), isa.AMDEpycFeatures())
	for _, v := range res.Legal {
		if v.Class == isa.ClassALU {
			return v
		}
	}
	t.Fatal("no ALU variant")
	return isa.Variant{}
}

func TestLaunchAndAttest(t *testing.T) {
	w := NewWorld(DefaultConfig(1))
	vm, err := w.LaunchVM(VMConfig{VCPUs: 4, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	att := vm.Attest()
	if att.Processor != "AMD EPYC 7252" {
		t.Errorf("attested processor = %q", att.Processor)
	}
	if att.SEVVersion != "SEV-SNP" {
		t.Errorf("attested SEV version = %q", att.SEVVersion)
	}
	if vm.VCPUs() != 4 {
		t.Errorf("vcpus = %d, want 4", vm.VCPUs())
	}
}

func TestSEVBlocksHostMemoryRead(t *testing.T) {
	w := NewWorld(DefaultConfig(2))
	enc, err := w.LaunchVM(VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.GuestWriteMemory(0, []byte("secret")); err != nil {
		t.Fatal(err)
	}
	if _, err := enc.HostReadMemory(0, 6); !errors.Is(err, ErrEncrypted) {
		t.Errorf("host read of SEV guest = %v, want ErrEncrypted", err)
	}

	plain, err := w.LaunchVM(VMConfig{VCPUs: 1, SEV: false})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.GuestWriteMemory(0, []byte("public")); err != nil {
		t.Fatal(err)
	}
	data, err := plain.HostReadMemory(0, 6)
	if err != nil || string(data) != "public" {
		t.Errorf("host read of plain guest = %q, %v", data, err)
	}
}

func TestVCPUPinningDistinctCores(t *testing.T) {
	w := NewWorld(DefaultConfig(3))
	vm, err := w.LaunchVM(VMConfig{VCPUs: 4, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for i := 0; i < vm.VCPUs(); i++ {
		core, err := vm.PhysicalCore(i)
		if err != nil {
			t.Fatal(err)
		}
		if seen[core] {
			t.Fatalf("two vCPUs pinned to core %d", core)
		}
		seen[core] = true
	}
}

func TestLaunchFailsWhenCoresExhausted(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.PhysicalCores = 2
	w := NewWorld(cfg)
	if _, err := w.LaunchVM(VMConfig{VCPUs: 2, SEV: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.LaunchVM(VMConfig{VCPUs: 1, SEV: true}); !errors.Is(err, ErrCoreOccupied) {
		t.Errorf("overcommitted launch = %v, want ErrCoreOccupied", err)
	}
}

func TestDestroyVMFreesCores(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.PhysicalCores = 2
	w := NewWorld(cfg)
	vm, err := w.LaunchVM(VMConfig{VCPUs: 2, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.DestroyVM(vm.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := w.LaunchVM(VMConfig{VCPUs: 2, SEV: true}); err != nil {
		t.Errorf("relaunch after destroy failed: %v", err)
	}
	if err := w.DestroyVM(99); !errors.Is(err, ErrNoSuchVM) {
		t.Errorf("destroy missing VM = %v", err)
	}
}

func TestStepExecutesProcesses(t *testing.T) {
	w := NewWorld(DefaultConfig(6))
	vm, err := w.LaunchVM(VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	p := &burnProc{name: "burn", perTick: 100, instr: aluVariant(t)}
	if err := vm.AddProcess(0, p); err != nil {
		t.Fatal(err)
	}
	w.Run(10)
	if p.total != 1000 {
		t.Errorf("process executed %d instructions, want 1000", p.total)
	}
}

func TestTickBudgetShared(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.TickBudget = 150
	w := NewWorld(cfg)
	vm, err := w.LaunchVM(VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	a := &burnProc{name: "a", perTick: 100, instr: aluVariant(t)}
	b := &burnProc{name: "b", perTick: 100, instr: aluVariant(t)}
	if err := vm.AddProcess(0, a); err != nil {
		t.Fatal(err)
	}
	if err := vm.AddProcess(0, b); err != nil {
		t.Fatal(err)
	}
	w.Step()
	if a.total != 100 {
		t.Errorf("first process got %d, want its full 100", a.total)
	}
	if b.total != 50 {
		t.Errorf("second process got %d, want the remaining 50", b.total)
	}
}

func TestCPUUsageMeasurement(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.TickBudget = 200
	w := NewWorld(cfg)
	vm, err := w.LaunchVM(VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	p := &burnProc{name: "half", perTick: 100, instr: aluVariant(t)}
	if err := vm.AddProcess(0, p); err != nil {
		t.Fatal(err)
	}
	w.Run(20)
	usage, err := vm.CPUUsage(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if usage < 0.45 || usage > 0.55 {
		t.Errorf("cpu usage = %v, want ~0.5", usage)
	}
}

func TestHostPMUSeesGuestActivity(t *testing.T) {
	// The core of the threat model: the host programs the PMU of the
	// physical core backing a SEV vCPU and observes guest work, even
	// though memory and registers are sealed.
	w := NewWorld(DefaultConfig(9))
	vm, err := w.LaunchVM(VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.AddProcess(0, &burnProc{name: "victim", perTick: 500, instr: aluVariant(t)}); err != nil {
		t.Fatal(err)
	}
	coreIdx, err := vm.PhysicalCore(0)
	if err != nil {
		t.Fatal(err)
	}
	core, err := w.Core(coreIdx)
	if err != nil {
		t.Fatal(err)
	}
	pmu := hpc.NewPMU(core, nil)
	cat := hpc.NewAMDEpyc7252Catalog(1)
	if err := pmu.Program(0, cat.MustByName("RETIRED_UOPS")); err != nil {
		t.Fatal(err)
	}
	w.Run(5)
	v, err := pmu.RDPMC(0)
	if err != nil {
		t.Fatal(err)
	}
	if v < 2000 {
		t.Errorf("host-visible uops = %v, want >= 2500 guest instructions", v)
	}
}

func TestRemoveProcess(t *testing.T) {
	w := NewWorld(DefaultConfig(10))
	vm, err := w.LaunchVM(VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	p := &burnProc{name: "gone", perTick: 10, instr: aluVariant(t)}
	if err := vm.AddProcess(0, p); err != nil {
		t.Fatal(err)
	}
	if err := vm.RemoveProcess(0, "gone"); err != nil {
		t.Fatal(err)
	}
	w.Run(3)
	if p.total != 0 {
		t.Errorf("removed process executed %d instructions", p.total)
	}
	if err := vm.RemoveProcess(0, "missing"); err == nil {
		t.Error("removing missing process did not error")
	}
}

func TestGuestExecutorBudgetExhaustion(t *testing.T) {
	cfg := DefaultConfig(11)
	cfg.TickBudget = 10
	w := NewWorld(cfg)
	vm, err := w.LaunchVM(VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	p := &burnProc{name: "greedy", perTick: 1000, instr: aluVariant(t)}
	if err := vm.AddProcess(0, p); err != nil {
		t.Fatal(err)
	}
	w.Step()
	if p.total != 10 {
		t.Errorf("process executed %d, want capped 10", p.total)
	}
	usage, _ := vm.CPUUsage(0, 1)
	if usage != 1.0 {
		t.Errorf("usage = %v, want 1.0 at saturation", usage)
	}
}

func TestWorldErrors(t *testing.T) {
	w := NewWorld(DefaultConfig(12))
	if _, err := w.Core(-1); !errors.Is(err, ErrNoSuchCore) {
		t.Errorf("Core(-1) = %v", err)
	}
	vm, err := w.LaunchVM(VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.PhysicalCore(5); !errors.Is(err, ErrNoSuchVCPU) {
		t.Errorf("PhysicalCore(5) = %v", err)
	}
	if err := vm.AddProcess(9, &burnProc{}); !errors.Is(err, ErrNoSuchVCPU) {
		t.Errorf("AddProcess(9) = %v", err)
	}
	if _, err := vm.CPUUsage(9, 1); !errors.Is(err, ErrNoSuchVCPU) {
		t.Errorf("CPUUsage(9) = %v", err)
	}
	if _, err := vm.HostReadMemory(-1, 4); err == nil {
		t.Error("negative offset read accepted")
	}
}

func TestGuestMemoryBounds(t *testing.T) {
	w := NewWorld(DefaultConfig(13))
	vm, err := w.LaunchVM(VMConfig{VCPUs: 1, SEV: false, MemoryBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.GuestWriteMemory(10, []byte("12345678")); err == nil {
		t.Error("out-of-range guest write accepted")
	}
	if _, err := vm.HostReadMemory(10, 8); err == nil {
		t.Error("out-of-range host read accepted")
	}
}

func TestCrossVMCoreIsolation(t *testing.T) {
	// Two SEV guests on different physical cores: activity in one must
	// not appear in the other core's counters (the HPC side channel is
	// per physical core; cross-core contamination would be a simulator
	// bug, not a paper behaviour).
	w := NewWorld(DefaultConfig(40))
	victim, err := w.LaunchVM(VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	neighbor, err := w.LaunchVM(VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := neighbor.AddProcess(0, &burnProc{name: "noisy", perTick: 800, instr: aluVariant(t)}); err != nil {
		t.Fatal(err)
	}
	victimCoreIdx, err := victim.PhysicalCore(0)
	if err != nil {
		t.Fatal(err)
	}
	neighborCoreIdx, err := neighbor.PhysicalCore(0)
	if err != nil {
		t.Fatal(err)
	}
	if victimCoreIdx == neighborCoreIdx {
		t.Fatal("hypervisor pinned two VMs to one core")
	}
	victimCore, err := w.Core(victimCoreIdx)
	if err != nil {
		t.Fatal(err)
	}
	before := victimCore.Counters()
	w.Run(20)
	delta := victimCore.Counters().Sub(before)
	// The idle victim core sees at most stray interrupt noise.
	if delta.Instructions > 2000 {
		t.Errorf("idle victim core retired %d instructions while neighbor ran", delta.Instructions)
	}
	neighborCore, err := w.Core(neighborCoreIdx)
	if err != nil {
		t.Fatal(err)
	}
	if neighborCore.Counters().Instructions < 10000 {
		t.Errorf("neighbor core retired only %d instructions", neighborCore.Counters().Instructions)
	}
}

func TestSameVCPUProcessesShareCore(t *testing.T) {
	// The defense's pinning requirement: two processes on the same vCPU
	// execute on the same physical core, so their HPC contributions are
	// indistinguishable to the host (paper §VII-C).
	w := NewWorld(DefaultConfig(41))
	vm, err := w.LaunchVM(VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	a := &burnProc{name: "app", perTick: 100, instr: aluVariant(t)}
	b := &burnProc{name: "obf", perTick: 100, instr: aluVariant(t)}
	if err := vm.AddProcess(0, a); err != nil {
		t.Fatal(err)
	}
	if err := vm.AddProcess(0, b); err != nil {
		t.Fatal(err)
	}
	coreIdx, err := vm.PhysicalCore(0)
	if err != nil {
		t.Fatal(err)
	}
	core, err := w.Core(coreIdx)
	if err != nil {
		t.Fatal(err)
	}
	w.Run(10)
	// The host sees the sum; it cannot attribute instructions to a or b.
	if got := core.Counters().Instructions; got != uint64(a.total+b.total) {
		t.Errorf("core retired %d, processes executed %d+%d", got, a.total, b.total)
	}
}

func TestSEVVersionRegisterProtection(t *testing.T) {
	// Paper §II-B: plain SEV leaves register state visible to the host on
	// world switches; SEV-ES closed that gap, SEV-SNP keeps it closed.
	w := NewWorld(DefaultConfig(60))
	mk := func(v SEVVersion) *VM {
		vm, err := w.LaunchVM(VMConfig{VCPUs: 1, Version: v})
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.GuestSetRegister(0, 0xdeadbeef); err != nil {
			t.Fatal(err)
		}
		return vm
	}
	plain := mk(SEVPlain)
	regs, err := plain.HostReadRegisters()
	if err != nil {
		t.Fatalf("plain SEV register read failed: %v", err)
	}
	if regs[0] != 0xdeadbeef {
		t.Errorf("plain SEV register = %#x", regs[0])
	}
	if plain.Attest().SEVVersion != "SEV" {
		t.Errorf("attested version = %q", plain.Attest().SEVVersion)
	}

	es := mk(SEVES)
	if _, err := es.HostReadRegisters(); !errors.Is(err, ErrEncrypted) {
		t.Errorf("SEV-ES register read = %v, want ErrEncrypted", err)
	}

	snp := mk(SEVSNP)
	if _, err := snp.HostReadRegisters(); !errors.Is(err, ErrEncrypted) {
		t.Errorf("SEV-SNP register read = %v, want ErrEncrypted", err)
	}
	if snp.Attest().SEVVersion != "SEV-SNP" {
		t.Errorf("attested version = %q", snp.Attest().SEVVersion)
	}

	// Memory stays encrypted for every SEV generation.
	if _, err := plain.HostReadMemory(0, 4); !errors.Is(err, ErrEncrypted) {
		t.Errorf("plain SEV memory read = %v, want ErrEncrypted", err)
	}
	// SEV=true shorthand still means SNP.
	vmShort, err := w.LaunchVM(VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	if vmShort.Version() != SEVSNP {
		t.Errorf("SEV=true version = %v, want SEV-SNP", vmShort.Version())
	}
	if err := vmShort.GuestSetRegister(99, 1); err == nil {
		t.Error("out-of-range register accepted")
	}
}

func TestSharedL2CrossCoreContention(t *testing.T) {
	// With a shared L2 complex, a cache-thrashing neighbor on the sibling
	// core evicts the victim's L2 lines — the cross-core cache-occupancy
	// channel the paper's §X proposes extending Aegis to.
	missesWithNeighbor := func(shared, neighborActive bool) uint64 {
		cfg := DefaultConfig(80)
		cfg.SharedL2 = shared
		w := NewWorld(cfg)
		victim, err := w.LaunchVM(VMConfig{VCPUs: 1, SEV: true}) // core 0
		if err != nil {
			t.Fatal(err)
		}
		neighbor, err := w.LaunchVM(VMConfig{VCPUs: 1, SEV: true}) // core 1 (sibling)
		if err != nil {
			t.Fatal(err)
		}
		res := isa.Cleanup(isa.SpecAMDEpyc(1), isa.AMDEpycFeatures())
		var load isa.Variant
		for _, v := range res.Legal {
			if v.Class == isa.ClassLoad {
				load = v
				break
			}
		}
		// Victim repeatedly walks a small working set that fits in L2.
		victimProc := &wsProc{name: "victim", instr: load, perTick: 300, ws: 128 << 10}
		if err := victim.AddProcess(0, victimProc); err != nil {
			t.Fatal(err)
		}
		if neighborActive {
			// Neighbor thrashes a huge working set.
			if err := neighbor.AddProcess(0, &wsProc{name: "thrash", instr: load, perTick: 1500, ws: 64 << 20}); err != nil {
				t.Fatal(err)
			}
		}
		victimCoreIdx, err := victim.PhysicalCore(0)
		if err != nil {
			t.Fatal(err)
		}
		core, err := w.Core(victimCoreIdx)
		if err != nil {
			t.Fatal(err)
		}
		w.Run(30) // warm
		before := core.Counters()
		w.Run(60)
		return core.Counters().Sub(before).L2Misses
	}

	quietShared := missesWithNeighbor(true, false)
	noisyShared := missesWithNeighbor(true, true)
	noisyPrivate := missesWithNeighbor(false, true)

	if noisyShared <= quietShared {
		t.Errorf("shared L2: neighbor thrash did not raise victim L2 misses (%d <= %d)",
			noisyShared, quietShared)
	}
	if noisyShared <= noisyPrivate*2 {
		t.Errorf("shared-L2 contention (%d misses) not clearly above private-L2 (%d)",
			noisyShared, noisyPrivate)
	}
}

// wsProc executes loads over a working set.
type wsProc struct {
	name    string
	instr   isa.Variant
	perTick int
	ws      uint64
}

func (p *wsProc) Name() string { return p.name }

func (p *wsProc) Step(g *GuestExecutor) {
	g.Context().WorkingSet = p.ws
	for i := 0; i < p.perTick; i++ {
		ok, err := g.Execute(p.instr)
		if err != nil || !ok {
			return
		}
	}
}
