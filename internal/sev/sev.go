// Package sev simulates the confidential-computing world of the paper's
// threat model: a host machine whose hypervisor launches guest VMs under
// AMD Secure Encrypted Virtualization. Guest memory and register state are
// opaque to the host, but the host retains full access to the physical
// cores' performance monitoring units — the HPC side channel Aegis defends
// against.
//
// Time advances in discrete ticks (one tick models one millisecond, the
// paper's HPC sampling interval). Each tick, every virtual CPU executes up
// to its instruction budget on the physical core it is pinned to; host
// monitors sample PMU deltas at tick boundaries.
package sev

import (
	"errors"
	"fmt"

	"github.com/repro/aegis/internal/faultinject"
	"github.com/repro/aegis/internal/isa"
	"github.com/repro/aegis/internal/microarch"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/telemetry"
	"github.com/repro/aegis/internal/telemetry/flight"
)

// World metrics: scheduler tick volume and VM lifecycle, the base rates
// every per-tick metric above them is normalised against.
var (
	mWorldTicks  = telemetry.C("sev_world_ticks_total")
	mVCPUSteps   = telemetry.C("sev_vcpu_steps_total")
	mVMsLaunched = telemetry.C("sev_vms_launched_total")
	gTickBudget  = telemetry.G("sev_tick_budget")

	// fWorld journals a periodic world summary so a flight dump around an
	// incident shows the machine shape without needing full metrics.
	fWorld = flight.Get(flight.KindWorldStep)
)

// Errors returned by the SEV world.
var (
	ErrEncrypted    = errors.New("sev: guest memory is encrypted")
	ErrNoSuchVM     = errors.New("sev: no such VM")
	ErrNoSuchVCPU   = errors.New("sev: no such vCPU")
	ErrNoSuchCore   = errors.New("sev: no such physical core")
	ErrCoreOccupied = errors.New("sev: physical core already has a vCPU pinned")
)

// Config sizes the simulated host machine.
type Config struct {
	// Processor is the host CPU model string, reported by attestation.
	Processor string
	// PhysicalCores is the number of cores.
	PhysicalCores int
	// Core configures each core's micro-architecture.
	Core microarch.CoreConfig
	// TickBudget is the instruction capacity of one core for one tick.
	TickBudget int
	// SharedL2 makes core pairs (2i, 2i+1) share one L2 cache, the
	// complex topology behind cross-core cache-occupancy side channels
	// (the attack class the paper's §X proposes extending Aegis to).
	SharedL2 bool
	// Seed drives all stochastic behaviour in the world.
	Seed uint64
}

// DefaultConfig returns the paper's AMD testbed: an EPYC 7252 host with a
// 4-vCPU guest.
func DefaultConfig(seed uint64) Config {
	return Config{
		Processor:     "AMD EPYC 7252",
		PhysicalCores: 8,
		Core:          microarch.DefaultCoreConfig(),
		TickBudget:    2000,
		Seed:          seed,
	}
}

// Process is a guest workload entity scheduled on a vCPU. Step is called
// once per tick with an executor bounded by the tick's remaining
// instruction budget.
type Process interface {
	// Name identifies the process inside the guest.
	Name() string
	// Step runs up to one tick of work. Implementations should stop when
	// the executor's budget is exhausted.
	Step(g *GuestExecutor)
}

// GuestExecutor lets a guest process execute instructions on the physical
// core backing its vCPU during one tick.
type GuestExecutor struct {
	core   *microarch.Core
	ctx    *microarch.ExecContext
	budget int
	used   int
	tick   int64
	faults *faultinject.Handle
}

// Execute retires one instruction if budget remains; it reports whether the
// instruction was executed.
func (g *GuestExecutor) Execute(v isa.Variant) (bool, error) {
	if g.used >= g.budget {
		return false, nil
	}
	if err := g.core.Execute(v, g.ctx); err != nil {
		return false, err
	}
	g.used++
	return true, nil
}

// ExecuteSeq retires a sequence, stopping when the budget runs out; it
// returns the number of instructions executed. Under fault injection an
// interrupt (VM exit) can land mid-sequence, in which case fewer
// instructions retire even though budget remains — callers distinguish the
// two by checking Remaining.
func (g *GuestExecutor) ExecuteSeq(seq []isa.Variant) (int, error) {
	if stop, ok := g.faults.GadgetInterrupt(len(seq)); ok {
		seq = seq[:stop]
	}
	n := 0
	for _, v := range seq {
		ok, err := g.Execute(v)
		if err != nil {
			return n, err
		}
		if !ok {
			return n, nil
		}
		n++
	}
	return n, nil
}

// Remaining returns the instruction budget left this tick.
func (g *GuestExecutor) Remaining() int { return g.budget - g.used }

// Used returns the instructions consumed so far this tick.
func (g *GuestExecutor) Used() int { return g.used }

// Tick returns the current world tick (guest-visible time).
func (g *GuestExecutor) Tick() int64 { return g.tick }

// Context returns the execution context (memory/branch behaviour) the
// process runs under; processes may retarget the working set.
func (g *GuestExecutor) Context() *microarch.ExecContext { return g.ctx }

// Core exposes the backing core for in-guest PMU reads (the paper's d*
// kernel module reads HPCs with RDPMC from inside the VM).
func (g *GuestExecutor) Core() *microarch.Core { return g.core }

// vcpu is one virtual CPU of a VM.
type vcpu struct {
	physCore int
	procs    []Process
	ctx      *microarch.ExecContext
	// faultLabel identifies this vCPU in fault schedules ("vm0/vcpu1");
	// faults is derived lazily on the first Step after SetFaults. Labelling
	// by (vm, vcpu) — not by iteration order — keeps schedules independent
	// of Go's map ordering in World.Step.
	faultLabel string
	faults     *faultinject.Handle
	// nextFirst rotates which process runs first each tick, so co-located
	// processes timeshare the budget fairly (without this, a process
	// added later could never delay an earlier one, and the obfuscator
	// would impose no latency on the protected application).
	nextFirst int
	// exec is the per-tick guest executor, reused every Step so the tick
	// loop stays allocation-free. Processes must not retain it across
	// ticks (the Process.Step contract).
	exec GuestExecutor
	// usage history: fraction of tick budget consumed per tick. The
	// all-time aggregate lives in usageSum/usageTicks; per-tick samples
	// are kept in a fixed ring of the last usageWindow ticks so long runs
	// do not grow memory per tick. Windowed queries larger than the ring
	// fall back to the ring's span (no current caller asks for one).
	usageRing  []float64
	usageLen   int // filled ring entries, <= usageWindow
	usageNext  int // next ring write position
	usageSum   float64
	usageTicks int64
}

// usageWindow is the per-vcpu utilisation history retained for windowed
// CPUUsage queries; beyond it only the all-time mean survives.
const usageWindow = 4096

// VM is a guest virtual machine.
type VM struct {
	id      int
	version SEVVersion
	world   *World
	vcpus   []*vcpu
	// memory is the guest's (plaintext) memory content; the SEV engine
	// encrypts it from the host's perspective.
	memory []byte
	// regs is the architectural register file the hypervisor sees on a
	// world switch; SEV-ES and later encrypt it.
	regs [16]uint64
}

// Attestation is the PSP attestation report the guest obtains at launch;
// the profiler uses the processor model to pick a matching template server
// (paper §V-B footnote).
type Attestation struct {
	Processor  string
	SEVVersion string
	VMID       int
	// Measurement is a launch digest placeholder.
	Measurement uint64
}

// World is the simulated host machine.
type World struct {
	cfg   Config
	cores []*microarch.Core
	vms   map[int]*VM
	// vmOrder holds the live VMs in launch order; Step iterates it so the
	// tick loop is allocation-free and deterministic instead of following
	// Go's randomised map order. (Fault schedules are keyed by (vm, vcpu)
	// labels, so behaviour never depended on iteration order — this pins
	// the order anyway.)
	vmOrder []*VM
	pinned  map[int]*vcpu // physCore -> vcpu
	nextVM  int
	tick    int64
	rand    *rng.Source
	faults  *faultinject.Injector
}

// SetFaults attaches a fault injector to the world: vCPUs start suffering
// preemption bursts and mid-gadget interrupts. A nil injector (the
// default) is the healthy substrate. Call before or after LaunchVM;
// handles are derived lazily per (vm, vcpu) on the next Step.
func (w *World) SetFaults(in *faultinject.Injector) {
	w.faults = in
	for _, vm := range w.vmOrder {
		for _, vc := range vm.vcpus {
			vc.faults = nil
		}
	}
}

// Faults returns the attached fault injector (nil when healthy).
func (w *World) Faults() *faultinject.Injector { return w.faults }

// NewWorld builds a host machine.
func NewWorld(cfg Config) *World {
	if cfg.PhysicalCores < 1 {
		cfg.PhysicalCores = 1
	}
	if cfg.TickBudget < 1 {
		cfg.TickBudget = 1000
	}
	// Last world wins: the gauge feeds the ops overhead-budget tracker,
	// which observes the live deployment, not retired test worlds.
	gTickBudget.Set(float64(cfg.TickBudget))
	root := rng.New(cfg.Seed).Split("sev/world")
	w := &World{
		cfg:    cfg,
		vms:    make(map[int]*VM),
		pinned: make(map[int]*vcpu),
		rand:   root,
	}
	var sharedL2 *microarch.Cache
	for i := 0; i < cfg.PhysicalCores; i++ {
		noise := root.SplitN("core-noise", i)
		if !cfg.SharedL2 {
			w.cores = append(w.cores, microarch.NewCore(i, cfg.Core, noise))
			continue
		}
		if i%2 == 0 {
			sharedL2 = microarch.NewCache(microarch.CacheConfig{
				Name: "L2-shared", Sets: cfg.Core.L2Sets, Ways: cfg.Core.L2Ways,
				LineSize: cfg.Core.LineSize,
			})
		}
		w.cores = append(w.cores, microarch.NewCoreWithL2(i, cfg.Core, noise, sharedL2))
	}
	return w
}

// Processor returns the host CPU model.
func (w *World) Processor() string { return w.cfg.Processor }

// TickBudget returns the per-core per-tick instruction capacity.
func (w *World) TickBudget() int { return w.cfg.TickBudget }

// Tick returns the current tick count.
func (w *World) Tick() int64 { return w.tick }

// Cores returns the number of physical cores.
func (w *World) Cores() int { return len(w.cores) }

// Core returns a physical core. The malicious host owns the hardware, so
// this is host-privileged access (used to attach PMUs and perf sessions);
// guest confidentiality is enforced at the VM API layer, not here.
func (w *World) Core(i int) (*microarch.Core, error) {
	if i < 0 || i >= len(w.cores) {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchCore, i)
	}
	return w.cores[i], nil
}

// SEVVersion selects the generation of the encryption feature; each adds
// protections (paper §II-B): plain SEV encrypts memory only, SEV-ES also
// encrypts the register state on world switches, SEV-SNP adds memory
// integrity (Reverse Map Table).
type SEVVersion int

// SEV generations.
const (
	SEVDisabled SEVVersion = iota
	SEVPlain
	SEVES
	SEVSNP
)

func (v SEVVersion) String() string {
	switch v {
	case SEVDisabled:
		return "none"
	case SEVPlain:
		return "SEV"
	case SEVES:
		return "SEV-ES"
	case SEVSNP:
		return "SEV-SNP"
	default:
		return fmt.Sprintf("sev(%d)", int(v))
	}
}

// VMConfig configures a guest launch.
type VMConfig struct {
	// VCPUs is the number of virtual CPUs; each is pinned to a dedicated
	// physical core chosen by the hypervisor.
	VCPUs int
	// SEV enables memory encryption at the SEV-SNP level (the paper's
	// threat model). For finer control set Version instead.
	SEV bool
	// Version selects the SEV generation explicitly; zero with SEV=true
	// means SEV-SNP.
	Version SEVVersion
	// MemoryBytes sizes guest memory.
	MemoryBytes int
}

// LaunchVM starts a guest VM, pinning each vCPU to a free physical core.
func (w *World) LaunchVM(cfg VMConfig) (*VM, error) {
	if cfg.VCPUs < 1 {
		cfg.VCPUs = 1
	}
	if cfg.MemoryBytes <= 0 {
		cfg.MemoryBytes = 1 << 20
	}
	free := make([]int, 0, len(w.cores))
	for i := range w.cores {
		if _, taken := w.pinned[i]; !taken {
			free = append(free, i)
		}
	}
	if len(free) < cfg.VCPUs {
		return nil, fmt.Errorf("%w: need %d cores, %d free", ErrCoreOccupied, cfg.VCPUs, len(free))
	}
	version := cfg.Version
	if version == SEVDisabled && cfg.SEV {
		version = SEVSNP
	}
	vm := &VM{
		id:      w.nextVM,
		version: version,
		world:   w,
		memory:  make([]byte, cfg.MemoryBytes),
	}
	w.nextVM++
	for i := 0; i < cfg.VCPUs; i++ {
		core := free[i]
		vc := &vcpu{
			physCore:   core,
			faultLabel: fmt.Sprintf("vm%d/vcpu%d", vm.id, i),
			usageRing:  make([]float64, usageWindow),
			ctx: microarch.NewWorkloadContext(
				uint64(vm.id+1)<<32, 1<<20,
				w.rand.SplitN(fmt.Sprintf("vm%d-vcpu", vm.id), i)),
		}
		vm.vcpus = append(vm.vcpus, vc)
		w.pinned[core] = vc
	}
	w.vms[vm.id] = vm
	w.vmOrder = append(w.vmOrder, vm)
	mVMsLaunched.Inc()
	return vm, nil
}

// DestroyVM tears down a guest and frees its cores.
func (w *World) DestroyVM(id int) error {
	vm, ok := w.vms[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchVM, id)
	}
	for _, vc := range vm.vcpus {
		delete(w.pinned, vc.physCore)
	}
	delete(w.vms, id)
	for i, v := range w.vmOrder {
		if v == vm {
			w.vmOrder = append(w.vmOrder[:i:i], w.vmOrder[i+1:]...)
			break
		}
	}
	return nil
}

// Step advances the world by one tick: every vCPU runs its processes
// round-robin on its physical core until the tick budget is exhausted.
//
// The steady-state path is allocation-free: gated dynamically by TestZeroAllocWorldStep
// (alloc_gate_test.go, `make bench-alloc`) and statically by the
// aegis-lint hotpath rule, which bans allocating constructs in any
// function carrying this annotation.
//
//aegis:hotpath
func (w *World) Step() {
	w.tick++
	mWorldTicks.Inc()
	vcpuSteps := 0
	for _, vm := range w.vmOrder {
		for _, vc := range vm.vcpus {
			mVCPUSteps.Inc()
			vcpuSteps++
			core := w.cores[vc.physCore]
			if w.faults != nil && vc.faults == nil {
				vc.faults = w.faults.Handle("sev", vc.faultLabel)
			}
			// A preemption burst slashes the budget for this tick: the
			// hypervisor is running something else (or single-stepping us).
			budget := vc.faults.PreemptBudget(w.cfg.TickBudget)
			g := &vc.exec
			*g = GuestExecutor{
				core:   core,
				ctx:    vc.ctx,
				budget: budget,
				tick:   w.tick,
				faults: vc.faults,
			}
			n := len(vc.procs)
			for i := 0; i < n; i++ {
				p := vc.procs[(vc.nextFirst+i)%n]
				p.Step(g)
				if g.Remaining() == 0 {
					break
				}
			}
			if n > 0 {
				vc.nextFirst = (vc.nextFirst + 1) % n
			}
			u := float64(g.used) / float64(w.cfg.TickBudget)
			vc.usageSum += u
			vc.usageTicks++
			vc.usageRing[vc.usageNext] = u
			vc.usageNext = (vc.usageNext + 1) % usageWindow
			if vc.usageLen < usageWindow {
				vc.usageLen++
			}
		}
	}
	if w.tick%worldSummaryEvery == 0 {
		fWorld.Record(w.tick, flight.CodeWorldSummary, flight.CodeNone,
			float64(len(w.vmOrder)), float64(vcpuSteps), 0)
	}
}

// worldSummaryEvery is the world-summary journaling period: sparse enough
// that summaries never crowd per-tick records out of the flight ring.
const worldSummaryEvery = 64

// Run advances the world by n ticks.
func (w *World) Run(n int) {
	for i := 0; i < n; i++ {
		w.Step()
	}
}

// ID returns the VM identifier.
func (vm *VM) ID() int { return vm.id }

// SEVEnabled reports whether the guest runs under any SEV generation.
func (vm *VM) SEVEnabled() bool { return vm.version != SEVDisabled }

// Version returns the guest's SEV generation.
func (vm *VM) Version() SEVVersion { return vm.version }

// GuestSetRegister writes an architectural register from inside the guest.
func (vm *VM) GuestSetRegister(idx int, value uint64) error {
	if idx < 0 || idx >= len(vm.regs) {
		return fmt.Errorf("sev: register %d out of range", idx)
	}
	vm.regs[idx] = value
	return nil
}

// HostReadRegisters is the hypervisor's view of the guest register state
// at a world switch. Plain SEV leaves registers readable — the gap SEV-ES
// closed (paper §II-B); SEV-ES and SEV-SNP return an encrypted view.
func (vm *VM) HostReadRegisters() ([16]uint64, error) {
	if vm.version >= SEVES {
		return [16]uint64{}, ErrEncrypted
	}
	return vm.regs, nil
}

// VCPUs returns the number of virtual CPUs.
func (vm *VM) VCPUs() int { return len(vm.vcpus) }

// PhysicalCore returns the physical core index a vCPU is pinned to. The
// hypervisor knows the mapping; what it cannot see is which guest process
// runs on the vCPU (paper §VII-C: Aegis pins the obfuscator and the
// protected application to the same vCPU precisely because the host cannot
// separate them).
func (vm *VM) PhysicalCore(vcpuIdx int) (int, error) {
	if vcpuIdx < 0 || vcpuIdx >= len(vm.vcpus) {
		return 0, fmt.Errorf("%w: %d", ErrNoSuchVCPU, vcpuIdx)
	}
	return vm.vcpus[vcpuIdx].physCore, nil
}

// AddProcess schedules a guest process on a vCPU. Processes added to the
// same vCPU share its tick budget in arrival order.
func (vm *VM) AddProcess(vcpuIdx int, p Process) error {
	if vcpuIdx < 0 || vcpuIdx >= len(vm.vcpus) {
		return fmt.Errorf("%w: %d", ErrNoSuchVCPU, vcpuIdx)
	}
	vm.vcpus[vcpuIdx].procs = append(vm.vcpus[vcpuIdx].procs, p)
	return nil
}

// RemoveProcess unschedules the named process from a vCPU.
func (vm *VM) RemoveProcess(vcpuIdx int, name string) error {
	if vcpuIdx < 0 || vcpuIdx >= len(vm.vcpus) {
		return fmt.Errorf("%w: %d", ErrNoSuchVCPU, vcpuIdx)
	}
	procs := vm.vcpus[vcpuIdx].procs
	for i, p := range procs {
		if p.Name() == name {
			vm.vcpus[vcpuIdx].procs = append(procs[:i:i], procs[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("sev: process %q not found on vcpu %d", name, vcpuIdx)
}

// Attest returns the PSP attestation report.
func (vm *VM) Attest() Attestation {
	return Attestation{
		Processor:  vm.world.cfg.Processor,
		SEVVersion: vm.version.String(),
		VMID:       vm.id,
		Measurement: rng.HashString(
			fmt.Sprintf("%s/%d/%d", vm.world.cfg.Processor, vm.id, len(vm.vcpus))),
	}
}

// HostReadMemory is the hypervisor's attempt to read guest memory. Under
// SEV it fails: pages are encrypted with a key held by the PSP.
func (vm *VM) HostReadMemory(offset, n int) ([]byte, error) {
	if vm.version != SEVDisabled {
		return nil, ErrEncrypted
	}
	if offset < 0 || n < 0 || offset+n > len(vm.memory) {
		return nil, fmt.Errorf("sev: memory read out of range")
	}
	out := make([]byte, n)
	copy(out, vm.memory[offset:offset+n])
	return out, nil
}

// GuestWriteMemory writes guest memory from inside the VM (always allowed).
func (vm *VM) GuestWriteMemory(offset int, data []byte) error {
	if offset < 0 || offset+len(data) > len(vm.memory) {
		return fmt.Errorf("sev: memory write out of range")
	}
	copy(vm.memory[offset:], data)
	return nil
}

// CPUUsage returns the vCPU's mean utilisation over the last n ticks, the
// measurement the paper's host-side `top` sampling performs for Fig. 10.
// lastN <= 0 (or larger than the history) means all ticks since launch.
// Windowed queries are answered exactly from the retained ring when
// lastN <= usageWindow; wider windows clamp to the ring's span.
func (vm *VM) CPUUsage(vcpuIdx, lastN int) (float64, error) {
	if vcpuIdx < 0 || vcpuIdx >= len(vm.vcpus) {
		return 0, fmt.Errorf("%w: %d", ErrNoSuchVCPU, vcpuIdx)
	}
	vc := vm.vcpus[vcpuIdx]
	if vc.usageTicks == 0 {
		return 0, nil
	}
	if lastN <= 0 || int64(lastN) >= vc.usageTicks {
		return vc.usageSum / float64(vc.usageTicks), nil
	}
	n := lastN
	if n > vc.usageLen {
		n = vc.usageLen
	}
	// Sum in chronological order, matching the pre-ring implementation's
	// float rounding exactly.
	start := vc.usageNext - n
	var sum float64
	for i := 0; i < n; i++ {
		sum += vc.usageRing[((start+i)%usageWindow+usageWindow)%usageWindow]
	}
	return sum / float64(n), nil
}
