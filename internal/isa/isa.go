// Package isa models a machine-readable instruction-set-architecture
// specification in the style of uops.info, which the paper's Event Fuzzer
// consumes (paper §VI-C).
//
// The specification enumerates instruction *variants*: a mnemonic extended
// with an operand form and attributes (ISA extension, general category,
// micro-op composition). Mirroring the paper's measurements, only a small
// portion (~24%) of variants are legal on a given micro-architecture; the
// rest fault, almost always with an undefined-opcode fault. The fuzzer's
// cleanup step executes every variant and keeps the ones that complete
// normally.
package isa

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/repro/aegis/internal/rng"
)

// Canonical specification sizes matching the paper's measurements: ~14k
// variants per vendor of which 3386 (Intel, 24.16%) / 3407 (AMD, 24.31%)
// execute normally after cleanup (paper §VI-C).
const (
	IntelTotalVariants = 14016
	IntelLegalVariants = 3386
	AMDTotalVariants   = 14016
	AMDLegalVariants   = 3407
)

// SpecIntelXeonE5 returns the canonical Intel specification.
func SpecIntelXeonE5(seed uint64) *Spec {
	return GenerateSpec("intel", IntelTotalVariants, IntelLegalVariants, seed)
}

// SpecAMDEpyc returns the canonical AMD specification.
func SpecAMDEpyc(seed uint64) *Spec {
	return GenerateSpec("amd", AMDTotalVariants, AMDLegalVariants, seed)
}

// Class describes the micro-operation behaviour of an instruction variant;
// the micro-architecture simulator dispatches on it.
type Class int

// Micro-op classes. The set covers the behaviours the fuzzer's gadgets need
// to exercise: plain ALU work, memory loads/stores, cache-control
// (flush/prefetch), serialisation, branches, and the vector/FP families
// whose retirement feeds dedicated HPC events.
const (
	ClassALU Class = iota + 1
	ClassMul
	ClassDiv
	ClassLoad
	ClassStore
	ClassLoadStore
	ClassBranch
	ClassNop
	ClassX87
	ClassSSE
	ClassAVX
	ClassPrefetch
	ClassFlush   // cache-line flush (CLFLUSH analog)
	ClassFence   // memory fence
	ClassSerial  // serialising (CPUID analog)
	ClassBit     // bit manipulation
	ClassString  // string/rep move
	ClassCrypto  // AES-class
	ClassSystem  // privileged; faults in user mode
	ClassIO      // port I/O; faults in user mode
	ClassInvalid // reserved encodings; always #UD
)

var classNames = map[Class]string{
	ClassALU:       "alu",
	ClassMul:       "mul",
	ClassDiv:       "div",
	ClassLoad:      "load",
	ClassStore:     "store",
	ClassLoadStore: "load-store",
	ClassBranch:    "branch",
	ClassNop:       "nop",
	ClassX87:       "x87",
	ClassSSE:       "sse",
	ClassAVX:       "avx",
	ClassPrefetch:  "prefetch",
	ClassFlush:     "flush",
	ClassFence:     "fence",
	ClassSerial:    "serialize",
	ClassBit:       "bit",
	ClassString:    "string",
	ClassCrypto:    "crypto",
	ClassSystem:    "system",
	ClassIO:        "io",
	ClassInvalid:   "invalid",
}

func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Extension is the ISA extension an instruction variant belongs to
// (BASE, X87-FPU, SSE, ... as in the uops.info attribute set).
type Extension string

// Extensions present in the synthetic specification.
const (
	ExtBase   Extension = "BASE"
	ExtX87    Extension = "X87-FPU"
	ExtMMX    Extension = "MMX"
	ExtSSE    Extension = "SSE"
	ExtSSE2   Extension = "SSE2"
	ExtSSE4   Extension = "SSE4"
	ExtAVX    Extension = "AVX"
	ExtAVX2   Extension = "AVX2"
	ExtAVX512 Extension = "AVX512"
	ExtBMI    Extension = "BMI"
	ExtAES    Extension = "AES"
	ExtCLFSH  Extension = "CLFSH"
	ExtVMX    Extension = "VMX"
	ExtSGX    Extension = "SGX"
	ExtTSX    Extension = "TSX"
	ExtCET    Extension = "CET"
	ExtUndoc  Extension = "UNDOC"
)

// Category is the general semantic category of a variant (arithmetic,
// logical, ...), used by the fuzzer's gadget-filtering stage (paper §VI-F).
type Category string

// Categories of the synthetic specification.
const (
	CatArithmetic Category = "arithmetic"
	CatLogical    Category = "logical"
	CatDataMove   Category = "data-transfer"
	CatMemory     Category = "memory"
	CatControl    Category = "control-flow"
	CatCompare    Category = "compare"
	CatConvert    Category = "conversion"
	CatCache      Category = "cache-control"
	CatSync       Category = "synchronization"
	CatVector     Category = "vector"
	CatCryptoOp   Category = "crypto"
	CatStringOp   Category = "string"
	CatSystemOp   Category = "system"
)

// OperandForm is a symbolic operand signature such as "R64, M64".
type OperandForm string

// Variant is one entry of the machine-readable ISA specification.
type Variant struct {
	// ID is the stable index of the variant within its specification.
	ID int
	// Mnemonic is the assembly mnemonic, e.g. "ADD".
	Mnemonic string
	// Operands is the operand form of this variant.
	Operands OperandForm
	// Extension is the ISA extension the variant requires.
	Extension Extension
	// Category is the general semantic category.
	Category Category
	// Class drives micro-architectural execution.
	Class Class
	// Uops is the number of micro-ops the variant decodes into.
	Uops int
	// MemReads and MemWrites are the memory operand counts.
	MemReads  int
	MemWrites int
	// Privileged variants fault with #GP outside ring 0.
	Privileged bool
	// Reserved marks undocumented/reserved encodings that always #UD.
	Reserved bool
	// PageFaults marks encodings whose implicit memory access raises #PF.
	PageFaults bool
}

// Asm renders the variant as an assembly line against the fuzzer's scratch
// data page register (paper §VI-D initialises memory operands to a
// pre-allocated writable page).
func (v Variant) Asm() string {
	ops := string(v.Operands)
	if ops == "" {
		return v.Mnemonic
	}
	ops = strings.ReplaceAll(ops, "M", "[RSI+0x0]/M")
	return v.Mnemonic + " " + ops
}

// Key returns the unique "MNEMONIC (operands)" identity of a variant.
func (v Variant) Key() string {
	return v.Mnemonic + " (" + string(v.Operands) + ")"
}

// FaultKind enumerates the outcomes of probing a variant during cleanup.
type FaultKind int

// Probe outcomes.
const (
	FaultNone FaultKind = iota + 1 // executes normally
	FaultUD                        // undefined opcode
	FaultGP                        // general protection (privileged)
	FaultPF                        // page fault (bad implicit access)
)

func (f FaultKind) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultUD:
		return "#UD"
	case FaultGP:
		return "#GP"
	case FaultPF:
		return "#PF"
	default:
		return fmt.Sprintf("fault(%d)", int(f))
	}
}

// Spec is a full machine-readable ISA specification for one vendor.
type Spec struct {
	// Vendor is "intel" or "amd"; the synthetic variant mix differs
	// slightly between them, as uops.info does across vendors.
	Vendor   string
	Variants []Variant
}

// mnemonicTemplate seeds the variant generator: a base mnemonic family with
// its semantic attributes and the operand forms it appears with.
type mnemonicTemplate struct {
	mnemonic  string
	extension Extension
	category  Category
	class     Class
	uops      int
	reads     int
	writes    int
	priv      bool
	forms     []OperandForm
}

// regForms and memory forms shared across families.
var (
	rrForms  = []OperandForm{"R8, R8", "R16, R16", "R32, R32", "R64, R64", "R32, I32", "R64, I32"}
	rmForms  = []OperandForm{"R32, M32", "R64, M64", "R16, M16", "R8, M8"}
	mrForms  = []OperandForm{"M32, R32", "M64, R64", "M16, R16", "M8, R8"}
	vecForms = []OperandForm{"XMM, XMM", "XMM, M128", "YMM, YMM", "YMM, M256"}
)

func baseTemplates() []mnemonicTemplate {
	return []mnemonicTemplate{
		// BASE integer ALU.
		{"ADD", ExtBase, CatArithmetic, ClassALU, 1, 0, 0, false, rrForms},
		{"SUB", ExtBase, CatArithmetic, ClassALU, 1, 0, 0, false, rrForms},
		{"ADC", ExtBase, CatArithmetic, ClassALU, 1, 0, 0, false, rrForms},
		{"SBB", ExtBase, CatArithmetic, ClassALU, 1, 0, 0, false, rrForms},
		{"INC", ExtBase, CatArithmetic, ClassALU, 1, 0, 0, false, []OperandForm{"R8", "R16", "R32", "R64"}},
		{"DEC", ExtBase, CatArithmetic, ClassALU, 1, 0, 0, false, []OperandForm{"R8", "R16", "R32", "R64"}},
		{"NEG", ExtBase, CatArithmetic, ClassALU, 1, 0, 0, false, []OperandForm{"R32", "R64"}},
		{"IMUL", ExtBase, CatArithmetic, ClassMul, 1, 0, 0, false, rrForms},
		{"MUL", ExtBase, CatArithmetic, ClassMul, 2, 0, 0, false, []OperandForm{"R32", "R64"}},
		{"IDIV", ExtBase, CatArithmetic, ClassDiv, 9, 0, 0, false, []OperandForm{"R32", "R64"}},
		{"DIV", ExtBase, CatArithmetic, ClassDiv, 9, 0, 0, false, []OperandForm{"R32", "R64"}},
		{"AND", ExtBase, CatLogical, ClassALU, 1, 0, 0, false, rrForms},
		{"OR", ExtBase, CatLogical, ClassALU, 1, 0, 0, false, rrForms},
		{"XOR", ExtBase, CatLogical, ClassALU, 1, 0, 0, false, rrForms},
		{"NOT", ExtBase, CatLogical, ClassALU, 1, 0, 0, false, []OperandForm{"R32", "R64"}},
		{"SHL", ExtBase, CatLogical, ClassALU, 1, 0, 0, false, []OperandForm{"R32, I8", "R64, I8", "R32, CL", "R64, CL"}},
		{"SHR", ExtBase, CatLogical, ClassALU, 1, 0, 0, false, []OperandForm{"R32, I8", "R64, I8", "R32, CL", "R64, CL"}},
		{"SAR", ExtBase, CatLogical, ClassALU, 1, 0, 0, false, []OperandForm{"R32, I8", "R64, I8"}},
		{"ROL", ExtBase, CatLogical, ClassALU, 1, 0, 0, false, []OperandForm{"R32, I8", "R64, I8"}},
		{"ROR", ExtBase, CatLogical, ClassALU, 1, 0, 0, false, []OperandForm{"R32, I8", "R64, I8"}},
		{"CMP", ExtBase, CatCompare, ClassALU, 1, 0, 0, false, rrForms},
		{"TEST", ExtBase, CatCompare, ClassALU, 1, 0, 0, false, rrForms},
		{"SETZ", ExtBase, CatCompare, ClassALU, 1, 0, 0, false, []OperandForm{"R8"}},
		{"CMOVZ", ExtBase, CatDataMove, ClassALU, 1, 0, 0, false, []OperandForm{"R32, R32", "R64, R64"}},
		// Loads / stores.
		{"MOV", ExtBase, CatDataMove, ClassLoad, 1, 1, 0, false, rmForms},
		{"MOVST", ExtBase, CatDataMove, ClassStore, 1, 0, 1, false, mrForms},
		{"MOVZX", ExtBase, CatDataMove, ClassLoad, 1, 1, 0, false, []OperandForm{"R32, M8", "R64, M16"}},
		{"MOVSX", ExtBase, CatDataMove, ClassLoad, 1, 1, 0, false, []OperandForm{"R32, M8", "R64, M16"}},
		{"LEA", ExtBase, CatDataMove, ClassALU, 1, 0, 0, false, []OperandForm{"R32, M", "R64, M"}},
		{"PUSH", ExtBase, CatMemory, ClassStore, 1, 0, 1, false, []OperandForm{"R64", "I32"}},
		{"POP", ExtBase, CatMemory, ClassLoad, 1, 1, 0, false, []OperandForm{"R64"}},
		{"XCHG", ExtBase, CatMemory, ClassLoadStore, 2, 1, 1, false, []OperandForm{"M32, R32", "M64, R64"}},
		{"XADD", ExtBase, CatMemory, ClassLoadStore, 3, 1, 1, false, []OperandForm{"M32, R32", "M64, R64"}},
		{"CMPXCHG", ExtBase, CatSync, ClassLoadStore, 4, 1, 1, false, []OperandForm{"M32, R32", "M64, R64"}},
		// Branches.
		{"JMP", ExtBase, CatControl, ClassBranch, 1, 0, 0, false, []OperandForm{"REL8", "REL32", "R64"}},
		{"JZ", ExtBase, CatControl, ClassBranch, 1, 0, 0, false, []OperandForm{"REL8", "REL32"}},
		{"JNZ", ExtBase, CatControl, ClassBranch, 1, 0, 0, false, []OperandForm{"REL8", "REL32"}},
		{"JC", ExtBase, CatControl, ClassBranch, 1, 0, 0, false, []OperandForm{"REL8", "REL32"}},
		{"CALL", ExtBase, CatControl, ClassBranch, 2, 0, 1, false, []OperandForm{"REL32"}},
		{"RET", ExtBase, CatControl, ClassBranch, 2, 1, 0, false, []OperandForm{""}},
		{"LOOP", ExtBase, CatControl, ClassBranch, 2, 0, 0, false, []OperandForm{"REL8"}},
		// Nop family.
		{"NOP", ExtBase, CatDataMove, ClassNop, 1, 0, 0, false, []OperandForm{"", "R32", "M32"}},
		{"PAUSE", ExtBase, CatSync, ClassNop, 1, 0, 0, false, []OperandForm{""}},
		// Bit manipulation.
		{"POPCNT", ExtBMI, CatLogical, ClassBit, 1, 0, 0, false, []OperandForm{"R32, R32", "R64, R64"}},
		{"LZCNT", ExtBMI, CatLogical, ClassBit, 1, 0, 0, false, []OperandForm{"R32, R32", "R64, R64"}},
		{"TZCNT", ExtBMI, CatLogical, ClassBit, 1, 0, 0, false, []OperandForm{"R32, R32", "R64, R64"}},
		{"BSF", ExtBase, CatLogical, ClassBit, 1, 0, 0, false, []OperandForm{"R32, R32", "R64, R64"}},
		{"BSR", ExtBase, CatLogical, ClassBit, 1, 0, 0, false, []OperandForm{"R32, R32", "R64, R64"}},
		{"ANDN", ExtBMI, CatLogical, ClassBit, 1, 0, 0, false, []OperandForm{"R32, R32, R32", "R64, R64, R64"}},
		{"PDEP", ExtBMI, CatLogical, ClassBit, 1, 0, 0, false, []OperandForm{"R64, R64, R64"}},
		{"PEXT", ExtBMI, CatLogical, ClassBit, 1, 0, 0, false, []OperandForm{"R64, R64, R64"}},
		// String ops.
		{"MOVSB", ExtBase, CatStringOp, ClassString, 2, 1, 1, false, []OperandForm{""}},
		{"STOSB", ExtBase, CatStringOp, ClassString, 2, 0, 1, false, []OperandForm{""}},
		{"LODSB", ExtBase, CatStringOp, ClassString, 2, 1, 0, false, []OperandForm{""}},
		{"CMPSB", ExtBase, CatStringOp, ClassString, 2, 2, 0, false, []OperandForm{""}},
		// x87 FPU.
		{"FADD", ExtX87, CatArithmetic, ClassX87, 1, 0, 0, false, []OperandForm{"ST0, ST1", "M32FP", "M64FP"}},
		{"FSUB", ExtX87, CatArithmetic, ClassX87, 1, 0, 0, false, []OperandForm{"ST0, ST1", "M32FP", "M64FP"}},
		{"FMUL", ExtX87, CatArithmetic, ClassX87, 1, 0, 0, false, []OperandForm{"ST0, ST1", "M32FP", "M64FP"}},
		{"FDIV", ExtX87, CatArithmetic, ClassX87, 4, 0, 0, false, []OperandForm{"ST0, ST1", "M32FP"}},
		{"FLD", ExtX87, CatDataMove, ClassX87, 1, 1, 0, false, []OperandForm{"M32FP", "M64FP"}},
		{"FST", ExtX87, CatDataMove, ClassX87, 1, 0, 1, false, []OperandForm{"M32FP", "M64FP"}},
		{"FSQRT", ExtX87, CatArithmetic, ClassX87, 8, 0, 0, false, []OperandForm{""}},
		{"FSIN", ExtX87, CatArithmetic, ClassX87, 40, 0, 0, false, []OperandForm{""}},
		// MMX.
		{"PADDB", ExtMMX, CatVector, ClassSSE, 1, 0, 0, false, []OperandForm{"MM, MM", "MM, M64"}},
		{"PSUBB", ExtMMX, CatVector, ClassSSE, 1, 0, 0, false, []OperandForm{"MM, MM", "MM, M64"}},
		{"PMULLW", ExtMMX, CatVector, ClassSSE, 1, 0, 0, false, []OperandForm{"MM, MM"}},
		{"EMMS", ExtMMX, CatSystemOp, ClassSSE, 1, 0, 0, false, []OperandForm{""}},
		// SSE families.
		{"ADDPS", ExtSSE, CatVector, ClassSSE, 1, 0, 0, false, vecForms[:2]},
		{"MULPS", ExtSSE, CatVector, ClassSSE, 1, 0, 0, false, vecForms[:2]},
		{"DIVPS", ExtSSE, CatVector, ClassSSE, 6, 0, 0, false, vecForms[:2]},
		{"SQRTPS", ExtSSE, CatVector, ClassSSE, 6, 0, 0, false, vecForms[:2]},
		{"ADDPD", ExtSSE2, CatVector, ClassSSE, 1, 0, 0, false, vecForms[:2]},
		{"MULPD", ExtSSE2, CatVector, ClassSSE, 1, 0, 0, false, vecForms[:2]},
		{"MOVAPS", ExtSSE, CatDataMove, ClassSSE, 1, 1, 0, false, []OperandForm{"XMM, M128"}},
		{"MOVAPSST", ExtSSE, CatDataMove, ClassSSE, 1, 0, 1, false, []OperandForm{"M128, XMM"}},
		{"MOVNTPS", ExtSSE, CatMemory, ClassStore, 1, 0, 1, false, []OperandForm{"M128, XMM"}},
		{"PSHUFB", ExtSSE4, CatVector, ClassSSE, 1, 0, 0, false, []OperandForm{"XMM, XMM"}},
		{"PTEST", ExtSSE4, CatCompare, ClassSSE, 1, 0, 0, false, []OperandForm{"XMM, XMM"}},
		{"CVTSI2SS", ExtSSE, CatConvert, ClassSSE, 2, 0, 0, false, []OperandForm{"XMM, R32", "XMM, R64"}},
		{"CVTSS2SI", ExtSSE, CatConvert, ClassSSE, 2, 0, 0, false, []OperandForm{"R32, XMM", "R64, XMM"}},
		// AVX.
		{"VADDPS", ExtAVX, CatVector, ClassAVX, 1, 0, 0, false, vecForms},
		{"VMULPS", ExtAVX, CatVector, ClassAVX, 1, 0, 0, false, vecForms},
		{"VFMADD231PS", ExtAVX2, CatVector, ClassAVX, 1, 0, 0, false, []OperandForm{"YMM, YMM, YMM"}},
		{"VPAND", ExtAVX2, CatVector, ClassAVX, 1, 0, 0, false, []OperandForm{"YMM, YMM, YMM"}},
		{"VMOVDQA", ExtAVX, CatDataMove, ClassAVX, 1, 1, 0, false, []OperandForm{"YMM, M256"}},
		{"VMOVDQAST", ExtAVX, CatDataMove, ClassAVX, 1, 0, 1, false, []OperandForm{"M256, YMM"}},
		{"VZEROUPPER", ExtAVX, CatSystemOp, ClassAVX, 1, 0, 0, false, []OperandForm{""}},
		{"VPADDD512", ExtAVX512, CatVector, ClassAVX, 1, 0, 0, false, []OperandForm{"ZMM, ZMM, ZMM", "ZMM, M512"}},
		{"VPERMW512", ExtAVX512, CatVector, ClassAVX, 2, 0, 0, false, []OperandForm{"ZMM, ZMM, ZMM"}},
		// Crypto.
		{"AESENC", ExtAES, CatCryptoOp, ClassCrypto, 1, 0, 0, false, []OperandForm{"XMM, XMM"}},
		{"AESDEC", ExtAES, CatCryptoOp, ClassCrypto, 1, 0, 0, false, []OperandForm{"XMM, XMM"}},
		{"PCLMULQDQ", ExtAES, CatCryptoOp, ClassCrypto, 1, 0, 0, false, []OperandForm{"XMM, XMM, I8"}},
		// Cache control.
		{"CLFLUSH", ExtCLFSH, CatCache, ClassFlush, 2, 0, 0, false, []OperandForm{"M8"}},
		{"CLFLUSHOPT", ExtCLFSH, CatCache, ClassFlush, 2, 0, 0, false, []OperandForm{"M8"}},
		{"CLWB", ExtCLFSH, CatCache, ClassFlush, 2, 0, 0, false, []OperandForm{"M8"}},
		{"PREFETCHT0", ExtSSE, CatCache, ClassPrefetch, 1, 0, 0, false, []OperandForm{"M8"}},
		{"PREFETCHT1", ExtSSE, CatCache, ClassPrefetch, 1, 0, 0, false, []OperandForm{"M8"}},
		{"PREFETCHNTA", ExtSSE, CatCache, ClassPrefetch, 1, 0, 0, false, []OperandForm{"M8"}},
		// Fences / serialisation.
		{"MFENCE", ExtSSE2, CatSync, ClassFence, 1, 0, 0, false, []OperandForm{""}},
		{"LFENCE", ExtSSE2, CatSync, ClassFence, 1, 0, 0, false, []OperandForm{""}},
		{"SFENCE", ExtSSE, CatSync, ClassFence, 1, 0, 0, false, []OperandForm{""}},
		{"CPUID", ExtBase, CatSystemOp, ClassSerial, 20, 0, 0, false, []OperandForm{""}},
		{"RDTSC", ExtBase, CatSystemOp, ClassSerial, 15, 0, 0, false, []OperandForm{""}},
		{"RDTSCP", ExtBase, CatSystemOp, ClassSerial, 20, 0, 0, false, []OperandForm{""}},
		{"XGETBV", ExtBase, CatSystemOp, ClassSerial, 8, 0, 0, false, []OperandForm{""}},
		// Privileged (fault in user mode, removed at cleanup).
		{"RDMSR", ExtBase, CatSystemOp, ClassSystem, 30, 0, 0, true, []OperandForm{""}},
		{"WRMSR", ExtBase, CatSystemOp, ClassSystem, 30, 0, 0, true, []OperandForm{""}},
		{"INVLPG", ExtBase, CatSystemOp, ClassSystem, 20, 0, 0, true, []OperandForm{"M8"}},
		{"WBINVD", ExtBase, CatCache, ClassSystem, 100, 0, 0, true, []OperandForm{""}},
		{"HLT", ExtBase, CatSystemOp, ClassSystem, 1, 0, 0, true, []OperandForm{""}},
		{"IN", ExtBase, CatSystemOp, ClassIO, 10, 0, 0, true, []OperandForm{"AL, I8", "EAX, DX"}},
		{"OUT", ExtBase, CatSystemOp, ClassIO, 10, 0, 0, true, []OperandForm{"I8, AL", "DX, EAX"}},
		{"VMLAUNCH", ExtVMX, CatSystemOp, ClassSystem, 200, 0, 0, true, []OperandForm{""}},
		{"VMRESUME", ExtVMX, CatSystemOp, ClassSystem, 200, 0, 0, true, []OperandForm{""}},
		{"ENCLS", ExtSGX, CatSystemOp, ClassSystem, 200, 0, 0, true, []OperandForm{""}},
		{"XBEGIN", ExtTSX, CatSync, ClassBranch, 5, 0, 0, false, []OperandForm{"REL32"}},
		{"XEND", ExtTSX, CatSync, ClassFence, 5, 0, 0, false, []OperandForm{""}},
		{"ENDBR64", ExtCET, CatControl, ClassNop, 1, 0, 0, false, []OperandForm{""}},
	}
}

// GenerateSpec builds the synthetic machine-readable specification for a
// vendor. The generator expands every mnemonic template into its operand
// forms, pads the list with vendor-specific encoding aliases until exactly
// targetLegal variants execute normally on the vendor's reference
// micro-architecture, and fills the remainder with reserved/undocumented
// encodings so the total variant count and the legal fraction match the
// paper's measurements (~14k variants, ~24% legal after cleanup).
func GenerateSpec(vendor string, totalVariants, targetLegal int, seed uint64) *Spec {
	r := rng.New(seed).Split("isa/" + vendor)
	templates := baseTemplates()
	features := referenceFeatures(vendor)

	var variants []Variant
	addVariant := func(v Variant) {
		v.ID = len(variants)
		variants = append(variants, v)
	}

	// 1. Documented variants from templates, with width/addressing aliases
	// so each family contributes a realistic number of encodings.
	for _, t := range templates {
		for _, form := range t.forms {
			addVariant(Variant{
				Mnemonic:   t.mnemonic,
				Operands:   form,
				Extension:  t.extension,
				Category:   t.category,
				Class:      t.class,
				Uops:       t.uops,
				MemReads:   t.reads,
				MemWrites:  t.writes,
				Privileged: t.priv,
			})
			// Locked / rep / suffix aliases for a subset of forms.
			if t.class == ClassLoadStore || t.class == ClassStore {
				addVariant(Variant{
					Mnemonic:   "LOCK " + t.mnemonic,
					Operands:   form,
					Extension:  t.extension,
					Category:   CatSync,
					Class:      t.class,
					Uops:       t.uops + 2,
					MemReads:   t.reads,
					MemWrites:  t.writes,
					Privileged: t.priv,
				})
			}
			if t.class == ClassString {
				addVariant(Variant{
					Mnemonic:  "REP " + t.mnemonic,
					Operands:  form,
					Extension: t.extension,
					Category:  t.category,
					Class:     t.class,
					Uops:      t.uops * 8,
					MemReads:  t.reads * 8,
					MemWrites: t.writes * 8,
				})
			}
		}
	}

	documented := len(variants)
	legal := 0
	for _, v := range variants {
		if Probe(v, features) == FaultNone {
			legal++
		}
	}

	// 2. Vendor-specific documented aliases: encoding variants that differ
	// only in prefix/width, drawn from legal documented bases. Padding
	// continues until exactly targetLegal variants execute normally on the
	// vendor's reference micro-architecture.
	suffixes := []string{".W", ".L", ".Q", ".B", ".X", ".S", ".D", ".T"}
	aliasRound := 0
	for legal < targetLegal && len(variants) < totalVariants {
		base := variants[r.Intn(documented)]
		if Probe(base, features) != FaultNone {
			continue
		}
		aliasRound++
		suffix := suffixes[r.Intn(len(suffixes))] + strconv.Itoa(aliasRound)
		addVariant(Variant{
			Mnemonic:  base.Mnemonic + suffix,
			Operands:  base.Operands,
			Extension: base.Extension,
			Category:  base.Category,
			Class:     base.Class,
			Uops:      base.Uops,
			MemReads:  base.MemReads,
			MemWrites: base.MemWrites,
		})
		legal++
	}

	// 3. Reserved / undocumented encodings: the bulk of the specification.
	// Nearly all fault with #UD, matching the paper's observation that
	// ~98.8% of cleanup faults are illegal-instruction faults; a small
	// share are system-reserved encodings that raise #GP or #PF instead.
	opByte := 0
	for len(variants) < totalVariants {
		opByte++
		v := Variant{
			Mnemonic:  fmt.Sprintf("DB 0x0F,0x%02X,0x%02X", opByte%251, (opByte*7)%256),
			Operands:  "",
			Extension: ExtUndoc,
			Category:  CatSystemOp,
			Class:     ClassInvalid,
			Reserved:  true,
		}
		switch {
		case opByte%97 == 0:
			// System-reserved encoding: decodes but faults #GP in user mode.
			v.Mnemonic = fmt.Sprintf("SYSRSV%d", opByte)
			v.Extension = ExtBase
			v.Class = ClassSystem
			v.Privileged = true
			v.Reserved = false
			v.Uops = 1
		case opByte%311 == 0:
			// Encoding with a bad implicit memory access: raises #PF.
			v.Mnemonic = fmt.Sprintf("BADMEM%d", opByte)
			v.Extension = ExtBase
			v.Class = ClassInvalid
			v.Reserved = false
			v.PageFaults = true
			v.Uops = 1
		}
		addVariant(v)
	}

	return &Spec{Vendor: vendor, Variants: variants}
}

// referenceFeatures returns the feature set of the vendor's reference
// micro-architecture used to calibrate the legal-variant count.
func referenceFeatures(vendor string) CPUFeatures {
	if strings.HasPrefix(strings.ToLower(vendor), "intel") {
		return IntelXeonE5Features()
	}
	return AMDEpycFeatures()
}

// CPUFeatures describes the extension support of a micro-architecture; the
// cleanup step probes variants against it.
type CPUFeatures struct {
	Name       string
	Extensions map[Extension]bool
}

// Supports reports whether the micro-architecture implements ext.
func (f CPUFeatures) Supports(ext Extension) bool {
	return f.Extensions[ext]
}

// IntelXeonE5Features models the Intel Xeon E5-1650 testbed processor.
func IntelXeonE5Features() CPUFeatures {
	return CPUFeatures{
		Name: "Intel Xeon E5-1650",
		Extensions: map[Extension]bool{
			ExtBase: true, ExtX87: true, ExtMMX: true, ExtSSE: true,
			ExtSSE2: true, ExtSSE4: true, ExtAVX: true, ExtAVX2: true,
			ExtBMI: true, ExtAES: true, ExtCLFSH: true, ExtTSX: true,
		},
	}
}

// AMDEpycFeatures models the AMD EPYC 7252 testbed processor.
func AMDEpycFeatures() CPUFeatures {
	return CPUFeatures{
		Name: "AMD EPYC 7252",
		Extensions: map[Extension]bool{
			ExtBase: true, ExtX87: true, ExtMMX: true, ExtSSE: true,
			ExtSSE2: true, ExtSSE4: true, ExtAVX: true, ExtAVX2: true,
			ExtBMI: true, ExtAES: true, ExtCLFSH: true, ExtCET: true,
		},
	}
}

// Probe reports the fault behaviour of a variant on a micro-architecture in
// user mode, reproducing the cleanup test of paper §VI-C.
func Probe(v Variant, features CPUFeatures) FaultKind {
	switch {
	case v.Reserved:
		return FaultUD
	case !features.Supports(v.Extension):
		return FaultUD
	case v.PageFaults:
		return FaultPF
	case v.Privileged:
		return FaultGP
	case v.Class == ClassIO:
		return FaultGP
	default:
		return FaultNone
	}
}

// CleanupResult summarises an instruction-cleanup run.
type CleanupResult struct {
	Legal       []Variant
	TotalProbed int
	FaultCounts map[FaultKind]int
}

// LegalFraction returns the share of probed variants that execute normally.
func (c CleanupResult) LegalFraction() float64 {
	if c.TotalProbed == 0 {
		return 0
	}
	return float64(len(c.Legal)) / float64(c.TotalProbed)
}

// UDFaultShare returns the fraction of faults that were illegal-instruction
// faults (#UD); the paper measures ~98.8% on Intel and ~98.7% on AMD.
func (c CleanupResult) UDFaultShare() float64 {
	var total, ud int
	for k, n := range c.FaultCounts {
		if k == FaultNone {
			continue
		}
		total += n
		if k == FaultUD {
			ud += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(ud) / float64(total)
}

// Cleanup probes every variant of the specification against the
// micro-architecture and returns the legal subset plus fault statistics.
func Cleanup(spec *Spec, features CPUFeatures) CleanupResult {
	res := CleanupResult{
		TotalProbed: len(spec.Variants),
		FaultCounts: make(map[FaultKind]int),
	}
	for _, v := range spec.Variants {
		f := Probe(v, features)
		res.FaultCounts[f]++
		if f == FaultNone {
			res.Legal = append(res.Legal, v)
		}
	}
	return res
}

// Mnemonics returns the sorted set of distinct mnemonics in variants, which
// tests use to sanity-check generator coverage.
func Mnemonics(variants []Variant) []string {
	set := make(map[string]bool, len(variants))
	for _, v := range variants {
		set[v.Mnemonic] = true
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}
