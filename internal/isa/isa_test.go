package isa

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGenerateSpecDeterministic(t *testing.T) {
	a := SpecAMDEpyc(42)
	b := SpecAMDEpyc(42)
	if len(a.Variants) != len(b.Variants) {
		t.Fatalf("variant counts differ: %d vs %d", len(a.Variants), len(b.Variants))
	}
	for i := range a.Variants {
		if a.Variants[i] != b.Variants[i] {
			t.Fatalf("variant %d differs between identical seeds", i)
		}
	}
}

func TestSpecSizes(t *testing.T) {
	intel := SpecIntelXeonE5(1)
	amd := SpecAMDEpyc(1)
	if len(intel.Variants) != IntelTotalVariants {
		t.Errorf("intel spec has %d variants, want %d", len(intel.Variants), IntelTotalVariants)
	}
	if len(amd.Variants) != AMDTotalVariants {
		t.Errorf("amd spec has %d variants, want %d", len(amd.Variants), AMDTotalVariants)
	}
}

func TestCleanupLegalCounts(t *testing.T) {
	intel := Cleanup(SpecIntelXeonE5(1), IntelXeonE5Features())
	amd := Cleanup(SpecAMDEpyc(1), AMDEpycFeatures())

	if got := len(intel.Legal); got != IntelLegalVariants {
		t.Errorf("intel legal = %d, want %d", got, IntelLegalVariants)
	}
	if got := len(amd.Legal); got != AMDLegalVariants {
		t.Errorf("amd legal = %d, want %d", got, AMDLegalVariants)
	}

	// Paper §VI-C: only ~24% of variants are legal.
	for _, tc := range []struct {
		name string
		frac float64
		want float64
	}{
		{"intel", intel.LegalFraction(), 0.2416},
		{"amd", amd.LegalFraction(), 0.2431},
	} {
		if math.Abs(tc.frac-tc.want) > 0.005 {
			t.Errorf("%s legal fraction = %.4f, want ~%.4f", tc.name, tc.frac, tc.want)
		}
	}
}

func TestCleanupUDFaultShare(t *testing.T) {
	// Paper: 98.84% (Intel) and 98.69% (AMD) of cleanup faults are #UD.
	intel := Cleanup(SpecIntelXeonE5(1), IntelXeonE5Features())
	amd := Cleanup(SpecAMDEpyc(1), AMDEpycFeatures())
	for _, tc := range []struct {
		name  string
		share float64
	}{
		{"intel", intel.UDFaultShare()},
		{"amd", amd.UDFaultShare()},
	} {
		if tc.share < 0.97 || tc.share > 0.999 {
			t.Errorf("%s UD fault share = %.4f, want ~0.988", tc.name, tc.share)
		}
	}
}

func TestLegalVariantsExecuteNormally(t *testing.T) {
	feats := AMDEpycFeatures()
	res := Cleanup(SpecAMDEpyc(2), feats)
	for _, v := range res.Legal {
		if f := Probe(v, feats); f != FaultNone {
			t.Fatalf("legal variant %q probes to %v", v.Key(), f)
		}
		if v.Class == ClassInvalid {
			t.Fatalf("legal variant %q has invalid class", v.Key())
		}
	}
}

func TestPrivilegedVariantsFaultGP(t *testing.T) {
	feats := IntelXeonE5Features()
	spec := SpecIntelXeonE5(3)
	found := false
	for _, v := range spec.Variants {
		if v.Privileged && feats.Supports(v.Extension) {
			found = true
			if f := Probe(v, feats); f != FaultGP {
				t.Errorf("privileged %q probes to %v, want #GP", v.Key(), f)
			}
		}
	}
	if !found {
		t.Error("spec contains no privileged variants")
	}
}

func TestUnsupportedExtensionFaultsUD(t *testing.T) {
	// AMD does not implement TSX in this model; Intel does not have CET.
	amd := AMDEpycFeatures()
	v := Variant{Mnemonic: "XBEGIN", Extension: ExtTSX, Class: ClassBranch}
	if f := Probe(v, amd); f != FaultUD {
		t.Errorf("TSX on AMD probes to %v, want #UD", f)
	}
	intel := IntelXeonE5Features()
	v = Variant{Mnemonic: "ENDBR64", Extension: ExtCET, Class: ClassNop}
	if f := Probe(v, intel); f != FaultUD {
		t.Errorf("CET on Intel probes to %v, want #UD", f)
	}
}

func TestSpecContainsKeyGadgetClasses(t *testing.T) {
	// The fuzzer needs flush, prefetch, fence, serialize, load, store and
	// vector classes among *legal* AMD variants to build reset/trigger
	// sequences.
	res := Cleanup(SpecAMDEpyc(4), AMDEpycFeatures())
	have := make(map[Class]bool)
	for _, v := range res.Legal {
		have[v.Class] = true
	}
	for _, c := range []Class{ClassFlush, ClassPrefetch, ClassFence, ClassSerial,
		ClassLoad, ClassStore, ClassBranch, ClassALU, ClassSSE, ClassAVX, ClassX87} {
		if !have[c] {
			t.Errorf("no legal variant of class %v", c)
		}
	}
}

func TestVariantIDsSequential(t *testing.T) {
	spec := SpecAMDEpyc(5)
	for i, v := range spec.Variants {
		if v.ID != i {
			t.Fatalf("variant %d has ID %d", i, v.ID)
		}
	}
}

func TestAsmRendering(t *testing.T) {
	v := Variant{Mnemonic: "MOV", Operands: "R64, M64"}
	asm := v.Asm()
	if !strings.Contains(asm, "MOV") || !strings.Contains(asm, "RSI") {
		t.Errorf("asm = %q, want memory operand against scratch page", asm)
	}
	bare := Variant{Mnemonic: "CPUID"}
	if bare.Asm() != "CPUID" {
		t.Errorf("asm = %q, want bare mnemonic", bare.Asm())
	}
}

func TestKeyUniquePerVariantIdentity(t *testing.T) {
	if err := quick.Check(func(a, b uint16) bool {
		spec := SpecAMDEpyc(6)
		va := spec.Variants[int(a)%len(spec.Variants)]
		vb := spec.Variants[int(b)%len(spec.Variants)]
		if va.Mnemonic == vb.Mnemonic && va.Operands == vb.Operands {
			return va.Key() == vb.Key()
		}
		return va.Key() != vb.Key()
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMnemonicsCoverFamilies(t *testing.T) {
	spec := SpecAMDEpyc(7)
	ms := Mnemonics(spec.Variants)
	set := make(map[string]bool, len(ms))
	for _, m := range ms {
		set[m] = true
	}
	for _, want := range []string{"ADD", "MOV", "CLFLUSH", "CPUID", "MFENCE",
		"PREFETCHT0", "VADDPS", "FADD", "AESENC", "JMP"} {
		if !set[want] {
			t.Errorf("mnemonic %q missing from spec", want)
		}
	}
}

func TestFaultKindString(t *testing.T) {
	for f, want := range map[FaultKind]string{
		FaultNone: "none", FaultUD: "#UD", FaultGP: "#GP", FaultPF: "#PF",
	} {
		if f.String() != want {
			t.Errorf("FaultKind(%d).String() = %q, want %q", f, f.String(), want)
		}
	}
}

func TestClassString(t *testing.T) {
	if ClassFlush.String() != "flush" {
		t.Errorf("ClassFlush.String() = %q", ClassFlush.String())
	}
	if Class(999).String() == "" {
		t.Error("unknown class produced empty string")
	}
}

func TestVendorSpecsDiffer(t *testing.T) {
	intel := SpecIntelXeonE5(8)
	amd := SpecAMDEpyc(8)
	same := 0
	n := 1000
	for i := 0; i < n; i++ {
		if intel.Variants[i].Mnemonic == amd.Variants[i].Mnemonic &&
			intel.Variants[i].Operands == amd.Variants[i].Operands {
			same++
		}
	}
	// The documented prefix is shared; the alias tail must diverge.
	if same == n {
		t.Error("intel and amd specs are identical; vendor streams not split")
	}
}
