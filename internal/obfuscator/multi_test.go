package obfuscator

import (
	"testing"

	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/sev"
)

func TestNewMultiValidation(t *testing.T) {
	seg, ref := coverSegment(t)
	lap, err := NewLaplaceMechanism(1, 100, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMulti(nil); err == nil {
		t.Error("empty plans accepted")
	}
	if _, err := NewMulti([]Plan{{Segment: seg, Event: ref}}); err == nil {
		t.Error("nil mechanism accepted")
	}
	if _, err := NewMulti([]Plan{{Mechanism: lap, Event: ref}}); err == nil {
		t.Error("empty segment accepted")
	}
	if _, err := NewMulti([]Plan{{Mechanism: lap, Segment: seg}}); err == nil {
		t.Error("nil event accepted")
	}
}

func TestMultiObfuscatorProtectsTwoEvents(t *testing.T) {
	seg, _ := coverSegment(t)
	cat := hpc.NewAMDEpyc7252Catalog(1)
	mkDStar := func(seed uint64) Mechanism {
		m, err := NewDStarMechanism(1, 300, rng.New(seed).Split("dstar"))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	multi, err := NewMulti([]Plan{
		{Mechanism: mkDStar(1), Segment: seg, Event: cat.MustByName("RETIRED_UOPS"), ClipBound: 5000},
		{Mechanism: mkDStar(2), Segment: seg, Event: cat.MustByName("LS_DISPATCH"), ClipBound: 5000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Plans() != 2 {
		t.Fatalf("plans = %d", multi.Plans())
	}

	w := sev.NewWorld(sev.DefaultConfig(30))
	vm, err := w.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.AddProcess(0, multi); err != nil {
		t.Fatal(err)
	}
	w.Run(80)

	if multi.InjectedReps() == 0 {
		t.Fatal("no injection over 80 ticks")
	}
	for i := 0; i < 2; i++ {
		counts, err := multi.InjectedCounts(i)
		if err != nil {
			t.Fatal(err)
		}
		if counts <= 0 {
			t.Errorf("plan %d injected no counts", i)
		}
	}
	if _, err := multi.InjectedCounts(5); err == nil {
		t.Error("out-of-range plan accepted")
	}
}

func TestSecretDependentMechanism(t *testing.T) {
	base, err := NewLaplaceMechanism(1, 10, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSecretDependentMechanism(nil, 1, 100); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := NewSecretDependentMechanism(base, 1, 0); err == nil {
		t.Error("zero amplitude accepted")
	}
	m, err := NewSecretDependentMechanism(base, rng.HashString("secret-a"), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Offset < 0 || m.Offset > 1000 {
		t.Fatalf("offset = %v out of [0, 1000]", m.Offset)
	}
	// Two different secrets derive different offsets (overwhelmingly).
	m2, err := NewSecretDependentMechanism(base, rng.HashString("secret-b"), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Offset == m2.Offset {
		t.Error("distinct secrets derived identical offsets")
	}
	if m.Name() != "laplace+secret-offset" {
		t.Errorf("name = %q", m.Name())
	}
}

func TestSecretOffsetSurvivesAveraging(t *testing.T) {
	// §IX-B: averaging n noisy samples converges to the mean, which for
	// the secret-dependent mechanism retains the secret offset.
	base, err := NewLaplaceMechanism(1, 50, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewSecretDependentMechanism(base, rng.HashString("youtube.com"), 2000)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += m.Noise(int64(i), 0)
	}
	mean := sum / n
	// Laplace base has mean 0, so the average converges to the offset.
	if diff := mean - m.Offset; diff < -5 || diff > 5 {
		t.Errorf("averaged noise %v does not converge to offset %v", mean, m.Offset)
	}
	if m.Offset < 100 {
		t.Skip("offset too small for a meaningful persistence check")
	}
}
