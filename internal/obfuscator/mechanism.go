// Package obfuscator implements Aegis's Event Obfuscator (paper §VII): the
// online module deployed inside the victim VM that injects instruction
// gadget executions into the VM's execution flow so that the HPC values
// observed by the malicious host are differentially private.
//
// Two DP mechanisms are provided: the Laplace mechanism (ε-DP per
// Theorem 1) and the d* mechanism ((d*, 2ε)-privacy per Theorem 2,
// following Chan et al.'s binary tree composition). Two non-private
// baselines — uniform random noise and constant-output padding — exist for
// the paper's §IX-A comparison. The runtime splits into a kernel module
// (reads real-time HPC values with RDPMC, needed by d*) and a userspace
// daemon (noise calculator with a precomputed buffer, plus the noise
// injector), mirroring the paper's architecture.
package obfuscator

import (
	"errors"
	"fmt"
	"math"

	"github.com/repro/aegis/internal/rng"
)

// Errors returned by the package.
var (
	ErrBadEpsilon = errors.New("obfuscator: epsilon must be positive and finite")
	ErrBadBound   = errors.New("obfuscator: bound must be positive and finite")
)

// badParam reports a NaN/Inf/non-positive mechanism parameter. NaN needs
// explicit rejection: `v <= 0` is false for NaN and would slip through.
func badParam(v float64) bool {
	return !(v > 0) || math.IsInf(v, 0)
}

// Mechanism produces the per-tick noise (in event counts) to inject.
type Mechanism interface {
	// Name identifies the mechanism ("laplace", "dstar", ...).
	Name() string
	// NeedsObservation reports whether the mechanism requires the
	// real-time HPC value x[t] (read by the kernel module via RDPMC).
	NeedsObservation() bool
	// Noise returns the raw (unclipped) noise for tick t given the
	// observed count x (ignored unless NeedsObservation).
	Noise(t int64, x float64) float64
}

// NoiseCalculator pre-computes unit-scale Laplace samples into a ring
// buffer, transforming uniform [0,1) variates directly (paper §VII-C: the
// calculator avoids library calls on the hot path by transforming uniform
// samples and buffering them).
type NoiseCalculator struct {
	buf  []float64
	next int
	r    *rng.Source
}

// NewNoiseCalculator builds a calculator with the given buffer size.
func NewNoiseCalculator(bufSize int, r *rng.Source) *NoiseCalculator {
	if bufSize < 16 {
		bufSize = 16
	}
	c := &NoiseCalculator{buf: make([]float64, bufSize), r: r}
	c.refill()
	return c
}

func (c *NoiseCalculator) refill() {
	for i := range c.buf {
		// Inverse-CDF transform of a uniform variate to Laplace(0, 1).
		u := c.r.Float64() - 0.5
		if u < 0 {
			c.buf[i] = math.Log(1 + 2*u)
		} else {
			c.buf[i] = -math.Log(1 - 2*u)
		}
	}
	c.next = 0
}

// Lap returns the next buffered sample scaled to Laplace(0, scale).
func (c *NoiseCalculator) Lap(scale float64) float64 {
	if c.next >= len(c.buf) {
		c.refill()
	}
	v := c.buf[c.next] * scale
	c.next++
	return v
}

// clampDraw clips a raw mechanism draw to the injection support [0, bound]
// (paper §VIII-C: injected gadget counts cannot be negative and are capped
// at B_u). The clamp is branch-free — the min/max builtins compile to
// floating-point select sequences, so a clip storm costs the same as the
// common in-range tick instead of training the branch predictor on the
// mechanism's draw distribution. The clip flags are materialised from
// comparisons (SETcc), not control flow.
//
// One intentional divergence from the branchy `if noise < 0` form it
// replaces: a raw draw of exactly -0.0 (the Laplace inverse-CDF emits one
// when the uniform variate lands on 0.5) normalises to +0.0 instead of
// passing through. The sign bit is unobservable downstream — repetition
// counts, the d* Commit value and the tick outcome are identical — and
// TestClampDrawEquivalence pins the full boundary matrix including this
// case.
//
// The steady-state path is allocation-free: gated dynamically by TestZeroAllocObfuscatorTick
// (alloc_gate_test.go, `make bench-alloc`) and statically by the
// aegis-lint hotpath rule, which bans allocating constructs in any
// function carrying this annotation.
//
//aegis:hotpath
func clampDraw(raw, bound float64) (noise float64, clippedLow, clippedHigh bool) {
	clippedLow = raw < 0
	clippedHigh = raw > bound
	noise = min(max(raw, 0), bound)
	return noise, clippedLow, clippedHigh
}

// LaplaceMechanism adds Lap(Δ/ε) noise per tick (paper Theorem 1: ε-DP).
type LaplaceMechanism struct {
	Epsilon float64
	// Sensitivity is Δx[t]; the paper normalises sequences and uses 1.
	Sensitivity float64
	calc        *NoiseCalculator
}

// NewLaplaceMechanism builds the mechanism; sensitivity <= 0 defaults to 1.
func NewLaplaceMechanism(epsilon, sensitivity float64, r *rng.Source) (*LaplaceMechanism, error) {
	if badParam(epsilon) {
		return nil, fmt.Errorf("%w: %v", ErrBadEpsilon, epsilon)
	}
	if math.IsNaN(sensitivity) || math.IsInf(sensitivity, 0) {
		return nil, fmt.Errorf("%w: sensitivity %v", ErrBadBound, sensitivity)
	}
	if sensitivity <= 0 {
		sensitivity = 1
	}
	return &LaplaceMechanism{
		Epsilon:     epsilon,
		Sensitivity: sensitivity,
		calc:        NewNoiseCalculator(4096, r),
	}, nil
}

// Name implements Mechanism.
func (m *LaplaceMechanism) Name() string { return "laplace" }

// NeedsObservation implements Mechanism: the Laplace mechanism is oblivious
// to the actual HPC values, which also suits the paper's stricter threat
// model where the host manipulates HPC read calls.
func (m *LaplaceMechanism) NeedsObservation() bool { return false }

// Noise implements Mechanism.
func (m *LaplaceMechanism) Noise(_ int64, _ float64) float64 {
	return m.calc.Lap(m.Sensitivity / m.Epsilon)
}

// DStarMechanism implements the d* mechanism of paper §VII-B: a binary-
// tree-structured composition where the noisy value at tick t is derived
// from the noisy value at G(t):
//
//	x̃[t] = x̃[G(t)] + (x[t] − x[G(t)]) + r_t
//
// so the injected noise recursion is n_t = n_{G(t)} + r_t with r_t drawn
// per Eq. 5. It satisfies (d*, 2ε)-privacy (Theorem 2).
type DStarMechanism struct {
	Epsilon     float64
	Sensitivity float64
	calc        *NoiseCalculator
	// noiseAt memoises the *clipped, applied* noise per tick so the
	// recursion reuses exactly what was injected. The obfuscator stores
	// values back via Commit.
	noiseAt map[int64]float64
}

// NewDStarMechanism builds the mechanism.
func NewDStarMechanism(epsilon, sensitivity float64, r *rng.Source) (*DStarMechanism, error) {
	if badParam(epsilon) {
		return nil, fmt.Errorf("%w: %v", ErrBadEpsilon, epsilon)
	}
	if math.IsNaN(sensitivity) || math.IsInf(sensitivity, 0) {
		return nil, fmt.Errorf("%w: sensitivity %v", ErrBadBound, sensitivity)
	}
	if sensitivity <= 0 {
		sensitivity = 1
	}
	// Pre-size the memo to its Commit eviction plateau so steady-state
	// inserts reuse existing buckets instead of growing the table.
	noiseAt := make(map[int64]float64, 4096)
	noiseAt[0] = 0
	return &DStarMechanism{
		Epsilon:     epsilon,
		Sensitivity: sensitivity,
		calc:        NewNoiseCalculator(4096, r),
		noiseAt:     noiseAt,
	}, nil
}

// Name implements Mechanism.
func (m *DStarMechanism) Name() string { return "dstar" }

// NeedsObservation implements Mechanism: the d* recursion tracks real HPC
// values across ticks, which is why the kernel module monitors them.
func (m *DStarMechanism) NeedsObservation() bool { return true }

// D returns the largest power of two dividing t (paper Eq. 4 context).
func D(t int64) int64 {
	if t <= 0 {
		return 0
	}
	return t & (-t)
}

// G returns the tree parent of t per paper Eq. 4.
func G(t int64) int64 {
	switch {
	case t == 1:
		return 0
	case t == D(t) && t >= 2:
		return t / 2
	default:
		return t - D(t)
	}
}

// Noise implements Mechanism. The observed x is unused directly (the
// recursion over injected noise absorbs x[t]−x[G(t)] because the injector
// adds noise on top of whatever the application does), but the kernel
// module still reads it to follow the paper's dataflow.
func (m *DStarMechanism) Noise(t int64, _ float64) float64 {
	if t < 1 {
		return 0
	}
	var r float64
	if t == D(t) {
		r = m.calc.Lap(m.Sensitivity / m.Epsilon)
	} else {
		r = m.calc.Lap(m.Sensitivity * math.Floor(math.Log2(float64(t))) / m.Epsilon)
	}
	parent, ok := m.noiseAt[G(t)]
	if !ok {
		parent = 0
	}
	return parent + r
}

// Commit records the clipped noise actually injected at tick t, feeding
// future recursion steps.
func (m *DStarMechanism) Commit(t int64, applied float64) {
	m.noiseAt[t] = applied
	// Bound memory: only ancestors of future ticks are needed; drop
	// entries older than the lowest possible ancestor (t - 2^k window).
	if len(m.noiseAt) > 4096 {
		cut := t - 2048
		//aegis:allow(maprange) deletes below a fixed threshold are order-insensitive; surviving entries are identical either way
		for k := range m.noiseAt {
			if k != 0 && k < cut {
				delete(m.noiseAt, k)
			}
		}
	}
}

// RandomNoiseMechanism is the §IX-A baseline: uniform noise in [0, Bound]
// with no privacy guarantee.
type RandomNoiseMechanism struct {
	Bound float64
	r     *rng.Source
}

// NewRandomNoiseMechanism builds the baseline.
func NewRandomNoiseMechanism(bound float64, r *rng.Source) (*RandomNoiseMechanism, error) {
	if badParam(bound) {
		return nil, fmt.Errorf("%w: %v", ErrBadBound, bound)
	}
	return &RandomNoiseMechanism{Bound: bound, r: r}, nil
}

// Name implements Mechanism.
func (m *RandomNoiseMechanism) Name() string { return "random" }

// NeedsObservation implements Mechanism.
func (m *RandomNoiseMechanism) NeedsObservation() bool { return false }

// Noise implements Mechanism.
func (m *RandomNoiseMechanism) Noise(_ int64, _ float64) float64 {
	return m.r.Float64() * m.Bound
}

// ConstantOutputMechanism is the §IX-A "constant HPC output" baseline: pad
// every tick up to the peak value p, which the paper shows costs ~18× more
// noise than the Laplace mechanism.
type ConstantOutputMechanism struct {
	Peak float64
}

// NewConstantOutputMechanism builds the baseline.
func NewConstantOutputMechanism(peak float64) (*ConstantOutputMechanism, error) {
	if badParam(peak) {
		return nil, fmt.Errorf("%w: %v", ErrBadBound, peak)
	}
	return &ConstantOutputMechanism{Peak: peak}, nil
}

// Name implements Mechanism.
func (m *ConstantOutputMechanism) Name() string { return "constant" }

// NeedsObservation implements Mechanism: padding to a constant requires
// knowing the current value.
func (m *ConstantOutputMechanism) NeedsObservation() bool { return true }

// Noise implements Mechanism.
func (m *ConstantOutputMechanism) Noise(_ int64, x float64) float64 {
	if x >= m.Peak {
		return 0
	}
	return m.Peak - x
}
