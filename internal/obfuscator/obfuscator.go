package obfuscator

import (
	"fmt"
	"time"

	"github.com/repro/aegis/internal/faultinject"
	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/isa"
	"github.com/repro/aegis/internal/microarch"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/sev"
	"github.com/repro/aegis/internal/telemetry"
	"github.com/repro/aegis/internal/telemetry/flight"
)

// Obfuscator metrics: per-tick injection volume, clip/budget saturation,
// mechanism draw latency, and the degradation funnel (every tick lands in
// exactly one of injected/zero-draw/no-injection/degraded), shared by
// single- and multi-event deployers.
var (
	mTicks           = telemetry.C("obfuscator_ticks_total")
	mInjectedReps    = telemetry.C("obfuscator_injected_reps_total")
	mInjectedCounts  = telemetry.C("obfuscator_injected_counts_total")
	mClipSaturations = telemetry.C("obfuscator_clip_saturations_total")
	mRepSaturations  = telemetry.C("obfuscator_budget_saturations_total")
	mInjectedInstr   = telemetry.C("obfuscator_injected_instructions_total")
	hDrawNanos       = telemetry.H("obfuscator_mechanism_draw_ns",
		telemetry.ExpBuckets(64, 4, 8))

	// fTick journals every tick outcome in the flight recorder; degraded
	// ticks are incidents and mark the ring dirty.
	fTick = flight.Get(flight.KindObfuscatorTick)

	// Robustness metrics.
	mRetries          = telemetry.C("obfuscator_retries_total")
	mInjectedTicks    = telemetry.C("obfuscator_injected_ticks_total")
	mZeroDrawTicks    = telemetry.C("obfuscator_zero_draw_ticks_total")
	mNoInjectionTicks = telemetry.C("obfuscator_no_injection_ticks_total")
	mCounterRearms    = telemetry.C("obfuscator_counter_rearms_total")
	mMechFallbacks    = telemetry.C("obfuscator_mechanism_fallbacks_total")
	// mDegraded is created eagerly per reason so the metric names are
	// stable in expositions even before any fault fires.
	mDegraded = func() map[DegradeReason]*telemetry.Counter {
		out := make(map[DegradeReason]*telemetry.Counter, len(DegradeReasons))
		for _, r := range DegradeReasons {
			out[r] = telemetry.C("obfuscator_degraded_ticks_total", telemetry.L("reason", string(r)))
		}
		return out
	}()
)

// DegradeReason is the closed enum of degradation reasons. The same
// spelling travels everywhere a reason is exported: TickInfo,
// ProtectionReport.DegradedByReason, the
// obfuscator_degraded_ticks_total{reason=...} Prometheus label, and
// (via FlightCode) the flight recorder's JSONL dumps — so label
// cardinality is bounded by this enum and a grep for one spelling finds
// every surface.
type DegradeReason string

// Registered degradation reasons.
const (
	// ReasonKmodAttach: the kernel module could not attach its PMU.
	ReasonKmodAttach DegradeReason = "kmod-attach"
	// ReasonPMURead: the reference-event RDPMC read kept failing after
	// bounded retries; the tick proceeds without an observation.
	ReasonPMURead DegradeReason = "pmu-read"
	// ReasonCounterRearm: the reference counter was found latched at its
	// overflow cap and was re-programmed; this tick's observation is lost.
	ReasonCounterRearm DegradeReason = "counter-rearm"
	// ReasonDStarClipFallback: repeated clip saturations forced the d*
	// mechanism to fall back to Laplace, changing the privacy guarantee.
	ReasonDStarClipFallback DegradeReason = "dstar-clip-fallback"
	// ReasonRetryExhausted: gadget injection kept getting interrupted and
	// the retry budget ran out before the plan completed.
	ReasonRetryExhausted DegradeReason = "retry-exhausted"
	// ReasonExecError: the guest executor failed outright.
	ReasonExecError DegradeReason = "exec-error"
)

// DegradeReasons lists every degradation reason in stable order.
var DegradeReasons = []DegradeReason{
	ReasonKmodAttach, ReasonPMURead, ReasonCounterRearm,
	ReasonDStarClipFallback, ReasonRetryExhausted, ReasonExecError,
}

// String returns the stable wire name (also the Prometheus label value).
func (r DegradeReason) String() string { return string(r) }

// FlightCode maps the reason onto the flight-record taxonomy.
func (r DegradeReason) FlightCode() flight.Code {
	switch r {
	case ReasonKmodAttach:
		return flight.CodeDegradedKmodAttach
	case ReasonPMURead:
		return flight.CodeDegradedPMURead
	case ReasonCounterRearm:
		return flight.CodeDegradedCounterRearm
	case ReasonDStarClipFallback:
		return flight.CodeDegradedDStarClipFallback
	case ReasonRetryExhausted:
		return flight.CodeDegradedRetryExhausted
	case ReasonExecError:
		return flight.CodeDegradedExecError
	default:
		return flight.CodeNone
	}
}

// TickOutcome classifies what one obfuscator tick did. Outcomes are
// mutually exclusive so they reconcile: ticks == injected + zero-draw +
// no-injection + degraded.
type TickOutcome int

const (
	// TickInjected: the tick injected at least one full gadget segment.
	TickInjected TickOutcome = iota
	// TickZeroDraw: the mechanism drew zero or negative noise, clipped to
	// the support's lower bound — the mechanism chose not to inject.
	TickZeroDraw
	// TickNoInjection: the draw was positive but too small to warrant even
	// one segment execution. Distinguished from TickZeroDraw because the
	// mechanism DID ask for noise; the calibration granularity ate it.
	TickNoInjection
	// TickDegraded: a fault kept the tick from following the normal
	// protocol (see TickInfo.DegradedReason). Injection may still have
	// partially happened; protection must not be reported as full.
	TickDegraded
)

// String returns a stable name for the outcome.
func (o TickOutcome) String() string {
	switch o {
	case TickInjected:
		return "injected"
	case TickZeroDraw:
		return "zero-draw"
	case TickNoInjection:
		return "no-injection"
	case TickDegraded:
		return "degraded"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// TickInfo is the result of one obfuscator tick.
type TickInfo struct {
	// Tick is the world tick the info describes.
	Tick int64
	// Outcome classifies the tick.
	Outcome TickOutcome
	// DegradedReason names the first degradation that hit (Outcome ==
	// TickDegraded only).
	DegradedReason DegradeReason
	// RawDraw is the mechanism's draw before clipping (or the injected
	// draw-extreme fault value).
	RawDraw float64
	// Noise is the clipped draw in [0, ClipBound].
	Noise float64
	// ClippedLow/ClippedHigh report clipping at the support bounds.
	ClippedLow, ClippedHigh bool
	// Requested is the segment executions the noise asked for; Injected is
	// how many fully retired. Retries counts re-attempts after
	// fault-interrupted executions or failed PMU reads.
	Requested, Injected, Retries int
	// Applied is Injected×perExec, the counts fed back into d*'s Commit.
	Applied float64
	// Rearmed reports that the reference counter was re-programmed after
	// an overflow latch.
	Rearmed bool
	// FellBack reports that the mechanism fell back to Laplace this tick.
	FellBack bool
}

// ProtectionReport summarises what the obfuscator actually delivered.
type ProtectionReport struct {
	Ticks, InjectedTicks, ZeroDrawTicks, NoInjectionTicks, DegradedTicks int64
	// DegradedByReason splits DegradedTicks (plus fallback events) by
	// reason.
	DegradedByReason map[DegradeReason]int64
	// Retries, CounterRearms, MechanismFallbacks count recovery actions.
	Retries, CounterRearms, MechanismFallbacks int64
	// FaultsSeen is the number of faults injected into this obfuscator's
	// own substrate handles (kernel-module PMU + mechanism draws).
	FaultsSeen uint64
}

// Full reports whether protection ran at full fidelity: no degraded ticks,
// no mechanism fallback, and no faults observed on the obfuscator's own
// substrate. Under faults this is false — the obfuscator never silently
// claims full protection.
func (r ProtectionReport) Full() bool {
	return r.DegradedTicks == 0 && r.MechanismFallbacks == 0 && r.FaultsSeen == 0
}

// Config configures the in-VM obfuscator service.
type Config struct {
	// Mechanism generates the per-tick noise target (event counts).
	Mechanism Mechanism
	// Segment is the stacked gadget code segment from the fuzzer's
	// minimal cover; it is executed repeatedly to inject noise.
	Segment []isa.Variant
	// RefEvent calibrates counts→repetitions and is the event the kernel
	// module monitors for observation-based mechanisms.
	RefEvent *hpc.Event
	// ClipBound is the B_u upper clip of the per-tick injected counts;
	// noise is truncated to [0, ClipBound] because the number of injected
	// gadgets cannot be negative (paper §VIII-C, e.g. 2e4 for
	// RETIRED_UOPS).
	ClipBound float64
	// MaxRepsPerTick caps segment executions per tick so injection cannot
	// starve the protected application outright; 0 means no cap beyond
	// the vCPU budget.
	MaxRepsPerTick int
	// Seed drives the noise sampling.
	Seed uint64
	// Faults injects substrate faults into the obfuscator's own kernel
	// module PMU and mechanism draws. The zero value is the healthy
	// substrate.
	Faults faultinject.Config
	// MaxRetries bounds per-tick retries of failed PMU reads and
	// fault-interrupted gadget executions; 0 means 3, negative disables
	// retrying.
	MaxRetries int
	// FallbackAfterClips is the number of consecutive clip saturations
	// after which an observation-based d* mechanism falls back to a
	// Laplace mechanism with the same (ε, Δ); 0 means 8, negative
	// disables the fallback.
	FallbackAfterClips int
}

// Errors returned by the obfuscator.
var (
	ErrNoMechanism = fmt.Errorf("obfuscator: nil mechanism")
	ErrNoSegment   = fmt.Errorf("obfuscator: empty gadget segment")
	ErrNoRefEvent  = fmt.Errorf("obfuscator: nil reference event")
)

// kernelModule is the in-guest controller: it monitors real-time HPC
// values with RDPMC for observation-based mechanisms and forwards them to
// the userspace daemon (the netlink socket of the paper collapses to a
// struct field here).
type kernelModule struct {
	pmu      *hpc.PMU
	attached bool
}

func (k *kernelModule) attach(core *microarch.Core, ev *hpc.Event, faults *faultinject.Handle) error {
	k.pmu = hpc.NewPMU(core, nil) // in-guest reads are taken as ground truth
	k.pmu.SetFaults(faults)
	if err := k.pmu.Program(hpc.NumCounterRegisters-1, ev); err != nil {
		return err
	}
	k.attached = true
	return nil
}

// readAndReset returns the reference event's count since the last tick.
func (k *kernelModule) readAndReset() (float64, error) {
	v, err := k.pmu.RDPMC(hpc.NumCounterRegisters - 1)
	if err != nil {
		return 0, err
	}
	if err := k.pmu.Reset(hpc.NumCounterRegisters - 1); err != nil {
		return 0, err
	}
	return v, nil
}

// saturated reports whether the reference counter is latched at its
// overflow cap.
func (k *kernelModule) saturated() bool {
	return k.pmu.Saturated(hpc.NumCounterRegisters - 1)
}

// rearm re-programs the reference counter, clearing an overflow latch.
func (k *kernelModule) rearm(ev *hpc.Event) error {
	return k.pmu.Program(hpc.NumCounterRegisters-1, ev)
}

// Obfuscator is the sev.Process deployed inside the victim VM. It is
// scheduled on the same vCPU as the protected application (paper §VII-C)
// so the hypervisor cannot separate the two.
type Obfuscator struct {
	cfg Config

	kmod    kernelModule
	noise   *rng.Source
	perExec float64 // reference-event counts per segment execution

	// Fault handling. faults is this obfuscator's own injector (nil when
	// healthy); kmodFaults feeds the kernel module's PMU, drawFaults the
	// mechanism draw path.
	faults     *faultinject.Injector
	kmodFaults *faultinject.Handle
	drawFaults *faultinject.Handle
	maxRetries int

	// Degradation policy state: the active mechanism (swapped on
	// fallback), the prepared Laplace fallback, and the consecutive
	// high-clip streak that triggers it.
	mech          Mechanism
	fallback      Mechanism
	fallbackAfter int
	consecClips   int

	// Telemetry.
	injectedCounts float64
	injectedReps   int64
	ticks          int64
	saturatedTicks int64

	injectedTicks    int64
	zeroDrawTicks    int64
	noInjectionTicks int64
	degradedTicks    int64
	degradedByReason map[DegradeReason]int64
	mechCode         flight.Code
	retriesTotal     int64
	counterRearms    int64
	fallbacks        int64
	last             TickInfo
}

var _ sev.Process = (*Obfuscator)(nil)

// New builds an obfuscator. The counts→repetitions calibration executes
// the segment on an offline scratch core (part of the one-time deployment
// work, like the fuzzer's offline analysis).
func New(cfg Config) (*Obfuscator, error) {
	if cfg.Mechanism == nil {
		return nil, ErrNoMechanism
	}
	if len(cfg.Segment) == 0 {
		return nil, ErrNoSegment
	}
	if cfg.RefEvent == nil {
		return nil, ErrNoRefEvent
	}
	if cfg.ClipBound <= 0 {
		cfg.ClipBound = 20000
	}
	maxRetries := cfg.MaxRetries
	switch {
	case maxRetries == 0:
		maxRetries = 3
	case maxRetries < 0:
		maxRetries = 0
	}
	fallbackAfter := cfg.FallbackAfterClips
	if fallbackAfter == 0 {
		fallbackAfter = 8
	}
	o := &Obfuscator{
		cfg:              cfg,
		noise:            rng.New(cfg.Seed).Split("obfuscator"),
		faults:           faultinject.New(cfg.Faults),
		maxRetries:       maxRetries,
		mech:             cfg.Mechanism,
		fallbackAfter:    fallbackAfter,
		degradedByReason: make(map[DegradeReason]int64),
	}
	o.mechCode = mechFlightCode(o.mech)
	o.kmodFaults = o.faults.Handle("obfuscator", "kmod")
	o.drawFaults = o.faults.Handle("obfuscator", "draw")
	// Prepare the d*→Laplace fallback with the same privacy parameters:
	// if draws clip persistently, the tree recursion's committed noise no
	// longer matches what was drawn, so a memoryless mechanism is safer.
	if d, ok := cfg.Mechanism.(*DStarMechanism); ok && fallbackAfter > 0 {
		fb, err := NewLaplaceMechanism(d.Epsilon, d.Sensitivity,
			rng.New(cfg.Seed).Split("obfuscator-fallback"))
		if err != nil {
			return nil, err
		}
		o.fallback = fb
	}
	per, err := calibrateSegment(cfg.Segment, cfg.RefEvent)
	if err != nil {
		return nil, err
	}
	o.perExec = per
	return o, nil
}

// calibrateSegment measures the reference event's count change of one
// steady-state segment execution.
func calibrateSegment(seg []isa.Variant, ev *hpc.Event) (float64, error) {
	coreCfg := microarch.DefaultCoreConfig()
	coreCfg.InterruptRate = 0
	core := microarch.NewCore(0, coreCfg, nil)
	ctx := microarch.NewScratchContext(0x2000_0000)
	// Warm once, then measure the steady state over several executions.
	if err := core.ExecuteSequence(seg, ctx); err != nil {
		return 0, fmt.Errorf("calibrate segment: %w", err)
	}
	const reps = 8
	before := core.Counters()
	for i := 0; i < reps; i++ {
		if err := core.ExecuteSequence(seg, ctx); err != nil {
			return 0, fmt.Errorf("calibrate segment: %w", err)
		}
	}
	delta := ev.Value(core.Counters().Sub(before).Vector()) / reps
	if delta <= 0 {
		// The segment never perturbs the reference event; fall back to
		// µop-weight so injection still paces sensibly.
		delta = float64(len(seg))
	}
	return delta, nil
}

// Name implements sev.Process.
func (o *Obfuscator) Name() string { return "aegis-obfuscator" }

// PerExecDelta returns the calibrated reference-event counts per segment
// execution.
func (o *Obfuscator) PerExecDelta() float64 { return o.perExec }

// InjectedCounts returns the cumulative injected noise in reference-event
// counts (the quantity compared across defenses in paper §IX-A).
func (o *Obfuscator) InjectedCounts() float64 { return o.injectedCounts }

// InjectedReps returns the cumulative segment executions.
func (o *Obfuscator) InjectedReps() int64 { return o.injectedReps }

// SaturationRate returns the fraction of ticks where the vCPU budget or
// rep cap truncated the requested injection.
func (o *Obfuscator) SaturationRate() float64 {
	if o.ticks == 0 {
		return 0
	}
	return float64(o.saturatedTicks) / float64(o.ticks)
}

// ActiveMechanism returns the mechanism currently drawing noise (the
// configured one, or the Laplace fallback after a d* clip storm).
func (o *Obfuscator) ActiveMechanism() Mechanism { return o.mech }

// LastTick returns the most recent tick's result.
func (o *Obfuscator) LastTick() TickInfo { return o.last }

// Report returns the cumulative protection report.
func (o *Obfuscator) Report() ProtectionReport {
	byReason := make(map[DegradeReason]int64, len(o.degradedByReason))
	//aegis:allow(maprange) flat key-by-key copy into a fresh map; iteration order cannot leak
	for k, v := range o.degradedByReason {
		byReason[k] = v
	}
	return ProtectionReport{
		Ticks:              o.ticks,
		InjectedTicks:      o.injectedTicks,
		ZeroDrawTicks:      o.zeroDrawTicks,
		NoInjectionTicks:   o.noInjectionTicks,
		DegradedTicks:      o.degradedTicks,
		DegradedByReason:   byReason,
		Retries:            o.retriesTotal,
		CounterRearms:      o.counterRearms,
		MechanismFallbacks: o.fallbacks,
		FaultsSeen:         o.kmodFaults.Total() + o.drawFaults.Total(),
	}
}

// Step implements sev.Process: one tick of the kernel-module/daemon loop.
//
// The steady-state path is allocation-free: gated dynamically by TestZeroAllocObfuscatorTick
// (alloc_gate_test.go, `make bench-alloc`) and statically by the
// aegis-lint hotpath rule, which bans allocating constructs in any
// function carrying this annotation.
//
//aegis:hotpath
func (o *Obfuscator) Step(g *sev.GuestExecutor) {
	o.ticks++
	tickSpan := telemetry.StartSpan("obfuscator.tick")
	info := o.runTick(g, g.Tick())
	tickSpan.End()
	mTicks.Inc()
	o.last = info
	o.retriesTotal += int64(info.Retries)
	switch info.Outcome {
	case TickInjected:
		o.injectedTicks++
		mInjectedTicks.Inc()
	case TickZeroDraw:
		o.zeroDrawTicks++
		mZeroDrawTicks.Inc()
	case TickNoInjection:
		o.noInjectionTicks++
		mNoInjectionTicks.Inc()
	case TickDegraded:
		o.degradedTicks++
		o.degradedByReason[info.DegradedReason]++
		if c, ok := mDegraded[info.DegradedReason]; ok {
			c.Inc()
		}
	}
	// Journal the tick: code is the outcome (or degradation reason), sub
	// the active mechanism, payload the draw/injection/retry shape.
	if info.Outcome == TickDegraded {
		fTick.Incident(info.Tick, info.DegradedReason.FlightCode(), o.mechCode,
			info.Noise, float64(info.Injected), float64(info.Retries))
	} else {
		fTick.Record(info.Tick, tickFlightCode(info.Outcome), o.mechCode,
			info.Noise, float64(info.Injected), float64(info.Retries))
	}
}

// tickFlightCode maps a healthy outcome onto the flight-record taxonomy.
func tickFlightCode(o TickOutcome) flight.Code {
	switch o {
	case TickZeroDraw:
		return flight.CodeTickZeroDraw
	case TickNoInjection:
		return flight.CodeTickNoInjection
	default:
		return flight.CodeTickInjected
	}
}

// mechFlightCode maps the active mechanism onto the flight sub-code
// journaled with every tick record.
func mechFlightCode(m Mechanism) flight.Code {
	switch m.(type) {
	case *LaplaceMechanism:
		return flight.CodeMechLaplace
	case *DStarMechanism:
		return flight.CodeMechDStar
	case *RandomNoiseMechanism:
		return flight.CodeMechRandom
	case *ConstantOutputMechanism:
		return flight.CodeMechConstant
	default:
		return flight.CodeMechOther
	}
}

// degrade marks the tick's outcome as degraded with the given reason (the
// first reason sticks).
func degrade(info *TickInfo, reason DegradeReason) {
	info.Outcome = TickDegraded
	if info.DegradedReason == "" {
		info.DegradedReason = reason
	}
}

// runTick executes one tick of the kernel-module/daemon protocol with the
// per-tick degradation policy: bounded retries on PMU read failures,
// counter re-arm on overflow latches, skip-and-count when recovery fails,
// and a d*→Laplace fallback under persistent clip saturation.
//
// The steady-state path is allocation-free: gated dynamically by TestZeroAllocObfuscatorTick
// (alloc_gate_test.go, `make bench-alloc`) and statically by the
// aegis-lint hotpath rule, which bans allocating constructs in any
// function carrying this annotation.
//
//aegis:hotpath
func (o *Obfuscator) runTick(g *sev.GuestExecutor, t int64) TickInfo {
	info := TickInfo{Tick: t}

	// Kernel module: lazily attach to this vCPU's core, then read the
	// real-time HPC value when the mechanism needs it.
	if !o.kmod.attached {
		if err := o.kmod.attach(g.Core(), o.cfg.RefEvent, o.kmodFaults); err != nil {
			degrade(&info, ReasonKmodAttach)
			return info
		}
	}
	var x float64
	if o.mech.NeedsObservation() {
		v, err := o.kmod.readAndReset()
		for attempt := 0; err != nil && attempt < o.maxRetries; attempt++ {
			info.Retries++
			mRetries.Inc()
			v, err = o.kmod.readAndReset()
		}
		switch {
		case err != nil:
			// Skip-and-count: no observation this tick, no injection —
			// silently injecting on a stale x would distort the recursion.
			degrade(&info, ReasonPMURead)
			return info
		case o.kmod.saturated():
			// The read came back latched at the overflow cap: garbage.
			// Re-arm the counter (re-program clears the latch) and proceed
			// with x = 0 rather than feeding the cap into the mechanism.
			if rerr := o.kmod.rearm(o.cfg.RefEvent); rerr != nil {
				degrade(&info, ReasonCounterRearm)
				return info
			}
			o.counterRearms++
			mCounterRearms.Inc()
			info.Rearmed = true
			degrade(&info, ReasonCounterRearm)
			x = 0
		default:
			x = v
		}
	}

	// Daemon: noise calculation with clipping to [0, B_u]. An injected
	// draw-extreme fault replaces the draw with a clipping extreme.
	raw := drawNoise(o.mech, t, x)
	if v, ok := o.drawFaults.DrawExtreme(); ok {
		raw = v
	}
	info.RawDraw = raw
	noise, cLo, cHi := clampDraw(raw, o.cfg.ClipBound)
	info.ClippedLow = cLo
	info.ClippedHigh = cHi
	if cHi {
		mClipSaturations.Inc()
		o.consecClips++
	} else {
		o.consecClips = 0
	}
	info.Noise = noise

	// Persistent clip saturation: the d* recursion keeps committing
	// clipped values that diverge from its draws, so swap to the prepared
	// memoryless Laplace fallback (same ε and Δ) from the next tick on.
	if o.fallback != nil && o.mech != o.fallback && o.consecClips >= o.fallbackAfter {
		o.mech = o.fallback
		o.mechCode = mechFlightCode(o.mech)
		o.fallbacks++
		mMechFallbacks.Inc()
		info.FellBack = true
		degrade(&info, ReasonDStarClipFallback)
	}

	// Classify deliberate non-injection before running the injector: a
	// zero/negative draw is the mechanism's choice (the DP support
	// includes 0), a positive draw below one segment's worth is a
	// calibration-granularity no-op.
	if info.Outcome != TickDegraded {
		if raw <= 0 {
			info.Outcome = TickZeroDraw
		} else if int(noise/o.perExec+0.5) == 0 {
			info.Outcome = TickNoInjection
		}
	}

	// Daemon: injection — repeat the stacked gadget segment, retrying
	// fault-interrupted executions with a deterministic backoff (each
	// retry halves the remaining plan, so interrupt storms converge
	// instead of hammering the executor).
	reps := int(noise/o.perExec + 0.5)
	if o.cfg.MaxRepsPerTick > 0 && reps > o.cfg.MaxRepsPerTick {
		reps = o.cfg.MaxRepsPerTick
		o.saturatedTicks++
		mRepSaturations.Inc()
	}
	info.Requested = reps
	injectedReps := 0
	planned := reps
	for i := 0; i < planned; {
		n, err := g.ExecuteSeq(o.cfg.Segment)
		if err != nil {
			degrade(&info, ReasonExecError)
			break
		}
		if n == len(o.cfg.Segment) {
			injectedReps++
			i++
			continue
		}
		if g.Remaining() == 0 {
			// vCPU tick budget exhausted mid-segment: physics, not a
			// fault — stop here as before.
			o.saturatedTicks++
			mRepSaturations.Inc()
			if n > 0 {
				injectedReps++ // partial execution still perturbs
			}
			break
		}
		// Budget remains but the segment stopped short: an interrupt
		// landed mid-gadget. Retry with backoff.
		if info.Retries < o.maxRetries {
			info.Retries++
			mRetries.Inc()
			remaining := planned - i
			planned = i + (remaining+1)/2
			continue
		}
		degrade(&info, ReasonRetryExhausted)
		break
	}
	applied := float64(injectedReps) * o.perExec
	info.Injected = injectedReps
	info.Applied = applied
	o.injectedCounts += applied
	o.injectedReps += int64(injectedReps)
	mInjectedReps.Add(float64(injectedReps))
	mInjectedCounts.Add(applied)
	mInjectedInstr.Add(float64(injectedReps * len(o.cfg.Segment)))
	if info.Outcome == TickInjected && injectedReps == 0 {
		// The plan asked for reps but none retired (e.g. budget hit on
		// the very first segment): an empty tick, not an injected one.
		info.Outcome = TickNoInjection
	}

	// Observation-based mechanisms track what was actually injected.
	if d, ok := o.mech.(*DStarMechanism); ok {
		d.Commit(t, applied)
	}
	return info
}

// drawNoise samples the mechanism, timing the draw when telemetry is live.
func drawNoise(m Mechanism, t int64, x float64) float64 {
	if !telemetry.Enabled() {
		return m.Noise(t, x)
	}
	start := time.Now() //aegis:allow(detrand) wall-clock times the draw for telemetry only, never feeds the mechanism
	v := m.Noise(t, x)
	hDrawNanos.Observe(float64(time.Since(start).Nanoseconds())) //aegis:allow(detrand) wall-clock times the draw for telemetry only, never feeds the mechanism
	return v
}
