package obfuscator

import (
	"fmt"
	"time"

	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/isa"
	"github.com/repro/aegis/internal/microarch"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/sev"
	"github.com/repro/aegis/internal/telemetry"
)

// Obfuscator metrics: per-tick injection volume, clip/budget saturation
// and mechanism draw latency, shared by single- and multi-event deployers.
var (
	mTicks           = telemetry.C("obfuscator_ticks_total")
	mInjectedReps    = telemetry.C("obfuscator_injected_reps_total")
	mInjectedCounts  = telemetry.C("obfuscator_injected_counts_total")
	mClipSaturations = telemetry.C("obfuscator_clip_saturations_total")
	mRepSaturations  = telemetry.C("obfuscator_budget_saturations_total")
	hDrawNanos       = telemetry.H("obfuscator_mechanism_draw_ns",
		telemetry.ExpBuckets(64, 4, 8))
)

// Config configures the in-VM obfuscator service.
type Config struct {
	// Mechanism generates the per-tick noise target (event counts).
	Mechanism Mechanism
	// Segment is the stacked gadget code segment from the fuzzer's
	// minimal cover; it is executed repeatedly to inject noise.
	Segment []isa.Variant
	// RefEvent calibrates counts→repetitions and is the event the kernel
	// module monitors for observation-based mechanisms.
	RefEvent *hpc.Event
	// ClipBound is the B_u upper clip of the per-tick injected counts;
	// noise is truncated to [0, ClipBound] because the number of injected
	// gadgets cannot be negative (paper §VIII-C, e.g. 2e4 for
	// RETIRED_UOPS).
	ClipBound float64
	// MaxRepsPerTick caps segment executions per tick so injection cannot
	// starve the protected application outright; 0 means no cap beyond
	// the vCPU budget.
	MaxRepsPerTick int
	// Seed drives the noise sampling.
	Seed uint64
}

// Errors returned by the obfuscator.
var (
	ErrNoMechanism = fmt.Errorf("obfuscator: nil mechanism")
	ErrNoSegment   = fmt.Errorf("obfuscator: empty gadget segment")
	ErrNoRefEvent  = fmt.Errorf("obfuscator: nil reference event")
)

// kernelModule is the in-guest controller: it monitors real-time HPC
// values with RDPMC for observation-based mechanisms and forwards them to
// the userspace daemon (the netlink socket of the paper collapses to a
// struct field here).
type kernelModule struct {
	pmu      *hpc.PMU
	attached bool
}

func (k *kernelModule) attach(core *microarch.Core, ev *hpc.Event) error {
	k.pmu = hpc.NewPMU(core, nil) // in-guest reads are taken as ground truth
	if err := k.pmu.Program(hpc.NumCounterRegisters-1, ev); err != nil {
		return err
	}
	k.attached = true
	return nil
}

// readAndReset returns the reference event's count since the last tick.
func (k *kernelModule) readAndReset() (float64, error) {
	v, err := k.pmu.RDPMC(hpc.NumCounterRegisters - 1)
	if err != nil {
		return 0, err
	}
	if err := k.pmu.Reset(hpc.NumCounterRegisters - 1); err != nil {
		return 0, err
	}
	return v, nil
}

// Obfuscator is the sev.Process deployed inside the victim VM. It is
// scheduled on the same vCPU as the protected application (paper §VII-C)
// so the hypervisor cannot separate the two.
type Obfuscator struct {
	cfg Config

	kmod    kernelModule
	noise   *rng.Source
	perExec float64 // reference-event counts per segment execution

	// Telemetry.
	injectedCounts float64
	injectedReps   int64
	ticks          int64
	saturatedTicks int64
}

var _ sev.Process = (*Obfuscator)(nil)

// New builds an obfuscator. The counts→repetitions calibration executes
// the segment on an offline scratch core (part of the one-time deployment
// work, like the fuzzer's offline analysis).
func New(cfg Config) (*Obfuscator, error) {
	if cfg.Mechanism == nil {
		return nil, ErrNoMechanism
	}
	if len(cfg.Segment) == 0 {
		return nil, ErrNoSegment
	}
	if cfg.RefEvent == nil {
		return nil, ErrNoRefEvent
	}
	if cfg.ClipBound <= 0 {
		cfg.ClipBound = 20000
	}
	o := &Obfuscator{
		cfg:   cfg,
		noise: rng.New(cfg.Seed).Split("obfuscator"),
	}
	per, err := calibrateSegment(cfg.Segment, cfg.RefEvent)
	if err != nil {
		return nil, err
	}
	o.perExec = per
	return o, nil
}

// calibrateSegment measures the reference event's count change of one
// steady-state segment execution.
func calibrateSegment(seg []isa.Variant, ev *hpc.Event) (float64, error) {
	coreCfg := microarch.DefaultCoreConfig()
	coreCfg.InterruptRate = 0
	core := microarch.NewCore(0, coreCfg, nil)
	ctx := microarch.NewScratchContext(0x2000_0000)
	// Warm once, then measure the steady state over several executions.
	if err := core.ExecuteSequence(seg, ctx); err != nil {
		return 0, fmt.Errorf("calibrate segment: %w", err)
	}
	const reps = 8
	before := core.Counters()
	for i := 0; i < reps; i++ {
		if err := core.ExecuteSequence(seg, ctx); err != nil {
			return 0, fmt.Errorf("calibrate segment: %w", err)
		}
	}
	delta := ev.Value(core.Counters().Sub(before).Vector()) / reps
	if delta <= 0 {
		// The segment never perturbs the reference event; fall back to
		// µop-weight so injection still paces sensibly.
		delta = float64(len(seg))
	}
	return delta, nil
}

// Name implements sev.Process.
func (o *Obfuscator) Name() string { return "aegis-obfuscator" }

// PerExecDelta returns the calibrated reference-event counts per segment
// execution.
func (o *Obfuscator) PerExecDelta() float64 { return o.perExec }

// InjectedCounts returns the cumulative injected noise in reference-event
// counts (the quantity compared across defenses in paper §IX-A).
func (o *Obfuscator) InjectedCounts() float64 { return o.injectedCounts }

// InjectedReps returns the cumulative segment executions.
func (o *Obfuscator) InjectedReps() int64 { return o.injectedReps }

// SaturationRate returns the fraction of ticks where the vCPU budget or
// rep cap truncated the requested injection.
func (o *Obfuscator) SaturationRate() float64 {
	if o.ticks == 0 {
		return 0
	}
	return float64(o.saturatedTicks) / float64(o.ticks)
}

// Step implements sev.Process: one tick of the kernel-module/daemon loop.
func (o *Obfuscator) Step(g *sev.GuestExecutor) {
	o.ticks++
	t := g.Tick()
	tickSpan := telemetry.StartSpan("obfuscator.tick")
	defer tickSpan.End()
	mTicks.Inc()

	// Kernel module: lazily attach to this vCPU's core, then read the
	// real-time HPC value when the mechanism needs it.
	if !o.kmod.attached {
		if err := o.kmod.attach(g.Core(), o.cfg.RefEvent); err != nil {
			return
		}
	}
	var x float64
	if o.cfg.Mechanism.NeedsObservation() {
		v, err := o.kmod.readAndReset()
		if err != nil {
			return
		}
		x = v
	}

	// Daemon: noise calculation with clipping to [0, B_u].
	noise := drawNoise(o.cfg.Mechanism, t, x)
	if noise < 0 {
		noise = 0
	}
	if noise > o.cfg.ClipBound {
		noise = o.cfg.ClipBound
		mClipSaturations.Inc()
	}

	// Daemon: injection — repeat the stacked gadget segment.
	reps := int(noise/o.perExec + 0.5)
	if o.cfg.MaxRepsPerTick > 0 && reps > o.cfg.MaxRepsPerTick {
		reps = o.cfg.MaxRepsPerTick
		o.saturatedTicks++
		mRepSaturations.Inc()
	}
	injectedReps := 0
	for i := 0; i < reps; i++ {
		n, err := g.ExecuteSeq(o.cfg.Segment)
		if err != nil {
			break
		}
		if n < len(o.cfg.Segment) {
			// vCPU tick budget exhausted mid-segment.
			o.saturatedTicks++
			mRepSaturations.Inc()
			if n > 0 {
				injectedReps++ // partial execution still perturbs
			}
			break
		}
		injectedReps++
	}
	applied := float64(injectedReps) * o.perExec
	o.injectedCounts += applied
	o.injectedReps += int64(injectedReps)
	mInjectedReps.Add(float64(injectedReps))
	mInjectedCounts.Add(applied)

	// Observation-based mechanisms track what was actually injected.
	if d, ok := o.cfg.Mechanism.(*DStarMechanism); ok {
		d.Commit(t, applied)
	}
}

// drawNoise samples the mechanism, timing the draw when telemetry is live.
func drawNoise(m Mechanism, t int64, x float64) float64 {
	if !telemetry.Enabled() {
		return m.Noise(t, x)
	}
	start := time.Now()
	v := m.Noise(t, x)
	hDrawNanos.Observe(float64(time.Since(start).Nanoseconds()))
	return v
}
