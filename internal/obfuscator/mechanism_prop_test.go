package obfuscator

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/repro/aegis/internal/rng"
)

// Property: every Laplace draw is finite, and over a seeded stream both
// signs occur with roughly equal frequency (sign-flip symmetry of the
// distribution around 0).
func TestLaplaceDrawSupportAndSymmetry(t *testing.T) {
	if err := quick.Check(func(seed uint16) bool {
		m, err := NewLaplaceMechanism(1, 100, rng.New(uint64(seed)).Split("prop-lap"))
		if err != nil {
			return false
		}
		pos, neg := 0, 0
		const trials = 1000
		for i := int64(1); i <= trials; i++ {
			v := m.Noise(i, 0)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Logf("seed %d: non-finite draw %v at t=%d", seed, v, i)
				return false
			}
			if v > 0 {
				pos++
			} else if v < 0 {
				neg++
			}
		}
		// Binomial(1000, 1/2) stays within ±5σ ≈ ±80 of 500.
		return pos > 420 && neg > 420
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: clipping to [0, B] always lands in [0, B], maps the negative
// half of the support to exactly 0, and is the identity inside the bounds.
func TestClippedSupportBounds(t *testing.T) {
	const bound = 2000.0
	clip := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > bound {
			return bound
		}
		return v
	}
	m, err := NewLaplaceMechanism(0.25, 500, rng.New(9).Split("prop-clip"))
	if err != nil {
		t.Fatal(err)
	}
	sawZero, sawBound, sawInterior := false, false, false
	for i := int64(1); i <= 5000; i++ {
		raw := m.Noise(i, 0)
		c := clip(raw)
		if c < 0 || c > bound {
			t.Fatalf("clipped draw %v outside [0, %v]", c, bound)
		}
		switch {
		case raw < 0 && c != 0:
			t.Fatalf("negative draw %v clipped to %v, want 0", raw, c)
		case raw > bound && c != bound:
			t.Fatalf("over-bound draw %v clipped to %v, want %v", raw, c, bound)
		case raw >= 0 && raw <= bound && c != raw:
			t.Fatalf("in-bound draw %v altered to %v", raw, c)
		}
		sawZero = sawZero || c == 0
		sawBound = sawBound || c == bound
		sawInterior = sawInterior || (c > 0 && c < bound)
	}
	// With ε=0.25 and Δ=500 the scale is 2000, so all three regions of
	// the clipped support must be visited.
	if !sawZero || !sawBound || !sawInterior {
		t.Errorf("clipped support not fully visited: zero=%t bound=%t interior=%t",
			sawZero, sawBound, sawInterior)
	}
}

// Property: d* draws stay finite through 1k ticks of commit feedback, and
// committed values inside the clipped support keep the recursion's output
// within a linear envelope of the support bound.
func TestDStarDrawBoundsUnderCommitFeedback(t *testing.T) {
	const bound = 2000.0
	m, err := NewDStarMechanism(1, 100, rng.New(10).Split("prop-dstar"))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 1000; i++ {
		v := m.Noise(i, 0)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite d* draw %v at t=%d", v, i)
		}
		clipped := v
		if clipped < 0 {
			clipped = 0
		}
		if clipped > bound {
			clipped = bound
		}
		m.Commit(i, clipped)
		// The committed parent chain adds at most one clipped value per
		// recursion level: |noise| <= bound + |fresh Laplace|, and the
		// fresh term at scale Δ·log2(t)/ε stays far below 100×Δ in 1k
		// draws (P[|X| > 70Δ·log2 t /ε] < 1e-30).
		if math.Abs(v) > bound+100*m.Sensitivity*math.Log2(float64(i)+2) {
			t.Fatalf("d* draw %v at t=%d escaped the commit envelope", v, i)
		}
	}
}

// Property: mechanisms are deterministic per stream — identical seeds
// replay identical 1k-draw sequences, different stream labels diverge.
func TestMechanismDeterminismPerStream(t *testing.T) {
	const trials = 1000
	draws := func(m Mechanism, commit bool) []float64 {
		out := make([]float64, trials)
		for i := int64(1); i <= trials; i++ {
			v := m.Noise(i, 0)
			out[i-1] = v
			if commit {
				if d, ok := m.(*DStarMechanism); ok {
					c := v
					if c < 0 {
						c = 0
					}
					d.Commit(i, c)
				}
			}
		}
		return out
	}
	mk := func(kind, label string, seed uint64) Mechanism {
		t.Helper()
		r := rng.New(seed).Split(label)
		var (
			m   Mechanism
			err error
		)
		switch kind {
		case "laplace":
			m, err = NewLaplaceMechanism(1, 100, r)
		case "dstar":
			m, err = NewDStarMechanism(1, 100, r)
		case "random":
			m, err = NewRandomNoiseMechanism(100, r)
		}
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	for _, kind := range []string{"laplace", "dstar", "random"} {
		a := draws(mk(kind, "stream-a", 42), true)
		b := draws(mk(kind, "stream-a", 42), true)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: identical streams diverge at trial %d: %v vs %v", kind, i, a[i], b[i])
			}
		}
		c := draws(mk(kind, "stream-b", 42), true)
		same := 0
		for i := range a {
			if a[i] == c[i] {
				same++
			}
		}
		if same == trials {
			t.Errorf("%s: distinct stream labels produced identical sequences", kind)
		}
	}
}

// FuzzMechanismDraw exercises mechanism construction and the draw/commit
// cycle on arbitrary parameters: no panic, no NaN, and clipped commits
// never corrupt later draws.
func FuzzMechanismDraw(f *testing.F) {
	f.Add(uint64(1), 1.0, 100.0, int64(7))
	f.Add(uint64(2), 0.125, 1500.0, int64(1))
	f.Add(uint64(3), 8.0, 1.0, int64(1024))
	f.Fuzz(func(t *testing.T, seed uint64, eps, sens float64, tick int64) {
		// Sanitise into the constructors' documented domain; rejected
		// parameters must error, not panic.
		lm, errL := NewLaplaceMechanism(eps, sens, rng.New(seed).Split("fuzz-lap"))
		dm, errD := NewDStarMechanism(eps, sens, rng.New(seed).Split("fuzz-dstar"))
		// Finite non-positive sensitivity is documented to default to 1;
		// NaN/Inf anywhere must be rejected.
		valid := eps > 0 && !math.IsInf(eps, 0) &&
			!math.IsNaN(sens) && !math.IsInf(sens, 0)
		if !valid {
			if errL == nil || errD == nil {
				t.Fatalf("invalid (eps=%v, sens=%v) accepted: %v %v", eps, sens, errL, errD)
			}
			return
		}
		if errL != nil || errD != nil {
			t.Fatalf("valid (eps=%v, sens=%v) rejected: %v %v", eps, sens, errL, errD)
		}
		if tick < 1 {
			tick = 1 - tick
		}
		if tick < 1 || tick > 1<<40 {
			tick = 1
		}
		for i := int64(0); i < 16; i++ {
			tt := tick + i
			if v := lm.Noise(tt, 0); math.IsNaN(v) {
				t.Fatalf("laplace NaN at t=%d", tt)
			}
			v := dm.Noise(tt, 0)
			if math.IsNaN(v) {
				t.Fatalf("dstar NaN at t=%d", tt)
			}
			c := v
			if c < 0 {
				c = 0
			}
			if c > 20000 {
				c = 20000
			}
			dm.Commit(tt, c)
		}
	})
}
