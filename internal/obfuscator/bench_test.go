package obfuscator

import (
	"fmt"
	"testing"

	"github.com/repro/aegis/internal/rng"
)

// BenchmarkNoiseCalculatorLap measures the buffered Laplace draw — the
// per-tick hot path every mechanism rides on (paper §VII-C) — across buffer
// sizes, to show the amortised cost of the ring buffer versus refills.
func BenchmarkNoiseCalculatorLap(b *testing.B) {
	for _, size := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("buf=%d", size), func(b *testing.B) {
			c := NewNoiseCalculator(size, rng.New(1).Split("bench"))
			b.ReportAllocs()
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += c.Lap(2.0)
			}
			_ = sink
		})
	}
}

// BenchmarkMechanismNoise measures the per-tick noise draw of each
// mechanism end to end, including the D* observation bookkeeping.
func BenchmarkMechanismNoise(b *testing.B) {
	b.Run("laplace", func(b *testing.B) {
		m, err := NewLaplaceMechanism(1.0, 1.0, rng.New(2).Split("bench"))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += m.Noise(int64(i), 100)
		}
		_ = sink
	})
	b.Run("dstar", func(b *testing.B) {
		m, err := NewDStarMechanism(1.0, 1.0, rng.New(3).Split("bench"))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		var sink float64
		for i := 0; i < b.N; i++ {
			t := int64(i + 1)
			v := m.Noise(t, 100)
			m.Commit(t, v)
			sink += v
		}
		_ = sink
	})
}
