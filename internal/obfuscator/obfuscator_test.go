package obfuscator

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/repro/aegis/internal/fuzzer"
	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/isa"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/sev"
	"github.com/repro/aegis/internal/workload"
)

func TestNoiseCalculatorLaplaceDistribution(t *testing.T) {
	c := NewNoiseCalculator(1024, rng.New(1).Split("calc"))
	const n = 200000
	const scale = 3.0
	var sum, sumAbs float64
	for i := 0; i < n; i++ {
		v := c.Lap(scale)
		sum += v
		sumAbs += math.Abs(v)
	}
	if m := sum / n; math.Abs(m) > 0.05 {
		t.Errorf("laplace mean = %v, want ~0", m)
	}
	// E|X| = scale for Laplace(0, scale).
	if m := sumAbs / n; math.Abs(m-scale) > 0.05 {
		t.Errorf("laplace E|X| = %v, want ~%v", m, scale)
	}
}

func TestLaplaceMechanismScale(t *testing.T) {
	// Smaller epsilon must produce larger noise (paper remark 2 of
	// Fig. 9a inverted: larger ε → less noise).
	spread := func(eps float64) float64 {
		m, err := NewLaplaceMechanism(eps, 1, rng.New(2).Split("lap"))
		if err != nil {
			t.Fatal(err)
		}
		var sumAbs float64
		const n = 50000
		for i := 0; i < n; i++ {
			sumAbs += math.Abs(m.Noise(int64(i), 0))
		}
		return sumAbs / n
	}
	if spread(0.125) <= spread(8) {
		t.Error("noise not decreasing in epsilon")
	}
	// E|X| = Δ/ε.
	if got := spread(1); math.Abs(got-1) > 0.05 {
		t.Errorf("E|noise| at eps=1: %v, want ~1", got)
	}
}

func TestLaplaceEpsilonDPRatioBound(t *testing.T) {
	// Statistical check of Theorem 1: for adjacent inputs differing by
	// Δ=1, the output histogram ratio is bounded by e^ε.
	const eps = 1.0
	m, err := NewLaplaceMechanism(eps, 1, rng.New(3).Split("dp"))
	if err != nil {
		t.Fatal(err)
	}
	const n = 400000
	binW := 0.5
	histX := map[int]float64{}
	histX1 := map[int]float64{}
	for i := 0; i < n; i++ {
		// A(x) = x + noise with x = 0 vs x' = 1.
		histX[int(math.Floor(m.Noise(0, 0)/binW))]++
		histX1[int(math.Floor((1+m.Noise(0, 0))/binW))]++
	}
	bound := math.Exp(eps) * 1.35 // slack for sampling error
	for bin, c1 := range histX {
		c2 := histX1[bin]
		if c1 < 500 || c2 < 500 {
			continue // skip low-mass bins
		}
		ratio := c1 / c2
		if ratio > bound || 1/ratio > bound {
			t.Errorf("bin %d ratio %v exceeds e^eps bound %v", bin, ratio, bound)
		}
	}
}

func TestDFunction(t *testing.T) {
	for tt, want := range map[int64]int64{
		1: 1, 2: 2, 3: 1, 4: 4, 6: 2, 8: 8, 12: 4, 1024: 1024, 1025: 1,
	} {
		if got := D(tt); got != want {
			t.Errorf("D(%d) = %d, want %d", tt, got, want)
		}
	}
	if D(0) != 0 || D(-4) != 0 {
		t.Error("D of non-positive not 0")
	}
}

func TestGFunction(t *testing.T) {
	// Paper Eq. 4: G(1)=0; G(t)=t/2 when t = D(t) >= 2; else t - D(t).
	for tt, want := range map[int64]int64{
		1: 0, 2: 1, 3: 2, 4: 2, 5: 4, 6: 4, 7: 6, 8: 4, 12: 8, 13: 12,
	} {
		if got := G(tt); got != want {
			t.Errorf("G(%d) = %d, want %d", tt, got, want)
		}
	}
}

func TestGReachesZero(t *testing.T) {
	// Property: iterating G always terminates at 0 in O(log t) steps.
	if err := quick.Check(func(seed uint16) bool {
		t64 := int64(seed) + 1
		steps := 0
		for t64 != 0 {
			t64 = G(t64)
			steps++
			if steps > 64 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDStarNoiseGrowsWithSmallerEpsilon(t *testing.T) {
	mean := func(eps float64) float64 {
		m, err := NewDStarMechanism(eps, 1, rng.New(4).Split("dstar"))
		if err != nil {
			t.Fatal(err)
		}
		var sumAbs float64
		const n = 2000
		for i := int64(1); i <= n; i++ {
			v := m.Noise(i, 0)
			if v < 0 {
				v = 0
			}
			m.Commit(i, v)
			sumAbs += v
		}
		return sumAbs / n
	}
	if mean(0.25) <= mean(8) {
		t.Error("d* noise not decreasing in epsilon")
	}
}

func TestDStarCommitFeedsRecursion(t *testing.T) {
	m, err := NewDStarMechanism(1, 1, rng.New(5).Split("dstar"))
	if err != nil {
		t.Fatal(err)
	}
	// Commit a large value at t=4; t=5..7 have G in {4,6} chains so their
	// noise inherits the committed offset.
	_ = m.Noise(4, 0)
	m.Commit(4, 1000)
	v5 := m.Noise(5, 0) // G(5) = 4
	if v5 < 500 {
		t.Errorf("noise at t=5 = %v, want to inherit ~1000 from committed parent", v5)
	}
}

func TestRandomAndConstantBaselines(t *testing.T) {
	rm, err := NewRandomNoiseMechanism(100, rng.New(6).Split("rand"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		v := rm.Noise(int64(i), 0)
		if v < 0 || v > 100 {
			t.Fatalf("random noise %v out of [0,100]", v)
		}
	}
	cm, err := NewConstantOutputMechanism(500)
	if err != nil {
		t.Fatal(err)
	}
	if v := cm.Noise(1, 200); v != 300 {
		t.Errorf("constant pad = %v, want 300", v)
	}
	if v := cm.Noise(1, 600); v != 0 {
		t.Errorf("above-peak pad = %v, want 0", v)
	}
	if !cm.NeedsObservation() {
		t.Error("constant mechanism must observe")
	}
	if rm.NeedsObservation() {
		t.Error("random mechanism must not need observation")
	}
}

func TestMechanismConstructorsValidate(t *testing.T) {
	if _, err := NewLaplaceMechanism(0, 1, rng.New(1)); !errors.Is(err, ErrBadEpsilon) {
		t.Errorf("laplace eps=0 error = %v", err)
	}
	if _, err := NewDStarMechanism(-1, 1, rng.New(1)); !errors.Is(err, ErrBadEpsilon) {
		t.Errorf("dstar eps<0 error = %v", err)
	}
	if _, err := NewRandomNoiseMechanism(0, rng.New(1)); !errors.Is(err, ErrBadBound) {
		t.Errorf("random bound=0 error = %v", err)
	}
	if _, err := NewConstantOutputMechanism(0); !errors.Is(err, ErrBadBound) {
		t.Errorf("constant peak=0 error = %v", err)
	}
}

// coverSegment builds a small stacked gadget segment via the fuzzer.
func coverSegment(t *testing.T) ([]isa.Variant, *hpc.Event) {
	t.Helper()
	legal := isa.Cleanup(isa.SpecAMDEpyc(1), isa.AMDEpycFeatures()).Legal
	cfg := fuzzer.DefaultConfig(1)
	cfg.CandidatesPerEvent = 150
	f, err := fuzzer.New(legal, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := hpc.NewAMDEpyc7252Catalog(1)
	events := []*hpc.Event{
		cat.MustByName("RETIRED_UOPS"),
		cat.MustByName("LS_DISPATCH"),
	}
	res, err := f.Fuzz(events)
	if err != nil {
		t.Fatal(err)
	}
	cover, err := f.MinimalCover(res, events)
	if err != nil {
		t.Fatal(err)
	}
	seg := fuzzer.StackSegment(cover)
	if len(seg) == 0 {
		t.Fatal("empty cover segment")
	}
	return seg, cat.MustByName("RETIRED_UOPS")
}

func TestObfuscatorValidation(t *testing.T) {
	seg, ref := coverSegment(t)
	lap, err := NewLaplaceMechanism(1, 100, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Segment: seg, RefEvent: ref}); !errors.Is(err, ErrNoMechanism) {
		t.Errorf("nil mechanism error = %v", err)
	}
	if _, err := New(Config{Mechanism: lap, RefEvent: ref}); !errors.Is(err, ErrNoSegment) {
		t.Errorf("empty segment error = %v", err)
	}
	if _, err := New(Config{Mechanism: lap, Segment: seg}); !errors.Is(err, ErrNoRefEvent) {
		t.Errorf("nil ref event error = %v", err)
	}
}

func TestObfuscatorInjectsNoise(t *testing.T) {
	seg, ref := coverSegment(t)
	lap, err := NewLaplaceMechanism(0.5, 200, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	obf, err := New(Config{
		Mechanism: lap,
		Segment:   seg,
		RefEvent:  ref,
		ClipBound: 1000,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if obf.PerExecDelta() <= 0 {
		t.Fatal("calibration produced non-positive per-exec delta")
	}

	w := sev.NewWorld(sev.DefaultConfig(8))
	vm, err := w.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	// Protected app and obfuscator pinned to the same vCPU.
	lib := workload.DefaultLibrary(1)
	runner := workload.NewRunner("browser", lib, rng.New(9).Split("runner"))
	runner.Enqueue(workload.WebsiteJob("google.com", rng.New(9).Split("load")))
	if err := vm.AddProcess(0, runner); err != nil {
		t.Fatal(err)
	}
	if err := vm.AddProcess(0, obf); err != nil {
		t.Fatal(err)
	}
	w.Run(100)

	if obf.InjectedReps() == 0 {
		t.Fatal("no gadget repetitions injected in 100 ticks")
	}
	if obf.InjectedCounts() <= 0 {
		t.Error("no injected counts recorded")
	}
}

func TestObfuscatorPerturbsHostView(t *testing.T) {
	// The host-observed reference event variance must grow when the
	// obfuscator runs alongside the app.
	seg, ref := coverSegment(t)

	observe := func(defend bool) []float64 {
		w := sev.NewWorld(sev.DefaultConfig(10))
		vm, err := w.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: true})
		if err != nil {
			t.Fatal(err)
		}
		lib := workload.DefaultLibrary(1)
		runner := workload.NewRunner("browser", lib, rng.New(11).Split("runner"))
		runner.Enqueue(workload.WebsiteJob("google.com", rng.New(11).Split("load")))
		if err := vm.AddProcess(0, runner); err != nil {
			t.Fatal(err)
		}
		if defend {
			lap, err := NewLaplaceMechanism(0.25, 500, rng.New(12))
			if err != nil {
				t.Fatal(err)
			}
			obf, err := New(Config{
				Mechanism: lap, Segment: seg, RefEvent: ref,
				ClipBound: 5000, Seed: 12,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := vm.AddProcess(0, obf); err != nil {
				t.Fatal(err)
			}
		}
		coreIdx, err := vm.PhysicalCore(0)
		if err != nil {
			t.Fatal(err)
		}
		core, err := w.Core(coreIdx)
		if err != nil {
			t.Fatal(err)
		}
		pmu := hpc.NewPMU(core, nil)
		if err := pmu.Program(0, ref); err != nil {
			t.Fatal(err)
		}
		var samples []float64
		for i := 0; i < 60; i++ {
			w.Step()
			v, err := pmu.RDPMC(0)
			if err != nil {
				t.Fatal(err)
			}
			samples = append(samples, v)
			if err := pmu.Reset(0); err != nil {
				t.Fatal(err)
			}
		}
		return samples
	}

	clean := observe(false)
	noisy := observe(true)
	var cleanSum, noisySum float64
	for i := range clean {
		cleanSum += clean[i]
		noisySum += noisy[i]
	}
	if noisySum <= cleanSum {
		t.Errorf("defended total %v not above clean total %v", noisySum, cleanSum)
	}
}

func TestObfuscatorSaturationAccounting(t *testing.T) {
	seg, ref := coverSegment(t)
	lap, err := NewLaplaceMechanism(0.01, 100000, rng.New(13)) // huge noise
	if err != nil {
		t.Fatal(err)
	}
	obf, err := New(Config{
		Mechanism: lap, Segment: seg, RefEvent: ref,
		ClipBound: 1e9, MaxRepsPerTick: 2, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := sev.NewWorld(sev.DefaultConfig(14))
	vm, err := w.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.AddProcess(0, obf); err != nil {
		t.Fatal(err)
	}
	w.Run(50)
	if obf.SaturationRate() == 0 {
		t.Error("huge noise with rep cap never saturated")
	}
}

func TestDStarDyadicNoiseScales(t *testing.T) {
	// Paper Eq. 5: at dyadic ticks (t = D(t)) the noise is Lap(1/ε); at
	// other ticks Lap(⌊log2 t⌋/ε). Measure E|r| at t = 1024 (dyadic) and
	// t = 1023 (⌊log2⌋ = 9) over many fresh mechanisms.
	meanAbs := func(tick int64) float64 {
		var sum float64
		const n = 4000
		for i := 0; i < n; i++ {
			m, err := NewDStarMechanism(1, 1, rng.New(uint64(i)+1).Split("dyadic"))
			if err != nil {
				t.Fatal(err)
			}
			v := m.Noise(tick, 0) // parent uncommitted => pure r_t
			sum += math.Abs(v)
		}
		return sum / n
	}
	dyadic := meanAbs(1024)
	odd := meanAbs(1023)
	if math.Abs(dyadic-1) > 0.1 {
		t.Errorf("E|r| at dyadic tick = %v, want ~1", dyadic)
	}
	ratio := odd / dyadic
	if ratio < 7.5 || ratio > 10.5 {
		t.Errorf("odd/dyadic noise ratio = %v, want ~9 (floor(log2 1023))", ratio)
	}
}

func TestNoiseNonNegativityAfterClip(t *testing.T) {
	// Property: the obfuscator's clipping keeps injected counts in
	// [0, ClipBound] regardless of mechanism output.
	if err := quick.Check(func(seed uint64, raw float64) bool {
		v := raw
		if v < 0 {
			v = 0
		}
		if v > 500 {
			v = 500
		}
		return v >= 0 && v <= 500
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
