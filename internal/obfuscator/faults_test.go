package obfuscator

import (
	"testing"

	"github.com/repro/aegis/internal/faultinject"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/sev"
)

// fixedMech always draws the same noise value; it lets tests steer the
// obfuscator into specific tick outcomes.
type fixedMech struct{ v float64 }

func (m *fixedMech) Name() string           { return "fixed" }
func (m *fixedMech) NeedsObservation() bool { return false }
func (m *fixedMech) Noise(int64, float64) float64 {
	return m.v
}

// runObf drives the obfuscator alone on one SEV vCPU for n ticks.
func runObf(t *testing.T, obf *Obfuscator, n int) {
	t.Helper()
	w := sev.NewWorld(sev.DefaultConfig(21))
	vm, err := w.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.AddProcess(0, obf); err != nil {
		t.Fatal(err)
	}
	w.Run(n)
}

func baseConfig(t *testing.T, mech Mechanism, seed uint64) Config {
	t.Helper()
	seg, ref := coverSegment(t)
	return Config{
		Mechanism: mech,
		Segment:   seg,
		RefEvent:  ref,
		ClipBound: 2000,
		Seed:      seed,
	}
}

func TestFunnelReconcilesOnHealthySubstrate(t *testing.T) {
	lap, err := NewLaplaceMechanism(0.5, 200, rng.New(30))
	if err != nil {
		t.Fatal(err)
	}
	obf, err := New(baseConfig(t, lap, 30))
	if err != nil {
		t.Fatal(err)
	}
	runObf(t, obf, 200)
	r := obf.Report()
	if r.Ticks != 200 {
		t.Fatalf("ticks = %d, want 200", r.Ticks)
	}
	if got := r.InjectedTicks + r.ZeroDrawTicks + r.NoInjectionTicks + r.DegradedTicks; got != r.Ticks {
		t.Errorf("funnel does not reconcile: %d+%d+%d+%d != %d",
			r.InjectedTicks, r.ZeroDrawTicks, r.NoInjectionTicks, r.DegradedTicks, r.Ticks)
	}
	if r.DegradedTicks != 0 {
		t.Errorf("healthy run degraded %d ticks: %v", r.DegradedTicks, r.DegradedByReason)
	}
	if !r.Full() {
		t.Errorf("healthy run not reported as full protection: %+v", r)
	}
}

func TestZeroDrawDistinguishedFromNoInjection(t *testing.T) {
	// A zero/negative clipped draw (mechanism chose no noise) and a
	// positive draw too small to fire one gadget rep must land in
	// different outcome buckets even though both inject nothing.
	fm := &fixedMech{v: -5}
	obf, err := New(baseConfig(t, fm, 31))
	if err != nil {
		t.Fatal(err)
	}
	runObf(t, obf, 10)
	r := obf.Report()
	if r.ZeroDrawTicks != 10 {
		t.Errorf("negative draws: zero-draw ticks = %d, want 10 (report %+v)", r.ZeroDrawTicks, r)
	}
	last := obf.LastTick()
	if last.Outcome != TickZeroDraw {
		t.Errorf("negative draw outcome = %v, want zero-draw", last.Outcome)
	}
	if !last.ClippedLow || last.RawDraw != -5 {
		t.Errorf("negative draw not recorded as low clip: %+v", last)
	}
	if last.Requested != 0 || last.Injected != 0 {
		t.Errorf("zero-draw tick executed gadgets: %+v", last)
	}

	// Now a positive draw worth less than half a segment execution.
	fm2 := &fixedMech{}
	obf2, err := New(baseConfig(t, fm2, 32))
	if err != nil {
		t.Fatal(err)
	}
	fm2.v = obf2.PerExecDelta() * 0.4
	runObf(t, obf2, 10)
	r2 := obf2.Report()
	if r2.NoInjectionTicks != 10 {
		t.Errorf("tiny draws: no-injection ticks = %d, want 10 (report %+v)", r2.NoInjectionTicks, r2)
	}
	last2 := obf2.LastTick()
	if last2.Outcome != TickNoInjection {
		t.Errorf("tiny draw outcome = %v, want no-injection", last2.Outcome)
	}
	if last2.ClippedLow || last2.RawDraw <= 0 {
		t.Errorf("tiny positive draw misrecorded: %+v", last2)
	}
	if r2.ZeroDrawTicks != 0 {
		t.Errorf("tiny positive draws counted as zero draws: %+v", r2)
	}
}

func TestPMUReadFaultsDegradeAndAreCounted(t *testing.T) {
	// Every RDPMC fails: observation-based ticks retry, then skip and
	// count. The obfuscator must not report full protection.
	dstar, err := NewDStarMechanism(1, 100, rng.New(33).Split("dstar"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, dstar, 33)
	cfg.Faults = faultinject.Config{Seed: 33, PMUReadErrorRate: 1}
	obf, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runObf(t, obf, 50)
	r := obf.Report()
	if r.DegradedTicks != 50 {
		t.Fatalf("degraded ticks = %d, want 50 (report %+v)", r.DegradedTicks, r)
	}
	if r.DegradedByReason[ReasonPMURead] != 50 {
		t.Errorf("pmu-read reason count = %d, want 50", r.DegradedByReason[ReasonPMURead])
	}
	if r.Retries == 0 {
		t.Error("no retries recorded before giving up")
	}
	if r.FaultsSeen == 0 {
		t.Error("no faults recorded on the obfuscator handles")
	}
	if r.Full() {
		t.Error("fully faulted run reported as full protection")
	}
	if obf.InjectedReps() != 0 {
		t.Errorf("degraded ticks still injected %d reps", obf.InjectedReps())
	}
}

func TestCounterSaturationTriggersRearm(t *testing.T) {
	// The reference counter latches at its overflow cap every tick; the
	// obfuscator re-programs it, counts the re-arm, and marks the tick
	// degraded instead of feeding the cap into the mechanism.
	dstar, err := NewDStarMechanism(1, 100, rng.New(34).Split("dstar"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, dstar, 34)
	cfg.Faults = faultinject.Config{Seed: 34, CounterSaturationRate: 1, SaturationCap: 5e5}
	obf, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runObf(t, obf, 20)
	r := obf.Report()
	if r.CounterRearms != 20 {
		t.Errorf("counter rearms = %d, want 20", r.CounterRearms)
	}
	if r.DegradedByReason[ReasonCounterRearm] != 20 {
		t.Errorf("counter-rearm degradations = %d, want 20", r.DegradedByReason[ReasonCounterRearm])
	}
	// The latched cap (5e5) must never reach the mechanism as an
	// observation: committed noise stays within the clip bound.
	if obf.InjectedCounts() > float64(r.Ticks)*cfg.ClipBound {
		t.Errorf("injected counts %v exceed per-tick clip", obf.InjectedCounts())
	}
	if r.Full() {
		t.Error("rearm-heavy run reported as full protection")
	}
}

func TestDrawExtremesClipAndStillInject(t *testing.T) {
	// Draw-extreme faults replace the mechanism draw with ±1e9; positive
	// ones clip to the bound and inject, negative ones clip to zero. No
	// tick may inject more than the clipped support allows.
	lap, err := NewLaplaceMechanism(0.5, 200, rng.New(35))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, lap, 35)
	cfg.Faults = faultinject.Config{Seed: 35, DrawExtremeRate: 1, DrawExtremeMagnitude: 1e9}
	cfg.MaxRepsPerTick = 400
	obf, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runObf(t, obf, 60)
	r := obf.Report()
	if r.InjectedTicks == 0 || r.ZeroDrawTicks == 0 {
		t.Fatalf("draw extremes should split into injected and zero-draw ticks: %+v", r)
	}
	if r.InjectedTicks+r.ZeroDrawTicks+r.NoInjectionTicks+r.DegradedTicks != r.Ticks {
		t.Errorf("funnel does not reconcile under draw extremes: %+v", r)
	}
	maxPerTick := cfg.ClipBound + obf.PerExecDelta() // rounding slack
	if obf.InjectedCounts() > float64(r.Ticks)*maxPerTick {
		t.Errorf("injected %v counts over %d ticks exceeds clipped support",
			obf.InjectedCounts(), r.Ticks)
	}
	if r.FaultsSeen == 0 || r.Full() {
		t.Errorf("draw-extreme run must not report full protection: %+v", r)
	}
	last := obf.LastTick()
	if !last.ClippedHigh && !last.ClippedLow {
		t.Errorf("extreme draw not clipped: %+v", last)
	}
}

func TestDStarFallsBackToLaplaceUnderClipStorm(t *testing.T) {
	// Persistent positive extremes clip every draw; after
	// FallbackAfterClips consecutive clips the d* recursion is abandoned
	// for a memoryless Laplace with the same (ε, Δ).
	dstar, err := NewDStarMechanism(1, 100, rng.New(36).Split("dstar"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, dstar, 36)
	cfg.Faults = faultinject.Config{Seed: 36, DrawExtremeRate: 1, DrawExtremeMagnitude: 1e9}
	cfg.FallbackAfterClips = 3
	cfg.MaxRepsPerTick = 50
	obf, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if obf.ActiveMechanism() != Mechanism(dstar) {
		t.Fatal("active mechanism before faults should be d*")
	}
	runObf(t, obf, 200)
	r := obf.Report()
	if r.MechanismFallbacks != 1 {
		t.Fatalf("mechanism fallbacks = %d, want 1 (report %+v)", r.MechanismFallbacks, r)
	}
	if r.DegradedByReason[ReasonDStarClipFallback] != 1 {
		t.Errorf("dstar-clip-fallback degradations = %d, want 1", r.DegradedByReason[ReasonDStarClipFallback])
	}
	if got := obf.ActiveMechanism().Name(); got != "laplace" {
		t.Errorf("active mechanism after clip storm = %q, want laplace", got)
	}
	if r.Full() {
		t.Error("fallback run reported as full protection")
	}
}

func TestGadgetInterruptRetriesWithBackoff(t *testing.T) {
	// Mid-gadget interrupts leave budget unspent; the obfuscator retries
	// with a halving backoff and records the retries. Under a moderate
	// rate the tick usually still injects.
	lap, err := NewLaplaceMechanism(0.5, 400, rng.New(37))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, lap, 37)
	cfg.Faults = faultinject.Config{Seed: 37, GadgetInterruptRate: 0.3}
	obf, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := sev.NewWorld(sev.DefaultConfig(22))
	w.SetFaults(faultinject.New(faultinject.Config{Seed: 22, GadgetInterruptRate: 0.3}))
	vm, err := w.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.AddProcess(0, obf); err != nil {
		t.Fatal(err)
	}
	w.Run(200)
	r := obf.Report()
	if r.Retries == 0 {
		t.Errorf("no retries recorded under gadget interrupts: %+v", r)
	}
	if r.InjectedTicks == 0 {
		t.Errorf("interrupt storm killed all injection: %+v", r)
	}
	if r.Full() {
		t.Error("interrupted run reported as full protection")
	}
}

func TestObfuscatorDeterministicUnderFaults(t *testing.T) {
	run := func() (float64, ProtectionReport) {
		dstar, err := NewDStarMechanism(1, 100, rng.New(38).Split("dstar"))
		if err != nil {
			t.Fatal(err)
		}
		cfg := baseConfig(t, dstar, 38)
		cfg.Faults, err = faultinject.Preset(faultinject.PresetHeavy, 38)
		if err != nil {
			t.Fatal(err)
		}
		obf, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		runObf(t, obf, 150)
		return obf.InjectedCounts(), obf.Report()
	}
	c1, r1 := run()
	c2, r2 := run()
	if c1 != c2 {
		t.Errorf("injected counts differ across identical runs: %v vs %v", c1, c2)
	}
	if r1.DegradedTicks != r2.DegradedTicks || r1.Retries != r2.Retries ||
		r1.FaultsSeen != r2.FaultsSeen {
		t.Errorf("reports differ across identical runs:\n%+v\n%+v", r1, r2)
	}
	if r1.InjectedTicks+r1.ZeroDrawTicks+r1.NoInjectionTicks+r1.DegradedTicks != r1.Ticks {
		t.Errorf("funnel does not reconcile under heavy preset: %+v", r1)
	}
}

func TestMultiObfuscatorDegradesPerPlan(t *testing.T) {
	seg, ref := coverSegment(t)
	mkPlans := func() []Plan {
		d1, err := NewDStarMechanism(1, 100, rng.New(40).Split("d1"))
		if err != nil {
			t.Fatal(err)
		}
		d2, err := NewDStarMechanism(1, 100, rng.New(40).Split("d2"))
		if err != nil {
			t.Fatal(err)
		}
		return []Plan{
			{Mechanism: d1, Segment: seg, Event: ref, ClipBound: 1000},
			{Mechanism: d2, Segment: seg, Event: ref, ClipBound: 1000},
		}
	}
	run := func(faults faultinject.Config) *MultiObfuscator {
		m, err := NewMulti(mkPlans())
		if err != nil {
			t.Fatal(err)
		}
		m.SetFaults(faultinject.New(faults))
		w := sev.NewWorld(sev.DefaultConfig(23))
		vm, err := w.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.AddProcess(0, m); err != nil {
			t.Fatal(err)
		}
		w.Run(80)
		return m
	}

	healthy := run(faultinject.Config{})
	if !healthy.FullProtection() || healthy.DegradedPlanTicks() != 0 {
		t.Errorf("healthy multi run degraded: %d plan-ticks", healthy.DegradedPlanTicks())
	}

	faulted := run(faultinject.Config{Seed: 41, PMUReadErrorRate: 1})
	if faulted.FullProtection() {
		t.Error("fully faulted multi run reported full protection")
	}
	if got := faulted.DegradedPlanTicks(); got != 2*80 {
		t.Errorf("degraded plan-ticks = %d, want 160 (both plans, every tick)", got)
	}
	if faulted.Retries() == 0 {
		t.Error("no retries recorded in multi deployment")
	}
	if faulted.InjectedReps() != 0 {
		t.Errorf("faulted multi run injected %d reps", faulted.InjectedReps())
	}

	// Saturation path: latched counters are re-armed, not consumed.
	sat := run(faultinject.Config{Seed: 42, CounterSaturationRate: 1, SaturationCap: 5e5})
	if sat.CounterRearms() == 0 {
		t.Error("no counter rearms under saturation in multi deployment")
	}
}
