package obfuscator

import (
	"math"
	"testing"
)

// branchyClamp is the pre-blocked-kernels clip form clampDraw replaced,
// kept verbatim as the equivalence reference.
func branchyClamp(raw, bound float64) (noise float64, lo, hi bool) {
	noise = raw
	if noise < 0 {
		noise = 0
		lo = true
	}
	if noise > bound {
		noise = bound
		hi = true
	}
	return noise, lo, hi
}

// TestClampDrawEquivalence pins the branch-free clamp against the branchy
// form it replaced over the full boundary matrix: interior values, the
// support bounds themselves, one-ULP neighbours, extremes, infinities, NaN
// and both signed zeros. The single intentional divergence is raw == -0.0:
// the min/max builtins order -0 before +0, so the clamp normalises it to
// +0.0 where the branchy form passed -0.0 through (`-0.0 < 0` is false).
// The sign bit is unobservable downstream — the draw-to-repetitions
// conversion and the d* Commit value are identical for ±0 — so the
// divergence is accepted and pinned here rather than papered over.
func TestClampDrawEquivalence(t *testing.T) {
	const bound = 20000.0
	negZero := math.Copysign(0, -1)
	ulpBelow := math.Nextafter(bound, 0)
	ulpAbove := math.Nextafter(bound, math.Inf(1))
	cases := []float64{
		math.Inf(-1), -1e300, -bound, -1, -math.SmallestNonzeroFloat64,
		negZero, 0, math.SmallestNonzeroFloat64, 1, bound / 2,
		ulpBelow, bound, ulpAbove, bound * 2, 1e300, math.Inf(1),
		math.NaN(),
	}
	for _, raw := range cases {
		got, gotLo, gotHi := clampDraw(raw, bound)
		want, wantLo, wantHi := branchyClamp(raw, bound)
		if raw == 0 && math.Signbit(raw) {
			// The documented divergence: -0.0 normalises to +0.0.
			want = 0
		}
		if math.IsNaN(want) {
			// NaN payload bits are not preserved across min/max; class
			// equality is the contract.
			if !math.IsNaN(got) {
				t.Errorf("clampDraw(NaN, %v) = %v, want NaN", bound, got)
			}
			continue
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("clampDraw(%v, %v) = %v (bits %#x), want %v (bits %#x)",
				raw, bound, got, math.Float64bits(got), want, math.Float64bits(want))
		}
		if gotLo != wantLo || gotHi != wantHi {
			t.Errorf("clampDraw(%v, %v) flags = (%v, %v), want (%v, %v)",
				raw, bound, gotLo, gotHi, wantLo, wantHi)
		}
	}

	// NaN propagates (min/max of a NaN operand is NaN) and raises no flag,
	// matching the branchy form where both comparisons are false.
	if got, lo, hi := clampDraw(math.NaN(), bound); !math.IsNaN(got) || lo || hi {
		t.Errorf("clampDraw(NaN) = %v, %v, %v; want NaN, false, false", got, lo, hi)
	}
}
