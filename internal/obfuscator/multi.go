package obfuscator

import (
	"fmt"

	"github.com/repro/aegis/internal/faultinject"
	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/isa"
	"github.com/repro/aegis/internal/sev"
	"github.com/repro/aegis/internal/telemetry"
	"github.com/repro/aegis/internal/telemetry/flight"
)

// Multi-event deployment metrics, kept separate from the single-event
// obfuscator so summaries attribute injection volume per deployment style.
var (
	mMultiTicks          = telemetry.C("obfuscator_multi_ticks_total")
	mMultiInjectedReps   = telemetry.C("obfuscator_multi_injected_reps_total")
	mMultiClipSaturation = telemetry.C("obfuscator_multi_clip_saturations_total")
	mMultiDegradedPlans  = telemetry.C("obfuscator_multi_degraded_plan_ticks_total")
	mMultiRetries        = telemetry.C("obfuscator_multi_retries_total")
	mMultiRearms         = telemetry.C("obfuscator_multi_counter_rearms_total")
	mMultiInjectedInstr  = telemetry.C("obfuscator_multi_injected_instructions_total")
)

// multiMaxRetries bounds per-plan, per-tick recovery attempts; the
// multi-event deployer uses a fixed policy rather than the single-event
// obfuscator's configurable one.
const multiMaxRetries = 3

// Plan protects one critical HPC event with its own mechanism and gadget
// segment.
type Plan struct {
	Mechanism Mechanism
	Segment   []isa.Variant
	Event     *hpc.Event
	ClipBound float64
}

// MultiObfuscator reinforces protection for multiple critical HPC events
// simultaneously, the deployment style the paper recommends the d*
// mechanism for (§VII-B: "d* mechanism is better suited for reinforcing
// protection for multiple critical HPC events"). Each plan runs its own
// noise recursion and injects its own gadget segment; the plans share the
// vCPU tick budget round-robin.
type MultiObfuscator struct {
	plans []planState

	faults *faultinject.Injector

	injectedReps      int64
	ticks             int64
	degradedPlanTicks int64
	retries           int64
	counterRearms     int64
}

type planState struct {
	plan    Plan
	kmod    kernelModule
	perExec float64
	faults  *faultinject.Handle
	// injectedCounts per plan, in its event's units.
	injectedCounts float64
}

var _ sev.Process = (*MultiObfuscator)(nil)

// NewMulti builds a multi-event obfuscator. Every plan needs a mechanism,
// a non-empty segment and an event; clip bounds default to 20000.
func NewMulti(plans []Plan) (*MultiObfuscator, error) {
	if len(plans) == 0 {
		return nil, fmt.Errorf("obfuscator: no plans")
	}
	m := &MultiObfuscator{}
	for i, p := range plans {
		if p.Mechanism == nil {
			return nil, fmt.Errorf("plan %d: %w", i, ErrNoMechanism)
		}
		if len(p.Segment) == 0 {
			return nil, fmt.Errorf("plan %d: %w", i, ErrNoSegment)
		}
		if p.Event == nil {
			return nil, fmt.Errorf("plan %d: %w", i, ErrNoRefEvent)
		}
		if p.ClipBound <= 0 {
			p.ClipBound = 20000
		}
		per, err := calibrateSegment(p.Segment, p.Event)
		if err != nil {
			return nil, fmt.Errorf("plan %d: %w", i, err)
		}
		m.plans = append(m.plans, planState{plan: p, perExec: per})
	}
	return m, nil
}

// SetFaults wires a fault injector into every plan's kernel-module PMU.
// Handles are labelled by plan index so the schedules are stable however
// many plans share the deployment. Must be called before the first Step.
func (m *MultiObfuscator) SetFaults(in *faultinject.Injector) {
	m.faults = in
	for i := range m.plans {
		if in == nil {
			m.plans[i].faults = nil
			continue
		}
		m.plans[i].faults = in.Handle("obfuscator-multi", fmt.Sprintf("plan%d", i))
	}
}

// Name implements sev.Process.
func (m *MultiObfuscator) Name() string { return "aegis-obfuscator-multi" }

// InjectedReps returns the total segment executions across plans.
func (m *MultiObfuscator) InjectedReps() int64 { return m.injectedReps }

// InjectedCounts returns the injected counts of plan i in its own event's
// units.
func (m *MultiObfuscator) InjectedCounts(i int) (float64, error) {
	if i < 0 || i >= len(m.plans) {
		return 0, fmt.Errorf("obfuscator: plan %d out of range", i)
	}
	return m.plans[i].injectedCounts, nil
}

// Plans returns the number of protected events.
func (m *MultiObfuscator) Plans() int { return len(m.plans) }

// DegradedPlanTicks returns how many (plan, tick) pairs were skipped or
// cut short by substrate faults.
func (m *MultiObfuscator) DegradedPlanTicks() int64 { return m.degradedPlanTicks }

// Retries returns the recovery attempts across all plans.
func (m *MultiObfuscator) Retries() int64 { return m.retries }

// CounterRearms returns how many times a plan's latched counter was
// re-programmed.
func (m *MultiObfuscator) CounterRearms() int64 { return m.counterRearms }

// FullProtection reports whether every plan ran every tick without
// degradation.
func (m *MultiObfuscator) FullProtection() bool { return m.degradedPlanTicks == 0 }

// Step implements sev.Process.
func (m *MultiObfuscator) Step(g *sev.GuestExecutor) {
	m.ticks++
	t := g.Tick()
	tickSpan := telemetry.StartSpan("obfuscator.multi_tick")
	defer tickSpan.End()
	mMultiTicks.Inc()
	for i := range m.plans {
		ps := &m.plans[i]
		if !ps.kmod.attached {
			if err := ps.kmod.attach(g.Core(), ps.plan.Event, ps.faults); err != nil {
				m.degradePlan(t)
				continue
			}
		}
		var x float64
		if ps.plan.Mechanism.NeedsObservation() {
			v, err := ps.kmod.readAndReset()
			for attempt := 0; err != nil && attempt < multiMaxRetries; attempt++ {
				m.retries++
				mMultiRetries.Inc()
				v, err = ps.kmod.readAndReset()
			}
			if err != nil {
				m.degradePlan(t)
				continue
			}
			if ps.kmod.saturated() {
				// Latched at the overflow cap: re-arm and treat the
				// observation as lost rather than feeding the cap in.
				if rerr := ps.kmod.rearm(ps.plan.Event); rerr != nil {
					m.degradePlan(t)
					continue
				}
				m.counterRearms++
				mMultiRearms.Inc()
				v = 0
			}
			x = v
		}
		noise := drawNoise(ps.plan.Mechanism, t, x)
		if v, ok := ps.faults.DrawExtreme(); ok {
			noise = v
		}
		if noise < 0 {
			noise = 0
		}
		if noise > ps.plan.ClipBound {
			noise = ps.plan.ClipBound
			mMultiClipSaturation.Inc()
		}
		reps := int(noise/ps.perExec + 0.5)
		injected := 0
		retries := 0
		planned := reps
		for r := 0; r < planned; {
			n, err := g.ExecuteSeq(ps.plan.Segment)
			if err != nil {
				m.degradePlan(t)
				break
			}
			if n == len(ps.plan.Segment) {
				injected++
				r++
				continue
			}
			if g.Remaining() == 0 {
				// Shared budget exhausted: later plans see it immediately.
				if n > 0 {
					injected++
				}
				break
			}
			// Fault-interrupted mid-gadget: retry with the same halving
			// backoff as the single-event obfuscator.
			if retries < multiMaxRetries {
				retries++
				m.retries++
				mMultiRetries.Inc()
				remaining := planned - r
				planned = r + (remaining+1)/2
				continue
			}
			m.degradePlan(t)
			break
		}
		applied := float64(injected) * ps.perExec
		ps.injectedCounts += applied
		m.injectedReps += int64(injected)
		mMultiInjectedReps.Add(float64(injected))
		mMultiInjectedInstr.Add(float64(injected * len(ps.plan.Segment)))
		if d, ok := ps.plan.Mechanism.(*DStarMechanism); ok {
			d.Commit(t, applied)
		}
		if g.Remaining() == 0 {
			return
		}
	}
}

func (m *MultiObfuscator) degradePlan(t int64) {
	m.degradedPlanTicks++
	mMultiDegradedPlans.Inc()
	// Plan degradations share one journal code: the multi deployer does
	// not split by reason, and the record's payload disambiguates enough
	// for incident triage (see ProtectionReport on the single deployer).
	fTick.Incident(t, flight.CodeDegradedPlan, flight.CodeNone, 0, 0, 0)
}

// SecretDependentMechanism wraps a base mechanism with a constant,
// secret-derived offset. Paper §IX-B: an attacker who collects many traces
// of the same secret could average the DP noise away; attaching a constant
// secret-dependent noise term defeats that, because the residual after
// averaging still depends on a value the attacker does not know.
type SecretDependentMechanism struct {
	Base Mechanism
	// Offset is the constant per-tick addend, derived inside the VM from
	// the secret (the hypervisor never sees it).
	Offset float64
}

// NewSecretDependentMechanism derives the constant offset from a secret
// key (e.g. a hash of the secret value) scaled into [0, amplitude].
func NewSecretDependentMechanism(base Mechanism, secretKey uint64, amplitude float64) (*SecretDependentMechanism, error) {
	if base == nil {
		return nil, ErrNoMechanism
	}
	if amplitude <= 0 {
		return nil, fmt.Errorf("%w: %v", ErrBadBound, amplitude)
	}
	frac := float64(secretKey%4096) / 4096
	return &SecretDependentMechanism{Base: base, Offset: frac * amplitude}, nil
}

// Name implements Mechanism.
func (m *SecretDependentMechanism) Name() string {
	return m.Base.Name() + "+secret-offset"
}

// NeedsObservation implements Mechanism.
func (m *SecretDependentMechanism) NeedsObservation() bool {
	return m.Base.NeedsObservation()
}

// Noise implements Mechanism.
func (m *SecretDependentMechanism) Noise(t int64, x float64) float64 {
	return m.Offset + m.Base.Noise(t, x)
}
