package workload

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/repro/aegis/internal/isa"
	"github.com/repro/aegis/internal/rng"
)

// Crypto workload: a square-and-multiply modular exponentiation whose
// per-bit instruction pattern depends on the secret exponent, the classic
// key-leaking structure of RSA implementations. The paper lists "stealing
// cryptographic keys" as future work (§X); this workload extends the
// framework to that attack class: each key bit produces a squaring burst,
// and 1-bits add a multiply burst, so the HPC time series leaks the key
// pattern — exactly what Bhattacharya & Mukhopadhyay exploited with HPCs
// (paper reference [20]).

// KeyBits is the exponent width of the crypto workload.
const KeyBits = 12

// CryptoKeys returns n distinct exponent secrets as bit strings, drawn
// deterministically so the secret set is stable across runs.
func CryptoKeys(n int) []string {
	if n < 1 {
		n = 1
	}
	if n > 1<<KeyBits {
		n = 1 << KeyBits
	}
	r := rng.New(rng.HashString("crypto-keys")).Split("keys")
	seen := make(map[uint64]bool, n)
	out := make([]string, 0, n)
	for len(out) < n {
		k := r.Uint64() % (1 << KeyBits)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, keyLabel(k))
	}
	return out
}

func keyLabel(k uint64) string {
	return fmt.Sprintf("key-%0*b", KeyBits, k)
}

// parseKeyLabel recovers the exponent bits from a secret label.
func parseKeyLabel(label string) (uint64, error) {
	if !strings.HasPrefix(label, "key-") {
		return 0, fmt.Errorf("workload: bad key label %q", label)
	}
	v, err := strconv.ParseUint(label[4:], 2, KeyBits+1)
	if err != nil {
		return 0, fmt.Errorf("workload: bad key label %q: %w", label, err)
	}
	return v, nil
}

// CryptoJob builds one modular-exponentiation execution for the exponent
// encoded in label. Per key bit (MSB first): a squaring phase (multiply
// heavy); for 1-bits an additional multiply phase with extra memory
// traffic (the multiplication by the base re-reads the operand tables).
func CryptoJob(label string, r *rng.Source) (Job, error) {
	key, err := parseKeyLabel(label)
	if err != nil {
		return Job{}, err
	}
	jitter := func(n int) int {
		v := int(float64(n) * (1 + r.Gaussian(0, 0.06)))
		if v < 50 {
			v = 50
		}
		return v
	}
	squareMix := Mix{
		isa.ClassMul:  4,
		isa.ClassALU:  2,
		isa.ClassLoad: 1.5,
		isa.ClassBit:  1,
	}
	multiplyMix := Mix{
		isa.ClassMul:   4,
		isa.ClassLoad:  3, // operand table reads
		isa.ClassStore: 1.5,
		isa.ClassALU:   1,
	}
	reduceMix := Mix{
		isa.ClassDiv:    1.5, // modular reduction
		isa.ClassALU:    2,
		isa.ClassBranch: 1,
	}

	job := Job{Label: label}
	for bit := KeyBits - 1; bit >= 0; bit-- {
		job.Phases = append(job.Phases, Phase{
			Name:         "square",
			Mix:          squareMix,
			Instructions: jitter(700),
			Intensity:    700,
			WorkingSet:   8 << 10,
		})
		if key&(1<<uint(bit)) != 0 {
			job.Phases = append(job.Phases, Phase{
				Name:         "multiply",
				Mix:          multiplyMix,
				Instructions: jitter(650),
				Intensity:    700,
				WorkingSet:   32 << 10,
			})
		}
		job.Phases = append(job.Phases, Phase{
			Name:         "reduce",
			Mix:          reduceMix,
			Instructions: jitter(250),
			Intensity:    700,
			WorkingSet:   8 << 10,
		})
	}
	return job, nil
}

// CryptoApp is the cryptographic application whose secrets are exponent
// keys.
type CryptoApp struct {
	// Keys overrides the secret set; nil draws NumKeys defaults.
	Keys []string
	// NumKeys sizes the default secret set (0 means 16).
	NumKeys int
}

var _ App = (*CryptoApp)(nil)

// Name implements App.
func (a *CryptoApp) Name() string { return "crypto" }

// Secrets implements App.
func (a *CryptoApp) Secrets() []string {
	if a.Keys != nil {
		return append([]string(nil), a.Keys...)
	}
	n := a.NumKeys
	if n <= 0 {
		n = 16
	}
	return CryptoKeys(n)
}

// Job implements App.
func (a *CryptoApp) Job(secret string, r *rng.Source) (Job, error) {
	for _, s := range a.Secrets() {
		if s == secret {
			return CryptoJob(secret, r)
		}
	}
	return Job{}, fmt.Errorf("workload: unknown key %q", secret)
}

// HammingWeight returns the number of 1-bits of a key secret, the
// first-order quantity the side channel leaks (total multiply time scales
// with it).
func HammingWeight(label string) (int, error) {
	k, err := parseKeyLabel(label)
	if err != nil {
		return 0, err
	}
	w := 0
	for k != 0 {
		w += int(k & 1)
		k >>= 1
	}
	return w, nil
}
