package workload

import (
	"fmt"
	"strconv"

	"github.com/repro/aegis/internal/rng"
)

// App is a protected application with a finite set of customer-specified
// secrets. The Application Profiler runs the app once per secret to
// profile HPC leakage (paper §V); the attacks build labelled datasets from
// the same interface.
type App interface {
	// Name identifies the application.
	Name() string
	// Secrets lists the secret values the application may execute.
	Secrets() []string
	// Job builds one execution of the application under the given secret;
	// r supplies the run-to-run variation.
	Job(secret string, r *rng.Source) (Job, error)
}

// WebsiteApp is the browser workload of the website fingerprinting attack:
// secrets are the 45 target sites.
type WebsiteApp struct {
	// Sites overrides the secret set; nil uses the full 45-site list.
	Sites []string
}

var _ App = (*WebsiteApp)(nil)

// Name implements App.
func (a *WebsiteApp) Name() string { return "website" }

// Secrets implements App.
func (a *WebsiteApp) Secrets() []string {
	if a.Sites != nil {
		return append([]string(nil), a.Sites...)
	}
	return Websites()
}

// Job implements App.
func (a *WebsiteApp) Job(secret string, r *rng.Source) (Job, error) {
	for _, s := range a.Secrets() {
		if s == secret {
			return WebsiteJob(secret, r), nil
		}
	}
	return Job{}, fmt.Errorf("workload: unknown website %q", secret)
}

// KeystrokeApp is the terminal workload of the keystroke sniffing attack:
// secrets are the keystroke counts 0..9 in the observation window.
type KeystrokeApp struct {
	// WindowTicks is the observation window; 0 uses the default.
	WindowTicks int
	// MaxKeys bounds the key-count alphabet (exclusive); 0 means 10.
	MaxKeys int
}

var _ App = (*KeystrokeApp)(nil)

// Name implements App.
func (a *KeystrokeApp) Name() string { return "keystroke" }

func (a *KeystrokeApp) maxKeys() int {
	if a.MaxKeys <= 0 || a.MaxKeys > 10 {
		return 10
	}
	return a.MaxKeys
}

// Secrets implements App.
func (a *KeystrokeApp) Secrets() []string {
	out := make([]string, a.maxKeys())
	for k := range out {
		out[k] = KeystrokeLabel(k)
	}
	return out
}

// Job implements App.
func (a *KeystrokeApp) Job(secret string, r *rng.Source) (Job, error) {
	if len(secret) != 6 || secret[:5] != "keys-" {
		return Job{}, fmt.Errorf("workload: unknown keystroke secret %q", secret)
	}
	k, err := strconv.Atoi(secret[5:])
	if err != nil || k < 0 || k >= a.maxKeys() {
		return Job{}, fmt.Errorf("workload: unknown keystroke secret %q", secret)
	}
	return KeystrokeJob(k, a.WindowTicks, r), nil
}

// DNNApp is the inference workload of the model extraction attack: secrets
// are the 30 zoo model names.
type DNNApp struct {
	// Models overrides the zoo; nil uses the full 30-model zoo.
	Models []ModelArch

	zoo map[string]ModelArch
}

var _ App = (*DNNApp)(nil)

// Name implements App.
func (a *DNNApp) Name() string { return "dnn" }

func (a *DNNApp) models() []ModelArch {
	if a.Models != nil {
		return a.Models
	}
	return ModelZoo()
}

// Secrets implements App.
func (a *DNNApp) Secrets() []string {
	ms := a.models()
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Name
	}
	return out
}

// Arch resolves a model by secret name.
func (a *DNNApp) Arch(secret string) (ModelArch, error) {
	if a.zoo == nil {
		a.zoo = make(map[string]ModelArch)
		for _, m := range a.models() {
			a.zoo[m.Name] = m
		}
	}
	m, ok := a.zoo[secret]
	if !ok {
		return ModelArch{}, fmt.Errorf("workload: unknown model %q", secret)
	}
	return m, nil
}

// Job implements App.
func (a *DNNApp) Job(secret string, r *rng.Source) (Job, error) {
	m, err := a.Arch(secret)
	if err != nil {
		return Job{}, err
	}
	return InferenceJob(m, r), nil
}
