package workload

import (
	"strings"
	"testing"

	"github.com/repro/aegis/internal/rng"
)

func TestCryptoKeysDistinct(t *testing.T) {
	keys := CryptoKeys(16)
	if len(keys) != 16 {
		t.Fatalf("keys = %d", len(keys))
	}
	seen := map[string]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("duplicate key %q", k)
		}
		seen[k] = true
		if !strings.HasPrefix(k, "key-") || len(k) != 4+KeyBits {
			t.Fatalf("malformed key label %q", k)
		}
	}
	// Deterministic across calls.
	again := CryptoKeys(16)
	for i := range keys {
		if keys[i] != again[i] {
			t.Fatal("key set not deterministic")
		}
	}
}

func TestCryptoKeysBounds(t *testing.T) {
	if got := len(CryptoKeys(0)); got != 1 {
		t.Errorf("CryptoKeys(0) = %d keys", got)
	}
	if got := len(CryptoKeys(1 << 20)); got != 1<<KeyBits {
		t.Errorf("oversized request returned %d keys", got)
	}
}

func TestCryptoJobStructure(t *testing.T) {
	r := rng.New(1)
	allOnes := keyLabel(1<<KeyBits - 1)
	allZeros := keyLabel(0)
	j1, err := CryptoJob(allOnes, r.Split("a"))
	if err != nil {
		t.Fatal(err)
	}
	j0, err := CryptoJob(allZeros, r.Split("b"))
	if err != nil {
		t.Fatal(err)
	}
	// All-ones key: square+multiply+reduce per bit; all-zeros: no multiply.
	if len(j1.Phases) != 3*KeyBits {
		t.Errorf("all-ones phases = %d, want %d", len(j1.Phases), 3*KeyBits)
	}
	if len(j0.Phases) != 2*KeyBits {
		t.Errorf("all-zeros phases = %d, want %d", len(j0.Phases), 2*KeyBits)
	}
	// The multiply phases make the 1-heavy key's job longer — the leak.
	if j1.TotalInstructions() <= j0.TotalInstructions() {
		t.Error("all-ones key not more expensive than all-zeros key")
	}
}

func TestCryptoJobBadLabel(t *testing.T) {
	if _, err := CryptoJob("nonsense", rng.New(1)); err == nil {
		t.Error("bad label accepted")
	}
	if _, err := CryptoJob("key-xyz", rng.New(1)); err == nil {
		t.Error("non-binary label accepted")
	}
}

func TestCryptoAppInterface(t *testing.T) {
	app := &CryptoApp{NumKeys: 8}
	secrets := app.Secrets()
	if len(secrets) != 8 {
		t.Fatalf("secrets = %d", len(secrets))
	}
	job, err := app.Job(secrets[0], rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if job.Label != secrets[0] {
		t.Errorf("label = %q", job.Label)
	}
	if _, err := app.Job("key-000000000000", rng.New(2)); err == nil {
		// Only an error if not in the secret set.
		found := false
		for _, s := range secrets {
			if s == "key-000000000000" {
				found = true
			}
		}
		if !found {
			t.Error("out-of-set key accepted")
		}
	}
}

func TestHammingWeight(t *testing.T) {
	w, err := HammingWeight(keyLabel(0b101000000011))
	if err != nil {
		t.Fatal(err)
	}
	if w != 4 {
		t.Errorf("weight = %d, want 4", w)
	}
	if _, err := HammingWeight("garbage"); err == nil {
		t.Error("bad label accepted")
	}
}
