package workload

import (
	"testing"
	"testing/quick"

	"github.com/repro/aegis/internal/isa"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/sev"
)

func TestLibrarySample(t *testing.T) {
	lib := DefaultLibrary(1)
	r := rng.New(2)
	for _, class := range []isa.Class{isa.ClassALU, isa.ClassLoad, isa.ClassStore,
		isa.ClassSSE, isa.ClassFlush, isa.ClassPrefetch, isa.ClassSerial} {
		v := lib.Sample(class, r)
		if v.Class != class {
			t.Errorf("Sample(%v) returned class %v", class, v.Class)
		}
	}
}

func TestLibraryFallback(t *testing.T) {
	lib := NewLibrary([]isa.Variant{{Mnemonic: "ADD", Class: isa.ClassALU, Uops: 1}})
	r := rng.New(3)
	v := lib.Sample(isa.ClassAVX, r)
	if v.Class != isa.ClassALU {
		t.Errorf("missing class fell back to %v, want ALU", v.Class)
	}
	empty := NewLibrary(nil)
	if v := empty.Sample(isa.ClassAVX, r); v.Class != isa.ClassNop {
		t.Errorf("empty library returned %v, want NOP", v.Class)
	}
}

func TestMixSampleProportions(t *testing.T) {
	m := Mix{isa.ClassALU: 3, isa.ClassLoad: 1}
	r := rng.New(4)
	counts := map[isa.Class]int{}
	const n = 40000
	for i := 0; i < n; i++ {
		counts[m.Sample(r)]++
	}
	aluFrac := float64(counts[isa.ClassALU]) / n
	if aluFrac < 0.72 || aluFrac > 0.78 {
		t.Errorf("ALU fraction = %v, want ~0.75", aluFrac)
	}
}

func TestMixSampleEmpty(t *testing.T) {
	if c := (Mix{}).Sample(rng.New(1)); c != isa.ClassNop {
		t.Errorf("empty mix sampled %v", c)
	}
	if c := (Mix{isa.ClassALU: -1}).Sample(rng.New(1)); c != isa.ClassNop {
		t.Errorf("all-negative mix sampled %v", c)
	}
}

func TestWebsites(t *testing.T) {
	sites := Websites()
	if len(sites) != 45 {
		t.Fatalf("site count = %d, want 45", len(sites))
	}
	seen := map[string]bool{}
	for _, s := range sites {
		if seen[s] {
			t.Fatalf("duplicate site %q", s)
		}
		seen[s] = true
	}
}

func TestWebsiteJobStructure(t *testing.T) {
	job := WebsiteJob("facebook.com", rng.New(1))
	if job.Label != "facebook.com" {
		t.Errorf("label = %q", job.Label)
	}
	if len(job.Phases) != 4 {
		t.Fatalf("phases = %d, want 4 (network/dom/js/render)", len(job.Phases))
	}
	if job.TotalInstructions() < 10000 {
		t.Errorf("total instructions = %d, too small", job.TotalInstructions())
	}
}

func TestWebsiteProfilesDiffer(t *testing.T) {
	a := WebsiteJob("google.com", rng.New(1))
	b := WebsiteJob("youtube.com", rng.New(1))
	if a.TotalInstructions() == b.TotalInstructions() {
		t.Error("two sites produced identical instruction totals")
	}
}

func TestWebsiteLoadVariation(t *testing.T) {
	// Repeated loads of the same site vary but stay near the profile.
	base := WebsiteJob("github.com", rng.New(1)).TotalInstructions()
	varied := 0
	for i := uint64(2); i < 12; i++ {
		ti := WebsiteJob("github.com", rng.New(i)).TotalInstructions()
		if ti != base {
			varied++
		}
		ratio := float64(ti) / float64(base)
		if ratio < 0.6 || ratio > 1.6 {
			t.Errorf("load %d total = %d, base %d: excessive variation", i, ti, base)
		}
	}
	if varied == 0 {
		t.Error("no variation across repeated loads")
	}
}

func TestKeystrokeJobBurstCount(t *testing.T) {
	for k := 0; k <= 9; k++ {
		job := KeystrokeJob(k, 300, rng.New(uint64(k)+1))
		bursts := 0
		for _, p := range job.Phases {
			if p.Name == "keystroke" {
				bursts++
			}
		}
		if bursts != k {
			t.Errorf("k=%d produced %d bursts", k, bursts)
		}
		if job.Label != KeystrokeLabel(k) {
			t.Errorf("label = %q", job.Label)
		}
	}
}

func TestKeystrokeJobNegativeAndDefaults(t *testing.T) {
	job := KeystrokeJob(-3, 0, rng.New(1))
	for _, p := range job.Phases {
		if p.Name == "keystroke" {
			t.Error("negative k produced keystroke bursts")
		}
	}
}

func TestModelZoo(t *testing.T) {
	zoo := ModelZoo()
	if len(zoo) != 30 {
		t.Fatalf("zoo size = %d, want 30", len(zoo))
	}
	seen := map[string]bool{}
	for _, m := range zoo {
		if seen[m.Name] {
			t.Fatalf("duplicate model %q", m.Name)
		}
		seen[m.Name] = true
		if len(m.Layers) < 5 {
			t.Errorf("%s has only %d layers", m.Name, len(m.Layers))
		}
		if m.Layers[len(m.Layers)-1].Type != LayerSoftmax {
			t.Errorf("%s does not end in softmax", m.Name)
		}
	}
}

func TestModelSequencesDistinct(t *testing.T) {
	zoo := ModelZoo()
	seen := map[string]string{}
	for _, m := range zoo {
		seq := m.SequenceString()
		if prev, dup := seen[seq]; dup {
			t.Errorf("models %s and %s share a layer sequence", prev, m.Name)
		}
		seen[seq] = m.Name
	}
}

func TestInferenceJobPhasesMatchLayers(t *testing.T) {
	zoo := ModelZoo()
	m := zoo[0]
	job := InferenceJob(m, rng.New(5))
	if len(job.Phases) != len(m.Layers) {
		t.Fatalf("phases = %d, layers = %d", len(job.Phases), len(m.Layers))
	}
	if job.Label != m.Name {
		t.Errorf("label = %q", job.Label)
	}
}

func TestLayerTypeString(t *testing.T) {
	if LayerConv.String() != "conv" || LayerSoftmax.String() != "softmax" {
		t.Error("layer names wrong")
	}
	if LayerType(99).String() == "" {
		t.Error("unknown layer type empty string")
	}
}

func TestRunnerExecutesJobToCompletion(t *testing.T) {
	w := sev.NewWorld(sev.DefaultConfig(20))
	vm, err := w.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	lib := DefaultLibrary(1)
	runner := NewRunner("browser", lib, rng.New(21).Split("runner"))
	if err := vm.AddProcess(0, runner); err != nil {
		t.Fatal(err)
	}
	runner.Enqueue(WebsiteJob("google.com", rng.New(22)))
	for i := 0; i < 2000 && runner.Pending() > 0; i++ {
		w.Step()
	}
	if runner.Pending() != 0 {
		t.Fatal("job did not complete within 2000 ticks")
	}
	timings := runner.Timings()
	if len(timings) != 1 {
		t.Fatalf("timings = %d, want 1", len(timings))
	}
	if timings[0].Duration() < 5 {
		t.Errorf("job duration = %d ticks, implausibly fast", timings[0].Duration())
	}
	if timings[0].Label != "google.com" {
		t.Errorf("timing label = %q", timings[0].Label)
	}
}

func TestRunnerIdleActivity(t *testing.T) {
	w := sev.NewWorld(sev.DefaultConfig(23))
	vm, err := w.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	lib := DefaultLibrary(1)
	runner := NewRunner("idle-browser", lib, rng.New(24).Split("runner"))
	if err := vm.AddProcess(0, runner); err != nil {
		t.Fatal(err)
	}
	w.Run(10)
	usage, err := vm.CPUUsage(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if usage <= 0 {
		t.Error("idle runner produced zero activity")
	}
	if usage > 0.1 {
		t.Errorf("idle usage = %v, want small", usage)
	}
}

func TestRunnerSequentialJobs(t *testing.T) {
	w := sev.NewWorld(sev.DefaultConfig(25))
	vm, err := w.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		t.Fatal(err)
	}
	lib := DefaultLibrary(1)
	runner := NewRunner("browser", lib, rng.New(26).Split("runner"))
	if err := vm.AddProcess(0, runner); err != nil {
		t.Fatal(err)
	}
	r := rng.New(27)
	runner.Enqueue(KeystrokeJob(3, 50, r.Split("a")))
	runner.Enqueue(KeystrokeJob(5, 50, r.Split("b")))
	for i := 0; i < 5000 && runner.Pending() > 0; i++ {
		w.Step()
	}
	timings := runner.Timings()
	if len(timings) != 2 {
		t.Fatalf("completed %d jobs, want 2", len(timings))
	}
	if timings[0].EndTick > timings[1].StartTick {
		t.Error("jobs overlapped")
	}
}

func TestMixSampleAlwaysReturnsWeightedClass(t *testing.T) {
	// Property: every sampled class has positive weight in the mix.
	if err := quick.Check(func(seed uint64, w1, w2, w3 uint8) bool {
		m := Mix{
			isa.ClassALU:  float64(w1),
			isa.ClassLoad: float64(w2),
			isa.ClassSSE:  float64(w3),
		}
		var positive []isa.Class
		for c, w := range m {
			if w > 0 {
				positive = append(positive, c)
			}
		}
		r := rng.New(seed)
		for i := 0; i < 50; i++ {
			c := m.Sample(r)
			if len(positive) == 0 {
				return c == isa.ClassNop
			}
			ok := false
			for _, p := range positive {
				if c == p {
					ok = true
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestJobTotalsNonNegative(t *testing.T) {
	// Property: every generated job has positive phase budgets.
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		sites := Websites()
		job := WebsiteJob(sites[int(seed%uint64(len(sites)))], r)
		for _, p := range job.Phases {
			if p.Instructions <= 0 || p.Intensity <= 0 {
				return false
			}
		}
		return job.TotalInstructions() > 0
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestKeystrokeJobCoversWindow(t *testing.T) {
	// Property: idle+burst phases account for the whole window's idle
	// pacing (no negative gaps regardless of burst placement).
	if err := quick.Check(func(seed uint64, k uint8) bool {
		job := KeystrokeJob(int(k%10), 200, rng.New(seed))
		for _, p := range job.Phases {
			if p.Instructions < 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
