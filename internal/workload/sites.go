package workload

import (
	"github.com/repro/aegis/internal/isa"
	"github.com/repro/aegis/internal/rng"
)

// Websites returns the 45 attack-target sites (Alexa top-50 minus 5
// blocked, as in paper §III-C).
func Websites() []string {
	return []string{
		"google.com", "youtube.com", "facebook.com", "twitter.com",
		"instagram.com", "wikipedia.org", "yahoo.com", "whatsapp.com",
		"amazon.com", "live.com", "netflix.com", "reddit.com",
		"office.com", "linkedin.com", "zoom.us", "discord.com",
		"twitch.tv", "bing.com", "microsoft.com", "ebay.com",
		"apple.com", "stackoverflow.com", "github.com", "paypal.com",
		"adobe.com", "dropbox.com", "spotify.com", "cnn.com",
		"bbc.com", "nytimes.com", "espn.com", "imdb.com",
		"etsy.com", "walmart.com", "target.com", "booking.com",
		"airbnb.com", "salesforce.com", "slack.com", "pinterest.com",
		"quora.com", "medium.com", "shopify.com", "wordpress.com",
		"tumblr.com",
	}
}

// siteProfile is the stable signature of a website, derived
// deterministically from its name. Two different sites differ in phase
// structure, instruction mixes and working sets, which is what makes them
// fingerprintable through HPCs.
type siteProfile struct {
	networkLen int // parse/network phase instructions
	domLen     int
	jsLen      int
	renderLen  int
	jsBranchy  float64 // branch weight of the JS phase
	renderVec  float64 // vector weight of the render phase
	domWS      uint64
	renderWS   uint64
	cryptoTLS  float64 // TLS handshake crypto weight
	intensity  int
}

func profileFor(site string) siteProfile {
	r := rng.New(rng.HashString(site)).Split("site-profile")
	return siteProfile{
		networkLen: 4000 + r.Intn(9000),
		domLen:     6000 + r.Intn(20000),
		jsLen:      5000 + r.Intn(40000),
		renderLen:  8000 + r.Intn(25000),
		jsBranchy:  1 + r.Float64()*5,
		renderVec:  1 + r.Float64()*6,
		domWS:      uint64(32<<10) << uint(r.Intn(4)), // 32K..256K
		renderWS:   uint64(256<<10) << uint(r.Intn(4)),
		cryptoTLS:  0.5 + r.Float64()*2,
		intensity:  500 + r.Intn(900),
	}
}

// WebsiteJob builds one page-load job for site. The per-load source r adds
// the natural variation between repeated loads of the same page (network
// timing, ads, cache state); pass a fresh stream per load.
func WebsiteJob(site string, r *rng.Source) Job {
	p := profileFor(site)
	jitter := func(n int) int {
		v := int(float64(n) * (1 + r.Gaussian(0, 0.08)))
		if v < 100 {
			v = 100
		}
		return v
	}
	return Job{
		Label: site,
		Phases: []Phase{
			{
				Name: "network-tls",
				Mix: Mix{
					isa.ClassALU:    3,
					isa.ClassLoad:   2,
					isa.ClassStore:  1,
					isa.ClassString: 2,
					isa.ClassCrypto: p.cryptoTLS,
					isa.ClassBranch: 1.5,
				},
				Instructions: jitter(p.networkLen),
				Intensity:    p.intensity,
				WorkingSet:   16 << 10,
			},
			{
				Name: "dom-build",
				Mix: Mix{
					isa.ClassALU:    2,
					isa.ClassLoad:   3,
					isa.ClassStore:  3,
					isa.ClassBranch: 1.5,
					isa.ClassBit:    0.5,
				},
				Instructions: jitter(p.domLen),
				Intensity:    p.intensity,
				WorkingSet:   p.domWS,
			},
			{
				Name: "js-exec",
				Mix: Mix{
					isa.ClassALU:    4,
					isa.ClassLoad:   2.5,
					isa.ClassStore:  1.5,
					isa.ClassBranch: p.jsBranchy,
					isa.ClassMul:    0.8,
					isa.ClassDiv:    0.2,
				},
				Instructions: jitter(p.jsLen),
				Intensity:    p.intensity,
				WorkingSet:   p.domWS * 2,
			},
			{
				Name: "render",
				Mix: Mix{
					isa.ClassSSE:   p.renderVec,
					isa.ClassAVX:   p.renderVec / 2,
					isa.ClassLoad:  3,
					isa.ClassStore: 2,
					isa.ClassALU:   1,
				},
				Instructions: jitter(p.renderLen),
				Intensity:    p.intensity,
				WorkingSet:   p.renderWS,
			},
		},
	}
}

// KeystrokeWindowTicks is the keystroke observation window (the paper uses
// 3 seconds; one tick models 1 ms, scaled down 10x like the traces).
const KeystrokeWindowTicks = 300

// KeystrokeJob builds a job with k keystroke bursts placed uniformly at
// random inside the observation window, separated by idle filler. Each
// keystroke triggers the interrupt path, keycode translation and terminal
// redraw of a real keypress.
func KeystrokeJob(k, windowTicks int, r *rng.Source) Job {
	if windowTicks <= 0 {
		windowTicks = KeystrokeWindowTicks
	}
	if k < 0 {
		k = 0
	}
	// Draw and sort burst positions.
	positions := make([]int, k)
	for i := range positions {
		positions[i] = r.Intn(windowTicks)
	}
	for i := 1; i < len(positions); i++ {
		for j := i; j > 0 && positions[j] < positions[j-1]; j-- {
			positions[j], positions[j-1] = positions[j-1], positions[j]
		}
	}

	const idlePerTick = 25 // background cursor blink, event loop
	burstMix := Mix{
		isa.ClassLoad:   2,
		isa.ClassStore:  2,
		isa.ClassALU:    2,
		isa.ClassBranch: 1.5,
		isa.ClassString: 1.5,
		isa.ClassSerial: 0.3, // interrupt entry/exit serialisation
	}
	idleMix := Mix{
		isa.ClassNop:    4,
		isa.ClassALU:    1,
		isa.ClassLoad:   0.5,
		isa.ClassBranch: 0.5,
	}

	job := Job{Label: keystrokeLabel(k)}
	prev := 0
	for _, pos := range positions {
		if gap := pos - prev; gap > 0 {
			job.Phases = append(job.Phases, Phase{
				Name:         "idle",
				Mix:          idleMix,
				Instructions: gap * idlePerTick,
				Intensity:    idlePerTick,
				WorkingSet:   4 << 10,
			})
		}
		job.Phases = append(job.Phases, Phase{
			Name:         "keystroke",
			Mix:          burstMix,
			Instructions: 500 + r.Intn(300),
			Intensity:    400,
			WorkingSet:   8 << 10,
		})
		prev = pos + 1
	}
	if gap := windowTicks - prev; gap > 0 {
		job.Phases = append(job.Phases, Phase{
			Name:         "idle",
			Mix:          idleMix,
			Instructions: gap * idlePerTick,
			Intensity:    idlePerTick,
			WorkingSet:   4 << 10,
		})
	}
	return job
}

func keystrokeLabel(k int) string {
	return "keys-" + string(rune('0'+k%10))
}

// KeystrokeLabel exposes the label format for attack datasets.
func KeystrokeLabel(k int) string { return keystrokeLabel(k) }
