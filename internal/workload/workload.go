// Package workload implements the guest applications of the paper's three
// case studies as generative instruction-mix workloads:
//
//   - website loads in a browser (45 Alexa-top sites) for the website
//     fingerprinting attack,
//   - keystroke bursts (an xdotool analog emitting K keystrokes in a
//     3-second window) for the keystroke sniffing attack,
//   - DNN model inference (a 30-model zoo of layer sequences) for the
//     model extraction attack.
//
// Each secret (site, key count, model architecture) induces a distinct,
// noisy, time-structured sequence of instruction mixes; executed on the
// micro-architecture simulator these produce the HPC leakage signatures
// the attacks learn and Aegis obfuscates.
package workload

import (
	"sort"

	"github.com/repro/aegis/internal/isa"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/sev"
)

// Library indexes the legal instruction variants of a processor by class,
// so workloads can sample concrete instructions for a mix.
type Library struct {
	byClass map[isa.Class][]isa.Variant
}

// NewLibrary builds a library from the post-cleanup legal variant list.
func NewLibrary(legal []isa.Variant) *Library {
	l := &Library{byClass: make(map[isa.Class][]isa.Variant)}
	for _, v := range legal {
		l.byClass[v.Class] = append(l.byClass[v.Class], v)
	}
	return l
}

// DefaultLibrary builds the AMD EPYC library used across the evaluation.
func DefaultLibrary(seed uint64) *Library {
	//aegis:allow(detranddeep) isa spec generation is a pure table builder over (seed); its local addVariant closures are deterministic by construction and review
	res := isa.Cleanup(isa.SpecAMDEpyc(seed), isa.AMDEpycFeatures())
	return NewLibrary(res.Legal)
}

// Sample draws a variant of the given class; it falls back to ALU variants
// for classes absent from the library.
func (l *Library) Sample(class isa.Class, r *rng.Source) isa.Variant {
	pool := l.byClass[class]
	if len(pool) == 0 {
		pool = l.byClass[isa.ClassALU]
		if len(pool) == 0 {
			return isa.Variant{Mnemonic: "NOP", Class: isa.ClassNop, Uops: 1}
		}
	}
	return pool[r.Intn(len(pool))]
}

// Classes returns the classes available in the library (sorted, for tests).
func (l *Library) Classes() []isa.Class {
	out := make([]isa.Class, 0, len(l.byClass))
	for c := range l.byClass {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Mix is a weighted instruction-class distribution.
type Mix map[isa.Class]float64

// Sample draws a class proportional to the weights. Callers drawing in a
// tight loop should compile the mix once instead (see compileMix): this
// convenience form rebuilds the sorted class table on every call.
func (m Mix) Sample(r *rng.Source) isa.Class {
	return compileMix(m).sample(r)
}

// mixSampler is a Mix compiled to a sorted class/weight table, so per-
// instruction draws dispatch on slice index without rebuilding and sorting
// the class list per call. Sampling is draw-for-draw identical to
// Mix.Sample: same RNG consumption, same class for the same draw.
type mixSampler struct {
	classes []isa.Class // all mix classes, ascending (incl. non-positive weights)
	weights []float64
	total   float64 // sum of positive weights
}

// compileMix builds the sampler for a mix. The original map is not
// retained; mutating a Mix after compiling requires recompiling.
func compileMix(m Mix) *mixSampler {
	s := &mixSampler{
		classes: make([]isa.Class, 0, len(m)),
		weights: make([]float64, 0, len(m)),
	}
	for c := range m {
		s.classes = append(s.classes, c)
	}
	sort.Slice(s.classes, func(i, j int) bool { return s.classes[i] < s.classes[j] })
	for _, c := range s.classes {
		w := m[c]
		s.weights = append(s.weights, w)
		if w > 0 {
			s.total += w
		}
	}
	return s
}

func (s *mixSampler) sample(r *rng.Source) isa.Class {
	if s.total == 0 {
		return isa.ClassNop
	}
	x := r.Float64() * s.total
	for i, c := range s.classes {
		w := s.weights[i]
		if w <= 0 {
			continue
		}
		if x < w {
			return c
		}
		x -= w
	}
	return s.classes[len(s.classes)-1]
}

// Phase is one stage of a job: a mix executed at a per-tick intensity until
// its instruction budget is consumed, against a given working set.
type Phase struct {
	Name string
	Mix  Mix
	// Instructions is the total instruction count of the phase.
	Instructions int
	// Intensity is the maximum instructions executed per tick.
	Intensity int
	// WorkingSet is the memory region size the phase's accesses span.
	WorkingSet uint64
}

// Job is a unit of application work (one page load, one inference, one
// keystroke window).
type Job struct {
	Label  string
	Phases []Phase
}

// TotalInstructions sums the phase budgets.
func (j Job) TotalInstructions() int {
	var n int
	for _, p := range j.Phases {
		n += p.Instructions
	}
	return n
}

// JobTiming records when a job ran, in world ticks.
type JobTiming struct {
	Label     string
	StartTick int64
	EndTick   int64
}

// Duration returns the job's tick count.
func (t JobTiming) Duration() int64 { return t.EndTick - t.StartTick }

// Runner executes a queue of jobs as a guest process. Between jobs it emits
// light idle activity (browser event loop, OS housekeeping).
type Runner struct {
	name string
	lib  *Library
	r    *rng.Source

	queue    []Job
	phaseIdx int
	phaseRun int // instructions done in current phase
	started  bool
	startTok int64

	timings []JobTiming
	// IdleIntensity is the per-tick instruction count when no job is
	// queued (0 disables idle activity).
	IdleIntensity int
	idleMix       Mix
	idleSampler   *mixSampler
	// sampler caches the compiled mix of the phase identified by
	// samplerOf, so the per-instruction draw loop does not rebuild the
	// sorted class table every tick. The pointer identity of the phase
	// within the queued job is stable until the job advances.
	sampler   *mixSampler
	samplerOf *Phase
}

var _ sev.Process = (*Runner)(nil)

// NewRunner builds a job runner named name.
func NewRunner(name string, lib *Library, r *rng.Source) *Runner {
	idleMix := Mix{
		isa.ClassALU:    4,
		isa.ClassLoad:   2,
		isa.ClassStore:  1,
		isa.ClassBranch: 2,
		isa.ClassNop:    3,
	}
	return &Runner{
		name:          name,
		lib:           lib,
		r:             r,
		IdleIntensity: 20,
		idleMix:       idleMix,
		idleSampler:   compileMix(idleMix),
	}
}

// Name implements sev.Process.
func (r *Runner) Name() string { return r.name }

// Enqueue appends a job to the runner's queue.
func (r *Runner) Enqueue(job Job) { r.queue = append(r.queue, job) }

// Pending returns the number of jobs not yet finished.
func (r *Runner) Pending() int { return len(r.queue) }

// Timings returns completed job timings.
func (r *Runner) Timings() []JobTiming {
	return append([]JobTiming(nil), r.timings...)
}

// Idle reports whether the runner has no active job.
func (r *Runner) Idle() bool { return len(r.queue) == 0 }

// Step implements sev.Process: run up to one tick of the current job.
func (r *Runner) Step(g *sev.GuestExecutor) {
	if len(r.queue) == 0 {
		r.stepIdle(g)
		return
	}
	job := &r.queue[0]
	if !r.started {
		r.started = true
		r.startTok = g.Tick()
		r.phaseIdx = 0
		r.phaseRun = 0
	}
	// Per-tick intensity jitter: real page loads and inferences never
	// execute a metronome-exact instruction count per millisecond.
	for r.phaseIdx < len(job.Phases) {
		phase := &job.Phases[r.phaseIdx]
		if r.samplerOf != phase {
			r.sampler = compileMix(phase.Mix)
			r.samplerOf = phase
		}
		intensity := phase.Intensity
		if intensity <= 0 {
			intensity = 200
		}
		jittered := int(float64(intensity) * (1 + r.r.Gaussian(0, 0.12)))
		if jittered < 1 {
			jittered = 1
		}
		remainingPhase := phase.Instructions - r.phaseRun
		if jittered > remainingPhase {
			jittered = remainingPhase
		}
		g.Context().WorkingSet = phase.WorkingSet
		executed := 0
		for executed < jittered {
			v := r.lib.Sample(r.sampler.sample(r.r), r.r)
			ok, err := g.Execute(v)
			if err != nil || !ok {
				// Budget exhausted this tick; resume next tick.
				r.phaseRun += executed
				return
			}
			executed++
		}
		r.phaseRun += executed
		if r.phaseRun >= phase.Instructions {
			r.phaseIdx++
			r.phaseRun = 0
			continue
		}
		// Phase has work left but this tick's intensity is spent.
		return
	}
	// Job complete.
	r.timings = append(r.timings, JobTiming{
		Label:     job.Label,
		StartTick: r.startTok,
		EndTick:   g.Tick(),
	})
	r.queue = r.queue[1:]
	r.started = false
}

func (r *Runner) stepIdle(g *sev.GuestExecutor) {
	for i := 0; i < r.IdleIntensity; i++ {
		v := r.lib.Sample(r.idleSampler.sample(r.r), r.r)
		ok, err := g.Execute(v)
		if err != nil || !ok {
			return
		}
	}
}
