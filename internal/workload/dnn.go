package workload

import (
	"fmt"
	"strings"

	"github.com/repro/aegis/internal/isa"
	"github.com/repro/aegis/internal/rng"
)

// LayerType is a DNN layer kind; the model extraction attack predicts the
// layer-type sequence of the victim model.
type LayerType int

// Layer kinds found in the model zoo.
const (
	LayerConv LayerType = iota + 1
	LayerBatchNorm
	LayerReLU
	LayerPool
	LayerFC
	LayerAdd // residual connection
	LayerSoftmax
)

var layerNames = map[LayerType]string{
	LayerConv:      "conv",
	LayerBatchNorm: "bn",
	LayerReLU:      "relu",
	LayerPool:      "pool",
	LayerFC:        "fc",
	LayerAdd:       "add",
	LayerSoftmax:   "softmax",
}

func (l LayerType) String() string {
	if s, ok := layerNames[l]; ok {
		return s
	}
	return fmt.Sprintf("layer(%d)", int(l))
}

// AllLayerTypes lists the layer alphabet for sequence models.
func AllLayerTypes() []LayerType {
	return []LayerType{LayerConv, LayerBatchNorm, LayerReLU, LayerPool,
		LayerFC, LayerAdd, LayerSoftmax}
}

// Layer is one layer instance with a size factor scaling its compute.
type Layer struct {
	Type LayerType
	// Size scales compute: channels×kernel for conv, units for fc.
	Size int
}

// ModelArch is one DNN architecture of the zoo.
type ModelArch struct {
	Name   string
	Layers []Layer
}

// LayerSequence returns the layer-type sequence (the MEA ground truth).
func (m ModelArch) LayerSequence() []LayerType {
	out := make([]LayerType, len(m.Layers))
	for i, l := range m.Layers {
		out[i] = l.Type
	}
	return out
}

// SequenceString renders the layer sequence as "conv-bn-relu-...".
func (m ModelArch) SequenceString() string {
	parts := make([]string, len(m.Layers))
	for i, l := range m.Layers {
		parts[i] = l.Type.String()
	}
	return strings.Join(parts, "-")
}

// ModelZoo returns the 30 victim model architectures: VGG-style plain
// stacks, ResNet-style residual models and MobileNet-style thin models of
// varying depth, standing in for the 30 most-used torchvision models.
func ModelZoo() []ModelArch {
	var zoo []ModelArch

	// VGG-style: [conv-relu]xN + pool blocks, then FC head.
	for i, depth := range []int{2, 3, 4, 5, 6, 7, 8, 9, 11, 13} {
		m := ModelArch{Name: fmt.Sprintf("vggsim-%d", i)}
		size := 64
		for b := 0; b < depth; b++ {
			m.Layers = append(m.Layers,
				Layer{LayerConv, size},
				Layer{LayerReLU, size})
			if b%2 == 1 {
				m.Layers = append(m.Layers, Layer{LayerPool, size})
				if size < 512 {
					size *= 2
				}
			}
		}
		m.Layers = append(m.Layers,
			Layer{LayerFC, 4096}, Layer{LayerReLU, 4096},
			Layer{LayerFC, 1000}, Layer{LayerSoftmax, 1000})
		zoo = append(zoo, m)
	}

	// ResNet-style: conv-bn-relu stem, residual blocks with add.
	for i, blocks := range []int{2, 3, 4, 5, 6, 8, 10, 12, 14, 16} {
		m := ModelArch{Name: fmt.Sprintf("resnetsim-%d", i)}
		m.Layers = append(m.Layers,
			Layer{LayerConv, 64}, Layer{LayerBatchNorm, 64},
			Layer{LayerReLU, 64}, Layer{LayerPool, 64})
		size := 64
		for b := 0; b < blocks; b++ {
			m.Layers = append(m.Layers,
				Layer{LayerConv, size}, Layer{LayerBatchNorm, size},
				Layer{LayerReLU, size},
				Layer{LayerConv, size}, Layer{LayerBatchNorm, size},
				Layer{LayerAdd, size}, Layer{LayerReLU, size})
			if b%3 == 2 && size < 512 {
				size *= 2
			}
		}
		m.Layers = append(m.Layers,
			Layer{LayerPool, size}, Layer{LayerFC, 1000}, Layer{LayerSoftmax, 1000})
		zoo = append(zoo, m)
	}

	// MobileNet-style: thin conv-bn-relu triples, no pooling between.
	for i, depth := range []int{4, 6, 8, 10, 12, 14, 16, 18, 20, 22} {
		m := ModelArch{Name: fmt.Sprintf("mobilesim-%d", i)}
		m.Layers = append(m.Layers, Layer{LayerConv, 32}, Layer{LayerBatchNorm, 32}, Layer{LayerReLU, 32})
		size := 32
		for b := 0; b < depth; b++ {
			m.Layers = append(m.Layers,
				Layer{LayerConv, size}, Layer{LayerBatchNorm, size},
				Layer{LayerReLU, size})
			if b%4 == 3 && size < 256 {
				size *= 2
			}
		}
		m.Layers = append(m.Layers,
			Layer{LayerPool, size}, Layer{LayerFC, 1000}, Layer{LayerSoftmax, 1000})
		zoo = append(zoo, m)
	}

	return zoo
}

// layerPhase converts a layer to its execution phase. Different layer
// types have characteristic instruction mixes: convolutions are
// vector-multiply heavy with streaming working sets, FC layers are
// load/multiply bound, pooling is load/compare bound, batch norm is a thin
// vector pass, residual adds are short load/add/store bursts.
func layerPhase(l Layer, r *rng.Source) Phase {
	jitter := func(n int) int {
		v := int(float64(n) * (1 + r.Gaussian(0, 0.07)))
		if v < 50 {
			v = 50
		}
		return v
	}
	switch l.Type {
	case LayerConv:
		return Phase{
			Name: "conv",
			Mix: Mix{
				isa.ClassSSE:  4,
				isa.ClassAVX:  3,
				isa.ClassMul:  2,
				isa.ClassLoad: 3,
				isa.ClassALU:  1,
			},
			Instructions: jitter(l.Size * 40),
			Intensity:    1200,
			WorkingSet:   uint64(l.Size) << 11,
		}
	case LayerBatchNorm:
		return Phase{
			Name: "bn",
			Mix: Mix{
				isa.ClassSSE:  3,
				isa.ClassLoad: 2,
				isa.ClassMul:  1,
				isa.ClassDiv:  0.5,
			},
			Instructions: jitter(l.Size * 6),
			Intensity:    900,
			WorkingSet:   uint64(l.Size) << 9,
		}
	case LayerReLU:
		return Phase{
			Name: "relu",
			Mix: Mix{
				isa.ClassALU:    2,
				isa.ClassLoad:   2,
				isa.ClassStore:  2,
				isa.ClassBranch: 1,
			},
			Instructions: jitter(l.Size * 4),
			Intensity:    900,
			WorkingSet:   uint64(l.Size) << 9,
		}
	case LayerPool:
		return Phase{
			Name: "pool",
			Mix: Mix{
				isa.ClassLoad:   4,
				isa.ClassALU:    2,
				isa.ClassBranch: 1.5,
				isa.ClassStore:  1,
			},
			Instructions: jitter(l.Size * 8),
			Intensity:    800,
			WorkingSet:   uint64(l.Size) << 10,
		}
	case LayerFC:
		return Phase{
			Name: "fc",
			Mix: Mix{
				isa.ClassLoad: 4,
				isa.ClassMul:  3,
				isa.ClassSSE:  2,
				isa.ClassALU:  1,
			},
			Instructions: jitter(l.Size * 12),
			Intensity:    1100,
			WorkingSet:   uint64(l.Size) << 12,
		}
	case LayerAdd:
		return Phase{
			Name: "add",
			Mix: Mix{
				isa.ClassLoad:  3,
				isa.ClassALU:   2,
				isa.ClassStore: 2,
			},
			Instructions: jitter(l.Size * 3),
			Intensity:    900,
			WorkingSet:   uint64(l.Size) << 9,
		}
	default: // LayerSoftmax
		return Phase{
			Name: "softmax",
			Mix: Mix{
				isa.ClassX87:  2, // exp/log scalar math
				isa.ClassDiv:  1.5,
				isa.ClassALU:  1,
				isa.ClassLoad: 1,
			},
			Instructions: jitter(l.Size * 2),
			Intensity:    600,
			WorkingSet:   uint64(l.Size) << 6,
		}
	}
}

// InferenceJob builds one inference execution of the model; r supplies the
// run-to-run variation between repeated inferences.
func InferenceJob(m ModelArch, r *rng.Source) Job {
	job := Job{Label: m.Name}
	for _, l := range m.Layers {
		job.Phases = append(job.Phases, layerPhase(l, r))
	}
	return job
}
