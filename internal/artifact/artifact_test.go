package artifact

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := New("profile-trace", "00deadbeef00cafe")
	a.SetMeta("secret", "site-3")
	a.AddSection("slab", []float64{1, 2.5, -3, math.Pi, 0, math.Inf(1)})
	a.AddSection("empty", nil)
	a.AddSection("tail", []float64{42})
	if err := st.Put(a); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Get("profile-trace", "00deadbeef00cafe")
	if !ok {
		t.Fatal("stored artifact did not load")
	}
	if got.Kind != a.Kind || got.Fingerprint != a.Fingerprint {
		t.Fatalf("identity drifted: %q/%q", got.Kind, got.Fingerprint)
	}
	if got.Meta["secret"] != "site-3" {
		t.Fatalf("meta drifted: %v", got.Meta)
	}
	slab := got.Section("slab")
	if len(slab) != 6 {
		t.Fatalf("slab section has %d values", len(slab))
	}
	for i, v := range a.Section("slab") {
		if math.Float64bits(slab[i]) != math.Float64bits(v) {
			t.Fatalf("slab[%d]: %v != %v (bit drift)", i, slab[i], v)
		}
	}
	if got.Section("empty") == nil || len(got.Section("empty")) != 0 {
		t.Fatalf("empty section lost: %v", got.Section("empty"))
	}
	if got.Section("absent") != nil {
		t.Fatal("absent section materialised")
	}
	if got.Section("tail")[0] != 42 {
		t.Fatal("tail section drifted")
	}
}

func TestMissOnAbsent(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get("profile-trace", "0000000000000000"); ok {
		t.Fatal("absent artifact reported a hit")
	}
}

// TestCorruptIsMiss flips bytes at several offsets (magic, header, slab,
// checksum) and truncates; every mutation must read as a miss, never a
// hit or a panic — a killed campaign may leave any of these on disk.
func TestCorruptIsMiss(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := New("fuzz-event", "1234567812345678")
	a.AddSection("findings", []float64{1, 2, 3, 4, 5, 6})
	if err := st.Put(a); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "fuzz-event", "1234567812345678.art")
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, mutate(append([]byte(nil), orig...)), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := st.Get("fuzz-event", "1234567812345678"); ok {
				t.Fatal("corrupt artifact reported a hit")
			}
			if err := os.WriteFile(path, orig, 0o644); err != nil {
				t.Fatal(err)
			}
		})
	}
	corrupt("magic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	corrupt("header", func(b []byte) []byte { b[14] ^= 0xff; return b })
	corrupt("slab", func(b []byte) []byte { b[len(b)-12] ^= 0xff; return b })
	corrupt("checksum", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b })
	corrupt("truncated", func(b []byte) []byte { return b[:len(b)/2] })
	corrupt("empty", func(b []byte) []byte { return nil })
	// Sanity: the restored file still hits.
	if _, ok := st.Get("fuzz-event", "1234567812345678"); !ok {
		t.Fatal("restored artifact did not load")
	}
}

// TestWrongIdentityIsMiss covers a renamed/copied file: the embedded
// identity must match the requested one.
func TestWrongIdentityIsMiss(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := New("profile-score", "aaaaaaaaaaaaaaaa")
	a.AddSection("mi", []float64{0.5})
	if err := st.Put(a); err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(dir, "profile-score", "aaaaaaaaaaaaaaaa.art")
	dst := filepath.Join(dir, "profile-score", "bbbbbbbbbbbbbbbb.art")
	buf, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get("profile-score", "bbbbbbbbbbbbbbbb"); ok {
		t.Fatal("artifact with mismatched embedded fingerprint reported a hit")
	}
}

func TestPutOverwritesAtomically(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := New("screen-memo", "cccccccccccccccc")
	a.AddSection("ids", []float64{1})
	if err := st.Put(a); err != nil {
		t.Fatal(err)
	}
	b := New("screen-memo", "cccccccccccccccc")
	b.AddSection("ids", []float64{1, 2, 3})
	if err := st.Put(b); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Get("screen-memo", "cccccccccccccccc")
	if !ok || len(got.Section("ids")) != 3 {
		t.Fatalf("overwrite lost: ok=%v ids=%v", ok, got.Section("ids"))
	}
	// No temp droppings left behind.
	files, err := os.ReadDir(filepath.Join(st.Dir(), "screen-memo"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("store directory holds %d files, want 1", len(files))
	}
}

func TestList(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []struct{ kind, fp string }{
		{"profile-trace", "000000000000000b"},
		{"profile-trace", "000000000000000a"},
		{"fuzz-event", "00000000000000ff"},
	} {
		a := New(id.kind, id.fp)
		a.SetMeta("k", id.kind)
		a.AddSection("s", []float64{1, 2})
		if err := st.Put(a); err != nil {
			t.Fatal(err)
		}
	}
	// A corrupt file is skipped, not fatal.
	if err := os.WriteFile(filepath.Join(dir, "fuzz-event", "junk.art"), []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("listed %d entries, want 3", len(entries))
	}
	want := []string{
		"fuzz-event/00000000000000ff",
		"profile-trace/000000000000000a",
		"profile-trace/000000000000000b",
	}
	for i, e := range entries {
		if got := e.Kind + "/" + e.Fingerprint; got != want[i] {
			t.Fatalf("entry %d: %s, want %s", i, got, want[i])
		}
		if e.Schema != Schema || e.Size <= 0 || e.Meta["k"] != e.Kind {
			t.Fatalf("entry %d malformed: %+v", i, e)
		}
	}
}

func TestFingerprint(t *testing.T) {
	base := func() *Fingerprint {
		return NewFingerprint("profile-trace").
			Uint64("seed", 7).String("secret", "site-1").
			Int("ticks", 150).Float("threshold", 0.05).Bool("raw", false)
	}
	if base().Sum() != base().Sum() {
		t.Fatal("fingerprint is not deterministic")
	}
	if len(base().Sum()) != 16 {
		t.Fatalf("sum %q is not 16 hex digits", base().Sum())
	}
	mutants := []*Fingerprint{
		NewFingerprint("fuzz-event").
			Uint64("seed", 7).String("secret", "site-1").
			Int("ticks", 150).Float("threshold", 0.05).Bool("raw", false),
		base().Uint64("extra", 0),
		NewFingerprint("profile-trace").
			Uint64("seed", 8).String("secret", "site-1").
			Int("ticks", 150).Float("threshold", 0.05).Bool("raw", false),
		NewFingerprint("profile-trace").
			Uint64("seed", 7).String("secret", "site-2").
			Int("ticks", 150).Float("threshold", 0.05).Bool("raw", false),
		NewFingerprint("profile-trace").
			Uint64("seed", 7).String("secret", "site-1").
			Int("ticks", 150).Float("threshold", 0.05).Bool("raw", true),
	}
	seen := map[string]bool{base().Sum(): true}
	for i, m := range mutants {
		if seen[m.Sum()] {
			t.Fatalf("mutant %d collides: %s", i, m.Sum())
		}
		seen[m.Sum()] = true
	}
	// Field framing: label/value splits must not alias.
	a := NewFingerprint("k").String("ab", "c").Sum()
	b := NewFingerprint("k").String("a", "bc").Sum()
	if a == b {
		t.Fatal("label/value framing aliases")
	}
}

func TestGlobalStatsMove(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	before := GlobalStats()
	a := New("gadget-catalog", "0123456789abcdef")
	a.AddSection("ids", []float64{9})
	if err := st.Put(a); err != nil {
		t.Fatal(err)
	}
	st.Get("gadget-catalog", "0123456789abcdef")
	st.Get("gadget-catalog", "ffffffffffffffff")
	after := GlobalStats()
	if after.Writes-before.Writes != 1 || after.Hits-before.Hits != 1 || after.Misses-before.Misses != 1 {
		t.Fatalf("stats delta writes=%d hits=%d misses=%d, want 1/1/1",
			after.Writes-before.Writes, after.Hits-before.Hits, after.Misses-before.Misses)
	}
}
