// Package artifact implements the versioned, content-addressed binary
// artifact store behind campaign resume and incremental re-profiling
// (schema "aegis-artifact/v1").
//
// An artifact is a self-describing file holding one checkpointed result of
// the offline pipelines: a per-secret leakage-trace matrix, a per-event MI
// score, a fuzzed-event finding list, a screening memo or a gadget
// catalog. The payload is a single contiguous float64 slab — the same
// single-slab layout the trace collector and the stats kernels already
// use — so loading is one read plus an index build over the header's
// named sections; float64 bit patterns round-trip exactly, which is what
// makes a resumed campaign byte-identical to a cold one.
//
// Artifacts are content-addressed by a 64-bit FNV-1a fingerprint over the
// inputs that produced them (seed, config fields, event formulas, legal
// instruction list …): the fingerprint is the file name, so a config
// delta never aliases stale state — it simply misses. Writes go through a
// temp file + fsync + atomic rename, so a killed campaign leaves either a
// complete artifact or none; torn and corrupt files read as cache misses,
// never as errors.
package artifact

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
)

// Schema is the wire schema identifier of the current artifact format.
const Schema = "aegis-artifact/v1"

// magic opens every artifact file; the trailing byte versions the binary
// framing (header/payload/checksum layout), while Schema versions the
// header's meaning.
var magic = [8]byte{'A', 'E', 'G', 'A', 'R', 'T', '0', '1'}

// Section is one named view into the payload slab.
type Section struct {
	Name string `json:"name"`
	Off  int    `json:"off"`
	Len  int    `json:"len"`
}

// header is the self-describing JSON header of an artifact file.
type header struct {
	Schema      string            `json:"schema"`
	Kind        string            `json:"kind"`
	Fingerprint string            `json:"fingerprint"`
	Meta        map[string]string `json:"meta,omitempty"`
	Sections    []Section         `json:"sections,omitempty"`
	SlabLen     int               `json:"slab_len"`
}

// Artifact is one decoded (or under-construction) artifact: a kind, the
// fingerprint of the inputs that produced it, free-form string metadata,
// and a float64 slab carved into named sections.
type Artifact struct {
	Kind        string
	Fingerprint string
	Meta        map[string]string
	Sections    []Section
	Slab        []float64
}

// New starts an empty artifact for the given kind and input fingerprint.
func New(kind, fingerprint string) *Artifact {
	return &Artifact{Kind: kind, Fingerprint: fingerprint, Meta: map[string]string{}}
}

// AddSection appends vals to the slab under the given name and records the
// section index entry. Values are copied.
func (a *Artifact) AddSection(name string, vals []float64) {
	a.Sections = append(a.Sections, Section{Name: name, Off: len(a.Slab), Len: len(vals)})
	a.Slab = append(a.Slab, vals...)
}

// Section returns the named view into the slab, or nil when absent. The
// returned slice aliases the artifact's slab.
func (a *Artifact) Section(name string) []float64 {
	for _, s := range a.Sections {
		if s.Name == name {
			return a.Slab[s.Off : s.Off+s.Len : s.Off+s.Len]
		}
	}
	return nil
}

// SetMeta records a metadata key.
func (a *Artifact) SetMeta(key, value string) {
	if a.Meta == nil {
		a.Meta = map[string]string{}
	}
	a.Meta[key] = value
}

// encode renders the artifact in the v1 binary framing:
//
//	magic[8] | headerLen uint32 LE | header JSON | slab float64 LE … | fnv64a uint64 LE
//
// The checksum covers the header JSON and the slab bytes.
func (a *Artifact) encode() ([]byte, error) {
	h := header{
		Schema:      Schema,
		Kind:        a.Kind,
		Fingerprint: a.Fingerprint,
		Meta:        a.Meta,
		Sections:    a.Sections,
		SlabLen:     len(a.Slab),
	}
	hdr, err := json.Marshal(h)
	if err != nil {
		return nil, fmt.Errorf("artifact: marshal header: %w", err)
	}
	buf := make([]byte, 0, len(magic)+4+len(hdr)+8*len(a.Slab)+8)
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hdr)))
	buf = append(buf, hdr...)
	for _, v := range a.Slab {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	sum := fnv.New64a()
	sum.Write(buf[len(magic)+4:])
	buf = binary.LittleEndian.AppendUint64(buf, sum.Sum64())
	return buf, nil
}

// decode parses a v1 artifact file. Any framing violation — bad magic,
// truncation, checksum mismatch, schema drift, out-of-range sections —
// returns an error; callers treat that as a cache miss.
func decode(buf []byte) (*Artifact, error) {
	if len(buf) < len(magic)+4+8 {
		return nil, fmt.Errorf("artifact: truncated file (%d bytes)", len(buf))
	}
	if [8]byte(buf[:8]) != magic {
		return nil, fmt.Errorf("artifact: bad magic %q", buf[:8])
	}
	hdrLen := int(binary.LittleEndian.Uint32(buf[8:12]))
	body := buf[12 : len(buf)-8]
	if hdrLen < 0 || hdrLen > len(body) {
		return nil, fmt.Errorf("artifact: header length %d exceeds file", hdrLen)
	}
	sum := fnv.New64a()
	sum.Write(body)
	if got, want := sum.Sum64(), binary.LittleEndian.Uint64(buf[len(buf)-8:]); got != want {
		return nil, fmt.Errorf("artifact: checksum mismatch %016x != %016x", got, want)
	}
	var h header
	if err := json.Unmarshal(body[:hdrLen], &h); err != nil {
		return nil, fmt.Errorf("artifact: unmarshal header: %w", err)
	}
	if h.Schema != Schema {
		return nil, fmt.Errorf("artifact: schema %q, want %q", h.Schema, Schema)
	}
	slabBytes := body[hdrLen:]
	if len(slabBytes) != 8*h.SlabLen {
		return nil, fmt.Errorf("artifact: slab is %d bytes, header says %d values", len(slabBytes), h.SlabLen)
	}
	slab := make([]float64, h.SlabLen)
	for i := range slab {
		slab[i] = math.Float64frombits(binary.LittleEndian.Uint64(slabBytes[8*i:]))
	}
	for _, s := range h.Sections {
		if s.Off < 0 || s.Len < 0 || s.Off+s.Len > len(slab) {
			return nil, fmt.Errorf("artifact: section %q [%d,+%d) outside slab of %d", s.Name, s.Off, s.Len, len(slab))
		}
	}
	return &Artifact{
		Kind:        h.Kind,
		Fingerprint: h.Fingerprint,
		Meta:        h.Meta,
		Sections:    h.Sections,
		Slab:        slab,
	}, nil
}
