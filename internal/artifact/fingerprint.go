package artifact

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Fingerprint accumulates a 64-bit FNV-1a hash over labeled input fields.
// Every field is framed as label\0value\0, so adjacent fields can never
// alias ("ab"+"c" vs "a"+"bc") and a zero value still advances the hash.
// The rendered sum is the artifact's content address: any producing-input
// change — seed, config field, event formula, legal-instruction list —
// yields a different file name, which is the store's only invalidation
// rule.
type Fingerprint struct {
	h uint64
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// NewFingerprint starts a fingerprint seeded with a domain label (the
// artifact kind, conventionally), so equal field sets under different
// kinds cannot collide.
func NewFingerprint(domain string) *Fingerprint {
	f := &Fingerprint{h: fnvOffset}
	f.writeString(domain)
	return f
}

func (f *Fingerprint) writeByte(b byte) {
	f.h = (f.h ^ uint64(b)) * fnvPrime
}

func (f *Fingerprint) writeString(s string) {
	for i := 0; i < len(s); i++ {
		f.writeByte(s[i])
	}
	f.writeByte(0)
}

func (f *Fingerprint) writeUint64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	for _, x := range b {
		f.writeByte(x)
	}
	f.writeByte(0)
}

// String mixes in a labeled string field.
func (f *Fingerprint) String(label, v string) *Fingerprint {
	f.writeString(label)
	f.writeString(v)
	return f
}

// Uint64 mixes in a labeled uint64 field.
func (f *Fingerprint) Uint64(label string, v uint64) *Fingerprint {
	f.writeString(label)
	f.writeUint64(v)
	return f
}

// Int mixes in a labeled int field.
func (f *Fingerprint) Int(label string, v int) *Fingerprint {
	return f.Uint64(label, uint64(int64(v)))
}

// Float mixes in a labeled float64 field by bit pattern.
func (f *Fingerprint) Float(label string, v float64) *Fingerprint {
	return f.Uint64(label, math.Float64bits(v))
}

// Bytes mixes in a labeled raw byte field (file contents, serialized
// blobs). The label\0value\0 framing applies as for String, so byte
// fields cannot alias neighbouring fields.
func (f *Fingerprint) Bytes(label string, v []byte) *Fingerprint {
	f.writeString(label)
	for _, b := range v {
		f.writeByte(b)
	}
	f.writeByte(0)
	return f
}

// Bool mixes in a labeled bool field.
func (f *Fingerprint) Bool(label string, v bool) *Fingerprint {
	var b uint64
	if v {
		b = 1
	}
	return f.Uint64(label, b)
}

// Sum renders the accumulated hash as the canonical 16-hex-digit content
// address.
func (f *Fingerprint) Sum() string {
	return fmt.Sprintf("%016x", f.h)
}
