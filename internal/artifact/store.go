package artifact

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"github.com/repro/aegis/internal/telemetry"
)

// Store metrics: the cache funnel (hits/misses per kind), write volume,
// IO latency and the corrupt-file signal. Wall-clock here feeds the
// latency histograms only; cache contents are pure values, so timing
// never influences campaign results.
var (
	mCorrupt      = telemetry.C("artifact_corrupt_total")
	hLoadSeconds  = telemetry.H("artifact_load_seconds", telemetry.DefBuckets)
	hWriteSeconds = telemetry.H("artifact_write_seconds", telemetry.DefBuckets)
)

// Stats are process-wide artifact-store totals, kept as plain atomics next
// to the telemetry counters so tools (aegis-bench -store) can diff cache
// behaviour around a run without scraping the registry.
type Stats struct {
	Hits    int64
	Misses  int64
	Writes  int64
	Corrupt int64
}

var gHits, gMisses, gWrites, gCorrupt atomic.Int64

// GlobalStats returns the process-wide store totals.
func GlobalStats() Stats {
	return Stats{
		Hits:    gHits.Load(),
		Misses:  gMisses.Load(),
		Writes:  gWrites.Load(),
		Corrupt: gCorrupt.Load(),
	}
}

// Store is a directory of content-addressed artifacts, laid out as
// DIR/<kind>/<fingerprint>.art. A Store is safe for concurrent use: reads
// are plain opens, and writes are temp-file + fsync + atomic rename, so
// racing writers of the same artifact both land a complete, identical
// file.
type Store struct {
	dir string
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("artifact: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path returns the artifact file path; kind and fingerprint are generated
// by this module (kind constants, hex sums), so they are path-safe by
// construction — Base guards against hostile inputs anyway.
func (s *Store) path(kind, fingerprint string) string {
	return filepath.Join(s.dir, filepath.Base(kind), filepath.Base(fingerprint)+".art")
}

// Get loads the artifact for (kind, fingerprint). A missing, torn or
// corrupt file is a cache miss (false), never an error: the caller
// recomputes and overwrites, which is always safe because the file name
// is the content address of its inputs.
func (s *Store) Get(kind, fingerprint string) (*Artifact, bool) {
	start := time.Now()
	buf, err := os.ReadFile(s.path(kind, fingerprint))
	if err != nil {
		miss(kind)
		return nil, false
	}
	a, err := decode(buf)
	if err != nil || a.Kind != kind || a.Fingerprint != fingerprint {
		mCorrupt.Inc()
		gCorrupt.Add(1)
		miss(kind)
		return nil, false
	}
	hLoadSeconds.Observe(time.Since(start).Seconds())
	telemetry.C("artifact_cache_hits_total", telemetry.L("kind", kind)).Inc()
	gHits.Add(1)
	return a, true
}

func miss(kind string) {
	telemetry.C("artifact_cache_misses_total", telemetry.L("kind", kind)).Inc()
	gMisses.Add(1)
}

// Put durably writes the artifact: encode, write to a unique temp file in
// the destination directory, fsync, then rename over the final name. A
// crash at any point leaves either the old file, no file, or the complete
// new file — never a torn one.
func (s *Store) Put(a *Artifact) error {
	start := time.Now()
	buf, err := a.encode()
	if err != nil {
		return err
	}
	dst := s.path(a.Kind, a.Fingerprint)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("artifact: put: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), ".art-*")
	if err != nil {
		return fmt.Errorf("artifact: put: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: put %s/%s: %w", a.Kind, a.Fingerprint, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: put %s/%s: %w", a.Kind, a.Fingerprint, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: put %s/%s: %w", a.Kind, a.Fingerprint, err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("artifact: put %s/%s: %w", a.Kind, a.Fingerprint, err)
	}
	hWriteSeconds.Observe(time.Since(start).Seconds())
	telemetry.C("artifact_writes_total", telemetry.L("kind", a.Kind)).Inc()
	gWrites.Add(1)
	return nil
}

// Entry is one stored artifact as seen by List: identity, schema and
// on-disk size, plus the decoded metadata.
type Entry struct {
	Kind        string
	Fingerprint string
	Schema      string
	Size        int64
	Meta        map[string]string
}

// List walks the store and returns every readable artifact's entry,
// sorted by (kind, fingerprint). Unreadable or corrupt files are skipped.
func (s *Store) List() ([]Entry, error) {
	var out []Entry
	kinds, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("artifact: list store: %w", err)
	}
	for _, kd := range kinds {
		if !kd.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, kd.Name()))
		if err != nil {
			continue
		}
		for _, fe := range files {
			if fe.IsDir() || !strings.HasSuffix(fe.Name(), ".art") {
				continue
			}
			p := filepath.Join(s.dir, kd.Name(), fe.Name())
			buf, err := os.ReadFile(p)
			if err != nil {
				continue
			}
			a, err := decode(buf)
			if err != nil {
				mCorrupt.Inc()
				gCorrupt.Add(1)
				continue
			}
			out = append(out, Entry{
				Kind:        a.Kind,
				Fingerprint: a.Fingerprint,
				Schema:      Schema,
				Size:        int64(len(buf)),
				Meta:        a.Meta,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out, nil
}
