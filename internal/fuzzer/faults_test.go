package fuzzer

import (
	"errors"
	"testing"

	"github.com/repro/aegis/internal/faultinject"
	"github.com/repro/aegis/internal/hpc"
)

func TestFuzzSkipsEventsUnderPersistentReadFaults(t *testing.T) {
	// Every RDPMC read fails: each event's search errors, gets skipped
	// with a wrapped ErrReadFault, and the campaign returns nil result
	// only because every event failed.
	cfg := smallConfig(1)
	cfg.Faults = faultinject.Config{Seed: 1, PMUReadErrorRate: 1}
	f, err := New(legalAMD(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := hpc.NewAMDEpyc7252Catalog(1)
	events := []*hpc.Event{cat.MustByName("RETIRED_UOPS"), cat.MustByName("LS_DISPATCH")}
	res, err := f.Fuzz(events)
	if err == nil {
		t.Fatal("campaign under total read faults reported success")
	}
	if !errors.Is(err, hpc.ErrReadFault) {
		t.Errorf("campaign error %v does not wrap ErrReadFault", err)
	}
	if res != nil {
		t.Errorf("all-failed campaign returned a result: %+v", res.Skipped)
	}
}

func TestFuzzSurvivesLightFaults(t *testing.T) {
	// A lightly flaky substrate: occasional read faults skip some events
	// but the campaign still returns partial (or complete) results, and
	// skipped events are recorded with their cause.
	cfg := smallConfig(2)
	faults, err := faultinject.Preset(faultinject.PresetLight, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = faults
	f, err := New(legalAMD(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := hpc.NewAMDEpyc7252Catalog(1)
	events := []*hpc.Event{
		cat.MustByName("RETIRED_UOPS"), cat.MustByName("LS_DISPATCH"),
		cat.MustByName("MAB_ALLOCATION_BY_PIPE"),
	}
	res, err := f.Fuzz(events)
	if res == nil {
		t.Fatalf("light faults killed the whole campaign: %v", err)
	}
	if len(res.Skipped)+len(res.PerEvent) != len(events) {
		t.Errorf("skipped %d + searched %d != %d events",
			len(res.Skipped), len(res.PerEvent), len(events))
	}
	for _, sk := range res.Skipped {
		if sk.Err == nil {
			t.Errorf("skipped event %s has nil cause", sk.Event)
		}
	}
	if err != nil && len(res.Skipped) == 0 {
		t.Errorf("campaign errored (%v) without recording skips", err)
	}
}
