// Package fuzzer implements Aegis's Event Fuzzer (paper §VI): the offline
// module that searches instruction gadgets able to perturb the vulnerable
// HPC events found by the Application Profiler.
//
// A gadget is a reset sequence followed by a trigger sequence: the reset
// drives the event to a known state S0 (e.g. CLFLUSH empties the cache
// line), the trigger transitions it to S1 (a load refills the line and the
// refill counter ticks). Candidate gadgets are sampled grammar-style from
// the post-cleanup legal instruction list, executed on an isolated core
// with RDPMC measurements around them, and confirmed with the paper's
// three mechanisms: multiple executions (median over repeats), repeated
// triggers (cold vs hot paths under the λ1/λ2 constraints), and random
// reordering (to flush inherited dirty state). Confirmed gadgets are
// clustered by instruction properties and reduced to a minimal covering
// set for the obfuscator.
package fuzzer

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/repro/aegis/internal/artifact"
	"github.com/repro/aegis/internal/faultinject"
	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/isa"
	"github.com/repro/aegis/internal/microarch"
	"github.com/repro/aegis/internal/parallel"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/stats"
	"github.com/repro/aegis/internal/telemetry"
	"github.com/repro/aegis/internal/telemetry/flight"
)

// Fuzzer metrics: candidate funnel (tried → screened → confirmed),
// rejection causes, confirmed-gadget strength and cover-reduction timing.
var (
	mCandidatesTried    = telemetry.C("fuzzer_candidates_tried_total")
	mCandidatesScreened = telemetry.C("fuzzer_candidates_screened_total")
	mConfirmed          = telemetry.C("fuzzer_candidates_confirmed_total")
	mRejectedTriggers   = telemetry.C("fuzzer_candidates_rejected_total",
		telemetry.L("stage", "repeated-triggers"))
	mRejectedReorder = telemetry.C("fuzzer_candidates_rejected_total",
		telemetry.L("stage", "reordering"))
	mEventsSkipped  = telemetry.C("fuzzer_events_skipped_total")
	mDroppedByFault = telemetry.C("fuzzer_candidates_dropped_total",
		telemetry.L("reason", "read-fault"))
	mMemoHits    = telemetry.C("fuzzer_screen_memo_total", telemetry.L("outcome", "hit"))
	mMemoMisses  = telemetry.C("fuzzer_screen_memo_total", telemetry.L("outcome", "miss"))
	mPrefiltered = telemetry.C("fuzzer_candidates_prefiltered_total")
	//aegis:allow(metricname) pre-registry name: a dimensionless count delta; renaming would break exposition goldens
	hConfirmedDelta = telemetry.H("fuzzer_confirmed_delta",
		[]float64{1, 2, 5, 10, 25, 50, 100, 250})
	hEventSeconds = telemetry.H("fuzzer_event_seconds", telemetry.DefBuckets)
	hCoverSeconds = telemetry.H("fuzzer_cover_seconds", telemetry.DefBuckets)

	// fStage journals stage completions; only from input-ordered merge
	// points or stage boundaries, never from shard workers, so the
	// journal stays replay-stable.
	fStage = flight.Get(flight.KindStage)
)

// Errors returned by the fuzzer.
var (
	ErrNoLegalInstructions = errors.New("fuzzer: empty legal instruction list")
	ErrNoTargetEvents      = errors.New("fuzzer: no target events")
)

// Gadget is a reset+trigger instruction pair (paper §VI-D uses one
// instruction per sequence; multi-instruction sequences are future work).
type Gadget struct {
	Reset   isa.Variant
	Trigger isa.Variant
}

// Sequence returns the gadget's executable instruction sequence.
func (g Gadget) Sequence() []isa.Variant {
	return []isa.Variant{g.Reset, g.Trigger}
}

// Key identifies the gadget.
func (g Gadget) Key() string {
	return g.Reset.Key() + " ; " + g.Trigger.Key()
}

// gadgetID is the gadget's dense identity: the stable isa.Variant IDs of
// its reset and trigger. All gadgets of a Fuzzer are drawn from one legal
// list, within which variant IDs are unique, so the pair identifies the
// gadget as precisely as Key() — without assembling a string per lookup.
type gadgetID [2]int

func (g Gadget) id() gadgetID { return gadgetID{g.Reset.ID, g.Trigger.ID} }

// ClusterKey groups gadgets by the instruction properties that indicate
// their micro-architectural root cause (paper §VI-F: extension and
// category of reset and trigger).
func (g Gadget) ClusterKey() string {
	return fmt.Sprintf("%s/%s -> %s/%s",
		g.Reset.Extension, g.Reset.Category, g.Trigger.Extension, g.Trigger.Category)
}

// Finding is one confirmed gadget for one event.
type Finding struct {
	Gadget Gadget
	Event  *hpc.Event
	// MedianDelta is the median event count change per gadget execution.
	MedianDelta float64
}

// Config tunes the fuzzing campaign.
type Config struct {
	// CandidatesPerEvent is the number of gadget candidates sampled per
	// target event. The paper fuzzes the full 3407² cross product on
	// native hardware; the simulator samples a subset and documents the
	// scaling in EXPERIMENTS.md.
	CandidatesPerEvent int
	// Repeats is the R of the repeated-trigger confirmation (paper: 10).
	Repeats int
	// Lambda1 bounds |V2-V1 - R(v2-v1)| <= λ1·R·|v2-v1| (paper: 0.2).
	Lambda1 float64
	// Lambda2 requires V2 > λ2·V1 (paper: 10).
	Lambda2 float64
	// MinDelta is the smallest median count change that counts as a
	// perturbation.
	MinDelta float64
	// Seed drives candidate sampling and reordering.
	Seed uint64
	// Core configures the isolated measurement core (isolcpus analog).
	Core microarch.CoreConfig
	// MeasureNoise enables PMU read noise during fuzzing; the
	// confirmation mechanisms are then load-bearing.
	MeasureNoise bool
	// DisableConfirmation skips the repeated-trigger and reordering
	// checks, accepting every screened candidate. Only the ablation
	// benchmarks use this; it quantifies the false positives the paper's
	// confirmation mechanisms remove.
	DisableConfirmation bool
	// Parallelism bounds the worker count of the campaign fan-out; <= 0
	// uses GOMAXPROCS. Results are byte-identical at any value: every
	// event derives its RNG streams and measurement benches from
	// (Seed, event name) alone, never from shared mutable state.
	Parallelism int
	// Faults injects substrate faults (PMU read errors, counter
	// saturation) into the measurement benches. Schedules are derived per
	// (event, bench) label, so they obey the same parallelism-independence
	// contract as the RNG streams. The zero value is the healthy substrate.
	Faults faultinject.Config
	// Store, when set, checkpoints per-event search outcomes and the
	// screening memo as versioned artifacts at the campaign's
	// input-ordered merge points and resumes events whose fingerprint
	// matches on restart. Resume is invisible to results; failed events
	// are never cached.
	Store *artifact.Store
}

// DefaultConfig returns evaluation defaults.
func DefaultConfig(seed uint64) Config {
	cfg := Config{
		CandidatesPerEvent: 600,
		Repeats:            10,
		Lambda1:            0.2,
		Lambda2:            10,
		MinDelta:           0.75,
		Seed:               seed,
		Core:               microarch.DefaultCoreConfig(),
		MeasureNoise:       true,
	}
	// The fuzzing core is isolated (isolcpus): no scheduler interrupts.
	cfg.Core.InterruptRate = 0
	return cfg
}

// StepTiming records wall-clock per fuzzing step (paper Table III).
type StepTiming struct {
	Cleanup      time.Duration
	GenerateExec time.Duration
	Confirmation time.Duration
	Filtering    time.Duration
}

// SkippedEvent is one event dropped from a campaign because its FuzzEvent
// failed; the rest of the campaign completed without it.
type SkippedEvent struct {
	// Event is the event's name (or a positional placeholder for a nil
	// event).
	Event string
	// Err is the failure that caused the skip.
	Err error
}

// Result is a full fuzzing campaign outcome.
type Result struct {
	// PerEvent maps event name to its confirmed findings (post filter).
	PerEvent map[string][]Finding
	// Representatives holds one best gadget per cluster per event.
	Representatives map[string][]Finding
	// Best maps event name to the gadget with the highest median delta.
	Best map[string]Finding
	// Skipped lists the events whose searches failed, in input order.
	// Their PerEvent entries are absent; everything else is complete.
	Skipped []SkippedEvent
	// CandidatesTried is the total number of gadget executions.
	CandidatesTried int
	// Timing is the per-step wall clock.
	Timing StepTiming
}

// GadgetsFor returns the representative gadget list for an event.
func (r *Result) GadgetsFor(event string) []Finding {
	return r.Representatives[event]
}

// Fuzzer runs gadget-search campaigns. A Fuzzer is safe for the concurrent
// per-event fan-out of Fuzz: its fields are read-only after New except the
// screening memo, which is lock-protected and caches only pure values.
type Fuzzer struct {
	legal  []isa.Variant
	cfg    Config
	root   *rng.Source
	memo   *screenMemo
	faults *faultinject.Injector
	// resumeOnce/legalHash/byID cache the legal-list fingerprint and the
	// variant-ID index used by artifact resume.
	resumeOnce sync.Once
	legalHash  string
	byID       map[int]isa.Variant
}

// gadgetSig is a gadget's noise-free execution signature: the raw counter
// deltas of running it on a fresh, interrupt-free bench. cold is the first
// execution (empty caches), warm the second (steady state), total their
// sum — exactly the two-execution measurement MinimalCover credits
// coverage from. The signature is a pure function of (gadget, CoreConfig),
// so it is identical no matter which event, worker or stage computes it.
type gadgetSig struct {
	cold  []float64
	warm  []float64
	total []float64
}

// screenMemo is the cross-event screening memo: signatures keyed by the
// dense gadgetID (the reset/trigger variant IDs the sampling loop already
// holds — no per-lookup string assembly), shared by every event shard of a
// campaign and by MinimalCover. Because cached values are pure, a hit
// returns exactly what recomputation would, keeping results independent of
// worker count and scheduling order.
type screenMemo struct {
	mu   sync.Mutex
	sigs map[gadgetID]gadgetSig
}

// lookup returns the cached signature for a gadget, if present.
func (m *screenMemo) lookup(id gadgetID) (gadgetSig, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sig, ok := m.sigs[id]
	return sig, ok
}

// store caches a computed signature.
func (m *screenMemo) store(id gadgetID, sig gadgetSig) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sigs == nil {
		m.sigs = make(map[gadgetID]gadgetSig)
	}
	m.sigs[id] = sig
}

// signature measures (or recalls) a gadget's noise-free signature. Both the
// screening prefilter and MinimalCover draw from the same memo, so a
// gadget screened during the campaign never pays for its cover measurement
// again.
func (f *Fuzzer) signature(g Gadget) (gadgetSig, error) {
	id := g.id()
	if sig, ok := f.memo.lookup(id); ok {
		mMemoHits.Inc()
		return sig, nil
	}
	mMemoMisses.Inc()
	// Compute outside the lock: the value is pure, so a racing duplicate
	// computation stores an identical signature. Signatures stay
	// fault-free (nil handle) even when the campaign injects faults —
	// otherwise cache hits would make results scheduling-dependent.
	b := f.newBench(nil, nil)
	before := b.core.Counters()
	if err := b.core.ExecuteSequence(g.Sequence(), b.ctx); err != nil {
		return gadgetSig{}, err
	}
	afterCold := b.core.Counters()
	if err := b.core.ExecuteSequence(g.Sequence(), b.ctx); err != nil {
		return gadgetSig{}, err
	}
	afterWarm := b.core.Counters()
	sig := gadgetSig{
		cold:  afterCold.Sub(before).Vector(),
		warm:  afterWarm.Sub(afterCold).Vector(),
		total: afterWarm.Sub(before).Vector(),
	}
	f.memo.store(id, sig)
	return sig, nil
}

// canPerturb reports whether the signature shows any mechanistic effect of
// at least MinDelta on the event, in either the cold or steady-state
// execution. Candidates that fail this cannot pass screening except
// through measurement noise, so FuzzEvent rejects them without paying for
// the repeated noisy measurements.
func (f *Fuzzer) canPerturb(event *hpc.Event, sig gadgetSig) bool {
	return event.Value(sig.cold) >= f.cfg.MinDelta ||
		event.Value(sig.warm) >= f.cfg.MinDelta ||
		event.Value(sig.total) >= f.cfg.MinDelta
}

// New builds a fuzzer over the post-cleanup legal instruction list.
func New(legal []isa.Variant, cfg Config) (*Fuzzer, error) {
	if len(legal) == 0 {
		return nil, ErrNoLegalInstructions
	}
	if cfg.CandidatesPerEvent <= 0 {
		cfg.CandidatesPerEvent = 600
	}
	if cfg.Repeats <= 0 {
		cfg.Repeats = 10
	}
	if cfg.Lambda1 <= 0 {
		cfg.Lambda1 = 0.2
	}
	if cfg.Lambda2 <= 0 {
		cfg.Lambda2 = 10
	}
	if cfg.MinDelta <= 0 {
		cfg.MinDelta = 1
	}
	if cfg.Core.L1DSets == 0 {
		cfg.Core = microarch.DefaultCoreConfig()
		cfg.Core.InterruptRate = 0
	}
	return &Fuzzer{
		legal:  append([]isa.Variant(nil), legal...),
		cfg:    cfg,
		root:   rng.New(cfg.Seed).Split("fuzzer"),
		memo:   &screenMemo{},
		faults: faultinject.New(cfg.Faults),
	}, nil
}

// bench is one measurement environment: an isolated core with a scratch
// data page and a noise-free or noisy PMU. The sample buffers below are
// bench-owned scratch for the median confirmations, reused (and sorted in
// place) across candidates so the measurement loop stays allocation-free;
// a bench is single-owner like the PMU it wraps.
type bench struct {
	core *microarch.Core
	ctx  *microarch.ExecContext
	pmu  *hpc.PMU
	vals []float64 // medianDelta samples
	cold []float64 // repeatedTriggers cold-path samples
	hot  []float64 // repeatedTriggers hot-path samples
}

func (f *Fuzzer) newBench(noise *rng.Source, faults *faultinject.Handle) *bench {
	core := microarch.NewCore(0, f.cfg.Core, nil)
	var pmuNoise *rng.Source
	if f.cfg.MeasureNoise {
		pmuNoise = noise
	}
	pmu := hpc.NewPMU(core, pmuNoise)
	pmu.SetFaults(faults)
	return &bench{
		core: core,
		ctx:  microarch.NewScratchContext(0x1000_0000),
		pmu:  pmu,
	}
}

// measureGadget executes seq once between serialising instructions (the
// prolog/epilog of paper §VI-D) and returns the event count change.
func (b *bench) measureGadget(event *hpc.Event, seq []isa.Variant) (float64, error) {
	if err := b.pmu.Program(0, event); err != nil {
		return 0, err
	}
	// Serialising prolog regulates the execution flow before measurement.
	serial := isa.Variant{Mnemonic: "CPUID", Class: isa.ClassSerial, Uops: 20}
	if err := b.core.Execute(serial, b.ctx); err != nil {
		return 0, err
	}
	if err := b.pmu.Reset(0); err != nil {
		return 0, err
	}
	if err := b.core.ExecuteSequence(seq, b.ctx); err != nil {
		return 0, err
	}
	v, err := b.pmu.RDPMC(0)
	if err != nil {
		return 0, err
	}
	// Epilog: serialise again so the next measurement starts clean.
	if err := b.core.Execute(serial, b.ctx); err != nil {
		return 0, err
	}
	return v, nil
}

// medianDelta runs the gadget n times and returns the median change
// (multiple-executions confirmation, paper §VI-E).
func (b *bench) medianDelta(event *hpc.Event, seq []isa.Variant, n int) (float64, error) {
	vals := b.vals[:0]
	for i := 0; i < n; i++ {
		v, err := b.measureGadget(event, seq)
		if err != nil {
			return 0, err
		}
		vals = append(vals, v)
	}
	b.vals = vals
	sort.Float64s(vals)
	return stats.SortedMedian(vals), nil
}

// repeatedTriggers applies the cold/hot path check of paper §VI-E (Fig. 6):
// the cold path executes only the reset sequence, the hot path executes
// reset+trigger; both repeated R times. The change must be attributable to
// the trigger, and the reset must restore S0 each iteration.
func (b *bench) repeatedTriggers(event *hpc.Event, g Gadget, cfg Config) (bool, error) {
	R := cfg.Repeats
	coldSingle := b.cold[:0]
	hotSingle := b.hot[:0]
	var v1Cum, v2Cum float64

	// Cold path: reset only.
	for i := 0; i < R; i++ {
		v, err := b.measureGadget(event, []isa.Variant{g.Reset})
		if err != nil {
			return false, err
		}
		coldSingle = append(coldSingle, v)
		v1Cum += v
	}
	// Hot path: reset + trigger.
	for i := 0; i < R; i++ {
		v, err := b.measureGadget(event, g.Sequence())
		if err != nil {
			return false, err
		}
		hotSingle = append(hotSingle, v)
		v2Cum += v
	}
	b.cold, b.hot = coldSingle, hotSingle
	sort.Float64s(coldSingle)
	sort.Float64s(hotSingle)
	v1 := stats.SortedMedian(coldSingle)
	v2 := stats.SortedMedian(hotSingle)
	diff := v2 - v1
	if diff < cfg.MinDelta {
		return false, nil
	}
	// Constraint 1: V2 - V1 ≈ R (v2 - v1), within λ1 tolerance.
	lhs := v2Cum - v1Cum
	rhs := float64(R) * diff
	if lhs < (1-cfg.Lambda1)*rhs || lhs > (1+cfg.Lambda1)*rhs {
		return false, nil
	}
	// Constraint 2: V2 > λ2 V1 — the trigger dominates the reset's own
	// side effects on this event.
	if v2Cum <= cfg.Lambda2*v1Cum {
		return false, nil
	}
	return true, nil
}

// FuzzEvent searches gadgets for one target event and returns the
// confirmed findings (pre-filtering).
func (f *Fuzzer) FuzzEvent(event *hpc.Event) ([]Finding, int, error) {
	if event == nil {
		return nil, 0, ErrNoTargetEvents
	}
	span := telemetry.StartSpan("fuzzer.event")
	defer func() {
		if d := span.End(); d > 0 {
			hEventSeconds.Observe(d.Seconds())
		}
	}()
	r := f.root.Split("event/" + event.Name)
	b := f.newBench(r.Split("bench"), f.faults.Handle("fuzzer", event.Name, "bench"))

	type candidate struct {
		g     Gadget
		delta float64
	}
	var reported []candidate
	tried, dropped, measured := 0, 0, 0

	// Generation + execution: sample candidate pairs and keep the ones
	// whose median delta indicates a perturbation. The cross-event memo
	// prefilters candidates whose noise-free signature shows no effect on
	// this event, skipping their repeated noisy measurements; the
	// signature is pure, so the skip pattern is scheduling-independent.
	//
	// Degradation policy: a candidate whose measurement hits an injected
	// RDPMC read fault is dropped (and counted), not fatal — a real
	// campaign discards the bad sample and keeps fuzzing. Only when every
	// measurement fails is the bench declared unusable and the event
	// skipped.
	for i := 0; i < f.cfg.CandidatesPerEvent; i++ {
		g := Gadget{
			Reset:   f.legal[r.Intn(len(f.legal))],
			Trigger: f.legal[r.Intn(len(f.legal))],
		}
		tried++
		sig, err := f.signature(g)
		if err != nil {
			return nil, tried, err
		}
		if !f.canPerturb(event, sig) {
			mPrefiltered.Inc()
			continue
		}
		measured++
		med, err := b.medianDelta(event, g.Sequence(), 3)
		if err != nil {
			if errors.Is(err, hpc.ErrReadFault) {
				dropped++
				mDroppedByFault.Inc()
				continue
			}
			return nil, tried, err
		}
		if med >= f.cfg.MinDelta {
			reported = append(reported, candidate{g: g, delta: med})
		}
	}
	mCandidatesTried.Add(float64(tried))
	mCandidatesScreened.Add(float64(len(reported)))
	if measured > 0 && dropped == measured {
		return nil, tried, fmt.Errorf("fuzzer: every candidate measurement failed: %w", hpc.ErrReadFault)
	}

	if f.cfg.DisableConfirmation {
		out := make([]Finding, 0, len(reported))
		for _, c := range reported {
			out = append(out, Finding{Gadget: c.g, Event: event, MedianDelta: c.delta})
		}
		return out, tried, nil
	}

	// Confirmation pass 1: repeated triggers on a fresh bench.
	confirmBench := f.newBench(r.Split("confirm"), f.faults.Handle("fuzzer", event.Name, "confirm"))
	var confirmed []candidate
	for _, c := range reported {
		ok, err := confirmBench.repeatedTriggers(event, c.g, f.cfg)
		if err != nil {
			// A read fault mid-confirmation rejects the candidate: we
			// could not confirm it, so it must not ship.
			if errors.Is(err, hpc.ErrReadFault) {
				mDroppedByFault.Inc()
				mRejectedTriggers.Inc()
				continue
			}
			return nil, tried, err
		}
		if ok {
			confirmed = append(confirmed, c)
		} else {
			mRejectedTriggers.Inc()
		}
	}

	// Confirmation pass 2: gadget reordering. Re-run the confirmed set in
	// a random order on a fresh bench; drop gadgets whose delta deviates,
	// which indicates dependence on inherited dirty state.
	reorderBench := f.newBench(r.Split("reorder"), f.faults.Handle("fuzzer", event.Name, "reorder"))
	order := r.Perm(len(confirmed))
	stable := make([]bool, len(confirmed))
	for _, idx := range order {
		c := confirmed[idx]
		med, err := reorderBench.medianDelta(event, c.g.Sequence(), f.cfg.Repeats)
		if err != nil {
			if errors.Is(err, hpc.ErrReadFault) {
				mDroppedByFault.Inc()
				stable[idx] = false
				continue
			}
			return nil, tried, err
		}
		lo := c.delta * 0.5
		hi := c.delta*1.5 + 2
		stable[idx] = med >= f.cfg.MinDelta && med >= lo && med <= hi
	}

	var out []Finding
	for i, c := range confirmed {
		if stable[i] {
			out = append(out, Finding{Gadget: c.g, Event: event, MedianDelta: c.delta})
			mConfirmed.Inc()
			hConfirmedDelta.Observe(c.delta)
		} else {
			mRejectedReorder.Inc()
		}
	}
	return out, tried, nil
}

// filter clusters findings by gadget properties and keeps the strongest
// representative per cluster (paper §VI-F).
func filter(findings []Finding) (reps []Finding, best Finding) {
	byCluster := make(map[string]Finding)
	for _, fd := range findings {
		key := fd.Gadget.ClusterKey()
		if cur, ok := byCluster[key]; !ok || fd.MedianDelta > cur.MedianDelta {
			byCluster[key] = fd
		}
		if fd.MedianDelta > best.MedianDelta {
			best = fd
		}
	}
	keys := make([]string, 0, len(byCluster))
	for k := range byCluster {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		reps = append(reps, byCluster[k])
	}
	sort.SliceStable(reps, func(i, j int) bool { return reps[i].MedianDelta > reps[j].MedianDelta })
	return reps, best
}

// Fuzz runs the full campaign over the target events, fanning the per-event
// searches out across Config.Parallelism workers. Each event shard owns its
// benches (one PMU each) and derives every RNG stream from (Seed, event
// name), and findings merge in input-event order, so the Result is
// byte-identical at any parallelism level.
//
// A failing event does not abort the campaign: the event is skipped,
// counted in telemetry, recorded in Result.Skipped, and the partial Result
// is returned together with an error wrapping every per-event failure
// (mirroring ProtectMulti's skip semantics). Only when every event fails is
// the Result nil.
func (f *Fuzzer) Fuzz(events []*hpc.Event) (*Result, error) {
	if len(events) == 0 {
		return nil, ErrNoTargetEvents
	}
	span := telemetry.StartSpan("fuzzer.campaign")
	defer span.End()
	res := &Result{
		PerEvent:        make(map[string][]Finding, len(events)),
		Representatives: make(map[string][]Finding, len(events)),
		Best:            make(map[string]Finding, len(events)),
	}

	// Resume: restore events whose findings artifact matches the campaign
	// fingerprint and fan out only the misses. Every event shard derives
	// its streams from (Seed, event name) alone, so skipping cached
	// events leaves the recomputed ones bit-identical. Failed events are
	// never cached, so an error always re-runs.
	type outcome struct {
		findings []Finding
		tried    int
		err      error
	}
	outs := make([]outcome, len(events))
	missIdx := make([]int, 0, len(events))
	if f.cfg.Store != nil {
		f.loadMemo()
		for i, e := range events {
			if e != nil {
				if findings, tried, ok := f.loadEvent(e); ok {
					outs[i] = outcome{findings: findings, tried: tried}
					mFuzzResumeHit.Inc()
					continue
				}
				mFuzzResumeMiss.Inc()
			}
			missIdx = append(missIdx, i)
		}
	} else {
		for i := range events {
			missIdx = append(missIdx, i)
		}
	}

	// Fan the missing events out; shard failures are carried in the
	// outcome (not as Map errors) so one bad event never cancels its
	// siblings.
	pool := parallel.NewPool("fuzzer.events", f.cfg.Parallelism)
	genStart := time.Now() //aegis:allow(detrand) wall-clock feeds Timing telemetry only, never simulation state
	fresh, _ := parallel.Map(context.Background(), pool, len(missIdx),
		func(_ context.Context, i int) (outcome, error) {
			findings, tried, err := f.FuzzEvent(events[missIdx[i]])
			return outcome{findings: findings, tried: tried, err: err}, nil
		})
	// Merge point: fold the fresh outcomes back in input-event order and
	// checkpoint the successful ones.
	for mi, i := range missIdx {
		outs[i] = fresh[mi]
		if f.cfg.Store != nil && fresh[mi].err == nil && events[i] != nil {
			f.storeEvent(events[i], fresh[mi].findings, fresh[mi].tried)
		}
	}
	// FuzzEvent interleaves generation/execution and confirmation; split
	// the wall clock by the paper's observed ~250:1 ratio is not possible
	// post hoc, so time filtering separately and attribute the rest to
	// generation+execution+confirmation via the Timing fields below.
	genElapsed := time.Since(genStart) //aegis:allow(detrand) wall-clock feeds Timing telemetry only, never simulation state

	// Merge in stable input-event order.
	var errs []error
	for i, out := range outs {
		name := fmt.Sprintf("event[%d]", i)
		if events[i] != nil {
			name = events[i].Name
		}
		res.CandidatesTried += out.tried
		if out.err != nil {
			mEventsSkipped.Inc()
			telemetry.Log().Warn("fuzzer: event skipped, search failed",
				telemetry.F("event", name), telemetry.F("error", out.err.Error()))
			res.Skipped = append(res.Skipped, SkippedEvent{Event: name, Err: out.err})
			errs = append(errs, fmt.Errorf("fuzz %s: %w", name, out.err))
			continue
		}
		res.PerEvent[name] = out.findings
		// Journal at the input-ordered merge point, not in the shard
		// worker, so the stage records stay replay-stable.
		fStage.Record(0, flight.CodeStageFuzzerEvent,
			flight.CodeNone, float64(out.tried), float64(len(out.findings)), 0)
	}
	if len(errs) == len(events) {
		return nil, fmt.Errorf("fuzzer: every event failed: %w", errors.Join(errs...))
	}

	filterStart := time.Now() //aegis:allow(detrand) wall-clock feeds Timing telemetry only, never simulation state
	eventNames := make([]string, 0, len(res.PerEvent))
	for name := range res.PerEvent {
		eventNames = append(eventNames, name)
	}
	sort.Strings(eventNames)
	for _, name := range eventNames {
		reps, best := filter(res.PerEvent[name])
		res.Representatives[name] = reps
		if best.Event != nil {
			res.Best[name] = best
		}
	}
	res.Timing.Filtering = time.Since(filterStart) //aegis:allow(detrand) wall-clock feeds Timing telemetry only, never simulation state
	// Attribute ~95% of the search loop to generation+execution and ~5%
	// to confirmation, matching the structure of the loop (confirmation
	// touches only reported candidates).
	res.Timing.GenerateExec = genElapsed * 95 / 100
	res.Timing.Confirmation = genElapsed - res.Timing.GenerateExec
	// Campaign merge point: persist the grown screening memo and journal
	// the resume-skip funnel.
	if f.cfg.Store != nil {
		f.storeMemo()
		fStage.Record(0, flight.CodeStageFuzzerResume, flight.CodeNone,
			float64(len(events)-len(missIdx)), float64(len(missIdx)), 0)
	}
	fStage.Record(0, flight.CodeStageFuzzerCampaign, flight.CodeNone,
		float64(len(events)), float64(len(res.Skipped)), 0)
	telemetry.Log().Info("fuzzer: campaign done",
		telemetry.F("events", len(events)),
		telemetry.F("tried", res.CandidatesTried),
		telemetry.F("skipped", len(res.Skipped)),
		telemetry.F("confirmed_events", len(res.Best)))
	if len(errs) > 0 {
		return res, fmt.Errorf("fuzzer: %d of %d events skipped: %w",
			len(errs), len(events), errors.Join(errs...))
	}
	return res, nil
}

// CoverageEntry is one gadget of the minimal covering set with the events
// it perturbs.
type CoverageEntry struct {
	Finding Finding
	Covers  []string
}

// MinimalCover computes a small gadget set covering every event that has
// at least one confirmed gadget, using greedy set cover over the measured
// per-gadget event perturbations (paper §VII-C: 43 gadgets cover all 137
// vulnerable events). Coverage is measured mechanistically: each candidate
// gadget is executed once on a fresh bench and credited with every target
// event whose count it changes by at least MinDelta.
func (f *Fuzzer) MinimalCover(res *Result, events []*hpc.Event) ([]CoverageEntry, error) {
	if res == nil || len(events) == 0 {
		return nil, ErrNoTargetEvents
	}
	span := telemetry.StartSpan("fuzzer.minimal_cover")
	defer func() {
		if d := span.End(); d > 0 {
			hCoverSeconds.Observe(d.Seconds())
		}
	}()
	// Candidate pool: all representatives, deduplicated by dense gadget
	// identity, visiting events in sorted-name order so the Finding that
	// wins a duplicated gadget is the same on every run — map order must
	// not pick the winner. (The pool order below still sorts by Key() —
	// the greedy cover's tie-breaks must stay byte-identical to the
	// string-keyed implementation.)
	repEvents := make([]string, 0, len(res.Representatives))
	for name := range res.Representatives {
		repEvents = append(repEvents, name)
	}
	sort.Strings(repEvents)
	var pool []Finding
	seen := make(map[gadgetID]bool)
	for _, name := range repEvents {
		for _, fd := range res.Representatives[name] {
			if !seen[fd.Gadget.id()] {
				seen[fd.Gadget.id()] = true
				pool = append(pool, fd)
			}
		}
	}
	sort.SliceStable(pool, func(i, j int) bool { return pool[i].Gadget.Key() < pool[j].Gadget.Key() })

	// Measure coverage of each candidate over all events: the gadget's
	// cold+warm noise-free signature (usually already in the screening
	// memo) evaluated under every event formula. Shards are pure, so the
	// fan-out preserves the serial coverage matrix exactly.
	workers := parallel.NewPool("fuzzer.cover", f.cfg.Parallelism)
	coverage, err := parallel.Map(context.Background(), workers, len(pool),
		func(_ context.Context, i int) ([]int, error) {
			sig, err := f.signature(pool[i].Gadget)
			if err != nil {
				return nil, err
			}
			var covers []int
			for ei, e := range events {
				if e.Value(sig.total) >= f.cfg.MinDelta {
					covers = append(covers, ei)
				}
			}
			return covers, nil
		})
	if err != nil {
		return nil, err
	}

	// Greedy cover.
	uncovered := make(map[int]bool, len(events))
	coverable := make(map[int]bool)
	for _, cov := range coverage {
		for _, ei := range cov {
			coverable[ei] = true
			uncovered[ei] = true
		}
	}
	var out []CoverageEntry
	for len(uncovered) > 0 {
		bestIdx, bestGain := -1, 0
		for i, cov := range coverage {
			gain := 0
			for _, ei := range cov {
				if uncovered[ei] {
					gain++
				}
			}
			if gain > bestGain {
				bestGain = gain
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break
		}
		entry := CoverageEntry{Finding: pool[bestIdx]}
		for _, ei := range coverage[bestIdx] {
			if uncovered[ei] {
				entry.Covers = append(entry.Covers, events[ei].Name)
				delete(uncovered, ei)
			}
		}
		out = append(out, entry)
	}
	fStage.Record(0, flight.CodeStageFuzzerCover, flight.CodeNone,
		float64(len(out)), float64(len(coverable)), 0)
	return out, nil
}

// StackSegment concatenates the covering gadgets into the single noise code
// segment the obfuscator executes repeatedly (paper §VII-C).
func StackSegment(cover []CoverageEntry) []isa.Variant {
	var seg []isa.Variant
	for _, c := range cover {
		seg = append(seg, c.Finding.Gadget.Sequence()...)
	}
	return seg
}

// FullCampaignHours extrapolates the wall-clock of a full fuzzing campaign
// that executes every legal×legal gadget pair once per profiled event, at
// the given measured throughput (gadget executions per second). With the
// paper's native throughputs this reproduces Table III's headline runtimes:
// 3386² gadgets × 738 events at 253,314/s ≈ 9.3 h (Intel) and 3407² × 137
// at 235,449/s ≈ 1.9–2.2 h (AMD).
func FullCampaignHours(legalVariants, profiledEvents int, throughputPerSec float64) float64 {
	if throughputPerSec <= 0 {
		return 0
	}
	totalGadgets := float64(legalVariants) * float64(legalVariants)
	return totalGadgets * float64(profiledEvents) / throughputPerSec / 3600
}
