package fuzzer

import (
	"sort"
	"strings"

	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/isa"
	"github.com/repro/aegis/internal/stats"
)

// Multi-instruction gadgets: paper §VI-D fuzzes one instruction per
// reset/trigger sequence and notes that "our methodology can be easily
// extended to multi-instruction sequences with larger search spaces, which
// will be considered as future work". This file implements that extension:
// reset and trigger become instruction sequences of configurable length,
// searched with the same grammar, measured identically and confirmed with
// the same repeated-trigger mechanism.

// SeqGadget is a multi-instruction reset+trigger gadget.
type SeqGadget struct {
	Reset   []isa.Variant
	Trigger []isa.Variant
}

// Sequence returns the executable instruction stream.
func (g SeqGadget) Sequence() []isa.Variant {
	out := make([]isa.Variant, 0, len(g.Reset)+len(g.Trigger))
	out = append(out, g.Reset...)
	out = append(out, g.Trigger...)
	return out
}

// Key identifies the gadget.
func (g SeqGadget) Key() string {
	parts := make([]string, 0, len(g.Reset)+len(g.Trigger)+1)
	for _, v := range g.Reset {
		parts = append(parts, v.Key())
	}
	parts = append(parts, ";")
	for _, v := range g.Trigger {
		parts = append(parts, v.Key())
	}
	return strings.Join(parts, " ")
}

// SeqFinding is one confirmed multi-instruction gadget.
type SeqFinding struct {
	Gadget      SeqGadget
	Event       *hpc.Event
	MedianDelta float64
}

// repeatedTriggersSeq is the sequence generalisation of the cold/hot-path
// confirmation: cold executes only the reset sequence, hot the full
// gadget, both R times; the λ1/λ2 constraints are unchanged.
func (b *bench) repeatedTriggersSeq(event *hpc.Event, reset, full []isa.Variant, cfg Config) (bool, error) {
	R := cfg.Repeats
	coldSingle := b.cold[:0]
	hotSingle := b.hot[:0]
	var v1Cum, v2Cum float64
	for i := 0; i < R; i++ {
		v, err := b.measureGadget(event, reset)
		if err != nil {
			return false, err
		}
		coldSingle = append(coldSingle, v)
		v1Cum += v
	}
	for i := 0; i < R; i++ {
		v, err := b.measureGadget(event, full)
		if err != nil {
			return false, err
		}
		hotSingle = append(hotSingle, v)
		v2Cum += v
	}
	b.cold, b.hot = coldSingle, hotSingle
	sort.Float64s(coldSingle)
	sort.Float64s(hotSingle)
	v1 := stats.SortedMedian(coldSingle)
	v2 := stats.SortedMedian(hotSingle)
	diff := v2 - v1
	if diff < cfg.MinDelta {
		return false, nil
	}
	lhs := v2Cum - v1Cum
	rhs := float64(R) * diff
	if lhs < (1-cfg.Lambda1)*rhs || lhs > (1+cfg.Lambda1)*rhs {
		return false, nil
	}
	if v2Cum <= cfg.Lambda2*v1Cum {
		return false, nil
	}
	return true, nil
}

// FuzzEventSequences searches multi-instruction gadgets with the given
// reset/trigger sequence length for one event and returns the confirmed
// findings. seqLen == 1 degenerates to the paper's single-instruction
// search.
func (f *Fuzzer) FuzzEventSequences(event *hpc.Event, seqLen int) ([]SeqFinding, int, error) {
	if event == nil {
		return nil, 0, ErrNoTargetEvents
	}
	if seqLen < 1 {
		seqLen = 1
	}
	r := f.root.Split("seq-event/" + event.Name)
	b := f.newBench(r.Split("bench"), f.faults.Handle("fuzzer-seq", event.Name, "bench"))

	sample := func() []isa.Variant {
		seq := make([]isa.Variant, seqLen)
		for i := range seq {
			seq[i] = f.legal[r.Intn(len(f.legal))]
		}
		return seq
	}

	type candidate struct {
		g     SeqGadget
		delta float64
	}
	var reported []candidate
	tried := 0
	for i := 0; i < f.cfg.CandidatesPerEvent; i++ {
		g := SeqGadget{Reset: sample(), Trigger: sample()}
		tried++
		med, err := b.medianDelta(event, g.Sequence(), 3)
		if err != nil {
			return nil, tried, err
		}
		if med >= f.cfg.MinDelta {
			reported = append(reported, candidate{g: g, delta: med})
		}
	}

	if f.cfg.DisableConfirmation {
		out := make([]SeqFinding, 0, len(reported))
		for _, c := range reported {
			out = append(out, SeqFinding{Gadget: c.g, Event: event, MedianDelta: c.delta})
		}
		return out, tried, nil
	}

	confirmBench := f.newBench(r.Split("confirm"), f.faults.Handle("fuzzer-seq", event.Name, "confirm"))
	var out []SeqFinding
	for _, c := range reported {
		ok, err := confirmBench.repeatedTriggersSeq(event, c.g.Reset, c.g.Sequence(), f.cfg)
		if err != nil {
			return nil, tried, err
		}
		if ok {
			out = append(out, SeqFinding{Gadget: c.g, Event: event, MedianDelta: c.delta})
		}
	}
	return out, tried, nil
}

// BestSequenceDelta returns the strongest confirmed multi-instruction
// gadget delta for the event across sequence lengths 1..maxLen, measuring
// how much extra perturbation longer gadgets buy.
func (f *Fuzzer) BestSequenceDelta(event *hpc.Event, maxLen int) (map[int]float64, error) {
	if maxLen < 1 {
		maxLen = 1
	}
	out := make(map[int]float64, maxLen)
	for n := 1; n <= maxLen; n++ {
		findings, _, err := f.FuzzEventSequences(event, n)
		if err != nil {
			return nil, err
		}
		best := 0.0
		for _, fd := range findings {
			if fd.MedianDelta > best {
				best = fd.MedianDelta
			}
		}
		out[n] = best
	}
	return out, nil
}
