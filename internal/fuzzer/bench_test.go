package fuzzer

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/isa"
)

// BenchmarkFuzz measures the fuzzing campaign at several worker counts; the
// serial (parallelism=1) case is the baseline the parallel cases are
// compared against in EXPERIMENTS.md.
func BenchmarkFuzz(b *testing.B) {
	legal := isa.Cleanup(isa.SpecAMDEpyc(1), isa.AMDEpycFeatures()).Legal
	cat := hpc.NewAMDEpyc7252Catalog(1)
	events := []*hpc.Event{
		cat.MustByName("RETIRED_UOPS"),
		cat.MustByName("LS_DISPATCH"),
		cat.MustByName("MAB_ALLOCATION_BY_PIPE"),
		cat.MustByName("DATA_CACHE_REFILLS_FROM_SYSTEM"),
	}
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := smallConfig(1)
			cfg.Parallelism = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f, err := New(legal, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := f.Fuzz(events); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
