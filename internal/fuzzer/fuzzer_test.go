package fuzzer

import (
	"errors"
	"testing"

	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/isa"
)

func legalAMD(t *testing.T) []isa.Variant {
	t.Helper()
	return isa.Cleanup(isa.SpecAMDEpyc(1), isa.AMDEpycFeatures()).Legal
}

func smallConfig(seed uint64) Config {
	cfg := DefaultConfig(seed)
	cfg.CandidatesPerEvent = 150
	return cfg
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, DefaultConfig(1)); !errors.Is(err, ErrNoLegalInstructions) {
		t.Errorf("empty legal list error = %v", err)
	}
}

func TestFuzzEventFindsGadgets(t *testing.T) {
	f, err := New(legalAMD(t), smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	cat := hpc.NewAMDEpyc7252Catalog(1)
	ev := cat.MustByName("RETIRED_UOPS")
	findings, tried, err := f.FuzzEvent(ev)
	if err != nil {
		t.Fatal(err)
	}
	if tried != 150 {
		t.Errorf("tried = %d, want 150", tried)
	}
	// Every instruction retires µops, but the λ2 constraint only accepts
	// gadgets whose trigger dominates the reset (e.g. 1-µop reset with a
	// CPUID/DIV trigger), so survivors are a small subset.
	if len(findings) < 2 {
		t.Errorf("found %d gadgets for RETIRED_UOPS, want >= 2", len(findings))
	}
	for _, fd := range findings {
		if fd.MedianDelta < 1 {
			t.Errorf("gadget %s has delta %v < MinDelta", fd.Gadget.Key(), fd.MedianDelta)
		}
	}
}

func TestFuzzEventCacheRefills(t *testing.T) {
	// DATA_CACHE_REFILLS_FROM_SYSTEM requires a flush-like reset and a
	// memory-touching trigger; confirmed gadgets must reflect that
	// mechanism rather than arbitrary pairs. Flush×load pairs are rare in
	// the random search, so this event needs a larger candidate budget.
	cfg := smallConfig(2)
	cfg.CandidatesPerEvent = 4000
	f, err := New(legalAMD(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := hpc.NewAMDEpyc7252Catalog(1)
	ev := cat.MustByName("DATA_CACHE_REFILLS_FROM_SYSTEM")
	findings, _, err := f.FuzzEvent(ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("no gadgets found for refill event")
	}
	for _, fd := range findings {
		resetFlushes := fd.Gadget.Reset.Class == isa.ClassFlush
		triggerFlushes := fd.Gadget.Trigger.Class == isa.ClassFlush
		if !resetFlushes && !triggerFlushes {
			t.Errorf("gadget %s perturbs refills without any flush", fd.Gadget.Key())
		}
	}
}

func TestRepeatedTriggersRejectsResetOnlyEffect(t *testing.T) {
	// A gadget whose "trigger" is a NOP cannot pass the λ2 constraint for
	// an event moved only by the reset.
	f, err := New(legalAMD(t), smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	cat := hpc.NewAMDEpyc7252Catalog(1)
	ev := cat.MustByName("RETIRED_UOPS")
	var load, nop isa.Variant
	for _, v := range legalAMD(t) {
		if v.Class == isa.ClassLoad && load.Mnemonic == "" {
			load = v
		}
		if v.Class == isa.ClassNop && v.Uops == 1 && nop.Mnemonic == "" {
			nop = v
		}
	}
	b := f.newBench(f.root.Split("test"), nil)
	// Reset = load (retires uops), trigger = nop (also retires, but the
	// cumulative hot path is NOT > λ2 × cold path).
	ok, err := b.repeatedTriggers(ev, Gadget{Reset: load, Trigger: nop}, f.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("reset-dominated gadget passed repeated-trigger confirmation")
	}
}

func TestFuzzCampaign(t *testing.T) {
	f, err := New(legalAMD(t), smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	cat := hpc.NewAMDEpyc7252Catalog(1)
	events := []*hpc.Event{
		cat.MustByName("RETIRED_UOPS"),
		cat.MustByName("LS_DISPATCH"),
		cat.MustByName("HW_CACHE_L1D:WRITE"),
		cat.MustByName("RETIRED_MMX_FP_INSTRUCTIONS:SSE_INSTR"),
	}
	res, err := f.Fuzz(events)
	if err != nil {
		t.Fatal(err)
	}
	if res.CandidatesTried != 4*150 {
		t.Errorf("tried = %d", res.CandidatesTried)
	}
	for _, e := range events {
		if len(res.Representatives[e.Name]) == 0 {
			t.Errorf("no representative gadgets for %s", e.Name)
		}
		best, ok := res.Best[e.Name]
		if !ok {
			t.Errorf("no best gadget for %s", e.Name)
			continue
		}
		// Representatives are deduplicated by cluster and sorted by
		// delta; the best gadget's delta is the maximum.
		reps := res.Representatives[e.Name]
		for i := 1; i < len(reps); i++ {
			if reps[i].MedianDelta > reps[i-1].MedianDelta {
				t.Errorf("%s representatives not sorted", e.Name)
			}
		}
		if len(reps) > 0 && reps[0].MedianDelta > best.MedianDelta {
			t.Errorf("%s best delta below representative", e.Name)
		}
	}
	if res.Timing.GenerateExec <= 0 {
		t.Error("no generation timing recorded")
	}
}

func TestFilterClusterDeduplication(t *testing.T) {
	ev := &hpc.Event{Name: "X"}
	mk := func(resetExt, trigExt isa.Extension, delta float64) Finding {
		return Finding{
			Gadget: Gadget{
				Reset:   isa.Variant{Mnemonic: "A", Extension: resetExt, Category: isa.CatCache},
				Trigger: isa.Variant{Mnemonic: "B", Extension: trigExt, Category: isa.CatMemory},
			},
			Event:       ev,
			MedianDelta: delta,
		}
	}
	findings := []Finding{
		mk(isa.ExtBase, isa.ExtSSE, 5),
		mk(isa.ExtBase, isa.ExtSSE, 9), // same cluster, stronger
		mk(isa.ExtCLFSH, isa.ExtSSE, 3),
	}
	reps, best := filter(findings)
	if len(reps) != 2 {
		t.Fatalf("representatives = %d, want 2 clusters", len(reps))
	}
	if reps[0].MedianDelta != 9 {
		t.Errorf("strongest representative delta = %v", reps[0].MedianDelta)
	}
	if best.MedianDelta != 9 {
		t.Errorf("best delta = %v", best.MedianDelta)
	}
}

func TestMinimalCover(t *testing.T) {
	f, err := New(legalAMD(t), smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	cat := hpc.NewAMDEpyc7252Catalog(1)
	events := []*hpc.Event{
		cat.MustByName("RETIRED_UOPS"),
		cat.MustByName("LS_DISPATCH"),
		cat.MustByName("MAB_ALLOCATION_BY_PIPE"),
		cat.MustByName("DATA_CACHE_REFILLS_FROM_SYSTEM"),
		cat.MustByName("HW_CACHE_L1D:WRITE"),
		cat.MustByName("RETIRED_INSTRUCTIONS"),
	}
	res, err := f.Fuzz(events)
	if err != nil {
		t.Fatal(err)
	}
	cover, err := f.MinimalCover(res, events)
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) == 0 {
		t.Fatal("empty cover")
	}
	// The cover must be far smaller than the event count would suggest
	// (the paper covers 137 events with 43 gadgets; here a handful of
	// gadgets cover all 6 events).
	if len(cover) > len(events) {
		t.Errorf("cover size %d exceeds event count %d", len(cover), len(events))
	}
	covered := map[string]bool{}
	for _, c := range cover {
		for _, name := range c.Covers {
			if covered[name] {
				t.Errorf("event %s covered twice in greedy accounting", name)
			}
			covered[name] = true
		}
	}
	// Events with confirmed gadgets must be covered.
	for _, e := range events {
		if len(res.Representatives[e.Name]) > 0 && !covered[e.Name] {
			t.Errorf("event %s has gadgets but is uncovered", e.Name)
		}
	}
	seg := StackSegment(cover)
	if len(seg) != 2*len(cover) {
		t.Errorf("stacked segment length = %d, want %d", len(seg), 2*len(cover))
	}
}

func TestFuzzErrors(t *testing.T) {
	f, err := New(legalAMD(t), smallConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Fuzz(nil); !errors.Is(err, ErrNoTargetEvents) {
		t.Errorf("empty events error = %v", err)
	}
	if _, _, err := f.FuzzEvent(nil); !errors.Is(err, ErrNoTargetEvents) {
		t.Errorf("nil event error = %v", err)
	}
	if _, err := f.MinimalCover(nil, nil); !errors.Is(err, ErrNoTargetEvents) {
		t.Errorf("nil cover error = %v", err)
	}
}

func TestFuzzDeterministic(t *testing.T) {
	cat := hpc.NewAMDEpyc7252Catalog(1)
	ev := cat.MustByName("LS_DISPATCH")
	run := func() int {
		f, err := New(legalAMD(t), smallConfig(7))
		if err != nil {
			t.Fatal(err)
		}
		findings, _, err := f.FuzzEvent(ev)
		if err != nil {
			t.Fatal(err)
		}
		return len(findings)
	}
	if run() != run() {
		t.Error("identical campaigns found different gadget counts")
	}
}

func TestFullCampaignHoursMatchesPaper(t *testing.T) {
	// Paper §VIII-B: Intel full run 9.3 h at 253,314 gadgets/s over 738
	// events; AMD ~2.2 h at 235,449/s over 137 events.
	intel := FullCampaignHours(3386, 738, 253314)
	if intel < 9.0 || intel > 9.6 {
		t.Errorf("intel campaign = %.2f h, want ~9.3", intel)
	}
	amd := FullCampaignHours(3407, 137, 235449)
	if amd < 1.7 || amd > 2.3 {
		t.Errorf("amd campaign = %.2f h, want ~1.9-2.2", amd)
	}
	if FullCampaignHours(100, 10, 0) != 0 {
		t.Error("zero throughput not handled")
	}
}

func TestResultGadgetsFor(t *testing.T) {
	f, err := New(legalAMD(t), smallConfig(80))
	if err != nil {
		t.Fatal(err)
	}
	cat := hpc.NewAMDEpyc7252Catalog(1)
	ev := cat.MustByName("LS_DISPATCH")
	res, err := f.Fuzz([]*hpc.Event{ev})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.GadgetsFor("LS_DISPATCH"); len(got) != len(res.Representatives["LS_DISPATCH"]) {
		t.Errorf("GadgetsFor returned %d, want %d", len(got), len(res.Representatives["LS_DISPATCH"]))
	}
	if got := res.GadgetsFor("MISSING"); got != nil {
		t.Errorf("missing event returned %v", got)
	}
}
