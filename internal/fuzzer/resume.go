// Code in this file is the fuzzer's artifact-store integration: campaign
// resume for per-event searches and persistence of the cross-event
// screening memo. Cached values are pure — findings are functions of
// (seed, legal list, event, campaign config) and signatures of (gadget,
// core config) — so a resumed campaign is byte-identical to a cold one
// (pinned by TestFuzzResumeByteIdentical). Failed events are never
// cached: an error must re-run.
package fuzzer

import (
	"sort"
	"strconv"

	"github.com/repro/aegis/internal/artifact"
	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/isa"
	"github.com/repro/aegis/internal/microarch"
	"github.com/repro/aegis/internal/telemetry"
)

// Fuzz artifact kinds: one findings artifact per (event, campaign
// config), one screening memo per (legal list, core config).
const (
	kindFuzzEvent  = "fuzz-event"
	kindScreenMemo = "screen-memo"
)

// Resume-skip funnel: per-event hit/miss counters for artifact-backed
// campaign shards.
var (
	mFuzzResumeHit = telemetry.C("fuzzer_resume_events_total",
		telemetry.L("outcome", "hit"))
	mFuzzResumeMiss = telemetry.C("fuzzer_resume_events_total",
		telemetry.L("outcome", "miss"))
)

// fpCore mixes the measurement core configuration into a fingerprint.
func fpCore(f *artifact.Fingerprint, c microarch.CoreConfig) {
	f.Int("core.l1d-sets", c.L1DSets).Int("core.l1d-ways", c.L1DWays)
	f.Int("core.l1i-sets", c.L1ISets).Int("core.l1i-ways", c.L1IWays)
	f.Int("core.l2-sets", c.L2Sets).Int("core.l2-ways", c.L2Ways)
	f.Int("core.line", c.LineSize).Int("core.tlb", c.TLBEntries)
	f.Int("core.predictor", c.PredictorEntries)
	f.Float("core.interrupt-rate", c.InterruptRate)
}

// fpEvent mixes an event's identity and formula into a fingerprint.
func fpEvent(f *artifact.Fingerprint, e *hpc.Event) {
	f.Int("event.id", e.ID).String("event.name", e.Name)
	f.Int("event.type", int(e.Type)).Bool("event.guest", e.GuestVisible)
	f.Float("event.noise", e.NoiseSigma).Int("event.terms", len(e.Terms))
	for _, t := range e.Terms {
		f.Int("term.signal", t.Signal).Float("term.weight", t.Weight)
	}
}

// fpVariant mixes one legal instruction variant into a fingerprint; every
// field that shapes execution or clustering participates.
func fpVariant(f *artifact.Fingerprint, v isa.Variant) {
	f.Int("var.id", v.ID).String("var.mnemonic", v.Mnemonic)
	f.String("var.operands", string(v.Operands))
	f.String("var.ext", string(v.Extension)).String("var.cat", string(v.Category))
	f.Int("var.class", int(v.Class)).Int("var.uops", v.Uops)
	f.Int("var.reads", v.MemReads).Int("var.writes", v.MemWrites)
	f.Bool("var.priv", v.Privileged).Bool("var.reserved", v.Reserved)
	f.Bool("var.pf", v.PageFaults)
}

// legalFP hashes the post-cleanup legal instruction list once per Fuzzer.
func (f *Fuzzer) legalFP() string {
	f.resumeOnce.Do(func() {
		fp := artifact.NewFingerprint("legal-list")
		fp.Int("len", len(f.legal))
		byID := make(map[int]isa.Variant, len(f.legal))
		for _, v := range f.legal {
			fpVariant(fp, v)
			byID[v.ID] = v
		}
		f.legalHash = fp.Sum()
		f.byID = byID
	})
	return f.legalHash
}

// variantByID resolves a stable variant ID back to the legal-list entry;
// artifacts store gadgets as ID pairs, never as serialized variants.
func (f *Fuzzer) variantByID(id int) (isa.Variant, bool) {
	f.legalFP()
	v, ok := f.byID[id]
	return v, ok
}

// eventFP addresses one event's findings artifact. Everything the search
// depends on participates: seed, legal list, event formula, campaign
// tunables, core and fault configuration.
func (f *Fuzzer) eventFP(e *hpc.Event) string {
	fp := artifact.NewFingerprint(kindFuzzEvent)
	fp.Uint64("seed", f.cfg.Seed).String("legal", f.legalFP())
	fp.Int("candidates", f.cfg.CandidatesPerEvent).Int("repeats", f.cfg.Repeats)
	fp.Float("lambda1", f.cfg.Lambda1).Float("lambda2", f.cfg.Lambda2)
	fp.Float("min-delta", f.cfg.MinDelta)
	fp.Bool("noise", f.cfg.MeasureNoise).Bool("no-confirm", f.cfg.DisableConfirmation)
	fpCore(fp, f.cfg.Core)
	fc := f.cfg.Faults
	fp.Uint64("faults.seed", fc.Seed)
	fp.Float("faults.read-err", fc.PMUReadErrorRate)
	fp.Float("faults.saturate", fc.CounterSaturationRate)
	fp.Float("faults.cap", fc.SaturationCap)
	fp.Float("faults.starve", fc.MultiplexStarvationRate)
	fp.Float("faults.preempt", fc.PreemptionRate)
	fp.Int("faults.burst", fc.PreemptionBurstTicks)
	fp.Float("faults.budget", fc.PreemptionBudgetFrac)
	fp.Float("faults.interrupt", fc.GadgetInterruptRate)
	fp.Float("faults.extreme", fc.DrawExtremeRate)
	fp.Float("faults.magnitude", fc.DrawExtremeMagnitude)
	fpEvent(fp, e)
	return fp.Sum()
}

// memoFP addresses the screening memo. Signatures are pure functions of
// (gadget, core config) and measured noise- and fault-free, so only the
// legal list and the core configuration participate — a memo survives
// seed and event-set changes, which is what makes incremental
// re-screening of a grown catalog cheap.
func (f *Fuzzer) memoFP() string {
	fp := artifact.NewFingerprint(kindScreenMemo)
	fp.String("legal", f.legalFP())
	fpCore(fp, f.cfg.Core)
	return fp.Sum()
}

// ArtifactUniverse returns every artifact fingerprint this fuzzer
// configuration would consult for the given target events (pass the full
// catalog to cover any selection), mapped to a human-readable label.
func (f *Fuzzer) ArtifactUniverse(events []*hpc.Event) map[string]string {
	out := make(map[string]string, 1+len(events))
	out[f.memoFP()] = kindScreenMemo
	for _, e := range events {
		if e == nil {
			continue
		}
		out[f.eventFP(e)] = kindFuzzEvent + " " + e.Name
	}
	return out
}

// loadEvent restores one event's confirmed findings and tried count.
func (f *Fuzzer) loadEvent(e *hpc.Event) ([]Finding, int, bool) {
	a, ok := f.cfg.Store.Get(kindFuzzEvent, f.eventFP(e))
	if !ok {
		return nil, 0, false
	}
	tried, err := strconv.Atoi(a.Meta["tried"])
	if err != nil {
		return nil, 0, false
	}
	rows := a.Section("findings")
	if rows == nil || len(rows)%3 != 0 {
		return nil, 0, false
	}
	var findings []Finding
	for off := 0; off < len(rows); off += 3 {
		reset, ok1 := f.variantByID(int(rows[off]))
		trigger, ok2 := f.variantByID(int(rows[off+1]))
		if !ok1 || !ok2 {
			return nil, 0, false // legal list drifted under a stale store
		}
		findings = append(findings, Finding{
			Gadget:      Gadget{Reset: reset, Trigger: trigger},
			Event:       e,
			MedianDelta: rows[off+2],
		})
	}
	return findings, tried, true
}

// storeEvent checkpoints one event's search outcome as dense [reset ID,
// trigger ID, median delta] rows.
func (f *Fuzzer) storeEvent(e *hpc.Event, findings []Finding, tried int) {
	a := artifact.New(kindFuzzEvent, f.eventFP(e))
	a.SetMeta("event", e.Name)
	a.SetMeta("tried", strconv.Itoa(tried))
	rows := make([]float64, 0, 3*len(findings))
	for _, fd := range findings {
		rows = append(rows,
			float64(fd.Gadget.Reset.ID), float64(fd.Gadget.Trigger.ID), fd.MedianDelta)
	}
	a.AddSection("findings", rows)
	f.putArtifact(a)
}

// loadMemo seeds the screening memo from a stored artifact. Preloading
// only ever adds pure values a fresh run would recompute identically.
func (f *Fuzzer) loadMemo() {
	a, ok := f.cfg.Store.Get(kindScreenMemo, f.memoFP())
	if !ok {
		return
	}
	ids := a.Section("ids")
	cold := a.Section("cold")
	warm := a.Section("warm")
	total := a.Section("total")
	n := len(ids) / 2
	sig := microarch.NumSignals
	if len(ids)%2 != 0 || len(cold) != n*sig || len(warm) != n*sig || len(total) != n*sig {
		return // mis-shaped memo: ignore, the campaign rebuilds it
	}
	for i := 0; i < n; i++ {
		id := gadgetID{int(ids[2*i]), int(ids[2*i+1])}
		f.memo.store(id, gadgetSig{
			cold:  cold[i*sig : (i+1)*sig : (i+1)*sig],
			warm:  warm[i*sig : (i+1)*sig : (i+1)*sig],
			total: total[i*sig : (i+1)*sig : (i+1)*sig],
		})
	}
}

// storeMemo checkpoints the screening memo, gadget-ID sorted so the
// artifact bytes are independent of memo insertion order.
func (f *Fuzzer) storeMemo() {
	ids, sigs := f.memo.snapshot()
	a := artifact.New(kindScreenMemo, f.memoFP())
	a.SetMeta("gadgets", strconv.Itoa(len(ids)))
	sig := microarch.NumSignals
	idRows := make([]float64, 0, 2*len(ids))
	cold := make([]float64, 0, len(ids)*sig)
	warm := make([]float64, 0, len(ids)*sig)
	total := make([]float64, 0, len(ids)*sig)
	for i, id := range ids {
		idRows = append(idRows, float64(id[0]), float64(id[1]))
		cold = append(cold, sigs[i].cold...)
		warm = append(warm, sigs[i].warm...)
		total = append(total, sigs[i].total...)
	}
	a.AddSection("ids", idRows)
	a.AddSection("cold", cold)
	a.AddSection("warm", warm)
	a.AddSection("total", total)
	f.putArtifact(a)
}

// snapshot returns the memo's signatures in gadget-ID order.
func (m *screenMemo) snapshot() ([]gadgetID, []gadgetSig) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]gadgetID, 0, len(m.sigs))
	for id := range m.sigs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i][0] != ids[j][0] {
			return ids[i][0] < ids[j][0]
		}
		return ids[i][1] < ids[j][1]
	})
	sigs := make([]gadgetSig, len(ids))
	for i, id := range ids {
		sigs[i] = m.sigs[id]
	}
	return ids, sigs
}

// putArtifact writes a checkpoint; a failed write degrades resume, never
// the campaign, so it is logged and dropped.
func (f *Fuzzer) putArtifact(a *artifact.Artifact) {
	if err := f.cfg.Store.Put(a); err != nil {
		telemetry.Log().Warn("fuzzer: artifact checkpoint failed",
			telemetry.F("kind", a.Kind), telemetry.F("error", err.Error()))
	}
}
