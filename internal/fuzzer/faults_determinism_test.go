package fuzzer

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"github.com/repro/aegis/internal/faultinject"
	"github.com/repro/aegis/internal/hpc"
)

// TestFaultedFuzzDeterministicAcrossParallelism extends the determinism
// regression to the fault layer: campaigns under light and heavy fault
// presets must produce byte-identical Results (including which candidates
// were dropped and which events skipped) at parallelism 1, 4 and
// GOMAXPROCS — fault schedules are derived from (event, site) labels, not
// from worker interleaving.
func TestFaultedFuzzDeterministicAcrossParallelism(t *testing.T) {
	cat := hpc.NewAMDEpyc7252Catalog(1)
	events := []*hpc.Event{
		cat.MustByName("RETIRED_UOPS"),
		cat.MustByName("LS_DISPATCH"),
		cat.MustByName("HW_CACHE_L1D:WRITE"),
		cat.MustByName("MAB_ALLOCATION_BY_PIPE"),
	}
	for _, preset := range []string{faultinject.PresetLight, faultinject.PresetHeavy} {
		preset := preset
		t.Run(preset, func(t *testing.T) {
			run := func(parallelism int) string {
				cfg := smallConfig(42)
				cfg.Parallelism = parallelism
				faults, err := faultinject.Preset(preset, 42)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Faults = faults
				f, err := New(legalAMD(t), cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := f.Fuzz(events)
				if res == nil {
					t.Fatalf("faulted campaign dropped all results: %v", err)
				}
				cover, cerr := f.MinimalCover(res, events)
				if cerr != nil {
					t.Fatal(cerr)
				}
				fp := fingerprintResult(res, events)
				for _, c := range cover {
					fp += fmt.Sprintf("cover %s -> %s\n", c.Finding.Gadget.Key(), strings.Join(c.Covers, ","))
				}
				if err != nil {
					fp += "err " + err.Error() + "\n"
				}
				return fp
			}
			serial := run(1)
			for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
				if got := run(w); got != serial {
					t.Errorf("faulted campaign (%s) at parallelism %d differs from serial run", preset, w)
				}
			}
		})
	}
}

// TestFaultInjectionCountsReplay: the injector's per-kind totals are part
// of the deterministic contract too — identical campaigns must inject
// identical fault counts.
func TestFaultInjectionCountsReplay(t *testing.T) {
	cat := hpc.NewAMDEpyc7252Catalog(1)
	events := []*hpc.Event{cat.MustByName("RETIRED_UOPS"), cat.MustByName("LS_DISPATCH")}
	run := func(parallelism int) map[faultinject.Kind]uint64 {
		cfg := smallConfig(43)
		cfg.Parallelism = parallelism
		faults, err := faultinject.Preset(faultinject.PresetHeavy, 43)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = faults
		f, err := New(legalAMD(t), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Fuzz(events); err != nil && f.faults.Total() == 0 {
			t.Fatalf("campaign failed without any fault injected: %v", err)
		}
		out := map[faultinject.Kind]uint64{}
		for _, k := range faultinject.Kinds() {
			out[k] = f.faults.Count(k)
		}
		return out
	}
	a, b, c := run(1), run(1), run(4)
	for _, k := range faultinject.Kinds() {
		if a[k] != b[k] {
			t.Errorf("kind %s: counts differ across identical runs: %d vs %d", k, a[k], b[k])
		}
		if a[k] != c[k] {
			t.Errorf("kind %s: counts differ across parallelism: %d vs %d", k, a[k], c[k])
		}
	}
	if a[faultinject.KindPMURead] == 0 {
		t.Error("heavy preset injected no PMU read faults")
	}
}
