package fuzzer

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"github.com/repro/aegis/internal/artifact"
	"github.com/repro/aegis/internal/faultinject"
	"github.com/repro/aegis/internal/hpc"
)

func resumeEvents(cat *hpc.Catalog) []*hpc.Event {
	return []*hpc.Event{
		cat.MustByName("RETIRED_UOPS"),
		cat.MustByName("LS_DISPATCH"),
		cat.MustByName("MAB_ALLOCATION_BY_PIPE"),
		cat.MustByName("DATA_CACHE_REFILLS_FROM_SYSTEM"),
	}
}

// campaignFingerprint runs Fuzz + MinimalCover and serialises everything
// observable, bit-exact.
func campaignFingerprint(t *testing.T, f *Fuzzer, events []*hpc.Event) string {
	t.Helper()
	res, err := f.Fuzz(events)
	if res == nil {
		t.Fatal(err)
	}
	cover, err := f.MinimalCover(res, events)
	if err != nil {
		t.Fatal(err)
	}
	fp := fingerprintResult(res, events)
	for _, c := range cover {
		fp += fmt.Sprintf("cover %s -> %s\n", c.Finding.Gadget.Key(), strings.Join(c.Covers, ","))
	}
	return fp
}

// TestFuzzResumeByteIdentical pins the campaign-resume contract: a cold
// store-less campaign, a partial campaign killed after K events, and a
// resumed full campaign against the partial campaign's store must produce
// byte-identical Results and covers — at parallelism 1, 4 and GOMAXPROCS
// — and the resumed run must re-fuzz only the unfinished events.
func TestFuzzResumeByteIdentical(t *testing.T) {
	cat := hpc.NewAMDEpyc7252Catalog(1)
	events := resumeEvents(cat)
	legal := legalAMD(t)
	const kill = 2 // the partial campaign dies after K=2 events

	coldCfg := smallConfig(51)
	coldCfg.Parallelism = 1
	fCold, err := New(legal, coldCfg)
	if err != nil {
		t.Fatal(err)
	}
	want := campaignFingerprint(t, fCold, events)

	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		store, err := artifact.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		cfg := smallConfig(51)
		cfg.Parallelism = w
		cfg.Store = store
		fPart, err := New(legal, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fPart.Fuzz(events[:kill]); err != nil {
			t.Fatal(err)
		}

		hit0, miss0 := mFuzzResumeHit.Value(), mFuzzResumeMiss.Value()
		fRes, err := New(legal, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := campaignFingerprint(t, fRes, events); got != want {
			t.Errorf("parallelism %d: resumed campaign differs from cold run", w)
		}
		if hits := mFuzzResumeHit.Value() - hit0; hits != kill {
			t.Errorf("parallelism %d: event hits = %v, want %d", w, hits, kill)
		}
		if misses := mFuzzResumeMiss.Value() - miss0; misses != float64(len(events)-kill) {
			t.Errorf("parallelism %d: event misses = %v, want %d", w, misses, len(events)-kill)
		}
	}
}

// TestFuzzResumeFaulted runs the resume contract on a faulted substrate
// (the light preset): fault schedules derive from (Seed, labels), so a
// resumed campaign must match a cold faulted campaign byte for byte, and
// failed events must never be served from the store.
func TestFuzzResumeFaulted(t *testing.T) {
	cat := hpc.NewAMDEpyc7252Catalog(1)
	events := resumeEvents(cat)
	legal := legalAMD(t)
	faults, err := faultinject.Preset(faultinject.PresetLight, 7)
	if err != nil {
		t.Fatal(err)
	}

	coldCfg := smallConfig(52)
	coldCfg.Parallelism = 1
	coldCfg.Faults = faults
	fCold, err := New(legal, coldCfg)
	if err != nil {
		t.Fatal(err)
	}
	want := campaignFingerprint(t, fCold, events)

	store, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(52)
	cfg.Parallelism = 4
	cfg.Faults = faults
	cfg.Store = store
	fPart, err := New(legal, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := fPart.Fuzz(events[:2]); res == nil {
		t.Fatal(err)
	}
	fRes, err := New(legal, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := campaignFingerprint(t, fRes, events); got != want {
		t.Error("faulted resumed campaign differs from cold faulted run")
	}
}

// TestFuzzResumeStaleConfigMisses: any campaign-config delta must change
// the fingerprint and bypass the cached findings.
func TestFuzzResumeStaleConfigMisses(t *testing.T) {
	cat := hpc.NewAMDEpyc7252Catalog(1)
	events := resumeEvents(cat)[:1]
	legal := legalAMD(t)
	store, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(53)
	cfg.Store = store
	f1, err := New(legal, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f1.Fuzz(events); err != nil {
		t.Fatal(err)
	}
	stale := cfg
	stale.CandidatesPerEvent += 25
	f2, err := New(legal, stale)
	if err != nil {
		t.Fatal(err)
	}
	miss0 := mFuzzResumeMiss.Value()
	if _, err := f2.Fuzz(events); err != nil {
		t.Fatal(err)
	}
	if mFuzzResumeMiss.Value()-miss0 != 1 {
		t.Error("changed campaign config resumed from a stale artifact")
	}
}
