package fuzzer

import (
	"errors"
	"testing"

	"github.com/repro/aegis/internal/hpc"
)

func TestSeqGadgetKeyAndSequence(t *testing.T) {
	legal := legalAMD(t)
	g := SeqGadget{Reset: legal[:2], Trigger: legal[2:4]}
	if len(g.Sequence()) != 4 {
		t.Fatalf("sequence len = %d", len(g.Sequence()))
	}
	g2 := SeqGadget{Reset: legal[:2], Trigger: legal[4:6]}
	if g.Key() == g2.Key() {
		t.Error("distinct gadgets share a key")
	}
}

func TestFuzzEventSequencesSingleMatchesGrammar(t *testing.T) {
	f, err := New(legalAMD(t), smallConfig(40))
	if err != nil {
		t.Fatal(err)
	}
	cat := hpc.NewAMDEpyc7252Catalog(1)
	ev := cat.MustByName("LS_DISPATCH")
	findings, tried, err := f.FuzzEventSequences(ev, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tried != f.cfg.CandidatesPerEvent {
		t.Errorf("tried = %d", tried)
	}
	for _, fd := range findings {
		if len(fd.Gadget.Reset) != 1 || len(fd.Gadget.Trigger) != 1 {
			t.Fatalf("seqLen=1 produced lengths %d/%d",
				len(fd.Gadget.Reset), len(fd.Gadget.Trigger))
		}
		if fd.MedianDelta < f.cfg.MinDelta {
			t.Errorf("finding below MinDelta: %v", fd.MedianDelta)
		}
	}
}

func TestFuzzEventSequencesLongerGadgetsStrongerDeltas(t *testing.T) {
	// The point of multi-instruction gadgets: more trigger instructions
	// per gadget can move counters further per execution.
	cfg := smallConfig(41)
	cfg.CandidatesPerEvent = 400
	f, err := New(legalAMD(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := hpc.NewAMDEpyc7252Catalog(1)
	ev := cat.MustByName("LS_DISPATCH")
	best, err := f.BestSequenceDelta(ev, 3)
	if err != nil {
		t.Fatal(err)
	}
	if best[1] <= 0 {
		t.Skip("no single-instruction gadget at this budget")
	}
	if best[3] < best[1] {
		t.Errorf("len-3 best delta %v below len-1 %v", best[3], best[1])
	}
}

func TestFuzzEventSequencesValidation(t *testing.T) {
	f, err := New(legalAMD(t), smallConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.FuzzEventSequences(nil, 2); !errors.Is(err, ErrNoTargetEvents) {
		t.Errorf("nil event error = %v", err)
	}
	// Non-positive length clamps to 1.
	cat := hpc.NewAMDEpyc7252Catalog(1)
	if _, _, err := f.FuzzEventSequences(cat.MustByName("RETIRED_UOPS"), 0); err != nil {
		t.Errorf("seqLen=0 errored: %v", err)
	}
}

func TestFuzzEventSequencesDisableConfirmation(t *testing.T) {
	cfg := smallConfig(43)
	cfg.DisableConfirmation = true
	f, err := New(legalAMD(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat := hpc.NewAMDEpyc7252Catalog(1)
	raw, _, err := f.FuzzEventSequences(cat.MustByName("RETIRED_UOPS"), 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := smallConfig(43)
	f2, err := New(legalAMD(t), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	confirmed, _, err := f2.FuzzEventSequences(cat.MustByName("RETIRED_UOPS"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(confirmed) > len(raw) {
		t.Errorf("confirmation added findings: %d > %d", len(confirmed), len(raw))
	}
}
