package fuzzer

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"

	"github.com/repro/aegis/internal/hpc"
)

// fingerprintResult serialises every observable part of a campaign Result —
// gadget keys, bit-exact deltas, representative ordering, best gadgets,
// skip records, candidate counts — so two runs can be compared for byte
// identity.
func fingerprintResult(res *Result, events []*hpc.Event) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "tried=%d\n", res.CandidatesTried)
	for _, e := range events {
		if e == nil {
			continue
		}
		fmt.Fprintf(&sb, "event %s\n", e.Name)
		for _, fd := range res.PerEvent[e.Name] {
			fmt.Fprintf(&sb, "  finding %s delta=%x\n", fd.Gadget.Key(), math.Float64bits(fd.MedianDelta))
		}
		for _, fd := range res.Representatives[e.Name] {
			fmt.Fprintf(&sb, "  rep %s delta=%x\n", fd.Gadget.Key(), math.Float64bits(fd.MedianDelta))
		}
		if best, ok := res.Best[e.Name]; ok {
			fmt.Fprintf(&sb, "  best %s delta=%x\n", best.Gadget.Key(), math.Float64bits(best.MedianDelta))
		}
	}
	for _, sk := range res.Skipped {
		fmt.Fprintf(&sb, "skipped %s\n", sk.Event)
	}
	return sb.String()
}

// TestFuzzDeterministicAcrossParallelism is the determinism regression
// test of the campaign fan-out: parallelism 1, 4 and GOMAXPROCS must
// produce byte-identical Results (same gadgets, same bit-exact deltas,
// same ordering).
func TestFuzzDeterministicAcrossParallelism(t *testing.T) {
	cat := hpc.NewAMDEpyc7252Catalog(1)
	events := []*hpc.Event{
		cat.MustByName("RETIRED_UOPS"),
		cat.MustByName("LS_DISPATCH"),
		cat.MustByName("HW_CACHE_L1D:WRITE"),
		cat.MustByName("MAB_ALLOCATION_BY_PIPE"),
		cat.MustByName("DATA_CACHE_REFILLS_FROM_SYSTEM"),
		cat.MustByName("RETIRED_INSTRUCTIONS"),
	}
	run := func(parallelism int) string {
		cfg := smallConfig(42)
		cfg.Parallelism = parallelism
		f, err := New(legalAMD(t), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Fuzz(events)
		if err != nil {
			t.Fatal(err)
		}
		// MinimalCover must be deterministic too: it reuses the shared
		// screening memo and its own fan-out.
		cover, err := f.MinimalCover(res, events)
		if err != nil {
			t.Fatal(err)
		}
		fp := fingerprintResult(res, events)
		for _, c := range cover {
			fp += fmt.Sprintf("cover %s -> %s\n", c.Finding.Gadget.Key(), strings.Join(c.Covers, ","))
		}
		return fp
	}
	serial := run(1)
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := run(w); got != serial {
			t.Errorf("campaign at parallelism %d differs from serial run", w)
		}
	}
}

// TestFuzzSkipsFailingEvent exercises the partial-result contract: one
// failing event must not abort the campaign — it is skipped, recorded, and
// the error wraps the per-event failure while the other events' findings
// are fully reported.
func TestFuzzSkipsFailingEvent(t *testing.T) {
	f, err := New(legalAMD(t), smallConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	cat := hpc.NewAMDEpyc7252Catalog(1)
	good1 := cat.MustByName("RETIRED_UOPS")
	good2 := cat.MustByName("LS_DISPATCH")
	res, err := f.Fuzz([]*hpc.Event{good1, nil, good2})
	if err == nil {
		t.Fatal("campaign with a failing event returned nil error")
	}
	if !errors.Is(err, ErrNoTargetEvents) {
		t.Errorf("error does not wrap the event failure: %v", err)
	}
	if res == nil {
		t.Fatal("campaign with a failing event dropped its partial results")
	}
	if len(res.Skipped) != 1 || res.Skipped[0].Event != "event[1]" {
		t.Errorf("Skipped = %+v, want one entry for event[1]", res.Skipped)
	}
	if !errors.Is(res.Skipped[0].Err, ErrNoTargetEvents) {
		t.Errorf("skip record error = %v", res.Skipped[0].Err)
	}
	for _, e := range []*hpc.Event{good1, good2} {
		if _, ok := res.PerEvent[e.Name]; !ok {
			t.Errorf("healthy event %s missing from partial results", e.Name)
		}
	}
	if res.CandidatesTried != 2*150 {
		t.Errorf("tried = %d, want %d", res.CandidatesTried, 2*150)
	}
}

// TestFuzzAllEventsFailing: when every event fails there are no partial
// results to report and Fuzz returns a wrapped error alone.
func TestFuzzAllEventsFailing(t *testing.T) {
	f, err := New(legalAMD(t), smallConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Fuzz([]*hpc.Event{nil, nil})
	if err == nil || res != nil {
		t.Fatalf("all-failing campaign = (%v, %v), want nil result and error", res, err)
	}
	if !errors.Is(err, ErrNoTargetEvents) {
		t.Errorf("error does not wrap the per-event failures: %v", err)
	}
}

// TestSignatureMemoIsPure: the cross-event screening memo must return
// exactly what recomputation would, and hit on the second request.
func TestSignatureMemoIsPure(t *testing.T) {
	legal := legalAMD(t)
	f1, err := New(legal, smallConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := New(legal, smallConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	g := Gadget{Reset: legal[0], Trigger: legal[1]}
	sigA, err := f1.signature(g)
	if err != nil {
		t.Fatal(err)
	}
	sigB, err := f1.signature(g) // memo hit
	if err != nil {
		t.Fatal(err)
	}
	sigC, err := f2.signature(g) // fresh fuzzer, recomputed
	if err != nil {
		t.Fatal(err)
	}
	for i := range sigA.total {
		if sigA.total[i] != sigB.total[i] || sigA.total[i] != sigC.total[i] ||
			sigA.cold[i] != sigC.cold[i] || sigA.warm[i] != sigC.warm[i] {
			t.Fatalf("signature not pure at signal %d", i)
		}
	}
	if _, ok := f1.memo.lookup(g.id()); !ok {
		t.Error("signature not cached under its gadget ID")
	}
}
