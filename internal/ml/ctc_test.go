package ml

import (
	"math"
	"testing"

	"github.com/repro/aegis/internal/rng"
)

// logitsFor builds logits strongly favouring the given internal symbol path.
func logitsFor(path []int, classes int) [][]float64 {
	out := make([][]float64, len(path))
	for t, sym := range path {
		row := make([]float64, classes+1)
		for k := range row {
			row[k] = -5
		}
		row[sym] = 5
		out[t] = row
	}
	return out
}

func TestGreedyCTCDecode(t *testing.T) {
	// Internal path: blank, a, a, blank, b -> external [a-1, b-1].
	logits := logitsFor([]int{0, 1, 1, 0, 2}, 3)
	got := GreedyCTCDecode(logits)
	want := []int{0, 1}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("decode = %v, want %v", got, want)
	}
}

func TestGreedyCTCCollapsesWithoutBlank(t *testing.T) {
	logits := logitsFor([]int{1, 1, 1}, 2)
	got := GreedyCTCDecode(logits)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("decode = %v, want [0]", got)
	}
}

func TestGreedyCTCRepeatsWithBlank(t *testing.T) {
	logits := logitsFor([]int{1, 0, 1}, 2)
	got := GreedyCTCDecode(logits)
	if len(got) != 2 || got[0] != 0 || got[1] != 0 {
		t.Errorf("decode = %v, want [0 0]", got)
	}
}

func TestCTCLossLowForMatchingPath(t *testing.T) {
	classes := 3
	matching := logitsFor([]int{1, 0, 2}, classes) // external [0, 1]
	lossGood, err := CTCLoss(matching, []int{0, 1}, classes)
	if err != nil {
		t.Fatal(err)
	}
	lossBad, err := CTCLoss(matching, []int{2, 2}, classes)
	if err != nil {
		t.Fatal(err)
	}
	if lossGood >= lossBad {
		t.Errorf("matching loss %v >= mismatching loss %v", lossGood, lossBad)
	}
	if lossGood > 0.5 {
		t.Errorf("matching loss = %v, want small", lossGood)
	}
}

func TestCTCLossErrors(t *testing.T) {
	if _, err := CTCLoss(nil, []int{0}, 2); err == nil {
		t.Error("empty logits accepted")
	}
	logits := logitsFor([]int{1}, 2)
	if _, err := CTCLoss(logits, []int{0, 1}, 2); err == nil {
		t.Error("label longer than sequence accepted")
	}
	if _, err := CTCLoss(logits, []int{7}, 2); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestCTCGradientNumerical(t *testing.T) {
	// Finite-difference check of the CTC gradient on a small random case.
	r := rng.New(7)
	T, classes := 6, 3
	logits := make([][]float64, T)
	for t := range logits {
		row := make([]float64, classes+1)
		for k := range row {
			row[k] = r.Gaussian(0, 1)
		}
		logits[t] = row
	}
	label := []int{0, 2, 1}
	_, grad, err := ctcLossGrad(logits, label, classes)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-6
	for _, probe := range []struct{ t, k int }{{0, 0}, {2, 1}, {3, 3}, {5, 2}} {
		orig := logits[probe.t][probe.k]
		logits[probe.t][probe.k] = orig + eps
		lp, err := CTCLoss(logits, label, classes)
		if err != nil {
			t.Fatal(err)
		}
		logits[probe.t][probe.k] = orig - eps
		lm, err := CTCLoss(logits, label, classes)
		if err != nil {
			t.Fatal(err)
		}
		logits[probe.t][probe.k] = orig
		numeric := (lp - lm) / (2 * eps)
		analytic := grad[probe.t][probe.k]
		if math.Abs(numeric-analytic) > 1e-4 {
			t.Errorf("grad[%d][%d]: numeric %v vs analytic %v", probe.t, probe.k, numeric, analytic)
		}
	}
}

func TestBeamCTCDecodeMatchesGreedyOnPeakedLogits(t *testing.T) {
	logits := logitsFor([]int{0, 1, 0, 2, 2, 0, 3}, 3)
	greedy := GreedyCTCDecode(logits)
	beam := BeamCTCDecode(logits, 4)
	if len(greedy) != len(beam) {
		t.Fatalf("greedy %v vs beam %v", greedy, beam)
	}
	for i := range greedy {
		if greedy[i] != beam[i] {
			t.Fatalf("greedy %v vs beam %v", greedy, beam)
		}
	}
}

func TestBeamCTCDecodeWidthOneIsGreedy(t *testing.T) {
	logits := logitsFor([]int{1, 0, 2}, 2)
	a := BeamCTCDecode(logits, 1)
	b := GreedyCTCDecode(logits)
	if len(a) != len(b) {
		t.Fatalf("width-1 beam %v != greedy %v", a, b)
	}
}

func TestBeamCTCBeatsGreedyOnAmbiguousCase(t *testing.T) {
	// Classic case where best-path (greedy) and best-labelling differ:
	// two timesteps where blank is the argmax each step, but the summed
	// probability of label "a" across alignments exceeds the blank path.
	// P(blank)=0.4, P(a)=0.6 split would make a trivially win; use
	// per-step argmax blank: p = [0.5, 0.4, 0.1] over [blank, a, b].
	row := []float64{math.Log(0.5), math.Log(0.4), math.Log(0.1)}
	logits := [][]float64{row, row}
	greedy := GreedyCTCDecode(logits)
	if len(greedy) != 0 {
		t.Fatalf("greedy = %v, want empty (blank argmax)", greedy)
	}
	beam := BeamCTCDecode(logits, 8)
	// P(empty) = 0.25; P("a") = 0.4*0.4 + 0.4*0.5 + 0.5*0.4 = 0.56.
	if len(beam) != 1 || beam[0] != 0 {
		t.Errorf("beam = %v, want [0]", beam)
	}
}

func TestBiGRULearnsSimpleSequences(t *testing.T) {
	// Two sequence classes with distinct segment signatures; the GRU+CTC
	// must learn to transcribe segment order.
	r := rng.New(11)
	classes := 2
	mk := func(label []int) ([][]float64, []int) {
		var xs [][]float64
		for _, sym := range label {
			for i := 0; i < 4; i++ {
				row := make([]float64, 3)
				row[sym] = 1 + r.Gaussian(0, 0.1)
				row[2] = r.Gaussian(0, 0.1)
				xs = append(xs, row)
			}
		}
		return xs, label
	}
	labels := [][]int{{0, 1}, {1, 0}, {0, 0}, {1, 1}, {0, 1, 0}, {1, 0, 1}}
	cfg := DefaultGRUConfig(3, classes)
	cfg.Hidden = 12
	cfg.LR = 0.05
	m, err := NewBiGRUCTC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var lastLoss float64
	for epoch := 0; epoch < 150; epoch++ {
		lastLoss = 0
		for _, lab := range labels {
			xs, y := mk(lab)
			loss, err := m.TrainStep(xs, y)
			if err != nil {
				t.Fatal(err)
			}
			lastLoss += loss
		}
	}
	if math.IsNaN(lastLoss) {
		t.Fatal("training diverged to NaN")
	}
	correct := 0
	for _, lab := range labels {
		xs, y := mk(lab)
		pred, err := m.Decode(xs)
		if err != nil {
			t.Fatal(err)
		}
		if SequenceAccuracy(pred, y) >= 0.99 {
			correct++
		}
	}
	if correct < len(labels)-1 {
		t.Errorf("GRU decoded %d/%d training sequences correctly", correct, len(labels))
	}
}

func TestBiGRUConfigValidation(t *testing.T) {
	if _, err := NewBiGRUCTC(GRUConfig{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestBiGRUShapeErrors(t *testing.T) {
	m, err := NewBiGRUCTC(DefaultGRUConfig(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Logits(nil); err == nil {
		t.Error("empty sequence accepted")
	}
	if _, err := m.Logits([][]float64{{1, 2}}); err == nil {
		t.Error("wrong input dim accepted")
	}
}

func TestBiGRUDecodeBeam(t *testing.T) {
	m, err := NewBiGRUCTC(DefaultGRUConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	xs := [][]float64{{1, 0}, {0, 1}, {1, 0}}
	if _, err := m.DecodeBeam(xs, 4); err != nil {
		t.Fatal(err)
	}
}
