package ml

import (
	"errors"
	"math"
	"testing"

	"github.com/repro/aegis/internal/rng"
)

// blobs generates an easily separable n-class dataset.
func blobs(r *rng.Source, classes, perClass, dim int, sep float64) (xs [][]float64, ys []int) {
	for c := 0; c < classes; c++ {
		center := make([]float64, dim)
		for j := range center {
			center[j] = r.Gaussian(0, sep)
		}
		for i := 0; i < perClass; i++ {
			x := make([]float64, dim)
			for j := range x {
				x[j] = center[j] + r.Gaussian(0, 1)
			}
			xs = append(xs, x)
			ys = append(ys, c)
		}
	}
	return xs, ys
}

func TestMLPLearnsBlobs(t *testing.T) {
	r := rng.New(1)
	xs, ys := blobs(r, 5, 40, 10, 6)
	vx, vy := blobs(r, 5, 0, 10, 6) // empty val: exercise nil path
	_ = vx
	_ = vy

	cfg := DefaultMLPConfig(10, 5)
	m, err := NewMLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := m.Train(xs, ys, 20, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	final := stats[len(stats)-1]
	if final.TrainAcc < 0.9 {
		t.Errorf("final train accuracy = %v, want > 0.9", final.TrainAcc)
	}
	if final.TrainLoss >= stats[0].TrainLoss {
		t.Errorf("loss did not decrease: %v -> %v", stats[0].TrainLoss, final.TrainLoss)
	}
}

func TestMLPGeneralises(t *testing.T) {
	r := rng.New(2)
	allX, allY := blobs(r, 4, 70, 8, 8)
	// Per-class contiguous blocks: first 50 of each class train, rest val.
	var xs, valXs [][]float64
	var ys, valYs []int
	for c := 0; c < 4; c++ {
		base := c * 70
		xs = append(xs, allX[base:base+50]...)
		ys = append(ys, allY[base:base+50]...)
		valXs = append(valXs, allX[base+50:base+70]...)
		valYs = append(valYs, allY[base+50:base+70]...)
	}

	m, err := NewMLP(DefaultMLPConfig(8, 4))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := m.Train(xs, ys, 15, valXs, valYs)
	if err != nil {
		t.Fatal(err)
	}
	if stats[len(stats)-1].ValAcc < 0.85 {
		t.Errorf("val accuracy = %v, want > 0.85", stats[len(stats)-1].ValAcc)
	}
}

func TestMLPPredictAndProba(t *testing.T) {
	r := rng.New(3)
	xs, ys := blobs(r, 3, 30, 6, 7)
	m, err := NewMLP(DefaultMLPConfig(6, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(xs, ys, 15, nil, nil); err != nil {
		t.Fatal(err)
	}
	p, err := m.Proba(xs[0])
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range p {
		if v < 0 {
			t.Errorf("negative probability %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
	if _, err := m.Predict(make([]float64, 3)); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("wrong-shape predict error = %v", err)
	}
}

func TestMLPConfigValidation(t *testing.T) {
	if _, err := NewMLP(MLPConfig{Layers: []int{5}}); err == nil {
		t.Error("single layer accepted")
	}
	if _, err := NewMLP(MLPConfig{Layers: []int{5, 0}}); err == nil {
		t.Error("zero-width layer accepted")
	}
}

func TestMLPTrainErrors(t *testing.T) {
	m, err := NewMLP(DefaultMLPConfig(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(nil, nil, 1, nil, nil); !errors.Is(err, ErrNoTrainingData) {
		t.Errorf("empty train error = %v", err)
	}
	if _, err := m.Train([][]float64{{1, 2, 3, 4}}, []int{0, 1}, 1, nil, nil); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("mismatched labels error = %v", err)
	}
	if _, err := m.Train([][]float64{{1}}, []int{0}, 1, nil, nil); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("wrong feature dim error = %v", err)
	}
}

func TestMLPDeterministicTraining(t *testing.T) {
	r := rng.New(4)
	xs, ys := blobs(r, 3, 20, 5, 6)
	train := func() float64 {
		m, err := NewMLP(DefaultMLPConfig(5, 3))
		if err != nil {
			t.Fatal(err)
		}
		stats, err := m.Train(xs, ys, 5, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return stats[len(stats)-1].TrainLoss
	}
	if train() != train() {
		t.Error("identical configs trained to different losses")
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax([]float64{1, 2, 3})
	if Argmax(p) != 2 {
		t.Error("softmax argmax wrong")
	}
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("softmax sum = %v", sum)
	}
	// Large logits must not overflow.
	p = Softmax([]float64{1000, 1000})
	if math.IsNaN(p[0]) || math.Abs(p[0]-0.5) > 1e-9 {
		t.Errorf("softmax overflow: %v", p)
	}
}

func TestLogSoftmaxConsistent(t *testing.T) {
	logits := []float64{0.5, -1, 2, 0}
	ls := LogSoftmax(logits)
	p := Softmax(logits)
	for i := range p {
		if math.Abs(math.Exp(ls[i])-p[i]) > 1e-12 {
			t.Errorf("exp(logsoftmax) != softmax at %d", i)
		}
	}
}

func TestArgmax(t *testing.T) {
	if Argmax(nil) != -1 {
		t.Error("empty argmax != -1")
	}
	if Argmax([]float64{3, 1, 2}) != 0 {
		t.Error("argmax wrong")
	}
}

func TestTemplateClassifier(t *testing.T) {
	r := rng.New(5)
	xs, ys := blobs(r, 4, 50, 6, 8)
	tc, err := FitTemplate(xs, ys, 4)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := tc.Accuracy(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("template accuracy = %v, want > 0.9", acc)
	}
}

func TestTemplateErrors(t *testing.T) {
	if _, err := FitTemplate(nil, nil, 2); !errors.Is(err, ErrNoTrainingData) {
		t.Errorf("empty fit error = %v", err)
	}
	if _, err := FitTemplate([][]float64{{1}}, []int{5}, 2); err == nil {
		t.Error("out-of-range label accepted")
	}
	tc, err := FitTemplate([][]float64{{1, 2}, {3, 4}}, []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.Predict([]float64{1}); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("wrong-dim predict error = %v", err)
	}
}

func TestMetricsAccuracy(t *testing.T) {
	if a := Accuracy([]int{1, 2, 3}, []int{1, 0, 3}); math.Abs(a-2.0/3) > 1e-12 {
		t.Errorf("accuracy = %v", a)
	}
	if Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy != 0")
	}
	if Accuracy([]int{1}, []int{1, 2}) != 0 {
		t.Error("length mismatch accuracy != 0")
	}
}

func TestConfusionMatrix(t *testing.T) {
	cm := ConfusionMatrix([]int{0, 1, 1}, []int{0, 1, 0}, 2)
	if cm[0][0] != 1 || cm[1][1] != 1 || cm[0][1] != 1 {
		t.Errorf("confusion = %v", cm)
	}
}

func TestEditDistance(t *testing.T) {
	for _, tc := range []struct {
		a, b []int
		want int
	}{
		{nil, nil, 0},
		{[]int{1, 2, 3}, []int{1, 2, 3}, 0},
		{[]int{1, 2, 3}, []int{1, 3}, 1},
		{[]int{1, 2, 3}, []int{4, 5, 6}, 3},
		{nil, []int{1, 2}, 2},
		{[]int{1, 2}, nil, 2},
		{[]int{1, 2, 3, 4}, []int{2, 3, 4, 5}, 2},
	} {
		if got := EditDistance(tc.a, tc.b); got != tc.want {
			t.Errorf("EditDistance(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestSequenceAccuracy(t *testing.T) {
	if a := SequenceAccuracy([]int{1, 2, 3}, []int{1, 2, 3}); a != 1 {
		t.Errorf("perfect sequence accuracy = %v", a)
	}
	if a := SequenceAccuracy(nil, []int{1, 2}); a != 0 {
		t.Errorf("empty prediction accuracy = %v", a)
	}
	if a := SequenceAccuracy(nil, nil); a != 1 {
		t.Errorf("both empty accuracy = %v", a)
	}
	long := make([]int, 100)
	if a := SequenceAccuracy(long, []int{9}); a != 0 {
		t.Errorf("clamped accuracy = %v", a)
	}
}

func TestPerClassMetrics(t *testing.T) {
	// Confusion: class 0 perfectly predicted; class 1 half lost to 0.
	cm := [][]int{
		{10, 0},
		{5, 5},
	}
	ms := PerClassMetrics(cm)
	if math.Abs(ms[0].Recall-1) > 1e-12 {
		t.Errorf("class0 recall = %v", ms[0].Recall)
	}
	if math.Abs(ms[0].Precision-10.0/15) > 1e-12 {
		t.Errorf("class0 precision = %v", ms[0].Precision)
	}
	if math.Abs(ms[1].Recall-0.5) > 1e-12 {
		t.Errorf("class1 recall = %v", ms[1].Recall)
	}
	if math.Abs(ms[1].Precision-1) > 1e-12 {
		t.Errorf("class1 precision = %v", ms[1].Precision)
	}
	f1 := MacroF1(cm)
	if f1 <= 0 || f1 >= 1 {
		t.Errorf("macro F1 = %v", f1)
	}
	if MacroF1(nil) != 0 {
		t.Error("empty macro F1 != 0")
	}
	// Degenerate class with no examples or predictions.
	ms = PerClassMetrics([][]int{{0, 0}, {0, 3}})
	if ms[0].Precision != 0 || ms[0].Recall != 0 || ms[0].F1 != 0 {
		t.Errorf("empty class metrics = %+v", ms[0])
	}
}
