// Package ml implements the machine-learning models of the paper's attack
// abstraction (f_θ : X → Y) from scratch on the standard library:
//
//   - a multilayer perceptron and a small 1-D convolutional network for the
//     classification attacks (website fingerprinting, keystroke sniffing),
//   - a bidirectional GRU with a CTC decoder for the sequence-to-sequence
//     model extraction attack,
//   - a Gaussian template (naive Bayes) classifier used as a cheap
//     baseline and by the profiler's vulnerability analysis.
//
// All training is plain SGD with momentum; the package records per-epoch
// statistics so experiments can regenerate the paper's training curves
// (Fig. 1).
package ml

import (
	"math"

	"github.com/repro/aegis/internal/rng"
)

// matrix is a dense rows×cols matrix in row-major order.
type matrix struct {
	rows, cols int
	data       []float64
}

func newMatrix(rows, cols int) *matrix {
	return &matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

func (m *matrix) at(r, c int) float64     { return m.data[r*m.cols+c] }
func (m *matrix) set(r, c int, v float64) { m.data[r*m.cols+c] = v }
func (m *matrix) add(r, c int, v float64) { m.data[r*m.cols+c] += v }

// row returns a view of row r.
func (m *matrix) row(r int) []float64 {
	return m.data[r*m.cols : (r+1)*m.cols]
}

// zero resets the matrix in place.
func (m *matrix) zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// glorotInit fills the matrix with Glorot-uniform values.
func (m *matrix) glorotInit(r *rng.Source) {
	limit := math.Sqrt(6.0 / float64(m.rows+m.cols))
	for i := range m.data {
		m.data[i] = (2*r.Float64() - 1) * limit
	}
}

// matVec computes y = W x (+ b when b != nil) for W rows×cols, x len cols.
func matVec(w *matrix, x, b []float64) []float64 {
	out := make([]float64, w.rows)
	for r := 0; r < w.rows; r++ {
		row := w.row(r)
		var s float64
		for c, xv := range x {
			s += row[c] * xv
		}
		if b != nil {
			s += b[r]
		}
		out[r] = s
	}
	return out
}

// matVecT computes y = Wᵀ x for W rows×cols, x len rows (used for backprop).
func matVecT(w *matrix, x []float64) []float64 {
	out := make([]float64, w.cols)
	for r := 0; r < w.rows; r++ {
		row := w.row(r)
		xv := x[r]
		if xv == 0 {
			continue
		}
		for c := range row {
			out[c] += row[c] * xv
		}
	}
	return out
}

// Softmax returns the softmax of logits (numerically stabilised).
func Softmax(logits []float64) []float64 {
	maxV := math.Inf(-1)
	for _, v := range logits {
		if v > maxV {
			maxV = v
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - maxV)
		out[i] = e
		sum += e
	}
	if sum == 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// LogSoftmax returns log(softmax(logits)).
func LogSoftmax(logits []float64) []float64 {
	maxV := math.Inf(-1)
	for _, v := range logits {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for _, v := range logits {
		sum += math.Exp(v - maxV)
	}
	logZ := maxV + math.Log(sum)
	out := make([]float64, len(logits))
	for i, v := range logits {
		out[i] = v - logZ
	}
	return out
}

// Argmax returns the index of the largest element (-1 for empty input).
func Argmax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	_ = xs[best]
	return best
}

// sigmoid and tanh helpers for the GRU.
func sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// logSumExp returns log(exp(a)+exp(b)) stably; used by the CTC recursion.
func logSumExp(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}
