package ml

import (
	"errors"
	"fmt"
	"math"

	"github.com/repro/aegis/internal/rng"
)

// Errors returned by classifiers.
var (
	ErrNoTrainingData = errors.New("ml: no training data")
	ErrShapeMismatch  = errors.New("ml: input shape mismatch")
)

// EpochStats records one training epoch for learning-curve plots (Fig. 1).
type EpochStats struct {
	Epoch     int
	TrainLoss float64
	TrainAcc  float64
	ValLoss   float64
	ValAcc    float64
}

// MLPConfig configures a multilayer perceptron classifier.
type MLPConfig struct {
	// Layers lists layer widths including input and output,
	// e.g. [1200, 128, 64, 45].
	Layers []int
	// LR is the SGD learning rate.
	LR float64
	// Momentum is the SGD momentum coefficient.
	Momentum float64
	// L2 is the weight decay coefficient.
	L2 float64
	// Dropout is the hidden-layer dropout probability during training
	// (the paper's CNN uses dropout as regularisation).
	Dropout float64
	// GradClip bounds the L2 norm of each layer's delta vector per SGD
	// step, keeping per-sample SGD stable on unnormalised features.
	GradClip float64
	// Seed drives initialisation, shuffling and dropout.
	Seed uint64
}

// DefaultMLPConfig returns sensible defaults for the attack models.
func DefaultMLPConfig(in, out int) MLPConfig {
	return MLPConfig{
		Layers:   []int{in, 96, 48, out},
		LR:       0.01,
		Momentum: 0.5,
		L2:       1e-4,
		Dropout:  0.1,
		GradClip: 1,
		Seed:     1,
	}
}

// MLP is a fully-connected ReLU network with a softmax output, trained with
// minibatch SGD + momentum.
type MLP struct {
	cfg MLPConfig
	w   []*matrix
	b   [][]float64
	vw  []*matrix // momentum buffers
	vb  [][]float64
	r   *rng.Source
}

// NewMLP builds an MLP from the configuration.
func NewMLP(cfg MLPConfig) (*MLP, error) {
	if len(cfg.Layers) < 2 {
		return nil, fmt.Errorf("ml: need at least 2 layer sizes, got %d", len(cfg.Layers))
	}
	for i, l := range cfg.Layers {
		if l < 1 {
			return nil, fmt.Errorf("ml: layer %d has width %d", i, l)
		}
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.01
	}
	m := &MLP{cfg: cfg, r: rng.New(cfg.Seed).Split("mlp")}
	for i := 0; i+1 < len(cfg.Layers); i++ {
		w := newMatrix(cfg.Layers[i+1], cfg.Layers[i])
		w.glorotInit(m.r)
		m.w = append(m.w, w)
		m.b = append(m.b, make([]float64, cfg.Layers[i+1]))
		m.vw = append(m.vw, newMatrix(cfg.Layers[i+1], cfg.Layers[i]))
		m.vb = append(m.vb, make([]float64, cfg.Layers[i+1]))
	}
	return m, nil
}

// NumClasses returns the output width.
func (m *MLP) NumClasses() int { return m.cfg.Layers[len(m.cfg.Layers)-1] }

// InputDim returns the expected feature count.
func (m *MLP) InputDim() int { return m.cfg.Layers[0] }

// forward computes activations per layer; when train is true, dropout masks
// are applied to hidden activations and returned for backprop.
func (m *MLP) forward(x []float64, train bool) (acts [][]float64, masks [][]bool) {
	acts = make([][]float64, len(m.w)+1)
	acts[0] = x
	if train && m.cfg.Dropout > 0 {
		masks = make([][]bool, len(m.w))
	}
	cur := x
	for l, w := range m.w {
		z := matVec(w, cur, m.b[l])
		if l < len(m.w)-1 {
			for i := range z {
				if z[i] < 0 {
					z[i] = 0
				}
			}
			if train && m.cfg.Dropout > 0 {
				mask := make([]bool, len(z))
				keep := 1 - m.cfg.Dropout
				for i := range z {
					if m.r.Float64() < keep {
						mask[i] = true
						z[i] /= keep
					} else {
						z[i] = 0
					}
				}
				masks[l] = mask
			}
		}
		acts[l+1] = z
		cur = z
	}
	return acts, masks
}

// Predict returns the argmax class for a feature vector.
func (m *MLP) Predict(x []float64) (int, error) {
	if len(x) != m.InputDim() {
		return 0, fmt.Errorf("%w: got %d features, want %d", ErrShapeMismatch, len(x), m.InputDim())
	}
	acts, _ := m.forward(x, false)
	return Argmax(acts[len(acts)-1]), nil
}

// Proba returns class probabilities for a feature vector.
func (m *MLP) Proba(x []float64) ([]float64, error) {
	if len(x) != m.InputDim() {
		return nil, fmt.Errorf("%w: got %d features, want %d", ErrShapeMismatch, len(x), m.InputDim())
	}
	acts, _ := m.forward(x, false)
	return Softmax(acts[len(acts)-1]), nil
}

// step runs one SGD step on a single example and returns its loss and
// whether the prediction was correct.
func (m *MLP) step(x []float64, y int) (float64, bool) {
	acts, masks := m.forward(x, true)
	logits := acts[len(acts)-1]
	probs := Softmax(logits)
	loss := -math.Log(math.Max(probs[y], 1e-12))
	correct := Argmax(logits) == y

	// Output delta for softmax cross-entropy.
	delta := make([]float64, len(probs))
	copy(delta, probs)
	delta[y]--

	for l := len(m.w) - 1; l >= 0; l-- {
		input := acts[l]
		// Clip the delta norm so a single outlier sample cannot blow up
		// the momentum buffers.
		if m.cfg.GradClip > 0 {
			inNorm := vecSqNorm(input)
			dNorm := math.Sqrt(vecSqNorm(delta) * (inNorm + 1))
			if dNorm > m.cfg.GradClip {
				s := m.cfg.GradClip / dNorm
				for i := range delta {
					delta[i] *= s
				}
			}
		}
		// Gradient step with momentum and L2.
		w := m.w[l]
		vw := m.vw[l]
		vb := m.vb[l]
		for r := 0; r < w.rows; r++ {
			dr := delta[r]
			if dr == 0 && m.cfg.L2 == 0 {
				continue
			}
			wrow := w.row(r)
			vrow := vw.row(r)
			for c := range wrow {
				g := dr*input[c] + m.cfg.L2*wrow[c]
				vrow[c] = m.cfg.Momentum*vrow[c] - m.cfg.LR*g
				wrow[c] += vrow[c]
			}
			vb[r] = m.cfg.Momentum*vb[r] - m.cfg.LR*dr
			m.b[l][r] += vb[r]
		}
		if l == 0 {
			break
		}
		// Propagate delta to the previous layer through pre-update
		// weights approximation (weights already updated; acceptable for
		// SGD) and the ReLU/dropout mask.
		prev := matVecT(w, delta)
		for i := range prev {
			if acts[l][i] <= 0 {
				prev[i] = 0
			}
			if masks != nil && masks[l-1] != nil && !masks[l-1][i] {
				prev[i] = 0
			}
		}
		delta = prev
	}
	return loss, correct
}

// Evaluate returns mean loss and accuracy over a labelled set.
func (m *MLP) Evaluate(xs [][]float64, ys []int) (loss, acc float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrNoTrainingData
	}
	if len(xs) != len(ys) {
		return 0, 0, fmt.Errorf("%w: %d samples, %d labels", ErrShapeMismatch, len(xs), len(ys))
	}
	var sumLoss float64
	correct := 0
	for i, x := range xs {
		acts, _ := m.forward(x, false)
		probs := Softmax(acts[len(acts)-1])
		sumLoss += -math.Log(math.Max(probs[ys[i]], 1e-12))
		if Argmax(probs) == ys[i] {
			correct++
		}
	}
	n := float64(len(xs))
	return sumLoss / n, float64(correct) / n, nil
}

// Train runs epochs of shuffled SGD and returns per-epoch statistics.
// Validation inputs may be nil.
func (m *MLP) Train(xs [][]float64, ys []int, epochs int, valXs [][]float64, valYs []int) ([]EpochStats, error) {
	if len(xs) == 0 {
		return nil, ErrNoTrainingData
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("%w: %d samples, %d labels", ErrShapeMismatch, len(xs), len(ys))
	}
	for i, x := range xs {
		if len(x) != m.InputDim() {
			return nil, fmt.Errorf("%w: sample %d has %d features, want %d",
				ErrShapeMismatch, i, len(x), m.InputDim())
		}
	}
	stats := make([]EpochStats, 0, epochs)
	order := make([]int, len(xs))
	for i := range order {
		order[i] = i
	}
	for ep := 0; ep < epochs; ep++ {
		m.r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var sumLoss float64
		correct := 0
		for _, idx := range order {
			loss, ok := m.step(xs[idx], ys[idx])
			sumLoss += loss
			if ok {
				correct++
			}
		}
		st := EpochStats{
			Epoch:     ep + 1,
			TrainLoss: sumLoss / float64(len(xs)),
			TrainAcc:  float64(correct) / float64(len(xs)),
		}
		if len(valXs) > 0 {
			vl, va, err := m.Evaluate(valXs, valYs)
			if err != nil {
				return nil, err
			}
			st.ValLoss, st.ValAcc = vl, va
		}
		stats = append(stats, st)
	}
	return stats, nil
}
