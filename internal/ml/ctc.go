package ml

import (
	"fmt"
	"math"
	"sort"
)

// Connectionist Temporal Classification (Graves et al. 2006), the loss and
// decoders used by the model extraction attack's sequence model. Symbol 0
// is the blank; external labels in [0, classes) map to internal symbols
// label+1.

// ctcLossGrad computes the CTC negative log-likelihood of label given the
// per-timestep logits, and the gradient of the loss with respect to the
// logits. Logits have width classes+1 (blank first).
func ctcLossGrad(logits [][]float64, label []int, classes int) (float64, [][]float64, error) {
	T := len(logits)
	if T == 0 {
		return 0, nil, ErrNoTrainingData
	}
	L := len(label)
	S := 2*L + 1
	if T < L {
		return 0, nil, fmt.Errorf("ml: sequence length %d shorter than label length %d", T, L)
	}
	for _, l := range label {
		if l < 0 || l >= classes {
			return 0, nil, fmt.Errorf("ml: label symbol %d out of range [0,%d)", l, classes)
		}
	}

	// Extended label with interleaved blanks: blank, l1, blank, l2, ...
	ext := make([]int, S)
	for i := 0; i < L; i++ {
		ext[2*i+1] = label[i] + 1
	}

	logProbs := make([][]float64, T)
	for t := range logits {
		logProbs[t] = LogSoftmax(logits[t])
	}

	negInf := math.Inf(-1)
	alpha := make([][]float64, T)
	beta := make([][]float64, T)
	for t := 0; t < T; t++ {
		alpha[t] = make([]float64, S)
		beta[t] = make([]float64, S)
		for s := 0; s < S; s++ {
			alpha[t][s] = negInf
			beta[t][s] = negInf
		}
	}

	// Forward.
	alpha[0][0] = logProbs[0][ext[0]]
	if S > 1 {
		alpha[0][1] = logProbs[0][ext[1]]
	}
	for t := 1; t < T; t++ {
		for s := 0; s < S; s++ {
			a := alpha[t-1][s]
			if s > 0 {
				a = logSumExp(a, alpha[t-1][s-1])
			}
			if s > 1 && ext[s] != 0 && ext[s] != ext[s-2] {
				a = logSumExp(a, alpha[t-1][s-2])
			}
			if !math.IsInf(a, -1) {
				alpha[t][s] = a + logProbs[t][ext[s]]
			}
		}
	}

	logP := alpha[T-1][S-1]
	if S > 1 {
		logP = logSumExp(logP, alpha[T-1][S-2])
	}
	if math.IsInf(logP, -1) {
		return 0, nil, fmt.Errorf("ml: CTC alignment impossible (T=%d, L=%d)", T, L)
	}

	// Backward.
	beta[T-1][S-1] = logProbs[T-1][ext[S-1]]
	if S > 1 {
		beta[T-1][S-2] = logProbs[T-1][ext[S-2]]
	}
	for t := T - 2; t >= 0; t-- {
		for s := S - 1; s >= 0; s-- {
			b := beta[t+1][s]
			if s+1 < S {
				b = logSumExp(b, beta[t+1][s+1])
			}
			if s+2 < S && ext[s+2] != 0 && ext[s+2] != ext[s] {
				b = logSumExp(b, beta[t+1][s+2])
			}
			if !math.IsInf(b, -1) {
				beta[t][s] = b + logProbs[t][ext[s]]
			}
		}
	}

	// Gradient wrt logits: softmax - gamma.
	grads := make([][]float64, T)
	for t := 0; t < T; t++ {
		grads[t] = make([]float64, classes+1)
		// Per-symbol posterior mass.
		gamma := make([]float64, classes+1)
		for i := range gamma {
			gamma[i] = negInf
		}
		for s := 0; s < S; s++ {
			if math.IsInf(alpha[t][s], -1) || math.IsInf(beta[t][s], -1) {
				continue
			}
			// alpha and beta both include logProbs[t][ext[s]]; remove one.
			v := alpha[t][s] + beta[t][s] - logProbs[t][ext[s]]
			gamma[ext[s]] = logSumExp(gamma[ext[s]], v)
		}
		for k := 0; k <= classes; k++ {
			y := math.Exp(logProbs[t][k])
			var post float64
			if !math.IsInf(gamma[k], -1) {
				post = math.Exp(gamma[k] - logP)
			}
			grads[t][k] = y - post
		}
	}
	return -logP, grads, nil
}

// CTCLoss returns just the negative log-likelihood (exported for tests and
// validation-loss tracking).
func CTCLoss(logits [][]float64, label []int, classes int) (float64, error) {
	loss, _, err := ctcLossGrad(logits, label, classes)
	return loss, err
}

// GreedyCTCDecode performs best-path decoding: per-timestep argmax,
// collapse repeats, remove blanks. Returned symbols use the external
// alphabet [0, classes).
func GreedyCTCDecode(logits [][]float64) []int {
	out := make([]int, 0, len(logits))
	prev := -1
	for _, row := range logits {
		k := Argmax(row)
		if k != prev && k != 0 {
			out = append(out, k-1)
		}
		prev = k
	}
	return out
}

// beamEntry tracks the probability of a prefix ending in blank / non-blank.
type beamEntry struct {
	pBlank    float64 // log prob of prefix with last symbol blank
	pNonBlank float64 // log prob of prefix ending in its last label
}

func (b beamEntry) total() float64 { return logSumExp(b.pBlank, b.pNonBlank) }

// BeamCTCDecode performs prefix beam search over the logits with the given
// beam width, returning the most probable label sequence (external
// alphabet). Width <= 1 falls back to greedy decoding.
func BeamCTCDecode(logits [][]float64, width int) []int {
	if width <= 1 {
		return GreedyCTCDecode(logits)
	}
	negInf := math.Inf(-1)
	type prefixKey string
	encode := func(p []int) prefixKey {
		b := make([]byte, 0, len(p)*2)
		for _, v := range p {
			b = append(b, byte(v>>8), byte(v))
		}
		return prefixKey(b)
	}

	beams := map[prefixKey][]int{encode(nil): nil}
	probs := map[prefixKey]beamEntry{encode(nil): {pBlank: 0, pNonBlank: negInf}}

	for _, row := range logits {
		lp := LogSoftmax(row)
		nextProbs := make(map[prefixKey]beamEntry, len(probs)*2)
		nextBeams := make(map[prefixKey][]int, len(probs)*2)
		upsert := func(p []int, blankLP, nonBlankLP float64) {
			k := encode(p)
			e, ok := nextProbs[k]
			if !ok {
				e = beamEntry{pBlank: negInf, pNonBlank: negInf}
				nextBeams[k] = p
			}
			e.pBlank = logSumExp(e.pBlank, blankLP)
			e.pNonBlank = logSumExp(e.pNonBlank, nonBlankLP)
			nextProbs[k] = e
		}

		for k, prefix := range beams {
			e := probs[k]
			// Extend with blank: prefix unchanged.
			upsert(prefix, e.total()+lp[0], negInf)
			// Extend with symbols.
			for sym := 1; sym < len(lp); sym++ {
				label := sym - 1
				symLP := lp[sym]
				if len(prefix) > 0 && prefix[len(prefix)-1] == label {
					// Repeating the last symbol without a separating
					// blank collapses into the existing run.
					upsert(prefix, negInf, e.pNonBlank+symLP)
					// A blank in between starts a new occurrence.
					extended := append(append([]int(nil), prefix...), label)
					upsert(extended, negInf, e.pBlank+symLP)
					continue
				}
				extended := append(append([]int(nil), prefix...), label)
				upsert(extended, negInf, e.total()+symLP)
			}
		}

		// Prune to width.
		type scored struct {
			key   prefixKey
			score float64
		}
		all := make([]scored, 0, len(nextProbs))
		for k, e := range nextProbs {
			all = append(all, scored{k, e.total()})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].score > all[j].score })
		if len(all) > width {
			all = all[:width]
		}
		beams = make(map[prefixKey][]int, len(all))
		probs = make(map[prefixKey]beamEntry, len(all))
		for _, s := range all {
			beams[s.key] = nextBeams[s.key]
			probs[s.key] = nextProbs[s.key]
		}
	}

	var best []int
	bestScore := negInf
	for k, prefix := range beams {
		if s := probs[k].total(); s > bestScore {
			bestScore = s
			best = prefix
		}
	}
	if best == nil {
		return []int{}
	}
	return best
}
