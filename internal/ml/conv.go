package ml

import (
	"fmt"
	"math"

	"github.com/repro/aegis/internal/rng"
)

// CNN1D is a compact 1-D convolutional classifier over multi-channel time
// series, the architecture class the paper uses for website fingerprinting
// and keystroke sniffing (§III-C: convolution layers + fully-connected
// layers with batch-norm-like scaling and dropout). The network is
//
//	conv(k, stride) → ReLU → conv(k, stride) → ReLU → global average
//	pooling per filter → FC → ReLU → FC → softmax
//
// trained with SGD + momentum and per-step gradient clipping. Convolution
// gives the model the translation invariance that the MLP attack needs
// engineered pooled features for.
type CNN1D struct {
	cfg CNNConfig

	conv1 *convLayer
	conv2 *convLayer
	fc1   *denseLayer
	fc2   *denseLayer
	r     *rng.Source
}

// CNNConfig configures the convolutional classifier.
type CNNConfig struct {
	// Channels is the input channel count (monitored HPC events).
	Channels int
	// Length is the input time-series length (trace ticks).
	Length int
	// Classes is the output class count.
	Classes int
	// Filters1 and Filters2 are the conv layer widths.
	Filters1 int
	Filters2 int
	// Kernel is the convolution width; Stride its step.
	Kernel int
	Stride int
	// Hidden is the FC hidden width.
	Hidden int
	// LR, Momentum and GradClip control SGD.
	LR       float64
	Momentum float64
	GradClip float64
	// Dropout is applied to the FC hidden activations during training.
	Dropout float64
	Seed    float64
}

// DefaultCNNConfig returns the evaluation defaults.
func DefaultCNNConfig(channels, length, classes int) CNNConfig {
	return CNNConfig{
		Channels: channels,
		Length:   length,
		Classes:  classes,
		Filters1: 8,
		Filters2: 16,
		Kernel:   5,
		Stride:   2,
		Hidden:   32,
		LR:       0.02,
		Momentum: 0.5,
		GradClip: 2,
		Dropout:  0.1,
		Seed:     1,
	}
}

// convLayer is a 1-D convolution: out[f][t] = b[f] + Σ_c Σ_k w[f][c][k] ·
// in[c][t·stride+k].
type convLayer struct {
	inCh, outCh, kernel, stride int
	w                           []float64 // outCh × inCh × kernel
	b                           []float64
	vw                          []float64
	vb                          []float64
}

func newConvLayer(inCh, outCh, kernel, stride int, r *rng.Source) *convLayer {
	l := &convLayer{
		inCh: inCh, outCh: outCh, kernel: kernel, stride: stride,
		w:  make([]float64, outCh*inCh*kernel),
		b:  make([]float64, outCh),
		vw: make([]float64, outCh*inCh*kernel),
		vb: make([]float64, outCh),
	}
	limit := math.Sqrt(6.0 / float64(inCh*kernel+outCh))
	for i := range l.w {
		l.w[i] = (2*r.Float64() - 1) * limit
	}
	return l
}

func (l *convLayer) wIdx(f, c, k int) int { return (f*l.inCh+c)*l.kernel + k }

// outLen returns the output length for an input of length n.
func (l *convLayer) outLen(n int) int {
	if n < l.kernel {
		return 0
	}
	return (n-l.kernel)/l.stride + 1
}

// forward computes the pre-activation output (outCh × outLen).
func (l *convLayer) forward(in [][]float64) [][]float64 {
	n := len(in[0])
	outN := l.outLen(n)
	out := make([][]float64, l.outCh)
	for f := 0; f < l.outCh; f++ {
		row := make([]float64, outN)
		for t := 0; t < outN; t++ {
			s := l.b[f]
			base := t * l.stride
			for c := 0; c < l.inCh; c++ {
				inC := in[c]
				for k := 0; k < l.kernel; k++ {
					s += l.w[l.wIdx(f, c, k)] * inC[base+k]
				}
			}
			row[t] = s
		}
		out[f] = row
	}
	return out
}

// backward accumulates parameter gradients into gw/gb and returns the
// gradient with respect to the input. dOut is the gradient wrt the
// pre-activation output.
func (l *convLayer) backward(in, dOut [][]float64, gw, gb []float64) [][]float64 {
	n := len(in[0])
	dIn := make([][]float64, l.inCh)
	for c := range dIn {
		dIn[c] = make([]float64, n)
	}
	for f := 0; f < l.outCh; f++ {
		dRow := dOut[f]
		for t := range dRow {
			d := dRow[t]
			if d == 0 {
				continue
			}
			gb[f] += d
			base := t * l.stride
			for c := 0; c < l.inCh; c++ {
				inC := in[c]
				dC := dIn[c]
				for k := 0; k < l.kernel; k++ {
					gw[l.wIdx(f, c, k)] += d * inC[base+k]
					dC[base+k] += d * l.w[l.wIdx(f, c, k)]
				}
			}
		}
	}
	return dIn
}

func (l *convLayer) apply(gw, gb []float64, lr, momentum float64) {
	for i := range l.w {
		l.vw[i] = momentum*l.vw[i] - lr*gw[i]
		l.w[i] += l.vw[i]
	}
	for i := range l.b {
		l.vb[i] = momentum*l.vb[i] - lr*gb[i]
		l.b[i] += l.vb[i]
	}
}

// denseLayer is a fully connected layer.
type denseLayer struct {
	in, out int
	w       *matrix
	b       []float64
	vw      *matrix
	vb      []float64
}

func newDenseLayer(in, out int, r *rng.Source) *denseLayer {
	l := &denseLayer{
		in: in, out: out,
		w:  newMatrix(out, in),
		b:  make([]float64, out),
		vw: newMatrix(out, in),
		vb: make([]float64, out),
	}
	l.w.glorotInit(r)
	return l
}

func (l *denseLayer) forward(x []float64) []float64 {
	return matVec(l.w, x, l.b)
}

// backward accumulates gradients and returns dIn.
func (l *denseLayer) backward(x, dOut []float64, gw *matrix, gb []float64) []float64 {
	outerAcc(gw, dOut, x)
	addInPlace(gb, dOut)
	return matVecT(l.w, dOut)
}

func (l *denseLayer) apply(gw *matrix, gb []float64, lr, momentum float64) {
	for i := range l.w.data {
		l.vw.data[i] = momentum*l.vw.data[i] - lr*gw.data[i]
		l.w.data[i] += l.vw.data[i]
	}
	for i := range l.b {
		l.vb[i] = momentum*l.vb[i] - lr*gb[i]
		l.b[i] += l.vb[i]
	}
}

// NewCNN1D builds the network.
func NewCNN1D(cfg CNNConfig) (*CNN1D, error) {
	if cfg.Channels < 1 || cfg.Length < 1 || cfg.Classes < 1 {
		return nil, fmt.Errorf("ml: invalid CNN config %+v", cfg)
	}
	if cfg.Kernel < 1 {
		cfg.Kernel = 5
	}
	if cfg.Stride < 1 {
		cfg.Stride = 2
	}
	if cfg.Filters1 < 1 {
		cfg.Filters1 = 8
	}
	if cfg.Filters2 < 1 {
		cfg.Filters2 = 16
	}
	if cfg.Hidden < 1 {
		cfg.Hidden = 32
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.02
	}
	if cfg.GradClip <= 0 {
		cfg.GradClip = 2
	}
	r := rng.New(uint64(cfg.Seed)).Split("cnn")
	c := &CNN1D{cfg: cfg, r: r}
	c.conv1 = newConvLayer(cfg.Channels, cfg.Filters1, cfg.Kernel, cfg.Stride, r)
	n1 := c.conv1.outLen(cfg.Length)
	if n1 < cfg.Kernel {
		return nil, fmt.Errorf("ml: input length %d too short for two conv layers", cfg.Length)
	}
	c.conv2 = newConvLayer(cfg.Filters1, cfg.Filters2, cfg.Kernel, cfg.Stride, r)
	if c.conv2.outLen(n1) < 1 {
		return nil, fmt.Errorf("ml: input length %d too short after first conv", cfg.Length)
	}
	c.fc1 = newDenseLayer(cfg.Filters2, cfg.Hidden, r)
	c.fc2 = newDenseLayer(cfg.Hidden, cfg.Classes, r)
	return c, nil
}

// cnnTrace stores the forward pass for backprop.
type cnnTrace struct {
	in     [][]float64
	z1, a1 [][]float64 // conv1 pre/post ReLU
	z2, a2 [][]float64 // conv2 pre/post ReLU
	pooled []float64   // global average pooled per filter
	h1pre  []float64
	h1     []float64
	mask   []bool
	logits []float64
}

func reluSeq(rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, row := range rows {
		o := make([]float64, len(row))
		for j, v := range row {
			if v > 0 {
				o[j] = v
			}
		}
		out[i] = o
	}
	return out
}

// forward runs the network; train enables dropout.
func (c *CNN1D) forward(x [][]float64, train bool) (*cnnTrace, error) {
	if len(x) != c.cfg.Channels {
		return nil, fmt.Errorf("%w: got %d channels, want %d", ErrShapeMismatch, len(x), c.cfg.Channels)
	}
	for ch, row := range x {
		if len(row) != c.cfg.Length {
			return nil, fmt.Errorf("%w: channel %d has %d ticks, want %d",
				ErrShapeMismatch, ch, len(row), c.cfg.Length)
		}
	}
	tr := &cnnTrace{in: x}
	tr.z1 = c.conv1.forward(x)
	tr.a1 = reluSeq(tr.z1)
	tr.z2 = c.conv2.forward(tr.a1)
	tr.a2 = reluSeq(tr.z2)

	tr.pooled = make([]float64, c.cfg.Filters2)
	for f, row := range tr.a2 {
		var s float64
		for _, v := range row {
			s += v
		}
		tr.pooled[f] = s / float64(len(row))
	}

	tr.h1pre = c.fc1.forward(tr.pooled)
	tr.h1 = make([]float64, len(tr.h1pre))
	for i, v := range tr.h1pre {
		if v > 0 {
			tr.h1[i] = v
		}
	}
	if train && c.cfg.Dropout > 0 {
		tr.mask = make([]bool, len(tr.h1))
		keep := 1 - c.cfg.Dropout
		for i := range tr.h1 {
			if c.r.Float64() < keep {
				tr.mask[i] = true
				tr.h1[i] /= keep
			} else {
				tr.h1[i] = 0
			}
		}
	}
	tr.logits = c.fc2.forward(tr.h1)
	return tr, nil
}

// Predict returns the argmax class for a channels×length input.
func (c *CNN1D) Predict(x [][]float64) (int, error) {
	tr, err := c.forward(x, false)
	if err != nil {
		return 0, err
	}
	return Argmax(tr.logits), nil
}

// Proba returns class probabilities.
func (c *CNN1D) Proba(x [][]float64) ([]float64, error) {
	tr, err := c.forward(x, false)
	if err != nil {
		return nil, err
	}
	return Softmax(tr.logits), nil
}

// step runs one SGD step and returns loss and correctness.
func (c *CNN1D) step(x [][]float64, y int) (float64, bool, error) {
	tr, err := c.forward(x, true)
	if err != nil {
		return 0, false, err
	}
	probs := Softmax(tr.logits)
	loss := -math.Log(math.Max(probs[y], 1e-12))
	correct := Argmax(tr.logits) == y

	dLogits := make([]float64, len(probs))
	copy(dLogits, probs)
	dLogits[y]--

	// FC gradients.
	gw2 := newMatrix(c.fc2.out, c.fc2.in)
	gb2 := make([]float64, c.fc2.out)
	dH1 := c.fc2.backward(tr.h1, dLogits, gw2, gb2)
	for i := range dH1 {
		if tr.h1pre[i] <= 0 {
			dH1[i] = 0
		}
		if tr.mask != nil && !tr.mask[i] {
			dH1[i] = 0
		}
	}
	gw1 := newMatrix(c.fc1.out, c.fc1.in)
	gb1 := make([]float64, c.fc1.out)
	dPooled := c.fc1.backward(tr.pooled, dH1, gw1, gb1)

	// Through global average pooling into conv2's activations.
	dA2 := make([][]float64, c.cfg.Filters2)
	for f := range dA2 {
		n := len(tr.a2[f])
		row := make([]float64, n)
		g := dPooled[f] / float64(n)
		for t := 0; t < n; t++ {
			if tr.z2[f][t] > 0 {
				row[t] = g
			}
		}
		dA2[f] = row
	}
	gwc2 := make([]float64, len(c.conv2.w))
	gbc2 := make([]float64, len(c.conv2.b))
	dA1 := c.conv2.backward(tr.a1, dA2, gwc2, gbc2)
	for f := range dA1 {
		for t := range dA1[f] {
			if tr.z1[f][t] <= 0 {
				dA1[f][t] = 0
			}
		}
	}
	gwc1 := make([]float64, len(c.conv1.w))
	gbc1 := make([]float64, len(c.conv1.b))
	c.conv1.backward(tr.in, dA1, gwc1, gbc1)

	// Global norm clipping.
	var norm float64
	for _, g := range [][]float64{gwc1, gbc1, gwc2, gbc2, gb1, gb2} {
		norm += vecSqNorm(g)
	}
	norm += matSqNorm(gw1) + matSqNorm(gw2)
	norm = math.Sqrt(norm)
	lr := c.cfg.LR
	if norm > c.cfg.GradClip {
		lr *= c.cfg.GradClip / norm
	}
	c.conv1.apply(gwc1, gbc1, lr, c.cfg.Momentum)
	c.conv2.apply(gwc2, gbc2, lr, c.cfg.Momentum)
	c.fc1.apply(gw1, gb1, lr, c.cfg.Momentum)
	c.fc2.apply(gw2, gb2, lr, c.cfg.Momentum)
	return loss, correct, nil
}

// Evaluate returns mean loss and accuracy over a labelled set of
// channels×length inputs.
func (c *CNN1D) Evaluate(xs [][][]float64, ys []int) (loss, acc float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrNoTrainingData
	}
	if len(xs) != len(ys) {
		return 0, 0, fmt.Errorf("%w: %d samples, %d labels", ErrShapeMismatch, len(xs), len(ys))
	}
	var sumLoss float64
	correct := 0
	for i, x := range xs {
		tr, err := c.forward(x, false)
		if err != nil {
			return 0, 0, err
		}
		probs := Softmax(tr.logits)
		sumLoss += -math.Log(math.Max(probs[ys[i]], 1e-12))
		if Argmax(probs) == ys[i] {
			correct++
		}
	}
	n := float64(len(xs))
	return sumLoss / n, float64(correct) / n, nil
}

// Train runs epochs of shuffled SGD over channels×length inputs and
// returns per-epoch statistics.
func (c *CNN1D) Train(xs [][][]float64, ys []int, epochs int, valXs [][][]float64, valYs []int) ([]EpochStats, error) {
	if len(xs) == 0 {
		return nil, ErrNoTrainingData
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("%w: %d samples, %d labels", ErrShapeMismatch, len(xs), len(ys))
	}
	order := make([]int, len(xs))
	for i := range order {
		order[i] = i
	}
	stats := make([]EpochStats, 0, epochs)
	for ep := 0; ep < epochs; ep++ {
		c.r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var sumLoss float64
		correct := 0
		for _, idx := range order {
			loss, ok, err := c.step(xs[idx], ys[idx])
			if err != nil {
				return nil, err
			}
			sumLoss += loss
			if ok {
				correct++
			}
		}
		st := EpochStats{
			Epoch:     ep + 1,
			TrainLoss: sumLoss / float64(len(xs)),
			TrainAcc:  float64(correct) / float64(len(xs)),
		}
		if len(valXs) > 0 {
			vl, va, err := c.Evaluate(valXs, valYs)
			if err != nil {
				return nil, err
			}
			st.ValLoss, st.ValAcc = vl, va
		}
		stats = append(stats, st)
	}
	return stats, nil
}
