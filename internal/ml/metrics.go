package ml

// Accuracy returns the fraction of matching prediction/label pairs.
func Accuracy(pred, labels []int) float64 {
	if len(pred) == 0 || len(pred) != len(labels) {
		return 0
	}
	correct := 0
	for i := range pred {
		if pred[i] == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}

// ConfusionMatrix builds a classes×classes count table: rows are true
// labels, columns predictions.
func ConfusionMatrix(pred, labels []int, classes int) [][]int {
	m := make([][]int, classes)
	for i := range m {
		m[i] = make([]int, classes)
	}
	for i := range pred {
		if labels[i] >= 0 && labels[i] < classes && pred[i] >= 0 && pred[i] < classes {
			m[labels[i]][pred[i]]++
		}
	}
	return m
}

// EditDistance returns the Levenshtein distance between two integer
// sequences.
func EditDistance(a, b []int) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1 // deletion
			if v := cur[j-1] + 1; v < m {
				m = v // insertion
			}
			if v := prev[j-1] + cost; v < m {
				m = v // substitution
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// SequenceAccuracy returns the layer-matching statistic the paper reports
// for the model extraction attack: 1 - editDistance/len(label), clamped to
// [0, 1]. A perfect prediction scores 1; an empty prediction scores 0.
func SequenceAccuracy(pred, label []int) float64 {
	if len(label) == 0 {
		if len(pred) == 0 {
			return 1
		}
		return 0
	}
	d := EditDistance(pred, label)
	acc := 1 - float64(d)/float64(len(label))
	if acc < 0 {
		acc = 0
	}
	return acc
}

// MeanSequenceAccuracy averages SequenceAccuracy over a batch.
func MeanSequenceAccuracy(preds, labels [][]int) float64 {
	if len(preds) == 0 || len(preds) != len(labels) {
		return 0
	}
	var sum float64
	for i := range preds {
		sum += SequenceAccuracy(preds[i], labels[i])
	}
	return sum / float64(len(preds))
}

// ClassMetrics holds per-class precision, recall and F1 derived from a
// confusion matrix.
type ClassMetrics struct {
	Precision float64
	Recall    float64
	F1        float64
}

// PerClassMetrics computes precision/recall/F1 per class from a confusion
// matrix (rows = truth, columns = predictions). Classes with no examples
// or no predictions get zero for the undefined ratios.
func PerClassMetrics(confusion [][]int) []ClassMetrics {
	n := len(confusion)
	out := make([]ClassMetrics, n)
	for c := 0; c < n; c++ {
		tp := confusion[c][c]
		var fn, fp int
		for j := 0; j < n; j++ {
			if j != c {
				fn += confusion[c][j]
				fp += confusion[j][c]
			}
		}
		m := &out[c]
		if tp+fp > 0 {
			m.Precision = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			m.Recall = float64(tp) / float64(tp+fn)
		}
		if m.Precision+m.Recall > 0 {
			m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
		}
	}
	return out
}

// MacroF1 averages the per-class F1 scores.
func MacroF1(confusion [][]int) float64 {
	ms := PerClassMetrics(confusion)
	if len(ms) == 0 {
		return 0
	}
	var sum float64
	for _, m := range ms {
		sum += m.F1
	}
	return sum / float64(len(ms))
}
