package ml

import (
	"fmt"
	"math"
)

// TemplateClassifier is a Gaussian naive-Bayes template attack: per class
// and feature it fits an independent Gaussian, and classifies by maximum
// log-likelihood. It mirrors the classic side-channel template attack and
// the paper's Gaussian modelling of event values (paper §V-B).
type TemplateClassifier struct {
	classes int
	dim     int
	mean    [][]float64
	varr    [][]float64
	prior   []float64
}

// FitTemplate fits the classifier on feature vectors xs with dense labels
// ys in [0, classes).
func FitTemplate(xs [][]float64, ys []int, classes int) (*TemplateClassifier, error) {
	if len(xs) == 0 {
		return nil, ErrNoTrainingData
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("%w: %d samples, %d labels", ErrShapeMismatch, len(xs), len(ys))
	}
	dim := len(xs[0])
	t := &TemplateClassifier{classes: classes, dim: dim}
	t.mean = make([][]float64, classes)
	t.varr = make([][]float64, classes)
	t.prior = make([]float64, classes)
	counts := make([]float64, classes)
	for c := 0; c < classes; c++ {
		t.mean[c] = make([]float64, dim)
		t.varr[c] = make([]float64, dim)
	}
	for i, x := range xs {
		y := ys[i]
		if y < 0 || y >= classes {
			return nil, fmt.Errorf("ml: label %d out of range [0,%d)", y, classes)
		}
		if len(x) != dim {
			return nil, fmt.Errorf("%w: sample %d has %d features, want %d", ErrShapeMismatch, i, len(x), dim)
		}
		counts[y]++
		for j, v := range x {
			t.mean[y][j] += v
		}
	}
	for c := 0; c < classes; c++ {
		if counts[c] == 0 {
			continue
		}
		for j := range t.mean[c] {
			t.mean[c][j] /= counts[c]
		}
		t.prior[c] = counts[c] / float64(len(xs))
	}
	for i, x := range xs {
		y := ys[i]
		for j, v := range x {
			d := v - t.mean[y][j]
			t.varr[y][j] += d * d
		}
	}
	for c := 0; c < classes; c++ {
		if counts[c] == 0 {
			continue
		}
		for j := range t.varr[c] {
			t.varr[c][j] /= counts[c]
			if t.varr[c][j] < 1e-9 {
				t.varr[c][j] = 1e-9
			}
		}
	}
	return t, nil
}

// LogLikelihoods returns per-class log posterior scores for x.
func (t *TemplateClassifier) LogLikelihoods(x []float64) ([]float64, error) {
	if len(x) != t.dim {
		return nil, fmt.Errorf("%w: got %d features, want %d", ErrShapeMismatch, len(x), t.dim)
	}
	out := make([]float64, t.classes)
	for c := 0; c < t.classes; c++ {
		if t.prior[c] == 0 {
			out[c] = math.Inf(-1)
			continue
		}
		ll := math.Log(t.prior[c])
		for j, v := range x {
			d := v - t.mean[c][j]
			ll += -0.5*(d*d/t.varr[c][j]) - 0.5*math.Log(2*math.Pi*t.varr[c][j])
		}
		out[c] = ll
	}
	return out, nil
}

// Predict returns the maximum-likelihood class for x.
func (t *TemplateClassifier) Predict(x []float64) (int, error) {
	ll, err := t.LogLikelihoods(x)
	if err != nil {
		return 0, err
	}
	return Argmax(ll), nil
}

// Accuracy evaluates the classifier on a labelled set.
func (t *TemplateClassifier) Accuracy(xs [][]float64, ys []int) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoTrainingData
	}
	correct := 0
	for i, x := range xs {
		p, err := t.Predict(x)
		if err != nil {
			return 0, err
		}
		if p == ys[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs)), nil
}
