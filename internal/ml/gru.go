package ml

import (
	"fmt"
	"math"

	"github.com/repro/aegis/internal/rng"
)

// GRUConfig configures the bidirectional GRU sequence model used by the
// model extraction attack (paper §III-E: a bidirectional GRU with a CTC
// decoder).
type GRUConfig struct {
	// InputDim is the per-timestep feature count (monitored HPC events).
	InputDim int
	// Hidden is the per-direction hidden width.
	Hidden int
	// Classes is the output alphabet size excluding the CTC blank.
	Classes int
	// LR is the SGD learning rate; GradClip bounds the gradient norm.
	LR       float64
	GradClip float64
	Seed     uint64
}

// DefaultGRUConfig returns the evaluation defaults.
func DefaultGRUConfig(inputDim, classes int) GRUConfig {
	return GRUConfig{
		InputDim: inputDim,
		Hidden:   24,
		Classes:  classes,
		LR:       0.02,
		GradClip: 5,
		Seed:     1,
	}
}

// gruDir is one direction's parameter set.
type gruDir struct {
	wz, wr, wh *matrix // input weights: hidden×input
	uz, ur, uh *matrix // recurrent weights: hidden×hidden
	bz, br, bh []float64
}

func newGRUDir(hidden, input int, r *rng.Source) *gruDir {
	d := &gruDir{
		wz: newMatrix(hidden, input), wr: newMatrix(hidden, input), wh: newMatrix(hidden, input),
		uz: newMatrix(hidden, hidden), ur: newMatrix(hidden, hidden), uh: newMatrix(hidden, hidden),
		bz: make([]float64, hidden), br: make([]float64, hidden), bh: make([]float64, hidden),
	}
	for _, m := range []*matrix{d.wz, d.wr, d.wh, d.uz, d.ur, d.uh} {
		m.glorotInit(r)
	}
	return d
}

// gruTrace holds the per-timestep forward state of one direction.
type gruTrace struct {
	z, r, hc, h [][]float64
}

// forward runs the direction over xs (already in scan order) and returns
// hidden states plus the trace for backprop.
func (d *gruDir) forward(xs [][]float64, hidden int) *gruTrace {
	T := len(xs)
	tr := &gruTrace{
		z:  make([][]float64, T),
		r:  make([][]float64, T),
		hc: make([][]float64, T),
		h:  make([][]float64, T),
	}
	prev := make([]float64, hidden)
	for t := 0; t < T; t++ {
		x := xs[t]
		z := matVec(d.wz, x, d.bz)
		addInPlace(z, matVec(d.uz, prev, nil))
		for i := range z {
			z[i] = sigmoid(z[i])
		}
		r := matVec(d.wr, x, d.br)
		addInPlace(r, matVec(d.ur, prev, nil))
		for i := range r {
			r[i] = sigmoid(r[i])
		}
		rh := make([]float64, hidden)
		for i := range rh {
			rh[i] = r[i] * prev[i]
		}
		hc := matVec(d.wh, x, d.bh)
		addInPlace(hc, matVec(d.uh, rh, nil))
		for i := range hc {
			hc[i] = math.Tanh(hc[i])
		}
		h := make([]float64, hidden)
		for i := range h {
			h[i] = (1-z[i])*prev[i] + z[i]*hc[i]
		}
		tr.z[t], tr.r[t], tr.hc[t], tr.h[t] = z, r, hc, h
		prev = h
	}
	return tr
}

// gruGrads accumulates gradients for one direction.
type gruGrads struct {
	wz, wr, wh *matrix
	uz, ur, uh *matrix
	bz, br, bh []float64
}

func newGRUGrads(hidden, input int) *gruGrads {
	return &gruGrads{
		wz: newMatrix(hidden, input), wr: newMatrix(hidden, input), wh: newMatrix(hidden, input),
		uz: newMatrix(hidden, hidden), ur: newMatrix(hidden, hidden), uh: newMatrix(hidden, hidden),
		bz: make([]float64, hidden), br: make([]float64, hidden), bh: make([]float64, hidden),
	}
}

// backward runs BPTT for one direction. xs is in scan order, dh[t] is the
// gradient flowing into h[t] from the output layer.
func (d *gruDir) backward(xs [][]float64, tr *gruTrace, dh [][]float64, g *gruGrads, hidden int) {
	T := len(xs)
	carry := make([]float64, hidden) // gradient wrt h[t] from t+1
	for t := T - 1; t >= 0; t-- {
		dht := make([]float64, hidden)
		copy(dht, dh[t])
		addInPlace(dht, carry)

		var prev []float64
		if t > 0 {
			prev = tr.h[t-1]
		} else {
			prev = make([]float64, hidden)
		}
		z, r, hc := tr.z[t], tr.r[t], tr.hc[t]

		dz := make([]float64, hidden)
		dhc := make([]float64, hidden)
		dprev := make([]float64, hidden)
		for i := 0; i < hidden; i++ {
			dz[i] = dht[i] * (hc[i] - prev[i]) * z[i] * (1 - z[i])
			dhc[i] = dht[i] * z[i] * (1 - hc[i]*hc[i])
			dprev[i] = dht[i] * (1 - z[i])
		}

		// Through candidate: hc = tanh(Wh x + Uh (r ⊙ prev) + bh).
		duhIn := matVecT(d.uh, dhc) // gradient wrt (r ⊙ prev)
		dr := make([]float64, hidden)
		for i := 0; i < hidden; i++ {
			dr[i] = duhIn[i] * prev[i] * r[i] * (1 - r[i])
			dprev[i] += duhIn[i] * r[i]
		}

		// Accumulate parameter gradients.
		rh := make([]float64, hidden)
		for i := range rh {
			rh[i] = r[i] * prev[i]
		}
		outerAcc(g.wz, dz, xs[t])
		outerAcc(g.uz, dz, prev)
		addInPlace(g.bz, dz)
		outerAcc(g.wr, dr, xs[t])
		outerAcc(g.ur, dr, prev)
		addInPlace(g.br, dr)
		outerAcc(g.wh, dhc, xs[t])
		outerAcc(g.uh, dhc, rh)
		addInPlace(g.bh, dhc)

		// Gradient wrt prev through the gates.
		addInPlace(dprev, matVecT(d.uz, dz))
		addInPlace(dprev, matVecT(d.ur, dr))
		carry = dprev
	}
}

// apply performs an SGD update with the given scale (lr/batch) after norm
// clipping computed by the caller.
func (d *gruDir) apply(g *gruGrads, scale float64) {
	axpyMat(d.wz, g.wz, -scale)
	axpyMat(d.wr, g.wr, -scale)
	axpyMat(d.wh, g.wh, -scale)
	axpyMat(d.uz, g.uz, -scale)
	axpyMat(d.ur, g.ur, -scale)
	axpyMat(d.uh, g.uh, -scale)
	axpyVec(d.bz, g.bz, -scale)
	axpyVec(d.br, g.br, -scale)
	axpyVec(d.bh, g.bh, -scale)
}

func (g *gruGrads) sqNorm() float64 {
	var s float64
	for _, m := range []*matrix{g.wz, g.wr, g.wh, g.uz, g.ur, g.uh} {
		for _, v := range m.data {
			s += v * v
		}
	}
	for _, b := range [][]float64{g.bz, g.br, g.bh} {
		for _, v := range b {
			s += v * v
		}
	}
	return s
}

// BiGRUCTC is the full sequence model: a bidirectional GRU feeding a linear
// projection to per-timestep logits over classes+1 symbols (index 0 is the
// CTC blank).
type BiGRUCTC struct {
	cfg GRUConfig
	fwd *gruDir
	bwd *gruDir
	wo  *matrix // (classes+1) × 2*hidden
	bo  []float64
	r   *rng.Source
}

// NewBiGRUCTC builds the model.
func NewBiGRUCTC(cfg GRUConfig) (*BiGRUCTC, error) {
	if cfg.InputDim < 1 || cfg.Hidden < 1 || cfg.Classes < 1 {
		return nil, fmt.Errorf("ml: invalid GRU config %+v", cfg)
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.02
	}
	if cfg.GradClip <= 0 {
		cfg.GradClip = 5
	}
	r := rng.New(cfg.Seed).Split("bigru")
	m := &BiGRUCTC{
		cfg: cfg,
		fwd: newGRUDir(cfg.Hidden, cfg.InputDim, r),
		bwd: newGRUDir(cfg.Hidden, cfg.InputDim, r),
		wo:  newMatrix(cfg.Classes+1, 2*cfg.Hidden),
		bo:  make([]float64, cfg.Classes+1),
		r:   r,
	}
	m.wo.glorotInit(r)
	return m, nil
}

// Logits runs the network over a sequence (T × InputDim) and returns per-
// timestep logits (T × Classes+1).
func (m *BiGRUCTC) Logits(xs [][]float64) ([][]float64, error) {
	logits, _, _, err := m.forwardFull(xs)
	return logits, err
}

func (m *BiGRUCTC) forwardFull(xs [][]float64) ([][]float64, *gruTrace, *gruTrace, error) {
	if len(xs) == 0 {
		return nil, nil, nil, ErrNoTrainingData
	}
	for t, x := range xs {
		if len(x) != m.cfg.InputDim {
			return nil, nil, nil, fmt.Errorf("%w: timestep %d has %d features, want %d",
				ErrShapeMismatch, t, len(x), m.cfg.InputDim)
		}
	}
	T := len(xs)
	fwdTr := m.fwd.forward(xs, m.cfg.Hidden)
	rev := make([][]float64, T)
	for t := 0; t < T; t++ {
		rev[t] = xs[T-1-t]
	}
	bwdTr := m.bwd.forward(rev, m.cfg.Hidden)

	logits := make([][]float64, T)
	for t := 0; t < T; t++ {
		cat := make([]float64, 2*m.cfg.Hidden)
		copy(cat, fwdTr.h[t])
		copy(cat[m.cfg.Hidden:], bwdTr.h[T-1-t])
		logits[t] = matVec(m.wo, cat, m.bo)
	}
	return logits, fwdTr, bwdTr, nil
}

// TrainStep runs one CTC-SGD step on a single (sequence, label) pair and
// returns the CTC loss. Labels use the external alphabet [0, Classes); the
// blank is handled internally.
func (m *BiGRUCTC) TrainStep(xs [][]float64, label []int) (float64, error) {
	logits, fwdTr, bwdTr, err := m.forwardFull(xs)
	if err != nil {
		return 0, err
	}
	loss, dLogits, err := ctcLossGrad(logits, label, m.cfg.Classes)
	if err != nil {
		return 0, err
	}
	T := len(xs)
	H := m.cfg.Hidden

	// Backprop through the output layer.
	gwo := newMatrix(m.wo.rows, m.wo.cols)
	gbo := make([]float64, len(m.bo))
	dhF := make([][]float64, T)
	dhB := make([][]float64, T)
	for t := 0; t < T; t++ {
		cat := make([]float64, 2*H)
		copy(cat, fwdTr.h[t])
		copy(cat[H:], bwdTr.h[T-1-t])
		outerAcc(gwo, dLogits[t], cat)
		addInPlace(gbo, dLogits[t])
		dcat := matVecT(m.wo, dLogits[t])
		dhF[t] = dcat[:H]
		if dhB[T-1-t] == nil {
			dhB[T-1-t] = make([]float64, H)
		}
		copy(dhB[T-1-t], dcat[H:])
	}

	rev := make([][]float64, T)
	for t := 0; t < T; t++ {
		rev[t] = xs[T-1-t]
	}
	gF := newGRUGrads(H, m.cfg.InputDim)
	gB := newGRUGrads(H, m.cfg.InputDim)
	m.fwd.backward(xs, fwdTr, dhF, gF, H)
	m.bwd.backward(rev, bwdTr, dhB, gB, H)

	// Global norm clipping.
	norm := math.Sqrt(gF.sqNorm() + gB.sqNorm() + matSqNorm(gwo) + vecSqNorm(gbo))
	scale := m.cfg.LR
	if norm > m.cfg.GradClip {
		scale *= m.cfg.GradClip / norm
	}
	m.fwd.apply(gF, scale)
	m.bwd.apply(gB, scale)
	axpyMat(m.wo, gwo, -scale)
	axpyVec(m.bo, gbo, -scale)
	return loss, nil
}

// Decode returns the greedy CTC decoding of a sequence: per-timestep argmax,
// collapse repeats, drop blanks.
func (m *BiGRUCTC) Decode(xs [][]float64) ([]int, error) {
	logits, err := m.Logits(xs)
	if err != nil {
		return nil, err
	}
	return GreedyCTCDecode(logits), nil
}

// DecodeBeam returns the beam-search CTC decoding with the given width.
func (m *BiGRUCTC) DecodeBeam(xs [][]float64, width int) ([]int, error) {
	logits, err := m.Logits(xs)
	if err != nil {
		return nil, err
	}
	return BeamCTCDecode(logits, width), nil
}

// helper kernels ------------------------------------------------------------

func addInPlace(dst, src []float64) {
	for i := range src {
		dst[i] += src[i]
	}
}

// outerAcc accumulates m += a bᵀ (a len rows, b len cols).
func outerAcc(m *matrix, a, b []float64) {
	for r := 0; r < m.rows; r++ {
		av := a[r]
		if av == 0 {
			continue
		}
		row := m.row(r)
		for c := range row {
			row[c] += av * b[c]
		}
	}
}

func axpyMat(dst, src *matrix, alpha float64) {
	for i := range dst.data {
		dst.data[i] += alpha * src.data[i]
	}
}

func axpyVec(dst, src []float64, alpha float64) {
	for i := range dst {
		dst[i] += alpha * src[i]
	}
}

func matSqNorm(m *matrix) float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return s
}

func vecSqNorm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return s
}
