package ml

import (
	"errors"
	"math"
	"testing"

	"github.com/repro/aegis/internal/rng"
)

// seqBlobs builds channels×length series whose class determines where a
// bump appears in the series — the translation-variant version separable
// only with positional features, and a translation-invariant variant
// where the class determines the bump count.
func seqBlobs(r *rng.Source, classes, perClass, channels, length int) (xs [][][]float64, ys []int) {
	for c := 0; c < classes; c++ {
		for i := 0; i < perClass; i++ {
			x := make([][]float64, channels)
			for ch := range x {
				row := make([]float64, length)
				for t := range row {
					row[t] = r.Gaussian(0, 0.3)
				}
				x[ch] = row
			}
			// Class c gets c+1 bumps at random positions on channel 0.
			for b := 0; b <= c; b++ {
				pos := r.Intn(length)
				x[0][pos] += 5
			}
			xs = append(xs, x)
			ys = append(ys, c)
		}
	}
	return xs, ys
}

func TestCNNLearnsBumpCounting(t *testing.T) {
	r := rng.New(1)
	const classes, perClass, channels, length = 3, 30, 2, 40
	xs, ys := seqBlobs(r, classes, perClass, channels, length)
	valX, valY := seqBlobs(r, classes, 10, channels, length)

	cfg := DefaultCNNConfig(channels, length, classes)
	cfg.LR = 0.03
	cnn, err := NewCNN1D(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := cnn.Train(xs, ys, 30, valX, valY)
	if err != nil {
		t.Fatal(err)
	}
	final := stats[len(stats)-1]
	if math.IsNaN(final.TrainLoss) {
		t.Fatal("training diverged")
	}
	// Counting translated bumps is exactly what convolution+global
	// pooling does well; random guess is 1/3.
	if final.ValAcc < 0.7 {
		t.Errorf("val accuracy = %v, want > 0.7", final.ValAcc)
	}
	if final.TrainLoss >= stats[0].TrainLoss {
		t.Errorf("loss did not decrease: %v -> %v", stats[0].TrainLoss, final.TrainLoss)
	}
}

func TestCNNTranslationInvariance(t *testing.T) {
	// A trained CNN must classify the same pattern shifted in time
	// identically most of the time.
	r := rng.New(2)
	const classes, channels, length = 2, 1, 32
	mk := func(class, pos int) [][]float64 {
		x := [][]float64{make([]float64, length)}
		for t := range x[0] {
			x[0][t] = r.Gaussian(0, 0.1)
		}
		// class 0: single bump; class 1: double bump.
		x[0][pos] += 4
		if class == 1 {
			x[0][(pos+8)%length] += 4
		}
		return x
	}
	var xs [][][]float64
	var ys []int
	for i := 0; i < 60; i++ {
		c := i % classes
		xs = append(xs, mk(c, r.Intn(length)))
		ys = append(ys, c)
	}
	cnn, err := NewCNN1D(DefaultCNNConfig(channels, length, classes))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cnn.Train(xs, ys, 40, nil, nil); err != nil {
		t.Fatal(err)
	}
	agree := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		c := i % classes
		p1, err := cnn.Predict(mk(c, 3))
		if err != nil {
			t.Fatal(err)
		}
		p2, err := cnn.Predict(mk(c, 20))
		if err != nil {
			t.Fatal(err)
		}
		if p1 == p2 {
			agree++
		}
	}
	if agree < trials*2/3 {
		t.Errorf("shifted inputs agreed only %d/%d times", agree, trials)
	}
}

func TestCNNConfigValidation(t *testing.T) {
	if _, err := NewCNN1D(CNNConfig{}); err == nil {
		t.Error("zero config accepted")
	}
	cfg := DefaultCNNConfig(2, 6, 3) // too short for two convs at stride 2
	if _, err := NewCNN1D(cfg); err == nil {
		t.Error("too-short input accepted")
	}
}

func TestCNNShapeErrors(t *testing.T) {
	cnn, err := NewCNN1D(DefaultCNNConfig(2, 40, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cnn.Predict([][]float64{make([]float64, 40)}); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("wrong channels error = %v", err)
	}
	if _, err := cnn.Predict([][]float64{make([]float64, 10), make([]float64, 10)}); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("wrong length error = %v", err)
	}
	if _, _, err := cnn.Evaluate(nil, nil); !errors.Is(err, ErrNoTrainingData) {
		t.Errorf("empty eval error = %v", err)
	}
	if _, err := cnn.Train(nil, nil, 1, nil, nil); !errors.Is(err, ErrNoTrainingData) {
		t.Errorf("empty train error = %v", err)
	}
}

func TestCNNProbaSumsToOne(t *testing.T) {
	cnn, err := NewCNN1D(DefaultCNNConfig(2, 40, 4))
	if err != nil {
		t.Fatal(err)
	}
	x := [][]float64{make([]float64, 40), make([]float64, 40)}
	p, err := cnn.Proba(x)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestConvLayerOutputLength(t *testing.T) {
	l := newConvLayer(1, 1, 5, 2, rng.New(1))
	for _, tc := range []struct{ in, want int }{
		{5, 1}, {6, 1}, {7, 2}, {9, 3}, {4, 0},
	} {
		if got := l.outLen(tc.in); got != tc.want {
			t.Errorf("outLen(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestConvGradientNumerical(t *testing.T) {
	// Finite-difference check of the conv layer gradient through a tiny
	// network loss = sum(forward(x)).
	r := rng.New(5)
	l := newConvLayer(2, 2, 3, 1, r)
	in := [][]float64{
		{0.5, -0.2, 0.3, 0.8, -0.1},
		{-0.4, 0.1, 0.9, -0.6, 0.2},
	}
	lossOf := func() float64 {
		out := l.forward(in)
		var s float64
		for _, row := range out {
			for _, v := range row {
				s += v
			}
		}
		return s
	}
	// Analytic gradient: dOut = all ones.
	out := l.forward(in)
	dOut := make([][]float64, len(out))
	for f := range dOut {
		dOut[f] = make([]float64, len(out[f]))
		for t := range dOut[f] {
			dOut[f][t] = 1
		}
	}
	gw := make([]float64, len(l.w))
	gb := make([]float64, len(l.b))
	dIn := l.backward(in, dOut, gw, gb)

	const eps = 1e-6
	// Probe a few weights.
	for _, wi := range []int{0, 3, 7, len(l.w) - 1} {
		orig := l.w[wi]
		l.w[wi] = orig + eps
		lp := lossOf()
		l.w[wi] = orig - eps
		lm := lossOf()
		l.w[wi] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-gw[wi]) > 1e-5 {
			t.Errorf("w[%d] grad: numeric %v vs analytic %v", wi, numeric, gw[wi])
		}
	}
	// Probe an input element.
	orig := in[1][2]
	in[1][2] = orig + eps
	lp := lossOf()
	in[1][2] = orig - eps
	lm := lossOf()
	in[1][2] = orig
	numeric := (lp - lm) / (2 * eps)
	if math.Abs(numeric-dIn[1][2]) > 1e-5 {
		t.Errorf("dIn[1][2]: numeric %v vs analytic %v", numeric, dIn[1][2])
	}
}
