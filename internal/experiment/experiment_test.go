package experiment

import (
	"strings"
	"testing"

	"github.com/repro/aegis/internal/hpc"
)

func TestTable1MatchesPaper(t *testing.T) {
	res := Table1()
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	want := map[string]int{
		"Intel Xeon E5-1650": 6166,
		"Intel Xeon E5-4617": 6172,
		"AMD EPYC 7252":      1903,
		"AMD EPYC 7313P":     1903,
	}
	for _, row := range res.Rows {
		if row.Events != want[row.Processor] {
			t.Errorf("%s events = %d, want %d", row.Processor, row.Events, want[row.Processor])
		}
	}
	// AMD family: identical catalogs (paper: 0 different events).
	if res.Rows[3].DifferentWithinFamily != 0 {
		t.Errorf("AMD family diff = %d, want 0", res.Rows[3].DifferentWithinFamily)
	}
	// Intel family: a small number of differing events (paper: 14).
	if d := res.Rows[1].DifferentWithinFamily; d < 14 || d > 40 {
		t.Errorf("Intel family diff = %d, want small non-zero", d)
	}
	if !strings.Contains(res.Render(), "6166") {
		t.Error("render missing event count")
	}
}

func TestTable2Shape(t *testing.T) {
	res, err := Table2(TestScale(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Paper Table II brackets: H and HC survive fully; S and O vanish.
		if row.RemainingShare[hpc.TypeHardware] < 0.9 {
			t.Errorf("%s: hardware survival = %v, want ~1", row.Processor, row.RemainingShare[hpc.TypeHardware])
		}
		if row.RemainingShare[hpc.TypeSoftware] != 0 || row.RemainingShare[hpc.TypeOther] != 0 {
			t.Errorf("%s: software/other events survived warm-up", row.Processor)
		}
		if row.RemainingShare[hpc.TypeTracepoint] > 0.12 {
			t.Errorf("%s: tracepoint survival = %v, want small", row.Processor, row.RemainingShare[hpc.TypeTracepoint])
		}
		if row.RemainingTotal == 0 {
			t.Errorf("%s: nothing survived", row.Processor)
		}
	}
	// AMD is tracepoint-dominated; Intel is "other"-dominated.
	intel, amd := res.Rows[0], res.Rows[1]
	if intel.Share[hpc.TypeOther] < 0.5 {
		t.Errorf("intel other share = %v", intel.Share[hpc.TypeOther])
	}
	if amd.Share[hpc.TypeTracepoint] < 0.8 {
		t.Errorf("amd tracepoint share = %v", amd.Share[hpc.TypeTracepoint])
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestTable3Shape(t *testing.T) {
	res, err := Table3(TestScale(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Paper Table III: generation+execution dominates; cleanup and
		// filtering are fast.
		if row.GenerateExec <= row.Filtering {
			t.Errorf("%s: gen+exec %v not above filtering %v", row.Processor, row.GenerateExec, row.Filtering)
		}
		if row.Throughput <= 0 {
			t.Errorf("%s: throughput %v", row.Processor, row.Throughput)
		}
		if row.GadgetsTried == 0 {
			t.Errorf("%s: no gadgets tried", row.Processor)
		}
	}
	// Legal instruction counts match the paper's cleanup results.
	if res.Rows[0].LegalVariants != 3386 || res.Rows[1].LegalVariants != 3407 {
		t.Errorf("legal variants = %d/%d, want 3386/3407",
			res.Rows[0].LegalVariants, res.Rows[1].LegalVariants)
	}
}

func TestFigure3Shape(t *testing.T) {
	sc := TestScale(3)
	res, err := Figure3(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Event != "DATA_CACHE_REFILLS_FROM_SYSTEM" {
		t.Errorf("event = %s", res.Event)
	}
	// Fig. 3b: near-Gaussian event values.
	if res.QQCorr < 0.9 {
		t.Errorf("QQ correlation = %v, want > 0.9", res.QQCorr)
	}
	if len(res.PerSite) < 2 {
		t.Fatalf("per-site fits = %d", len(res.PerSite))
	}
	// Fig. 3c: distinct sites have distinct means.
	mus := map[string]bool{}
	for _, c := range res.PerSite {
		mus[f2(c.Dist.Mu)] = true
	}
	if len(mus) < 2 {
		t.Error("all sites produced identical Gaussian means")
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestAblationNoiseBuffer(t *testing.T) {
	res := AblationNoiseBuffer(1 << 18)
	if res.BufferedNsPerSample <= 0 || res.DirectNsPerSample <= 0 {
		t.Fatalf("timings = %+v", res)
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestAblationSetCover(t *testing.T) {
	res, err := AblationSetCover(TestScale(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.CoverSize == 0 {
		t.Fatal("empty cover")
	}
	// The whole point of the cover: fewer gadgets than events with
	// confirmed gadgets.
	if res.CoverSize > res.PerEventCount {
		t.Errorf("cover %d exceeds per-event %d", res.CoverSize, res.PerEventCount)
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestAblationConfirmation(t *testing.T) {
	res, err := AblationConfirmation(TestScale(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Unconfirmed == 0 {
		t.Skip("no raw candidates at this scale")
	}
	if res.Confirmed > res.Unconfirmed {
		t.Errorf("confirmation added gadgets: %d > %d", res.Confirmed, res.Unconfirmed)
	}
	// The confirmation mechanisms must reject something: unconfirmed
	// screening keeps noise-induced false positives.
	if res.FalsePositiveRate() <= 0 {
		t.Errorf("false positive rate = %v, want > 0", res.FalsePositiveRate())
	}
}

func TestAblationPCA(t *testing.T) {
	res, err := AblationPCA(TestScale(6))
	if err != nil {
		t.Fatal(err)
	}
	if res.TopOverlap < 0 || res.TopOverlap > 1 {
		t.Errorf("overlap = %v", res.TopOverlap)
	}
	if res.PCAMeanMI <= 0 {
		t.Errorf("PCA mean MI = %v", res.PCAMeanMI)
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestFigure9cMIShrinksWithNoise(t *testing.T) {
	sc := TestScale(7)
	sc.Sites = 3
	sc.TracesPerSecret = 3
	res, err := Figure9c(sc, []float64{0.125, 1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.CleanSelfMI <= 0 {
		t.Fatalf("clean self-MI = %v", res.CleanSelfMI)
	}
	for _, mech := range []MechanismKind{MechLaplace, MechDStar} {
		lo := res.MI(mech, 0.125)
		hi := res.MI(mech, 8)
		if lo < 0 || hi < 0 {
			t.Fatalf("%s: missing points", mech)
		}
		// Smaller epsilon => more noise => less residual MI.
		if lo >= hi {
			t.Errorf("%s: MI at eps=0.125 (%v) not below eps=8 (%v)", mech, lo, hi)
		}
		// All noised MI below the clean self-MI.
		if hi >= res.CleanSelfMI {
			t.Errorf("%s: noised MI %v not below clean self-MI %v", mech, hi, res.CleanSelfMI)
		}
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestEpsilonSweeps(t *testing.T) {
	eps := Epsilons()
	if len(eps) != 7 || eps[0] != 0.125 || eps[6] != 8 {
		t.Errorf("epsilons = %v, want 2^-3..2^3", eps)
	}
	adaptive := EpsilonsAdaptive()
	if adaptive[0] >= eps[0] {
		t.Error("adaptive sweep must extend below the standard sweep")
	}
}

func TestTableHelper(t *testing.T) {
	out := table([]string{"a", "b"}, [][]string{{"1", "2"}})
	if !strings.Contains(out, "a") || !strings.Contains(out, "1") {
		t.Errorf("table output %q", out)
	}
}
