package experiment

import (
	"fmt"

	"github.com/repro/aegis/internal/attack"
	"github.com/repro/aegis/internal/ml"
	"github.com/repro/aegis/internal/trace"
)

// AttackName identifies one of the three case-study attacks.
type AttackName string

// The three attacks of paper §III.
const (
	WFA AttackName = "WFA"
	KSA AttackName = "KSA"
	MEA AttackName = "MEA"
)

// CurvePoint is one epoch of a Fig. 1 training curve.
type CurvePoint struct {
	Epoch    int
	Loss     float64
	Accuracy float64 // validation accuracy
}

// Figure1Attack is one panel of Fig. 1.
type Figure1Attack struct {
	Attack AttackName
	Curve  []CurvePoint
	// FinalValAcc is the stabilised validation accuracy (paper: 98.72% /
	// 95.21% / 91.8%).
	FinalValAcc float64
	// VictimAcc is the accuracy on freshly collected victim traces
	// (paper: 98.57% / 95.48% / 90.5%).
	VictimAcc float64
	// RandomGuess is the chance baseline for this attack.
	RandomGuess float64
}

// Figure1Result reproduces Fig. 1: training curves and final accuracies of
// the three attacks on clean traces.
type Figure1Result struct {
	Attacks []Figure1Attack
}

// trainedAttacks bundles the clean datasets and trained models so Fig. 9
// experiments can reuse them without re-collecting.
type trainedAttacks struct {
	wfaData *trace.Dataset
	ksaData *trace.Dataset
	meaData *trace.Dataset
	wfa     *attack.Classifier
	ksa     *attack.Classifier
	mea     *attack.SequenceAttack
}

// trainAll collects clean datasets and trains the three attack models.
func trainAll(sc Scale) (*trainedAttacks, *Figure1Result, error) {
	out := &Figure1Result{}
	ta := &trainedAttacks{}

	// WFA.
	wfaSc := scenarioFor(websiteApp(sc), sc, 100)
	wfaData, err := wfaSc.Collect(nil)
	if err != nil {
		return nil, nil, fmt.Errorf("collect WFA: %w", err)
	}
	ta.wfaData = wfaData
	wfaCfg := attack.DefaultTrainConfig(sc.Seed)
	wfaCfg.Epochs = sc.Epochs
	wfaClf, wfaStats, err := attack.TrainClassifier(wfaData, wfaCfg)
	if err != nil {
		return nil, nil, fmt.Errorf("train WFA: %w", err)
	}
	ta.wfa = wfaClf
	victim, err := victimAccuracyClassifier(wfaSc, wfaClf, sc, 2)
	if err != nil {
		return nil, nil, err
	}
	out.Attacks = append(out.Attacks, figure1Panel(WFA, wfaStats, victim,
		1/float64(len(wfaSc.App.Secrets()))))

	// KSA.
	ksaSc := scenarioFor(keystrokeApp(sc), sc, 200)
	ksaData, err := ksaSc.Collect(nil)
	if err != nil {
		return nil, nil, fmt.Errorf("collect KSA: %w", err)
	}
	ta.ksaData = ksaData
	ksaCfg := attack.DefaultTrainConfig(sc.Seed + 1)
	ksaCfg.Epochs = sc.Epochs
	ksaClf, ksaStats, err := attack.TrainClassifier(ksaData, ksaCfg)
	if err != nil {
		return nil, nil, fmt.Errorf("train KSA: %w", err)
	}
	ta.ksa = ksaClf
	victim, err = victimAccuracyClassifier(ksaSc, ksaClf, sc, 2)
	if err != nil {
		return nil, nil, err
	}
	out.Attacks = append(out.Attacks, figure1Panel(KSA, ksaStats, victim,
		1/float64(len(ksaSc.App.Secrets()))))

	// MEA.
	app := dnnApp(sc)
	meaSc := scenarioFor(app, sc, 300)
	meaData, err := meaSc.Collect(nil)
	if err != nil {
		return nil, nil, fmt.Errorf("collect MEA: %w", err)
	}
	ta.meaData = meaData
	meaCfg := attack.DefaultSequenceTrainConfig(sc.Seed + 2)
	meaCfg.Epochs = sc.SeqEpochs
	meaAtk, meaStats, err := attack.TrainSequenceAttack(meaData, app, meaCfg)
	if err != nil {
		return nil, nil, fmt.Errorf("train MEA: %w", err)
	}
	ta.mea = meaAtk
	meaVictimSc := *meaSc
	meaVictimSc.Seed += 1000
	meaVictimSc.TracesPerSecret = 2
	victimData, err := meaVictimSc.Collect(nil)
	if err != nil {
		return nil, nil, err
	}
	meaVictim, err := meaAtk.Evaluate(victimData)
	if err != nil {
		return nil, nil, err
	}
	panel := Figure1Attack{Attack: MEA, VictimAcc: meaVictim, RandomGuess: 0}
	for _, st := range meaStats {
		panel.Curve = append(panel.Curve, CurvePoint{Epoch: st.Epoch, Loss: st.TrainLoss, Accuracy: st.ValAcc})
	}
	if len(meaStats) > 0 {
		panel.FinalValAcc = meaStats[len(meaStats)-1].ValAcc
	}
	out.Attacks = append(out.Attacks, panel)

	return ta, out, nil
}

func figure1Panel(name AttackName, stats []ml.EpochStats, victimAcc, chance float64) Figure1Attack {
	panel := Figure1Attack{Attack: name, VictimAcc: victimAcc, RandomGuess: chance}
	for _, st := range stats {
		panel.Curve = append(panel.Curve, CurvePoint{Epoch: st.Epoch, Loss: st.ValLoss, Accuracy: st.ValAcc})
	}
	if len(stats) > 0 {
		panel.FinalValAcc = stats[len(stats)-1].ValAcc
	}
	return panel
}

// victimAccuracyClassifier evaluates a trained classifier on freshly
// collected victim traces.
func victimAccuracyClassifier(sc *attack.Scenario, clf *attack.Classifier, scale Scale, reps int) (float64, error) {
	victimSc := *sc
	victimSc.Seed += 1000
	victimSc.TracesPerSecret = reps
	ds, err := victimSc.Collect(nil)
	if err != nil {
		return 0, err
	}
	return clf.Evaluate(ds)
}

// Figure1 runs the three clean attacks and returns their training curves.
func Figure1(sc Scale) (*Figure1Result, error) {
	_, res, err := trainAll(sc)
	return res, err
}

// Render prints the figure data as series.
func (r *Figure1Result) Render() string {
	out := "Figure 1: attack training curves (validation accuracy per epoch)\n"
	for _, a := range r.Attacks {
		rows := make([][]string, 0, len(a.Curve))
		for _, p := range a.Curve {
			rows = append(rows, []string{
				fmt.Sprintf("%d", p.Epoch), f4(p.Loss), pct(p.Accuracy),
			})
		}
		out += fmt.Sprintf("\n%s (final val %.1f%%, victim %.1f%%, chance %.1f%%)\n",
			a.Attack, a.FinalValAcc*100, a.VictimAcc*100, a.RandomGuess*100)
		out += table([]string{"epoch", "loss", "val acc"}, rows)
	}
	return out
}
