// Package experiment regenerates every table and figure of the paper's
// evaluation (§VIII, §IX) on the simulated SEV world. Each experiment
// returns structured rows/series and renders the same shape of output the
// paper reports; cmd/aegis-bench prints them and bench_test.go wraps each
// in a testing.B benchmark.
//
// Absolute numbers differ from the paper — the substrate is a simulator,
// not an EPYC testbed — but the qualitative results (who wins, by what
// factor, where the crossovers fall) reproduce. EXPERIMENTS.md records
// paper-vs-measured values per experiment.
package experiment

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"github.com/repro/aegis/internal/artifact"
)

// Scale sizes an experiment run. Tests use TestScale; the bench harness
// uses EvalScale. The paper's full scale (45 sites × 1000 loads × 3000
// ticks) is hours of simulation; EvalScale preserves every qualitative
// relationship at a tractable size.
type Scale struct {
	// Sites is the number of website secrets (paper: 45).
	Sites int
	// KeyClasses is the number of keystroke-count secrets (paper: 10).
	KeyClasses int
	// Models is the number of DNN zoo models (paper: 30).
	Models int
	// TracesPerSecret is the recordings per secret (paper: 1000).
	TracesPerSecret int
	// TraceTicks is the recording length (paper: 3000 × 1 ms).
	TraceTicks int
	// Epochs of attack-model training.
	Epochs int
	// SeqEpochs of MEA training.
	SeqEpochs int
	// FuzzCandidates per event (paper fuzzes the full 3407² product).
	FuzzCandidates int
	// RankRepeats per secret in profiling (paper: 100).
	RankRepeats int
	// Parallelism bounds the worker pools of the fuzzing and profiling
	// pipelines; <= 0 means GOMAXPROCS. Results are byte-identical at any
	// value — only wall-clock time changes.
	Parallelism int
	// ArtifactDir, when non-empty, backs the profiling and fuzzing
	// experiments with a versioned artifact store rooted there: campaign
	// shards checkpoint at merge points and matching shards resume on
	// re-runs. Results are byte-identical with or without the store.
	ArtifactDir string
	// FaultPreset names the substrate fault intensity for the robustness
	// experiment ("off", "light", "heavy"); empty means the experiment
	// sweeps all presets. Other experiments run on a healthy substrate
	// regardless, so recorded EXPERIMENTS.md numbers are unaffected.
	FaultPreset string
	// Seed drives everything.
	Seed uint64
}

// TestScale returns a minimal configuration for unit tests.
func TestScale(seed uint64) Scale {
	return Scale{
		Sites:           4,
		KeyClasses:      3,
		Models:          3,
		TracesPerSecret: 6,
		TraceTicks:      80,
		Epochs:          12,
		SeqEpochs:       6,
		FuzzCandidates:  150,
		RankRepeats:     4,
		Seed:            seed,
	}
}

// EvalScale returns the benchmark configuration used for the recorded
// EXPERIMENTS.md numbers.
func EvalScale(seed uint64) Scale {
	return Scale{
		Sites:           8,
		KeyClasses:      6,
		Models:          6,
		TracesPerSecret: 12,
		TraceTicks:      120,
		Epochs:          25,
		SeqEpochs:       10,
		FuzzCandidates:  800,
		RankRepeats:     8,
		Seed:            seed,
	}
}

// Store opens the scale's artifact store, or returns nil (no error) when
// no ArtifactDir is configured.
func (sc Scale) Store() (*artifact.Store, error) {
	if sc.ArtifactDir == "" {
		return nil, nil
	}
	return artifact.Open(sc.ArtifactDir)
}

// Epsilons returns the paper's Fig. 9a privacy budget sweep 2^-3 .. 2^3.
func Epsilons() []float64 {
	return []float64{0.125, 0.25, 0.5, 1, 2, 4, 8}
}

// EpsilonsAdaptive returns the Fig. 9b sweep 2^-8 .. 2^3.
func EpsilonsAdaptive() []float64 {
	return []float64{1.0 / 256, 1.0 / 64, 1.0 / 16, 0.125, 0.5, 2, 8}
}

// table renders rows with a tabwriter; every experiment's Render goes
// through it for a consistent look.
func table(header []string, rows [][]string) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	w.Flush()
	return sb.String()
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string  { return fmt.Sprintf("%.4f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
