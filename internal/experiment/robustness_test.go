package experiment

import (
	"strings"
	"testing"

	"github.com/repro/aegis/internal/faultinject"
)

func TestRobustnessSweepsPresets(t *testing.T) {
	res, err := Robustness(TestScale(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want one per preset", len(res.Rows))
	}
	byPreset := map[string]RobustnessRow{}
	for _, row := range res.Rows {
		byPreset[row.Preset] = row
		if row.Ticks <= 0 {
			t.Errorf("%s: obfuscator never ticked", row.Preset)
		}
		// Funnel: every tick lands in exactly one outcome bucket.
		if got := row.InjectedTicks + row.ZeroDraw + row.NoInjection + row.Degraded; got != row.Ticks {
			t.Errorf("%s: outcome funnel %d != ticks %d", row.Preset, got, row.Ticks)
		}
	}
	off := byPreset[faultinject.PresetOff]
	if !off.Full || off.FaultsTotal != 0 || off.Degraded != 0 {
		t.Errorf("healthy substrate reported degradation: %+v", off)
	}
	for _, preset := range []string{faultinject.PresetLight, faultinject.PresetHeavy} {
		row := byPreset[preset]
		if row.FaultsTotal == 0 {
			t.Errorf("%s: no faults injected", preset)
		}
		if row.Full {
			t.Errorf("%s: full protection claimed under injected faults", preset)
		}
	}
	out := res.Render()
	for _, want := range []string{"preset", "degraded", "off", "light", "heavy"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestRobustnessSinglePreset(t *testing.T) {
	sc := TestScale(2)
	sc.FaultPreset = faultinject.PresetHeavy
	res, err := Robustness(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want off + heavy", len(res.Rows))
	}
	if res.Rows[0].Preset != faultinject.PresetOff || res.Rows[1].Preset != faultinject.PresetHeavy {
		t.Fatalf("presets = %s, %s", res.Rows[0].Preset, res.Rows[1].Preset)
	}
}
