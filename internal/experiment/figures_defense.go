package experiment

import (
	"fmt"

	"github.com/repro/aegis/internal/attack"
	"github.com/repro/aegis/internal/obfuscator"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/stats"
	"github.com/repro/aegis/internal/workload"
)

// DefensePoint is one (mechanism, ε, attack) accuracy measurement.
type DefensePoint struct {
	Mechanism MechanismKind
	Epsilon   float64
	Attack    AttackName
	Accuracy  float64
}

// Figure9aResult reproduces Fig. 9a: attack accuracy under defense as a
// function of ε, for a clean-trained attacker.
type Figure9aResult struct {
	// CleanAccuracy per attack (the undefended reference).
	CleanAccuracy map[AttackName]float64
	Points        []DefensePoint
	// RandomGuess per attack.
	RandomGuess map[AttackName]float64
}

// Figure9a trains the attacks on clean traces, then evaluates them on
// defended traces across the ε sweep for both DP mechanisms.
func Figure9a(sc Scale, epsilons []float64) (*Figure9aResult, error) {
	if epsilons == nil {
		epsilons = Epsilons()
	}
	kit, err := BuildDefenseKit(sc)
	if err != nil {
		return nil, err
	}
	ta, fig1, err := trainAll(sc)
	if err != nil {
		return nil, err
	}
	res := &Figure9aResult{
		CleanAccuracy: map[AttackName]float64{},
		RandomGuess:   map[AttackName]float64{},
	}
	for _, a := range fig1.Attacks {
		res.CleanAccuracy[a.Attack] = a.VictimAcc
		res.RandomGuess[a.Attack] = a.RandomGuess
	}

	evalDefended := func(name AttackName, mech MechanismKind, eps float64) (float64, error) {
		defense := kit.Defense(mech, eps)
		switch name {
		case WFA:
			sc2 := scenarioFor(websiteApp(sc), sc, 100+uint64(eps*1024)+hashMech(mech))
			sc2.TracesPerSecret = victimReps(sc)
			ds, err := sc2.Collect(defense)
			if err != nil {
				return 0, err
			}
			return ta.wfa.Evaluate(ds)
		case KSA:
			sc2 := scenarioFor(keystrokeApp(sc), sc, 200+uint64(eps*1024)+hashMech(mech))
			sc2.TracesPerSecret = victimReps(sc)
			ds, err := sc2.Collect(defense)
			if err != nil {
				return 0, err
			}
			return ta.ksa.Evaluate(ds)
		default:
			sc2 := scenarioFor(dnnApp(sc), sc, 300+uint64(eps*1024)+hashMech(mech))
			sc2.TracesPerSecret = victimReps(sc)
			ds, err := sc2.Collect(defense)
			if err != nil {
				return 0, err
			}
			return ta.mea.Evaluate(ds)
		}
	}

	for _, mech := range []MechanismKind{MechLaplace, MechDStar} {
		for _, eps := range epsilons {
			for _, name := range []AttackName{WFA, KSA, MEA} {
				acc, err := evalDefended(name, mech, eps)
				if err != nil {
					return nil, fmt.Errorf("defended %s %s eps=%v: %w", name, mech, eps, err)
				}
				res.Points = append(res.Points, DefensePoint{
					Mechanism: mech, Epsilon: eps, Attack: name, Accuracy: acc,
				})
			}
		}
	}
	return res, nil
}

func hashMech(m MechanismKind) uint64 {
	return rng.HashString(string(m)) % 4096
}

// victimReps bounds the defended-evaluation dataset size.
func victimReps(sc Scale) int {
	reps := sc.TracesPerSecret / 2
	if reps < 2 {
		reps = 2
	}
	return reps
}

// Accuracy returns the recorded accuracy of a point (0 if absent).
func (r *Figure9aResult) Accuracy(mech MechanismKind, eps float64, a AttackName) float64 {
	for _, p := range r.Points {
		if p.Mechanism == mech && p.Epsilon == eps && p.Attack == a {
			return p.Accuracy
		}
	}
	return 0
}

// Render prints the accuracy grid.
func (r *Figure9aResult) Render() string {
	out := "Figure 9a: attack accuracy under defense (clean-trained attacker)\n"
	out += fmt.Sprintf("clean accuracies: WFA %.1f%%  KSA %.1f%%  MEA %.1f%%\n",
		r.CleanAccuracy[WFA]*100, r.CleanAccuracy[KSA]*100, r.CleanAccuracy[MEA]*100)
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			string(p.Mechanism), fmt.Sprintf("%g", p.Epsilon), string(p.Attack), pct(p.Accuracy),
		})
	}
	return out + table([]string{"mechanism", "eps", "attack", "accuracy"}, rows)
}

// Figure9bResult reproduces Fig. 9b: the adaptive attacker who trains on
// defended traces.
type Figure9bResult struct {
	Points      []DefensePoint
	RandomGuess map[AttackName]float64
}

// Figure9b trains the attacker on noisy traces per (mechanism, ε) and
// evaluates on freshly defended traces.
func Figure9b(sc Scale, epsilons []float64) (*Figure9bResult, error) {
	if epsilons == nil {
		epsilons = EpsilonsAdaptive()
	}
	kit, err := BuildDefenseKit(sc)
	if err != nil {
		return nil, err
	}
	res := &Figure9bResult{RandomGuess: map[AttackName]float64{
		WFA: 1 / float64(len(websiteApp(sc).Secrets())),
		KSA: 1 / float64(len(keystrokeApp(sc).Secrets())),
	}}
	for _, mech := range []MechanismKind{MechLaplace, MechDStar} {
		for _, eps := range epsilons {
			defense := kit.Defense(mech, eps)
			for _, name := range []AttackName{WFA, KSA} {
				var app workload.App
				var off uint64
				if name == WFA {
					app, off = websiteApp(sc), 400
				} else {
					app, off = keystrokeApp(sc), 500
				}
				trainSc := scenarioFor(app, sc, off+uint64(eps*4096)+hashMech(mech))
				trainDs, err := trainSc.Collect(defense)
				if err != nil {
					return nil, err
				}
				cfg := attack.DefaultTrainConfig(sc.Seed + uint64(eps*64))
				cfg.Epochs = sc.Epochs
				clf, _, err := attack.TrainClassifier(trainDs, cfg)
				if err != nil {
					return nil, err
				}
				evalSc := scenarioFor(app, sc, off+2000+uint64(eps*4096)+hashMech(mech))
				evalSc.TracesPerSecret = victimReps(sc)
				evalDs, err := evalSc.Collect(defense)
				if err != nil {
					return nil, err
				}
				acc, err := clf.Evaluate(evalDs)
				if err != nil {
					return nil, err
				}
				res.Points = append(res.Points, DefensePoint{
					Mechanism: mech, Epsilon: eps, Attack: name, Accuracy: acc,
				})
			}
		}
	}
	return res, nil
}

// Accuracy returns the recorded accuracy of a point (0 if absent).
func (r *Figure9bResult) Accuracy(mech MechanismKind, eps float64, a AttackName) float64 {
	for _, p := range r.Points {
		if p.Mechanism == mech && p.Epsilon == eps && p.Attack == a {
			return p.Accuracy
		}
	}
	return 0
}

// Render prints the grid.
func (r *Figure9bResult) Render() string {
	out := "Figure 9b: adaptive attacker trained on defended traces\n"
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			string(p.Mechanism), fmt.Sprintf("%g", p.Epsilon), string(p.Attack), pct(p.Accuracy),
		})
	}
	return out + table([]string{"mechanism", "eps", "attack", "accuracy"}, rows)
}

// Figure9cPoint is one ε of the residual-MI curve.
type Figure9cPoint struct {
	Mechanism MechanismKind
	Epsilon   float64
	// MI is the estimated mutual information I(X;X') between clean and
	// noised per-tick counts, in bits.
	MI float64
}

// Figure9cResult reproduces Fig. 9c: I(X;X') shrinking as noise grows.
type Figure9cResult struct {
	Points []Figure9cPoint
	// CleanSelfMI is I(X;X) — the no-noise upper reference.
	CleanSelfMI float64
}

// Figure9c collects clean traces, then post-composes each DP mechanism's
// noise at every ε and estimates the binned MI between clean and noised
// per-tick values (the paper's information-theoretic defense argument:
// as I(X;X') falls, I(X';Y) falls with it).
func Figure9c(sc Scale, epsilons []float64) (*Figure9cResult, error) {
	if epsilons == nil {
		epsilons = Epsilons()
	}
	wfaSc := scenarioFor(websiteApp(sc), sc, 600)
	ds, err := wfaSc.Collect(nil)
	if err != nil {
		return nil, err
	}
	// Flatten the reference channel of every trace into one long series.
	var clean []float64
	for _, tr := range ds.Traces {
		clean = append(clean, tr.Channel(0)...)
	}
	res := &Figure9cResult{}
	selfMI, err := stats.BinnedMI(clean, clean, 16)
	if err != nil {
		return nil, err
	}
	res.CleanSelfMI = selfMI

	for _, mech := range []MechanismKind{MechLaplace, MechDStar} {
		for _, eps := range epsilons {
			noised := make([]float64, len(clean))
			var m obfuscator.Mechanism
			r := rng.New(sc.Seed + 7).Split(fmt.Sprintf("fig9c/%s/%g", mech, eps))
			// A milder sensitivity and a generous clip keep the noise in
			// its analytic regime across the whole sweep: with B_u too
			// tight, tiny ε degenerates to near-constant ceiling noise,
			// which paradoxically preserves MI.
			const sens, clip = 400.0, 200000.0
			if mech == MechLaplace {
				m, err = obfuscator.NewLaplaceMechanism(eps, sens, r)
			} else {
				m, err = obfuscator.NewDStarMechanism(eps, sens, r)
			}
			if err != nil {
				return nil, err
			}
			for i, x := range clean {
				n := m.Noise(int64(i+1), x)
				if n < 0 {
					n = 0
				}
				if n > clip {
					n = clip
				}
				noised[i] = x + n
				if d, ok := m.(*obfuscator.DStarMechanism); ok {
					d.Commit(int64(i+1), n)
				}
			}
			mi, err := stats.BinnedMI(clean, noised, 16)
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, Figure9cPoint{Mechanism: mech, Epsilon: eps, MI: mi})
		}
	}
	return res, nil
}

// MI returns the recorded MI for a point (-1 if absent).
func (r *Figure9cResult) MI(mech MechanismKind, eps float64) float64 {
	for _, p := range r.Points {
		if p.Mechanism == mech && p.Epsilon == eps {
			return p.MI
		}
	}
	return -1
}

// Render prints the curve.
func (r *Figure9cResult) Render() string {
	out := fmt.Sprintf("Figure 9c: residual mutual information I(X;X') (clean self-MI %.3f bits)\n", r.CleanSelfMI)
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{string(p.Mechanism), fmt.Sprintf("%g", p.Epsilon), f3(p.MI)})
	}
	return out + table([]string{"mechanism", "eps", "I(X;X') bits"}, rows)
}
