package experiment

import (
	"testing"
)

// The end-to-end defense experiments are the heaviest tests in the
// repository; they run at TestScale with truncated ε sweeps and are
// skipped under -short.

func TestFigure1AttacksSucceedOnCleanTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("full attack training skipped in -short mode")
	}
	sc := TestScale(11)
	res, err := Figure1(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Attacks) != 3 {
		t.Fatalf("attacks = %d", len(res.Attacks))
	}
	for _, a := range res.Attacks {
		if len(a.Curve) == 0 {
			t.Errorf("%s: empty training curve", a.Attack)
			continue
		}
		// Paper Fig. 1: accuracy climbs during training and the victim
		// accuracy lands far above chance.
		if a.FinalValAcc < a.Curve[0].Accuracy {
			t.Errorf("%s: accuracy fell during training (%v -> %v)",
				a.Attack, a.Curve[0].Accuracy, a.FinalValAcc)
		}
		switch a.Attack {
		case WFA, KSA:
			if a.VictimAcc <= 2*a.RandomGuess {
				t.Errorf("%s: victim accuracy %v not well above chance %v",
					a.Attack, a.VictimAcc, a.RandomGuess)
			}
		case MEA:
			if a.VictimAcc < 0.25 {
				t.Errorf("MEA victim accuracy = %v, want > 0.25 at test scale", a.VictimAcc)
			}
		}
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestFigure9aDefenseCollapsesAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("defense sweep skipped in -short mode")
	}
	sc := TestScale(12)
	res, err := Figure9a(sc, []float64{0.125, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, mech := range []MechanismKind{MechLaplace, MechDStar} {
		for _, a := range []AttackName{WFA, KSA} {
			strong := res.Accuracy(mech, 0.125, a)
			weak := res.Accuracy(mech, 8, a)
			clean := res.CleanAccuracy[a]
			// Paper Fig. 9a remark 1: both mechanisms collapse the attack;
			// remark 2: larger ε leaves more accuracy.
			if strong > clean {
				t.Errorf("%s/%s: defended accuracy %v above clean %v", mech, a, strong, clean)
			}
			if strong > weak+0.15 {
				t.Errorf("%s/%s: eps=0.125 accuracy %v well above eps=8 %v (not monotone)",
					mech, a, strong, weak)
			}
			guess := res.RandomGuess[a]
			if strong > clean-0.2 && strong > guess+0.35 {
				t.Errorf("%s/%s: strong defense accuracy %v shows no collapse (clean %v, chance %v)",
					mech, a, strong, clean, guess)
			}
		}
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestFigure10OverheadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead sweep skipped in -short mode")
	}
	sc := TestScale(13)
	res, err := Figure10(sc, []float64{0.25, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range []string{"website", "dnn"} {
		for _, mech := range []MechanismKind{MechLaplace, MechDStar} {
			strong, ok := res.Point(mech, 0.25, app)
			if !ok {
				t.Fatalf("missing point %s/%s", mech, app)
			}
			weak, ok := res.Point(mech, 8, app)
			if !ok {
				t.Fatalf("missing point %s/%s", mech, app)
			}
			// Paper Fig. 10: smaller ε costs more.
			if strong.LatencyOverhead < weak.LatencyOverhead-0.05 {
				t.Errorf("%s/%s: eps=0.25 latency %v below eps=8 %v",
					mech, app, strong.LatencyOverhead, weak.LatencyOverhead)
			}
			if strong.LatencyOverhead < 0 {
				t.Errorf("%s/%s: negative latency overhead %v", mech, app, strong.LatencyOverhead)
			}
			// CPU usage under defense must not drop below clean.
			if strong.CPUUsageDefended < strong.CPUUsageClean-0.02 {
				t.Errorf("%s/%s: defended CPU %v below clean %v",
					mech, app, strong.CPUUsageDefended, strong.CPUUsageClean)
			}
		}
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestFigure11RandomNoiseWeakerThanDP(t *testing.T) {
	if testing.Short() {
		t.Skip("random-noise sweep skipped in -short mode")
	}
	sc := TestScale(14)
	res, err := Figure11(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Paper Fig. 11: small random bounds leave high accuracy; the paper's
	// 0.1p bound leaves ~32% more accuracy than the DP noise. Injected
	// counts grow with the bound.
	if res.Points[0].InjectedCounts >= res.Points[4].InjectedCounts {
		t.Errorf("injected counts not increasing with bound: %v .. %v",
			res.Points[0].InjectedCounts, res.Points[4].InjectedCounts)
	}
	// At the smallest bound, random noise must be weaker than Laplace.
	if res.Points[0].Accuracy < res.LaplaceAccuracy-0.05 {
		t.Errorf("0.1p random noise accuracy %v below laplace %v — random should be weaker",
			res.Points[0].Accuracy, res.LaplaceAccuracy)
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestConstantOutputCostsMoreThanLaplace(t *testing.T) {
	if testing.Short() {
		t.Skip("constant-output comparison skipped in -short mode")
	}
	sc := TestScale(15)
	res, err := ConstantOutputComparison(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Paper §IX-A: constant output needs ~18× more injected noise.
	if res.Ratio() <= 1 {
		t.Errorf("constant/laplace injected ratio = %v, want > 1", res.Ratio())
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestFigure9bAdaptiveAttacker(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptive sweep skipped in -short mode")
	}
	sc := TestScale(16)
	sc.Sites = 3
	sc.KeyClasses = 3
	res, err := Figure9b(sc, []float64{1.0 / 256, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, mech := range []MechanismKind{MechLaplace, MechDStar} {
		for _, a := range []AttackName{WFA, KSA} {
			strong := res.Accuracy(mech, 1.0/256, a)
			weak := res.Accuracy(mech, 8, a)
			// Paper Fig. 9b: smaller ε still suppresses the adaptive
			// attacker (allow sampling slack at test scale).
			if strong > weak+0.25 {
				t.Errorf("%s/%s: adaptive accuracy at tiny eps %v above large eps %v",
					mech, a, strong, weak)
			}
		}
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestMultipleTriesAnalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple-tries analysis skipped in -short mode")
	}
	sc := TestScale(17)
	sc.Sites = 4
	res, err := MultipleTriesAnalysis(sc, []int{1, 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.CleanAccuracy < 0.5 {
		t.Fatalf("clean accuracy = %v, attack did not train", res.CleanAccuracy)
	}
	lap1 := res.Accuracy("laplace", 1)
	lapN := res.Accuracy("laplace", 6)
	secN := res.Accuracy("laplace+secret", 6)
	if lap1 < 0 || lapN < 0 || secN < 0 {
		t.Fatal("missing points")
	}
	// §IX-B shape: averaging helps the attacker against plain DP noise...
	if lapN < lap1-0.1 {
		t.Errorf("averaging hurt the attacker: %v -> %v", lap1, lapN)
	}
	// ...but the secret-dependent constant keeps accuracy at or below the
	// averaged plain-noise level.
	if secN > lapN+0.1 {
		t.Errorf("secret offset accuracy %v above plain averaged %v", secN, lapN)
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestFindOperatingPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("operating-point sweep skipped in -short mode")
	}
	sc := TestScale(18)
	res, err := FindOperatingPoints(sc, 0.4, []float64{0.125, 2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.CleanAccuracy < 0.5 {
		t.Fatalf("clean accuracy = %v", res.CleanAccuracy)
	}
	for _, mech := range []MechanismKind{MechLaplace, MechDStar} {
		p, ok := res.Point(mech)
		if !ok {
			t.Fatalf("no point for %s", mech)
		}
		if !p.Met {
			t.Errorf("%s: no epsilon in the sweep met target 0.4", mech)
			continue
		}
		if p.Accuracy > 0.4 {
			t.Errorf("%s: chosen eps %v has accuracy %v above target", mech, p.Epsilon, p.Accuracy)
		}
	}
	// The paper's comparison: d*'s largest effective ε is at least the
	// Laplace one (d* gives stronger privacy at equal ε).
	lap, _ := res.Point(MechLaplace)
	dst, _ := res.Point(MechDStar)
	if lap.Met && dst.Met && dst.Epsilon < lap.Epsilon {
		t.Errorf("d* effective eps %v below laplace %v", dst.Epsilon, lap.Epsilon)
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
	if _, err := FindOperatingPoints(sc, 0, nil); err == nil {
		t.Error("target 0 accepted")
	}
}

func TestCacheOccupancyExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("cache-occupancy extension skipped in -short mode")
	}
	sc := TestScale(19)
	sc.Sites = 4
	sc.TracesPerSecret = 8
	res, err := CacheOccupancyExtension(sc, 0.125)
	if err != nil {
		t.Fatal(err)
	}
	// The occupancy channel works at all: clean accuracy well above
	// chance despite never touching the victim's core or HPCs.
	if res.CleanAccuracy < res.RandomGuess*2 {
		t.Errorf("occupancy attack clean accuracy %v not above 2x chance %v",
			res.CleanAccuracy, res.RandomGuess)
	}
	// Aegis's gadget injections perturb the shared cache too: the same
	// defense transfers to this non-HPC channel.
	if res.DefendedAccuracy >= res.CleanAccuracy {
		t.Errorf("defense did not reduce occupancy attack: %v -> %v",
			res.CleanAccuracy, res.DefendedAccuracy)
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestFigure8AppComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling sweep skipped in -short mode")
	}
	sc := TestScale(20)
	sc.RankRepeats = 3
	res, err := Figure8(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d", len(res.Series))
	}
	byApp := map[string]Figure8Series{}
	for _, s := range res.Series {
		byApp[s.App] = s
		if len(s.MI) == 0 {
			t.Fatalf("%s: empty MI series", s.App)
		}
		// Sorted descending.
		for i := 1; i < len(s.MI); i++ {
			if s.MI[i] > s.MI[i-1]+1e-9 {
				t.Fatalf("%s: MI not sorted", s.App)
			}
		}
		if len(s.Top) == 0 {
			t.Errorf("%s: no top events", s.App)
		}
	}
	// Paper Fig. 8 observation: the DNN curve falls slower than the
	// keystroke curve (more vulnerable events). Compare median MI
	// relative to each app's ceiling (log2 of its class count).
	if res.Render() == "" {
		t.Error("empty render")
	}
}
