package experiment

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"github.com/repro/aegis/internal/faultinject"
	"github.com/repro/aegis/internal/obfuscator"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/sev"
	"github.com/repro/aegis/internal/workload"
)

// Robustness experiment: the paper evaluates Aegis on well-behaved
// hardware; this experiment measures how the deployed defense degrades
// when the substrate misbehaves — PMU read faults, latched counters,
// vCPU preemption bursts and mid-gadget interrupts — using the
// deterministic fault injection layer. The interesting outputs are the
// degradation funnel (how many ticks kept injecting vs. were skipped) and
// whether the obfuscator correctly refuses to report full protection.

// RobustnessRow is one fault preset's outcome.
type RobustnessRow struct {
	Preset        string
	Ticks         int64
	InjectedTicks int64
	ZeroDraw      int64
	NoInjection   int64
	Degraded      int64
	Retries       int64
	Rearms        int64
	Fallbacks     int64
	FaultsTotal   uint64
	InjectedReps  int64
	Full          bool
}

// RobustnessResult is the per-preset degradation table.
type RobustnessResult struct {
	Rows []RobustnessRow
}

// Render formats the table.
func (r *RobustnessResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Robustness under substrate faults (d* obfuscator)\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "preset\tticks\tinjected\tzero-draw\tno-inj\tdegraded\tretries\trearms\tfallbacks\tfaults\treps\tfull")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%t\n",
			row.Preset, row.Ticks, row.InjectedTicks, row.ZeroDraw, row.NoInjection,
			row.Degraded, row.Retries, row.Rearms, row.Fallbacks, row.FaultsTotal,
			row.InjectedReps, row.Full)
	}
	w.Flush()
	return sb.String()
}

// Robustness fuzzes one gadget cover on a healthy substrate, then deploys
// the d* obfuscator under each fault preset (or only sc.FaultPreset when
// set) and reports the degradation funnel per preset.
func Robustness(sc Scale) (*RobustnessResult, error) {
	kit, err := BuildDefenseKit(sc)
	if err != nil {
		return nil, err
	}

	presets := []string{faultinject.PresetOff, faultinject.PresetLight, faultinject.PresetHeavy}
	if sc.FaultPreset != "" {
		presets = []string{faultinject.PresetOff, sc.FaultPreset}
		if sc.FaultPreset == faultinject.PresetOff {
			presets = presets[:1]
		}
	}

	res := &RobustnessResult{}
	for _, preset := range presets {
		faults, err := faultinject.Preset(preset, sc.Seed)
		if err != nil {
			return nil, err
		}
		injector := faultinject.New(faults)

		mech, err := obfuscator.NewDStarMechanism(1.0, kit.Sensitivity,
			rng.New(sc.Seed).Split("robustness-mech"))
		if err != nil {
			return nil, err
		}
		obf, err := obfuscator.New(obfuscator.Config{
			Mechanism: mech,
			Segment:   kit.Segment,
			RefEvent:  kit.RefEvent,
			ClipBound: kit.ClipBound,
			Seed:      sc.Seed,
			Faults:    faults,
		})
		if err != nil {
			return nil, err
		}

		w := sev.NewWorld(sev.DefaultConfig(sc.Seed))
		w.SetFaults(injector)
		vm, err := w.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: true})
		if err != nil {
			return nil, err
		}
		lib := workload.DefaultLibrary(1)
		runner := workload.NewRunner("browser", lib, rng.New(sc.Seed).Split("robustness-runner"))
		runner.Enqueue(workload.WebsiteJob("google.com", rng.New(sc.Seed).Split("robustness-load")))
		if err := vm.AddProcess(0, runner); err != nil {
			return nil, err
		}
		if err := vm.AddProcess(0, obf); err != nil {
			return nil, err
		}
		w.Run(sc.TraceTicks)

		rep := obf.Report()
		res.Rows = append(res.Rows, RobustnessRow{
			Preset:        preset,
			Ticks:         rep.Ticks,
			InjectedTicks: rep.InjectedTicks,
			ZeroDraw:      rep.ZeroDrawTicks,
			NoInjection:   rep.NoInjectionTicks,
			Degraded:      rep.DegradedTicks,
			Retries:       rep.Retries,
			Rearms:        rep.CounterRearms,
			Fallbacks:     rep.MechanismFallbacks,
			FaultsTotal:   injector.Total(),
			InjectedReps:  obf.InjectedReps(),
			Full:          rep.Full(),
		})
	}
	return res, nil
}
