package experiment

import (
	"fmt"
	"time"

	"github.com/repro/aegis/internal/fuzzer"
	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/isa"
	"github.com/repro/aegis/internal/profiler"
)

// Table1Row is one processor of paper Table I.
type Table1Row struct {
	Processor string
	Events    int
	// DifferentWithinFamily is the event-name difference to the family's
	// base model ("/" for the base model itself).
	DifferentWithinFamily int
	BaseModel             bool
}

// Table1Result reproduces paper Table I: HPC event statistics across four
// processor models.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 builds the event catalogs and counts events and within-family
// differences.
func Table1() Table1Result {
	e51650 := hpc.NewIntelXeonE51650Catalog(1)
	e54617 := hpc.NewIntelXeonE54617Catalog(1)
	amd7252 := hpc.NewAMDEpyc7252Catalog(1)
	amd7313 := hpc.NewAMDEpyc7313PCatalog(1)
	return Table1Result{Rows: []Table1Row{
		{Processor: e51650.Processor, Events: e51650.Size(), BaseModel: true},
		{Processor: e54617.Processor, Events: e54617.Size(),
			DifferentWithinFamily: hpc.DifferentEvents(e51650, e54617)},
		{Processor: amd7252.Processor, Events: amd7252.Size(), BaseModel: true},
		{Processor: amd7313.Processor, Events: amd7313.Size(),
			DifferentWithinFamily: hpc.DifferentEvents(amd7252, amd7313)},
	}}
}

// Render prints the table.
func (r Table1Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		diff := "/"
		if !row.BaseModel {
			diff = fmt.Sprintf("%d", row.DifferentWithinFamily)
		}
		rows = append(rows, []string{row.Processor, fmt.Sprintf("%d", row.Events), diff})
	}
	return "Table I: HPC event statistics\n" +
		table([]string{"Processor", "# of HPC Events", "# of Different Events"}, rows)
}

// Table2Row is one processor of paper Table II.
type Table2Row struct {
	Processor string
	// Share is the fraction of the catalog per event type.
	Share map[hpc.EventType]float64
	// RemainingShare is the fraction of each type surviving warm-up
	// profiling (the bracketed numbers of Table II).
	RemainingShare map[hpc.EventType]float64
	// RemainingTotal is the total number of surviving events.
	RemainingTotal int
	// TotalEvents is the catalog size swept by the warm-up, the work unit
	// the bench harness uses for throughput.
	TotalEvents int
}

// Table2Result reproduces paper Table II: HPC event type distribution and
// warm-up survival.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 runs warm-up profiling of the website application on the Intel
// and AMD catalogs.
func Table2(sc Scale) (Table2Result, error) {
	var out Table2Result
	app := websiteApp(sc)
	store, err := sc.Store()
	if err != nil {
		return Table2Result{}, err
	}
	for _, cat := range []*hpc.Catalog{
		hpc.NewIntelXeonE51650Catalog(1),
		hpc.NewAMDEpyc7252Catalog(1),
	} {
		pcfg := profiler.DefaultConfig(sc.Seed)
		pcfg.Parallelism = sc.Parallelism
		pcfg.Store = store
		pcfg.WarmupTicks = sc.TraceTicks / 2
		if pcfg.WarmupTicks < 20 {
			pcfg.WarmupTicks = 20
		}
		pcfg.WarmupRepeats = 3
		p := profiler.New(cat, pcfg)
		warm, err := p.Warmup(app)
		if err != nil {
			return Table2Result{}, err
		}
		row := Table2Row{
			Processor:      cat.Processor,
			Share:          make(map[hpc.EventType]float64),
			RemainingShare: make(map[hpc.EventType]float64),
			RemainingTotal: len(warm.Remaining),
			TotalEvents:    cat.Size(),
		}
		counts := cat.TypeCounts()
		for _, t := range hpc.AllEventTypes() {
			row.Share[t] = float64(counts[t]) / float64(cat.Size())
			if counts[t] > 0 {
				row.RemainingShare[t] = float64(warm.RemainingPerType[t]) / float64(counts[t])
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the table.
func (r Table2Result) Render() string {
	header := []string{"Processor"}
	for _, t := range hpc.AllEventTypes() {
		header = append(header, t.Code())
	}
	header = append(header, "remaining")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		cells := []string{row.Processor}
		for _, t := range hpc.AllEventTypes() {
			cells = append(cells, fmt.Sprintf("%s (%s)",
				pct(row.Share[t]), pct(row.RemainingShare[t])))
		}
		cells = append(cells, fmt.Sprintf("%d", row.RemainingTotal))
		rows = append(rows, cells)
	}
	return "Table II: event type distribution, (survival after warm-up)\n" +
		table(header, rows)
}

// Table3Row is one processor of paper Table III.
type Table3Row struct {
	Processor    string
	Cleanup      time.Duration
	GenerateExec time.Duration
	Confirmation time.Duration
	Filtering    time.Duration
	// GadgetsTried and Throughput document the simulator's scale; the
	// paper executes 11.6M gadgets at ~250k/s on native hardware.
	GadgetsTried  int
	Throughput    float64 // gadget executions per second
	LegalVariants int
}

// Table3Result reproduces paper Table III: per-step fuzzing time.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 runs the cleanup and a sampled fuzzing campaign on both vendor
// specifications and reports per-step wall-clock.
func Table3(sc Scale) (Table3Result, error) {
	var out Table3Result
	store, err := sc.Store()
	if err != nil {
		return Table3Result{}, err
	}
	type vendor struct {
		name  string
		spec  *isa.Spec
		feats isa.CPUFeatures
		cat   *hpc.Catalog
	}
	for _, v := range []vendor{
		{"Intel Xeon E5-1650", isa.SpecIntelXeonE5(1), isa.IntelXeonE5Features(), hpc.NewIntelXeonE51650Catalog(1)},
		{"AMD EPYC 7252", isa.SpecAMDEpyc(1), isa.AMDEpycFeatures(), hpc.NewAMDEpyc7252Catalog(1)},
	} {
		cleanStart := time.Now()
		clean := isa.Cleanup(v.spec, v.feats)
		cleanElapsed := time.Since(cleanStart)

		fcfg := fuzzer.DefaultConfig(sc.Seed)
		fcfg.CandidatesPerEvent = sc.FuzzCandidates
		fcfg.Parallelism = sc.Parallelism
		fcfg.Store = store
		fz, err := fuzzer.New(clean.Legal, fcfg)
		if err != nil {
			return Table3Result{}, err
		}
		var events []*hpc.Event
		for _, name := range []string{"RETIRED_UOPS", "LS_DISPATCH",
			"MAB_ALLOCATION_BY_PIPE", "DATA_CACHE_REFILLS_FROM_SYSTEM"} {
			events = append(events, v.cat.MustByName(name))
		}
		start := time.Now()
		res, err := fz.Fuzz(events)
		if err != nil {
			return Table3Result{}, err
		}
		elapsed := time.Since(start)
		throughput := float64(res.CandidatesTried) / elapsed.Seconds()
		out.Rows = append(out.Rows, Table3Row{
			Processor:     v.name,
			Cleanup:       cleanElapsed,
			GenerateExec:  res.Timing.GenerateExec,
			Confirmation:  res.Timing.Confirmation,
			Filtering:     res.Timing.Filtering,
			GadgetsTried:  res.CandidatesTried,
			Throughput:    throughput,
			LegalVariants: len(clean.Legal),
		})
	}
	return out, nil
}

// Render prints the table.
func (r Table3Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Processor,
			row.Cleanup.String(),
			row.GenerateExec.String(),
			row.Confirmation.String(),
			row.Filtering.String(),
			fmt.Sprintf("%d", row.GadgetsTried),
			fmt.Sprintf("%.0f/s", row.Throughput),
		})
	}
	return "Table III: fuzzing step time (sampled campaign; paper executes the full 11.6M-gadget product)\n" +
		table([]string{"Processor", "Cleanup", "Gen+Exec", "Confirm", "Filter", "Gadgets", "Throughput"}, rows)
}
