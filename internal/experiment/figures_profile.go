package experiment

import (
	"fmt"
	"sort"

	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/profiler"
	"github.com/repro/aegis/internal/stats"
)

// Figure3Result reproduces Fig. 3: the Gaussianity evidence for HPC event
// values — the sample histogram of one event on one site (3a), its Q-Q
// comparison against N(0,1) (3b), and the estimated per-site Gaussians
// (3c).
type Figure3Result struct {
	Event  string
	Secret string
	// Histogram is the Fig. 3a density view.
	Histogram stats.Histogram
	// QQ is the Fig. 3b plot data; QQCorr its correlation.
	QQ     []stats.QQPoint
	QQCorr float64
	// KS is the Kolmogorov-Smirnov distance to the fitted Gaussian.
	KS float64
	// PerSite is the Fig. 3c family of fitted Gaussians over 10 sites.
	PerSite []stats.ClassModel
}

// Figure3 measures DATA_CACHE_REFILLS_FROM_SYSTEM distributions over
// website accesses.
func Figure3(sc Scale) (*Figure3Result, error) {
	cat := hpc.NewAMDEpyc7252Catalog(1)
	pcfg := profiler.DefaultConfig(sc.Seed)
	pcfg.TraceTicks = sc.TraceTicks
	pcfg.RankRepeats = sc.RankRepeats
	pcfg.Parallelism = sc.Parallelism
	p := profiler.New(cat, pcfg)
	app := websiteApp(sc)
	event := cat.MustByName("DATA_CACHE_REFILLS_FROM_SYSTEM")

	repeats := sc.TracesPerSecret * 4
	if repeats < 20 {
		repeats = 20
	}
	dist, err := p.DistributionFor(app, app.Secrets()[0], event, repeats)
	if err != nil {
		return nil, err
	}
	res := &Figure3Result{
		Event:     event.Name,
		Secret:    dist.Secret,
		Histogram: dist.Histogram,
		QQ:        stats.QQNormal(dist.Samples),
		QQCorr:    dist.QQCorr,
		KS:        dist.KS,
	}
	// Fig. 3c: per-site Gaussians over up to 10 sites.
	sites := app.Secrets()
	if len(sites) > 10 {
		sites = sites[:10]
	}
	for _, site := range sites {
		d, err := p.DistributionFor(app, site, event, sc.RankRepeats*2)
		if err != nil {
			return nil, err
		}
		res.PerSite = append(res.PerSite, stats.ClassModel{Secret: site, Dist: d.Fit})
	}
	return res, nil
}

// Render prints the figure data.
func (r *Figure3Result) Render() string {
	out := fmt.Sprintf("Figure 3: distribution of %s on %s\n", r.Event, r.Secret)
	out += fmt.Sprintf("Q-Q correlation vs N(0,1): %.4f   KS distance: %.4f\n", r.QQCorr, r.KS)
	rows := make([][]string, 0, len(r.PerSite))
	for _, c := range r.PerSite {
		rows = append(rows, []string{c.Secret, f2(c.Dist.Mu), f2(c.Dist.Sigma)})
	}
	out += "\nFig. 3c per-site Gaussian fits:\n"
	out += table([]string{"site", "mu", "sigma"}, rows)
	return out
}

// Figure8Series is one application's ranked mutual-information curve.
type Figure8Series struct {
	App string
	// MI is sorted descending over the profiled events.
	MI []float64
	// Top lists the most vulnerable events.
	Top []string
}

// Figure8Result reproduces Fig. 8: per-event mutual information for the
// three applications.
type Figure8Result struct {
	Series []Figure8Series
}

// Figure8 profiles all three applications and ranks events by MI.
func Figure8(sc Scale) (*Figure8Result, error) {
	cat := hpc.NewAMDEpyc7252Catalog(1)
	res := &Figure8Result{}
	for _, entry := range []struct {
		name string
	}{{"website"}, {"keystroke"}, {"dnn"}} {
		pcfg := profiler.DefaultConfig(sc.Seed)
		pcfg.TraceTicks = sc.TraceTicks
		pcfg.RankRepeats = sc.RankRepeats
		pcfg.Parallelism = sc.Parallelism
		pcfg.WarmupTicks = sc.TraceTicks / 2
		if pcfg.WarmupTicks < 20 {
			pcfg.WarmupTicks = 20
		}
		pcfg.WarmupRepeats = 2
		p := profiler.New(cat, pcfg)

		var result *profiler.Result
		var err error
		switch entry.name {
		case "website":
			result, err = p.Profile(websiteApp(sc))
		case "keystroke":
			result, err = p.Profile(keystrokeApp(sc))
		default:
			result, err = p.Profile(dnnApp(sc))
		}
		if err != nil {
			return nil, fmt.Errorf("profile %s: %w", entry.name, err)
		}
		series := Figure8Series{App: entry.name}
		for _, rk := range result.Ranked {
			series.MI = append(series.MI, rk.MI)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(series.MI)))
		for _, e := range result.TopEvents(5) {
			series.Top = append(series.Top, e.Name)
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// VulnerableEventCount returns how many events carry at least minBits of
// mutual information in a series (used to compare the three apps' curves:
// the paper finds the DNN app has more vulnerable events).
func (s Figure8Series) VulnerableEventCount(minBits float64) int {
	n := 0
	for _, mi := range s.MI {
		if mi >= minBits {
			n++
		}
	}
	return n
}

// Render prints the MI curves (decile summary) and top events.
func (r *Figure8Result) Render() string {
	out := "Figure 8: ranked per-event mutual information (bits)\n"
	for _, s := range r.Series {
		out += fmt.Sprintf("\n%s: %d profiled events, %d with MI >= 0.5 bits\n",
			s.App, len(s.MI), s.VulnerableEventCount(0.5))
		n := len(s.MI)
		rows := [][]string{}
		for _, q := range []int{0, 10, 25, 50, 75, 100} {
			idx := (n - 1) * q / 100
			if n == 0 {
				break
			}
			rows = append(rows, []string{fmt.Sprintf("p%d", q), f3(s.MI[idx])})
		}
		out += table([]string{"rank percentile", "MI"}, rows)
		out += "top events: " + fmt.Sprint(s.Top) + "\n"
	}
	return out
}
