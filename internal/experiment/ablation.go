package experiment

import (
	"fmt"
	"time"

	"github.com/repro/aegis/internal/fuzzer"
	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/isa"
	"github.com/repro/aegis/internal/obfuscator"
	"github.com/repro/aegis/internal/profiler"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/stats"
)

// Ablation benches quantify the design choices DESIGN.md calls out:
// gadget set cover vs per-event injection, PCA features vs raw sums,
// confirmation on vs off, and the precomputed noise buffer vs direct
// sampling.

// SetCoverAblation compares the minimal-cover gadget count against naive
// per-event injection (one best gadget per event, no sharing).
type SetCoverAblation struct {
	Events        int
	CoverSize     int
	PerEventCount int
	// SegmentLen is the stacked segment's instruction count.
	SegmentLen int
}

// Reduction returns perEvent/cover, the paper's motivation for the cover
// (137 events need only 43 gadgets).
func (a SetCoverAblation) Reduction() float64 {
	if a.CoverSize == 0 {
		return 0
	}
	return float64(a.PerEventCount) / float64(a.CoverSize)
}

// AblationSetCover runs the fuzzer over a wider event set and compares the
// two injection strategies.
func AblationSetCover(sc Scale) (*SetCoverAblation, error) {
	cat := hpc.NewAMDEpyc7252Catalog(1)
	legal := isa.Cleanup(isa.SpecAMDEpyc(1), isa.AMDEpycFeatures()).Legal
	fcfg := fuzzer.DefaultConfig(sc.Seed)
	fcfg.CandidatesPerEvent = sc.FuzzCandidates
	fcfg.Parallelism = sc.Parallelism
	fz, err := fuzzer.New(legal, fcfg)
	if err != nil {
		return nil, err
	}
	names := []string{
		"RETIRED_UOPS", "LS_DISPATCH", "MAB_ALLOCATION_BY_PIPE",
		"DATA_CACHE_REFILLS_FROM_SYSTEM", "HW_CACHE_L1D:WRITE",
		"HW_CACHE_L1D:READ", "HW_CACHE_L1D:MISS", "RETIRED_INSTRUCTIONS",
		"L2_CACHE_ACCESSES", "L2_CACHE_MISSES",
		"RETIRED_MMX_FP_INSTRUCTIONS:SSE_INSTR", "MEM_LOAD_UOPS_RETIRED:L1_HIT",
	}
	var events []*hpc.Event
	for _, n := range names {
		events = append(events, cat.MustByName(n))
	}
	res, err := fz.Fuzz(events)
	if err != nil {
		return nil, err
	}
	cover, err := fz.MinimalCover(res, events)
	if err != nil {
		return nil, err
	}
	perEvent := 0
	for _, e := range events {
		if _, ok := res.Best[e.Name]; ok {
			perEvent++
		}
	}
	return &SetCoverAblation{
		Events:        len(events),
		CoverSize:     len(cover),
		PerEventCount: perEvent,
		SegmentLen:    len(fuzzer.StackSegment(cover)),
	}, nil
}

// Render prints the ablation.
func (a *SetCoverAblation) Render() string {
	return fmt.Sprintf(
		"Ablation: gadget set cover — %d events, cover %d gadgets vs %d per-event (%.2fx fewer), segment %d instructions\n",
		a.Events, a.CoverSize, a.PerEventCount, a.Reduction(), a.SegmentLen)
}

// PCAAblation compares the MI ranking computed with PCA features against
// the raw-sum feature.
type PCAAblation struct {
	// TopOverlap is the fraction of the top-4 events shared by the two
	// rankings.
	TopOverlap float64
	// RankCorrelation is the Spearman correlation between the two
	// rankings' per-event MI scores.
	RankCorrelation float64
	// PCAMeanMI and RawMeanMI compare the information captured by each
	// feature.
	PCAMeanMI float64
	RawMeanMI float64
}

// AblationPCA ranks the website app's key events both ways.
func AblationPCA(sc Scale) (*PCAAblation, error) {
	cat := hpc.NewAMDEpyc7252Catalog(1)
	app := websiteApp(sc)
	var events []*hpc.Event
	for _, n := range []string{"RETIRED_UOPS", "LS_DISPATCH",
		"MAB_ALLOCATION_BY_PIPE", "DATA_CACHE_REFILLS_FROM_SYSTEM",
		"HW_CACHE_L1D:WRITE", "L2_CACHE_ACCESSES", "BRANCH_INSTRUCTIONS_RETIRED",
		"DTLB_MISSES"} {
		events = append(events, cat.MustByName(n))
	}

	rank := func(raw bool) ([]profiler.RankedEvent, error) {
		pcfg := profiler.DefaultConfig(sc.Seed)
		pcfg.TraceTicks = sc.TraceTicks
		pcfg.RankRepeats = sc.RankRepeats
		pcfg.Parallelism = sc.Parallelism
		pcfg.RawMeanFeature = raw
		p := profiler.New(cat, pcfg)
		return p.Rank(app, events)
	}
	pcaRank, err := rank(false)
	if err != nil {
		return nil, err
	}
	rawRank, err := rank(true)
	if err != nil {
		return nil, err
	}
	top := func(rk []profiler.RankedEvent, n int) map[string]bool {
		out := map[string]bool{}
		for i := 0; i < n && i < len(rk); i++ {
			out[rk[i].Event.Name] = true
		}
		return out
	}
	pcaTop := top(pcaRank, 4)
	rawTop := top(rawRank, 4)
	overlap := 0
	for name := range pcaTop {
		if rawTop[name] {
			overlap++
		}
	}
	mean := func(rk []profiler.RankedEvent) float64 {
		if len(rk) == 0 {
			return 0
		}
		var s float64
		for _, r := range rk {
			s += r.MI
		}
		return s / float64(len(rk))
	}
	// Spearman rank correlation over events present in both rankings.
	miOf := func(rk []profiler.RankedEvent) map[string]float64 {
		out := make(map[string]float64, len(rk))
		for _, r := range rk {
			out[r.Event.Name] = r.MI
		}
		return out
	}
	pcaMI := miOf(pcaRank)
	rawMI := miOf(rawRank)
	var xs, ys []float64
	for name, v := range pcaMI {
		if w, ok := rawMI[name]; ok {
			xs = append(xs, v)
			ys = append(ys, w)
		}
	}
	return &PCAAblation{
		TopOverlap:      float64(overlap) / 4,
		RankCorrelation: stats.Spearman(xs, ys),
		PCAMeanMI:       mean(pcaRank),
		RawMeanMI:       mean(rawRank),
	}, nil
}

// Render prints the ablation.
func (a *PCAAblation) Render() string {
	return fmt.Sprintf(
		"Ablation: PCA vs raw-sum feature — top-4 overlap %.0f%%, Spearman %.2f, mean MI: PCA %.3f vs raw %.3f bits\n",
		a.TopOverlap*100, a.RankCorrelation, a.PCAMeanMI, a.RawMeanMI)
}

// ConfirmationAblation quantifies the false positives the confirmation
// mechanisms remove.
type ConfirmationAblation struct {
	Event string
	// Unconfirmed is the gadget count accepted with confirmation off.
	Unconfirmed int
	// Confirmed is the count surviving the paper's three mechanisms.
	Confirmed int
}

// FalsePositiveRate returns the fraction rejected by confirmation.
func (a ConfirmationAblation) FalsePositiveRate() float64 {
	if a.Unconfirmed == 0 {
		return 0
	}
	return 1 - float64(a.Confirmed)/float64(a.Unconfirmed)
}

// AblationConfirmation fuzzes one event with and without confirmation.
func AblationConfirmation(sc Scale) (*ConfirmationAblation, error) {
	cat := hpc.NewAMDEpyc7252Catalog(1)
	legal := isa.Cleanup(isa.SpecAMDEpyc(1), isa.AMDEpycFeatures()).Legal
	event := cat.MustByName("DATA_CACHE_REFILLS_FROM_SYSTEM")

	run := func(disable bool) (int, error) {
		fcfg := fuzzer.DefaultConfig(sc.Seed)
		fcfg.CandidatesPerEvent = sc.FuzzCandidates * 4
		fcfg.Parallelism = sc.Parallelism
		fcfg.DisableConfirmation = disable
		fz, err := fuzzer.New(legal, fcfg)
		if err != nil {
			return 0, err
		}
		findings, _, err := fz.FuzzEvent(event)
		if err != nil {
			return 0, err
		}
		return len(findings), nil
	}
	unconfirmed, err := run(true)
	if err != nil {
		return nil, err
	}
	confirmed, err := run(false)
	if err != nil {
		return nil, err
	}
	return &ConfirmationAblation{
		Event:       event.Name,
		Unconfirmed: unconfirmed,
		Confirmed:   confirmed,
	}, nil
}

// Render prints the ablation.
func (a *ConfirmationAblation) Render() string {
	return fmt.Sprintf(
		"Ablation: confirmation — %s: %d raw candidates, %d confirmed (%.0f%% rejected as side effects/dirty state)\n",
		a.Event, a.Unconfirmed, a.Confirmed, a.FalsePositiveRate()*100)
}

// NoiseBufferAblation compares the precomputed-buffer noise calculator
// against direct per-sample transformation.
type NoiseBufferAblation struct {
	BufferedNsPerSample float64
	DirectNsPerSample   float64
}

// Speedup returns direct/buffered.
func (a NoiseBufferAblation) Speedup() float64 {
	if a.BufferedNsPerSample == 0 {
		return 0
	}
	return a.DirectNsPerSample / a.BufferedNsPerSample
}

// AblationNoiseBuffer times both sampling paths.
func AblationNoiseBuffer(samples int) *NoiseBufferAblation {
	if samples < 1<<16 {
		samples = 1 << 16
	}
	r1 := rng.New(1).Split("buffered")
	calc := obfuscator.NewNoiseCalculator(4096, r1)
	start := time.Now()
	var sinkB float64
	for i := 0; i < samples; i++ {
		sinkB += calc.Lap(1)
	}
	buffered := time.Since(start)

	r2 := rng.New(1).Split("direct")
	start = time.Now()
	var sinkD float64
	for i := 0; i < samples; i++ {
		sinkD += r2.Laplace(1)
	}
	direct := time.Since(start)
	_ = sinkB + sinkD

	return &NoiseBufferAblation{
		BufferedNsPerSample: float64(buffered.Nanoseconds()) / float64(samples),
		DirectNsPerSample:   float64(direct.Nanoseconds()) / float64(samples),
	}
}

// Render prints the ablation.
func (a *NoiseBufferAblation) Render() string {
	return fmt.Sprintf(
		"Ablation: noise buffer — buffered %.1f ns/sample vs direct %.1f ns/sample (%.2fx)\n",
		a.BufferedNsPerSample, a.DirectNsPerSample, a.Speedup())
}
