package experiment

import (
	"fmt"

	"github.com/repro/aegis/internal/attack"
	"github.com/repro/aegis/internal/obfuscator"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/trace"
)

// MultipleTriesPoint is one (defense, averaged-trace-count) accuracy
// measurement of the §IX-B analysis.
type MultipleTriesPoint struct {
	Defense  string // "laplace" or "laplace+secret"
	Averaged int    // traces averaged per prediction
	Accuracy float64
}

// MultipleTriesResult reproduces the paper's §IX-B discussion: an attacker
// who can collect several traces of the same secret averages the DP noise
// away; attaching a constant secret-dependent noise term defeats the
// averaging because the residual still depends on a value the attacker
// cannot know.
type MultipleTriesResult struct {
	CleanAccuracy float64
	Points        []MultipleTriesPoint
}

// averageTraces element-wise averages n traces of the same secret and then
// subtracts the attacker's pooled per-channel noise estimate (the mean
// channel shift of the whole defended corpus relative to the clean
// reference). Averaging cancels the zero-mean part of the DP noise; the
// pooled subtraction removes the constant part that is *common to all
// secrets*. A secret-dependent constant survives both steps because the
// attacker cannot estimate it per secret.
func averageTraces(traces []trace.Trace, pooledShift []float64) trace.Trace {
	if len(traces) == 0 {
		return trace.Trace{}
	}
	ticks, events := traces[0].Ticks(), traces[0].Events()
	out := trace.Trace{Label: traces[0].Label, Data: make([][]float64, ticks)}
	for t := 0; t < ticks; t++ {
		row := make([]float64, events)
		for _, tr := range traces {
			for e := 0; e < events; e++ {
				row[e] += tr.Data[t][e]
			}
		}
		for e := range row {
			row[e] = row[e]/float64(len(traces)) - pooledShift[e]
			if row[e] < 0 {
				row[e] = 0
			}
		}
		out.Data[t] = row
	}
	return out
}

// channelMeans returns the per-channel means over a dataset.
func channelMeans(ds *trace.Dataset) []float64 {
	if ds.Len() == 0 {
		return nil
	}
	events := ds.Traces[0].Events()
	out := make([]float64, events)
	var count float64
	for _, tr := range ds.Traces {
		for _, row := range tr.Data {
			for e, v := range row {
				out[e] += v
			}
			count++
		}
	}
	for e := range out {
		out[e] /= count
	}
	return out
}

// MultipleTriesAnalysis trains the WFA on clean traces and evaluates the
// averaging attacker against the plain Laplace defense and against Laplace
// with a secret-dependent constant offset.
func MultipleTriesAnalysis(sc Scale, averagedCounts []int) (*MultipleTriesResult, error) {
	if averagedCounts == nil {
		averagedCounts = []int{1, 4, 8}
	}
	kit, err := BuildDefenseKit(sc)
	if err != nil {
		return nil, err
	}
	app := websiteApp(sc)
	cleanSc := scenarioFor(app, sc, 900)
	cleanDs, err := cleanSc.Collect(nil)
	if err != nil {
		return nil, err
	}
	cfg := attack.DefaultTrainConfig(sc.Seed + 21)
	cfg.Epochs = sc.Epochs
	clf, _, err := attack.TrainClassifier(cleanDs, cfg)
	if err != nil {
		return nil, err
	}
	res := &MultipleTriesResult{}
	cleanAcc, err := clf.Evaluate(cleanDs)
	if err != nil {
		return nil, err
	}
	res.CleanAccuracy = cleanAcc
	refMeans := channelMeans(cleanDs)

	maxAvg := 0
	for _, n := range averagedCounts {
		if n > maxAvg {
			maxAvg = n
		}
	}

	// defense builders: plain laplace vs laplace + secret offset. The
	// offset is derived inside the VM from the running secret.
	mkDefense := func(withOffset bool, secret string) attack.DefenseFactory {
		return func(seed uint64) (*obfuscator.Obfuscator, error) {
			r := rng.New(seed).Split("multitries")
			base, err := obfuscator.NewLaplaceMechanism(1, kit.Sensitivity, r)
			if err != nil {
				return nil, err
			}
			var mech obfuscator.Mechanism = base
			if withOffset {
				mech, err = obfuscator.NewSecretDependentMechanism(
					base, rng.HashString(secret), 2*kit.Sensitivity)
				if err != nil {
					return nil, err
				}
			}
			return obfuscator.New(obfuscator.Config{
				Mechanism: mech,
				Segment:   kit.Segment,
				RefEvent:  kit.RefEvent,
				ClipBound: kit.ClipBound,
				Seed:      seed,
			})
		}
	}

	const groups = 2 // disjoint averaging groups per secret
	for _, withOffset := range []bool{false, true} {
		name := "laplace"
		if withOffset {
			name = "laplace+secret"
		}
		// Collect groups×maxAvg defended traces per secret.
		perSecret := make(map[string][]trace.Trace)
		collectSc := scenarioFor(app, sc, 910)
		for _, secret := range app.Secrets() {
			for rep := 0; rep < groups*maxAvg; rep++ {
				tr, err := collectSc.CollectOne(secret, rep+boolOffset(withOffset)*1000,
					mkDefense(withOffset, secret))
				if err != nil {
					return nil, err
				}
				perSecret[secret] = append(perSecret[secret], tr)
			}
		}
		// Pooled noise estimate: the attacker compares his defended
		// corpus against the clean template corpus.
		defendedDs := &trace.Dataset{}
		for _, traces := range perSecret {
			for _, tr := range traces {
				defendedDs.Add(tr)
			}
		}
		pooled := channelMeans(defendedDs)
		shift := make([]float64, len(pooled))
		for e := range shift {
			shift[e] = pooled[e] - refMeans[e]
			if shift[e] < 0 {
				shift[e] = 0
			}
		}

		for _, n := range averagedCounts {
			correct, total := 0, 0
			for secret, traces := range perSecret {
				for g := 0; g < groups; g++ {
					lo := g * n
					if lo+n > len(traces) {
						break
					}
					avg := averageTraces(traces[lo:lo+n], shift)
					pred, err := clf.Predict(avg)
					if err != nil {
						return nil, err
					}
					if pred == secret {
						correct++
					}
					total++
				}
			}
			res.Points = append(res.Points, MultipleTriesPoint{
				Defense:  name,
				Averaged: n,
				Accuracy: float64(correct) / float64(total),
			})
		}
	}
	return res, nil
}

func boolOffset(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Accuracy returns the recorded point (-1 if absent).
func (r *MultipleTriesResult) Accuracy(defense string, averaged int) float64 {
	for _, p := range r.Points {
		if p.Defense == defense && p.Averaged == averaged {
			return p.Accuracy
		}
	}
	return -1
}

// Render prints the analysis.
func (r *MultipleTriesResult) Render() string {
	out := fmt.Sprintf("Multiple-tries analysis (§IX-B); clean accuracy %.1f%%\n", r.CleanAccuracy*100)
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{p.Defense, fmt.Sprintf("%d", p.Averaged), pct(p.Accuracy)})
	}
	return out + table([]string{"defense", "averaged traces", "accuracy"}, rows)
}
