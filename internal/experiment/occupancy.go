package experiment

import (
	"fmt"

	"github.com/repro/aegis/internal/attack"
	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/isa"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/sev"
	"github.com/repro/aegis/internal/trace"
	"github.com/repro/aegis/internal/workload"
)

// Cache-occupancy extension (paper §X: "we also tend to generalize our
// framework to more micro-architectural attacks, e.g., cache ... side
// channels"). On a shared-L2 core complex, an attacker VM on the sibling
// core sweeps a probe buffer every tick; its own L2 miss count measures
// how much of the shared cache the victim occupies — the cache-occupancy
// channel of Shusterman et al. (paper reference [63]), requiring no HPC
// access to the victim's core at all. Aegis's injected gadget executions
// run on the victim's core and perturb the same shared cache, so the
// defense transfers.

// probeProc sweeps a fixed buffer spanning the shared L2 each tick.
type probeProc struct {
	load    isa.Variant
	perTick int
}

func (p *probeProc) Name() string { return "l2-probe" }

func (p *probeProc) Step(g *sev.GuestExecutor) {
	// The probe working set matches the L2 size so every victim line
	// evicts a probe line.
	g.Context().WorkingSet = 512 << 10
	for i := 0; i < p.perTick; i++ {
		ok, err := g.Execute(p.load)
		if err != nil || !ok {
			return
		}
	}
}

// OccupancyScenario collects cache-occupancy traces: the label is the
// website the victim loads; the signal is the attacker's own per-tick L2
// miss count.
type OccupancyScenario struct {
	App             *workload.WebsiteApp
	TracesPerSecret int
	TraceTicks      int
	Seed            uint64
}

// collectOne records one occupancy trace, optionally with the victim
// defended.
func (s *OccupancyScenario) collectOne(secret string, rep int, defense attack.DefenseFactory) (trace.Trace, error) {
	cfg := sev.DefaultConfig(s.Seed)
	cfg.SharedL2 = true
	stream := rng.New(s.Seed).Split("occupancy/"+secret).SplitN("rep", rep)
	cfg.Seed = stream.Uint64()
	world := sev.NewWorld(cfg)

	victim, err := world.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: true}) // core 0
	if err != nil {
		return trace.Trace{}, err
	}
	attacker, err := world.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: false}) // core 1 (sibling)
	if err != nil {
		return trace.Trace{}, err
	}

	runner := workload.NewRunner("browser", workload.DefaultLibrary(1), stream.Split("runner"))
	job, err := s.App.Job(secret, stream.Split("job"))
	if err != nil {
		return trace.Trace{}, err
	}
	runner.Enqueue(job)
	if err := victim.AddProcess(0, runner); err != nil {
		return trace.Trace{}, err
	}
	if defense != nil {
		obf, err := defense(stream.Uint64())
		if err != nil {
			return trace.Trace{}, err
		}
		if err := victim.AddProcess(0, obf); err != nil {
			return trace.Trace{}, err
		}
	}

	legal := isa.Cleanup(isa.SpecAMDEpyc(1), isa.AMDEpycFeatures()).Legal
	var load isa.Variant
	for _, v := range legal {
		if v.Class == isa.ClassLoad {
			load = v
			break
		}
	}
	if err := attacker.AddProcess(0, &probeProc{load: load, perTick: 600}); err != nil {
		return trace.Trace{}, err
	}

	// The attacker monitors its OWN core's L2 misses — no access to the
	// victim's core or VM is needed.
	attackerCoreIdx, err := attacker.PhysicalCore(0)
	if err != nil {
		return trace.Trace{}, err
	}
	attackerCore, err := world.Core(attackerCoreIdx)
	if err != nil {
		return trace.Trace{}, err
	}
	cat := hpc.NewAMDEpyc7252Catalog(1)
	col, err := trace.NewCollector(attackerCore,
		[]*hpc.Event{cat.MustByName("L2_CACHE_MISSES")}, stream.Split("probe-noise"))
	if err != nil {
		return trace.Trace{}, err
	}
	return trace.CollectDuring(world, col, s.TraceTicks, secret)
}

// Collect records the full labelled occupancy dataset.
func (s *OccupancyScenario) Collect(defense attack.DefenseFactory) (*trace.Dataset, error) {
	ds := &trace.Dataset{EventNames: []string{"L2_CACHE_MISSES(attacker-core)"}}
	for _, secret := range s.App.Secrets() {
		for rep := 0; rep < s.TracesPerSecret; rep++ {
			tr, err := s.collectOne(secret, rep, defense)
			if err != nil {
				return nil, fmt.Errorf("occupancy %s rep %d: %w", secret, rep, err)
			}
			ds.Add(tr)
		}
	}
	return ds, nil
}

// OccupancyResult summarises the cache-occupancy extension experiment.
type OccupancyResult struct {
	CleanAccuracy    float64
	DefendedAccuracy float64
	RandomGuess      float64
}

// CacheOccupancyExtension runs the full extension: train a website
// classifier on clean occupancy traces, then evaluate it on traces where
// the victim runs the standard Aegis obfuscator.
func CacheOccupancyExtension(sc Scale, epsilon float64) (*OccupancyResult, error) {
	kit, err := BuildDefenseKit(sc)
	if err != nil {
		return nil, err
	}
	app := websiteApp(sc)
	scenario := &OccupancyScenario{
		App:             app,
		TracesPerSecret: sc.TracesPerSecret,
		TraceTicks:      sc.TraceTicks,
		Seed:            sc.Seed + 1300,
	}
	cleanDs, err := scenario.Collect(nil)
	if err != nil {
		return nil, err
	}
	cfg := attack.DefaultTrainConfig(sc.Seed + 41)
	cfg.Epochs = sc.Epochs
	clf, _, err := attack.TrainClassifier(cleanDs, cfg)
	if err != nil {
		return nil, err
	}
	cleanAcc, err := clf.Evaluate(cleanDs)
	if err != nil {
		return nil, err
	}

	defendedScenario := *scenario
	defendedScenario.Seed += 500
	defendedScenario.TracesPerSecret = victimReps(sc)
	defendedDs, err := defendedScenario.Collect(kit.Defense(MechLaplace, epsilon))
	if err != nil {
		return nil, err
	}
	defAcc, err := clf.Evaluate(defendedDs)
	if err != nil {
		return nil, err
	}
	return &OccupancyResult{
		CleanAccuracy:    cleanAcc,
		DefendedAccuracy: defAcc,
		RandomGuess:      1 / float64(len(app.Secrets())),
	}, nil
}

// Render prints the result.
func (r *OccupancyResult) Render() string {
	return fmt.Sprintf(
		"Cache-occupancy extension (§X): clean %.1f%%, Aegis-defended %.1f%% (chance %.1f%%)\n",
		r.CleanAccuracy*100, r.DefendedAccuracy*100, r.RandomGuess*100)
}
