package experiment

import (
	"fmt"
	"sort"

	"github.com/repro/aegis/internal/attack"
)

// OperatingPoint is the recommended ε for one mechanism: the largest ε
// (least noise, least overhead) whose defended attack accuracy stays at or
// below the target. The paper selects these manually — ε = 2⁰ for the
// Laplace mechanism and ε = 2³ for d* (§VIII-D, shaded markers of
// Fig. 10); this harness automates the search.
type OperatingPoint struct {
	Mechanism MechanismKind
	// Epsilon is the chosen budget (0 when no swept ε met the target).
	Epsilon float64
	// Accuracy is the defended attack accuracy at the chosen ε.
	Accuracy float64
	// Met reports whether the target was achievable within the sweep.
	Met bool
}

// OperatingPointResult holds the per-mechanism recommendations.
type OperatingPointResult struct {
	TargetAccuracy float64
	CleanAccuracy  float64
	Points         []OperatingPoint
	// Sweep records every (mechanism, ε, accuracy) measurement made.
	Sweep []DefensePoint
}

// FindOperatingPoints trains the WFA on clean traces and sweeps ε from
// large to small for each mechanism, returning the largest ε that pushes
// the defended accuracy to at most target (the paper's "decreasing the
// attack accuracy to < 5%" criterion uses target = 0.05).
func FindOperatingPoints(sc Scale, target float64, epsilons []float64) (*OperatingPointResult, error) {
	if target <= 0 || target >= 1 {
		return nil, fmt.Errorf("experiment: target accuracy %v out of (0,1)", target)
	}
	if epsilons == nil {
		epsilons = Epsilons()
	}
	sorted := append([]float64(nil), epsilons...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))

	kit, err := BuildDefenseKit(sc)
	if err != nil {
		return nil, err
	}
	app := websiteApp(sc)
	cleanSc := scenarioFor(app, sc, 950)
	cleanDs, err := cleanSc.Collect(nil)
	if err != nil {
		return nil, err
	}
	cfg := attack.DefaultTrainConfig(sc.Seed + 31)
	cfg.Epochs = sc.Epochs
	clf, _, err := attack.TrainClassifier(cleanDs, cfg)
	if err != nil {
		return nil, err
	}
	res := &OperatingPointResult{TargetAccuracy: target}
	cleanAcc, err := clf.Evaluate(cleanDs)
	if err != nil {
		return nil, err
	}
	res.CleanAccuracy = cleanAcc

	for _, mech := range []MechanismKind{MechLaplace, MechDStar} {
		point := OperatingPoint{Mechanism: mech}
		for _, eps := range sorted {
			evalSc := scenarioFor(app, sc, 960+uint64(eps*2048)+hashMech(mech))
			evalSc.TracesPerSecret = victimReps(sc)
			ds, err := evalSc.Collect(kit.Defense(mech, eps))
			if err != nil {
				return nil, err
			}
			acc, err := clf.Evaluate(ds)
			if err != nil {
				return nil, err
			}
			res.Sweep = append(res.Sweep, DefensePoint{
				Mechanism: mech, Epsilon: eps, Attack: WFA, Accuracy: acc,
			})
			if acc <= target {
				point.Epsilon = eps
				point.Accuracy = acc
				point.Met = true
				break // largest ε meeting the target (descending sweep)
			}
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// Point returns the recommendation for a mechanism.
func (r *OperatingPointResult) Point(mech MechanismKind) (OperatingPoint, bool) {
	for _, p := range r.Points {
		if p.Mechanism == mech {
			return p, true
		}
	}
	return OperatingPoint{}, false
}

// Render prints the recommendations.
func (r *OperatingPointResult) Render() string {
	out := fmt.Sprintf("Operating points for target accuracy <= %.0f%% (clean %.1f%%)\n",
		r.TargetAccuracy*100, r.CleanAccuracy*100)
	var rows [][]string
	for _, p := range r.Points {
		eps := "—"
		acc := "—"
		if p.Met {
			eps = fmt.Sprintf("%g", p.Epsilon)
			acc = pct(p.Accuracy)
		}
		rows = append(rows, []string{string(p.Mechanism), eps, acc})
	}
	return out + table([]string{"mechanism", "largest effective eps", "accuracy"}, rows)
}
