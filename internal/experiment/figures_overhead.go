package experiment

import (
	"fmt"

	"github.com/repro/aegis/internal/attack"
	"github.com/repro/aegis/internal/obfuscator"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/sev"
	"github.com/repro/aegis/internal/trace"
	"github.com/repro/aegis/internal/workload"
)

// OverheadPoint is one (mechanism, ε, application) overhead measurement.
type OverheadPoint struct {
	Mechanism MechanismKind
	Epsilon   float64
	App       string
	// LatencyOverhead is the relative increase in mean job completion
	// time (paper: ~3-5% at the chosen operating points).
	LatencyOverhead float64
	// CPUUsageClean and CPUUsageDefended are mean vCPU utilisations; the
	// paper reports the defended increase (~7-9%).
	CPUUsageClean    float64
	CPUUsageDefended float64
}

// CPUOverhead returns the CPU usage increase in absolute percentage points
// of utilisation.
func (p OverheadPoint) CPUOverhead() float64 {
	return p.CPUUsageDefended - p.CPUUsageClean
}

// Figure10Result reproduces Fig. 10: latency and CPU overhead vs ε.
type Figure10Result struct {
	Points []OverheadPoint
}

// jobRun executes n jobs of the app back-to-back in a fresh world and
// returns the mean job duration (ticks) and the mean vCPU usage. The
// workload stream depends only on workloadSeed so a clean/defended pair
// executes the identical job sequence; defenseSeed varies the noise.
func jobRun(app workload.App, sc Scale, jobs int, defense attack.DefenseFactory, workloadSeed, defenseSeed uint64) (meanTicks, cpuUsage float64, err error) {
	worldCfg := sev.DefaultConfig(workloadSeed)
	world := sev.NewWorld(worldCfg)
	vm, err := world.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: true})
	if err != nil {
		return 0, 0, err
	}
	stream := rng.New(workloadSeed).Split("overhead")
	runner := workload.NewRunner(app.Name(), workload.DefaultLibrary(1), stream.Split("runner"))
	secrets := app.Secrets()
	for i := 0; i < jobs; i++ {
		job, err := app.Job(secrets[i%len(secrets)], stream.SplitN("job", i))
		if err != nil {
			return 0, 0, err
		}
		runner.Enqueue(job)
	}
	if err := vm.AddProcess(0, runner); err != nil {
		return 0, 0, err
	}
	if defense != nil {
		obf, err := defense(defenseSeed)
		if err != nil {
			return 0, 0, err
		}
		if err := vm.AddProcess(0, obf); err != nil {
			return 0, 0, err
		}
	}
	maxTicks := jobs * sc.TraceTicks * 20
	for i := 0; i < maxTicks && runner.Pending() > 0; i++ {
		world.Step()
	}
	if runner.Pending() > 0 {
		return 0, 0, fmt.Errorf("experiment: %s jobs did not finish within %d ticks", app.Name(), maxTicks)
	}
	timings := runner.Timings()
	var sum float64
	for _, t := range timings {
		sum += float64(t.Duration())
	}
	usage, err := vm.CPUUsage(0, 0)
	if err != nil {
		return 0, 0, err
	}
	return sum / float64(len(timings)), usage, nil
}

// Figure10 measures website-load latency and DNN-inference latency plus
// CPU usage across the ε sweep for both mechanisms.
func Figure10(sc Scale, epsilons []float64) (*Figure10Result, error) {
	if epsilons == nil {
		epsilons = Epsilons()
	}
	kit, err := BuildDefenseKit(sc)
	if err != nil {
		return nil, err
	}
	res := &Figure10Result{}
	jobs := sc.TracesPerSecret
	if jobs < 4 {
		jobs = 4
	}
	apps := []struct {
		name string
		app  workload.App
	}{
		{"website", websiteApp(sc)},
		{"dnn", dnnApp(sc)},
	}
	for _, a := range apps {
		workloadSeed := sc.Seed + 9000 + rng.HashString(a.name)%1024
		cleanTicks, cleanCPU, err := jobRun(a.app, sc, jobs, nil, workloadSeed, 0)
		if err != nil {
			return nil, err
		}
		for _, mech := range []MechanismKind{MechLaplace, MechDStar} {
			for _, eps := range epsilons {
				defTicks, defCPU, err := jobRun(a.app, sc, jobs, kit.Defense(mech, eps),
					workloadSeed, sc.Seed+uint64(eps*512)+hashMech(mech))
				if err != nil {
					return nil, err
				}
				res.Points = append(res.Points, OverheadPoint{
					Mechanism:        mech,
					Epsilon:          eps,
					App:              a.name,
					LatencyOverhead:  defTicks/cleanTicks - 1,
					CPUUsageClean:    cleanCPU,
					CPUUsageDefended: defCPU,
				})
			}
		}
	}
	return res, nil
}

// Point returns the recorded overhead point.
func (r *Figure10Result) Point(mech MechanismKind, eps float64, app string) (OverheadPoint, bool) {
	for _, p := range r.Points {
		if p.Mechanism == mech && p.Epsilon == eps && p.App == app {
			return p, true
		}
	}
	return OverheadPoint{}, false
}

// Render prints the overhead grid.
func (r *Figure10Result) Render() string {
	out := "Figure 10: latency overhead (upper) and CPU usage (lower) vs epsilon\n"
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			string(p.Mechanism), fmt.Sprintf("%g", p.Epsilon), p.App,
			pct(p.LatencyOverhead),
			pct(p.CPUUsageClean), pct(p.CPUUsageDefended),
		})
	}
	return out + table([]string{"mechanism", "eps", "app", "latency ovh", "cpu clean", "cpu defended"}, rows)
}

// Figure11Point is one random-noise bound measurement.
type Figure11Point struct {
	// BoundFraction is the bound as a fraction of the peak value p.
	BoundFraction float64
	Accuracy      float64
	// InjectedCounts is the mean injected noise per run.
	InjectedCounts float64
}

// Figure11Result reproduces Fig. 11 and the §IX-A random-noise analysis:
// attack accuracy under uniform random noise, compared against the Laplace
// mechanism at its effective operating point (ε = 2^0).
type Figure11Result struct {
	Points []Figure11Point
	// LaplaceAccuracy and LaplaceInjected are the DP reference at ε = 1.
	LaplaceAccuracy float64
	LaplaceInjected float64
	// Peak is the clean per-tick peak value p of the reference event.
	Peak float64
}

// Figure11 sweeps the random-noise bound over [0.1, 0.5]×p on the WFA and
// compares with the Laplace mechanism.
func Figure11(sc Scale) (*Figure11Result, error) {
	kit, err := BuildDefenseKit(sc)
	if err != nil {
		return nil, err
	}
	app := websiteApp(sc)
	cleanSc := scenarioFor(app, sc, 700)
	cleanDs, err := cleanSc.Collect(nil)
	if err != nil {
		return nil, err
	}
	cfg := attack.DefaultTrainConfig(sc.Seed + 11)
	cfg.Epochs = sc.Epochs
	clf, _, err := attack.TrainClassifier(cleanDs, cfg)
	if err != nil {
		return nil, err
	}
	// Peak per-tick value of the reference channel.
	var peak float64
	for _, tr := range cleanDs.Traces {
		for _, v := range tr.Channel(0) {
			if v > peak {
				peak = v
			}
		}
	}
	res := &Figure11Result{Peak: peak}

	// injected collects a defended dataset while summing the per-run
	// injected noise counts, then evaluates the clean-trained attacker.
	injected := func(defense attack.DefenseFactory, off uint64) (float64, float64, error) {
		sc2 := scenarioFor(app, sc, off)
		sc2.TracesPerSecret = victimReps(sc)
		ds := &trace.Dataset{EventNames: cleanDs.EventNames}
		var total float64
		var runs int
		for _, secret := range app.Secrets() {
			for rep := 0; rep < sc2.TracesPerSecret; rep++ {
				o, err := defense(rng.HashString(fmt.Sprintf("%d/%s/%d", off, secret, rep)))
				if err != nil {
					return 0, 0, err
				}
				tr, err := sc2.CollectOne(secret, rep, func(uint64) (*obfuscator.Obfuscator, error) {
					return o, nil
				})
				if err != nil {
					return 0, 0, err
				}
				ds.Add(tr)
				total += o.InjectedCounts()
				runs++
			}
		}
		acc, err := clf.Evaluate(ds)
		if err != nil {
			return 0, 0, err
		}
		return acc, total / float64(runs), nil
	}

	// Laplace reference at ε = 1.
	lapAcc, lapInj, err := injected(kit.Defense(MechLaplace, 1), 710)
	if err != nil {
		return nil, err
	}
	res.LaplaceAccuracy = lapAcc
	res.LaplaceInjected = lapInj

	for i, frac := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		bound := frac * peak
		acc, inj, err := injected(kit.Defense(MechRandom, bound), 720+uint64(i))
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, Figure11Point{
			BoundFraction:  frac,
			Accuracy:       acc,
			InjectedCounts: inj,
		})
	}
	return res, nil
}

// EffectiveRandomBound returns the smallest swept bound fraction whose
// accuracy drops to at most target, or -1 if none does (the paper finds
// random noise needs a 0.4p bound and 4.37× more injected counts to match
// the Laplace mechanism's protection).
func (r *Figure11Result) EffectiveRandomBound(target float64) float64 {
	for _, p := range r.Points {
		if p.Accuracy <= target {
			return p.BoundFraction
		}
	}
	return -1
}

// Render prints the comparison.
func (r *Figure11Result) Render() string {
	out := fmt.Sprintf("Figure 11: random-noise baseline (peak p = %.0f)\n", r.Peak)
	out += fmt.Sprintf("Laplace eps=1 reference: accuracy %.1f%%, injected %.0f counts/run\n",
		r.LaplaceAccuracy*100, r.LaplaceInjected)
	var rows [][]string
	for _, p := range r.Points {
		ratio := 0.0
		if r.LaplaceInjected > 0 {
			ratio = p.InjectedCounts / r.LaplaceInjected
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.1fp", p.BoundFraction), pct(p.Accuracy),
			fmt.Sprintf("%.0f", p.InjectedCounts), fmt.Sprintf("%.2fx", ratio),
		})
	}
	return out + table([]string{"bound", "accuracy", "injected", "vs laplace"}, rows)
}

// ConstantOutputResult reproduces the §IX-A constant-output analysis: the
// injected counts needed to pad the reference event to its peak, compared
// with the Laplace mechanism (paper: ~18× more noise).
type ConstantOutputResult struct {
	ConstantInjected float64
	LaplaceInjected  float64
	Peak             float64
}

// Ratio returns constant/laplace injected counts.
func (r ConstantOutputResult) Ratio() float64 {
	if r.LaplaceInjected == 0 {
		return 0
	}
	return r.ConstantInjected / r.LaplaceInjected
}

// ConstantOutputComparison measures the injected noise of the
// constant-output defense against the Laplace mechanism on the website
// workload (the paper's youtube.com example).
func ConstantOutputComparison(sc Scale) (*ConstantOutputResult, error) {
	kit, err := BuildDefenseKit(sc)
	if err != nil {
		return nil, err
	}
	app := websiteApp(sc)
	// Establish the peak of the reference channel from clean traces.
	cleanSc := scenarioFor(app, sc, 800)
	cleanSc.TracesPerSecret = 2
	cleanDs, err := cleanSc.Collect(nil)
	if err != nil {
		return nil, err
	}
	var peak float64
	for _, tr := range cleanDs.Traces {
		for _, v := range tr.Channel(0) {
			if v > peak {
				peak = v
			}
		}
	}
	res := &ConstantOutputResult{Peak: peak}

	measure := func(defense attack.DefenseFactory, off uint64) (float64, error) {
		sc2 := scenarioFor(app, sc, off)
		var total float64
		var runs int
		secrets := app.Secrets()
		if len(secrets) > 2 {
			secrets = secrets[:2]
		}
		for _, secret := range secrets {
			for rep := 0; rep < 2; rep++ {
				o, err := defense(rng.HashString(fmt.Sprintf("c%d/%s/%d", off, secret, rep)))
				if err != nil {
					return 0, err
				}
				if _, err := sc2.CollectOne(secret, rep, func(uint64) (*obfuscator.Obfuscator, error) {
					return o, nil
				}); err != nil {
					return 0, err
				}
				total += o.InjectedCounts()
				runs++
			}
		}
		return total / float64(runs), nil
	}

	constInjected, err := measure(kit.Defense(MechConstant, peak), 810)
	if err != nil {
		return nil, err
	}
	lapInjected, err := measure(kit.Defense(MechLaplace, 1), 820)
	if err != nil {
		return nil, err
	}
	res.ConstantInjected = constInjected
	res.LaplaceInjected = lapInjected
	return res, nil
}

// Render prints the comparison.
func (r *ConstantOutputResult) Render() string {
	return fmt.Sprintf(
		"Constant-output baseline (§IX-A): constant %.0f vs laplace %.0f injected counts/run => %.1fx\n",
		r.ConstantInjected, r.LaplaceInjected, r.Ratio())
}
