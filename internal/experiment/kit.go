package experiment

import (
	"fmt"

	"github.com/repro/aegis/internal/attack"
	"github.com/repro/aegis/internal/fuzzer"
	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/isa"
	"github.com/repro/aegis/internal/obfuscator"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/workload"
)

// DefenseKit bundles the offline Aegis artefacts shared by the defense
// experiments: the fuzzed gadget cover, the stacked noise segment and the
// reference event.
type DefenseKit struct {
	Catalog  *hpc.Catalog
	Events   []*hpc.Event
	Cover    []fuzzer.CoverageEntry
	Segment  []isa.Variant
	RefEvent *hpc.Event
	// ClipBound is B_u for the reference event (paper: 2e4 for
	// RETIRED_UOPS).
	ClipBound float64
	// Sensitivity converts the normalised DP sensitivity into reference
	// event counts at the simulator's tick scale.
	Sensitivity float64
}

// BuildDefenseKit runs the offline pipeline (fuzz → confirm → cover →
// stack) over the paper's four monitored events.
func BuildDefenseKit(sc Scale) (*DefenseKit, error) {
	cat := hpc.NewAMDEpyc7252Catalog(1)
	legal := isa.Cleanup(isa.SpecAMDEpyc(1), isa.AMDEpycFeatures()).Legal
	fcfg := fuzzer.DefaultConfig(sc.Seed)
	fcfg.CandidatesPerEvent = sc.FuzzCandidates
	fcfg.Parallelism = sc.Parallelism
	store, err := sc.Store()
	if err != nil {
		return nil, err
	}
	fcfg.Store = store
	fz, err := fuzzer.New(legal, fcfg)
	if err != nil {
		return nil, err
	}
	var events []*hpc.Event
	for _, name := range attack.DefaultEventNames() {
		events = append(events, cat.MustByName(name))
	}
	res, err := fz.Fuzz(events)
	if err != nil {
		return nil, err
	}
	cover, err := fz.MinimalCover(res, events)
	if err != nil {
		return nil, err
	}
	seg := fuzzer.StackSegment(cover)
	if len(seg) == 0 {
		return nil, fmt.Errorf("experiment: fuzzer produced an empty cover segment")
	}
	return &DefenseKit{
		Catalog:     cat,
		Events:      events,
		Cover:       cover,
		Segment:     seg,
		RefEvent:    cat.MustByName("RETIRED_UOPS"),
		ClipBound:   20000,
		Sensitivity: 1500,
	}, nil
}

// MechanismKind selects a noise mechanism for defense sweeps.
type MechanismKind string

// Mechanism kinds.
const (
	MechLaplace  MechanismKind = "laplace"
	MechDStar    MechanismKind = "dstar"
	MechRandom   MechanismKind = "random"
	MechConstant MechanismKind = "constant"
)

// Defense builds an attack.DefenseFactory for the kit with the given
// mechanism and parameter (ε for DP mechanisms, the bound/peak for the
// baselines).
func (k *DefenseKit) Defense(kind MechanismKind, param float64) attack.DefenseFactory {
	return func(seed uint64) (*obfuscator.Obfuscator, error) {
		var (
			mech obfuscator.Mechanism
			err  error
		)
		r := rng.New(seed).Split("defense")
		switch kind {
		case MechLaplace:
			mech, err = obfuscator.NewLaplaceMechanism(param, k.Sensitivity, r)
		case MechDStar:
			mech, err = obfuscator.NewDStarMechanism(param, k.Sensitivity, r)
		case MechRandom:
			mech, err = obfuscator.NewRandomNoiseMechanism(param, r)
		case MechConstant:
			mech, err = obfuscator.NewConstantOutputMechanism(param)
		default:
			return nil, fmt.Errorf("experiment: unknown mechanism %q", kind)
		}
		if err != nil {
			return nil, err
		}
		return obfuscator.New(obfuscator.Config{
			Mechanism: mech,
			Segment:   k.Segment,
			RefEvent:  k.RefEvent,
			ClipBound: k.ClipBound,
			Seed:      seed,
		})
	}
}

// websiteApp returns the scaled-down website application.
func websiteApp(sc Scale) *workload.WebsiteApp {
	sites := workload.Websites()
	if sc.Sites > 0 && sc.Sites < len(sites) {
		sites = sites[:sc.Sites]
	}
	return &workload.WebsiteApp{Sites: sites}
}

// keystrokeApp returns the scaled-down keystroke application.
func keystrokeApp(sc Scale) *workload.KeystrokeApp {
	return &workload.KeystrokeApp{WindowTicks: sc.TraceTicks, MaxKeys: sc.KeyClasses}
}

// dnnApp returns the scaled-down DNN application, picking models spread
// across the three zoo families.
func dnnApp(sc Scale) *workload.DNNApp {
	zoo := workload.ModelZoo()
	if sc.Models <= 0 || sc.Models >= len(zoo) {
		return &workload.DNNApp{}
	}
	models := make([]workload.ModelArch, 0, sc.Models)
	// Stride through the zoo so vgg/resnet/mobile families all appear.
	stride := len(zoo) / sc.Models
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(zoo) && len(models) < sc.Models; i += stride {
		models = append(models, zoo[i])
	}
	return &workload.DNNApp{Models: models}
}

// scenarioFor builds the collection scenario of one application.
func scenarioFor(app workload.App, sc Scale, seedOffset uint64) *attack.Scenario {
	return &attack.Scenario{
		App:             app,
		Catalog:         hpc.NewAMDEpyc7252Catalog(1),
		TracesPerSecret: sc.TracesPerSecret,
		TraceTicks:      sc.TraceTicks,
		Seed:            sc.Seed + seedOffset,
	}
}
