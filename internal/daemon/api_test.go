package daemon_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/repro/aegis/internal/daemon"
	"github.com/repro/aegis/internal/daemon/daemontest"
	"github.com/repro/aegis/internal/ops"
)

// ctlDo runs one request against the handler and decodes the envelope.
func ctlDo(t *testing.T, h http.Handler, method, path, body string) (int, daemon.CtlResponse) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var resp daemon.CtlResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("%s %s: body is not a ctl envelope: %v\n%s", method, path, err, rec.Body.String())
	}
	if resp.Schema != daemon.CtlSchema {
		t.Fatalf("%s %s: schema = %q, want %q", method, path, resp.Schema, daemon.CtlSchema)
	}
	return rec.Code, resp
}

// TestCtlHandlerTable is the aegisd-ctl/v1 handler table: every route's
// happy path plus the error mapping the ISSUE pins — bad tenant → 404,
// malformed JSON → 400, duplicate attach → 409, invalid reload → 400
// with the old config staying live.
func TestCtlHandlerTable(t *testing.T) {
	cfg := daemontest.BaseConfig(7)
	cfg.QueueCapacity = 2
	d, err := daemon.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := d.CtlHandler()

	steps := []struct {
		name, method, path, body string
		wantStatus               int
		check                    func(t *testing.T, resp daemon.CtlResponse)
	}{
		{"daemon status empty", "GET", "/ctl/v1/daemon", "", 200,
			func(t *testing.T, resp daemon.CtlResponse) {
				if resp.Daemon == nil || resp.Daemon.Tenants != 0 {
					t.Fatalf("want empty daemon status, got %+v", resp.Daemon)
				}
			}},
		{"tenant list empty", "GET", "/ctl/v1/tenants", "", 200,
			func(t *testing.T, resp daemon.CtlResponse) {
				if len(resp.Tenants) != 0 {
					t.Fatalf("want no tenants, got %d", len(resp.Tenants))
				}
			}},
		{"tenant missing is 404", "GET", "/ctl/v1/tenant?name=ghost", "", 404, nil},
		{"attach malformed json is 400", "POST", "/ctl/v1/attach", `{"name": `, 400, nil},
		{"attach unknown field is 400", "POST", "/ctl/v1/attach", `{"name":"a","nope":1}`, 400, nil},
		{"attach unknown app is 400", "POST", "/ctl/v1/attach", `{"name":"a","app":"nope"}`, 400, nil},
		{"attach ok", "POST", "/ctl/v1/attach", `{"name":"api-a","app":"website","secrets":2}`, 200,
			func(t *testing.T, resp daemon.CtlResponse) {
				if resp.Tenant == nil || resp.Tenant.State != "attaching" {
					t.Fatalf("attach response: %+v", resp.Tenant)
				}
			}},
		{"duplicate attach is 409", "POST", "/ctl/v1/attach", `{"name":"api-a"}`, 409, nil},
		{"submit ok", "POST", "/ctl/v1/submit", `{"name":"api-a","jobs":2}`, 200,
			func(t *testing.T, resp daemon.CtlResponse) {
				if resp.Accepted != 2 || resp.Shed != 0 {
					t.Fatalf("submit: accepted=%d shed=%d, want 2/0", resp.Accepted, resp.Shed)
				}
			}},
		{"submit to full queue is 429", "POST", "/ctl/v1/submit", `{"name":"api-a","jobs":3}`, 429,
			func(t *testing.T, resp daemon.CtlResponse) {
				if resp.Accepted != 0 || resp.Shed != 3 {
					t.Fatalf("overflow submit: accepted=%d shed=%d, want 0/3", resp.Accepted, resp.Shed)
				}
			}},
		{"submit to missing tenant is 404", "POST", "/ctl/v1/submit", `{"name":"ghost","jobs":1}`, 404, nil},
		{"reload malformed json is 400", "POST", "/ctl/v1/reload", `{"epsilon": }`, 400, nil},
		{"reload unknown field is 400", "POST", "/ctl/v1/reload", `{"epsilonn": 2}`, 400, nil},
		{"reload invalid value is 400", "POST", "/ctl/v1/reload", `{"epsilon": -1}`, 400,
			func(t *testing.T, resp daemon.CtlResponse) {
				if resp.Error == "" {
					t.Fatal("rejected reload carries no error detail")
				}
			}},
		{"old config stays live after rejected reload", "GET", "/ctl/v1/daemon", "", 200,
			func(t *testing.T, resp daemon.CtlResponse) {
				if resp.Daemon.Settings.Epsilon != 1 || resp.Daemon.PendingReload {
					t.Fatalf("rejected reload leaked into settings: %+v", resp.Daemon)
				}
				if resp.Daemon.ReloadRejects != 1 {
					t.Fatalf("reload_rejects = %d, want 1", resp.Daemon.ReloadRejects)
				}
			}},
		{"reload valid stages", "POST", "/ctl/v1/reload", `{"mechanism":"dstar"}`, 200,
			func(t *testing.T, resp daemon.CtlResponse) {
				if !resp.Daemon.PendingReload {
					t.Fatal("valid reload not staged")
				}
			}},
		{"detach missing tenant is 404", "POST", "/ctl/v1/detach", `{"name":"ghost"}`, 404, nil},
		{"detach kill ok", "POST", "/ctl/v1/detach", `{"name":"api-a","kill":true}`, 200,
			func(t *testing.T, resp daemon.CtlResponse) {
				if resp.Daemon.Tenants != 0 || resp.Daemon.Shed != 3+2 {
					t.Fatalf("post-kill status: %+v", resp.Daemon)
				}
			}},
	}
	for _, step := range steps {
		t.Run(step.name, func(t *testing.T) {
			status, resp := ctlDo(t, h, step.method, step.path, step.body)
			if status != step.wantStatus {
				t.Fatalf("status = %d, want %d (error %q)", status, step.wantStatus, resp.Error)
			}
			// 429 is backpressure, not an error: it carries accepted/shed.
			if status >= 400 && status != 429 && resp.Error == "" {
				t.Fatal("error status without error detail")
			}
			if step.check != nil {
				step.check(t, resp)
			}
		})
	}
}

// TestCtlMountedOnOpsServer wires the control API onto a real ops server
// over HTTP and checks the readiness gate is visible on /readyz: open in
// steady state, failed while the daemon sheds.
func TestCtlMountedOnOpsServer(t *testing.T) {
	cfg := daemontest.BaseConfig(11)
	cfg.QueueCapacity = 2
	d, err := daemon.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := ops.NewServer(ops.Config{Addr: "127.0.0.1:0", Recorder: d.Journal()})
	srv.RegisterReadiness(d.ReadyProbe())
	srv.RegisterHealth(d.HealthProbe())
	srv.Mount(daemon.CtlPrefix, "ctl", d.CtlHandler())
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + addr

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	post := func(path, body string) (int, string) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(out)
	}

	if code, body := get("/readyz"); code != 200 {
		t.Fatalf("/readyz before load = %d: %s", code, body)
	}
	if code, body := post("/ctl/v1/attach", `{"name":"http-a"}`); code != 200 {
		t.Fatalf("attach over http = %d: %s", code, body)
	}
	// Saturate the queue: overload closes the gate, /readyz goes 503.
	if code, _ := post("/ctl/v1/submit", `{"name":"http-a","jobs":5}`); code != 200 {
		t.Fatalf("saturating submit = %d, want 200 (partial accept)", code)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while overloaded = %d: %s", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "shedding load") {
		t.Fatalf("/healthz while overloaded = %d: %s", code, body)
	}
	// Drain and recover.
	d.Run(2)
	if code, body := get("/readyz"); code != 200 {
		t.Fatalf("/readyz after drain = %d: %s", code, body)
	}
	// The ops server serves the daemon journal on /flight.
	if code, body := get("/flight?kind=daemon"); code != 200 || !strings.Contains(body, "tenant:attach") {
		t.Fatalf("/flight = %d: %s", code, body)
	}
	if code, body := get("/ctl/v1/tenants"); code != 200 || !strings.Contains(body, `"http-a"`) {
		t.Fatalf("tenants over http = %d: %s", code, body)
	}
}
