package daemon_test

import (
	"errors"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"github.com/repro/aegis/internal/daemon"
	"github.com/repro/aegis/internal/daemon/daemontest"
	"github.com/repro/aegis/internal/ops"
	"github.com/repro/aegis/internal/telemetry"
	"github.com/repro/aegis/internal/telemetry/flight"
)

// newDaemon builds a small test daemon around the harness's synthetic
// plan.
func newDaemon(t *testing.T, mutate func(*daemon.Config)) *daemon.Daemon {
	t.Helper()
	cfg := daemontest.BaseConfig(101)
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := daemon.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidatesPlan(t *testing.T) {
	if _, err := daemon.New(daemon.Config{}); err == nil {
		t.Fatal("New accepted a config without a segment")
	}
	cfg := daemontest.BaseConfig(1)
	cfg.Mechanism = "nonsense"
	if _, err := daemon.New(cfg); !errors.Is(err, daemon.ErrBadTunables) {
		t.Fatalf("New with unknown mechanism: got %v, want ErrBadTunables", err)
	}
}

// TestTenantLifecycle walks one tenant through the full state machine:
// Attaching → Protecting → Draining → gone, with the transitions visible
// in TenantStatus and the daemon journal.
func TestTenantLifecycle(t *testing.T) {
	d := newDaemon(t, nil)
	if err := d.Attach(daemon.AttachSpec{Name: "alpha"}); err != nil {
		t.Fatal(err)
	}
	if err := d.Attach(daemon.AttachSpec{Name: "alpha"}); !errors.Is(err, daemon.ErrTenantExists) {
		t.Fatalf("duplicate attach: got %v, want ErrTenantExists", err)
	}
	st, err := d.TenantStatus("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "attaching" {
		t.Fatalf("pre-tick state = %q, want attaching", st.State)
	}
	d.Step()
	if st, _ = d.TenantStatus("alpha"); st.State != "protecting" {
		t.Fatalf("post-tick state = %q, want protecting", st.State)
	}
	if st.Ticks != 1 || st.Protection.Ticks != 1 {
		t.Fatalf("tick funnel: tenant ticks=%d protection ticks=%d, want 1/1", st.Ticks, st.Protection.Ticks)
	}
	// Graceful detach: drains (empty queue → removed at the next barrier).
	if err := d.Detach("alpha", false); err != nil {
		t.Fatal(err)
	}
	if st, _ = d.TenantStatus("alpha"); st.State != "draining" {
		t.Fatalf("state after graceful detach = %q, want draining", st.State)
	}
	if _, err := d.Submit("alpha", 1); !errors.Is(err, daemon.ErrNotAccepting) {
		t.Fatalf("submit while draining: got %v, want ErrNotAccepting", err)
	}
	d.Step()
	if _, err := d.TenantStatus("alpha"); !errors.Is(err, daemon.ErrNoTenant) {
		t.Fatalf("status after drain completed: got %v, want ErrNoTenant", err)
	}
	dst := d.Status()
	if dst.Attached != 1 || dst.Detached != 1 || dst.Tenants != 0 {
		t.Fatalf("daemon totals = %+v, want attached=1 detached=1 tenants=0", dst)
	}
	wantCodes := []flight.Code{
		flight.CodeTenantAttach, flight.CodeDaemonSummary,
		flight.CodeTenantDrain, flight.CodeTenantDetach, flight.CodeDaemonSummary,
	}
	recs := d.Journal().Snapshot()
	if len(recs) != len(wantCodes) {
		t.Fatalf("journal has %d records, want %d", len(recs), len(wantCodes))
	}
	for i, rec := range recs {
		if rec.Code != wantCodes[i] {
			t.Errorf("journal[%d] = %s, want %s", i, rec.Code, wantCodes[i])
		}
	}
}

// TestBackpressureShedAndRecover is the backpressure unit test: a full
// queue sheds (counted in the funnel, the tenant-labelled metric and the
// journal), flips the readiness gate, and the gate reopens once the
// backlog drains.
func TestBackpressureShedAndRecover(t *testing.T) {
	d := newDaemon(t, func(cfg *daemon.Config) {
		cfg.QueueCapacity = 4
		cfg.MaxItemsPerTick = 2
	})
	if err := d.Attach(daemon.AttachSpec{Name: "bp"}); err != nil {
		t.Fatal(err)
	}
	shedBefore := telemetry.C("daemon_events_shed_total", telemetry.L("tenant", "bp")).Value()
	accepted, err := d.Submit("bp", 10)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 4 {
		t.Fatalf("accepted %d of 10 into a capacity-4 queue, want 4", accepted)
	}
	st, _ := d.TenantStatus("bp")
	if st.Shed != 6 || st.QueueDepth != 4 {
		t.Fatalf("tenant funnel after burst: shed=%d depth=%d, want 6/4", st.Shed, st.QueueDepth)
	}
	shedDelta := telemetry.C("daemon_events_shed_total", telemetry.L("tenant", "bp")).Value() - shedBefore
	if shedDelta != 6 {
		t.Fatalf("daemon_events_shed_total{tenant=bp} grew by %v, want 6", shedDelta)
	}
	if !d.Status().Overloaded {
		t.Fatal("daemon not overloaded with a saturated queue")
	}
	if got := d.ReadyProbe().Check(); got.State != ops.StateFailed {
		t.Fatalf("readiness probe while overloaded = %v, want failed", got.State)
	}
	// The shed is journaled — never silent.
	found := false
	for _, rec := range d.Journal().Snapshot() {
		if rec.Code == flight.CodeTenantShed && rec.Incident && rec.B == 6 {
			found = true
		}
	}
	if !found {
		t.Fatal("no tenant:shed incident journaled for the burst")
	}
	// Drain: 2 items/tick → empty after 2 ticks; the gate recovers.
	d.Run(2)
	st, _ = d.TenantStatus("bp")
	if st.QueueDepth != 0 || st.Processed != 4 {
		t.Fatalf("after drain: depth=%d processed=%d, want 0/4", st.QueueDepth, st.Processed)
	}
	if d.Status().Overloaded {
		t.Fatal("daemon still overloaded after the backlog drained")
	}
	if got := d.ReadyProbe().Check(); got.State != ops.StateOK {
		t.Fatalf("readiness probe after drain = %v, want ok", got.State)
	}
	// Funnel reconciliation: enqueued == processed + depth.
	if st.Enqueued != st.Processed+int64(st.QueueDepth) {
		t.Fatalf("funnel: enqueued=%d processed=%d depth=%d", st.Enqueued, st.Processed, st.QueueDepth)
	}
}

// TestKillDetachShedsQueue verifies a kill-detach sheds the queued work
// loudly: counted, journaled as an incident, and reflected in totals.
func TestKillDetachShedsQueue(t *testing.T) {
	d := newDaemon(t, func(cfg *daemon.Config) { cfg.QueueCapacity = 8 })
	if err := d.Attach(daemon.AttachSpec{Name: "kill"}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit("kill", 5); err != nil {
		t.Fatal(err)
	}
	if err := d.Detach("kill", true); err != nil {
		t.Fatal(err)
	}
	if err := d.Detach("kill", true); !errors.Is(err, daemon.ErrNoTenant) {
		t.Fatalf("double kill: got %v, want ErrNoTenant", err)
	}
	if got := d.Status().Shed; got != 5 {
		t.Fatalf("daemon shed total after kill = %d, want 5", got)
	}
	shed := false
	for _, rec := range d.Journal().Snapshot() {
		if rec.Code == flight.CodeTenantShed && rec.Incident && rec.B == 5 {
			shed = true
		}
	}
	if !shed {
		t.Fatal("kill-detach shed 5 items without journaling an incident")
	}
}

// TestReloadAtomicity is the reload unit test: an invalid delta is
// rejected whole (old config stays live, reject counted and journaled);
// a valid delta stages and applies at the next tick boundary, re-planning
// every tenant.
func TestReloadAtomicity(t *testing.T) {
	d := newDaemon(t, nil)
	if err := d.Attach(daemon.AttachSpec{Name: "r0"}); err != nil {
		t.Fatal(err)
	}
	d.Step()
	before := d.Status().Settings

	badEps := -3.0
	goodClip := 5000.0
	err := d.Reload(daemon.Tunables{Epsilon: &badEps, ClipBound: &goodClip})
	if !errors.Is(err, daemon.ErrBadTunables) {
		t.Fatalf("invalid reload: got %v, want ErrBadTunables", err)
	}
	d.Step()
	after := d.Status()
	if after.Settings != before {
		t.Fatalf("invalid reload changed settings: %+v -> %+v", before, after.Settings)
	}
	if after.ReloadRejects != 1 || after.Reloads != 0 {
		t.Fatalf("reject counters = reloads %d rejects %d, want 0/1", after.Reloads, after.ReloadRejects)
	}
	st, _ := d.TenantStatus("r0")
	if st.PlanGeneration != 0 {
		t.Fatalf("invalid reload re-planned the tenant (gen %d)", st.PlanGeneration)
	}

	// Valid reload: staged now, applied at the next Step.
	eps := 2.5
	if err := d.Reload(daemon.Tunables{Mechanism: daemon.MechanismDStar, Epsilon: &eps}); err != nil {
		t.Fatal(err)
	}
	mid := d.Status()
	if !mid.PendingReload || mid.Settings.Mechanism != before.Mechanism {
		t.Fatalf("valid reload applied before the tick boundary: %+v", mid)
	}
	d.Step()
	got := d.Status()
	if got.PendingReload || got.Settings.Mechanism != daemon.MechanismDStar || got.Settings.Epsilon != 2.5 {
		t.Fatalf("reload not applied at tick boundary: %+v", got.Settings)
	}
	st, _ = d.TenantStatus("r0")
	if st.PlanGeneration != 1 {
		t.Fatalf("tenant plan generation = %d after mechanism change, want 1", st.PlanGeneration)
	}
	replans, rejects := 0, 0
	for _, rec := range d.Journal().Snapshot() {
		switch rec.Code {
		case flight.CodeTenantReplan:
			replans++
		case flight.CodeDaemonReloadReject:
			rejects++
		}
	}
	if replans != 1 || rejects != 1 {
		t.Fatalf("journal has %d replans / %d rejects, want 1/1", replans, rejects)
	}
}

// TestReloadQueueResize verifies a queue-capacity shrink sheds the
// overflow (loudly) and the funnel still reconciles.
func TestReloadQueueResize(t *testing.T) {
	d := newDaemon(t, func(cfg *daemon.Config) {
		cfg.QueueCapacity = 8
		cfg.MaxItemsPerTick = 1
	})
	if err := d.Attach(daemon.AttachSpec{Name: "rq"}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit("rq", 8); err != nil {
		t.Fatal(err)
	}
	newCap := 3
	if err := d.Reload(daemon.Tunables{QueueCapacity: &newCap}); err != nil {
		t.Fatal(err)
	}
	d.Step() // resize applies, sheds 5, then drains 1
	st, _ := d.TenantStatus("rq")
	if st.QueueCapacity != 3 {
		t.Fatalf("queue capacity = %d after resize, want 3", st.QueueCapacity)
	}
	if st.Shed != 5 {
		t.Fatalf("resize shed %d, want 5", st.Shed)
	}
	if st.Enqueued != st.Processed+st.Shed+int64(st.QueueDepth) {
		t.Fatalf("funnel broke across resize: %+v", st)
	}
}

// TestLoadGeneratorFunnel runs the internal load generator over capacity
// and checks the end-to-end funnel reconciliation.
func TestLoadGeneratorFunnel(t *testing.T) {
	d := newDaemon(t, func(cfg *daemon.Config) {
		cfg.LoadPerTick = 4
		cfg.MaxItemsPerTick = 2
		cfg.QueueCapacity = 6
	})
	if err := d.Attach(daemon.AttachSpec{Name: "load"}); err != nil {
		t.Fatal(err)
	}
	d.Run(10)
	st, _ := d.TenantStatus("load")
	if st.Shed == 0 {
		t.Fatal("overdriven tenant shed nothing")
	}
	if st.Enqueued+st.Shed != 40 {
		t.Fatalf("load generator offered %d items, want 40", st.Enqueued+st.Shed)
	}
	if st.Enqueued != st.Processed+int64(st.QueueDepth) {
		t.Fatalf("funnel: enqueued=%d processed=%d depth=%d", st.Enqueued, st.Processed, st.QueueDepth)
	}
	// Load-generator sheds are journaled tick by tick; their sum matches
	// the funnel.
	var journaled int64
	for _, rec := range d.Journal().Snapshot() {
		if rec.Code == flight.CodeTenantShed {
			journaled += int64(rec.B)
		}
	}
	if journaled != st.Shed {
		t.Fatalf("journal sheds %d != funnel sheds %d", journaled, st.Shed)
	}
}

// daemonMetricLine matches the daemon's Prometheus exposition lines,
// keeping tenant-labelled series only for this test's own tenants (the
// registry is process-wide and other tests attach their own).
var daemonMetricLine = regexp.MustCompile(`^daemon_[a-z_]+(\{[^}]*\})? `)

func filterDaemonMetrics(out string) string {
	var lines []string
	for _, line := range strings.Split(out, "\n") {
		if !daemonMetricLine.MatchString(line) {
			continue
		}
		if strings.Contains(line, "tenant=") && !strings.Contains(line, `tenant="golden-`) {
			continue
		}
		// The ctl-request counter only exists once the API tests ran; keep
		// the golden independent of which tests share the binary.
		if strings.HasPrefix(line, "daemon_ctl_requests_total") {
			continue
		}
		idx := strings.LastIndex(line, " ")
		lines = append(lines, line[:idx]+" N")
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// TestDaemonPromGolden pins the daemon metric names and label shapes
// operators alert on. Regenerate with
// AEGIS_UPDATE_GOLDEN=1 go test ./internal/daemon/.
func TestDaemonPromGolden(t *testing.T) {
	d := newDaemon(t, func(cfg *daemon.Config) {
		cfg.QueueCapacity = 2
		cfg.MaxItemsPerTick = 1
	})
	for _, name := range []string{"golden-a", "golden-b"} {
		if err := d.Attach(daemon.AttachSpec{Name: name}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Submit("golden-a", 5); err != nil { // forces a shed
		t.Fatal(err)
	}
	eps := 2.0
	if err := d.Reload(daemon.Tunables{Epsilon: &eps}); err != nil {
		t.Fatal(err)
	}
	if err := d.Reload(daemon.Tunables{Mechanism: "bogus"}); err == nil {
		t.Fatal("bogus reload accepted")
	}
	d.Run(4)
	if err := d.Detach("golden-b", true); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := telemetry.Default().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := filterDaemonMetrics(sb.String())
	golden := filepath.Join("testdata", "daemon_prom.golden")
	if os.Getenv("AEGIS_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with AEGIS_UPDATE_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Errorf("daemon metric exposition drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
