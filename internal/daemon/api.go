// Code in this file is the aegisd control API ("aegisd-ctl/v1"): a small
// JSON surface mounted on the internal/ops server under /ctl/v1/, giving
// operators (and aegisctl's client mode) tenant lifecycle, work
// submission, status and live reload. Handlers serialize against the
// tick loop on the daemon mutex, so control operations land at tick
// boundaries — which is also what keeps scripted scenarios
// deterministic.
package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"github.com/repro/aegis/internal/telemetry"
)

// CtlSchema versions every control-API response body.
const CtlSchema = "aegisd-ctl/v1"

// CtlPrefix is the path prefix the control API is mounted under.
const CtlPrefix = "/ctl/v1/"

// CtlResponse is the uniform JSON envelope of the control API. Exactly
// the fields relevant to the request are populated; Error is set (with a
// non-2xx status) when the request failed.
type CtlResponse struct {
	Schema   string         `json:"schema"`
	Error    string         `json:"error,omitempty"`
	Daemon   *Status        `json:"daemon,omitempty"`
	Tenant   *TenantStatus  `json:"tenant,omitempty"`
	Tenants  []TenantStatus `json:"tenants,omitempty"`
	Accepted int            `json:"accepted,omitempty"`
	Shed     int            `json:"shed,omitempty"`
}

// countCtl counts one control-API request by operation; the label set is
// bounded by the fixed route table in CtlHandler.
func countCtl(op string) {
	telemetry.C("daemon_ctl_requests_total", telemetry.L("op", op)).Inc()
}

// writeCtl writes the envelope with the given HTTP status.
func writeCtl(w http.ResponseWriter, status int, body CtlResponse) {
	body.Schema = CtlSchema
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

// ctlError maps a daemon error onto its HTTP status.
func ctlError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNoTenant):
		status = http.StatusNotFound
	case errors.Is(err, ErrTenantExists), errors.Is(err, ErrNotAccepting):
		status = http.StatusConflict
	case errors.Is(err, ErrBadTunables), errors.Is(err, ErrBadAttach):
		status = http.StatusBadRequest
	}
	writeCtl(w, status, CtlResponse{Error: err.Error()})
}

// decodeBody strictly decodes a JSON request body (unknown fields are
// errors, so a typoed tunable cannot silently no-op).
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("daemon: bad request body: %w", err)
	}
	return nil
}

// CtlHandler returns the control-API handler, rooted at CtlPrefix. Mount
// it on the ops server:
//
//	srv.Mount(daemon.CtlPrefix, "ctl", d.CtlHandler())
func (d *Daemon) CtlHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+CtlPrefix+"daemon", d.handleDaemonStatus)
	mux.HandleFunc("GET "+CtlPrefix+"tenants", d.handleTenants)
	mux.HandleFunc("GET "+CtlPrefix+"tenant", d.handleTenant)
	mux.HandleFunc("POST "+CtlPrefix+"attach", d.handleAttach)
	mux.HandleFunc("POST "+CtlPrefix+"detach", d.handleDetach)
	mux.HandleFunc("POST "+CtlPrefix+"submit", d.handleSubmit)
	mux.HandleFunc("POST "+CtlPrefix+"reload", d.handleReload)
	return mux
}

func (d *Daemon) handleDaemonStatus(w http.ResponseWriter, _ *http.Request) {
	countCtl("daemon")
	st := d.Status()
	writeCtl(w, http.StatusOK, CtlResponse{Daemon: &st})
}

func (d *Daemon) handleTenants(w http.ResponseWriter, _ *http.Request) {
	countCtl("tenants")
	writeCtl(w, http.StatusOK, CtlResponse{Tenants: d.Statuses()})
}

func (d *Daemon) handleTenant(w http.ResponseWriter, r *http.Request) {
	countCtl("tenant")
	name := r.URL.Query().Get("name")
	st, err := d.TenantStatus(name)
	if err != nil {
		ctlError(w, err)
		return
	}
	writeCtl(w, http.StatusOK, CtlResponse{Tenant: &st})
}

func (d *Daemon) handleAttach(w http.ResponseWriter, r *http.Request) {
	countCtl("attach")
	var spec AttachSpec
	if err := decodeBody(r, &spec); err != nil {
		writeCtl(w, http.StatusBadRequest, CtlResponse{Error: err.Error()})
		return
	}
	if err := d.Attach(spec); err != nil {
		ctlError(w, err)
		return
	}
	st, err := d.TenantStatus(spec.Name)
	if err != nil {
		ctlError(w, err)
		return
	}
	writeCtl(w, http.StatusOK, CtlResponse{Tenant: &st})
}

// detachRequest is the body of POST /ctl/v1/detach.
type detachRequest struct {
	Name string `json:"name"`
	// Kill skips the graceful drain and sheds whatever is queued.
	Kill bool `json:"kill,omitempty"`
}

func (d *Daemon) handleDetach(w http.ResponseWriter, r *http.Request) {
	countCtl("detach")
	var req detachRequest
	if err := decodeBody(r, &req); err != nil {
		writeCtl(w, http.StatusBadRequest, CtlResponse{Error: err.Error()})
		return
	}
	if err := d.Detach(req.Name, req.Kill); err != nil {
		ctlError(w, err)
		return
	}
	st := d.Status()
	writeCtl(w, http.StatusOK, CtlResponse{Daemon: &st})
}

// submitRequest is the body of POST /ctl/v1/submit.
type submitRequest struct {
	Name string `json:"name"`
	Jobs int    `json:"jobs"`
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	countCtl("submit")
	var req submitRequest
	if err := decodeBody(r, &req); err != nil {
		writeCtl(w, http.StatusBadRequest, CtlResponse{Error: err.Error()})
		return
	}
	accepted, err := d.Submit(req.Name, req.Jobs)
	if err != nil {
		ctlError(w, err)
		return
	}
	shed := req.Jobs - accepted
	status := http.StatusOK
	if accepted == 0 && req.Jobs > 0 {
		// Everything shed: backpressure surfaces to the client too.
		status = http.StatusTooManyRequests
	}
	writeCtl(w, status, CtlResponse{Accepted: accepted, Shed: shed})
}

func (d *Daemon) handleReload(w http.ResponseWriter, r *http.Request) {
	countCtl("reload")
	var tun Tunables
	if err := decodeBody(r, &tun); err != nil {
		writeCtl(w, http.StatusBadRequest, CtlResponse{Error: err.Error()})
		return
	}
	if err := d.Reload(tun); err != nil {
		ctlError(w, err)
		return
	}
	st := d.Status()
	writeCtl(w, http.StatusOK, CtlResponse{Daemon: &st})
}
