// Package daemon is the multi-tenant protection service behind aegisd: a
// fleet of guest VMs, each running a protected application plus its own
// obfuscator built from one shared gadget plan, all driven off a single
// deterministic tick loop. The daemon owns the loop but not the clock —
// callers (cmd/aegisd's wall-clock ticker, the daemontest scenario
// runner) call Step, so every daemon scenario is seed-replayable.
//
// Lifecycle: tenants move Attaching → Protecting → Draining → Detached
// (see State). Work arrives through bounded per-tenant queues; when a
// queue is full the daemon sheds, and a shed is never silent — it lands
// in the per-tenant funnel counters, the daemon_events_shed_total{tenant}
// metric and the daemon's own flight journal, and it closes the readiness
// gate until the backlog drains. Config changes (Reload) are validated
// atomically, staged, and applied at the next tick boundary so no
// in-flight tick ever observes a half-applied config.
//
// Determinism contract: the daemon journals to its own flight.Recorder
// (Journal), and every write to it happens either under the daemon mutex
// from a control-path call or at the post-tick barrier iterating tenants
// in attach order — never from the parallel per-tenant fan-out. The same
// seed therefore produces a byte-identical journal at any Parallelism.
package daemon

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/repro/aegis/internal/faultinject"
	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/isa"
	"github.com/repro/aegis/internal/microarch"
	"github.com/repro/aegis/internal/obfuscator"
	"github.com/repro/aegis/internal/ops"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/sev"
	"github.com/repro/aegis/internal/telemetry"
	"github.com/repro/aegis/internal/telemetry/flight"
	"github.com/repro/aegis/internal/workload"
)

// Daemon-level metrics; the per-tenant funnel counters are created at
// attach time with a tenant label.
var (
	mTicks               = telemetry.C("daemon_ticks_total")
	mTenantTicks         = telemetry.C("daemon_tenant_ticks_total")
	gTenants             = telemetry.G("daemon_tenants")
	mAttaches            = telemetry.C("daemon_attaches_total")
	mDetaches            = telemetry.C("daemon_detaches_total")
	mReloads             = telemetry.C("daemon_reloads_total")
	mReloadRejects       = telemetry.C("daemon_reload_rejects_total")
	mDegradedTenantTicks = telemetry.C("daemon_degraded_tenant_ticks_total")
	gOverloaded          = telemetry.G("daemon_overloaded")
)

// Errors returned by the daemon. Control-API handlers map them onto HTTP
// statuses with errors.Is, so wrap — don't replace — when adding context.
var (
	ErrTenantExists = errors.New("daemon: tenant already attached")
	ErrNoTenant     = errors.New("daemon: no such tenant")
	ErrNotAccepting = errors.New("daemon: tenant not accepting work")
	ErrBadTunables  = errors.New("daemon: invalid tunables")
	ErrBadAttach    = errors.New("daemon: invalid attach spec")
)

// Mechanism names accepted by Config.Mechanism and Tunables.Mechanism.
const (
	MechanismLaplace  = "laplace"
	MechanismDStar    = "dstar"
	MechanismRandom   = "random"
	MechanismConstant = "constant"
)

// Config configures a daemon. Segment and RefEvent are the shared
// protection plan (typically from one offline fuzz campaign); every
// tenant's obfuscator is built from them with tenant-derived seeds.
type Config struct {
	// Segment is the stacked gadget segment every tenant injects.
	Segment []isa.Variant
	// RefEvent is the reference HPC event the plan was fuzzed against.
	RefEvent *hpc.Event
	// Mechanism names the initial noise mechanism ("" means laplace).
	Mechanism string
	// Epsilon is the per-tick privacy parameter (0 means 1).
	Epsilon float64
	// Sensitivity is the DP sensitivity Δ (0 means 1500).
	Sensitivity float64
	// ClipBound truncates per-tick noise to [0, ClipBound] (0 means 20000).
	ClipBound float64
	// QueueCapacity bounds each tenant's work queue (0 means 64).
	QueueCapacity int
	// MaxItemsPerTick bounds queue items applied per tenant tick
	// (0 means 8).
	MaxItemsPerTick int
	// LoadPerTick makes the daemon itself enqueue this many work items
	// per Protecting tenant per tick — the internal load generator used
	// by soak tests and demos. 0 disables it.
	LoadPerTick int
	// TickBudget is the per-tenant per-tick instruction budget
	// (0 means 2000).
	TickBudget int
	// Parallelism fans the per-tenant tick work across this many
	// goroutines (<= 1 means serial). Journals are byte-identical at any
	// value; only wall-clock changes.
	Parallelism int
	// Seed derives every per-tenant seed (worlds, runners, obfuscators,
	// fault schedules) as a pure function of (Seed, tenant name).
	Seed uint64
	// Faults, when enabled, gives every tenant a fault schedule derived
	// from its own seed, so tenants degrade independently.
	Faults faultinject.Config
	// VMMemoryBytes sizes each tenant VM's guest memory (0 means 64 KiB —
	// daemons hold many VMs, so the sev default of 1 MiB is too fat).
	VMMemoryBytes int
	// JournalCapacity sizes the daemon's own flight ring (0 means
	// flight.DefaultCapacity).
	JournalCapacity int
}

// settings is the live, reloadable subset of Config.
type settings struct {
	mechanism   string
	epsilon     float64
	clipBound   float64
	queueCap    int
	maxItems    int
	loadPerTick int
}

// Settings is the JSON view of the daemon's effective tunables.
type Settings struct {
	Mechanism       string  `json:"mechanism"`
	Epsilon         float64 `json:"epsilon"`
	ClipBound       float64 `json:"clip_bound"`
	QueueCapacity   int     `json:"queue_capacity"`
	MaxItemsPerTick int     `json:"max_items_per_tick"`
	LoadPerTick     int     `json:"load_per_tick"`
}

// Tunables is a live-reloadable config delta (SIGHUP file, POST
// /ctl/v1/reload). Nil fields and the empty mechanism keep the current
// value, so a reload body only names what it changes. Validation is
// atomic: any invalid field rejects the whole delta and the old config
// stays live.
type Tunables struct {
	Mechanism       string   `json:"mechanism,omitempty"`
	Epsilon         *float64 `json:"epsilon,omitempty"`
	ClipBound       *float64 `json:"clip_bound,omitempty"`
	QueueCapacity   *int     `json:"queue_capacity,omitempty"`
	MaxItemsPerTick *int     `json:"max_items_per_tick,omitempty"`
	LoadPerTick     *int     `json:"load_per_tick,omitempty"`
}

// validate checks the delta against the closed mechanism set and the
// positivity constraints; the daemon applies none of it on error.
func (t Tunables) validate() error {
	switch t.Mechanism {
	case "", MechanismLaplace, MechanismDStar, MechanismRandom, MechanismConstant:
	default:
		return fmt.Errorf("%w: unknown mechanism %q", ErrBadTunables, t.Mechanism)
	}
	if t.Epsilon != nil && *t.Epsilon <= 0 {
		return fmt.Errorf("%w: epsilon %v <= 0", ErrBadTunables, *t.Epsilon)
	}
	if t.ClipBound != nil && *t.ClipBound <= 0 {
		return fmt.Errorf("%w: clip_bound %v <= 0", ErrBadTunables, *t.ClipBound)
	}
	if t.QueueCapacity != nil && *t.QueueCapacity < 1 {
		return fmt.Errorf("%w: queue_capacity %d < 1", ErrBadTunables, *t.QueueCapacity)
	}
	if t.MaxItemsPerTick != nil && *t.MaxItemsPerTick < 1 {
		return fmt.Errorf("%w: max_items_per_tick %d < 1", ErrBadTunables, *t.MaxItemsPerTick)
	}
	if t.LoadPerTick != nil && *t.LoadPerTick < 0 {
		return fmt.Errorf("%w: load_per_tick %d < 0", ErrBadTunables, *t.LoadPerTick)
	}
	return nil
}

// State is a tenant's position in the lifecycle machine. Transitions:
// Attaching → Protecting on the first tick after attach; Protecting →
// Draining on a graceful detach (queue drains, no new work accepted);
// Draining → Detached at the first tick barrier with an empty queue. A
// kill-detach jumps straight to Detached, shedding the queue (counted
// and journaled, never silent).
type State uint8

// Tenant lifecycle states.
const (
	StateAttaching State = iota
	StateProtecting
	StateDraining
	StateDetached
)

// String returns the stable wire name of the state.
func (s State) String() string {
	switch s {
	case StateAttaching:
		return "attaching"
	case StateProtecting:
		return "protecting"
	case StateDraining:
		return "draining"
	case StateDetached:
		return "detached"
	default:
		return "unknown"
	}
}

// workItem is one queued unit of work: run the tenant app once under the
// secret picked at enqueue time.
type workItem struct {
	secret int
}

// Tenant is one protected guest: its own 1-core SEV world, the app
// runner, and an obfuscator sharing the runner's vCPU (paper §VII-C).
// All fields are owned by the daemon and guarded by its mutex; runTick
// runs on at most one goroutine per tenant per tick.
type Tenant struct {
	name    string
	id      int
	appName string
	app     workload.App
	secrets []string

	state   State
	world   *sev.World
	vm      *sev.VM
	runner  *workload.Runner
	obf     *obfuscator.Obfuscator
	jobRng  *rng.Source
	planGen int

	// Bounded work queue (ring): queue[qHead..qHead+qLen) mod cap.
	queue []workItem
	qHead int
	qLen  int
	seq   int64 // enqueue sequence, drives secret rotation

	// All-time funnel. Reconciles as enqueued == processed + shed + qLen.
	ticks         int64
	enqueued      int64
	processed     int64
	shed          int64
	degradedTicks int64

	// Per-tick scratch, written by runTick, consumed and reset at the
	// post-tick barrier.
	enqueuedTick   int64
	processedTick  int64
	shedTick       int64
	degradedTick   bool
	degradedReason obfuscator.DegradeReason

	// Pre-created per-tenant instruments so the barrier stays
	// allocation-free.
	mEnq, mProc, mShed *telemetry.Counter
	gDepth             *telemetry.Gauge
}

// AttachSpec describes a tenant to attach.
type AttachSpec struct {
	// Name is the unique tenant identifier.
	Name string `json:"name"`
	// App selects the protected workload: website (default), keystroke
	// or dnn.
	App string `json:"app,omitempty"`
	// Secrets bounds the app's secret alphabet (0 means a small default),
	// keeping per-tenant cost low when protecting hundreds of tenants.
	Secrets int `json:"secrets,omitempty"`
}

// TenantStatus is the JSON view of one tenant.
type TenantStatus struct {
	Name           string                      `json:"name"`
	ID             int                         `json:"id"`
	State          string                      `json:"state"`
	App            string                      `json:"app"`
	PlanGeneration int                         `json:"plan_generation"`
	Ticks          int64                       `json:"ticks"`
	QueueDepth     int                         `json:"queue_depth"`
	QueueCapacity  int                         `json:"queue_capacity"`
	Enqueued       int64                       `json:"enqueued_total"`
	Processed      int64                       `json:"processed_total"`
	Shed           int64                       `json:"shed_total"`
	DegradedTicks  int64                       `json:"degraded_ticks_total"`
	Protection     obfuscator.ProtectionReport `json:"protection"`
}

// Status is the JSON view of the whole daemon.
type Status struct {
	Tick                int64    `json:"tick"`
	Tenants             int      `json:"tenants"`
	Attached            int64    `json:"attached_total"`
	Detached            int64    `json:"detached_total"`
	Enqueued            int64    `json:"enqueued_total"`
	Processed           int64    `json:"processed_total"`
	Shed                int64    `json:"shed_total"`
	DegradedTenantTicks int64    `json:"degraded_tenant_ticks_total"`
	Reloads             int64    `json:"reloads_total"`
	ReloadRejects       int64    `json:"reload_rejects_total"`
	Overloaded          bool     `json:"overloaded"`
	PendingReload       bool     `json:"pending_reload"`
	Settings            Settings `json:"settings"`
	JournalRecords      uint64   `json:"journal_records"`
	JournalIncidents    uint64   `json:"journal_incidents"`
}

// Daemon is the multi-tenant protection service. All exported methods are
// safe for concurrent use; control-path calls serialize against Step at
// tick boundaries, which is what keeps the journal deterministic.
type Daemon struct {
	cfg Config

	mu      sync.Mutex
	set     settings
	pending *Tunables
	tenants map[string]*Tenant
	order   []*Tenant // live tenants in attach order; Step iterates this
	nextID  int
	tick    int64

	attached            int64
	detached            int64
	enqueuedTotal       int64
	processedTotal      int64
	shedTotal           int64
	degradedTenantTicks int64
	reloads             int64
	reloadRejects       int64
	overloaded          bool

	journal *flight.Recorder
	fDaemon *flight.Handle
	gate    *ops.Gate
}

// New builds a daemon around a shared protection plan.
func New(cfg Config) (*Daemon, error) {
	if len(cfg.Segment) == 0 {
		return nil, obfuscator.ErrNoSegment
	}
	if cfg.RefEvent == nil {
		return nil, obfuscator.ErrNoRefEvent
	}
	if cfg.Mechanism == "" {
		cfg.Mechanism = MechanismLaplace
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = 1
	}
	if cfg.Sensitivity <= 0 {
		cfg.Sensitivity = 1500
	}
	if cfg.ClipBound <= 0 {
		cfg.ClipBound = 20000
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 64
	}
	if cfg.MaxItemsPerTick <= 0 {
		cfg.MaxItemsPerTick = 8
	}
	if cfg.TickBudget <= 0 {
		cfg.TickBudget = 2000
	}
	if cfg.VMMemoryBytes <= 0 {
		cfg.VMMemoryBytes = 64 << 10
	}
	if cfg.JournalCapacity <= 0 {
		cfg.JournalCapacity = flight.DefaultCapacity
	}
	if err := (Tunables{Mechanism: cfg.Mechanism}).validate(); err != nil {
		return nil, err
	}
	journal := flight.NewRecorder(cfg.JournalCapacity)
	d := &Daemon{
		cfg: cfg,
		set: settings{
			mechanism:   cfg.Mechanism,
			epsilon:     cfg.Epsilon,
			clipBound:   cfg.ClipBound,
			queueCap:    cfg.QueueCapacity,
			maxItems:    cfg.MaxItemsPerTick,
			loadPerTick: cfg.LoadPerTick,
		},
		tenants: make(map[string]*Tenant),
		journal: journal,
		fDaemon: journal.Handle(flight.KindDaemon),
		gate:    ops.NewGate("daemon"),
	}
	d.gate.Open()
	return d, nil
}

// Journal returns the daemon's own flight recorder: lifecycle events,
// shed/degradation incidents and per-tick summaries, byte-identical
// across same-seed replays at any parallelism. Wire it as the ops
// server's Recorder so /flight serves the deterministic journal.
func (d *Daemon) Journal() *flight.Recorder { return d.journal }

// ReadyProbe returns the readiness gate: open in steady state, closed
// while any tenant queue is saturated (load is being shed), reopened
// when the backlog drains.
func (d *Daemon) ReadyProbe() ops.Probe { return d.gate.Probe() }

// HealthProbe reports the daemon's liveness detail: degraded while
// overloaded, ok otherwise.
func (d *Daemon) HealthProbe() ops.Probe {
	return ops.Probe{Name: "daemon", Check: func() ops.ProbeResult {
		d.mu.Lock()
		tick, tenants, over := d.tick, len(d.order), d.overloaded
		d.mu.Unlock()
		detail := fmt.Sprintf("tick %d, %d tenants", tick, tenants)
		if over {
			return ops.Degraded(detail + ", shedding load")
		}
		return ops.OK(detail)
	}}
}

// Tick returns the current daemon tick.
func (d *Daemon) Tick() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tick
}

// buildApp constructs the workload for an attach spec with a bounded
// secret alphabet.
func buildApp(name string, secrets int) (workload.App, error) {
	if secrets <= 0 {
		secrets = 4
	}
	switch name {
	case "", "website":
		sites := workload.Websites()
		if secrets < len(sites) {
			sites = sites[:secrets]
		}
		return &workload.WebsiteApp{Sites: sites}, nil
	case "keystroke":
		if secrets > 10 {
			secrets = 10
		}
		return &workload.KeystrokeApp{MaxKeys: secrets}, nil
	case "dnn":
		return &workload.DNNApp{}, nil
	default:
		return nil, fmt.Errorf("%w: unknown app %q", ErrBadAttach, name)
	}
}

// buildMechanism constructs a named mechanism with a generation-derived
// noise stream, so replans re-seed deterministically.
func (d *Daemon) buildMechanism(t *Tenant, set settings) (obfuscator.Mechanism, error) {
	r := rng.NewStream(d.cfg.Seed, "daemon", t.name, "mech").SplitN("gen", t.planGen)
	switch set.mechanism {
	case MechanismLaplace:
		return obfuscator.NewLaplaceMechanism(set.epsilon, d.cfg.Sensitivity, r)
	case MechanismDStar:
		return obfuscator.NewDStarMechanism(set.epsilon, d.cfg.Sensitivity, r)
	case MechanismRandom:
		return obfuscator.NewRandomNoiseMechanism(set.clipBound, r)
	case MechanismConstant:
		return obfuscator.NewConstantOutputMechanism(set.clipBound)
	default:
		return nil, fmt.Errorf("%w: unknown mechanism %q", ErrBadTunables, set.mechanism)
	}
}

// tenantFaults derives the tenant's own fault schedule: same rates as the
// daemon config, tenant-specific seed, so tenants degrade independently.
func (d *Daemon) tenantFaults(name string) faultinject.Config {
	fcfg := d.cfg.Faults
	if fcfg.Enabled() {
		fcfg.Seed = rng.NewStream(d.cfg.Seed, "daemon", name, "faults").Uint64()
	}
	return fcfg
}

// buildObfuscator constructs tenant t's obfuscator for the given settings
// at the current plan generation.
func (d *Daemon) buildObfuscator(t *Tenant, set settings) (*obfuscator.Obfuscator, error) {
	mech, err := d.buildMechanism(t, set)
	if err != nil {
		return nil, err
	}
	return obfuscator.New(obfuscator.Config{
		Mechanism: mech,
		Segment:   d.cfg.Segment,
		RefEvent:  d.cfg.RefEvent,
		ClipBound: set.clipBound,
		Seed:      rng.NewStream(d.cfg.Seed, "daemon", t.name, "plan").SplitN("gen", t.planGen).Uint64(),
		Faults:    d.tenantFaults(t.name),
	})
}

// Attach launches a tenant: a fresh 1-core SEV world, the app runner and
// an obfuscator co-scheduled on the same vCPU. The tenant starts
// Attaching and is promoted to Protecting at its first tick barrier.
func (d *Daemon) Attach(spec AttachSpec) error {
	if spec.Name == "" {
		return fmt.Errorf("%w: empty tenant name", ErrBadAttach)
	}
	app, err := buildApp(spec.App, spec.Secrets)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.tenants[spec.Name]; ok {
		return fmt.Errorf("%w: %q", ErrTenantExists, spec.Name)
	}
	seeds := rng.NewStream(d.cfg.Seed, "daemon", spec.Name)
	world := sev.NewWorld(sev.Config{
		Processor:     "AMD EPYC 7252",
		PhysicalCores: 1,
		Core:          microarch.DefaultCoreConfig(),
		TickBudget:    d.cfg.TickBudget,
		Seed:          seeds.Uint64(),
	})
	fcfg := d.tenantFaults(spec.Name)
	if fcfg.Enabled() {
		world.SetFaults(faultinject.New(fcfg))
	}
	vm, err := world.LaunchVM(sev.VMConfig{VCPUs: 1, SEV: true, MemoryBytes: d.cfg.VMMemoryBytes})
	if err != nil {
		return fmt.Errorf("daemon: attach %q: %w", spec.Name, err)
	}
	runner := workload.NewRunner(spec.Name+"-app", workload.DefaultLibrary(seeds.Uint64()), seeds.Split("runner"))
	if err := vm.AddProcess(0, runner); err != nil {
		return fmt.Errorf("daemon: attach %q: %w", spec.Name, err)
	}
	t := &Tenant{
		name:    spec.Name,
		id:      d.nextID,
		appName: app.Name(),
		app:     app,
		secrets: app.Secrets(),
		state:   StateAttaching,
		world:   world,
		vm:      vm,
		runner:  runner,
		jobRng:  seeds.Split("jobs"),
		queue:   make([]workItem, d.set.queueCap),
		mEnq:    telemetry.C("daemon_events_enqueued_total", telemetry.L("tenant", spec.Name)),
		mProc:   telemetry.C("daemon_events_processed_total", telemetry.L("tenant", spec.Name)),
		mShed:   telemetry.C("daemon_events_shed_total", telemetry.L("tenant", spec.Name)),
		gDepth:  telemetry.G("daemon_queue_depth", telemetry.L("tenant", spec.Name)),
	}
	obf, err := d.buildObfuscator(t, d.set)
	if err != nil {
		return fmt.Errorf("daemon: attach %q: %w", spec.Name, err)
	}
	t.obf = obf
	if err := vm.AddProcess(0, obf); err != nil {
		return fmt.Errorf("daemon: attach %q: %w", spec.Name, err)
	}
	d.nextID++
	d.tenants[t.name] = t
	d.order = append(d.order, t)
	d.attached++
	mAttaches.Inc()
	gTenants.Set(float64(len(d.order)))
	d.fDaemon.Record(d.tick, flight.CodeTenantAttach, flight.CodeNone, float64(t.id), 0, 0)
	return nil
}

// Detach removes a tenant. Graceful (kill=false) marks it Draining: the
// queue keeps draining under protection, no new work is accepted, and
// teardown happens at the first tick barrier with an empty queue. Kill
// tears down immediately, shedding whatever is still queued — counted
// and journaled as an incident.
func (d *Daemon) Detach(name string, kill bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	t, ok := d.tenants[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoTenant, name)
	}
	if !kill {
		if t.state != StateDraining {
			t.state = StateDraining
			d.fDaemon.Record(d.tick, flight.CodeTenantDrain, flight.CodeNone,
				float64(t.id), float64(t.qLen), 0)
		}
		return nil
	}
	if t.qLen > 0 {
		t.shed += int64(t.qLen)
		d.shedTotal += int64(t.qLen)
		t.mShed.Add(float64(t.qLen))
		d.fDaemon.Incident(d.tick, flight.CodeTenantShed, flight.CodeNone,
			float64(t.id), float64(t.qLen), 0)
		t.qLen = 0
	}
	d.removeLocked(t)
	return nil
}

// removeLocked tears a tenant down and compacts it out of the live set.
//
//aegis:serialized
func (d *Daemon) removeLocked(t *Tenant) {
	_ = t.world.DestroyVM(t.vm.ID())
	t.state = StateDetached
	t.gDepth.Set(0)
	delete(d.tenants, t.name)
	for i, o := range d.order {
		if o == t {
			d.order = append(d.order[:i:i], d.order[i+1:]...)
			break
		}
	}
	d.detached++
	mDetaches.Inc()
	gTenants.Set(float64(len(d.order)))
	d.fDaemon.Record(d.tick, flight.CodeTenantDetach, flight.CodeNone,
		float64(t.id), float64(t.ticks), 0)
}

// Submit enqueues jobs for a tenant, returning how many were accepted;
// the rest were shed against the bounded queue (counted, journaled, and
// reflected in the readiness gate). Only Attaching/Protecting tenants
// accept work.
func (d *Daemon) Submit(name string, jobs int) (accepted int, err error) {
	if jobs < 0 {
		jobs = 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	t, ok := d.tenants[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoTenant, name)
	}
	if t.state == StateDraining {
		return 0, fmt.Errorf("%w: %q is draining", ErrNotAccepting, name)
	}
	shed := 0
	for i := 0; i < jobs; i++ {
		if !t.push() {
			shed++
		}
	}
	accepted = jobs - shed
	if accepted > 0 {
		t.enqueued += int64(accepted)
		d.enqueuedTotal += int64(accepted)
		t.mEnq.Add(float64(accepted))
	}
	if shed > 0 {
		t.shed += int64(shed)
		d.shedTotal += int64(shed)
		t.mShed.Add(float64(shed))
		d.fDaemon.Incident(d.tick, flight.CodeTenantShed, flight.CodeNone,
			float64(t.id), float64(shed), 0)
		d.setOverloadedLocked(true)
	}
	t.gDepth.Set(float64(t.qLen))
	return accepted, nil
}

// push appends one work item to the tenant ring, reporting false when the
// queue is full (the caller sheds).
func (t *Tenant) push() bool {
	if t.qLen == len(t.queue) {
		return false
	}
	idx := t.qHead + t.qLen
	if idx >= len(t.queue) {
		idx -= len(t.queue)
	}
	t.queue[idx] = workItem{secret: int(t.seq % int64(len(t.secrets)))}
	t.seq++
	t.qLen++
	return true
}

// pop removes the oldest work item; call only with qLen > 0.
func (t *Tenant) pop() workItem {
	it := t.queue[t.qHead]
	t.qHead++
	if t.qHead == len(t.queue) {
		t.qHead = 0
	}
	t.qLen--
	return it
}

// Reload validates a tunables delta and stages it; the delta is applied
// at the start of the next Step, so no in-flight tick is dropped or
// half-configured. Invalid deltas are rejected atomically: nothing is
// staged and the old config stays live.
func (d *Daemon) Reload(tun Tunables) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := tun.validate(); err != nil {
		d.reloadRejects++
		mReloadRejects.Inc()
		d.fDaemon.Incident(d.tick, flight.CodeDaemonReloadReject, flight.CodeNone, 0, 0, 0)
		return err
	}
	d.pending = &tun
	d.reloads++
	mReloads.Inc()
	d.fDaemon.Record(d.tick, flight.CodeDaemonReload, flight.CodeNone, 0, 0, 0)
	return nil
}

// applyReloadLocked folds the staged delta into the live settings and
// re-plans tenants where the protection parameters changed. Runs at the
// top of Step, before any tenant ticks.
//
//aegis:serialized
func (d *Daemon) applyReloadLocked() {
	tun := d.pending
	if tun == nil {
		return
	}
	d.pending = nil
	next := d.set
	if tun.Mechanism != "" {
		next.mechanism = tun.Mechanism
	}
	if tun.Epsilon != nil {
		next.epsilon = *tun.Epsilon
	}
	if tun.ClipBound != nil {
		next.clipBound = *tun.ClipBound
	}
	if tun.QueueCapacity != nil {
		next.queueCap = *tun.QueueCapacity
	}
	if tun.MaxItemsPerTick != nil {
		next.maxItems = *tun.MaxItemsPerTick
	}
	if tun.LoadPerTick != nil {
		next.loadPerTick = *tun.LoadPerTick
	}
	replan := next.mechanism != d.set.mechanism ||
		next.epsilon != d.set.epsilon || next.clipBound != d.set.clipBound
	resize := next.queueCap != d.set.queueCap
	d.set = next
	if !replan && !resize {
		return
	}
	for _, t := range d.order {
		if resize {
			d.resizeQueueLocked(t, next.queueCap)
		}
		if !replan {
			continue
		}
		t.planGen++
		obf, err := d.buildObfuscator(t, next)
		if err != nil {
			// Post-validation this cannot fail (the segment calibrated at
			// attach); if it somehow does, keep the old plan and say so.
			d.reloadRejects++
			mReloadRejects.Inc()
			d.fDaemon.Incident(d.tick, flight.CodeDaemonReloadReject, flight.CodeNone,
				float64(t.id), 0, 0)
			continue
		}
		if err := t.vm.RemoveProcess(0, t.obf.Name()); err == nil {
			t.obf = obf
			_ = t.vm.AddProcess(0, obf)
		}
		d.fDaemon.Record(d.tick, flight.CodeTenantReplan, flight.CodeNone,
			float64(t.id), float64(t.planGen), 0)
	}
}

// resizeQueueLocked swaps a tenant onto a new ring capacity, shedding the
// overflow oldest-last (the items that no longer fit).
func (d *Daemon) resizeQueueLocked(t *Tenant, capacity int) {
	next := make([]workItem, capacity)
	keep := t.qLen
	if keep > capacity {
		keep = capacity
	}
	for i := 0; i < keep; i++ {
		idx := t.qHead + i
		if idx >= len(t.queue) {
			idx -= len(t.queue)
		}
		next[i] = t.queue[idx]
	}
	overflow := t.qLen - keep
	t.queue = next
	t.qHead = 0
	t.qLen = keep
	if overflow > 0 {
		// Journaled at this tick's barrier along with any tick-time sheds.
		t.shedTick += int64(overflow)
	}
	t.gDepth.Set(float64(t.qLen))
}

// setOverloadedLocked flips the overload latch, the readiness gate and
// the gauge together.
func (d *Daemon) setOverloadedLocked(over bool) {
	if over == d.overloaded {
		return
	}
	d.overloaded = over
	if over {
		d.gate.Close()
		gOverloaded.Set(1)
	} else {
		d.gate.Open()
		gOverloaded.Set(0)
	}
}

// Step advances every tenant by one tick: apply any staged reload, fan
// the per-tenant tick work across Parallelism goroutines, then run the
// serialized barrier that journals outcomes in attach order. The daemon
// never steps itself — the caller owns the clock (cmd/aegisd ticks on
// wall time, tests and the scenario harness step explicitly), which is
// what keeps every scenario seed-replayable.
func (d *Daemon) Step() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.applyReloadLocked()
	d.tick++
	par := d.cfg.Parallelism
	if par > len(d.order) {
		par = len(d.order)
	}
	if par > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(par)
		for w := 0; w < par; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(d.order) {
						return
					}
					d.runTick(d.order[i])
				}
			}()
		}
		wg.Wait()
	} else {
		for _, t := range d.order {
			d.runTick(t)
		}
	}
	d.finishTickLocked()
}

// runTick advances one tenant by one tick: generate internal load, drain
// up to maxItems queued jobs into the guest runner, step the tenant's
// world (runner + obfuscator share the vCPU budget), and fold the
// obfuscator's outcome into the per-tick scratch. May run concurrently
// across tenants; it touches only tenant-owned state and never the
// daemon journal — all journaling happens at the serialized barrier.
//
// The steady-state path is allocation-free: gated dynamically by TestZeroAllocDaemonTick
// (alloc_gate_test.go, `make bench-alloc`) and statically by the
// aegis-lint hotpath rule, which bans allocating constructs in any
// function carrying this annotation.
//
//aegis:hotpath
func (d *Daemon) runTick(t *Tenant) {
	if t.state == StateAttaching || t.state == StateProtecting {
		for i := 0; i < d.set.loadPerTick; i++ {
			if t.push() {
				t.enqueuedTick++
			} else {
				t.shedTick++
			}
		}
	}
	for n := 0; n < d.set.maxItems && t.qLen > 0; n++ {
		it := t.pop()
		//aegis:allow(hotpathdeep) applyItem synthesizes guest jobs — modeled tenant work, not daemon bookkeeping; the zero-alloc tick contract covers the protection loop and is gated dynamically by TestZeroAllocDaemonTick
		if t.applyItem(it) {
			t.processedTick++
		} else {
			t.shedTick++
		}
	}
	t.world.Step()
	info := t.obf.LastTick()
	// LastTick is only fresh when the obfuscator ran this world tick; a
	// saturated runner can eat the whole vCPU budget before the
	// obfuscator's turn, and a stale outcome must not be re-counted.
	if info.Tick == t.world.Tick() && info.Outcome == obfuscator.TickDegraded {
		t.degradedTick = true
		t.degradedReason = info.DegradedReason
	}
	t.ticks++
}

// applyItem turns a queued work item into a guest job, reporting false
// when the job could not be built (counted as shed — never silent).
func (t *Tenant) applyItem(it workItem) bool {
	job, err := t.app.Job(t.secrets[it.secret], t.jobRng)
	if err != nil {
		return false
	}
	t.runner.Enqueue(job)
	return true
}

// finishTickLocked is the post-tick barrier: iterate tenants in attach
// order, fold per-tick scratch into the funnels, journal shed and
// degradation incidents plus the per-tick daemon summary, promote
// Attaching tenants, complete drains, and recompute the overload latch.
// Serialized under the daemon mutex, so the journal is deterministic.
//
// The steady-state path is allocation-free: gated dynamically by TestZeroAllocDaemonTick
// (alloc_gate_test.go, `make bench-alloc`) and statically by the
// aegis-lint hotpath rule, which bans allocating constructs in any
// function carrying this annotation.
//
// The journal writes below are legal because this function only runs in
// the daemon's serialized section; the aegis-lint lockjournal rule
// enforces that via the annotation.
//
//aegis:serialized
//aegis:hotpath
func (d *Daemon) finishTickLocked() {
	var procTick, shedTick int64
	anyFull := false
	drained := 0
	for _, t := range d.order {
		if t.state == StateAttaching {
			t.state = StateProtecting
		}
		mTenantTicks.Inc()
		if t.enqueuedTick > 0 {
			t.enqueued += t.enqueuedTick
			d.enqueuedTotal += t.enqueuedTick
			t.mEnq.Add(float64(t.enqueuedTick))
		}
		if t.processedTick > 0 {
			t.processed += t.processedTick
			d.processedTotal += t.processedTick
			procTick += t.processedTick
			t.mProc.Add(float64(t.processedTick))
		}
		if t.shedTick > 0 {
			t.shed += t.shedTick
			d.shedTotal += t.shedTick
			shedTick += t.shedTick
			t.mShed.Add(float64(t.shedTick))
			d.fDaemon.Incident(d.tick, flight.CodeTenantShed, flight.CodeNone,
				float64(t.id), float64(t.shedTick), 0)
		}
		if t.degradedTick {
			t.degradedTicks++
			d.degradedTenantTicks++
			mDegradedTenantTicks.Inc()
			d.fDaemon.Incident(d.tick, flight.CodeTenantDegraded, t.degradedReason.FlightCode(),
				float64(t.id), 1, 0)
		}
		t.gDepth.Set(float64(t.qLen))
		if t.qLen == len(t.queue) {
			anyFull = true
		}
		if t.state == StateDraining && t.qLen == 0 {
			drained++
		}
		t.enqueuedTick, t.processedTick, t.shedTick = 0, 0, 0
		t.degradedTick = false
		t.degradedReason = ""
	}
	// Complete finished drains after the stats pass: removal splices
	// d.order, so it cannot run inside the range above.
	for drained > 0 {
		drained = 0
		for _, t := range d.order {
			if t.state == StateDraining && t.qLen == 0 {
				//aegis:allow(hotpathdeep) tenant teardown runs only when a drain completes — a rare administrative branch of the barrier, not steady-state work
				d.removeLocked(t)
				drained++
				break
			}
		}
	}
	d.setOverloadedLocked(anyFull)
	mTicks.Inc()
	d.fDaemon.Record(d.tick, flight.CodeDaemonSummary, flight.CodeNone,
		float64(len(d.order)), float64(procTick), float64(shedTick))
}

// Run advances the daemon by n ticks.
func (d *Daemon) Run(n int) {
	for i := 0; i < n; i++ {
		d.Step()
	}
}

// TenantStatus returns one tenant's status.
func (d *Daemon) TenantStatus(name string) (TenantStatus, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t, ok := d.tenants[name]
	if !ok {
		return TenantStatus{}, fmt.Errorf("%w: %q", ErrNoTenant, name)
	}
	return d.tenantStatusLocked(t), nil
}

func (d *Daemon) tenantStatusLocked(t *Tenant) TenantStatus {
	return TenantStatus{
		Name:           t.name,
		ID:             t.id,
		State:          t.state.String(),
		App:            t.appName,
		PlanGeneration: t.planGen,
		Ticks:          t.ticks,
		QueueDepth:     t.qLen,
		QueueCapacity:  len(t.queue),
		Enqueued:       t.enqueued,
		Processed:      t.processed,
		Shed:           t.shed,
		DegradedTicks:  t.degradedTicks,
		Protection:     t.obf.Report(),
	}
}

// Statuses returns every live tenant's status in attach order.
func (d *Daemon) Statuses() []TenantStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]TenantStatus, 0, len(d.order))
	for _, t := range d.order {
		out = append(out, d.tenantStatusLocked(t))
	}
	return out
}

// Status returns the daemon-level status.
func (d *Daemon) Status() Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Status{
		Tick:                d.tick,
		Tenants:             len(d.order),
		Attached:            d.attached,
		Detached:            d.detached,
		Enqueued:            d.enqueuedTotal,
		Processed:           d.processedTotal,
		Shed:                d.shedTotal,
		DegradedTenantTicks: d.degradedTenantTicks,
		Reloads:             d.reloads,
		ReloadRejects:       d.reloadRejects,
		Overloaded:          d.overloaded,
		PendingReload:       d.pending != nil,
		Settings: Settings{
			Mechanism:       d.set.mechanism,
			Epsilon:         d.set.epsilon,
			ClipBound:       d.set.clipBound,
			QueueCapacity:   d.set.queueCap,
			MaxItemsPerTick: d.set.maxItems,
			LoadPerTick:     d.set.loadPerTick,
		},
		JournalRecords:   d.journal.Total(),
		JournalIncidents: d.journal.Incidents(),
	}
}
