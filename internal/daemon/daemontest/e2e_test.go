package daemontest

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"github.com/repro/aegis/internal/daemon"
	"github.com/repro/aegis/internal/telemetry/flight"
)

// mixedScenario scripts every daemon feature in one run: base tenants,
// mid-run attach, graceful detach, a kill with queued work, a valid and
// an invalid reload, and submit bursts that overflow the queues.
func mixedScenario(seed uint64) Scenario {
	eps := 2.0
	bad := -1.0
	return Scenario{
		Seed:            seed,
		Ticks:           40,
		Tenants:         8,
		Secrets:         3,
		LoadPerTick:     2,
		QueueCapacity:   8,
		MaxItemsPerTick: 3,
		Ops: []Op{
			{AtTick: 5, Kind: OpSubmit, Tenant: BaseTenantName(0), Jobs: 12},
			{AtTick: 8, Kind: OpAttach, Tenant: "late", App: "keystroke", Secrets: 5},
			{AtTick: 10, Kind: OpSubmit, Tenant: BaseTenantName(3), Jobs: 20},
			{AtTick: 12, Kind: OpReload, Reload: daemon.Tunables{Mechanism: daemon.MechanismDStar, Epsilon: &eps}},
			{AtTick: 13, Kind: OpReload, Reload: daemon.Tunables{Epsilon: &bad}},
			{AtTick: 15, Kind: OpKill, Tenant: BaseTenantName(1)},
			{AtTick: 20, Kind: OpDetach, Tenant: BaseTenantName(2)},
			{AtTick: 30, Kind: OpSubmit, Tenant: "late", Jobs: 9},
		},
	}
}

// checkFunnels asserts every tenant's funnel reconciles
// (enqueued == processed + queue depth, with sheds accounted separately
// against offered work) and that the protection report's own tick funnel
// reconciles too.
func checkFunnels(t *testing.T, res *Result) {
	t.Helper()
	for name, st := range res.Final {
		if st.Enqueued != st.Processed+int64(st.QueueDepth) {
			t.Errorf("tenant %s funnel: enqueued=%d processed=%d depth=%d",
				name, st.Enqueued, st.Processed, st.QueueDepth)
		}
		p := st.Protection
		if p.Ticks != p.InjectedTicks+p.ZeroDrawTicks+p.NoInjectionTicks+p.DegradedTicks {
			t.Errorf("tenant %s protection funnel: %+v", name, p)
		}
	}
}

// TestScenarioReplayByteIdentical is the determinism tentpole: the same
// scenario replayed at parallelism 1, 4 and GOMAXPROCS produces a
// byte-identical daemon flight journal.
func TestScenarioReplayByteIdentical(t *testing.T) {
	sc := mixedScenario(42)
	base, err := Run(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if base.Status.Tick != sc.Ticks {
		t.Fatalf("ran %d ticks, want %d", base.Status.Tick, sc.Ticks)
	}
	if len(base.Journal) == 0 || base.Status.JournalRecords == 0 {
		t.Fatal("scenario produced an empty journal")
	}
	checkFunnels(t, base)
	for _, par := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		res, err := Run(sc, par)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if res.Journal != base.Journal {
			t.Errorf("journal at parallelism %d differs from serial run (%d vs %d bytes)",
				par, len(res.Journal), len(base.Journal))
		}
		if res.Status != base.Status {
			t.Errorf("status at parallelism %d differs: %+v vs %+v", par, res.Status, base.Status)
		}
	}
}

// TestScenarioHundredTenants drives the ISSUE's scale target: 120
// concurrent tenants stepping in parallel, byte-identical with the serial
// run, every funnel reconciled.
func TestScenarioHundredTenants(t *testing.T) {
	sc := Scenario{
		Seed:            7,
		Ticks:           25,
		Tenants:         120,
		Secrets:         2,
		LoadPerTick:     1,
		QueueCapacity:   4,
		MaxItemsPerTick: 2,
		TickBudget:      300,
	}
	par, err := Run(sc, runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatal(err)
	}
	if par.Status.Tenants != 120 || len(par.Live) != 120 {
		t.Fatalf("live tenants = %d, want 120", par.Status.Tenants)
	}
	for _, st := range par.Live {
		if st.State != "protecting" {
			t.Fatalf("tenant %s state = %s, want protecting", st.Name, st.State)
		}
		if st.Ticks != sc.Ticks {
			t.Fatalf("tenant %s ran %d ticks, want %d", st.Name, st.Ticks, sc.Ticks)
		}
	}
	checkFunnels(t, par)
	serial, err := Run(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if par.Journal != serial.Journal {
		t.Fatal("120-tenant journal differs between parallel and serial replay")
	}
	if par.Status != serial.Status {
		t.Fatalf("120-tenant status differs: %+v vs %+v", par.Status, serial.Status)
	}
}

// TestScenarioJournalContents asserts the journal narrates the scripted
// lifecycle: attach/detach/replan/reject records where the script put
// them, and one summary per tick.
func TestScenarioJournalContents(t *testing.T) {
	res, err := Run(mixedScenario(42), 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[flight.Code]int{}
	summaries := 0
	var lastSummaryTick int64
	for _, rec := range res.Records {
		counts[rec.Code]++
		if rec.Code == flight.CodeDaemonSummary {
			summaries++
			if rec.Tick <= lastSummaryTick {
				t.Fatalf("summaries out of order: tick %d after %d", rec.Tick, lastSummaryTick)
			}
			lastSummaryTick = rec.Tick
		}
	}
	if summaries != 40 {
		t.Errorf("journal has %d tick summaries, want 40", summaries)
	}
	if got := counts[flight.CodeTenantAttach]; got != 9 { // 8 base + "late"
		t.Errorf("attach records = %d, want 9", got)
	}
	if got := counts[flight.CodeTenantDetach]; got != 2 { // kill t001 + drained t002
		t.Errorf("detach records = %d, want 2", got)
	}
	if got := counts[flight.CodeTenantDrain]; got != 1 {
		t.Errorf("drain records = %d, want 1", got)
	}
	if got := counts[flight.CodeDaemonReload]; got != 1 {
		t.Errorf("reload records = %d, want 1", got)
	}
	if got := counts[flight.CodeDaemonReloadReject]; got != 1 {
		t.Errorf("reload-reject incidents = %d, want 1", got)
	}
	// The mechanism reload re-planned all 9 live-at-the-time tenants.
	if got := counts[flight.CodeTenantReplan]; got != 9 {
		t.Errorf("replan records = %d, want 9", got)
	}
	// The 12-job burst into t000 (queue 8, some already queued by the load
	// generator) must have shed, and the queue overflow sheds must appear.
	if counts[flight.CodeTenantShed] == 0 {
		t.Error("no shed incidents despite overflowing submits")
	}
	for name, st := range res.Final {
		if st.PlanGeneration != 1 {
			t.Errorf("tenant %s plan generation = %d after reload, want 1", name, st.PlanGeneration)
		}
	}
}

// TestShedsNeverSilent cross-checks the journal against every tenant's
// funnel: the per-tenant shed total equals the sum of its journaled shed
// incidents, so no shed can hide from an operator tailing /flight.
func TestShedsNeverSilent(t *testing.T) {
	res, err := Run(mixedScenario(99), 4)
	if err != nil {
		t.Fatal(err)
	}
	shedByID := map[int]int64{}
	for _, rec := range res.Records {
		if rec.Code == flight.CodeTenantShed {
			if !rec.Incident {
				t.Fatalf("shed record at tick %d is not flagged as an incident", rec.Tick)
			}
			shedByID[int(rec.A)] += int64(rec.B)
		}
	}
	var funnelTotal int64
	for name, st := range res.Final {
		if got := shedByID[st.ID]; got != st.Shed {
			t.Errorf("tenant %s: journal sheds %d != funnel sheds %d", name, got, st.Shed)
		}
		funnelTotal += st.Shed
	}
	if funnelTotal != res.Status.Shed {
		t.Errorf("per-tenant sheds sum to %d, daemon total is %d", funnelTotal, res.Status.Shed)
	}
}

// TestFaultSoakDegradationNeverSilent is the fault-injected soak: heavy
// fault rates over tenants under load, asserting every degraded tenant
// tick is journaled as an incident attributed to the right tenant — no
// tenant's degradation is silent.
func TestFaultSoakDegradationNeverSilent(t *testing.T) {
	sc := Scenario{
		Seed:            1234,
		Ticks:           60,
		Tenants:         12,
		Secrets:         2,
		LoadPerTick:     3,
		QueueCapacity:   6,
		MaxItemsPerTick: 2,
		Faults:          "heavy",
	}
	res, err := Run(sc, runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatal(err)
	}
	degradedByID := map[int]int64{}
	for _, rec := range res.Records {
		if rec.Code == flight.CodeTenantDegraded {
			if !rec.Incident {
				t.Fatal("degradation record not flagged as an incident")
			}
			if rec.Sub == flight.CodeNone {
				t.Fatal("degradation incident carries no reason subcode")
			}
			degradedByID[int(rec.A)]++
		}
	}
	var total int64
	anyDegraded := false
	for name, st := range res.Final {
		if got := degradedByID[st.ID]; got != st.DegradedTicks {
			t.Errorf("tenant %s: journal degradations %d != funnel %d", name, got, st.DegradedTicks)
		}
		if st.DegradedTicks > 0 {
			anyDegraded = true
		}
		if st.Protection.DegradedTicks != st.DegradedTicks {
			t.Errorf("tenant %s: protection report degraded=%d, daemon counted %d",
				name, st.Protection.DegradedTicks, st.DegradedTicks)
		}
		total += st.DegradedTicks
	}
	if !anyDegraded {
		t.Fatal("heavy fault preset degraded nothing in 60 ticks — soak is vacuous")
	}
	if total != res.Status.DegradedTenantTicks {
		t.Errorf("degraded tenant ticks: tenants sum %d, daemon %d", total, res.Status.DegradedTenantTicks)
	}
	checkFunnels(t, res)
	// Determinism holds under faults too: the schedule is seed-derived.
	again, err := Run(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if again.Journal != res.Journal {
		t.Fatal("fault-soak journal not replayable")
	}
}

// TestDaemonConcurrentLifecycle hammers one daemon from many goroutines —
// a stepper plus attach/detach/submit/reload/status writers — and relies
// on the race detector (make race) to catch locking bugs. Afterwards the
// daemon must still reconcile.
func TestDaemonConcurrentLifecycle(t *testing.T) {
	cfg := BaseConfig(555)
	cfg.QueueCapacity = 4
	cfg.Parallelism = 4
	d, err := daemon.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	wg.Add(workers + 1)
	go func() { // the tick loop
		defer wg.Done()
		d.Run(60)
	}()
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("c%02d", w)
			for i := 0; i < 20; i++ {
				switch i % 5 {
				case 0:
					_ = d.Attach(daemon.AttachSpec{Name: name, App: "website"})
				case 1:
					_, _ = d.Submit(name, 3)
				case 2:
					_, _ = d.TenantStatus(name)
					_ = d.Status()
					_ = d.Statuses()
				case 3:
					eps := 1 + float64(w)
					_ = d.Reload(daemon.Tunables{Epsilon: &eps})
				case 4:
					_ = d.Detach(name, w%2 == 0)
				}
			}
		}(w)
	}
	wg.Wait()
	// Drain whatever survived and check the books still balance.
	d.Run(4)
	st := d.Status()
	if st.Tick != 64 {
		t.Fatalf("tick = %d, want 64", st.Tick)
	}
	var tenantTotal int64
	for _, ts := range d.Statuses() {
		tenantTotal += ts.Enqueued - ts.Processed - int64(ts.QueueDepth)
	}
	if tenantTotal != 0 {
		t.Fatalf("live tenant funnels do not reconcile (off by %d)", tenantTotal)
	}
	if st.Enqueued < st.Processed {
		t.Fatalf("daemon funnel inverted: %+v", st)
	}
	if st.Attached < int64(st.Tenants) {
		t.Fatalf("attach ledger: attached=%d live=%d", st.Attached, st.Tenants)
	}
}
