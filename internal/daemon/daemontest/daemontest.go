// Package daemontest is the deterministic end-to-end harness for the
// aegisd daemon: scripted scenarios (attach N tenants, step K ticks,
// kill / reload / detach / submit at fixed ticks) executed against a real
// Daemon built around a synthetic gadget plan, returning the daemon's
// byte-exact flight journal plus every funnel the assertions need.
//
// Because the daemon's clock is the injected Step call and every seed is
// derived from (Scenario.Seed, tenant name), running the same scenario
// twice — at any parallelism — produces a byte-identical journal. The
// e2e tests assert exactly that across parallelism 1 / 4 / GOMAXPROCS.
package daemontest

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/repro/aegis/internal/daemon"
	"github.com/repro/aegis/internal/faultinject"
	"github.com/repro/aegis/internal/hpc"
	"github.com/repro/aegis/internal/isa"
	"github.com/repro/aegis/internal/telemetry/flight"
)

// PlanSegment returns the synthetic 4-variant stacked gadget segment the
// harness protects tenants with (load/flush-class variants, the same
// shape the repo's allocation gates use). Using a fixed plan keeps
// scenario setup free of a fuzz campaign without changing anything the
// daemon itself does.
func PlanSegment() []isa.Variant {
	legal := isa.Cleanup(isa.SpecAMDEpyc(1), isa.AMDEpycFeatures()).Legal
	var seg []isa.Variant
	for _, v := range legal {
		if v.Class == isa.ClassLoad || v.Class == isa.ClassFlush {
			seg = append(seg, v)
		}
		if len(seg) == 4 {
			break
		}
	}
	if len(seg) == 0 {
		panic("daemontest: no load/flush variants in the legal ISA list")
	}
	return seg
}

// BaseConfig returns a daemon config built around the synthetic plan
// with budgets sized for tests: small VMs, a modest tick budget, and a
// journal large enough that scenario assertions never fight ring wrap.
func BaseConfig(seed uint64) daemon.Config {
	return daemon.Config{
		Segment:         PlanSegment(),
		RefEvent:        hpc.NewAMDEpyc7252Catalog(1).MustByName("RETIRED_UOPS"),
		Seed:            seed,
		TickBudget:      400,
		VMMemoryBytes:   16 << 10,
		JournalCapacity: 1 << 15,
	}
}

// OpKind names a scripted scenario operation.
type OpKind string

// Scenario operations.
const (
	// OpAttach attaches Op.Tenant (app/secrets from the op).
	OpAttach OpKind = "attach"
	// OpDetach starts a graceful drain of Op.Tenant.
	OpDetach OpKind = "detach"
	// OpKill tears Op.Tenant down immediately, shedding its queue.
	OpKill OpKind = "kill"
	// OpSubmit submits Op.Jobs work items to Op.Tenant.
	OpSubmit OpKind = "submit"
	// OpReload stages Op.Reload; invalid deltas exercise the reject path
	// and are not scenario errors.
	OpReload OpKind = "reload"
)

// Op is one scripted operation, applied immediately before the AtTick-th
// Step (AtTick <= 1 means before the first). Ops sharing a tick apply in
// listed order.
type Op struct {
	AtTick  int64
	Kind    OpKind
	Tenant  string
	App     string
	Secrets int
	Jobs    int
	Reload  daemon.Tunables
}

// Scenario scripts one daemon run.
type Scenario struct {
	// Seed derives every stochastic choice in the run.
	Seed uint64
	// Ticks is the number of Step calls.
	Ticks int64
	// Tenants attaches this many base tenants (named t000, t001, ...)
	// before the first tick.
	Tenants int
	// Secrets bounds each base tenant's secret alphabet (0 = default).
	Secrets int
	// LoadPerTick, QueueCapacity, MaxItemsPerTick override the daemon
	// defaults when non-zero.
	LoadPerTick     int
	QueueCapacity   int
	MaxItemsPerTick int
	// TickBudget overrides BaseConfig's per-tenant budget when non-zero.
	TickBudget int
	// Faults names a faultinject preset ("", "off", "light", "heavy").
	Faults string
	// Ops are the scripted mid-run operations.
	Ops []Op
}

// Result is everything a scenario run exposes for assertions.
type Result struct {
	// Journal is the daemon's full flight journal as aegis-flight/v1
	// JSONL — the byte-identity surface of the determinism tests.
	Journal string
	// Status is the daemon status after the last tick.
	Status daemon.Status
	// Live holds the still-attached tenants in attach order.
	Live []daemon.TenantStatus
	// Final holds the last observed status of every tenant that ever
	// attached: live tenants at end-of-run, killed/drained tenants as of
	// the moment their detach op applied.
	Final map[string]daemon.TenantStatus
	// Records is the daemon journal decoded for content assertions.
	Records []flight.Record
	// Daemon is the live daemon, for follow-on assertions (readiness
	// gate, journal recorder, further steps).
	Daemon *daemon.Daemon
}

// BaseTenantName returns the canonical name of base tenant i.
func BaseTenantName(i int) string { return fmt.Sprintf("t%03d", i) }

// Run executes a scenario at the given parallelism.
func Run(sc Scenario, parallelism int) (*Result, error) {
	cfg := BaseConfig(sc.Seed)
	cfg.Parallelism = parallelism
	cfg.LoadPerTick = sc.LoadPerTick
	cfg.QueueCapacity = sc.QueueCapacity
	cfg.MaxItemsPerTick = sc.MaxItemsPerTick
	if sc.TickBudget > 0 {
		cfg.TickBudget = sc.TickBudget
	}
	if sc.Faults != "" {
		fcfg, err := faultinject.Preset(sc.Faults, sc.Seed)
		if err != nil {
			return nil, err
		}
		cfg.Faults = fcfg
	}
	d, err := daemon.New(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{Daemon: d, Final: make(map[string]daemon.TenantStatus)}
	for i := 0; i < sc.Tenants; i++ {
		if err := d.Attach(daemon.AttachSpec{Name: BaseTenantName(i), Secrets: sc.Secrets}); err != nil {
			return nil, err
		}
	}
	// Stable-sort ops by tick, preserving listed order within a tick.
	ops := append([]Op(nil), sc.Ops...)
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].AtTick < ops[j].AtTick })
	next := 0
	for tick := int64(1); tick <= sc.Ticks; tick++ {
		for next < len(ops) && ops[next].AtTick <= tick {
			if err := apply(d, ops[next], res); err != nil {
				return nil, fmt.Errorf("daemontest: op %d (%s %q at tick %d): %w",
					next, ops[next].Kind, ops[next].Tenant, tick, err)
			}
			next++
		}
		d.Step()
	}
	for _, st := range d.Statuses() {
		res.Final[st.Name] = st
	}
	res.Live = d.Statuses()
	res.Status = d.Status()
	var sb strings.Builder
	if err := d.Journal().WriteJSONL(&sb, flight.DumpOptions{}); err != nil {
		return nil, err
	}
	res.Journal = sb.String()
	res.Records = d.Journal().Snapshot()
	return res, nil
}

// apply executes one scripted op, snapshotting tenant status before a
// detach so funnels of dead tenants stay assertable.
func apply(d *daemon.Daemon, op Op, res *Result) error {
	switch op.Kind {
	case OpAttach:
		return d.Attach(daemon.AttachSpec{Name: op.Tenant, App: op.App, Secrets: op.Secrets})
	case OpDetach, OpKill:
		if st, err := d.TenantStatus(op.Tenant); err == nil {
			res.Final[op.Tenant] = st
		}
		return d.Detach(op.Tenant, op.Kind == OpKill)
	case OpSubmit:
		_, err := d.Submit(op.Tenant, op.Jobs)
		return err
	case OpReload:
		if err := d.Reload(op.Reload); err != nil && !errors.Is(err, daemon.ErrBadTunables) {
			// Rejected reloads are scripted on purpose (the reject path is
			// part of the journal); only unexpected errors fail the run.
			return err
		}
		return nil
	default:
		return fmt.Errorf("unknown op kind %q", op.Kind)
	}
}
