// Package proptest is a property-based harness that drives seeded fault
// schedules through full Aegis Protect/ProtectMulti deployments and
// extracts comparable artifacts. The properties the tests assert:
//
//   - no schedule panics the stack;
//   - per-tick injection stays within the DP clipped support [0, B_u];
//   - identical (seed, schedule, parallelism) triples produce
//     byte-identical artifacts;
//   - the degradation funnel reconciles (ticks == injected + zero-draw +
//     no-injection + degraded);
//   - degradation is monotone: a deployment that saw faults on its own
//     substrate never reports full protection, and a healthy deployment
//     always does.
package proptest

import (
	"fmt"

	aegis "github.com/repro/aegis"
	"github.com/repro/aegis/internal/faultinject"
	"github.com/repro/aegis/internal/obfuscator"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/sev"
	"github.com/repro/aegis/internal/workload"
)

// Schedule is one seeded fault scenario.
type Schedule struct {
	// Seed drives both the pipeline and the fault streams.
	Seed uint64
	// Preset names the fault intensity: faultinject.PresetOff/Light/Heavy.
	Preset string
	// Ticks is the online run length.
	Ticks int
	// Parallelism is the offline worker-pool width (affects wall-clock
	// only; artifacts must be identical at any value).
	Parallelism int
}

// String identifies the schedule in test output.
func (s Schedule) String() string {
	return fmt.Sprintf("seed=%d preset=%s ticks=%d par=%d", s.Seed, s.Preset, s.Ticks, s.Parallelism)
}

// Schedules returns n deterministic schedules cycling through the fault
// presets with varied seeds and run lengths.
func Schedules(n int, baseSeed uint64) []Schedule {
	presets := []string{faultinject.PresetOff, faultinject.PresetLight, faultinject.PresetHeavy}
	r := rng.New(baseSeed).Split("proptest-schedules")
	out := make([]Schedule, n)
	for i := range out {
		out[i] = Schedule{
			Seed:        baseSeed + uint64(i)*7919,
			Preset:      presets[i%len(presets)],
			Ticks:       60 + r.Intn(90),
			Parallelism: 1,
		}
	}
	return out
}

// Artifacts is the comparable outcome of one schedule run. All fields are
// deterministic functions of (seed, schedule, parallelism).
type Artifacts struct {
	// Single-event deployment.
	Report         obfuscator.ProtectionReport
	InjectedCounts float64
	InjectedReps   int64
	PerExec        float64
	ClipBound      float64
	// Multi-event deployment.
	MultiReps     int64
	MultiDegraded int64
	MultiRearms   int64
	MultiFull     bool
	// World-level fault totals (preemption + gadget interrupts).
	WorldFaults uint64
}

// Fingerprint renders every artifact field into a byte-comparable string.
func (a Artifacts) Fingerprint() string {
	return fmt.Sprintf("%+v|counts=%x|per=%x|multi=%d/%d/%d/%t|world=%d",
		a.Report, a.InjectedCounts, a.PerExec,
		a.MultiReps, a.MultiDegraded, a.MultiRearms, a.MultiFull, a.WorldFaults)
}

// Harness owns the expensive shared state: one fuzzed gadget set reused
// across schedules (the offline pipeline's fault determinism is covered by
// its own tests; here the schedules exercise the online deployments).
type Harness struct {
	gs *aegis.GadgetSet
}

// EventNames are the protected events of the harness deployments.
var EventNames = []string{"RETIRED_UOPS", "LS_DISPATCH"}

// NewHarness fuzzes the shared gadget set on a healthy substrate.
func NewHarness(seed uint64) (*Harness, error) {
	fw, err := aegis.New(aegis.Config{Seed: seed, FuzzCandidates: 150})
	if err != nil {
		return nil, err
	}
	gs, err := fw.Fuzz(EventNames)
	if err != nil {
		return nil, err
	}
	return &Harness{gs: gs}, nil
}

// GadgetSet returns the shared gadget set.
func (h *Harness) GadgetSet() *aegis.GadgetSet { return h.gs }

// Run executes one schedule: a framework configured with the schedule's
// fault preset deploys a d* obfuscator and a multi-event reinforcement
// into a faulted SEV world alongside a workload, runs Ticks ticks and
// collects the artifacts. Panics anywhere in the stack are converted into
// errors so the caller can assert the no-panic property.
func (h *Harness) Run(s Schedule) (a Artifacts, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("schedule %v panicked: %v", s, r)
		}
	}()
	faults, err := faultinject.Preset(s.Preset, s.Seed)
	if err != nil {
		return a, err
	}
	fw, err := aegis.New(aegis.Config{
		Seed:        s.Seed,
		Parallelism: s.Parallelism,
		Faults:      faults,
	})
	if err != nil {
		return a, err
	}

	w := sev.NewWorld(sev.DefaultConfig(s.Seed))
	w.SetFaults(fw.FaultInjector())
	vm, err := w.LaunchVM(sev.VMConfig{VCPUs: 2, SEV: true})
	if err != nil {
		return a, err
	}
	lib := workload.DefaultLibrary(1)
	runner := workload.NewRunner("browser", lib, rng.New(s.Seed).Split("proptest-runner"))
	runner.Enqueue(workload.WebsiteJob("google.com", rng.New(s.Seed).Split("proptest-load")))
	if err := vm.AddProcess(0, runner); err != nil {
		return a, err
	}

	obf, err := fw.Protect(vm, 0, h.gs, aegis.MechanismDStar, 1.0)
	if err != nil {
		return a, err
	}
	multi, err := fw.ProtectMulti(vm, 1, h.gs, 1.0)
	if err != nil {
		return a, err
	}

	w.Run(s.Ticks)

	a = Artifacts{
		Report:         obf.Report(),
		InjectedCounts: obf.InjectedCounts(),
		InjectedReps:   obf.InjectedReps(),
		PerExec:        obf.PerExecDelta(),
		ClipBound:      20000, // aegis.Config default B_u
		MultiReps:      multi.Multi.InjectedReps(),
		MultiDegraded:  multi.Multi.DegradedPlanTicks(),
		MultiRearms:    multi.Multi.CounterRearms(),
		MultiFull:      multi.Multi.FullProtection(),
	}
	if in := fw.FaultInjector(); in != nil {
		a.WorldFaults = in.Total()
	}
	return a, nil
}

// Check asserts every schedule-independent invariant on one run's
// artifacts and returns the first violation.
func Check(s Schedule, a Artifacts) error {
	r := a.Report
	// The obfuscator shares its vCPU round-robin with the workload: a tick
	// whose budget dies before the obfuscator's turn never reaches it, so
	// it runs at most — not exactly — the world's tick count.
	if r.Ticks <= 0 || r.Ticks > int64(s.Ticks) {
		return fmt.Errorf("%v: obfuscator ran %d ticks, want 1..%d", s, r.Ticks, s.Ticks)
	}
	if got := r.InjectedTicks + r.ZeroDrawTicks + r.NoInjectionTicks + r.DegradedTicks; got != r.Ticks {
		return fmt.Errorf("%v: funnel does not reconcile: %d+%d+%d+%d != %d",
			s, r.InjectedTicks, r.ZeroDrawTicks, r.NoInjectionTicks, r.DegradedTicks, r.Ticks)
	}
	// DP clipped support: no run can inject more than ticks × (B_u plus
	// one rep of rounding slack).
	if maxTotal := float64(r.Ticks) * (a.ClipBound + a.PerExec); a.InjectedCounts > maxTotal {
		return fmt.Errorf("%v: injected %v counts exceeds clipped support %v",
			s, a.InjectedCounts, maxTotal)
	}
	if a.InjectedCounts < 0 || a.InjectedReps < 0 {
		return fmt.Errorf("%v: negative injection totals: %+v", s, a)
	}
	// Monotone degradation: faults on the obfuscator's own substrate (or
	// any degraded tick) must void the full-protection claim; a healthy
	// preset must keep it.
	if (r.FaultsSeen > 0 || r.DegradedTicks > 0 || r.MechanismFallbacks > 0) && r.Full() {
		return fmt.Errorf("%v: full protection reported despite faults: %+v", s, r)
	}
	if s.Preset == faultinject.PresetOff {
		if !r.Full() {
			return fmt.Errorf("%v: healthy schedule not reported full: %+v", s, r)
		}
		if a.WorldFaults != 0 || !a.MultiFull || a.MultiDegraded != 0 {
			return fmt.Errorf("%v: healthy schedule recorded faults: %+v", s, a)
		}
	}
	if a.MultiDegraded > 0 && a.MultiFull {
		return fmt.Errorf("%v: multi deployment full despite %d degraded plan-ticks", s, a.MultiDegraded)
	}
	return nil
}
