package proptest

import (
	"runtime"
	"testing"

	aegis "github.com/repro/aegis"
	"github.com/repro/aegis/internal/faultinject"
)

func newHarness(t testing.TB) *Harness {
	t.Helper()
	h, err := NewHarness(1)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestPropertyHarness drives 108 seeded fault schedules through full
// Protect/ProtectMulti deployments. Every schedule is checked against the
// harness invariants; every ninth is re-run to assert byte-identical
// artifacts for identical (seed, schedule, parallelism).
func TestPropertyHarness(t *testing.T) {
	h := newHarness(t)
	schedules := Schedules(108, 1000)
	if len(schedules) < 100 {
		t.Fatalf("only %d schedules", len(schedules))
	}
	presets := map[string]int{}
	for i, s := range schedules {
		a, err := h.Run(s)
		if err != nil {
			t.Fatalf("schedule %v: %v", s, err)
		}
		if err := Check(s, a); err != nil {
			t.Error(err)
		}
		presets[s.Preset]++
		if i%9 == 0 {
			b, err := h.Run(s)
			if err != nil {
				t.Fatalf("schedule %v replay: %v", s, err)
			}
			if a.Fingerprint() != b.Fingerprint() {
				t.Errorf("schedule %v not replayable:\n%s\n%s", s, a.Fingerprint(), b.Fingerprint())
			}
		}
	}
	for _, p := range []string{faultinject.PresetOff, faultinject.PresetLight, faultinject.PresetHeavy} {
		if presets[p] == 0 {
			t.Errorf("no schedule exercised preset %q", p)
		}
	}
}

// TestParallelismInvariance re-runs one faulted schedule (including the
// offline fuzzing stage) at parallelism 1, 4 and GOMAXPROCS; the fault
// streams are label-derived, so the artifacts and the fuzzed gadget set
// must be identical at every width.
func TestParallelismInvariance(t *testing.T) {
	type shape struct {
		cover, segment, tried int
		fingerprint           string
	}
	run := func(par int) shape {
		faults, err := faultinject.Preset(faultinject.PresetLight, 5)
		if err != nil {
			t.Fatal(err)
		}
		fw, err := aegis.New(aegis.Config{
			Seed: 5, FuzzCandidates: 150, Parallelism: par, Faults: faults,
		})
		if err != nil {
			t.Fatal(err)
		}
		gs, err := fw.Fuzz(EventNames)
		if err != nil {
			t.Fatal(err)
		}
		h := &Harness{gs: gs}
		s := Schedule{Seed: 5, Preset: faultinject.PresetHeavy, Ticks: 80, Parallelism: par}
		a, err := h.Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := Check(s, a); err != nil {
			t.Error(err)
		}
		return shape{gs.CoverSize, gs.SegmentLen, gs.GadgetsTried, a.Fingerprint()}
	}
	base := run(1)
	for _, par := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := run(par); got != base {
			t.Errorf("parallelism %d diverged:\n%+v\n%+v", par, got, base)
		}
	}
}

// FuzzTickUnderFaults is a native fuzz target: arbitrary (seed, preset,
// ticks) triples must satisfy the harness invariants and never panic.
func FuzzTickUnderFaults(f *testing.F) {
	h := newHarness(f)
	f.Add(uint64(1), byte(0), uint8(40))
	f.Add(uint64(99), byte(1), uint8(80))
	f.Add(uint64(7), byte(2), uint8(120))
	presets := []string{faultinject.PresetOff, faultinject.PresetLight, faultinject.PresetHeavy}
	f.Fuzz(func(t *testing.T, seed uint64, preset byte, ticks uint8) {
		s := Schedule{
			Seed:        seed,
			Preset:      presets[int(preset)%len(presets)],
			Ticks:       int(ticks%120) + 10,
			Parallelism: 1,
		}
		a, err := h.Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := Check(s, a); err != nil {
			t.Error(err)
		}
	})
}
