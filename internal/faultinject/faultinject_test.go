package faultinject

import (
	"sync"
	"testing"
)

// trace replays n queries of every kind against a handle and records the
// outcomes, fingerprinting one site's fault schedule.
func trace(h *Handle, n int) []bool {
	var out []bool
	for i := 0; i < n; i++ {
		out = append(out, h.PMUReadError())
		_, sat := h.CounterSaturation()
		out = append(out, sat)
		out = append(out, h.MultiplexStarved())
		out = append(out, h.PreemptBudget(1000) < 1000)
		_, gi := h.GadgetInterrupt(8)
		out = append(out, gi)
		_, de := h.DrawExtreme()
		out = append(out, de)
	}
	return out
}

func heavy(seed uint64) Config {
	cfg, err := Preset(PresetHeavy, seed)
	if err != nil {
		panic(err)
	}
	return cfg
}

func TestNilInjectorAndHandleAreHealthy(t *testing.T) {
	var in *Injector
	if in.Enabled() || in.Total() != 0 || in.Count(KindPMURead) != 0 {
		t.Error("nil injector not inert")
	}
	h := in.Handle("anything")
	if h != nil {
		t.Fatal("nil injector must derive nil handles")
	}
	if h.PMUReadError() || h.MultiplexStarved() || h.Preempted() {
		t.Error("nil handle injected a fault")
	}
	if _, ok := h.CounterSaturation(); ok {
		t.Error("nil handle saturated a counter")
	}
	if got := h.PreemptBudget(1234); got != 1234 {
		t.Errorf("nil handle changed the budget: %d", got)
	}
	if _, ok := h.GadgetInterrupt(16); ok {
		t.Error("nil handle interrupted a gadget")
	}
	if _, ok := h.DrawExtreme(); ok {
		t.Error("nil handle injected a draw extreme")
	}
	if h.Total() != 0 {
		t.Error("nil handle counted faults")
	}
	if New(Config{}) != nil {
		t.Error("New of a zero config must return the nil injector")
	}
}

func TestSchedulesAreDeterministicPerLabels(t *testing.T) {
	a := New(heavy(42)).Handle("sev", "vm0/vcpu0")
	b := New(heavy(42)).Handle("sev", "vm0/vcpu0")
	ta, tb := trace(a, 200), trace(b, 200)
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("schedules diverge at query %d", i)
		}
	}
	if a.Total() == 0 {
		t.Fatal("heavy preset injected nothing in 200 queries")
	}
	if a.Total() != b.Total() {
		t.Errorf("counts differ: %d vs %d", a.Total(), b.Total())
	}
}

func TestSchedulesDifferAcrossLabelsAndSeeds(t *testing.T) {
	in := New(heavy(42))
	same := 0
	ta := trace(in.Handle("site-a"), 300)
	tb := trace(in.Handle("site-b"), 300)
	for i := range ta {
		if ta[i] == tb[i] {
			same++
		}
	}
	if same == len(ta) {
		t.Error("different labels replayed an identical schedule")
	}
	tc := trace(New(heavy(43)).Handle("site-a"), 300)
	same = 0
	for i := range ta {
		if ta[i] == tc[i] {
			same++
		}
	}
	if same == len(ta) {
		t.Error("different seeds replayed an identical schedule")
	}
}

func TestHandleDerivationIsOrderIndependent(t *testing.T) {
	// Deriving other handles first (in any order, from any goroutine)
	// must not change what a labelled site sees.
	in1 := New(heavy(7))
	ref := trace(in1.Handle("obfuscator"), 100)

	in2 := New(heavy(7))
	var wg sync.WaitGroup
	for _, l := range []string{"sev", "fuzzer", "other"} {
		wg.Add(1)
		go func(label string) {
			defer wg.Done()
			_ = trace(in2.Handle(label), 50)
		}(l)
	}
	wg.Wait()
	got := trace(in2.Handle("obfuscator"), 100)
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("schedule perturbed by sibling handles at query %d", i)
		}
	}
}

func TestPreemptionBursts(t *testing.T) {
	cfg := Config{Seed: 1, PreemptionRate: 1, PreemptionBurstTicks: 3, PreemptionBudgetFrac: 0.25}
	h := New(cfg).Handle("vcpu")
	// Rate 1: the first tick starts a burst lasting 3 ticks.
	for i := 0; i < 3; i++ {
		if got := h.PreemptBudget(2000); got != 500 {
			t.Fatalf("tick %d budget = %d, want 500", i, got)
		}
	}
	if !h.Preempted() && h.Count(KindPreemption) != 1 {
		t.Error("burst not accounted as one fault")
	}
	// The tick after the burst immediately starts the next (rate 1).
	if got := h.PreemptBudget(2000); got != 500 {
		t.Errorf("post-burst tick budget = %d (new burst expected)", got)
	}
	if h.Count(KindPreemption) != 2 {
		t.Errorf("preemption faults = %d, want 2 (one per burst)", h.Count(KindPreemption))
	}
	// Budget floor: the reduced budget never drops below one instruction.
	floor := New(Config{Seed: 1, PreemptionRate: 1, PreemptionBudgetFrac: 0.001}).Handle("v")
	if got := floor.PreemptBudget(10); got < 1 {
		t.Errorf("preempted budget = %d, want >= 1", got)
	}
}

func TestGadgetInterruptStopsWithinSequence(t *testing.T) {
	h := New(Config{Seed: 3, GadgetInterruptRate: 1}).Handle("g")
	for i := 0; i < 100; i++ {
		stop, ok := h.GadgetInterrupt(12)
		if !ok {
			t.Fatal("rate-1 interrupt did not fire")
		}
		if stop < 0 || stop >= 12 {
			t.Fatalf("interrupt point %d outside [0, 12)", stop)
		}
	}
	// A single-instruction sequence cannot be "partially" executed.
	if _, ok := h.GadgetInterrupt(1); ok {
		t.Error("interrupted a length-1 sequence")
	}
}

func TestDrawExtremeHasBothSigns(t *testing.T) {
	h := New(Config{Seed: 4, DrawExtremeRate: 1, DrawExtremeMagnitude: 42}).Handle("d")
	pos, neg := 0, 0
	for i := 0; i < 200; i++ {
		v, ok := h.DrawExtreme()
		if !ok {
			t.Fatal("rate-1 extreme did not fire")
		}
		switch v {
		case 42:
			pos++
		case -42:
			neg++
		default:
			t.Fatalf("extreme %v not ±magnitude", v)
		}
	}
	if pos == 0 || neg == 0 {
		t.Errorf("extremes one-sided: %d positive, %d negative", pos, neg)
	}
}

func TestInjectorAggregatesHandleCounts(t *testing.T) {
	in := New(Config{Seed: 5, PMUReadErrorRate: 1, DrawExtremeRate: 1})
	a, b := in.Handle("a"), in.Handle("b")
	for i := 0; i < 10; i++ {
		a.PMUReadError()
		b.DrawExtreme()
	}
	if in.Count(KindPMURead) != 10 || in.Count(KindDrawExtreme) != 10 {
		t.Errorf("per-kind totals = %d/%d, want 10/10",
			in.Count(KindPMURead), in.Count(KindDrawExtreme))
	}
	if in.Total() != a.Total()+b.Total() {
		t.Errorf("root total %d != handle totals %d+%d", in.Total(), a.Total(), b.Total())
	}
}

func TestPresets(t *testing.T) {
	if cfg, err := Preset(PresetOff, 1); err != nil || cfg.Enabled() {
		t.Errorf("off preset = %+v, %v", cfg, err)
	}
	light, err := Preset(PresetLight, 1)
	if err != nil || !light.Enabled() {
		t.Fatalf("light preset = %+v, %v", light, err)
	}
	hv, err := Preset(PresetHeavy, 1)
	if err != nil || !hv.Enabled() {
		t.Fatalf("heavy preset = %+v, %v", hv, err)
	}
	if hv.PMUReadErrorRate <= light.PMUReadErrorRate {
		t.Error("heavy preset not heavier than light")
	}
	if _, err := Preset("bogus", 1); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestKindNamesStable(t *testing.T) {
	want := map[Kind]string{
		KindPMURead:             "pmu-read",
		KindCounterSaturation:   "counter-saturation",
		KindMultiplexStarvation: "multiplex-starvation",
		KindPreemption:          "vcpu-preemption",
		KindGadgetInterrupt:     "gadget-interrupt",
		KindDrawExtreme:         "draw-extreme",
	}
	if len(Kinds()) != len(want) {
		t.Fatalf("Kinds() = %v", Kinds())
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("Kind %d = %q, want %q (metric labels must stay stable)", k, k.String(), name)
		}
	}
}
