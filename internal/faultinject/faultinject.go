// Package faultinject is a deterministic, seed-driven fault-injection
// layer for the simulated substrate. Real PMU infrastructure misbehaves
// under load — counters drop samples while multiplexing, RDPMC reads race
// counter rotation, counters overflow and latch, and SEV vCPUs are
// preempted (or single-stepped) by the hypervisor mid-gadget. The online
// defense must keep working on such a substrate, so this package makes
// those failures first-class, reproducible events.
//
// Faults are drawn from rng.NewStream schedules: an Injector holds a
// Config, and every injection point derives a Handle identified by a label
// path. Because stream derivation is a pure function of (Seed, labels) —
// Split never advances the parent — the fault schedule a site sees depends
// only on which site it is and how many times it has asked, never on
// scheduling order or worker count. That keeps the parallel pipelines'
// byte-identical determinism contract intact with faults enabled.
//
// A nil *Injector and a nil *Handle are valid "healthy substrate" values:
// every query on them reports no fault, so injection points stay one
// branch on the hot path.
package faultinject

import (
	"fmt"
	"strconv"
	"sync/atomic"

	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/telemetry"
	"github.com/repro/aegis/internal/telemetry/flight"
)

// Kind enumerates the injectable fault classes.
type Kind int

// Fault classes, each modelled on a documented real-hardware failure mode.
const (
	// KindPMURead: an RDPMC read fails outright (races a counter
	// rotation, or the perf fd returns an error under multiplex churn).
	KindPMURead Kind = iota
	// KindCounterSaturation: a counter overflows and latches at its cap
	// until re-programmed.
	KindCounterSaturation
	// KindMultiplexStarvation: the active multiplex group is starved of
	// PMC time for a tick; its samples are lost and rotation stalls.
	KindMultiplexStarvation
	// KindPreemption: the hypervisor preempts the vCPU for a burst of
	// ticks, slashing its instruction budget.
	KindPreemption
	// KindGadgetInterrupt: an interrupt/VM-exit lands mid-sequence, so an
	// injected gadget executes only partially.
	KindGadgetInterrupt
	// KindDrawExtreme: a mechanism draw comes back at a clipping extreme
	// (the Laplace inverse-CDF tail at u near 0 or 1).
	KindDrawExtreme

	numKinds
)

// String returns the stable metric-label name of the kind.
func (k Kind) String() string {
	switch k {
	case KindPMURead:
		return "pmu-read"
	case KindCounterSaturation:
		return "counter-saturation"
	case KindMultiplexStarvation:
		return "multiplex-starvation"
	case KindPreemption:
		return "vcpu-preemption"
	case KindGadgetInterrupt:
		return "gadget-interrupt"
	case KindDrawExtreme:
		return "draw-extreme"
	default:
		// String is reachable from hot tick paths (incident labeling), so
		// the out-of-range fallback avoids fmt formatting machinery.
		return "kind(" + strconv.Itoa(int(k)) + ")"
	}
}

// Kinds returns every fault kind in stable order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		out[k] = k
	}
	return out
}

// mInjected counts injected faults per kind. The counters are created
// eagerly so the metric names are stable in expositions even before any
// fault fires.
var mInjected = func() [numKinds]*telemetry.Counter {
	var out [numKinds]*telemetry.Counter
	for k := Kind(0); k < numKinds; k++ {
		out[k] = telemetry.C("fault_injected_total", telemetry.L("kind", k.String()))
	}
	return out
}()

// fFault journals every injected fault as a flight incident; flightCodes
// maps each kind onto the shared record taxonomy.
var (
	fFault      = flight.Get(flight.KindFault)
	flightCodes = [numKinds]flight.Code{
		KindPMURead:             flight.CodeFaultPMURead,
		KindCounterSaturation:   flight.CodeFaultCounterSaturation,
		KindMultiplexStarvation: flight.CodeFaultMultiplexStarvation,
		KindPreemption:          flight.CodeFaultPreemption,
		KindGadgetInterrupt:     flight.CodeFaultGadgetInterrupt,
		KindDrawExtreme:         flight.CodeFaultDrawExtreme,
	}
)

// Config sets the per-tick (or per-query) probability of each fault class
// plus its shape parameters. The zero value injects nothing.
type Config struct {
	// Seed drives every fault schedule; identical (Seed, labels) replay
	// identical schedules.
	Seed uint64

	// PMUReadErrorRate is the probability an RDPMC read fails.
	PMUReadErrorRate float64
	// CounterSaturationRate is the probability a read saturates the
	// counter, latching it at SaturationCap until re-programmed.
	CounterSaturationRate float64
	// SaturationCap is the latched value of a saturated counter;
	// <= 0 means 1e6.
	SaturationCap float64
	// MultiplexStarvationRate is the probability a perf-session tick
	// starves the active multiplex group.
	MultiplexStarvationRate float64
	// PreemptionRate is the probability a vCPU tick starts a preemption
	// burst.
	PreemptionRate float64
	// PreemptionBurstTicks is the burst length in ticks; <= 0 means 3.
	PreemptionBurstTicks int
	// PreemptionBudgetFrac is the fraction of the tick budget left to a
	// preempted vCPU; <= 0 means 0.25.
	PreemptionBudgetFrac float64
	// GadgetInterruptRate is the probability a guest instruction sequence
	// is interrupted partway.
	GadgetInterruptRate float64
	// DrawExtremeRate is the probability a mechanism draw is replaced by
	// a clipping extreme.
	DrawExtremeRate float64
	// DrawExtremeMagnitude is the absolute value of that extreme;
	// <= 0 means 1e9.
	DrawExtremeMagnitude float64
}

// Enabled reports whether any fault class has a positive rate.
func (c Config) Enabled() bool {
	return c.PMUReadErrorRate > 0 || c.CounterSaturationRate > 0 ||
		c.MultiplexStarvationRate > 0 || c.PreemptionRate > 0 ||
		c.GadgetInterruptRate > 0 || c.DrawExtremeRate > 0
}

// withDefaults fills shape parameters left at zero.
func (c Config) withDefaults() Config {
	if c.SaturationCap <= 0 {
		c.SaturationCap = 1e6
	}
	if c.PreemptionBurstTicks <= 0 {
		c.PreemptionBurstTicks = 3
	}
	if c.PreemptionBudgetFrac <= 0 {
		c.PreemptionBudgetFrac = 0.25
	}
	if c.DrawExtremeMagnitude <= 0 {
		c.DrawExtremeMagnitude = 1e9
	}
	return c
}

// Preset names accepted by Preset and the CLIs' -faults flag.
const (
	PresetOff   = "off"
	PresetLight = "light"
	PresetHeavy = "heavy"
)

// Preset returns a named fault profile. "off" is the zero Config; "light"
// models an ordinarily flaky substrate; "heavy" models a substrate under
// hostile load (or an actively interfering hypervisor).
func Preset(name string, seed uint64) (Config, error) {
	switch name {
	case PresetOff, "":
		return Config{}, nil
	case PresetLight:
		return Config{
			Seed:                    seed,
			PMUReadErrorRate:        0.01,
			CounterSaturationRate:   0.002,
			MultiplexStarvationRate: 0.05,
			PreemptionRate:          0.02,
			GadgetInterruptRate:     0.01,
			DrawExtremeRate:         0.005,
		}, nil
	case PresetHeavy:
		return Config{
			Seed:                    seed,
			PMUReadErrorRate:        0.08,
			CounterSaturationRate:   0.02,
			MultiplexStarvationRate: 0.25,
			PreemptionRate:          0.10,
			PreemptionBurstTicks:    5,
			PreemptionBudgetFrac:    0.1,
			GadgetInterruptRate:     0.08,
			DrawExtremeRate:         0.04,
		}, nil
	default:
		return Config{}, fmt.Errorf("faultinject: unknown preset %q (want %s, %s or %s)",
			name, PresetOff, PresetLight, PresetHeavy)
	}
}

// Injector is the root of a fault-schedule tree. It is safe for concurrent
// Handle derivation and count reads; the Handles it returns are not
// goroutine-safe (like rng.Source, each injection site owns its own).
type Injector struct {
	cfg    Config
	totals [numKinds]atomic.Uint64
}

// New builds an injector, or returns nil (the healthy substrate) when the
// config injects nothing.
func New(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	return &Injector{cfg: cfg.withDefaults()}
}

// Enabled reports whether the injector injects anything; nil-safe.
func (in *Injector) Enabled() bool { return in != nil }

// Config returns the (default-filled) fault config; nil-safe.
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// Count returns the number of faults of one kind injected so far across
// every handle of this injector; nil-safe.
func (in *Injector) Count(k Kind) uint64 {
	if in == nil || k < 0 || k >= numKinds {
		return 0
	}
	return in.totals[k].Load()
}

// Total returns the number of faults injected so far across every handle
// and kind; nil-safe.
func (in *Injector) Total() uint64 {
	if in == nil {
		return 0
	}
	var sum uint64
	for k := Kind(0); k < numKinds; k++ {
		sum += in.totals[k].Load()
	}
	return sum
}

// Handle derives the fault schedule for one injection site. The schedule
// is a pure function of (Config.Seed, labels): two handles with the same
// labels replay the same faults no matter which goroutine derives them or
// when — the property the parallel determinism tests pin down. Nil-safe:
// a nil injector returns a nil (never-faulting) handle.
func (in *Injector) Handle(labels ...string) *Handle {
	if in == nil {
		return nil
	}
	h := &Handle{cfg: in.cfg, root: in}
	base := make([]string, 0, len(labels)+2)
	base = append(base, "faultinject")
	base = append(base, labels...)
	for k := Kind(0); k < numKinds; k++ {
		h.streams[k] = rng.NewStream(in.cfg.Seed, append(base, k.String())...)
	}
	return h
}

// Handle is one injection site's fault schedule. Not safe for concurrent
// use; every query may advance the site's streams. All methods are
// nil-safe and report "no fault" on a nil handle.
type Handle struct {
	cfg     Config
	root    *Injector
	streams [numKinds]*rng.Source
	counts  [numKinds]uint64

	// preemptLeft is the remaining length of the current preemption
	// burst.
	preemptLeft int
}

// fire draws one Bernoulli from the kind's stream and accounts the fault
// when it hits.
func (h *Handle) fire(k Kind, rate float64) bool {
	if rate <= 0 || h.streams[k].Float64() >= rate {
		return false
	}
	h.counts[k]++
	h.root.totals[k].Add(1)
	mInjected[k].Inc()
	fFault.Incident(0, flightCodes[k], flight.CodeNone, 0, 0, 0)
	return true
}

// Count returns the number of faults of one kind this handle injected.
func (h *Handle) Count(k Kind) uint64 {
	if h == nil || k < 0 || k >= numKinds {
		return 0
	}
	return h.counts[k]
}

// Total returns the number of faults this handle injected across kinds.
func (h *Handle) Total() uint64 {
	if h == nil {
		return 0
	}
	var sum uint64
	for _, c := range h.counts {
		sum += c
	}
	return sum
}

// PMUReadError reports whether this RDPMC read fails.
func (h *Handle) PMUReadError() bool {
	if h == nil {
		return false
	}
	return h.fire(KindPMURead, h.cfg.PMUReadErrorRate)
}

// CounterSaturation reports whether this read saturates the counter,
// returning the latched cap value.
func (h *Handle) CounterSaturation() (float64, bool) {
	if h == nil {
		return 0, false
	}
	if !h.fire(KindCounterSaturation, h.cfg.CounterSaturationRate) {
		return 0, false
	}
	return h.cfg.SaturationCap, true
}

// MultiplexStarved reports whether this perf tick starves the active
// multiplex group.
func (h *Handle) MultiplexStarved() bool {
	if h == nil {
		return false
	}
	return h.fire(KindMultiplexStarvation, h.cfg.MultiplexStarvationRate)
}

// PreemptBudget returns the vCPU instruction budget for this tick,
// reduced while a preemption burst is active. Bursts start with
// probability PreemptionRate and last PreemptionBurstTicks ticks.
func (h *Handle) PreemptBudget(budget int) int {
	if h == nil {
		return budget
	}
	if h.preemptLeft == 0 && h.fire(KindPreemption, h.cfg.PreemptionRate) {
		h.preemptLeft = h.cfg.PreemptionBurstTicks
	}
	if h.preemptLeft == 0 {
		return budget
	}
	h.preemptLeft--
	b := int(float64(budget) * h.cfg.PreemptionBudgetFrac)
	if b < 1 {
		b = 1
	}
	return b
}

// Preempted reports whether a preemption burst is in progress (without
// advancing any schedule).
func (h *Handle) Preempted() bool { return h != nil && h.preemptLeft > 0 }

// GadgetInterrupt reports whether a sequence of seqLen instructions is
// interrupted partway, returning how many instructions retire before the
// interrupt (in [0, seqLen)).
func (h *Handle) GadgetInterrupt(seqLen int) (int, bool) {
	if h == nil || seqLen <= 1 {
		return 0, false
	}
	if !h.fire(KindGadgetInterrupt, h.cfg.GadgetInterruptRate) {
		return 0, false
	}
	return h.streams[KindGadgetInterrupt].Intn(seqLen), true
}

// DrawExtreme reports whether a mechanism draw is replaced by a clipping
// extreme, returning the extreme (±DrawExtremeMagnitude).
func (h *Handle) DrawExtreme() (float64, bool) {
	if h == nil {
		return 0, false
	}
	if !h.fire(KindDrawExtreme, h.cfg.DrawExtremeRate) {
		return 0, false
	}
	v := h.cfg.DrawExtremeMagnitude
	if h.streams[KindDrawExtreme].Float64() < 0.5 {
		v = -v
	}
	return v, true
}
