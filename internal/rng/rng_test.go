package rng

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestSplitOrderIndependence(t *testing.T) {
	p1 := New(7)
	p2 := New(7)

	a1 := p1.Split("a")
	_ = p2.Split("b")
	a2 := p2.Split("a")

	for i := 0; i < 100; i++ {
		if a1.Uint64() != a2.Uint64() {
			t.Fatalf("split %q depends on sibling split order", "a")
		}
	}
}

func TestNewStreamMatchesSplitChain(t *testing.T) {
	a := NewStream(42, "fuzzer", "event/X", "bench")
	b := New(42).Split("fuzzer").Split("event/X").Split("bench")
	for i := 0; i < 200; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("NewStream diverged from Split chain at step %d", i)
		}
	}
}

func TestNewStreamOrderInsensitive(t *testing.T) {
	// Deriving sibling streams in any order, from any goroutine, yields the
	// same values: the derivation is a pure function of (seed, labels).
	want := make([]uint64, 8)
	for i := range want {
		want[i] = NewStream(7, "rank", fmt.Sprintf("shard-%d", i)).Uint64()
	}
	// Reverse derivation order.
	for i := len(want) - 1; i >= 0; i-- {
		if got := NewStream(7, "rank", fmt.Sprintf("shard-%d", i)).Uint64(); got != want[i] {
			t.Fatalf("shard %d changed when derived in reverse order", i)
		}
	}
	// Concurrent derivation from racing goroutines.
	var wg sync.WaitGroup
	got := make([]uint64, len(want))
	for i := range want {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = NewStream(7, "rank", fmt.Sprintf("shard-%d", i)).Uint64()
		}(i)
	}
	wg.Wait()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shard %d changed when derived concurrently", i)
		}
	}
}

func TestNewStreamIndependentStreams(t *testing.T) {
	a := NewStream(5, "pipeline", "worker-0")
	b := NewStream(5, "pipeline", "worker-1")
	matches := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			matches++
		}
	}
	if matches > 0 {
		t.Fatalf("sibling worker streams collided %d times", matches)
	}
	if NewStream(11).Uint64() != New(11).Uint64() {
		t.Fatal("NewStream with no labels is not New")
	}
}

func TestSplitNOrderInsensitive(t *testing.T) {
	p := New(21)
	first := p.SplitN("shard", 3).Uint64()
	_ = p.SplitN("shard", 9).Uint64()
	_ = p.Split("other").Uint64()
	if got := p.SplitN("shard", 3).Uint64(); got != first {
		t.Fatal("SplitN depends on sibling derivation order")
	}
}

func TestSplitIndependence(t *testing.T) {
	p := New(99)
	a := p.Split("cache")
	b := p.Split("branch")
	matches := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			matches++
		}
	}
	if matches > 0 {
		t.Fatalf("child streams collided %d times", matches)
	}
}

func TestSplitNDistinct(t *testing.T) {
	p := New(3)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		v := p.SplitN("site", i).Uint64()
		if seen[v] {
			t.Fatalf("SplitN stream %d collides with an earlier stream", i)
		}
		seen[v] = true
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 100; i++ {
			f := s.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(5)
	for n := 1; n < 50; n++ {
		for i := 0; i < 20; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestLaplaceMoments(t *testing.T) {
	s := New(13)
	const n = 200000
	const scale = 2.5
	var sum, sumAbs float64
	for i := 0; i < n; i++ {
		v := s.Laplace(scale)
		sum += v
		sumAbs += math.Abs(v)
	}
	mean := sum / n
	meanAbs := sumAbs / n
	if math.Abs(mean) > 0.05 {
		t.Errorf("laplace mean = %v, want ~0", mean)
	}
	// E|X| = scale for Laplace(0, scale).
	if math.Abs(meanAbs-scale) > 0.05 {
		t.Errorf("laplace E|X| = %v, want ~%v", meanAbs, scale)
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(17)
	for _, lambda := range []float64{0.5, 3, 20, 100} {
		const n = 20000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(lambda))
		}
		mean := sum / n
		if math.Abs(mean-lambda) > 0.05*lambda+0.1 {
			t.Errorf("poisson(%v) mean = %v", lambda, mean)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(23)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(29)
	const n = 100000
	const rate = 4.0
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exponential(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Errorf("exponential mean = %v, want %v", mean, 1/rate)
	}
}

func TestBernoulliFrequency(t *testing.T) {
	s := New(31)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	f := float64(hits) / n
	if math.Abs(f-0.3) > 0.01 {
		t.Errorf("bernoulli(0.3) frequency = %v", f)
	}
}

func TestHashStringStable(t *testing.T) {
	if HashString("facebook.com") != HashString("facebook.com") {
		t.Fatal("hash not stable")
	}
	if HashString("facebook.com") == HashString("google.com") {
		t.Fatal("distinct strings hashed equal")
	}
}

func TestUniformityChiSquare(t *testing.T) {
	// Coarse chi-square test over 16 buckets of Float64.
	s := New(37)
	const n = 160000
	var buckets [16]int
	for i := 0; i < n; i++ {
		buckets[int(s.Float64()*16)]++
	}
	expected := float64(n) / 16
	var chi2 float64
	for _, c := range buckets {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom; 99.9th percentile ~ 37.7.
	if chi2 > 37.7 {
		t.Errorf("chi-square = %v, uniformity suspect", chi2)
	}
}
