package hpc

import (
	"errors"
	"fmt"
	"math"

	"github.com/repro/aegis/internal/faultinject"
	"github.com/repro/aegis/internal/microarch"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/telemetry"
	"github.com/repro/aegis/internal/telemetry/flight"
)

// PMU metrics: raw counter-read and programming volume. RDPMC reads are
// the innermost hot path of both the fuzzer and the obfuscator's kernel
// module, so each is a single atomic add.
var (
	mRDPMCReads  = telemetry.C("hpc_rdpmc_reads_total")
	mPMUPrograms = telemetry.C("hpc_pmu_programs_total")
	mPMUResets   = telemetry.C("hpc_pmu_resets_total")

	// fPMU journals counter lifecycle events: saturation latches are
	// incidents (the reader is now seeing garbage until a re-arm),
	// re-programming a latched slot is the matching recovery record.
	fPMU = flight.Get(flight.KindPMU)
)

// NumCounterRegisters is the number of programmable HPC registers per core;
// modern processors (and the paper's testbed) expose four.
const NumCounterRegisters = 4

// Errors returned by the PMU.
var (
	ErrBadSlot   = errors.New("hpc: counter slot out of range")
	ErrSlotEmpty = errors.New("hpc: counter slot not programmed")
	ErrNilEvent  = errors.New("hpc: nil event")
	// ErrReadFault is returned when an injected fault makes an RDPMC read
	// fail (modelling a read racing counter rotation).
	ErrReadFault = errors.New("hpc: rdpmc read fault")
)

// PMU models one core's performance monitoring unit: four programmable
// counter registers that accumulate a chosen event, read with an RDPMC
// analog. Reads include measurement noise: relative Gaussian jitter plus
// occasional interrupt-induced spikes, reproducing the paper's observation
// (challenge C2) that HPCs never count precisely.
//
// Slots are value-typed and the delta flattening reuses a PMU-owned scratch
// vector, so Program/RDPMC/Reset are allocation-free in steady state
// (gated by `make bench-alloc`).
//
// A PMU is not safe for concurrent use: like real hardware it is per-core
// state, and parallel pipeline workers must each program their own.
type PMU struct {
	core   *microarch.Core
	noise  *rng.Source
	faults *faultinject.Handle
	slots  [NumCounterRegisters]pmcSlot
	// vec is the scratch buffer RDPMC flattens counter deltas into; one
	// per PMU is enough because a PMU is single-owner by contract.
	vec []float64
}

type pmcSlot struct {
	event *Event // nil while the slot is unprogrammed
	base  microarch.Counters
	// drift accumulates the noise already reported so that repeated RDPMC
	// reads of an unchanged counter stay monotonic and consistent.
	drift float64
	// saturated latches the counter at satValue once it overflows; only
	// re-programming the slot clears it (Reset does not — the overflow
	// status bit survives a counter write, like real PMC overflow latches).
	saturated bool
	satValue  float64
}

// NewPMU attaches a PMU to a core. The noise source may be nil for exact
// (noise-free) reads, which the tests use to verify derivations.
func NewPMU(core *microarch.Core, noise *rng.Source) *PMU {
	return &PMU{core: core, noise: noise, vec: make([]float64, microarch.NumSignals)}
}

// SetFaults attaches a fault-injection schedule to this PMU's read path.
// A nil handle (the default) is the healthy substrate.
func (p *PMU) SetFaults(h *faultinject.Handle) { p.faults = h }

// Saturated reports whether a slot's counter is latched at its overflow
// cap. Only Program clears the latch.
func (p *PMU) Saturated(slot int) bool {
	if slot < 0 || slot >= NumCounterRegisters {
		return false
	}
	return p.slots[slot].saturated
}

// Program loads an event into a counter register and zeroes it.
func (p *PMU) Program(slot int, e *Event) error {
	if slot < 0 || slot >= NumCounterRegisters {
		//aegis:allow(hotpathdeep) cold guard: an invalid slot is a caller programming error, never taken on the steady-state path
		return fmt.Errorf("%w: %d", ErrBadSlot, slot)
	}
	if e == nil {
		return ErrNilEvent
	}
	if p.slots[slot].saturated {
		fPMU.Record(0, flight.CodePMURearmed, flight.CodeNone, float64(slot), 0, 0)
	}
	p.slots[slot] = pmcSlot{event: e, base: p.core.Counters()}
	mPMUPrograms.Inc()
	return nil
}

// Programmed returns the event loaded in a slot, or nil.
func (p *PMU) Programmed(slot int) *Event {
	if slot < 0 || slot >= NumCounterRegisters {
		return nil
	}
	return p.slots[slot].event
}

// RDPMC reads a counter register: the event count accumulated since it was
// programmed (or last reset), with measurement noise.
//
// The steady-state path is allocation-free: gated dynamically by TestZeroAllocRDPMC
// (alloc_gate_test.go, `make bench-alloc`) and statically by the
// aegis-lint hotpath rule, which bans allocating constructs in any
// function carrying this annotation.
//
//aegis:hotpath
func (p *PMU) RDPMC(slot int) (float64, error) {
	if slot < 0 || slot >= NumCounterRegisters {
		return 0, fmt.Errorf("%w: %d", ErrBadSlot, slot) //aegis:allow(hotpath) cold validation branch; never taken on the steady-state read path
	}
	s := &p.slots[slot]
	if s.event == nil {
		return 0, ErrSlotEmpty
	}
	mRDPMCReads.Inc()
	if p.faults.PMUReadError() {
		return 0, fmt.Errorf("%w: slot %d", ErrReadFault, slot) //aegis:allow(hotpath) cold fault branch; healthy steady state never formats
	}
	if s.saturated {
		return s.satValue, nil
	}
	if latch, ok := p.faults.CounterSaturation(); ok {
		s.saturated, s.satValue = true, latch
		fPMU.Incident(0, flight.CodePMUSaturated, flight.CodeNone, float64(slot), latch, 0)
		return latch, nil
	}
	delta := p.core.Counters().Sub(s.base)
	p.vec = delta.VectorInto(p.vec)
	v := s.event.Value(p.vec)
	if p.noise != nil && s.event.NoiseSigma > 0 {
		// Relative jitter proportional to the accumulated count plus a
		// small absolute floor so idle counters also wobble.
		jitter := p.noise.Gaussian(0, s.event.NoiseSigma*v+0.05)
		s.drift += jitter * 0.1 // most jitter is transient; a bit sticks
		v += jitter + s.drift
		// Interrupt spike: rare large positive excursion.
		if p.noise.Float64() < 0.005 {
			v += p.noise.Float64() * 50
		}
	}
	if v < 0 {
		v = 0
	}
	return v, nil
}

// Reset re-zeroes a programmed counter without changing its event.
func (p *PMU) Reset(slot int) error {
	if slot < 0 || slot >= NumCounterRegisters {
		//aegis:allow(hotpathdeep) cold guard: an invalid slot is a caller programming error, never taken on the steady-state path
		return fmt.Errorf("%w: %d", ErrBadSlot, slot)
	}
	s := &p.slots[slot]
	if s.event == nil {
		return ErrSlotEmpty
	}
	s.base = p.core.Counters()
	s.drift = 0
	mPMUResets.Inc()
	return nil
}

// ReadAllInto reads every counter register into dst, indexed by slot
// number — the dense, allocation-free form of ReadAll. Unprogrammed slots
// and failed reads are reported as NaN (a counter value is never NaN, so
// the sentinel is unambiguous). dst's backing array is reused when it has
// capacity for NumCounterRegisters elements; the filled slice is returned.
//
// The steady-state path is allocation-free: gated dynamically by TestZeroAllocReadAllInto
// (alloc_gate_test.go, `make bench-alloc`) and statically by the
// aegis-lint hotpath rule, which bans allocating constructs in any
// function carrying this annotation.
//
//aegis:hotpath
func (p *PMU) ReadAllInto(dst []float64) []float64 {
	if cap(dst) < NumCounterRegisters {
		dst = make([]float64, NumCounterRegisters)
	}
	dst = dst[:NumCounterRegisters]
	for i := range p.slots {
		if p.slots[i].event == nil {
			dst[i] = math.NaN()
			continue
		}
		v, err := p.RDPMC(i)
		if err != nil {
			dst[i] = math.NaN()
			continue
		}
		dst[i] = v
	}
	return dst
}

// ReadAll reads every programmed slot, returning a map from event name to
// value. It is a compatibility wrapper over ReadAllInto; per-tick readers
// should use ReadAllInto (or slot-indexed RDPMC) to avoid the map
// allocation.
func (p *PMU) ReadAll() map[string]float64 {
	var buf [NumCounterRegisters]float64
	vals := p.ReadAllInto(buf[:])
	out := make(map[string]float64, NumCounterRegisters)
	for i, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		out[p.slots[i].event.Name] = v
	}
	return out
}
