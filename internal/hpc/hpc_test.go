package hpc

import (
	"math"
	"testing"

	"github.com/repro/aegis/internal/isa"
	"github.com/repro/aegis/internal/microarch"
	"github.com/repro/aegis/internal/rng"
)

func TestSignalIndices(t *testing.T) {
	if SignalIndexCount != microarch.NumSignals {
		t.Fatalf("hpc tracks %d signals, microarch exports %d", SignalIndexCount, microarch.NumSignals)
	}
	names := microarch.SignalNames()
	// Spot-check the indices named constants rely on.
	for idx, want := range map[int]string{
		sigUops:          "uops_retired",
		sigLoadsDisp:     "loads_dispatched",
		sigMABAlloc:      "mab_allocations",
		sigRefillsSystem: "l1d_refills_system",
		sigL1DWrites:     "l1d_writes",
		sigSSEOps:        "sse_ops",
		sigCtxSwitches:   "ctx_switches",
	} {
		if names[idx] != want {
			t.Errorf("signal %d = %q, want %q", idx, names[idx], want)
		}
	}
}

func TestCatalogSizesMatchTable1(t *testing.T) {
	for _, tc := range []struct {
		cat  *Catalog
		want int
	}{
		{NewIntelXeonE51650Catalog(1), 6166},
		{NewIntelXeonE54617Catalog(1), 6172},
		{NewAMDEpyc7252Catalog(1), 1903},
		{NewAMDEpyc7313PCatalog(1), 1903},
	} {
		if got := tc.cat.Size(); got != tc.want {
			t.Errorf("%s catalog size = %d, want %d", tc.cat.Processor, got, tc.want)
		}
	}
}

func TestDifferentEventsWithinFamily(t *testing.T) {
	e51650 := NewIntelXeonE51650Catalog(1)
	e54617 := NewIntelXeonE54617Catalog(1)
	// E5-4617 has 6 extra events plus 14 renamed ones; Table I reports 14
	// "different" events within the family. Renames contribute 2 to the
	// symmetric difference (old name in A, new name in B), so assert the
	// renamed count and the extras separately.
	diff := DifferentEvents(e51650, e54617)
	if diff < 14 || diff > 40 {
		t.Errorf("intel family symmetric difference = %d, want small (renames+extras)", diff)
	}

	amd1 := NewAMDEpyc7252Catalog(1)
	amd2 := NewAMDEpyc7313PCatalog(1)
	if d := DifferentEvents(amd1, amd2); d != 0 {
		t.Errorf("amd family difference = %d, want 0", d)
	}
}

func TestCatalogTypeDistribution(t *testing.T) {
	// Paper Table II: AMD EPYC 7252 is dominated by tracepoints (87.17%);
	// Intel by "other" events (54.40%).
	amd := NewAMDEpyc7252Catalog(1)
	counts := amd.TypeCounts()
	tFrac := float64(counts[TypeTracepoint]) / float64(amd.Size())
	if math.Abs(tFrac-0.8717) > 0.01 {
		t.Errorf("amd tracepoint fraction = %.4f, want ~0.8717", tFrac)
	}
	intel := NewIntelXeonE51650Catalog(1)
	ic := intel.TypeCounts()
	oFrac := float64(ic[TypeOther]) / float64(intel.Size())
	if math.Abs(oFrac-0.5440) > 0.01 {
		t.Errorf("intel other fraction = %.4f, want ~0.5440", oFrac)
	}
}

func TestGuestVisibleDistribution(t *testing.T) {
	// Paper Table II brackets: after warm-up only H, HC, most R and a few
	// T events remain; S and O vanish entirely.
	for _, cat := range []*Catalog{NewIntelXeonE51650Catalog(1), NewAMDEpyc7252Catalog(1)} {
		vis := cat.GuestVisibleCounts()
		all := cat.TypeCounts()
		if vis[TypeHardware] != all[TypeHardware] {
			t.Errorf("%s: hardware events not 100%% guest visible", cat.Processor)
		}
		if vis[TypeHardwareCache] != all[TypeHardwareCache] {
			t.Errorf("%s: hardware-cache events not 100%% guest visible", cat.Processor)
		}
		if vis[TypeSoftware] != 0 || vis[TypeOther] != 0 {
			t.Errorf("%s: software/other events marked guest visible", cat.Processor)
		}
		tFrac := float64(vis[TypeTracepoint]) / float64(all[TypeTracepoint])
		if tFrac > 0.12 {
			t.Errorf("%s: tracepoint visible fraction = %.4f, want small", cat.Processor, tFrac)
		}
		rFrac := float64(vis[TypeRaw]) / float64(all[TypeRaw])
		if rFrac < 0.85 {
			t.Errorf("%s: raw visible fraction = %.4f, want high", cat.Processor, rFrac)
		}
	}
}

func TestNamedEventsPresent(t *testing.T) {
	cat := NewAMDEpyc7252Catalog(1)
	for _, name := range []string{
		"RETIRED_UOPS", "LS_DISPATCH", "MAB_ALLOCATION_BY_PIPE",
		"DATA_CACHE_REFILLS_FROM_SYSTEM", "HW_CACHE_L1D:WRITE",
		"MEM_LOAD_UOPS_RETIRED:L1_HIT", "RETIRED_MMX_FP_INSTRUCTIONS:SSE_INSTR",
	} {
		if _, ok := cat.ByName(name); !ok {
			t.Errorf("catalog missing named event %q", name)
		}
	}
}

func TestCatalogByProcessor(t *testing.T) {
	cat, err := CatalogByProcessor("AMD EPYC 7252", 1)
	if err != nil || cat.Processor != "AMD EPYC 7252" {
		t.Fatalf("CatalogByProcessor: %v", err)
	}
	if _, err := CatalogByProcessor("Broken CPU 9000", 1); err == nil {
		t.Error("unknown processor did not error")
	}
}

func TestCatalogDeterministic(t *testing.T) {
	a := NewAMDEpyc7252Catalog(9)
	b := NewAMDEpyc7252Catalog(9)
	if a.Size() != b.Size() {
		t.Fatal("sizes differ")
	}
	for i := range a.Events {
		if a.Events[i].Name != b.Events[i].Name ||
			a.Events[i].GuestVisible != b.Events[i].GuestVisible ||
			len(a.Events[i].Terms) != len(b.Events[i].Terms) {
			t.Fatalf("event %d differs between identical seeds", i)
		}
	}
}

func TestEventValueDerivation(t *testing.T) {
	cat := NewAMDEpyc7252Catalog(1)
	var ctrs microarch.Counters
	ctrs.UopsRetired = 100
	ctrs.LoadsDisp = 30
	ctrs.StoresDisp = 20
	ctrs.MABAllocations = 7
	ctrs.RefillsFromSystem = 5
	ctrs.L1DWrites = 20
	ctrs.L1DAccesses = 50
	ctrs.L1DMisses = 7
	ctrs.SSEOps = 11
	vec := ctrs.Vector()
	for name, want := range map[string]float64{
		"RETIRED_UOPS":                          100,
		"LS_DISPATCH":                           50,
		"MAB_ALLOCATION_BY_PIPE":                7,
		"DATA_CACHE_REFILLS_FROM_SYSTEM":        5,
		"HW_CACHE_L1D:WRITE":                    20,
		"MEM_LOAD_UOPS_RETIRED:L1_HIT":          43,
		"RETIRED_MMX_FP_INSTRUCTIONS:SSE_INSTR": 11,
	} {
		e := cat.MustByName(name)
		if got := e.Value(vec); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

func TestEventValueNonNegative(t *testing.T) {
	e := &Event{Terms: []Term{{Signal: sigL1DAccesses, Weight: 1}, {Signal: sigL1DMisses, Weight: -2}}}
	var ctrs microarch.Counters
	ctrs.L1DAccesses = 1
	ctrs.L1DMisses = 5
	if v := e.Value(ctrs.Vector()); v != 0 {
		t.Errorf("value = %v, want clamped 0", v)
	}
}

// execCore builds a core and runs n loads to move counters.
func execCore(t *testing.T, n int) *microarch.Core {
	t.Helper()
	core := microarch.NewCore(0, microarch.DefaultCoreConfig(), nil)
	ctx := microarch.NewScratchContext(0x10000)
	res := isa.Cleanup(isa.SpecAMDEpyc(1), isa.AMDEpycFeatures())
	var load isa.Variant
	for _, v := range res.Legal {
		if v.Class == isa.ClassLoad {
			load = v
			break
		}
	}
	for i := 0; i < n; i++ {
		if err := core.Execute(load, ctx); err != nil {
			t.Fatal(err)
		}
	}
	return core
}

func TestPMUProgramAndRead(t *testing.T) {
	core := microarch.NewCore(0, microarch.DefaultCoreConfig(), nil)
	pmu := NewPMU(core, nil) // noise-free
	cat := NewAMDEpyc7252Catalog(1)
	ev := cat.MustByName("RETIRED_UOPS")
	if err := pmu.Program(0, ev); err != nil {
		t.Fatal(err)
	}
	ctx := microarch.NewScratchContext(0x20000)
	res := isa.Cleanup(isa.SpecAMDEpyc(1), isa.AMDEpycFeatures())
	var alu isa.Variant
	for _, v := range res.Legal {
		if v.Class == isa.ClassALU && v.Uops == 1 {
			alu = v
			break
		}
	}
	for i := 0; i < 25; i++ {
		if err := core.Execute(alu, ctx); err != nil {
			t.Fatal(err)
		}
	}
	v, err := pmu.RDPMC(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 25 {
		t.Errorf("RETIRED_UOPS = %v, want 25", v)
	}
}

func TestPMUReset(t *testing.T) {
	core := execCore(t, 10)
	pmu := NewPMU(core, nil)
	cat := NewAMDEpyc7252Catalog(1)
	if err := pmu.Program(1, cat.MustByName("LS_DISPATCH")); err != nil {
		t.Fatal(err)
	}
	// Counter was programmed after activity: reads zero.
	if v, _ := pmu.RDPMC(1); v != 0 {
		t.Errorf("freshly programmed counter = %v, want 0", v)
	}
	if err := pmu.Reset(1); err != nil {
		t.Fatal(err)
	}
	if v, _ := pmu.RDPMC(1); v != 0 {
		t.Errorf("after reset = %v, want 0", v)
	}
}

func TestPMUErrors(t *testing.T) {
	core := microarch.NewCore(0, microarch.DefaultCoreConfig(), nil)
	pmu := NewPMU(core, nil)
	if err := pmu.Program(-1, &Event{}); err == nil {
		t.Error("negative slot accepted")
	}
	if err := pmu.Program(NumCounterRegisters, &Event{}); err == nil {
		t.Error("out-of-range slot accepted")
	}
	if err := pmu.Program(0, nil); err != ErrNilEvent {
		t.Errorf("nil event error = %v", err)
	}
	if _, err := pmu.RDPMC(2); err != ErrSlotEmpty {
		t.Errorf("empty slot read error = %v", err)
	}
	if err := pmu.Reset(3); err != ErrSlotEmpty {
		t.Errorf("empty slot reset error = %v", err)
	}
}

func TestPMUNoiseBounded(t *testing.T) {
	core := execCore(t, 1000)
	pmu := NewPMU(core, rng.New(5).Split("pmu"))
	cat := NewAMDEpyc7252Catalog(1)
	ev := cat.MustByName("RETIRED_UOPS")
	if err := pmu.Program(0, ev); err != nil {
		t.Fatal(err)
	}
	// The counter was programmed at the current state, so the true
	// accumulated count is 0; only the noise floor remains visible.
	_ = ev
	var worst float64
	for i := 0; i < 50; i++ {
		v, err := pmu.RDPMC(0)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(v); d > worst {
			worst = d
		}
	}
	if worst > 60 {
		t.Errorf("noise excursion = %v, want bounded", worst)
	}
}

func TestPerfSessionExactWithoutMultiplexing(t *testing.T) {
	cat := NewAMDEpyc7252Catalog(1)
	events := []*Event{cat.MustByName("RETIRED_UOPS"), cat.MustByName("LS_DISPATCH")}
	s, err := OpenPerfSession(PerfAttr{Pid: 1, ExcludeKernel: true}, events, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Multiplexed() {
		t.Error("2 events should not multiplex")
	}
	var ctrs microarch.Counters
	s.Tick(ctrs) // establish baseline
	for i := 0; i < 10; i++ {
		ctrs.UopsRetired += 5
		ctrs.LoadsDisp += 2
		s.Tick(ctrs)
	}
	uops, _ := s.Read(0)
	ls, _ := s.Read(1)
	if uops != 50 || ls != 20 {
		t.Errorf("reads = %v/%v, want 50/20", uops, ls)
	}
}

func TestPerfSessionMultiplexScaling(t *testing.T) {
	cat := NewAMDEpyc7252Catalog(1)
	// 8 events over 4 registers: 2 groups, each live half the time.
	var events []*Event
	for _, name := range []string{"RETIRED_UOPS", "LS_DISPATCH",
		"MAB_ALLOCATION_BY_PIPE", "DATA_CACHE_REFILLS_FROM_SYSTEM",
		"HW_CACHE_L1D:WRITE", "HW_CACHE_L1D:READ", "HW_CACHE_L1D:MISS",
		"RETIRED_INSTRUCTIONS"} {
		events = append(events, cat.MustByName(name))
	}
	s, err := OpenPerfSession(PerfAttr{}, events, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Multiplexed() {
		t.Fatal("8 events must multiplex over 4 registers")
	}
	var ctrs microarch.Counters
	s.Tick(ctrs)
	const ticks = 1000
	for i := 0; i < ticks; i++ {
		ctrs.UopsRetired += 10
		ctrs.Instructions += 8
		s.Tick(ctrs)
	}
	uops, _ := s.Read(0)
	instr, _ := s.Read(7)
	// Scaled estimates should approximate the full-window truth.
	if math.Abs(uops-10*ticks) > 0.02*10*ticks {
		t.Errorf("multiplexed uops estimate = %v, want ~%v", uops, 10*ticks)
	}
	if math.Abs(instr-8*ticks) > 0.02*8*ticks {
		t.Errorf("multiplexed instr estimate = %v, want ~%v", instr, 8*ticks)
	}
}

func TestPerfSessionErrors(t *testing.T) {
	if _, err := OpenPerfSession(PerfAttr{}, nil, nil); err != ErrNoEvents {
		t.Errorf("empty session error = %v", err)
	}
	if _, err := OpenPerfSession(PerfAttr{}, []*Event{nil}, nil); err == nil {
		t.Error("nil event accepted")
	}
	cat := NewAMDEpyc7252Catalog(1)
	s, err := OpenPerfSession(PerfAttr{}, []*Event{cat.MustByName("RETIRED_UOPS")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(5); err == nil {
		t.Error("out-of-range read accepted")
	}
}

func TestPerfExcludeKernelReducesNoise(t *testing.T) {
	cat := NewAMDEpyc7252Catalog(1)
	spread := func(exclude bool) float64 {
		s, err := OpenPerfSession(PerfAttr{ExcludeKernel: exclude},
			[]*Event{cat.MustByName("RETIRED_UOPS")}, rng.New(7).Split("perfnoise"))
		if err != nil {
			t.Fatal(err)
		}
		var ctrs microarch.Counters
		s.Tick(ctrs)
		var sumSq float64
		const ticks = 400
		for i := 0; i < ticks; i++ {
			ctrs.UopsRetired += 1000
			s.Tick(ctrs)
			v, _ := s.Read(0)
			expect := float64(1000 * (i + 1))
			d := v - expect
			sumSq += d * d
		}
		return math.Sqrt(sumSq / ticks)
	}
	noisy := spread(false)
	quiet := spread(true)
	if quiet >= noisy {
		t.Errorf("exclude_kernel rmse %v >= inclusive rmse %v", quiet, noisy)
	}
}

func TestMultiplexingLosesBurstAccuracy(t *testing.T) {
	// Paper §V-B monitors at most 4 events concurrently because perf's
	// time multiplexing "would affect the value accuracy". With a bursty
	// signal, the multiplexed estimate scales whatever slice it happened
	// to observe, so its error must exceed the dedicated session's.
	cat := NewAMDEpyc7252Catalog(1)
	uops := cat.MustByName("RETIRED_UOPS")
	// Dedicated session: 1 event over 4 registers.
	direct, err := OpenPerfSession(PerfAttr{}, []*Event{uops}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Multiplexed session: the same event among 8.
	events := []*Event{uops}
	for i := 0; i < 7; i++ {
		events = append(events, cat.Events[30+i])
	}
	muxed, err := OpenPerfSession(PerfAttr{}, events, nil)
	if err != nil {
		t.Fatal(err)
	}

	r := rng.New(99).Split("bursty")
	var ctrs microarch.Counters
	direct.Tick(ctrs)
	muxed.Tick(ctrs)
	var truth float64
	const ticks = 400
	for i := 0; i < ticks; i++ {
		// Bursty activity: quiet most ticks, heavy bursts occasionally.
		var inc uint64
		if r.Float64() < 0.1 {
			inc = 5000
		} else {
			inc = 10
		}
		ctrs.UopsRetired += inc
		truth += float64(inc)
		direct.Tick(ctrs)
		muxed.Tick(ctrs)
	}
	dv, err := direct.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	mv, err := muxed.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	directErr := math.Abs(dv - truth)
	muxedErr := math.Abs(mv - truth)
	if directErr > truth*0.001 {
		t.Errorf("dedicated session error %v on truth %v", directErr, truth)
	}
	if muxedErr <= directErr {
		t.Errorf("multiplexed error %v not above dedicated error %v", muxedErr, directErr)
	}
}
