package hpc

import (
	"errors"
	"testing"

	"github.com/repro/aegis/internal/faultinject"
	"github.com/repro/aegis/internal/microarch"
)

func pmuUnderFaults(t *testing.T, cfg faultinject.Config) (*PMU, *microarch.Core) {
	t.Helper()
	core := microarch.NewCore(0, microarch.DefaultCoreConfig(), nil)
	pmu := NewPMU(core, nil)
	cat := NewAMDEpyc7252Catalog(1)
	if err := pmu.Program(0, cat.MustByName("RETIRED_UOPS")); err != nil {
		t.Fatal(err)
	}
	pmu.SetFaults(faultinject.New(cfg).Handle("test-pmu"))
	return pmu, core
}

func TestRDPMCReadFault(t *testing.T) {
	pmu, _ := pmuUnderFaults(t, faultinject.Config{Seed: 1, PMUReadErrorRate: 1})
	if _, err := pmu.RDPMC(0); !errors.Is(err, ErrReadFault) {
		t.Fatalf("RDPMC error = %v, want ErrReadFault", err)
	}
	// Slot errors still take precedence over injected read faults.
	if _, err := pmu.RDPMC(1); !errors.Is(err, ErrSlotEmpty) {
		t.Fatalf("empty-slot error = %v, want ErrSlotEmpty", err)
	}
	if _, err := pmu.RDPMC(99); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("bad-slot error = %v, want ErrBadSlot", err)
	}
}

func TestCounterSaturationLatchesUntilProgram(t *testing.T) {
	pmu, _ := pmuUnderFaults(t, faultinject.Config{
		Seed: 2, CounterSaturationRate: 1, SaturationCap: 777,
	})
	v, err := pmu.RDPMC(0)
	if err != nil || v != 777 {
		t.Fatalf("saturated read = %v, %v; want 777", v, err)
	}
	if !pmu.Saturated(0) {
		t.Fatal("Saturated(0) = false after overflow")
	}
	// Reset does not clear the overflow latch.
	if err := pmu.Reset(0); err != nil {
		t.Fatal(err)
	}
	if v, _ := pmu.RDPMC(0); v != 777 {
		t.Fatalf("post-Reset read = %v, want latched 777", v)
	}
	if !pmu.Saturated(0) {
		t.Fatal("Reset cleared the overflow latch")
	}
	// Re-programming the slot re-arms the counter.
	cat := NewAMDEpyc7252Catalog(1)
	if err := pmu.Program(0, cat.MustByName("RETIRED_UOPS")); err != nil {
		t.Fatal(err)
	}
	if pmu.Saturated(0) {
		t.Fatal("Program did not clear the overflow latch")
	}
	pmu.SetFaults(nil) // healthy again: the re-armed counter reads normally
	if v, _ := pmu.RDPMC(0); v != 0 {
		t.Fatalf("re-armed counter = %v, want 0", v)
	}
	// Saturated on out-of-range or empty slots reports false, not panics.
	if pmu.Saturated(-1) || pmu.Saturated(99) || pmu.Saturated(1) {
		t.Error("Saturated true for invalid/empty slot")
	}
}

func TestHealthyPMUUnaffectedByNilHandle(t *testing.T) {
	core := execCore(t, 25)
	ref := NewPMU(core, nil)
	faulted := NewPMU(core, nil)
	faulted.SetFaults(nil)
	cat := NewAMDEpyc7252Catalog(1)
	for _, p := range []*PMU{ref, faulted} {
		if err := p.Program(0, cat.MustByName("LS_DISPATCH")); err != nil {
			t.Fatal(err)
		}
	}
	a, errA := ref.RDPMC(0)
	b, errB := faulted.RDPMC(0)
	if errA != nil || errB != nil || a != b {
		t.Fatalf("nil fault handle changed reads: %v/%v vs %v/%v", a, errA, b, errB)
	}
}

// muxSession opens a 5-event (hence multiplexed) noise-free session.
func muxSession(t *testing.T) *PerfSession {
	t.Helper()
	cat := NewAMDEpyc7252Catalog(1)
	var events []*Event
	for _, name := range []string{"RETIRED_UOPS", "LS_DISPATCH",
		"MAB_ALLOCATION_BY_PIPE", "DATA_CACHE_REFILLS_FROM_SYSTEM",
		"HW_CACHE_L1D:WRITE"} {
		events = append(events, cat.MustByName(name))
	}
	s, err := OpenPerfSession(PerfAttr{Pid: 1}, events, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Multiplexed() {
		t.Fatal("5 events on 4 registers must multiplex")
	}
	return s
}

func TestMultiplexStarvationLosesSamples(t *testing.T) {
	healthy, starved := muxSession(t), muxSession(t)
	starved.SetFaults(faultinject.New(faultinject.Config{
		Seed: 3, MultiplexStarvationRate: 1,
	}).Handle("test-perf"))

	var ctrs microarch.Counters
	healthy.Tick(ctrs)
	starved.Tick(ctrs)
	for i := 0; i < 12; i++ {
		ctrs.UopsRetired += 10
		healthy.Tick(ctrs)
		starved.Tick(ctrs)
	}
	if h, err := healthy.Read(0); err != nil || h <= 0 {
		t.Fatalf("healthy estimate = %v, %v", h, err)
	}
	// A fully starved session never schedules any group: every sample is
	// lost and the estimate collapses to zero.
	if v, _ := starved.Read(0); v != 0 {
		t.Fatalf("fully starved estimate = %v, want 0", v)
	}
}

func TestPartialStarvationKeepsEstimateUsable(t *testing.T) {
	s := muxSession(t)
	s.SetFaults(faultinject.New(faultinject.Config{
		Seed: 4, MultiplexStarvationRate: 0.5,
	}).Handle("test-perf"))
	var ctrs microarch.Counters
	s.Tick(ctrs)
	const ticks = 400
	for i := 0; i < ticks; i++ {
		ctrs.UopsRetired += 10
		s.Tick(ctrs)
	}
	// Starvation loses samples but total/live scaling still extrapolates
	// from the slices that were observed: the estimate stays non-negative
	// and within an order of magnitude of truth.
	v, err := s.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 || v > 10*ticks*10 {
		t.Fatalf("half-starved estimate = %v, want usable (truth %d)", v, 10*ticks)
	}
}

func TestStarvationScheduleDeterministic(t *testing.T) {
	run := func() []float64 {
		s := muxSession(t)
		s.SetFaults(faultinject.New(faultinject.Config{
			Seed: 5, MultiplexStarvationRate: 0.3,
		}).Handle("test-perf"))
		var ctrs microarch.Counters
		s.Tick(ctrs)
		for i := 0; i < 100; i++ {
			ctrs.UopsRetired += 7
			ctrs.LoadsDisp += 3
			s.Tick(ctrs)
		}
		return s.ReadAll()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d estimate differs across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}
