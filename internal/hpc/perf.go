package hpc

import (
	"errors"
	"fmt"

	"github.com/repro/aegis/internal/faultinject"
	"github.com/repro/aegis/internal/microarch"
	"github.com/repro/aegis/internal/rng"
	"github.com/repro/aegis/internal/telemetry"
)

// Perf-session metrics: sampling ticks and counter-register multiplex
// rotations (rotations only tick when the session has more events than
// registers, the accuracy-loss regime the paper warns about).
var (
	mPerfTicks          = telemetry.C("hpc_perf_ticks_total")
	mMultiplexRotations = telemetry.C("hpc_multiplex_rotations_total")
)

// PerfAttr mirrors the perf_event_open attributes the paper configures:
// pid-scoped monitoring and exclude_kernel to suppress host-kernel noise
// (paper §V-B "Monitoring setup").
type PerfAttr struct {
	// Pid restricts monitoring to one process/VM; -1 means system wide.
	Pid int
	// ExcludeKernel removes host-kernel contributions from the counts,
	// which substantially reduces measurement noise.
	ExcludeKernel bool
}

// ErrNoEvents is returned when a session is opened without events.
var ErrNoEvents = errors.New("hpc: perf session needs at least one event")

// PerfSession is a perf_event_open-like monitoring session over any number
// of events. When more events are requested than the core has counter
// registers, the session time-multiplexes register groups across ticks and
// scales the measured counts by total/active time — the same estimation
// perf performs, with the same accuracy loss the paper warns about.
type PerfSession struct {
	attr   PerfAttr
	events []*Event
	noise  *rng.Source
	faults *faultinject.Handle

	groups     [][]int // event indices per multiplex group
	activeGrp  int
	ticksTotal []float64 // per event: ticks elapsed while session open
	ticksLive  []float64 // per event: ticks its group was scheduled
	counts     []float64 // per event: raw accumulated count while live
	last       microarch.Counters
	started    bool
	vec        []float64 // scratch: per-tick delta flattening, reused
}

// OpenPerfSession opens a monitoring session over the given events.
func OpenPerfSession(attr PerfAttr, events []*Event, noise *rng.Source) (*PerfSession, error) {
	if len(events) == 0 {
		return nil, ErrNoEvents
	}
	for i, e := range events {
		if e == nil {
			return nil, fmt.Errorf("%w (index %d)", ErrNilEvent, i)
		}
	}
	s := &PerfSession{
		attr:       attr,
		events:     append([]*Event(nil), events...),
		noise:      noise,
		ticksTotal: make([]float64, len(events)),
		ticksLive:  make([]float64, len(events)),
		counts:     make([]float64, len(events)),
	}
	for start := 0; start < len(events); start += NumCounterRegisters {
		end := start + NumCounterRegisters
		if end > len(events) {
			end = len(events)
		}
		group := make([]int, 0, end-start)
		for i := start; i < end; i++ {
			group = append(group, i)
		}
		s.groups = append(s.groups, group)
	}
	return s, nil
}

// Multiplexed reports whether the session needs time multiplexing.
func (s *PerfSession) Multiplexed() bool { return len(s.groups) > 1 }

// SetFaults attaches a fault-injection schedule to this session's tick
// path. A nil handle (the default) is the healthy substrate.
func (s *PerfSession) SetFaults(h *faultinject.Handle) { s.faults = h }

// Tick advances the session by one sampling tick given the monitored
// core's current raw counters. The active register group accumulates its
// events' deltas; groups rotate round-robin per tick.
func (s *PerfSession) Tick(now microarch.Counters) {
	if !s.started {
		s.last = now
		s.started = true
		return
	}
	delta := now.Sub(s.last)
	s.last = now
	s.vec = delta.VectorInto(s.vec)
	vec := s.vec
	mPerfTicks.Inc()
	if len(s.groups) > 1 {
		mMultiplexRotations.Inc()
	}

	for i := range s.events {
		s.ticksTotal[i]++
	}
	if s.faults.MultiplexStarved() {
		// The active group got no PMC time this tick: its samples are lost
		// and rotation stalls, while total time keeps advancing — so the
		// total/live scaling below degrades exactly the way perf's does
		// when a group is starved.
		return
	}
	for _, idx := range s.groups[s.activeGrp] {
		e := s.events[idx]
		v := e.Value(vec)
		if s.noise != nil && e.NoiseSigma > 0 {
			sigma := e.NoiseSigma
			if s.attr.ExcludeKernel {
				sigma *= 0.4 // kernel exclusion removes most interference
			}
			v += s.noise.Gaussian(0, sigma*v+0.3)
			if v < 0 {
				v = 0
			}
		}
		s.counts[idx] += v
		s.ticksLive[idx]++
	}
	s.activeGrp = (s.activeGrp + 1) % len(s.groups)
}

// Read returns the scaled count estimate for the i-th event: the raw count
// multiplied by total/live time, exactly as the perf subsystem extrapolates
// multiplexed counters.
func (s *PerfSession) Read(i int) (float64, error) {
	if i < 0 || i >= len(s.events) {
		return 0, fmt.Errorf("hpc: event index %d out of range", i)
	}
	if s.ticksLive[i] == 0 {
		return 0, nil
	}
	return s.counts[i] * s.ticksTotal[i] / s.ticksLive[i], nil
}

// ReadAll returns the scaled estimates for every event, in open order.
func (s *PerfSession) ReadAll() []float64 {
	return s.ReadAllInto(nil)
}

// ReadAllInto writes the scaled estimates for every event into dst, in
// open order, reusing dst's backing array when it has the capacity. The
// filled slice is returned.
func (s *PerfSession) ReadAllInto(dst []float64) []float64 {
	if cap(dst) < len(s.events) {
		dst = make([]float64, len(s.events))
	}
	dst = dst[:len(s.events)]
	for i := range s.events {
		v, err := s.Read(i)
		if err != nil {
			v = 0
		}
		dst[i] = v
	}
	return dst
}

// Events returns the monitored events in open order.
func (s *PerfSession) Events() []*Event {
	return append([]*Event(nil), s.events...)
}
