package hpc

import (
	"math"
	"testing"

	"github.com/repro/aegis/internal/isa"
	"github.com/repro/aegis/internal/microarch"
	"github.com/repro/aegis/internal/rng"
)

// twinPMU builds a (core, PMU) pair with a fixed noise seed, programs the
// named events into the given slots, and runs the same instruction stream —
// so two calls produce bit-identical counter and noise state.
func twinPMU(t *testing.T, slots map[int]string) *PMU {
	t.Helper()
	core := microarch.NewCore(0, microarch.DefaultCoreConfig(), nil)
	pmu := NewPMU(core, rng.New(99).Split("noise"))
	cat := NewAMDEpyc7252Catalog(1)
	for slot, name := range slots {
		if err := pmu.Program(slot, cat.MustByName(name)); err != nil {
			t.Fatal(err)
		}
	}
	legal := isa.Cleanup(isa.SpecAMDEpyc(1), isa.AMDEpycFeatures()).Legal
	ctx := microarch.NewScratchContext(0x2000_0000)
	for rep := 0; rep < 3; rep++ {
		if err := core.ExecuteSequence(legal[:8], ctx); err != nil {
			t.Fatal(err)
		}
	}
	return pmu
}

// TestReadAllMatchesReadAllInto pins the map-returning compatibility
// wrapper bit-identically against the dense bulk read: same values for
// programmed slots (including the noise stream), NaN sentinels (dense) /
// absent keys (map) for unprogrammed ones.
func TestReadAllMatchesReadAllInto(t *testing.T) {
	slots := map[int]string{0: "RETIRED_UOPS", 2: "LS_DISPATCH"}
	// Two identically-built PMUs: reads consume the noise stream, so the
	// two forms must be compared across twins, not sequentially on one.
	mapped := twinPMU(t, slots).ReadAll()
	dense := twinPMU(t, slots).ReadAllInto(nil)

	if len(dense) != NumCounterRegisters {
		t.Fatalf("ReadAllInto returned %d values, want %d", len(dense), NumCounterRegisters)
	}
	if len(mapped) != len(slots) {
		t.Fatalf("ReadAll returned %d entries, want %d: %v", len(mapped), len(slots), mapped)
	}
	for slot, name := range slots {
		mv, ok := mapped[name]
		if !ok {
			t.Fatalf("ReadAll missing programmed event %q", name)
		}
		if math.Float64bits(mv) != math.Float64bits(dense[slot]) {
			t.Errorf("slot %d (%s): ReadAll = %v, ReadAllInto = %v", slot, name, mv, dense[slot])
		}
	}
	for _, slot := range []int{1, 3} {
		if !math.IsNaN(dense[slot]) {
			t.Errorf("unprogrammed slot %d: ReadAllInto = %v, want NaN", slot, dense[slot])
		}
	}
}

// TestReadAllIntoReusesBuffer verifies the dense read fills a caller buffer
// in place when it has capacity, and allocates only when it does not.
func TestReadAllIntoReusesBuffer(t *testing.T) {
	pmu := twinPMU(t, map[int]string{0: "RETIRED_UOPS"})
	buf := make([]float64, 0, NumCounterRegisters)
	out := pmu.ReadAllInto(buf)
	if &out[0] != &buf[:1][0] {
		t.Error("ReadAllInto did not reuse the caller's backing array")
	}
	short := make([]float64, 0, 1)
	out2 := pmu.ReadAllInto(short)
	if len(out2) != NumCounterRegisters {
		t.Fatalf("ReadAllInto on short buffer returned %d values", len(out2))
	}
}
