// Package hpc simulates the hardware-performance-counter subsystem of a
// processor: a large per-model catalog of countable events (hardware,
// software, hardware-cache, tracepoint, raw-CPU and other events, matching
// the paper's Table II taxonomy), a per-core PMU with four programmable
// counter registers read via an RDPMC analog, and a perf_event_open-like
// monitoring session with time multiplexing when more events are requested
// than registers exist.
//
// Events derive their counts from the raw micro-event signals of a
// microarch.Core, so they respond mechanistically to executed instructions.
// Reads carry measurement noise (paper challenge C2): external interference
// means HPCs never count perfectly.
//
// Concurrency contract: a Catalog and its Events are immutable after
// construction and safe for concurrent reads, which is what lets the
// parallel fuzzing and profiling pipelines share one catalog across worker
// shards. A PMU (and the Core it reads) is single-goroutine state — each
// worker must own a private PMU/Core/bench, never share one across shards.
package hpc

import (
	"fmt"
	"sort"
	"strings"

	"github.com/repro/aegis/internal/microarch"
	"github.com/repro/aegis/internal/rng"
)

// EventType is the perf-subsystem taxonomy of paper Table II.
type EventType int

// Event types.
const (
	TypeHardware      EventType = iota + 1 // H
	TypeSoftware                           // S
	TypeHardwareCache                      // HC
	TypeTracepoint                         // T
	TypeRaw                                // R
	TypeOther                              // O
)

var typeCodes = map[EventType]string{
	TypeHardware:      "H",
	TypeSoftware:      "S",
	TypeHardwareCache: "HC",
	TypeTracepoint:    "T",
	TypeRaw:           "R",
	TypeOther:         "O",
}

// Code returns the short code used in the paper's tables.
func (t EventType) Code() string {
	if c, ok := typeCodes[t]; ok {
		return c
	}
	return fmt.Sprintf("type(%d)", int(t))
}

func (t EventType) String() string { return t.Code() }

// AllEventTypes lists the types in table order.
func AllEventTypes() []EventType {
	return []EventType{TypeHardware, TypeSoftware, TypeHardwareCache,
		TypeTracepoint, TypeRaw, TypeOther}
}

// Term is one weighted raw signal in an event's derivation formula.
type Term struct {
	Signal int // index into microarch.Counters.Vector()
	Weight float64
}

// Event is one countable performance event.
type Event struct {
	ID   int
	Name string
	Type EventType
	// GuestVisible events can change in response to guest-VM activity;
	// host-only events (most tracepoints, software and "other" events)
	// never do, which is what the warm-up profiling filters on.
	GuestVisible bool
	// Terms is the derivation formula over raw core signals. Host-only
	// events have no terms.
	Terms []Term
	// NoiseSigma is the relative measurement noise of a read (fraction of
	// the true count).
	NoiseSigma float64
}

// Value computes the true (noise-free) event count for a raw-signal delta
// vector.
func (e *Event) Value(signals []float64) float64 {
	var v float64
	for _, t := range e.Terms {
		if t.Signal >= 0 && t.Signal < len(signals) {
			v += t.Weight * signals[t.Signal]
		}
	}
	if v < 0 {
		v = 0
	}
	return v
}

// Catalog is the full event list of one processor model.
type Catalog struct {
	Processor string
	Family    string
	Events    []*Event

	byName map[string]*Event
}

// signal indices into microarch.Counters.Vector(); kept in sync with
// microarch.SignalNames by TestSignalIndices.
const (
	sigCycles = iota
	sigInstructions
	sigUops
	sigLoadsDisp
	sigStoresDisp
	sigL1DAccesses
	sigL1DMisses
	sigL1DWrites
	sigRefillsL2
	sigRefillsSystem
	sigL1IAccesses
	sigL1IMisses
	sigL2Accesses
	sigL2Misses
	sigMABAlloc
	sigDTLBAccesses
	sigDTLBMisses
	sigITLBMisses
	sigBranchesRet
	sigBranchMispred
	sigX87Ops
	sigSSEOps
	sigAVXOps
	sigMulOps
	sigDivOps
	sigBitOps
	sigStringOps
	sigCryptoOps
	sigPrefetches
	sigCacheFlushes
	sigFences
	sigSerializeOps
	sigStackOps
	sigMemReads
	sigMemWrites
	sigPageFaults
	sigInterrupts
	sigCtxSwitches
)

// Named events the paper uses directly. They appear in every catalog with
// fixed derivation formulas so experiments can reference them by name.
var namedHardwareEvents = []struct {
	name  string
	typ   EventType
	terms []Term
}{
	{"RETIRED_UOPS", TypeRaw, []Term{{sigUops, 1}}},
	{"LS_DISPATCH", TypeRaw, []Term{{sigLoadsDisp, 1}, {sigStoresDisp, 1}}},
	{"MAB_ALLOCATION_BY_PIPE", TypeRaw, []Term{{sigMABAlloc, 1}}},
	{"DATA_CACHE_REFILLS_FROM_SYSTEM", TypeRaw, []Term{{sigRefillsSystem, 1}}},
	{"HW_CACHE_L1D:WRITE", TypeHardwareCache, []Term{{sigL1DWrites, 1}}},
	{"HW_CACHE_L1D:READ", TypeHardwareCache, []Term{{sigL1DAccesses, 1}, {sigL1DWrites, -1}}},
	{"HW_CACHE_L1D:MISS", TypeHardwareCache, []Term{{sigL1DMisses, 1}}},
	{"MEM_LOAD_UOPS_RETIRED:L1_HIT", TypeRaw, []Term{{sigL1DAccesses, 1}, {sigL1DMisses, -1}}},
	{"RETIRED_MMX_FP_INSTRUCTIONS:SSE_INSTR", TypeRaw, []Term{{sigSSEOps, 1}}},
	{"RETIRED_INSTRUCTIONS", TypeHardware, []Term{{sigInstructions, 1}}},
	{"CPU_CYCLES", TypeHardware, []Term{{sigCycles, 1}}},
	{"BRANCH_INSTRUCTIONS_RETIRED", TypeHardware, []Term{{sigBranchesRet, 1}}},
	{"BRANCH_MISSES_RETIRED", TypeHardware, []Term{{sigBranchMispred, 1}}},
	{"L2_CACHE_ACCESSES", TypeRaw, []Term{{sigL2Accesses, 1}}},
	{"L2_CACHE_MISSES", TypeRaw, []Term{{sigL2Misses, 1}}},
	{"DTLB_MISSES", TypeRaw, []Term{{sigDTLBMisses, 1}}},
	{"RETIRED_X87_FP_OPS", TypeRaw, []Term{{sigX87Ops, 1}}},
	{"RETIRED_AVX_OPS", TypeRaw, []Term{{sigAVXOps, 1}}},
	{"DIV_OP_COUNT", TypeRaw, []Term{{sigDivOps, 1}}},
	{"PREFETCH_INSTRS_DISPATCHED", TypeRaw, []Term{{sigPrefetches, 1}}},
	{"CACHE_LINE_FLUSHES", TypeRaw, []Term{{sigCacheFlushes, 1}}},
	{"SERIALIZING_OPS", TypeRaw, []Term{{sigSerializeOps, 1}}},
}

// typeMix is the per-type event count plan of a catalog.
type typeMix struct {
	h, s, hc, t, r, o int
	// guest-visible fractions per type (paper Table II brackets).
	tVisible float64
	rVisible float64
}

// CatalogSpec identifies one of the four evaluated processor models.
type CatalogSpec struct {
	Processor string
	Family    string
	mix       typeMix
	// mutateFrom introduces n event-name differences relative to the base
	// family member (paper Table I: E5-4617 differs from E5-1650 in 14
	// events; EPYC 7313P differs from 7252 in 0).
	mutations int
}

// Processor model specs. Counts follow paper Tables I and II:
// Intel Xeon E5-1650 has 6166 events (H .39%, S .31%, HC 1.00%, T 36.15%,
// R 7.75%, O 54.40%); AMD EPYC 7252 has 1903 events (H 1.26%, S 1.00%,
// HC 3.26%, T 87.17%, R 5.20%, O 2.11%).
var (
	specIntelE51650 = CatalogSpec{
		Processor: "Intel Xeon E5-1650", Family: "intel-e5",
		mix: typeMix{h: 24, s: 19, hc: 62, t: 2229, r: 478, o: 3354,
			tVisible: 0.0798, rVisible: 0.9937},
	}
	specIntelE54617 = CatalogSpec{
		Processor: "Intel Xeon E5-4617", Family: "intel-e5",
		mix: typeMix{h: 24, s: 19, hc: 62, t: 2233, r: 480, o: 3354,
			tVisible: 0.0798, rVisible: 0.9937},
		mutations: 14,
	}
	specAMD7252 = CatalogSpec{
		Processor: "AMD EPYC 7252", Family: "amd-epyc",
		mix: typeMix{h: 24, s: 19, hc: 62, t: 1659, r: 99, o: 40,
			tVisible: 0.0157, rVisible: 0.9183},
	}
	specAMD7313P = CatalogSpec{
		Processor: "AMD EPYC 7313P", Family: "amd-epyc",
		mix: typeMix{h: 24, s: 19, hc: 62, t: 1659, r: 99, o: 40,
			tVisible: 0.0157, rVisible: 0.9183},
	}
)

// NewIntelXeonE51650Catalog builds the Intel E5-1650 catalog.
func NewIntelXeonE51650Catalog(seed uint64) *Catalog { return buildCatalog(specIntelE51650, seed) }

// NewIntelXeonE54617Catalog builds the Intel E5-4617 catalog.
func NewIntelXeonE54617Catalog(seed uint64) *Catalog { return buildCatalog(specIntelE54617, seed) }

// NewAMDEpyc7252Catalog builds the AMD EPYC 7252 catalog.
func NewAMDEpyc7252Catalog(seed uint64) *Catalog { return buildCatalog(specAMD7252, seed) }

// NewAMDEpyc7313PCatalog builds the AMD EPYC 7313P catalog.
func NewAMDEpyc7313PCatalog(seed uint64) *Catalog { return buildCatalog(specAMD7313P, seed) }

// CatalogByProcessor resolves a processor model string (as reported by
// attestation) to its catalog constructor.
func CatalogByProcessor(processor string, seed uint64) (*Catalog, error) {
	switch processor {
	case specIntelE51650.Processor:
		return NewIntelXeonE51650Catalog(seed), nil
	case specIntelE54617.Processor:
		return NewIntelXeonE54617Catalog(seed), nil
	case specAMD7252.Processor:
		return NewAMDEpyc7252Catalog(seed), nil
	case specAMD7313P.Processor:
		return NewAMDEpyc7313PCatalog(seed), nil
	default:
		return nil, fmt.Errorf("hpc: unknown processor model %q", processor)
	}
}

// hardwareSignals are the raw signals guest-visible events may derive from.
var hardwareSignals = []int{
	sigCycles, sigInstructions, sigUops, sigLoadsDisp, sigStoresDisp,
	sigL1DAccesses, sigL1DMisses, sigL1DWrites, sigRefillsL2,
	sigRefillsSystem, sigL1IAccesses, sigL1IMisses, sigL2Accesses,
	sigL2Misses, sigMABAlloc, sigDTLBAccesses, sigDTLBMisses, sigITLBMisses,
	sigBranchesRet, sigBranchMispred, sigX87Ops, sigSSEOps, sigAVXOps,
	sigMulOps, sigDivOps, sigBitOps, sigStringOps, sigCryptoOps,
	sigPrefetches, sigCacheFlushes, sigFences, sigSerializeOps, sigStackOps,
	sigMemReads, sigMemWrites,
}

// rareSignals move only for specialised instruction mixes; events derived
// exclusively from them survive the warm-up but are filtered out by
// app-specific profiling for workloads that never touch them.
var rareSignals = []int{
	sigX87Ops, sigCryptoOps, sigStringOps, sigBitOps, sigDivOps,
	sigPrefetches, sigCacheFlushes, sigFences, sigSerializeOps,
}

func buildCatalog(spec CatalogSpec, seed uint64) *Catalog {
	r := rng.New(seed).Split("hpc/" + spec.Family)
	cat := &Catalog{
		Processor: spec.Processor,
		Family:    spec.Family,
		byName:    make(map[string]*Event),
	}
	add := func(e *Event) {
		e.ID = len(cat.Events)
		cat.Events = append(cat.Events, e)
		cat.byName[e.Name] = e
	}

	// 1. Named events with fixed formulas.
	for _, n := range namedHardwareEvents {
		add(&Event{
			Name:         n.name,
			Type:         n.typ,
			GuestVisible: true,
			Terms:        append([]Term(nil), n.terms...),
			NoiseSigma:   0.015,
		})
	}

	counts := map[EventType]int{
		TypeHardware:      spec.mix.h,
		TypeSoftware:      spec.mix.s,
		TypeHardwareCache: spec.mix.hc,
		TypeTracepoint:    spec.mix.t,
		TypeRaw:           spec.mix.r,
		TypeOther:         spec.mix.o,
	}
	// Named events already consumed part of each type budget.
	for _, e := range cat.Events {
		counts[e.Type]--
	}

	// 2. Generated hardware-class events (H, HC, R): random sparse
	// formulas over hardware signals; all guest-visible except the
	// configured fraction of raw events.
	genHW := func(typ EventType, n int, prefix string, visibleFrac float64) {
		for i := 0; i < n; i++ {
			visible := r.Float64() < visibleFrac
			e := &Event{
				Name:         fmt.Sprintf("%s_%04d", prefix, i),
				Type:         typ,
				GuestVisible: visible,
				NoiseSigma:   0.01 + r.Float64()*0.03,
			}
			if visible {
				// 25% of generated events derive only from rare
				// signals, so app-specific profiling thins them out.
				pool := hardwareSignals
				if r.Float64() < 0.25 {
					pool = rareSignals
				}
				nTerms := 1 + r.Intn(3)
				seen := make(map[int]bool, nTerms)
				for t := 0; t < nTerms; t++ {
					sig := pool[r.Intn(len(pool))]
					if seen[sig] {
						continue
					}
					seen[sig] = true
					e.Terms = append(e.Terms, Term{Signal: sig, Weight: 0.2 + r.Float64()*1.3})
				}
			}
			add(e)
		}
	}
	genHW(TypeHardware, counts[TypeHardware], "HW_GENERIC", 1.0)
	genHW(TypeHardwareCache, counts[TypeHardwareCache], "HW_CACHE_GEN", 1.0)
	genHW(TypeRaw, counts[TypeRaw], "RAW_PMC", spec.mix.rVisible)

	// 3. Software events: host-kernel constructs (cpu-clock, faults seen
	// by the host), never guest-visible through SEV.
	for i := 0; i < counts[TypeSoftware]; i++ {
		add(&Event{
			Name:       fmt.Sprintf("SW_%04d", i),
			Type:       TypeSoftware,
			NoiseSigma: 0.05,
		})
	}

	// 4. Tracepoints: host kernel tracepoints; only the fraction attached
	// to VM-exit-adjacent paths reflect guest activity.
	for i := 0; i < counts[TypeTracepoint]; i++ {
		visible := r.Float64() < spec.mix.tVisible
		e := &Event{
			Name:         fmt.Sprintf("TP_syscalls_%04d", i),
			Type:         TypeTracepoint,
			GuestVisible: visible,
			NoiseSigma:   0.04,
		}
		if visible {
			// VM-exit related tracepoints follow interrupt/context-switch
			// and page-fault activity.
			e.Terms = []Term{
				{Signal: sigInterrupts, Weight: 1 + r.Float64()},
				{Signal: sigCtxSwitches, Weight: r.Float64()},
				{Signal: sigPageFaults, Weight: r.Float64()},
			}
		}
		add(e)
	}

	// 5. Other events: breakpoints and similar low-level facilities that
	// normal VM applications never invoke.
	for i := 0; i < counts[TypeOther]; i++ {
		add(&Event{
			Name:       fmt.Sprintf("OTHER_bp_%04d", i),
			Type:       TypeOther,
			NoiseSigma: 0.05,
		})
	}

	// 6. Family mutations: rename N generated events so same-family models
	// differ in exactly the configured number of event names.
	if spec.mutations > 0 {
		mutated := 0
		for _, e := range cat.Events {
			if mutated >= spec.mutations {
				break
			}
			if strings.HasPrefix(e.Name, "RAW_PMC_") || strings.HasPrefix(e.Name, "TP_") {
				delete(cat.byName, e.Name)
				e.Name = e.Name + "_V2"
				cat.byName[e.Name] = e
				mutated++
			}
		}
	}

	return cat
}

// ByName resolves an event by name.
func (c *Catalog) ByName(name string) (*Event, bool) {
	e, ok := c.byName[name]
	return e, ok
}

// MustByName resolves a known-present event; it panics on a missing name,
// which indicates a catalog construction bug rather than a runtime input.
func (c *Catalog) MustByName(name string) *Event {
	e, ok := c.byName[name]
	if !ok {
		panic("hpc: missing catalog event " + name)
	}
	return e
}

// Size returns the total number of events.
func (c *Catalog) Size() int { return len(c.Events) }

// TypeCounts returns the number of events per type.
func (c *Catalog) TypeCounts() map[EventType]int {
	out := make(map[EventType]int, 6)
	for _, e := range c.Events {
		out[e.Type]++
	}
	return out
}

// GuestVisibleCounts returns the number of guest-visible events per type
// (the population the warm-up profiling retains).
func (c *Catalog) GuestVisibleCounts() map[EventType]int {
	out := make(map[EventType]int, 6)
	for _, e := range c.Events {
		if e.GuestVisible {
			out[e.Type]++
		}
	}
	return out
}

// DifferentEvents returns the number of event names present in exactly one
// of the two catalogs (paper Table I's "# of Different Events" row).
func DifferentEvents(a, b *Catalog) int {
	diff := 0
	//aegis:allow(maprange) order-insensitive membership count; only the total is observable
	for name := range a.byName {
		if _, ok := b.byName[name]; !ok {
			diff++
		}
	}
	//aegis:allow(maprange) order-insensitive membership count; only the total is observable
	for name := range b.byName {
		if _, ok := a.byName[name]; !ok {
			diff++
		}
	}
	return diff
}

// EventNames returns the sorted event names (test helper).
func (c *Catalog) EventNames() []string {
	names := make([]string, 0, len(c.Events))
	for _, e := range c.Events {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	return names
}

// SignalIndexCount is the number of raw signals events may reference.
// It must match microarch.NumSignals; the tests enforce this.
const SignalIndexCount = sigCtxSwitches + 1

var _ = microarch.NumSignals // dependency documented for signal ordering
