package telemetry

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

func populated() *Registry {
	r := NewRegistry()
	r.Counter("aegis_ticks_total").Add(42)
	r.Counter("aegis_skips_total", L("event", "RETIRED_UOPS")).Add(3)
	r.Gauge("aegis_cover_size").Set(5)
	h := r.Histogram("aegis_delta", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(7)
	h.Observe(100)
	return r
}

// artifactPopulated mirrors the artifact store's cache funnel: per-kind
// hit/miss/write counters, the corrupt-file signal and an IO latency
// histogram, all under the registered artifact_* names.
func artifactPopulated() *Registry {
	r := NewRegistry()
	r.Counter(MetricArtifactCacheHitsTotal, L("kind", "profile-trace")).Add(4)
	r.Counter(MetricArtifactCacheMissesTotal, L("kind", "profile-trace")).Add(2)
	r.Counter(MetricArtifactWritesTotal, L("kind", "profile-trace")).Add(2)
	r.Counter(MetricArtifactCorruptTotal).Inc()
	r.Histogram(MetricArtifactLoadSeconds, []float64{0.01, 0.1}).Observe(0.002)
	return r
}

func TestPrometheusGolden(t *testing.T) {
	r := populated()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	// Counters, then gauges, then histograms; alphabetical within a kind.
	want := `# TYPE aegis_skips_total counter
aegis_skips_total{event="RETIRED_UOPS"} 3
# TYPE aegis_ticks_total counter
aegis_ticks_total 42
# TYPE aegis_cover_size gauge
aegis_cover_size 5
# TYPE aegis_delta histogram
aegis_delta_bucket{le="1"} 1
aegis_delta_bucket{le="10"} 2
aegis_delta_bucket{le="+Inf"} 3
aegis_delta_sum 107.5
aegis_delta_count 3
`
	if got := b.String(); got != want {
		t.Errorf("prometheus output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPrometheusArtifactGolden(t *testing.T) {
	r := artifactPopulated()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE artifact_cache_hits_total counter
artifact_cache_hits_total{kind="profile-trace"} 4
# TYPE artifact_cache_misses_total counter
artifact_cache_misses_total{kind="profile-trace"} 2
# TYPE artifact_corrupt_total counter
artifact_corrupt_total 1
# TYPE artifact_writes_total counter
artifact_writes_total{kind="profile-trace"} 2
# TYPE artifact_load_seconds histogram
artifact_load_seconds_bucket{le="0.01"} 1
artifact_load_seconds_bucket{le="0.1"} 1
artifact_load_seconds_bucket{le="+Inf"} 1
artifact_load_seconds_sum 0.002
artifact_load_seconds_count 1
`
	if got := b.String(); got != want {
		t.Errorf("prometheus output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", L("k", "a\"b\\c\nd")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{k="a\"b\\c\nd"} 1`) {
		t.Errorf("escaping wrong:\n%s", b.String())
	}
}

func TestJSONSnapshotRoundTrip(t *testing.T) {
	r := populated()
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters   []MetricPoint `json:"counters"`
		Gauges     []MetricPoint `json:"gauges"`
		Histograms []struct {
			Name  string  `json:"name"`
			Count uint64  `json:"count"`
			Sum   float64 `json:"sum"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(b.String()), &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(snap.Counters) != 2 || len(snap.Gauges) != 1 || len(snap.Histograms) != 1 {
		t.Fatalf("snapshot shape: %+v", snap)
	}
	if snap.Counters[1].Name != "aegis_ticks_total" || snap.Counters[1].Value != 42 {
		t.Errorf("counter point = %+v", snap.Counters[1])
	}
	if snap.Histograms[0].Count != 3 || math.Abs(snap.Histograms[0].Sum-107.5) > 1e-9 {
		t.Errorf("histogram point = %+v", snap.Histograms[0])
	}
}

func TestSnapshotCumulativeBuckets(t *testing.T) {
	r := populated()
	snap := r.Snapshot()
	h := snap.Histograms[0]
	if len(h.Buckets) != 3 {
		t.Fatalf("buckets = %+v", h.Buckets)
	}
	if h.Buckets[0].Count != 1 || h.Buckets[1].Count != 2 || h.Buckets[2].Count != 3 {
		t.Errorf("cumulative counts = %+v", h.Buckets)
	}
	if !math.IsInf(h.Buckets[2].UpperBound, 1) {
		t.Errorf("last bound = %v, want +Inf", h.Buckets[2].UpperBound)
	}
}

func TestHandlerFormats(t *testing.T) {
	r := populated()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("default content type = %q", ct)
	}

	res2, err := srv.Client().Get(srv.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	if ct := res2.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("json content type = %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(res2.Body).Decode(&snap); err != nil {
		t.Fatalf("handler JSON invalid: %v", err)
	}
	if len(snap.Counters) != 2 {
		t.Errorf("handler snapshot counters = %d", len(snap.Counters))
	}
}

func TestSummary(t *testing.T) {
	r := NewRegistry()
	if got := r.Summary(); !strings.Contains(got, "no activity") {
		t.Errorf("empty summary = %q", got)
	}
	r.Counter("c_total").Add(2)
	r.Gauge("zero_gauge").Set(0) // zero metrics are elided
	r.Tracer().Start("phase").End()
	got := r.Summary()
	if !strings.Contains(got, "c_total") || !strings.Contains(got, "phase") {
		t.Errorf("summary missing entries:\n%s", got)
	}
	if strings.Contains(got, "zero_gauge") {
		t.Errorf("summary includes zero gauge:\n%s", got)
	}
}
