// Package telemetry is Aegis's dependency-free observability layer: a
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms, all with label support), lightweight span tracing with
// parent linkage and a ring-buffered span log, and a leveled structured
// event log with a pluggable sink.
//
// The package is built for hot paths: instruments are looked up once
// (typically in a package-level var) and then updated with single atomic
// operations; the event log is a no-op unless a sink is installed; and a
// disabled registry turns every instrument update and span start into an
// early return, so disabled telemetry costs roughly one atomic load.
//
// Exposition is available as a JSON snapshot ([Registry.WriteJSON]), as
// Prometheus text format ([Registry.WritePrometheus]), via an optional
// net/http handler ([Registry.Handler]), and as a human-readable summary
// ([Registry.Summary]) printed by the aegisctl and aegis-bench CLIs.
package telemetry

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value metric dimension.
type Label struct {
	Key   string
	Value string
}

// L builds a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// atomicFloat is a float64 updated with atomic compare-and-swap on its
// IEEE-754 bits.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing metric.
type Counter struct {
	name    string
	labels  []Label
	enabled *atomic.Bool
	val     atomicFloat
}

// Add increments the counter; negative deltas are ignored.
func (c *Counter) Add(v float64) {
	if v < 0 || !c.enabled.Load() {
		return
	}
	c.val.Add(v)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 { return c.val.Load() }

// Name returns the metric name.
func (c *Counter) Name() string { return c.name }

// Gauge is a metric that can go up and down.
type Gauge struct {
	name    string
	labels  []Label
	enabled *atomic.Bool
	val     atomicFloat
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) {
	if !g.enabled.Load() {
		return
	}
	g.val.Store(v)
}

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(v float64) {
	if !g.enabled.Load() {
		return
	}
	g.val.Add(v)
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return g.val.Load() }

// Name returns the metric name.
func (g *Gauge) Name() string { return g.name }

// Histogram accumulates observations into fixed buckets. A value v lands
// in the first bucket whose upper bound satisfies v <= bound (Prometheus
// "le" semantics); values above every bound land in the implicit +Inf
// bucket.
type Histogram struct {
	name    string
	labels  []Label
	enabled *atomic.Bool
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	buckets []atomic.Uint64
	sum     atomicFloat
	count   atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if !h.enabled.Load() {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Mean returns the mean observation, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// BucketCounts returns the per-bucket (non-cumulative) counts; the last
// entry is the +Inf bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Name returns the metric name.
func (h *Histogram) Name() string { return h.name }

// DefBuckets are general-purpose duration buckets in seconds.
var DefBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// LinearBuckets returns n ascending bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 {
		n = 1
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n ascending bounds start, start*factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 {
		n = 1
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Registry holds a set of named instruments plus a tracer and a logger.
// All methods are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	counter map[string]*Counter
	gauge   map[string]*Gauge
	hist    map[string]*Histogram
	enabled atomic.Bool
	tracer  *Tracer
	logger  *Logger
}

// NewRegistry builds an enabled, empty registry.
func NewRegistry() *Registry {
	r := &Registry{
		counter: make(map[string]*Counter),
		gauge:   make(map[string]*Gauge),
		hist:    make(map[string]*Histogram),
		logger:  &Logger{},
	}
	r.enabled.Store(true)
	r.tracer = newTracer(&r.enabled, defaultSpanRing)
	return r
}

// std is the process-wide default registry used by the package-level
// helpers and by Aegis's internal instrumentation.
var std = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// SetEnabled switches every instrument of the registry between live and
// no-op mode. Disabled instruments ignore updates but keep their values.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether the registry records updates. Hot paths use it
// to skip work (e.g. time.Now calls) feeding disabled instruments.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// key builds the identity of an instrument: name plus sorted labels.
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('|')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Counter returns the counter with the given name and labels, creating it
// on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	labels = sortLabels(labels)
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counter[k]; ok {
		return c
	}
	c := &Counter{name: name, labels: labels, enabled: &r.enabled}
	r.counter[k] = c
	return c
}

// Gauge returns the gauge with the given name and labels, creating it on
// first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	labels = sortLabels(labels)
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauge[k]; ok {
		return g
	}
	g := &Gauge{name: name, labels: labels, enabled: &r.enabled}
	r.gauge[k] = g
	return g
}

// Histogram returns the histogram with the given name, buckets and labels,
// creating it on first use. Bounds must be ascending; an existing
// histogram keeps its original buckets.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	labels = sortLabels(labels)
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hist[k]; ok {
		return h
	}
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	bounds = append([]float64(nil), bounds...)
	sort.Float64s(bounds)
	h := &Histogram{
		name:    name,
		labels:  labels,
		enabled: &r.enabled,
		bounds:  bounds,
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
	r.hist[k] = h
	return h
}

// Tracer returns the registry's span tracer.
func (r *Registry) Tracer() *Tracer { return r.tracer }

// Logger returns the registry's structured event log.
func (r *Registry) Logger() *Logger { return r.logger }

// Package-level helpers bound to the default registry.

// C returns a counter from the default registry.
func C(name string, labels ...Label) *Counter { return std.Counter(name, labels...) }

// G returns a gauge from the default registry.
func G(name string, labels ...Label) *Gauge { return std.Gauge(name, labels...) }

// H returns a histogram from the default registry.
func H(name string, bounds []float64, labels ...Label) *Histogram {
	return std.Histogram(name, bounds, labels...)
}

// StartSpan opens a root span on the default registry's tracer.
func StartSpan(name string) *Span { return std.tracer.Start(name) }

// Enabled reports whether the default registry records updates.
func Enabled() bool { return std.Enabled() }

// Log returns the default registry's structured event log.
func Log() *Logger { return std.logger }
