package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_concurrent_total")
	const goroutines, perG = 16, 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Errorf("counter = %v, want %d", got, goroutines*perG)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("neg_total")
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Errorf("counter after negative add = %v, want 5", got)
	}
}

func TestCounterIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", L("event", "A"))
	b := r.Counter("x_total", L("event", "B"))
	a2 := r.Counter("x_total", L("event", "A"))
	if a == b {
		t.Error("different labels returned the same counter")
	}
	if a != a2 {
		t.Error("same name+labels returned distinct counters")
	}
	// Label order must not matter.
	p := r.Counter("y_total", L("a", "1"), L("b", "2"))
	q := r.Counter("y_total", L("b", "2"), L("a", "1"))
	if p != q {
		t.Error("label order changed counter identity")
	}
}

func TestGaugeSetAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Errorf("gauge = %v, want 6", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 5, 10})
	// le semantics: v == bound falls into that bound's bucket.
	for _, v := range []float64{0.5, 1.0} { // both <= 1
		h.Observe(v)
	}
	h.Observe(1.0001) // (1, 5]
	h.Observe(5)      // (1, 5]
	h.Observe(9.99)   // (5, 10]
	h.Observe(10)     // (5, 10]
	h.Observe(10.01)  // +Inf
	h.Observe(1e9)    // +Inf

	want := []uint64{2, 2, 2, 2}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (all %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
	wantSum := 0.5 + 1 + 1.0001 + 5 + 9.99 + 10 + 10.01 + 1e9
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Errorf("sum = %v, want %v", h.Sum(), wantSum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc", []float64{10, 100})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(base float64) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(base)
			}
		}(float64(i * 30))
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(0, 5, 4)
	want := []float64{0, 5, 10, 15}
	for i := range want {
		if lin[i] != want[i] {
			t.Fatalf("LinearBuckets = %v", lin)
		}
	}
	exp := ExpBuckets(1, 10, 3)
	wantE := []float64{1, 10, 100}
	for i := range wantE {
		if exp[i] != wantE[i] {
			t.Fatalf("ExpBuckets = %v", exp)
		}
	}
}

func TestDisabledRegistryIsInert(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("off_total")
	g := r.Gauge("off_gauge")
	h := r.Histogram("off_hist", []float64{1})
	r.SetEnabled(false)
	c.Inc()
	g.Set(9)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("disabled registry recorded updates")
	}
	if sp := r.Tracer().Start("x"); sp != nil {
		t.Error("disabled tracer returned a live span")
	}
	// nil spans are inert end-to-end.
	var sp *Span
	if d := sp.Child("y").End(); d != 0 {
		t.Error("nil span chain did work")
	}
	r.SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Error("re-enabled counter did not record")
	}
}

func TestLoggerNoSinkIsNoop(t *testing.T) {
	var l Logger
	l.Info("dropped", F("k", 1)) // must not panic or block
}

func TestLoggerLevelsAndSink(t *testing.T) {
	var l Logger
	sink := &MemorySink{}
	l.SetSink(sink)
	l.SetLevel(LevelInfo)
	l.Debug("too low")
	l.Warn("kept", F("event", "X"), F("n", 3))
	events := sink.Events()
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1", len(events))
	}
	e := events[0]
	if e.Level != LevelWarn || e.Msg != "kept" || len(e.Fields) != 2 {
		t.Errorf("event = %+v", e)
	}
	if e.Fields[0].Key != "event" || e.Fields[0].Value != "X" {
		t.Errorf("field = %+v", e.Fields[0])
	}
}
