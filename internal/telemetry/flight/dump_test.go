package flight

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenJournal writes a fixed set of records covering every kind.
func goldenJournal() *Recorder {
	r := NewRecorder(8)
	r.Handle(KindObfuscatorTick).Record(1, CodeTickInjected, CodeMechLaplace, 2.5, 3, 0)
	r.Handle(KindObfuscatorTick).Record(2, CodeTickZeroDraw, CodeMechLaplace, -0.5, 0, 0)
	r.Handle(KindFault).Incident(3, CodeFaultCounterSaturation, CodeNone, 0, 0, 0)
	r.Handle(KindPMU).Incident(3, CodePMUSaturated, CodeNone, 1, 65535, 0)
	r.Handle(KindObfuscatorTick).Incident(3, CodeDegradedCounterRearm, CodeMechLaplace, 1.5, 1, 1)
	r.Handle(KindPMU).Record(4, CodePMURearmed, CodeNone, 1, 0, 0)
	r.Handle(KindWorldStep).Record(64, CodeWorldSummary, CodeNone, 2, 4, 0)
	r.Handle(KindStage).Record(0, CodeStageFuzzerEvent, CodeNone, 120, 7, 0)
	return r
}

// TestJSONLGolden pins the aegis-flight/v1 wire format byte for byte.
// Regenerate with AEGIS_UPDATE_GOLDEN=1 go test ./internal/telemetry/flight.
func TestJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenJournal().WriteJSONL(&buf, DumpOptions{Label: "golden"}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "flight_v1.golden")
	if os.Getenv("AEGIS_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with AEGIS_UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("JSONL drifted from %s.\ngot:\n%swant:\n%s", path, buf.Bytes(), want)
	}
}

func TestDumpIsReplayStable(t *testing.T) {
	var a, b bytes.Buffer
	if err := goldenJournal().WriteJSONL(&a, DumpOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := goldenJournal().WriteJSONL(&b, DumpOptions{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical journals dumped differently")
	}
}

func TestDumpHeaderSchemaAndDropped(t *testing.T) {
	r := NewRecorder(2)
	h := r.Handle(KindFault)
	for i := 1; i <= 5; i++ {
		h.Incident(int64(i), CodeFaultPMURead, CodeNone, 0, 0, 0)
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf, DumpOptions{}); err != nil {
		t.Fatal(err)
	}
	var hdr struct {
		Schema    string `json:"schema"`
		Capacity  int    `json:"capacity"`
		Dropped   uint64 `json:"dropped"`
		Records   int    `json:"records"`
		Incidents uint64 `json:"incidents"`
	}
	line, _, _ := strings.Cut(buf.String(), "\n")
	if err := json.Unmarshal([]byte(line), &hdr); err != nil {
		t.Fatalf("header not JSON: %v\n%s", err, line)
	}
	if hdr.Schema != SchemaV1 {
		t.Fatalf("schema = %q, want %q", hdr.Schema, SchemaV1)
	}
	if hdr.Capacity != 2 || hdr.Dropped != 3 || hdr.Records != 2 || hdr.Incidents != 5 {
		t.Fatalf("header = %+v, want capacity 2, dropped 3, records 2, incidents 5", hdr)
	}
}

func TestDumpWindowAndKindFilters(t *testing.T) {
	r := goldenJournal()
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf, DumpOptions{Kinds: []Kind{KindObfuscatorTick}, Window: 2}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // header + newest 2 obfuscator ticks
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	for _, line := range lines[1:] {
		if !strings.Contains(line, `"kind":"obfuscator-tick"`) {
			t.Fatalf("kind filter leaked: %s", line)
		}
	}
	if !strings.Contains(lines[2], `"code":"degraded:counter-rearm"`) {
		t.Fatalf("window did not keep the newest records: %s", lines[2])
	}
}

// TestDumpRecordsParseBack checks every line of a full dump is valid JSON
// with registered kind/code names.
func TestDumpRecordsParseBack(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenJournal().WriteJSONL(&buf, DumpOptions{}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	for i, line := range lines[1:] {
		var rec struct {
			Seq  uint64 `json:"seq"`
			Kind string `json:"kind"`
			Code string `json:"code"`
			Sub  string `json:"sub"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", i+2, err)
		}
		if rec.Seq != uint64(i+1) {
			t.Fatalf("line %d seq %d, want %d", i+2, rec.Seq, i+1)
		}
		if _, ok := KindByName(rec.Kind); !ok {
			t.Fatalf("line %d has unregistered kind %q", i+2, rec.Kind)
		}
		if _, ok := CodeByName(rec.Code); !ok {
			t.Fatalf("line %d has unregistered code %q", i+2, rec.Code)
		}
		if rec.Sub != "" {
			if _, ok := CodeByName(rec.Sub); !ok {
				t.Fatalf("line %d has unregistered sub %q", i+2, rec.Sub)
			}
		}
	}
}
