// Code in this file is the flight-record taxonomy: every Code value a
// recording site may journal, grouped by the Kind it belongs to. Like
// telemetry/names.go for metric names, this is the single reviewed file
// that pins the wire vocabulary of the "aegis-flight/v1" JSONL schema —
// adding an outcome, degradation reason, fault class or stage is a
// deliberate, diffable change here, never an ad-hoc literal at a call
// site. Wire names mirror the exporting package's own stable enums
// (obfuscator.DegradeReason, faultinject.Kind.String) so a grep for a
// Prometheus label value finds the same spelling in a flight dump.

package flight

// Code identifies what happened within a record's kind. The zero value
// CodeNone means "no sub-classification".
type Code uint8

// Registered record codes.
const (
	CodeNone Code = iota

	// KindObfuscatorTick outcomes (healthy ticks).
	CodeTickInjected
	CodeTickZeroDraw
	CodeTickNoInjection

	// KindObfuscatorTick degradation reasons (incident ticks). One per
	// obfuscator.DegradeReason, plus CodeDegradedPlan for a
	// MultiObfuscator plan that degraded without a per-reason split.
	CodeDegradedKmodAttach
	CodeDegradedPMURead
	CodeDegradedCounterRearm
	CodeDegradedDStarClipFallback
	CodeDegradedRetryExhausted
	CodeDegradedExecError
	CodeDegradedPlan

	// KindObfuscatorTick sub-codes: the noise mechanism that drove the
	// tick.
	CodeMechLaplace
	CodeMechDStar
	CodeMechRandom
	CodeMechConstant
	CodeMechOther

	// KindFault codes, one per faultinject.Kind.
	CodeFaultPMURead
	CodeFaultCounterSaturation
	CodeFaultMultiplexStarvation
	CodeFaultPreemption
	CodeFaultGadgetInterrupt
	CodeFaultDrawExtreme

	// KindPMU counter lifecycle codes.
	CodePMUSaturated
	CodePMURearmed

	// KindWorldStep codes.
	CodeWorldSummary

	// KindStage completion codes. The resume codes journal the
	// artifact-store skip funnel of a resumed campaign (a = shards served
	// from the store, b = shards recomputed), always from input-ordered
	// merge points so resumed journals stay replay-stable.
	CodeStageProfilerWarmup
	CodeStageProfilerRank
	CodeStageProfilerResume
	CodeStageFuzzerEvent
	CodeStageFuzzerCover
	CodeStageFuzzerCampaign
	CodeStageFuzzerResume

	// KindDaemon codes: tenant lifecycle transitions (a = tenant id),
	// per-tenant shed/degradation incidents (b = event count, sub = the
	// degradation reason where one applies), config reload outcomes and
	// the per-tick daemon summary (a = live tenants, b = items
	// processed, c = items shed that tick).
	CodeTenantAttach
	CodeTenantDrain
	CodeTenantDetach
	CodeTenantReplan
	CodeTenantShed
	CodeTenantDegraded
	CodeDaemonReload
	CodeDaemonReloadReject
	CodeDaemonSummary

	numCodes
)

// codeNames holds the stable wire names, indexed by Code.
var codeNames = [numCodes]string{
	CodeNone: "none",

	CodeTickInjected:    "injected",
	CodeTickZeroDraw:    "zero-draw",
	CodeTickNoInjection: "no-injection",

	CodeDegradedKmodAttach:        "degraded:kmod-attach",
	CodeDegradedPMURead:           "degraded:pmu-read",
	CodeDegradedCounterRearm:      "degraded:counter-rearm",
	CodeDegradedDStarClipFallback: "degraded:dstar-clip-fallback",
	CodeDegradedRetryExhausted:    "degraded:retry-exhausted",
	CodeDegradedExecError:         "degraded:exec-error",
	CodeDegradedPlan:              "degraded:plan",

	CodeMechLaplace:  "mech:laplace",
	CodeMechDStar:    "mech:dstar",
	CodeMechRandom:   "mech:random",
	CodeMechConstant: "mech:constant",
	CodeMechOther:    "mech:other",

	CodeFaultPMURead:             "fault:pmu-read",
	CodeFaultCounterSaturation:   "fault:counter-saturation",
	CodeFaultMultiplexStarvation: "fault:multiplex-starvation",
	CodeFaultPreemption:          "fault:vcpu-preemption",
	CodeFaultGadgetInterrupt:     "fault:gadget-interrupt",
	CodeFaultDrawExtreme:         "fault:draw-extreme",

	CodePMUSaturated: "pmu:saturated",
	CodePMURearmed:   "pmu:rearmed",

	CodeWorldSummary: "world:summary",

	CodeStageProfilerWarmup: "stage:profiler-warmup",
	CodeStageProfilerRank:   "stage:profiler-rank",
	CodeStageProfilerResume: "stage:profiler-resume",
	CodeStageFuzzerEvent:    "stage:fuzzer-event",
	CodeStageFuzzerCover:    "stage:fuzzer-cover",
	CodeStageFuzzerCampaign: "stage:fuzzer-campaign",
	CodeStageFuzzerResume:   "stage:fuzzer-resume",

	CodeTenantAttach:       "tenant:attach",
	CodeTenantDrain:        "tenant:drain",
	CodeTenantDetach:       "tenant:detach",
	CodeTenantReplan:       "tenant:replan",
	CodeTenantShed:         "tenant:shed",
	CodeTenantDegraded:     "tenant:degraded",
	CodeDaemonReload:       "daemon:reload",
	CodeDaemonReloadReject: "daemon:reload-reject",
	CodeDaemonSummary:      "daemon:summary",
}

// String returns the stable wire name of the code.
func (c Code) String() string {
	if c >= numCodes {
		return "unknown"
	}
	return codeNames[c]
}

// CodeByName resolves a wire name back to its code.
func CodeByName(name string) (Code, bool) {
	for c := Code(0); c < numCodes; c++ {
		if codeNames[c] == name {
			return c, true
		}
	}
	return 0, false
}
