package flight

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestKindNamesRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		name := k.String()
		if name == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		got, ok := KindByName(name)
		if !ok || got != k {
			t.Fatalf("KindByName(%q) = %v, %v; want %v, true", name, got, ok, k)
		}
	}
	if _, ok := KindByName("no-such-kind"); ok {
		t.Fatal("KindByName accepted an unknown name")
	}
}

func TestCodeNamesRoundTrip(t *testing.T) {
	seen := make(map[string]Code, numCodes)
	for c := Code(0); c < numCodes; c++ {
		name := c.String()
		if name == "" || name == "unknown" {
			t.Fatalf("code %d has no name", c)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("codes %d and %d share wire name %q", prev, c, name)
		}
		seen[name] = c
		got, ok := CodeByName(name)
		if !ok || got != c {
			t.Fatalf("CodeByName(%q) = %v, %v; want %v, true", name, got, ok, c)
		}
	}
}

func TestRecorderSeqAndWrap(t *testing.T) {
	r := NewRecorder(4)
	h := r.Handle(KindObfuscatorTick)
	for i := 1; i <= 6; i++ {
		h.Record(int64(i), CodeTickInjected, CodeMechLaplace, 0, 0, 0)
	}
	if got := r.Total(); got != 6 {
		t.Fatalf("Total = %d, want 6", got)
	}
	recs := r.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("retained %d records, want capacity 4", len(recs))
	}
	for i, rec := range recs {
		want := uint64(i + 3) // seqs 3..6 survive the wrap
		if rec.Seq != want {
			t.Fatalf("record %d has seq %d, want %d (oldest-first order)", i, rec.Seq, want)
		}
	}
}

func TestRecorderDisabledWritesNothing(t *testing.T) {
	r := NewRecorder(8)
	r.SetEnabled(false)
	r.Handle(KindFault).Incident(0, CodeFaultPMURead, CodeNone, 0, 0, 0)
	if r.Total() != 0 || r.Incidents() != 0 || r.Dirty() {
		t.Fatalf("disabled recorder recorded: total=%d incidents=%d dirty=%v",
			r.Total(), r.Incidents(), r.Dirty())
	}
	r.SetEnabled(true)
	r.Handle(KindFault).Incident(0, CodeFaultPMURead, CodeNone, 0, 0, 0)
	if r.Total() != 1 || r.Incidents() != 1 {
		t.Fatalf("re-enabled recorder did not record")
	}
}

func TestNilHandleIsInert(t *testing.T) {
	var h *Handle
	h.Record(1, CodeTickInjected, CodeNone, 0, 0, 0)
	h.Incident(1, CodeTickInjected, CodeNone, 0, 0, 0)
	if got := NewRecorder(1).Handle(Kind(200)); got != nil {
		t.Fatalf("Handle(out of range) = %v, want nil", got)
	}
}

func TestIncidentMarksDirtyAndDumpCleans(t *testing.T) {
	r := NewRecorder(16)
	h := r.Handle(KindObfuscatorTick)
	h.Record(1, CodeTickInjected, CodeMechLaplace, 0, 0, 0)
	if r.Dirty() {
		t.Fatal("healthy record marked the ring dirty")
	}
	h.Incident(2, CodeDegradedPMURead, CodeMechLaplace, 0, 0, 1)
	if !r.Dirty() {
		t.Fatal("incident did not mark the ring dirty")
	}
	// A kind-filtered dump must NOT clean: it misses part of the window.
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf, DumpOptions{Kinds: []Kind{KindFault}}); err != nil {
		t.Fatal(err)
	}
	if !r.Dirty() {
		t.Fatal("kind-filtered dump cleared the dirty flag")
	}
	buf.Reset()
	if err := r.WriteJSONL(&buf, DumpOptions{}); err != nil {
		t.Fatal(err)
	}
	if r.Dirty() {
		t.Fatal("full dump did not clear the dirty flag")
	}
	// A new incident re-dirties.
	h.Incident(3, CodeDegradedExecError, CodeNone, 0, 0, 0)
	if !r.Dirty() {
		t.Fatal("post-dump incident did not re-mark the ring dirty")
	}
}

func TestResetClearsEverything(t *testing.T) {
	r := NewRecorder(8)
	r.Handle(KindStage).Record(0, CodeStageFuzzerEvent, CodeNone, 1, 2, 0)
	r.Handle(KindFault).Incident(0, CodeFaultDrawExtreme, CodeNone, 0, 0, 0)
	r.Reset()
	if r.Total() != 0 || r.Incidents() != 0 || r.Dirty() || len(r.Snapshot()) != 0 {
		t.Fatalf("Reset left state behind: total=%d incidents=%d dirty=%v retained=%d",
			r.Total(), r.Incidents(), r.Dirty(), len(r.Snapshot()))
	}
}

// TestConcurrentRecordAndDump exercises the ring under parallel writers
// and concurrent dumps; run with -race this is the data-race gate for the
// recorder.
func TestConcurrentRecordAndDump(t *testing.T) {
	r := NewRecorder(64)
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := r.Handle(Kind(w % int(numKinds)))
			for i := 0; i < perWriter; i++ {
				if i%16 == 0 {
					h.Incident(int64(i), CodeDegradedPMURead, CodeNone, 0, 0, 0)
				} else {
					h.Record(int64(i), CodeTickInjected, CodeMechDStar, 1, 2, 3)
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if err := r.WriteJSONL(&buf, DumpOptions{Window: 32}); err != nil {
				t.Errorf("dump: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got, want := r.Total(), uint64(writers*perWriter); got != want {
		t.Fatalf("Total = %d, want %d", got, want)
	}
	recs := r.Snapshot()
	if len(recs) != 64 {
		t.Fatalf("retained %d, want 64", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq != recs[i-1].Seq+1 {
			t.Fatalf("seq not monotonic at %d: %d -> %d", i, recs[i-1].Seq, recs[i].Seq)
		}
	}
}

func TestDefaultRecorderAndGet(t *testing.T) {
	if Default() == nil || !Default().Enabled() {
		t.Fatal("default recorder must exist and be enabled (always-on)")
	}
	h := Get(KindWorldStep)
	if h == nil || h.Kind() != KindWorldStep {
		t.Fatalf("Get returned %+v", h)
	}
	if h != Default().Handle(KindWorldStep) {
		t.Fatal("Get must return the pre-registered handle, not a copy")
	}
}

func TestDumpSinceFilter(t *testing.T) {
	r := NewRecorder(16)
	h := r.Handle(KindPMU)
	for i := 1; i <= 5; i++ {
		h.Record(int64(i), CodePMURearmed, CodeNone, float64(i), 0, 0)
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf, DumpOptions{Since: 3}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // header + seq 4, 5
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], `"seq_first":4`) || !strings.Contains(lines[0], `"seq_last":5`) {
		t.Fatalf("header bounds wrong: %s", lines[0])
	}
}
