package flight

import (
	"encoding/json"
	"fmt"
	"io"
)

// SchemaV1 is the versioned identifier written in the header line of
// every JSONL dump. Consumers must check it before parsing records.
const SchemaV1 = "aegis-flight/v1"

// DumpOptions filters a JSONL dump. The zero value dumps the whole ring.
type DumpOptions struct {
	// Window keeps only the newest N records (after the other filters);
	// <= 0 keeps everything retained.
	Window int
	// Kinds keeps only the listed kinds; empty keeps all.
	Kinds []Kind
	// Since keeps only records with Seq > Since, which is how the
	// aegisctl tail client polls for records it has not yet seen.
	Since uint64
	// Label is echoed in the header, e.g. an experiment name.
	Label string
}

// header is the first JSONL line of a dump.
type header struct {
	Schema string `json:"schema"`
	Label  string `json:"label,omitempty"`
	// Capacity is the ring size; Dropped counts records lost to ring
	// wrap before this dump (total written minus retained).
	Capacity int    `json:"capacity"`
	Dropped  uint64 `json:"dropped"`
	// Records is the number of record lines that follow; SeqFirst and
	// SeqLast bound their sequence numbers (0/0 when empty).
	Records  int    `json:"records"`
	SeqFirst uint64 `json:"seq_first"`
	SeqLast  uint64 `json:"seq_last"`
	// Incidents is the lifetime incident count of the recorder.
	Incidents uint64 `json:"incidents"`
}

// wireRecord is the JSONL shape of one record. Field order is the wire
// order; the golden test pins it.
type wireRecord struct {
	Seq      uint64  `json:"seq"`
	Tick     int64   `json:"tick,omitempty"`
	Kind     string  `json:"kind"`
	Code     string  `json:"code"`
	Sub      string  `json:"sub,omitempty"`
	Incident bool    `json:"incident,omitempty"`
	A        float64 `json:"a,omitempty"`
	B        float64 `json:"b,omitempty"`
	C        float64 `json:"c,omitempty"`
}

// WriteJSONL dumps the retained records oldest-first as "aegis-flight/v1"
// JSONL: one header line, then one line per record, in seq order. Two
// dumps of the same ring produce byte-identical output. A successful dump
// marks the ring clean (see Dirty): the incident window it held has been
// captured.
func (r *Recorder) WriteJSONL(w io.Writer, opts DumpOptions) error {
	recs := r.Snapshot()
	total := r.Total()

	filtered := recs[:0:0]
	for _, rec := range recs {
		if rec.Seq <= opts.Since {
			continue
		}
		if len(opts.Kinds) > 0 && !containsKind(opts.Kinds, rec.Kind) {
			continue
		}
		filtered = append(filtered, rec)
	}
	if opts.Window > 0 && len(filtered) > opts.Window {
		filtered = filtered[len(filtered)-opts.Window:]
	}

	h := header{
		Schema:    SchemaV1,
		Label:     opts.Label,
		Capacity:  r.Capacity(),
		Dropped:   total - uint64(len(recs)),
		Records:   len(filtered),
		Incidents: r.Incidents(),
	}
	if len(filtered) > 0 {
		h.SeqFirst = filtered[0].Seq
		h.SeqLast = filtered[len(filtered)-1].Seq
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("flight: encode header: %w", err)
	}
	for _, rec := range filtered {
		wr := wireRecord{
			Seq:      rec.Seq,
			Tick:     rec.Tick,
			Kind:     rec.Kind.String(),
			Code:     rec.Code.String(),
			Incident: rec.Incident,
			A:        rec.A,
			B:        rec.B,
			C:        rec.C,
		}
		if rec.Sub != CodeNone {
			wr.Sub = rec.Sub.String()
		}
		if err := enc.Encode(wr); err != nil {
			return fmt.Errorf("flight: encode record %d: %w", rec.Seq, err)
		}
	}
	// Only an unfiltered-by-kind dump captures the full incident window,
	// so only that marks the ring clean.
	if len(opts.Kinds) == 0 {
		r.markClean(total)
	}
	return nil
}

// markClean records that every record up to seq has been dumped.
func (r *Recorder) markClean(seq uint64) {
	for {
		old := r.dumpedThrough.Load()
		if old >= seq || r.dumpedThrough.CompareAndSwap(old, seq) {
			return
		}
	}
}

func containsKind(ks []Kind, k Kind) bool {
	for _, c := range ks {
		if c == k {
			return true
		}
	}
	return false
}
