// Package flight is Aegis's always-on flight recorder: a bounded,
// allocation-free ring journal of typed records describing what the
// protection loop actually did — obfuscator tick outcomes with their
// mechanism and degradation reason, fault injections, PMU saturation and
// re-arm events, SEV world step summaries, and fuzzer/profiler stage
// completions. Like an aircraft flight recorder it runs continuously and
// cheaply, keeping the most recent window of activity so that when an
// incident happens (a degraded tick, an injected fault) the surrounding
// context is already captured and can be dumped as versioned JSONL
// ("aegis-flight/v1", see WriteJSONL).
//
// Instrumented packages record through a pre-registered *Handle obtained
// once in a package-level var (flight.Get(flight.KindFault)); a write is
// one atomic load when recording is disabled and a mutex-guarded value
// store when enabled — zero heap allocations either way, which is what
// lets //aegis:hotpath code (PMU.RDPMC, World.Step, Obfuscator.Step)
// record unconditionally. The alloc gates in make bench-alloc enforce
// this.
//
// Records carry the deterministic world tick, never wall-clock time, so a
// dump of the online protection loop is replay-stable: the same seed
// produces the same journal. Records emitted from parallel offline stages
// (fuzzer/profiler campaigns) are sequenced in arrival order; their
// multiset is deterministic but their interleaving across worker
// goroutines is not, which is why offline stages only record from their
// input-ordered merge points or stage boundaries.
package flight

import (
	"sync"
	"sync/atomic"

	"github.com/repro/aegis/internal/telemetry"
)

// Kind classifies the source subsystem of a record. Kinds are a closed,
// lint-enforced set: the aegis-lint flightkind rule requires every Kind
// argument reaching this package to be one of the registered constants
// below.
type Kind uint8

// Registered record kinds.
const (
	// KindObfuscatorTick is one online obfuscator tick outcome
	// (code = outcome or degradation reason, sub = noise mechanism,
	// a = noise drawn, b = reps injected, c = retries used).
	KindObfuscatorTick Kind = iota
	// KindFault is one injected fault from the faultinject substrate
	// (code = fault kind; always an incident).
	KindFault
	// KindPMU is a PMU counter lifecycle event (code = saturated or
	// re-armed, a = slot index, b = latched value where applicable).
	KindPMU
	// KindWorldStep is a periodic SEV world summary (tick = world tick,
	// a = VMs resident, b = vCPUs stepped that tick).
	KindWorldStep
	// KindStage is an offline pipeline stage completion
	// (code = stage, a/b = stage-specific sizes).
	KindStage
	// KindDaemon is a multi-tenant daemon lifecycle or per-tick summary
	// event (code = daemon event, a = tenant id or live-tenant count,
	// b/c = event-specific counts). Written only from serialized daemon
	// paths, so the daemon journal is byte-identical across replays of
	// the same seed at any parallelism.
	KindDaemon

	numKinds = 6
)

// String returns the stable wire name of the kind.
func (k Kind) String() string {
	switch k {
	case KindObfuscatorTick:
		return "obfuscator-tick"
	case KindFault:
		return "fault"
	case KindPMU:
		return "pmu"
	case KindWorldStep:
		return "world-step"
	case KindStage:
		return "stage"
	case KindDaemon:
		return "daemon"
	default:
		return "unknown"
	}
}

// KindByName resolves a wire name back to its kind.
func KindByName(name string) (Kind, bool) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// Kinds returns all registered kinds in declaration order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Record is one journal entry. The per-kind meaning of Code, Sub and the
// A/B/C payload fields is documented on the Kind constants; Tick is the
// deterministic world tick where one applies (0 for offline stages).
// Records never carry wall-clock time: the journal of the online loop
// must be byte-identical across replays of the same seed.
type Record struct {
	Seq      uint64
	Tick     int64
	Kind     Kind
	Code     Code
	Sub      Code
	Incident bool
	A, B, C  float64
}

// Recorder is a fixed-capacity ring journal. All methods are safe for
// concurrent use; the zero value is not usable — construct with
// NewRecorder or use the process-wide Default.
type Recorder struct {
	enabled atomic.Bool
	seq     atomic.Uint64 // written under mu, read lock-free
	// Incident bookkeeping: lastIncident is the seq of the newest
	// incident record, dumpedThrough the newest seq included in a dump.
	// The ring is "dirty" while lastIncident > dumpedThrough.
	lastIncident  atomic.Uint64
	dumpedThrough atomic.Uint64
	incidents     atomic.Uint64

	mu   sync.Mutex
	ring []Record
	next int // ring write position
	full bool

	handles [numKinds]Handle
}

// DefaultCapacity is the ring size of the process-wide recorder: at the
// paper's 10ms tick that is ~41s of per-tick records, comfortably more
// than the window an operator needs around an incident.
const DefaultCapacity = 4096

// NewRecorder builds an enabled recorder holding the last capacity
// records (minimum 1).
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	r := &Recorder{ring: make([]Record, capacity)}
	for k := range r.handles {
		r.handles[k] = Handle{rec: r, kind: Kind(k)}
	}
	r.enabled.Store(true)
	return r
}

// std is the process-wide recorder used by Get and by Aegis's
// instrumentation. Always-on by default: recording is cheap enough to
// leave running in production, which is the point of a flight recorder.
var std = NewRecorder(DefaultCapacity)

// Default returns the process-wide recorder.
func Default() *Recorder { return std }

// Get returns the process-wide handle for kind. Instrumented packages
// call it once into a package-level var.
func Get(k Kind) *Handle { return std.Handle(k) }

// Handle returns the recorder's pre-registered handle for kind.
func (r *Recorder) Handle(k Kind) *Handle {
	if k >= numKinds {
		return nil
	}
	return &r.handles[k]
}

// SetEnabled switches recording on or off. Disabled writes are a single
// atomic load.
func (r *Recorder) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether writes are recorded.
func (r *Recorder) Enabled() bool { return r.enabled.Load() }

// Total returns the number of records ever written (the newest seq).
func (r *Recorder) Total() uint64 { return r.seq.Load() }

// Incidents returns the number of incident records ever written.
func (r *Recorder) Incidents() uint64 { return r.incidents.Load() }

// Dirty reports whether an incident has been recorded since the last
// dump: the snapshot-on-incident signal that tells an operator (or
// aegis-bench) the ring holds an undumped incident window.
func (r *Recorder) Dirty() bool {
	return r.lastIncident.Load() > r.dumpedThrough.Load()
}

// Capacity returns the ring size.
func (r *Recorder) Capacity() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring)
}

// Reset clears the ring and all counters, for tests that need a
// from-zero journal on the shared default recorder.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.ring {
		r.ring[i] = Record{}
	}
	r.next = 0
	r.full = false
	r.seq.Store(0)
	r.lastIncident.Store(0)
	r.dumpedThrough.Store(0)
	r.incidents.Store(0)
}

// Snapshot returns the retained records oldest-first. The copy is taken
// under the ring lock; encoding happens on the caller's time.
func (r *Recorder) Snapshot() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Record(nil), r.ring[:r.next]...)
	}
	out := make([]Record, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// write appends one record. Zero heap allocations: the hot instrumented
// paths (RDPMC, World.Step, Obfuscator.Step) call this on every tick and
// the bench-alloc gates hold them to 0 allocs/op with recording enabled.
//
//aegis:hotpath
func (r *Recorder) write(k Kind, tick int64, code, sub Code, incident bool, a, b, c float64) {
	if r == nil || !r.enabled.Load() {
		return
	}
	r.mu.Lock()
	seq := r.seq.Load() + 1
	r.seq.Store(seq)
	r.ring[r.next] = Record{
		Seq: seq, Tick: tick, Kind: k, Code: code, Sub: sub,
		Incident: incident, A: a, B: b, C: c,
	}
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}
	if incident {
		r.incidents.Add(1)
		r.lastIncident.Store(seq)
	}
	r.mu.Unlock()
	mRecords[k].Inc()
	if incident {
		mIncidents.Inc()
	}
}

// Handle is a pre-registered writer for one record kind. A nil handle is
// valid and inert. Handles are obtained once (Get / Recorder.Handle) and
// shared; both methods are safe for concurrent use.
type Handle struct {
	rec  *Recorder
	kind Kind
}

// Record journals one non-incident record.
//
//aegis:hotpath
func (h *Handle) Record(tick int64, code, sub Code, a, b, c float64) {
	if h == nil {
		return
	}
	h.rec.write(h.kind, tick, code, sub, false, a, b, c)
}

// Incident journals one incident record and marks the ring dirty, so the
// surrounding window is flagged for dumping.
//
//aegis:hotpath
func (h *Handle) Incident(tick int64, code, sub Code, a, b, c float64) {
	if h == nil {
		return
	}
	h.rec.write(h.kind, tick, code, sub, true, a, b, c)
}

// Kind returns the handle's record kind.
func (h *Handle) Kind() Kind { return h.kind }

// Per-kind record counters plus the incident counter, eagerly created so
// hot-path writes never take the registry lookup path.
var (
	mRecords = func() [numKinds]*telemetry.Counter {
		var out [numKinds]*telemetry.Counter
		for k := range out {
			out[k] = telemetry.C("flight_records_total", telemetry.L("kind", Kind(k).String()))
		}
		return out
	}()
	mIncidents = telemetry.C("flight_incidents_total")
)
