package telemetry

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Level classifies structured log events.
type Level int32

// Log levels, in increasing severity.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// Field is one key-value attribute of a log event.
type Field struct {
	Key   string
	Value any
}

// F builds a field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Event is one structured log record.
type Event struct {
	Time   time.Time
	Level  Level
	Msg    string
	Fields []Field
}

// Sink consumes log events. Implementations must be safe for concurrent
// use.
type Sink interface {
	Emit(Event)
}

// Logger is a leveled structured event log. With no sink installed (the
// default) every log call is a single atomic load and an early return, so
// instrumented hot paths cost ~zero when logging is off.
type Logger struct {
	sink atomic.Pointer[sinkBox]
	min  atomic.Int32 // minimum level emitted
}

// sinkBox wraps the interface so it fits an atomic.Pointer.
type sinkBox struct{ s Sink }

// SetSink installs the sink; nil disables logging.
func (l *Logger) SetSink(s Sink) {
	if s == nil {
		l.sink.Store(nil)
		return
	}
	l.sink.Store(&sinkBox{s: s})
}

// SetLevel sets the minimum emitted level.
func (l *Logger) SetLevel(min Level) { l.min.Store(int32(min)) }

// Log emits one event if a sink is installed and the level passes.
func (l *Logger) Log(level Level, msg string, fields ...Field) {
	box := l.sink.Load()
	if box == nil || int32(level) < l.min.Load() {
		return
	}
	box.s.Emit(Event{Time: time.Now(), Level: level, Msg: msg, Fields: fields})
}

// Debug logs at debug level.
func (l *Logger) Debug(msg string, fields ...Field) { l.Log(LevelDebug, msg, fields...) }

// Info logs at info level.
func (l *Logger) Info(msg string, fields ...Field) { l.Log(LevelInfo, msg, fields...) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, fields ...Field) { l.Log(LevelWarn, msg, fields...) }

// Error logs at error level.
func (l *Logger) Error(msg string, fields ...Field) { l.Log(LevelError, msg, fields...) }

// WriterSink renders events as one "time level msg k=v ..." line each.
type WriterSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewWriterSink wraps an io.Writer as a sink.
func NewWriterSink(w io.Writer) *WriterSink { return &WriterSink{w: w} }

// Emit implements Sink.
func (s *WriterSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(s.w, "%s %s %s", e.Time.Format(time.RFC3339Nano), e.Level, e.Msg)
	for _, f := range e.Fields {
		fmt.Fprintf(s.w, " %s=%v", f.Key, f.Value)
	}
	fmt.Fprintln(s.w)
}

// MemorySink buffers events in memory; tests use it to assert on logs.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Sink.
func (s *MemorySink) Emit(e Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Events returns a copy of the buffered events.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}
