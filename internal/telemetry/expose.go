package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// MetricPoint is one counter or gauge series in a snapshot.
type MetricPoint struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// BucketPoint is one cumulative histogram bucket; UpperBound is +Inf for
// the last bucket.
type BucketPoint struct {
	UpperBound float64 `json:"-"`
	Count      uint64  `json:"count"`
}

// bucketPointJSON carries the upper bound as a string so +Inf survives
// JSON encoding.
type bucketPointJSON struct {
	UpperBound string `json:"le"`
	Count      uint64 `json:"count"`
}

// MarshalJSON implements json.Marshaler.
func (b BucketPoint) MarshalJSON() ([]byte, error) {
	return json.Marshal(bucketPointJSON{UpperBound: formatValue(b.UpperBound), Count: b.Count})
}

// UnmarshalJSON implements json.Unmarshaler.
func (b *BucketPoint) UnmarshalJSON(data []byte) error {
	var raw bucketPointJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if raw.UpperBound == "+Inf" {
		b.UpperBound = math.Inf(1)
	} else {
		v, err := strconv.ParseFloat(raw.UpperBound, 64)
		if err != nil {
			return err
		}
		b.UpperBound = v
	}
	b.Count = raw.Count
	return nil
}

// HistogramPoint is one histogram series in a snapshot.
type HistogramPoint struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Buckets []BucketPoint     `json:"buckets"`
}

// SpanPoint is one aggregated span name in a snapshot.
type SpanPoint struct {
	Name        string  `json:"name"`
	Count       int     `json:"count"`
	TotalMillis float64 `json:"total_ms"`
	MeanMillis  float64 `json:"mean_ms"`
	MaxMillis   float64 `json:"max_ms"`
}

// Snapshot is a point-in-time copy of every instrument, ordered
// deterministically (by name, then label signature).
type Snapshot struct {
	Counters   []MetricPoint    `json:"counters"`
	Gauges     []MetricPoint    `json:"gauges"`
	Histograms []HistogramPoint `json:"histograms"`
	Spans      []SpanPoint      `json:"spans,omitempty"`
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

func labelSig(labels []Label) string { return key("", labels) }

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counter))
	for _, c := range r.counter {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauge))
	for _, g := range r.gauge {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hist))
	for _, h := range r.hist {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	var snap Snapshot
	sort.Slice(counters, func(i, j int) bool {
		if counters[i].name != counters[j].name {
			return counters[i].name < counters[j].name
		}
		return labelSig(counters[i].labels) < labelSig(counters[j].labels)
	})
	for _, c := range counters {
		snap.Counters = append(snap.Counters, MetricPoint{
			Name: c.name, Labels: labelMap(c.labels), Value: c.Value(),
		})
	}
	sort.Slice(gauges, func(i, j int) bool {
		if gauges[i].name != gauges[j].name {
			return gauges[i].name < gauges[j].name
		}
		return labelSig(gauges[i].labels) < labelSig(gauges[j].labels)
	})
	for _, g := range gauges {
		snap.Gauges = append(snap.Gauges, MetricPoint{
			Name: g.name, Labels: labelMap(g.labels), Value: g.Value(),
		})
	}
	sort.Slice(hists, func(i, j int) bool {
		if hists[i].name != hists[j].name {
			return hists[i].name < hists[j].name
		}
		return labelSig(hists[i].labels) < labelSig(hists[j].labels)
	})
	for _, h := range hists {
		hp := HistogramPoint{
			Name: h.name, Labels: labelMap(h.labels), Count: h.Count(), Sum: h.Sum(),
		}
		var cum uint64
		counts := h.BucketCounts()
		for i, b := range h.bounds {
			cum += counts[i]
			hp.Buckets = append(hp.Buckets, BucketPoint{UpperBound: b, Count: cum})
		}
		cum += counts[len(counts)-1]
		hp.Buckets = append(hp.Buckets, BucketPoint{UpperBound: math.Inf(1), Count: cum})
		snap.Histograms = append(snap.Histograms, hp)
	}
	for _, st := range r.tracer.Stats() {
		snap.Spans = append(snap.Spans, SpanPoint{
			Name:        st.Name,
			Count:       st.Count,
			TotalMillis: float64(st.Total) / float64(time.Millisecond),
			MeanMillis:  float64(st.Mean()) / float64(time.Millisecond),
			MaxMillis:   float64(st.Max) / float64(time.Millisecond),
		})
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// promLabels renders a {k="v",...} block including extra pairs; empty when
// there are no labels.
func promLabels(labels map[string]string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, k := range keys {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, `%s="%s"`, k, escapeLabelValue(labels[k]))
	}
	if extraKey != "" {
		if !first {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format (0.0.4). Span aggregates are exposed as aegis_span_* series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	typed := make(map[string]bool)
	writeType := func(name, kind string) {
		if !typed[name] {
			typed[name] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
		}
	}
	for _, c := range snap.Counters {
		writeType(c.Name, "counter")
		fmt.Fprintf(w, "%s%s %s\n", c.Name, promLabels(c.Labels, "", ""), formatValue(c.Value))
	}
	for _, g := range snap.Gauges {
		writeType(g.Name, "gauge")
		fmt.Fprintf(w, "%s%s %s\n", g.Name, promLabels(g.Labels, "", ""), formatValue(g.Value))
	}
	for _, h := range snap.Histograms {
		writeType(h.Name, "histogram")
		for _, b := range h.Buckets {
			fmt.Fprintf(w, "%s_bucket%s %d\n",
				h.Name, promLabels(h.Labels, "le", formatValue(b.UpperBound)), b.Count)
		}
		fmt.Fprintf(w, "%s_sum%s %s\n", h.Name, promLabels(h.Labels, "", ""), formatValue(h.Sum))
		fmt.Fprintf(w, "%s_count%s %d\n", h.Name, promLabels(h.Labels, "", ""), h.Count)
	}
	for _, s := range snap.Spans {
		writeType("aegis_span_count", "gauge")
		fmt.Fprintf(w, "aegis_span_count{name=\"%s\"} %d\n", escapeLabelValue(s.Name), s.Count)
		writeType("aegis_span_total_ms", "gauge")
		fmt.Fprintf(w, "aegis_span_total_ms{name=\"%s\"} %s\n",
			escapeLabelValue(s.Name), formatValue(s.TotalMillis))
	}
	return nil
}

// Handler serves the registry over HTTP: Prometheus text by default, the
// JSON snapshot with ?format=json. Mount it wherever the embedding service
// exposes metrics, e.g.:
//
//	http.Handle("/metrics", telemetry.Default().Handler())
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json") {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Summary renders a compact human-readable digest: non-zero counters and
// gauges, histogram count/mean, and span aggregates. CLIs print it after a
// run.
func (r *Registry) Summary() string {
	snap := r.Snapshot()
	var b strings.Builder
	wroteAny := false
	section := func(title string) { fmt.Fprintf(&b, "%s:\n", title) }

	var counters []MetricPoint
	for _, c := range snap.Counters {
		if c.Value != 0 {
			counters = append(counters, c)
		}
	}
	if len(counters) > 0 {
		wroteAny = true
		section("counters")
		for _, c := range counters {
			fmt.Fprintf(&b, "  %-46s %s\n", c.Name+promLabels(c.Labels, "", ""), formatValue(c.Value))
		}
	}
	var gauges []MetricPoint
	for _, g := range snap.Gauges {
		if g.Value != 0 {
			gauges = append(gauges, g)
		}
	}
	if len(gauges) > 0 {
		wroteAny = true
		section("gauges")
		for _, g := range gauges {
			fmt.Fprintf(&b, "  %-46s %s\n", g.Name+promLabels(g.Labels, "", ""), formatValue(g.Value))
		}
	}
	var hists []HistogramPoint
	for _, h := range snap.Histograms {
		if h.Count != 0 {
			hists = append(hists, h)
		}
	}
	if len(hists) > 0 {
		wroteAny = true
		section("histograms")
		for _, h := range hists {
			mean := h.Sum / float64(h.Count)
			fmt.Fprintf(&b, "  %-46s count=%d sum=%s mean=%s\n",
				h.Name+promLabels(h.Labels, "", ""), h.Count, formatValue(h.Sum), formatValue(mean))
		}
	}
	if len(snap.Spans) > 0 {
		wroteAny = true
		section("spans (ring buffer)")
		for _, s := range snap.Spans {
			fmt.Fprintf(&b, "  %-46s count=%d total=%.1fms mean=%.2fms max=%.2fms\n",
				s.Name, s.Count, s.TotalMillis, s.MeanMillis, s.MaxMillis)
		}
	}
	if !wroteAny {
		return "telemetry: no activity recorded\n"
	}
	return b.String()
}
