package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestSpanParentChildOrdering(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer()

	root := tr.Start("pipeline")
	child := root.Child("stage")
	grand := child.Child("step")
	time.Sleep(time.Millisecond)
	grand.End()
	child.End()
	root.End()

	recs := tr.Recent()
	if len(recs) != 3 {
		t.Fatalf("recent spans = %d, want 3", len(recs))
	}
	// Ring buffer keeps end order: innermost first.
	if recs[0].Name != "step" || recs[1].Name != "stage" || recs[2].Name != "pipeline" {
		t.Fatalf("span order = %s,%s,%s", recs[0].Name, recs[1].Name, recs[2].Name)
	}
	byName := map[string]SpanRecord{}
	for _, rec := range recs {
		byName[rec.Name] = rec
	}
	if byName["pipeline"].Parent != 0 {
		t.Error("root span has a parent")
	}
	if byName["stage"].Parent != byName["pipeline"].ID {
		t.Error("child span not linked to root")
	}
	if byName["step"].Parent != byName["stage"].ID {
		t.Error("grandchild span not linked to child")
	}
	if byName["step"].Duration < time.Millisecond {
		t.Errorf("grandchild duration = %v, want >= 1ms", byName["step"].Duration)
	}
	// Children end before their parents, so durations nest.
	if byName["pipeline"].Duration < byName["step"].Duration {
		t.Error("parent duration shorter than child duration")
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	r := NewRegistry()
	sp := r.Tracer().Start("once")
	sp.End()
	if d := sp.End(); d != 0 {
		t.Error("second End recorded again")
	}
	if n := len(r.Tracer().Recent()); n != 1 {
		t.Errorf("ring has %d records, want 1", n)
	}
}

func TestSpanRingEviction(t *testing.T) {
	enabled := NewRegistry()
	tr := newTracer(&enabled.enabled, 4)
	for i := 0; i < 10; i++ {
		tr.Start("s").End()
	}
	recs := tr.Recent()
	if len(recs) != 4 {
		t.Fatalf("ring size = %d, want 4", len(recs))
	}
	// Oldest-first: IDs 7,8,9,10 survive.
	if recs[0].ID != 7 || recs[3].ID != 10 {
		t.Errorf("ring IDs = %d..%d, want 7..10", recs[0].ID, recs[3].ID)
	}
}

func TestSpanStats(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer()
	for i := 0; i < 3; i++ {
		tr.Start("b").End()
	}
	tr.Start("a").End()
	stats := tr.Stats()
	if len(stats) != 2 || stats[0].Name != "a" || stats[1].Name != "b" {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[1].Count != 3 {
		t.Errorf("count(b) = %d, want 3", stats[1].Count)
	}
}

func TestSpansConcurrent(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				sp := tr.Start("work")
				sp.Child("inner").End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	if n := len(tr.Recent()); n != defaultSpanRing {
		t.Errorf("ring holds %d spans, want full %d", n, defaultSpanRing)
	}
}
