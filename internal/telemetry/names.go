// Code in this file is the canonical metric-name registry enforced by the
// aegis-lint metricname rule: every name passed to a telemetry
// counter/gauge/histogram constructor anywhere in the module must appear
// here as an exported Metric* string constant. Keeping the full name space
// in one reviewed file is what keeps the Prometheus exposition goldens,
// dashboards, and bench tooling stable — renaming or adding a metric is a
// deliberate, diffable change to this file, never an incidental literal
// edit at a call site.
//
// Naming conventions (also enforced by the rule): snake_case throughout;
// counters end in _total; histograms end in a unit suffix (_seconds,
// _bytes, _ns); gauges are instantaneous values with no unit suffix.
// Call sites may keep using string literals as long as the literal matches
// a constant below.

package telemetry

// Facade (aegis.Framework) funnel counters and config gauges.
const (
	MetricAegisCatalogEvents                  = "aegis_catalog_events"
	MetricAegisConfigClipBound                = "aegis_config_clip_bound"
	MetricAegisConfigFuzzCandidates           = "aegis_config_fuzz_candidates"
	MetricAegisConfigProfileRepeats           = "aegis_config_profile_repeats"
	MetricAegisConfigProfileTraceTicks        = "aegis_config_profile_trace_ticks"
	MetricAegisConfigSensitivity              = "aegis_config_sensitivity"
	MetricAegisFuzzCoverSize                  = "aegis_fuzz_cover_size"
	MetricAegisFuzzRunsTotal                  = "aegis_fuzz_runs_total"
	MetricAegisFuzzSegmentLen                 = "aegis_fuzz_segment_len"
	MetricAegisLegalInstructions              = "aegis_legal_instructions"
	MetricAegisProfileEventsRanked            = "aegis_profile_events_ranked"
	MetricAegisProfileRunsTotal               = "aegis_profile_runs_total"
	MetricAegisProfileWarmupRemaining         = "aegis_profile_warmup_remaining"
	MetricAegisProtectDeploysTotal            = "aegis_protect_deploys_total"
	MetricAegisProtectMultiDeploysTotal       = "aegis_protect_multi_deploys_total"
	MetricAegisProtectMultiSkippedEventsTotal = "aegis_protect_multi_skipped_events_total"
)

// Versioned artifact store (internal/artifact): cache funnel, IO timing
// and corruption signal for the offline-pipeline checkpoint files.
const (
	MetricArtifactCacheHitsTotal   = "artifact_cache_hits_total"
	MetricArtifactCacheMissesTotal = "artifact_cache_misses_total"
	MetricArtifactCorruptTotal     = "artifact_corrupt_total"
	MetricArtifactLoadSeconds      = "artifact_load_seconds"
	MetricArtifactWriteSeconds     = "artifact_write_seconds"
	MetricArtifactWritesTotal      = "artifact_writes_total"
)

// Multi-tenant protection daemon (internal/daemon, cmd/aegisd).
const (
	MetricDaemonAttachesTotal        = "daemon_attaches_total"
	MetricDaemonCtlRequestsTotal     = "daemon_ctl_requests_total"
	MetricDaemonDegradedTenantTicks  = "daemon_degraded_tenant_ticks_total"
	MetricDaemonDetachesTotal        = "daemon_detaches_total"
	MetricDaemonEventsEnqueuedTotal  = "daemon_events_enqueued_total"
	MetricDaemonEventsProcessedTotal = "daemon_events_processed_total"
	MetricDaemonEventsShedTotal      = "daemon_events_shed_total"
	MetricDaemonOverloaded           = "daemon_overloaded"
	MetricDaemonQueueDepth           = "daemon_queue_depth"
	MetricDaemonReloadRejectsTotal   = "daemon_reload_rejects_total"
	MetricDaemonReloadsTotal         = "daemon_reloads_total"
	MetricDaemonTenantTicksTotal     = "daemon_tenant_ticks_total"
	MetricDaemonTenants              = "daemon_tenants"
	MetricDaemonTicksTotal           = "daemon_ticks_total"
)

// Fault-injection substrate.
const (
	MetricFaultInjectedTotal = "fault_injected_total"
)

// Flight recorder (internal/telemetry/flight).
const (
	MetricFlightIncidentsTotal = "flight_incidents_total"
	MetricFlightRecordsTotal   = "flight_records_total"
)

// Gadget-fuzzer campaign funnel.
const (
	MetricFuzzerCandidatesConfirmedTotal   = "fuzzer_candidates_confirmed_total"
	MetricFuzzerCandidatesDroppedTotal     = "fuzzer_candidates_dropped_total"
	MetricFuzzerCandidatesPrefilteredTotal = "fuzzer_candidates_prefiltered_total"
	MetricFuzzerCandidatesRejectedTotal    = "fuzzer_candidates_rejected_total"
	MetricFuzzerCandidatesScreenedTotal    = "fuzzer_candidates_screened_total"
	MetricFuzzerCandidatesTriedTotal       = "fuzzer_candidates_tried_total"
	MetricFuzzerConfirmedDelta             = "fuzzer_confirmed_delta"
	MetricFuzzerCoverSeconds               = "fuzzer_cover_seconds"
	MetricFuzzerEventSeconds               = "fuzzer_event_seconds"
	MetricFuzzerEventsSkippedTotal         = "fuzzer_events_skipped_total"
	MetricFuzzerResumeEventsTotal          = "fuzzer_resume_events_total"
	MetricFuzzerScreenMemoTotal            = "fuzzer_screen_memo_total"
)

// Hardware performance counter substrate.
const (
	MetricHpcMultiplexRotationsTotal = "hpc_multiplex_rotations_total"
	MetricHpcPerfTicksTotal          = "hpc_perf_ticks_total"
	MetricHpcPmuProgramsTotal        = "hpc_pmu_programs_total"
	MetricHpcPmuResetsTotal          = "hpc_pmu_resets_total"
	MetricHpcRdpmcReadsTotal         = "hpc_rdpmc_reads_total"
)

// Online obfuscator tick funnel (single and multi-plan).
const (
	MetricObfuscatorBudgetSaturationsTotal         = "obfuscator_budget_saturations_total"
	MetricObfuscatorClipSaturationsTotal           = "obfuscator_clip_saturations_total"
	MetricObfuscatorCounterRearmsTotal             = "obfuscator_counter_rearms_total"
	MetricObfuscatorDegradedTicksTotal             = "obfuscator_degraded_ticks_total"
	MetricObfuscatorInjectedCountsTotal            = "obfuscator_injected_counts_total"
	MetricObfuscatorInjectedInstructionsTotal      = "obfuscator_injected_instructions_total"
	MetricObfuscatorInjectedRepsTotal              = "obfuscator_injected_reps_total"
	MetricObfuscatorInjectedTicksTotal             = "obfuscator_injected_ticks_total"
	MetricObfuscatorMechanismDrawNs                = "obfuscator_mechanism_draw_ns"
	MetricObfuscatorMechanismFallbacksTotal        = "obfuscator_mechanism_fallbacks_total"
	MetricObfuscatorMultiClipSaturationsTotal      = "obfuscator_multi_clip_saturations_total"
	MetricObfuscatorMultiCounterRearmsTotal        = "obfuscator_multi_counter_rearms_total"
	MetricObfuscatorMultiDegradedPlanTicksTotal    = "obfuscator_multi_degraded_plan_ticks_total"
	MetricObfuscatorMultiInjectedInstructionsTotal = "obfuscator_multi_injected_instructions_total"
	MetricObfuscatorMultiInjectedRepsTotal         = "obfuscator_multi_injected_reps_total"
	MetricObfuscatorMultiRetriesTotal              = "obfuscator_multi_retries_total"
	MetricObfuscatorMultiTicksTotal                = "obfuscator_multi_ticks_total"
	MetricObfuscatorNoInjectionTicksTotal          = "obfuscator_no_injection_ticks_total"
	MetricObfuscatorRetriesTotal                   = "obfuscator_retries_total"
	MetricObfuscatorTicksTotal                     = "obfuscator_ticks_total"
	MetricObfuscatorZeroDrawTicksTotal             = "obfuscator_zero_draw_ticks_total"
)

// Ops server (internal/ops).
const (
	MetricOpsHTTPRequestsTotal = "ops_http_requests_total"
)

// Worker-pool instrumentation.
const (
	MetricParallelItemErrorsTotal = "parallel_item_errors_total"
	MetricParallelItemsTotal      = "parallel_items_total"
	MetricParallelPoolWorkers     = "parallel_pool_workers"
	MetricParallelShardSeconds    = "parallel_shard_seconds"
	MetricParallelWorkersActive   = "parallel_workers_active"
)

// Offline profiler funnel.
const (
	MetricProfilerMiScoreSeconds       = "profiler_mi_score_seconds"
	MetricProfilerRankDegenerateTotal  = "profiler_rank_degenerate_total"
	MetricProfilerRankedEventsTotal    = "profiler_ranked_events_total"
	MetricProfilerResumeShardsTotal    = "profiler_resume_shards_total"
	MetricProfilerTraceCollectSeconds  = "profiler_trace_collect_seconds"
	MetricProfilerWarmupFilteredTotal  = "profiler_warmup_filtered_total"
	MetricProfilerWarmupRemainingTotal = "profiler_warmup_remaining_total"
	MetricProfilerWarmupRunsTotal      = "profiler_warmup_runs_total"
)

// SEV world scheduler.
const (
	MetricSevTickBudget       = "sev_tick_budget"
	MetricSevVcpuStepsTotal   = "sev_vcpu_steps_total"
	MetricSevVmsLaunchedTotal = "sev_vms_launched_total"
	MetricSevWorldTicksTotal  = "sev_world_ticks_total"
)
