package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// defaultSpanRing is the default capacity of a tracer's completed-span
// ring buffer.
const defaultSpanRing = 512

// SpanRecord is one completed span as kept in the tracer's ring buffer.
type SpanRecord struct {
	// ID is unique per tracer; Parent is 0 for root spans.
	ID     uint64
	Parent uint64
	Name   string
	Start  time.Time
	// Duration is the wall clock between Start and End.
	Duration time.Duration
}

// Span is an in-flight timed operation. A nil *Span is valid and inert,
// which is how a disabled tracer makes span instrumentation free.
type Span struct {
	tracer *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time
	ended  atomic.Bool
}

// Child opens a sub-span linked to s. On a nil span it returns nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.start(name, s.id)
}

// End completes the span, records it in the tracer's ring buffer and
// returns its duration. Safe on a nil span and idempotent.
func (s *Span) End() time.Duration {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return 0
	}
	d := time.Since(s.start)
	s.tracer.record(SpanRecord{
		ID: s.id, Parent: s.parent, Name: s.name, Start: s.start, Duration: d,
	})
	return d
}

// Tracer produces spans and keeps the most recent completed ones in a
// fixed-size ring buffer.
type Tracer struct {
	enabled *atomic.Bool
	nextID  atomic.Uint64

	mu   sync.Mutex
	ring []SpanRecord
	next int // ring write position
	full bool
}

func newTracer(enabled *atomic.Bool, capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{enabled: enabled, ring: make([]SpanRecord, capacity)}
}

// Start opens a root span. Returns nil (an inert span) when the registry
// is disabled.
func (t *Tracer) Start(name string) *Span { return t.start(name, 0) }

func (t *Tracer) start(name string, parent uint64) *Span {
	if !t.enabled.Load() {
		return nil
	}
	return &Span{
		tracer: t,
		id:     t.nextID.Add(1),
		parent: parent,
		name:   name,
		start:  time.Now(),
	}
}

func (t *Tracer) record(r SpanRecord) {
	t.mu.Lock()
	t.ring[t.next] = r
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Recent returns the completed spans still in the ring buffer, oldest
// first (i.e. in end order).
func (t *Tracer) Recent() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]SpanRecord(nil), t.ring[:t.next]...)
	}
	out := make([]SpanRecord, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// SpanStat aggregates the ring buffer's completed spans for one span name.
type SpanStat struct {
	Name  string
	Count int
	Total time.Duration
	Max   time.Duration
}

// Mean returns the mean duration.
func (s SpanStat) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// Stats aggregates the buffered spans by name, sorted by name.
func (t *Tracer) Stats() []SpanStat {
	byName := make(map[string]*SpanStat)
	for _, r := range t.Recent() {
		st, ok := byName[r.Name]
		if !ok {
			st = &SpanStat{Name: r.Name}
			byName[r.Name] = st
		}
		st.Count++
		st.Total += r.Duration
		if r.Duration > st.Max {
			st.Max = r.Duration
		}
	}
	out := make([]SpanStat, 0, len(byName))
	for _, st := range byName {
		out = append(out, *st)
	}
	sortSpanStats(out)
	return out
}

func sortSpanStats(s []SpanStat) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Name < s[j-1].Name; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
