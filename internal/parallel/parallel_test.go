package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	p := NewPool("test-order", 8)
	out, err := Map(context.Background(), p, 100, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapDeterministicAcrossParallelism(t *testing.T) {
	run := func(workers int) []string {
		p := NewPool("test-det", workers)
		out, err := Map(context.Background(), p, 50, func(_ context.Context, i int) (string, error) {
			return fmt.Sprintf("item-%03d", i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := strings.Join(run(1), ",")
	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		if got := strings.Join(run(w), ","); got != serial {
			t.Errorf("parallelism %d diverged from serial", w)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var active, peak atomic.Int64
	p := NewPool("test-bound", workers)
	_, err := Map(context.Background(), p, 64, func(_ context.Context, i int) (int, error) {
		cur := active.Add(1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		active.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Errorf("observed %d concurrent items, pool bound is %d", got, workers)
	}
}

func TestMapAggregatesErrorsInIndexOrder(t *testing.T) {
	errBoom := errors.New("boom")
	// Every item fails; several are in flight when the first cancel fires,
	// so the aggregate holds multiple errors which must come out sorted by
	// index, each wrapped with its index and pool name.
	var gate atomic.Bool
	p := NewPool("test-errs", 4)
	out, err := Map(context.Background(), p, 4, func(ctx context.Context, i int) (int, error) {
		if i == 3 {
			gate.Store(true)
		}
		for !gate.Load() { // hold until all four are claimed
			time.Sleep(10 * time.Microsecond)
		}
		return 0, fmt.Errorf("step %d: %w", i, errBoom)
	})
	if err == nil {
		t.Fatal("want aggregated error")
	}
	if !errors.Is(err, errBoom) {
		t.Errorf("errors.Is(err, errBoom) = false: %v", err)
	}
	msg := err.Error()
	last := -1
	for i := 0; i < 4; i++ {
		pos := strings.Index(msg, fmt.Sprintf("test-errs item %d:", i))
		if pos < 0 {
			t.Fatalf("error for item %d missing from %q", i, msg)
		}
		if pos < last {
			t.Fatalf("errors not index-ordered: %q", msg)
		}
		last = pos
	}
	for i, v := range out {
		if v != 0 {
			t.Errorf("failed item %d left non-zero result %d", i, v)
		}
	}
}

func TestMapCancelsRemainingWorkOnError(t *testing.T) {
	var ran atomic.Int64
	p := NewPool("test-cancel", 2)
	_, err := Map(context.Background(), p, 1000, func(ctx context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("first item fails")
		}
		time.Sleep(100 * time.Microsecond)
		return i, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if n := ran.Load(); n == 1000 {
		t.Error("error did not cancel remaining items")
	}
}

func TestMapParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := NewPool("test-parent", 4)
	var ran atomic.Int64
	_, err := Map(ctx, p, 100, func(ctx context.Context, i int) (int, error) {
		ran.Add(1)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n > int64(p.Workers()) {
		t.Errorf("cancelled run still executed %d items", n)
	}
}

func TestMapEmpty(t *testing.T) {
	p := NewPool("test-empty", 4)
	out, err := Map(context.Background(), p, 0, func(_ context.Context, i int) (int, error) {
		t.Error("fn called for empty input")
		return 0, nil
	})
	if err != nil || len(out) != 0 {
		t.Errorf("empty map = (%v, %v)", out, err)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	p := NewPool("test-foreach", 4)
	if err := ForEach(context.Background(), p, 100, func(_ context.Context, i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Errorf("sum = %d, want 4950", sum.Load())
	}
	wantErr := errors.New("nope")
	if err := ForEach(context.Background(), p, 3, func(_ context.Context, i int) error {
		return wantErr
	}); !errors.Is(err, wantErr) {
		t.Errorf("ForEach error = %v", err)
	}
}

func TestPoolAccessors(t *testing.T) {
	p := NewPool("test-accessors", 5)
	if p.Name() != "test-accessors" {
		t.Errorf("Name() = %q", p.Name())
	}
	if p.Workers() != 5 {
		t.Errorf("Workers() = %d", p.Workers())
	}
}
