// Package parallel is the execution layer of the offline pipelines: a
// bounded worker pool with ordered fan-out/fan-in, error aggregation and
// context cancellation, built only on the standard library.
//
// The package exists to make the expensive offline phases (fuzzing
// campaigns, profiler ranking, the experiment tables) scale with cores
// while staying bit-for-bit deterministic. The determinism contract is:
// work items are identified by index, each item derives all of its
// stochastic state from its own index/label (never from a shared stream),
// and results land in input order regardless of which worker ran them or
// when. Under that contract, Map output is byte-identical at any
// parallelism level, including 1.
//
// Each pool publishes worker-utilisation gauges and a per-shard latency
// histogram under its name, so speedups (and stragglers) are observable in
// telemetry.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/aegis/internal/telemetry"
)

// Workers resolves a requested parallelism: values <= 0 select
// runtime.GOMAXPROCS(0), anything else is returned unchanged. Pipelines
// store the raw request in their Config and resolve it at run time, so a
// zero value always tracks the machine.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Pool is a named, bounded worker pool. The name keys the pool's telemetry
// (worker gauges, shard histograms); the worker count bounds concurrency
// for every Map/ForEach run on the pool. A Pool is stateless between runs
// and safe for concurrent use.
type Pool struct {
	name    string
	workers int

	gWorkers *telemetry.Gauge
	gActive  *telemetry.Gauge
	hShard   *telemetry.Histogram
	cItems   *telemetry.Counter
	cErrors  *telemetry.Counter
}

// NewPool builds a pool with Workers(workers) workers named for telemetry.
func NewPool(name string, workers int) *Pool {
	w := Workers(workers)
	p := &Pool{
		name:     name,
		workers:  w,
		gWorkers: telemetry.G("parallel_pool_workers", telemetry.L("pool", name)),
		gActive:  telemetry.G("parallel_workers_active", telemetry.L("pool", name)),
		hShard:   telemetry.H("parallel_shard_seconds", telemetry.DefBuckets, telemetry.L("pool", name)),
		cItems:   telemetry.C("parallel_items_total", telemetry.L("pool", name)),
		cErrors:  telemetry.C("parallel_item_errors_total", telemetry.L("pool", name)),
	}
	p.gWorkers.Set(float64(w))
	return p
}

// Name returns the pool's telemetry name.
func (p *Pool) Name() string { return p.name }

// Workers returns the resolved worker count.
func (p *Pool) Workers() int { return p.workers }

// itemError records one failed index for deterministic aggregation.
type itemError struct {
	index int
	err   error
}

// Map runs fn(ctx, i) for every i in [0, n) across the pool's workers and
// returns the results in input order: out[i] is fn's value for item i,
// regardless of scheduling. The first item error cancels the derived
// context so unstarted items are skipped (their slots keep zero values);
// items already in flight run to completion. All item errors are
// aggregated, ordered by index, and returned joined, each wrapped with its
// index. A nil/cancelled parent context cancels the whole run.
func Map[T any](ctx context.Context, p *Pool, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := p.workers
	if workers > n {
		workers = n
	}

	var (
		next  atomic.Int64
		mu    sync.Mutex
		fails []itemError
		wg    sync.WaitGroup
	)
	timed := telemetry.Enabled()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.gActive.Add(1)
			defer p.gActive.Add(-1)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if runCtx.Err() != nil {
					return
				}
				var start time.Time
				if timed {
					start = time.Now()
				}
				v, err := fn(runCtx, i)
				if timed {
					p.hShard.Observe(time.Since(start).Seconds())
				}
				p.cItems.Inc()
				if err != nil {
					p.cErrors.Inc()
					mu.Lock()
					fails = append(fails, itemError{index: i, err: err})
					mu.Unlock()
					cancel()
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()

	if len(fails) == 0 {
		// Surface parent cancellation even when no item observed it.
		return out, ctx.Err()
	}
	sort.Slice(fails, func(a, b int) bool { return fails[a].index < fails[b].index })
	errs := make([]error, 0, len(fails))
	for _, f := range fails {
		errs = append(errs, fmt.Errorf("%s item %d: %w", p.name, f.index, f.err))
	}
	return out, errors.Join(errs...)
}

// ForEach is Map without results: it runs fn(ctx, i) for every i in [0, n)
// with the same ordering, cancellation and error-aggregation semantics.
func ForEach(ctx context.Context, p *Pool, n int, fn func(ctx context.Context, i int) error) error {
	_, err := Map(ctx, p, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}
