package analysis

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/format"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/repro/aegis/internal/artifact"
)

// Exit codes of the aegis-lint CLI, asserted by cli_test.go and relied on
// by the Makefile gates.
const (
	ExitClean     = 0 // no findings
	ExitFindings  = 1 // at least one diagnostic
	ExitLoadError = 2 // the tree could not be loaded/parsed/type-checked
)

// JSONSchema identifies the -json output format.
const JSONSchema = "aegis-lint/v1"

// jsonReport is the -json document.
type jsonReport struct {
	Schema      string           `json:"schema"`
	Root        string           `json:"root"`
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
}

type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// CLI runs the aegis-lint command line against args (not including the
// program name) and returns the process exit code. All output goes to the
// given writers, so tests can drive it in-process.
func CLI(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aegis-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON (schema aegis-lint/v1)")
	sarifOut := fs.Bool("sarif", false, "emit diagnostics as SARIF 2.1.0 for code-scanning upload")
	audit := fs.Bool("audit", false, "emit a JSON inventory of every //aegis:allow (schema aegis-lint-audit/v1) instead of diagnostics")
	cache := fs.Bool("cache", false, "cache per-package results as lint-result artifacts and reuse them on unchanged packages")
	storeDir := fs.String("store", "", "artifact store directory for -cache (default <module root>/lint.aegis-artifact)")
	gofmt := fs.Bool("gofmt", false, "check gofmt cleanliness over the same file walk instead of linting")
	dir := fs.String("C", ".", "directory to resolve the module from")
	listRules := fs.Bool("rules", false, "list the registered rules and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: aegis-lint [-json|-sarif|-audit] [-cache [-store dir]] [-gofmt] [-rules] [-C dir] [./...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return ExitLoadError
	}

	if *listRules {
		for _, r := range AllRules() {
			fmt.Fprintf(stdout, "%-12s %s\n", r.Name, r.Doc)
		}
		return ExitClean
	}

	root, module, err := FindModule(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "aegis-lint: %v\n", err)
		return ExitLoadError
	}
	loader := NewLoader(root, module)

	if *gofmt {
		return runGofmt(loader, stdout, stderr)
	}

	pkgs, code := loadPatterns(loader, fs.Args(), stderr)
	if code != ExitClean {
		return code
	}

	// The program spans every loaded package (requested plus dependencies)
	// so the interprocedural rules see the whole import closure even when
	// a single directory is requested; only the requested packages are
	// analyzed and reported.
	prog := NewProgram(loader.Loaded())
	rules := AllRules()
	results, code := analyzeTargets(prog, dedupe(pkgs), rules, root, *cache, *storeDir, stderr)
	if code != ExitClean {
		return code
	}

	if *audit {
		if err := writeAudit(stdout, results, root); err != nil {
			fmt.Fprintf(stderr, "aegis-lint: %v\n", err)
			return ExitLoadError
		}
		return ExitClean
	}

	// Unused-suppression hygiene is only judged when every package of the
	// program was a target (a ./... run); see Merge.
	diags := Merge(results, RunningSet(rules), len(results) == len(prog.Packages))
	if *sarifOut {
		if err := WriteSARIF(stdout, diags, rules, root); err != nil {
			fmt.Fprintf(stderr, "aegis-lint: %v\n", err)
			return ExitLoadError
		}
		if len(diags) > 0 {
			return ExitFindings
		}
		return ExitClean
	}
	return emit(diags, root, *jsonOut, stdout, stderr)
}

// dedupe drops repeated packages (overlapping patterns) preserving a
// deterministic path order.
func dedupe(pkgs []*Package) []*Package {
	seen := make(map[string]bool, len(pkgs))
	out := pkgs[:0:0]
	for _, p := range pkgs {
		if !seen[p.Path] {
			seen[p.Path] = true
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// analyzeTargets produces one PackageResult per requested package, going
// through the lint-result artifact cache when enabled. The hit/miss
// funnel is reported to stderr so CI can assert a warm run is all-hit.
func analyzeTargets(prog *Program, pkgs []*Package, rules []*Rule, root string, cache bool, storeDir string, stderr io.Writer) ([]PackageResult, int) {
	results := make([]PackageResult, 0, len(pkgs))
	if !cache {
		for _, pkg := range pkgs {
			results = append(results, AnalyzePackage(prog, pkg, rules))
		}
		return results, ExitClean
	}
	if storeDir == "" {
		storeDir = filepath.Join(root, "lint.aegis-artifact")
	}
	store, err := artifact.Open(storeDir)
	if err != nil {
		fmt.Fprintf(stderr, "aegis-lint: %v\n", err)
		return nil, ExitLoadError
	}
	var stats CacheStats
	for _, pkg := range pkgs {
		res, err := AnalyzeCachedPackage(prog, pkg, rules, store, root, &stats)
		if err != nil {
			fmt.Fprintf(stderr, "aegis-lint: %v\n", err)
			return nil, ExitLoadError
		}
		results = append(results, res)
	}
	fmt.Fprintf(stderr, "aegis-lint: lint-result cache: %d hit, %d miss\n", stats.Hits, stats.Misses)
	return results, ExitClean
}

// loadPatterns resolves the package patterns (default "./...") against the
// loader. Supported forms: "./..." for the whole module, or a directory
// path (relative to the invocation) naming one package.
func loadPatterns(loader *Loader, patterns []string, stderr io.Writer) ([]*Package, int) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*Package
	for _, pat := range patterns {
		if pat == "./..." || pat == "..." {
			all, err := loader.LoadAll()
			if err != nil {
				fmt.Fprintf(stderr, "aegis-lint: %v\n", err)
				return nil, ExitLoadError
			}
			pkgs = append(pkgs, all...)
			continue
		}
		abs, err := filepath.Abs(pat)
		if err == nil {
			abs, err = filepath.EvalSymlinks(abs)
		}
		if err != nil {
			fmt.Fprintf(stderr, "aegis-lint: %v\n", err)
			return nil, ExitLoadError
		}
		rel, err := filepath.Rel(loader.Root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			fmt.Fprintf(stderr, "aegis-lint: %s is outside module root %s\n", pat, loader.Root)
			return nil, ExitLoadError
		}
		pkg, err := loader.LoadDir(filepath.ToSlash(rel))
		if err != nil {
			fmt.Fprintf(stderr, "aegis-lint: %v\n", err)
			return nil, ExitLoadError
		}
		if pkg == nil {
			fmt.Fprintf(stderr, "aegis-lint: no Go files in %s\n", pat)
			return nil, ExitLoadError
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, ExitClean
}

// emit prints the diagnostics (text or JSON, paths relative to root) and
// returns the exit code.
func emit(diags []Diagnostic, root string, asJSON bool, stdout, stderr io.Writer) int {
	rel := func(file string) string {
		if r, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(r, "..") {
			return filepath.ToSlash(r)
		}
		return file
	}
	if asJSON {
		report := jsonReport{Schema: JSONSchema, Root: root, Diagnostics: []jsonDiagnostic{}}
		for _, d := range diags {
			report.Diagnostics = append(report.Diagnostics, jsonDiagnostic{
				File: rel(d.Pos.Filename), Line: d.Pos.Line, Col: d.Pos.Column,
				Rule: d.Rule, Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(stderr, "aegis-lint: %v\n", err)
			return ExitLoadError
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
		}
	}
	if len(diags) > 0 {
		return ExitFindings
	}
	return ExitClean
}

// runGofmt checks that every Go file on the shared walk (tests included,
// testdata fixtures excluded) is gofmt-clean, printing the dirty files.
func runGofmt(loader *Loader, stdout, stderr io.Writer) int {
	files, err := loader.GoFiles()
	if err != nil {
		fmt.Fprintf(stderr, "aegis-lint: %v\n", err)
		return ExitLoadError
	}
	dirty := 0
	for _, rel := range files {
		full := filepath.Join(loader.Root, filepath.FromSlash(rel))
		src, err := os.ReadFile(full)
		if err != nil {
			fmt.Fprintf(stderr, "aegis-lint: %v\n", err)
			return ExitLoadError
		}
		formatted, err := format.Source(src)
		if err != nil {
			fmt.Fprintf(stderr, "aegis-lint: gofmt %s: %v\n", rel, err)
			return ExitLoadError
		}
		if !bytes.Equal(src, formatted) {
			fmt.Fprintf(stdout, "%s\n", rel)
			dirty++
		}
	}
	if dirty > 0 {
		fmt.Fprintf(stderr, "aegis-lint: %d file(s) need gofmt\n", dirty)
		return ExitFindings
	}
	return ExitClean
}
