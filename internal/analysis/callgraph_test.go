package analysis

import (
	"fmt"
	"strings"
	"testing"
)

// cgTree is a small module exercising every edge class the call graph
// distinguishes: static calls, interface dispatch over-approximation,
// method values, closures, go statements, and recursion.
var cgTree = map[string]string{
	"go.mod": "module cgmod\n\ngo 1.21\n",
	"a/a.go": `package a

type Op interface{ Do(int) int }

type Add struct{}

func (Add) Do(x int) int { return x + 1 }

type Mul struct{}

func (m *Mul) Do(x int) int { return x * 2 }

func Static(x int) int { return helper(x) }

func helper(x int) int { return x }

func Dispatch(o Op, x int) int { return o.Do(x) }

func MethodValue(x int) int {
	f := Add{}.Do
	return f(x)
}

func Closure(x int) int {
	inc := func(v int) int { return helper(v) }
	return inc(x)
}

func Spawn() {
	go helper(1)
}

func Rec(n int) int {
	if n <= 0 {
		return 0
	}
	return Rec(n - 1)
}

func MutA(n int) int {
	if n <= 0 {
		return 0
	}
	return MutB(n - 1)
}

func MutB(n int) int { return MutA(n) }
`,
}

func buildGraph(t *testing.T, root string) (*Program, *CallGraph) {
	t.Helper()
	pkgs, err := NewLoader(root, "cgmod").LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram(pkgs)
	return prog, prog.CallGraph()
}

func graphNode(t *testing.T, g *CallGraph, id string) *Node {
	t.Helper()
	for _, n := range g.Nodes() {
		if n.ID() == id {
			return n
		}
	}
	t.Fatalf("no node %q in graph (have %d nodes)", id, len(g.Nodes()))
	return nil
}

func TestCallGraphStaticCall(t *testing.T) {
	_, g := buildGraph(t, writeTree(t, cgTree))
	n := graphNode(t, g, "cgmod/a.Static")
	if len(n.Edges) != 1 || len(n.Dynamic) != 0 {
		t.Fatalf("Static: got %d edges, %d dyn sites; want 1, 0", len(n.Edges), len(n.Dynamic))
	}
	e := n.Edges[0]
	if e.Callee.ID() != "cgmod/a.helper" || e.Dynamic || e.InClosure || e.Async {
		t.Errorf("Static edge = %s dynamic=%v inClosure=%v async=%v; want plain static call of helper",
			e.Callee.ID(), e.Dynamic, e.InClosure, e.Async)
	}
}

func TestCallGraphInterfaceDispatchOverApproximation(t *testing.T) {
	_, g := buildGraph(t, writeTree(t, cgTree))
	n := graphNode(t, g, "cgmod/a.Dispatch")
	// o.Do(x) must over-approximate to every module method matching the
	// interface method's name and signature, value and pointer receivers
	// alike, with every edge marked Dynamic.
	var callees []string
	for _, e := range n.Edges {
		if !e.Dynamic {
			t.Errorf("dispatch edge to %s not marked Dynamic", e.Callee.ID())
		}
		callees = append(callees, e.Callee.ID())
	}
	if len(callees) != 2 {
		t.Fatalf("Dispatch resolved to %v; want both Do implementations", callees)
	}
	joined := strings.Join(callees, " ")
	if !strings.Contains(joined, "cgmod/a.Add") || !strings.Contains(joined, "cgmod/a.Mul") {
		t.Errorf("Dispatch callees = %v; want Add.Do and (*Mul).Do", callees)
	}
}

func TestCallGraphMethodValueIsDynamicSite(t *testing.T) {
	_, g := buildGraph(t, writeTree(t, cgTree))
	n := graphNode(t, g, "cgmod/a.MethodValue")
	// The call of f (a method value) cannot be resolved statically: it is
	// a DynSite, not an edge.
	if len(n.Edges) != 0 {
		t.Errorf("MethodValue has %d edges; want 0 (method-value call is unresolvable)", len(n.Edges))
	}
	if len(n.Dynamic) != 1 || n.Dynamic[0].Expr != "f" {
		t.Fatalf("MethodValue dyn sites = %+v; want one site for f", n.Dynamic)
	}
}

func TestCallGraphClosureEdges(t *testing.T) {
	_, g := buildGraph(t, writeTree(t, cgTree))
	n := graphNode(t, g, "cgmod/a.Closure")
	// helper is called from inside the func literal: the edge exists but
	// is flagged InClosure. The call of inc itself is a DynSite.
	var helperEdge *Edge
	for i := range n.Edges {
		if n.Edges[i].Callee.ID() == "cgmod/a.helper" {
			helperEdge = &n.Edges[i]
		}
	}
	if helperEdge == nil || !helperEdge.InClosure {
		t.Errorf("Closure -> helper edge = %+v; want present with InClosure", helperEdge)
	}
	if len(n.Dynamic) != 1 || !strings.Contains(n.Dynamic[0].Expr, "inc") {
		t.Errorf("Closure dyn sites = %+v; want one site for inc", n.Dynamic)
	}
}

func TestCallGraphAsyncEdge(t *testing.T) {
	_, g := buildGraph(t, writeTree(t, cgTree))
	n := graphNode(t, g, "cgmod/a.Spawn")
	if len(n.Edges) != 1 || !n.Edges[0].Async {
		t.Fatalf("Spawn edges = %+v; want one Async edge to helper", n.Edges)
	}
}

func TestCallGraphRecursion(t *testing.T) {
	_, g := buildGraph(t, writeTree(t, cgTree))
	rec := graphNode(t, g, "cgmod/a.Rec")
	if len(rec.Edges) != 1 || rec.Edges[0].Callee != rec {
		t.Errorf("Rec edges = %+v; want one self-edge", rec.Edges)
	}
	// Mutual recursion: both edges exist and the reverse adjacency agrees.
	ma, mb := graphNode(t, g, "cgmod/a.MutA"), graphNode(t, g, "cgmod/a.MutB")
	if len(ma.Edges) != 1 || ma.Edges[0].Callee != mb {
		t.Errorf("MutA edges = %+v; want MutB", ma.Edges)
	}
	if len(mb.Edges) != 1 || mb.Edges[0].Callee != ma {
		t.Errorf("MutB edges = %+v; want MutA", mb.Edges)
	}
	found := false
	for _, ce := range g.Callers(ma) {
		if ce.Caller == mb {
			found = true
		}
	}
	if !found {
		t.Error("Callers(MutA) does not list MutB")
	}
}

// dumpGraph renders a graph into a canonical string (node IDs, edge
// callees with flags and positions, dyn sites) for determinism checks.
func dumpGraph(g *CallGraph) string {
	var b strings.Builder
	for _, n := range g.Nodes() {
		fmt.Fprintf(&b, "%s\n", n.ID())
		for _, e := range n.Edges {
			fmt.Fprintf(&b, "  -> %s dyn=%v clo=%v async=%v at %s\n",
				e.Callee.ID(), e.Dynamic, e.InClosure, e.Async, n.Pkg.Fset.Position(e.Pos))
		}
		for _, d := range n.Dynamic {
			fmt.Fprintf(&b, "  ?? %s clo=%v async=%v at %s\n",
				d.Expr, d.InClosure, d.Async, n.Pkg.Fset.Position(d.Pos))
		}
	}
	return b.String()
}

func TestCallGraphDeterminism(t *testing.T) {
	root := writeTree(t, cgTree)
	_, g1 := buildGraph(t, root)
	_, g2 := buildGraph(t, root)
	if d1, d2 := dumpGraph(g1), dumpGraph(g2); d1 != d2 {
		t.Errorf("two builds over the same tree differ:\n--- first\n%s--- second\n%s", d1, d2)
	}
}

// TestAnalyzeDeterministicDiagnostics pins diagnostic order: two
// independent loads and analyses of the same fixture must render the
// exact same diagnostics in the exact same order.
func TestAnalyzeDeterministicDiagnostics(t *testing.T) {
	render := func() []string {
		pkgs := loadFixture(t, "hotpathdeep")
		diags := Analyze(pkgs, AllRules())
		out := make([]string, len(diags))
		for i, d := range diags {
			out[i] = d.String()
		}
		return out
	}
	a, b := render(), render()
	if len(a) != len(b) {
		t.Fatalf("diagnostic count differs across runs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("diagnostic %d differs:\n%s\n%s", i, a[i], b[i])
		}
	}
}
