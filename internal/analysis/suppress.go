package analysis

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
)

// allowPattern matches a well-formed suppression comment. The directive
// style (no space after //, like //go:) keeps gofmt from reindenting it.
var allowPattern = regexp.MustCompile(`^aegis:allow\(([a-zA-Z0-9_-]+)\)[ \t]*(.*)$`)

// allow is one //aegis:allow(rule) reason comment found in a source file.
type allow struct {
	pos    token.Position
	rule   string
	reason string
	valid  bool // names a registered rule and carries a reason
	used   bool
}

// key identifies an allow stably across separate analysis runs: the deep
// rules can mark a dependency file's allow used while analyzing a
// downstream package, and Merge unions these keys before judging
// unused-ness.
func (a *allow) key() string {
	return fmt.Sprintf("%s:%d:%s", a.pos.Filename, a.pos.Line, a.rule)
}

// AllowRecord is the exported inventory form of one //aegis:allow comment,
// used by Merge for hygiene and by `aegis-lint -audit` for review.
type AllowRecord struct {
	Pos       token.Position `json:"pos"`
	Rule      string         `json:"rule"`
	Reason    string         `json:"reason"`
	Malformed bool           `json:"malformed,omitempty"`
}

// Key returns the record's cross-run identity (file:line:rule).
func (r AllowRecord) Key() string {
	return fmt.Sprintf("%s:%d:%s", r.Pos.Filename, r.Pos.Line, r.Rule)
}

// suppressions indexes every allow comment visible to one package's
// analysis — the package's own files plus its module import closure, since
// interprocedural diagnostics can land in dependency files — by (file,
// line) so diagnostics can be matched against the same line or the line
// directly below the comment.
type suppressions struct {
	byLine map[string]map[int][]*allow // file -> line -> allows
	order  []*allow                    // discovery order for inventory
}

// collect scans a package's comments for aegis:allow directives. Malformed
// directives (missing parens) are recorded as invalid so hygiene can
// report them.
func (s *suppressions) collect(pkg *Package) {
	if s.byLine == nil {
		s.byLine = make(map[string]map[int][]*allow)
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok || !strings.HasPrefix(strings.TrimSpace(text), "aegis:allow") {
					continue
				}
				a := &allow{pos: pkg.Fset.Position(c.Pos())}
				if m := allowPattern.FindStringSubmatch(strings.TrimSpace(text)); m != nil {
					a.rule = m[1]
					a.reason = strings.TrimSpace(m[2])
					a.valid = RuleByName(a.rule) != nil && a.reason != ""
				}
				s.order = append(s.order, a)
				file := a.pos.Filename
				if s.byLine[file] == nil {
					s.byLine[file] = make(map[int][]*allow)
				}
				s.byLine[file][a.pos.Line] = append(s.byLine[file][a.pos.Line], a)
			}
		}
	}
}

// suppresses reports whether d is covered by a valid allow comment on the
// same line or the line directly above, and marks that allow used.
func (s *suppressions) suppresses(d Diagnostic) bool {
	if d.Rule == SuppressionRule {
		return false
	}
	lines := s.byLine[d.Pos.Filename]
	hit := false
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, a := range lines[line] {
			if a.valid && a.rule == d.Rule {
				a.used = true
				hit = true
			}
		}
	}
	return hit
}

// allowsAt reports whether a valid allow for rule covers the given
// position (same line or line above) and marks it used. The deep rules
// use this to prune call-graph traversal at explicitly-allowed call
// sites.
func (s *suppressions) allowsAt(pos token.Position, rule string) bool {
	lines := s.byLine[pos.Filename]
	hit := false
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, a := range lines[line] {
			if a.valid && a.rule == rule {
				a.used = true
				hit = true
			}
		}
	}
	return hit
}

// records returns the inventory of allows found in the given files
// (a package's own sources), in discovery order.
func (s *suppressions) records(ownFiles map[string]bool) []AllowRecord {
	var out []AllowRecord
	for _, a := range s.order {
		if !ownFiles[a.pos.Filename] {
			continue
		}
		out = append(out, AllowRecord{
			Pos:       a.pos,
			Rule:      a.rule,
			Reason:    a.reason,
			Malformed: a.rule == "",
		})
	}
	return out
}

// usedKeys returns the keys of every allow marked used during this
// analysis, in discovery order. Keys may reference files of dependency
// packages: deep rules mark call-site allows along whole call chains.
func (s *suppressions) usedKeys() []string {
	var out []string
	for _, a := range s.order {
		if a.used {
			out = append(out, a.key())
		}
	}
	return out
}
