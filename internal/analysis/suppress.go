package analysis

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
)

// allowPattern matches a well-formed suppression comment. The directive
// style (no space after //, like //go:) keeps gofmt from reindenting it.
var allowPattern = regexp.MustCompile(`^aegis:allow\(([a-zA-Z0-9_-]+)\)[ \t]*(.*)$`)

// allow is one //aegis:allow(rule) reason comment found in a source file.
type allow struct {
	pos    token.Position
	rule   string
	reason string
	valid  bool // names a registered rule and carries a reason
	used   bool
}

// suppressions indexes every allow comment in the analyzed packages by
// (file, line) so diagnostics can be matched against the same line or the
// line directly below the comment.
type suppressions struct {
	byLine map[string]map[int][]*allow // file -> line -> allows
	order  []*allow                    // discovery order for hygiene reports
}

// collect scans a package's comments for aegis:allow directives. Malformed
// directives (missing parens) are recorded as invalid so hygiene() can
// report them.
func (s *suppressions) collect(pkg *Package) {
	if s.byLine == nil {
		s.byLine = make(map[string]map[int][]*allow)
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok || !strings.HasPrefix(strings.TrimSpace(text), "aegis:allow") {
					continue
				}
				a := &allow{pos: pkg.Fset.Position(c.Pos())}
				if m := allowPattern.FindStringSubmatch(strings.TrimSpace(text)); m != nil {
					a.rule = m[1]
					a.reason = strings.TrimSpace(m[2])
					a.valid = RuleByName(a.rule) != nil && a.reason != ""
				}
				s.order = append(s.order, a)
				file := a.pos.Filename
				if s.byLine[file] == nil {
					s.byLine[file] = make(map[int][]*allow)
				}
				s.byLine[file][a.pos.Line] = append(s.byLine[file][a.pos.Line], a)
			}
		}
	}
}

// suppresses reports whether d is covered by a valid allow comment on the
// same line or the line directly above, and marks that allow used.
func (s *suppressions) suppresses(d Diagnostic) bool {
	if d.Rule == SuppressionRule {
		return false
	}
	lines := s.byLine[d.Pos.Filename]
	hit := false
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, a := range lines[line] {
			if a.valid && a.rule == d.Rule {
				a.used = true
				hit = true
			}
		}
	}
	return hit
}

// hygiene reports malformed, unknown-rule, reason-less, and unused allow
// comments. Unused-ness is only judged for rules in the running set, so a
// single-rule invocation does not flag allows belonging to other rules.
func (s *suppressions) hygiene(running map[string]bool) []Diagnostic {
	var out []Diagnostic
	report := func(a *allow, format string, args ...any) {
		out = append(out, Diagnostic{Pos: a.pos, Rule: SuppressionRule,
			Message: fmt.Sprintf(format, args...)})
	}
	for _, a := range s.order {
		switch {
		case a.rule == "":
			report(a, "malformed suppression; want //aegis:allow(rule) reason")
		case RuleByName(a.rule) == nil:
			report(a, "suppression names unknown rule %q", a.rule)
		case a.reason == "":
			report(a, "suppression of %q has no reason; state why the site is exempt", a.rule)
		case running[a.rule] && !a.used:
			report(a, "unused suppression of %q; the site no longer trips the rule", a.rule)
		}
	}
	return out
}
