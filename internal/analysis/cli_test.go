package analysis

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materialises a temp module from rel-path -> contents and
// returns its root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	// t.TempDir may live under a symlinked parent (macOS /var); resolve it
	// so CLI path resolution sees the same root the loader does.
	if r, err := filepath.EvalSymlinks(root); err == nil {
		root = r
	}
	for rel, content := range files {
		full := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := CLI(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

const cleanFile = `package clean

func Add(a, b int) int { return a + b }
`

// dirtyFuzzer trips detrand inside a deterministic package.
const dirtyFuzzer = `package fuzzer

import "time"

var T = time.Now()
`

func TestCLIExitClean(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":              "module tmpmod\n\ngo 1.21\n",
		"internal/clean/c.go": cleanFile,
	})
	code, stdout, stderr := runCLI(t, "-C", root, "./...")
	if code != ExitClean {
		t.Fatalf("exit = %d, want %d\nstdout: %s\nstderr: %s", code, ExitClean, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run printed: %q", stdout)
	}
}

func TestCLIExitFindings(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":                 "module tmpmod\n\ngo 1.21\n",
		"internal/fuzzer/fz.go":  dirtyFuzzer,
		"internal/clean/ok.go":   cleanFile,
		"internal/clean/ok2.go":  "package clean\n",
		"internal/clean/doc.go":  "// Package clean is clean.\npackage clean\n",
		"internal/clean/ok3.go":  "package clean\n\nvar V = Add(1, 2)\n",
		"internal/clean/util.go": "package clean\n\nfunc Util() {}\n",
	})
	code, stdout, _ := runCLI(t, "-C", root, "./...")
	if code != ExitFindings {
		t.Fatalf("exit = %d, want %d", code, ExitFindings)
	}
	if !strings.Contains(stdout, "detrand") || !strings.Contains(stdout, "internal/fuzzer/fz.go:5") {
		t.Errorf("findings output missing detrand diagnostic:\n%s", stdout)
	}
}

func TestCLIExitLoadError(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":      "module tmpmod\n\ngo 1.21\n",
		"bad/bad.go":  "package bad\n\nfunc missingBody( {\n",
		"ok/clean.go": cleanFile,
	})
	code, _, stderr := runCLI(t, "-C", root, "./...")
	if code != ExitLoadError {
		t.Fatalf("exit = %d, want %d\nstderr: %s", code, ExitLoadError, stderr)
	}
	if stderr == "" {
		t.Error("load error produced no stderr")
	}
}

func TestCLINoModule(t *testing.T) {
	root := writeTree(t, map[string]string{"readme.txt": "not a module\n"})
	code, _, stderr := runCLI(t, "-C", root)
	if code != ExitLoadError {
		t.Fatalf("exit = %d, want %d", code, ExitLoadError)
	}
	if !strings.Contains(stderr, "go.mod") {
		t.Errorf("stderr should mention go.mod: %q", stderr)
	}
}

func TestCLIJSON(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":                "module tmpmod\n\ngo 1.21\n",
		"internal/fuzzer/fz.go": dirtyFuzzer,
	})
	code, stdout, _ := runCLI(t, "-C", root, "-json", "./...")
	if code != ExitFindings {
		t.Fatalf("exit = %d, want %d", code, ExitFindings)
	}
	var report struct {
		Schema      string `json:"schema"`
		Root        string `json:"root"`
		Diagnostics []struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(stdout), &report); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, stdout)
	}
	if report.Schema != JSONSchema {
		t.Errorf("schema = %q, want %q", report.Schema, JSONSchema)
	}
	if report.Root != root {
		t.Errorf("root = %q, want %q", report.Root, root)
	}
	if len(report.Diagnostics) == 0 {
		t.Fatal("no diagnostics in JSON report")
	}
	d := report.Diagnostics[0]
	if d.Rule != "detrand" || d.File != "internal/fuzzer/fz.go" || d.Line != 5 || d.Col == 0 || d.Message == "" {
		t.Errorf("unexpected first diagnostic: %+v", d)
	}
}

func TestCLIJSONCleanHasEmptyArray(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":              "module tmpmod\n\ngo 1.21\n",
		"internal/clean/c.go": cleanFile,
	})
	code, stdout, _ := runCLI(t, "-C", root, "-json")
	if code != ExitClean {
		t.Fatalf("exit = %d, want %d", code, ExitClean)
	}
	if !strings.Contains(stdout, `"diagnostics": []`) {
		t.Errorf("clean JSON report should carry an empty array, not null:\n%s", stdout)
	}
}

func TestCLISingleDirPattern(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":                "module tmpmod\n\ngo 1.21\n",
		"internal/fuzzer/fz.go": dirtyFuzzer,
		"internal/clean/c.go":   cleanFile,
	})
	// Linting only the clean package must not surface the fuzzer finding.
	code, stdout, stderr := runCLI(t, "-C", root, filepath.Join(root, "internal/clean"))
	if code != ExitClean {
		t.Fatalf("exit = %d, want %d\nstdout: %s\nstderr: %s", code, ExitClean, stdout, stderr)
	}
	code, _, _ = runCLI(t, "-C", root, filepath.Join(root, "internal/fuzzer"))
	if code != ExitFindings {
		t.Fatalf("exit = %d, want %d", code, ExitFindings)
	}
}

func TestCLIGofmt(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":                 "module tmpmod\n\ngo 1.21\n",
		"internal/clean/c.go":    cleanFile,
		"internal/clean/ugly.go": "package clean\n\nfunc  Ugly( ) {   }\n",
		// Unparsable and unformatted trees under testdata must be skipped
		// by the shared walk.
		"internal/clean/testdata/src/x/x.go": "package x\n\nfunc broken( {\n",
	})
	code, stdout, stderr := runCLI(t, "-C", root, "-gofmt")
	if code != ExitFindings {
		t.Fatalf("exit = %d, want %d\nstderr: %s", code, ExitFindings, stderr)
	}
	if !strings.Contains(stdout, "internal/clean/ugly.go") {
		t.Errorf("dirty file not reported:\n%s", stdout)
	}
	if strings.Contains(stdout, "testdata") || strings.Contains(stderr, "testdata") {
		t.Errorf("testdata tree was not skipped:\nstdout: %s\nstderr: %s", stdout, stderr)
	}

	// Fix the ugly file; the walk (still skipping testdata) goes clean.
	if err := os.WriteFile(filepath.Join(root, "internal/clean/ugly.go"),
		[]byte("package clean\n\nfunc Ugly() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr = runCLI(t, "-C", root, "-gofmt")
	if code != ExitClean {
		t.Fatalf("exit = %d after fix, want %d\nstdout: %s\nstderr: %s", code, ExitClean, stdout, stderr)
	}
}

func TestCLIRulesListing(t *testing.T) {
	code, stdout, _ := runCLI(t, "-rules")
	if code != ExitClean {
		t.Fatalf("exit = %d, want %d", code, ExitClean)
	}
	for _, r := range AllRules() {
		if !strings.Contains(stdout, r.Name) {
			t.Errorf("-rules output missing %q:\n%s", r.Name, stdout)
		}
	}
}

func TestCLIOutsideModuleRejected(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":              "module tmpmod\n\ngo 1.21\n",
		"internal/clean/c.go": cleanFile,
	})
	other := t.TempDir()
	code, _, stderr := runCLI(t, "-C", root, other)
	if code != ExitLoadError {
		t.Fatalf("exit = %d, want %d", code, ExitLoadError)
	}
	if !strings.Contains(stderr, "outside module root") {
		t.Errorf("stderr should reject out-of-module path: %q", stderr)
	}
}
