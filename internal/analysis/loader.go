package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package from the linted tree.
type Package struct {
	Path      string   // import path
	Dir       string   // absolute directory
	Module    string   // import path of the enclosing module
	Filenames []string // absolute paths of the parsed files, sorted
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	Info      *types.Info
}

// Loader discovers, parses, and type-checks packages under a module root.
// Imports inside the module are resolved from the loader's own cache (one
// types.Package identity per path); everything else — the standard library
// — goes through go/importer's source importer, so the loader works with
// an empty go.mod and no compiled export data.
//
// The loader analyzes non-test files only: _test.go files are part of the
// repo's dynamic gates, not the static contracts, and fixture trees under
// testdata/ (which deliberately contain ill-formed code) are skipped by
// the walk — the same walk `aegis-lint -gofmt` uses, so the format gate
// and the lint gate agree on what "the repo" is.
type Loader struct {
	Root   string // absolute module root
	Module string // import path of the root package
	Fset   *token.FileSet

	pkgs    map[string]*Package
	loading map[string]bool
	stdlib  types.Importer
}

// NewLoader returns a loader for the module rooted at root with the given
// module path.
func NewLoader(root, module string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Root:    root,
		Module:  module,
		Fset:    fset,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		stdlib:  importer.ForCompiler(fset, "source", nil),
	}
}

// skipDir reports whether a directory is excluded from every repo walk:
// fixture trees (intentionally ill-formed / gofmt-dirty), vendored or
// hidden trees, and VCS metadata.
func skipDir(name string) bool {
	if name == "testdata" || name == "vendor" {
		return true
	}
	return strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// isGoFile reports whether name is a Go source file the walks consider.
func isGoFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// walk visits every directory under root that survives skipDir, in sorted
// order, calling fn with the relative directory and its entries.
func (l *Loader) walk(fn func(rel string, entries []fs.DirEntry) error) error {
	return filepath.WalkDir(l.Root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if p != l.Root && skipDir(d.Name()) {
			return fs.SkipDir
		}
		rel, err := filepath.Rel(l.Root, p)
		if err != nil {
			return err
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		return fn(filepath.ToSlash(rel), entries)
	})
}

// PackageDirs returns every directory under the root (as a slash-separated
// path relative to it, "." for the root itself) containing at least one
// non-test Go file.
func (l *Loader) PackageDirs() ([]string, error) {
	var dirs []string
	err := l.walk(func(rel string, entries []fs.DirEntry) error {
		for _, e := range entries {
			if !e.IsDir() && isGoFile(e.Name()) && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, rel)
				return nil
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// GoFiles returns every Go file under the root (including _test.go files)
// that the repo-wide gates cover, as paths relative to the root. This is
// the shared file-walk behind both `aegis-lint -gofmt` and the analysis
// load: fixture trees under testdata/ never reach either gate.
func (l *Loader) GoFiles() ([]string, error) {
	var files []string
	err := l.walk(func(rel string, entries []fs.DirEntry) error {
		for _, e := range entries {
			if !e.IsDir() && isGoFile(e.Name()) {
				files = append(files, path.Join(rel, e.Name()))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	return files, nil
}

// importPath maps a root-relative directory to its import path.
func (l *Loader) importPath(rel string) string {
	if rel == "." || rel == "" {
		return l.Module
	}
	return path.Join(l.Module, rel)
}

// relDir maps an import path back to a root-relative directory, reporting
// whether the path belongs to this module.
func (l *Loader) relDir(importPath string) (string, bool) {
	if importPath == l.Module {
		return ".", true
	}
	if rest, ok := strings.CutPrefix(importPath, l.Module+"/"); ok {
		return rest, true
	}
	return "", false
}

// LoadDir parses and type-checks the package in the root-relative
// directory rel. Results are cached by import path; a directory with no
// non-test Go files returns (nil, nil).
func (l *Loader) LoadDir(rel string) (*Package, error) {
	importPath := l.importPath(rel)
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	dir := filepath.Join(l.Root, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	var fullNames []string
	for _, e := range entries {
		if e.IsDir() || !isGoFile(e.Name()) || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.Fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		fullNames = append(fullNames, full)
	}
	if len(files) == 0 {
		return nil, nil
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, errors.Join(typeErrs...))
	}
	pkg := &Package{
		Path:      importPath,
		Dir:       dir,
		Module:    l.Module,
		Filenames: fullNames,
		Fset:      l.Fset,
		Files:     files,
		Types:     tpkg,
		Info:      info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// Loaded returns every package currently in the loader's cache (requested
// packages plus their module-internal dependencies), sorted by import
// path.
func (l *Loader) Loaded() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, pkg := range l.pkgs {
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Import implements types.Importer: module-internal paths load from the
// loader's own tree, "unsafe" maps to types.Unsafe, and everything else is
// delegated to the standard-library source importer.
func (l *Loader) Import(importPath string) (*types.Package, error) {
	if importPath == "unsafe" {
		return types.Unsafe, nil
	}
	if rel, ok := l.relDir(importPath); ok {
		pkg, err := l.LoadDir(rel)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("no Go files in %s", importPath)
		}
		return pkg.Types, nil
	}
	return l.stdlib.Import(importPath)
}

// LoadAll loads every package under the root, in sorted directory order.
func (l *Loader) LoadAll() ([]*Package, error) {
	dirs, err := l.PackageDirs()
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, rel := range dirs {
		pkg, err := l.LoadDir(rel)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, module string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}
