// Package analysis implements aegis-lint: a stdlib-only static-analysis
// driver that mechanically enforces the repository's determinism, hot-path,
// telemetry-naming, and error-wrapping contracts (see DESIGN.md
// "Mechanically enforced invariants").
//
// The driver loads every package in the module with go/parser, type-checks
// it with go/types (resolving module-internal imports from source and
// standard-library imports through the source importer — no x/tools
// dependency, go.mod stays empty), and runs a registry of rules. Each rule
// is one file plus one fixture directory under testdata/; diagnostics carry
// file:line:col positions and can be silenced site-by-site with an
//
//	//aegis:allow(rule) reason
//
// comment on the flagged line or the line directly above it. A suppression
// must carry a reason, must name a known rule, and must actually suppress
// something — unused or malformed suppressions are diagnostics themselves,
// so stale allows cannot accumulate.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in the linted source tree.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Pass carries one type-checked package through one rule.
type Pass struct {
	Fset  *token.FileSet
	Path  string // import path of the package under analysis
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	rule   string
	sink   *[]Diagnostic
	filter func(Diagnostic) bool
}

// Reportf records a diagnostic at pos for the rule currently running.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	d := Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	}
	if p.filter != nil && !p.filter(d) {
		return
	}
	*p.sink = append(*p.sink, d)
}

// Rule is one named check. Run inspects a single package and reports
// findings through pass.Reportf.
type Rule struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// SuppressionRule is the reserved name under which the driver reports
// malformed, unknown-rule, reason-less, and unused //aegis:allow comments.
// It is not a Rule (it cannot be disabled) and cannot itself be suppressed.
const SuppressionRule = "suppression"

// AllRules returns every registered rule, sorted by name. Adding a rule to
// the suite means adding one file defining it, listing it here, and adding
// a fixture directory under testdata/src/<name>/.
func AllRules() []*Rule {
	rules := []*Rule{
		detrandRule,
		errwrapRule,
		flightkindRule,
		hotpathRule,
		maprangeRule,
		metricnameRule,
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].Name < rules[j].Name })
	return rules
}

// RuleByName returns the named rule, or nil.
func RuleByName(name string) *Rule {
	for _, r := range AllRules() {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// deterministicLeaves names the internal packages whose outputs must be
// pure functions of (seed, config): the replay contracts in DESIGN.md hang
// off these. detrand and maprange apply only here.
var deterministicLeaves = []string{
	"daemon",
	"faultinject",
	"fuzzer",
	"hpc",
	"obfuscator",
	"profiler",
	"rng",
	"sev",
	"stats",
	"workload",
}

// IsDeterministicPackage reports whether the import path is one of the
// deterministic simulation packages (matched as a path suffix
// "internal/<leaf>", so fixture trees can opt in with the same layout).
func IsDeterministicPackage(path string) bool {
	for _, leaf := range deterministicLeaves {
		if pathHasSuffix(path, "internal/"+leaf) {
			return true
		}
	}
	return false
}

// lastElem returns the final element of an import path.
func lastElem(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// pathHasSuffix reports whether path equals suffix or ends in "/"+suffix,
// respecting path-element boundaries.
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// pkgPathHasSuffix is pathHasSuffix over a possibly-nil types.Package.
func pkgPathHasSuffix(pkg *types.Package, suffix string) bool {
	return pkg != nil && pathHasSuffix(pkg.Path(), suffix)
}

// Analyze runs the given rules over the packages and returns the surviving
// diagnostics sorted by position: rule findings minus suppressed sites,
// plus suppression hygiene findings (malformed/unknown/reason-less/unused
// allows). Suppression hygiene for a rule is only enforced when that rule
// is in the run set, so a partial run does not flag allows belonging to
// rules it skipped.
func Analyze(pkgs []*Package, rules []*Rule) []Diagnostic {
	running := make(map[string]bool, len(rules))
	for _, r := range rules {
		running[r.Name] = true
	}

	var all []Diagnostic
	var sup suppressions
	for _, pkg := range pkgs {
		sup.collect(pkg)
		for _, r := range rules {
			pass := &Pass{
				Fset:  pkg.Fset,
				Path:  pkg.Path,
				Files: pkg.Files,
				Types: pkg.Types,
				Info:  pkg.Info,
				rule:  r.Name,
				sink:  &all,
			}
			r.Run(pass)
		}
	}

	kept := all[:0]
	for _, d := range all {
		if !sup.suppresses(d) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, sup.hygiene(running)...)
	SortDiagnostics(kept)
	return kept
}

// SortDiagnostics orders diagnostics by file, line, column, rule, message.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// calleeFunc resolves the statically-called function of a call expression,
// or nil for builtins, conversions, and dynamic calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}
