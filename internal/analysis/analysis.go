// Package analysis implements aegis-lint: a stdlib-only static-analysis
// driver that mechanically enforces the repository's determinism, hot-path,
// telemetry-naming, and error-wrapping contracts (see DESIGN.md
// "Mechanically enforced invariants").
//
// The driver loads every package in the module with go/parser, type-checks
// it with go/types (resolving module-internal imports from source and
// standard-library imports through the source importer — no x/tools
// dependency, go.mod stays empty), and runs a registry of rules. Each rule
// is one file plus one fixture directory under testdata/; diagnostics carry
// file:line:col positions and can be silenced site-by-site with an
//
//	//aegis:allow(rule) reason
//
// comment on the flagged line or the line directly above it. A suppression
// must carry a reason, must name a known rule, and must actually suppress
// something — unused or malformed suppressions are diagnostics themselves,
// so stale allows cannot accumulate.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in the linted source tree.
type Diagnostic struct {
	Pos     token.Position `json:"pos"`
	Rule    string         `json:"rule"`
	Message string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Pass carries one type-checked package through one rule. Intra-procedural
// rules use the package fields only; the interprocedural rules reach the
// module-wide call graph through Prog.
type Pass struct {
	Fset  *token.FileSet
	Path  string // import path of the package under analysis
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Pkg   *Package // the package under analysis
	Prog  *Program // the whole loaded program (nil in legacy single-package passes)

	rule string
	sink *[]Diagnostic
	sup  *suppressions
}

// Reportf records a diagnostic at pos for the rule currently running.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	d := Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	}
	*p.sink = append(*p.sink, d)
}

// AllowedAt reports whether a valid //aegis:allow for the running rule
// covers pos (same line or the line above) and marks that allow used. The
// deep rules call this at call sites to prune traversal: an allowed edge
// is cut out of the transitive closure entirely, which is how the
// conservative dispatch over-approximation is relaxed site-by-site. A
// pruning allow counts as used even when no diagnostic would have survived
// the pruned subtree — proving that negative would require re-analyzing
// without the allow.
func (p *Pass) AllowedAt(pos token.Pos) bool {
	if p.sup == nil {
		return false
	}
	return p.sup.allowsAt(p.Fset.Position(pos), p.rule)
}

// Rule is one named check. Run inspects a single package and reports
// findings through pass.Reportf.
type Rule struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// SuppressionRule is the reserved name under which the driver reports
// malformed, unknown-rule, reason-less, and unused //aegis:allow comments.
// It is not a Rule (it cannot be disabled) and cannot itself be suppressed.
const SuppressionRule = "suppression"

// AllRules returns every registered rule, sorted by name. Adding a rule to
// the suite means adding one file defining it, listing it here, and adding
// a fixture directory under testdata/src/<name>/.
func AllRules() []*Rule {
	rules := []*Rule{
		detrandRule,
		detranddeepRule,
		errwrapRule,
		flightkindRule,
		hotpathRule,
		hotpathdeepRule,
		lockjournalRule,
		maprangeRule,
		metricnameRule,
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].Name < rules[j].Name })
	return rules
}

// RuleByName returns the named rule, or nil.
func RuleByName(name string) *Rule {
	for _, r := range AllRules() {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// deterministicLeaves names the internal packages whose outputs must be
// pure functions of (seed, config): the replay contracts in DESIGN.md hang
// off these. detrand and maprange apply only here.
var deterministicLeaves = []string{
	"daemon",
	"faultinject",
	"fuzzer",
	"hpc",
	"obfuscator",
	"profiler",
	"rng",
	"sev",
	"stats",
	"workload",
}

// IsDeterministicPackage reports whether the import path is one of the
// deterministic simulation packages (matched as a path suffix
// "internal/<leaf>", so fixture trees can opt in with the same layout).
func IsDeterministicPackage(path string) bool {
	for _, leaf := range deterministicLeaves {
		if pathHasSuffix(path, "internal/"+leaf) {
			return true
		}
	}
	return false
}

// lastElem returns the final element of an import path.
func lastElem(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// pathHasSuffix reports whether path equals suffix or ends in "/"+suffix,
// respecting path-element boundaries.
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// pkgPathHasSuffix is pathHasSuffix over a possibly-nil types.Package.
func pkgPathHasSuffix(pkg *types.Package, suffix string) bool {
	return pkg != nil && pathHasSuffix(pkg.Path(), suffix)
}

// PackageResult is everything one package's analysis produces, shaped so
// it can be cached per package and merged later: the surviving rule
// diagnostics (which for deep rules may be positioned in dependency
// files), the inventory of //aegis:allow comments in the package's own
// files, and the keys of every allow the analysis marked used — including
// allows in dependency files matched along call chains. Hygiene
// (unused/malformed allows) is deliberately NOT computed here: whether an
// allow is unused is a whole-run property (another package's analysis may
// be the one using it), so Merge computes it from the union of used keys.
type PackageResult struct {
	Path        string        `json:"path"`
	Diagnostics []Diagnostic  `json:"diagnostics"`
	Allows      []AllowRecord `json:"allows"`
	UsedKeys    []string      `json:"usedKeys"`
}

// AnalyzePackage runs the given rules over one package of the program and
// returns its result. Suppressions are collected from the package's whole
// module import closure before rules run, because interprocedural
// diagnostics can land in — and be suppressed or pruned in — dependency
// files. The result depends only on the package's import closure, never on
// which other packages happen to be loaded; that independence is what
// makes per-package caching sound.
func AnalyzePackage(prog *Program, pkg *Package, rules []*Rule) PackageResult {
	sup := &suppressions{}
	closure := prog.Closure(pkg)
	paths := make([]string, 0, len(closure))
	for p := range closure {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if dep := prog.PackageByPath(p); dep != nil {
			sup.collect(dep)
		}
	}

	var all []Diagnostic
	for _, r := range rules {
		pass := &Pass{
			Fset:  pkg.Fset,
			Path:  pkg.Path,
			Files: pkg.Files,
			Types: pkg.Types,
			Info:  pkg.Info,
			Pkg:   pkg,
			Prog:  prog,
			rule:  r.Name,
			sink:  &all,
			sup:   sup,
		}
		r.Run(pass)
	}

	kept := all[:0]
	for _, d := range all {
		if !sup.suppresses(d) {
			kept = append(kept, d)
		}
	}
	SortDiagnostics(kept)

	own := make(map[string]bool, len(pkg.Filenames))
	for _, f := range pkg.Filenames {
		own[f] = true
	}
	return PackageResult{
		Path:        pkg.Path,
		Diagnostics: kept,
		Allows:      sup.records(own),
		UsedKeys:    sup.usedKeys(),
	}
}

// Merge combines per-package results into the final diagnostic list:
// the union of rule findings (deduplicated — two packages' analyses can
// surface the same dependency-file finding) plus suppression hygiene
// computed globally. Unused-ness of an allow is only judged for rules in
// the running set, so a single-rule invocation does not flag allows
// belonging to other rules — and only when complete is true, i.e. the
// results cover every package of the program. A partial run cannot judge
// unused-ness: an allow in a dependency is legitimately consumed by the
// analysis of an importer that was not a target (e.g. a cold-guard allow
// in internal/hpc used only when the daemon's hot path is traversed).
// Malformed, unknown-rule, and reason-less allows are file-local facts
// and are reported either way.
func Merge(results []PackageResult, running map[string]bool, complete bool) []Diagnostic {
	used := make(map[string]bool)
	for _, r := range results {
		for _, k := range r.UsedKeys {
			used[k] = true
		}
	}

	var out []Diagnostic
	seen := make(map[string]bool)
	for _, r := range results {
		for _, d := range r.Diagnostics {
			if key := d.String(); !seen[key] {
				seen[key] = true
				out = append(out, d)
			}
		}
	}

	for _, r := range results {
		for _, a := range r.Allows {
			report := func(format string, args ...any) {
				out = append(out, Diagnostic{Pos: a.Pos, Rule: SuppressionRule,
					Message: fmt.Sprintf(format, args...)})
			}
			switch {
			case a.Malformed:
				report("malformed suppression; want //aegis:allow(rule) reason")
			case RuleByName(a.Rule) == nil:
				report("suppression names unknown rule %q", a.Rule)
			case a.Reason == "":
				report("suppression of %q has no reason; state why the site is exempt", a.Rule)
			case complete && running[a.Rule] && !used[a.Key()]:
				report("unused suppression of %q; the site no longer trips the rule", a.Rule)
			}
		}
	}
	SortDiagnostics(out)
	return out
}

// RunningSet returns the rule-name set of a rule slice, for Merge.
func RunningSet(rules []*Rule) map[string]bool {
	running := make(map[string]bool, len(rules))
	for _, r := range rules {
		running[r.Name] = true
	}
	return running
}

// Analyze runs the given rules over the packages and returns the surviving
// diagnostics sorted by position: rule findings minus suppressed sites,
// plus suppression hygiene findings (malformed/unknown/reason-less/unused
// allows). The packages form the analyzed program: for the interprocedural
// rules to see through package boundaries, dependencies must be included
// (the CLI passes the loader's full cache).
func Analyze(pkgs []*Package, rules []*Rule) []Diagnostic {
	prog := NewProgram(pkgs)
	results := make([]PackageResult, 0, len(prog.Packages))
	for _, pkg := range prog.Packages {
		results = append(results, AnalyzePackage(prog, pkg, rules))
	}
	return Merge(results, RunningSet(rules), true)
}

// SortDiagnostics orders diagnostics by file, line, column, rule, message.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// calleeFunc resolves the statically-called function of a call expression,
// or nil for builtins, conversions, and dynamic calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}
