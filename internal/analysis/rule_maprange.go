package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// maprangeRule flags `range` over a map in the deterministic packages: Go
// randomizes map iteration order, so any map range whose body is
// order-sensitive silently breaks byte-identical replay. One shape is
// exempt because the repo uses it pervasively and it is provably
// order-insensitive — the collect-then-sort idiom, where the loop body
// only appends keys/values to a slice and the statement immediately after
// the loop sorts that slice (sort.* or slices.*). Everything else needs an
// //aegis:allow(maprange) with a reason stating why order cannot leak
// (e.g. an order-insensitive count, a flat copy, or deletes during
// eviction).
var maprangeRule = &Rule{
	Name: "maprange",
	Doc:  "no order-sensitive map iteration in deterministic packages",
	Run:  runMaprange,
}

func runMaprange(pass *Pass) {
	if !IsDeterministicPackage(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, st := range list {
				if ls, ok := st.(*ast.LabeledStmt); ok {
					st = ls.Stmt
				}
				rs, ok := st.(*ast.RangeStmt)
				if !ok {
					continue
				}
				tv, ok := pass.Info.Types[rs.X]
				if !ok {
					continue
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					continue
				}
				var next ast.Stmt
				if i+1 < len(list) {
					next = list[i+1]
				}
				if isCollectThenSort(pass, rs, next) {
					continue
				}
				pass.Reportf(rs.Pos(), "range over map %s in deterministic package %s; iterate a sorted key slice, or suppress with a reason why order cannot leak", types.ExprString(rs.X), lastElem(pass.Path))
			}
			return true
		})
	}
}

// isCollectThenSort reports whether the map range is the exempt
// collect-then-sort idiom: every body statement is `x = append(x, ...)`
// and the statement immediately following the loop is a sort.* or
// slices.* call over one of the appended slices.
func isCollectThenSort(pass *Pass, rs *ast.RangeStmt, next ast.Stmt) bool {
	if len(rs.Body.List) == 0 {
		return false
	}
	targets := make(map[string]bool)
	for _, st := range rs.Body.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltin(pass.Info, call, "append") || len(call.Args) == 0 {
			return false
		}
		lhs := types.ExprString(as.Lhs[0])
		if types.ExprString(call.Args[0]) != lhs {
			return false
		}
		targets[lhs] = true
	}
	es, ok := next.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || (fn.Pkg().Path() != "sort" && fn.Pkg().Path() != "slices") {
		return false
	}
	for _, arg := range call.Args {
		if targets[types.ExprString(arg)] {
			return true
		}
	}
	return false
}
