package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// detranddeepRule extends the detrand contract interprocedurally: a
// deterministic package must not *transitively* reach wall-clock reads,
// global math/rand draws, environment reads, or select-with-default
// through helpers in non-deterministic packages — the laundering pattern
// the intra-procedural rule is blind to.
//
// Traversal policy:
//
//   - Every function of the analyzed deterministic package is a root;
//     closure and go-statement edges are followed (the closure runs
//     eventually, and a goroutine's output still feeds the deterministic
//     result).
//   - Edges into *other* deterministic packages are not followed: those
//     packages carry the same contract and are analyzed on their own, so
//     re-walking them would only duplicate diagnostics.
//   - Edges into the exempt infrastructure packages (detrandDeepExempt)
//     are not followed: telemetry, the flight journal, the parallel
//     runner, the artifact store and the ops server read the clock for
//     latency/observability only, under their own documented contracts
//     ("timing feeds histograms, never values").
//   - Sinks found in reached non-deterministic module functions are
//     reported with the full call chain ("~>" marks conservative
//     interface dispatch). Function-value calls in reached functions are
//     reported conservatively. Both prune under
//     //aegis:allow(detranddeep) at the call-site line.
//   - Environment reads (os.Getenv/LookupEnv/Environ) are additionally
//     reported at depth 0 in the deterministic package itself, because
//     detrand does not police them.
var detranddeepRule = &Rule{
	Name: "detranddeep",
	Doc:  "deterministic packages must not transitively reach clock, rand, env, or racing select",
	Run:  runDetranddeep,
}

// detrandDeepExempt lists infrastructure package suffixes whose clock use
// is timing-only by contract; deep traversal stops at their boundary.
var detrandDeepExempt = []string{
	"internal/telemetry",
	"internal/telemetry/flight",
	"internal/parallel",
	"internal/artifact",
	"internal/ops",
}

func isDetrandDeepExempt(path string) bool {
	for _, suffix := range detrandDeepExempt {
		if pathHasSuffix(path, suffix) {
			return true
		}
	}
	return false
}

// envReadFuncs are the os functions that read the process environment.
var envReadFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true,
}

func runDetranddeep(pass *Pass) {
	if pass.Prog == nil || !IsDeterministicPackage(pass.Path) {
		return
	}
	g := pass.Prog.CallGraph()
	module := pass.Pkg.Module

	// Depth-0 environment reads in the deterministic package itself.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if obj := pass.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil &&
				obj.Pkg().Path() == "os" && envReadFuncs[obj.Name()] {
				pass.Reportf(sel.Pos(), "os.%s read in deterministic package %s; outputs must be pure functions of (seed, config)",
					obj.Name(), lastElem(pass.Path))
			}
			return true
		})
	}

	reported := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if root := g.Node(fn); root != nil {
				deepCheckDetrand(pass, root, module, reported)
			}
		}
	}
}

func deepCheckDetrand(pass *Pass, root *Node, module string, reported map[token.Pos]bool) {
	type item struct {
		n     *Node
		chain []chainHop
	}
	visited := map[*Node]bool{root: true}
	queue := []item{{root, []chainHop{{n: root}}}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		for _, e := range it.n.Edges {
			callee := e.Callee
			if callee.Pkg != pass.Pkg {
				// Other deterministic packages carry the same contract and
				// are analyzed on their own; exempt infrastructure is
				// timing-only by documented contract.
				if IsDeterministicPackage(callee.Pkg.Path) || isDetrandDeepExempt(callee.Pkg.Path) {
					continue
				}
			}
			if pass.AllowedAt(e.Pos) {
				continue
			}
			if visited[callee] {
				continue
			}
			visited[callee] = true
			chain := extendChain(it.chain, callee, e.Dynamic)
			if callee.Pkg != pass.Pkg {
				scanNondetSinks(callee.Pkg.Info, callee.Decl, func(pos token.Pos, desc string) {
					if reported[pos] {
						return
					}
					reported[pos] = true
					pass.Reportf(pos, "deterministic package %s transitively reaches %s (call chain: %s)",
						lastElem(pass.Path), desc, chainString(chain, module))
				})
				for _, ds := range callee.Dynamic {
					if reported[ds.Pos] || pass.AllowedAt(ds.Pos) {
						continue
					}
					reported[ds.Pos] = true
					pass.Reportf(ds.Pos, "deterministic package %s reaches a call of function value %s whose determinism cannot be established (call chain: %s)",
						lastElem(pass.Path), ds.Expr, chainString(chain, module))
				}
			}
			queue = append(queue, item{callee, chain})
		}
	}
}

// scanNondetSinks walks one function body (including func-literal bodies)
// reporting every nondeterminism source the detrand contract bans, as
// (position, description) pairs.
func scanNondetSinks(info *types.Info, fd *ast.FuncDecl, report func(pos token.Pos, desc string)) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			obj, ok := info.Uses[n.Sel]
			if !ok || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if clockFuncs[obj.Name()] {
					report(n.Pos(), fmt.Sprintf("time.%s", obj.Name()))
				}
			case "math/rand", "math/rand/v2":
				if _, isFn := obj.(*types.Func); isFn && !randConstructors[obj.Name()] {
					report(n.Pos(), fmt.Sprintf("a global math/rand draw (rand.%s)", obj.Name()))
				}
			case "os":
				if envReadFuncs[obj.Name()] {
					report(n.Pos(), fmt.Sprintf("os.%s", obj.Name()))
				}
			}
		case *ast.SelectStmt:
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
					report(n.Pos(), "a select with a default clause (races goroutine scheduling)")
				}
			}
		}
		return true
	})
}
