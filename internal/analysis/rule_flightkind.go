package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// flightkindRule keeps the flight-recorder record taxonomy closed: every
// value of type flight.Kind handed to the flight package's entry points
// (Get, Handle, and anything else taking a Kind parameter) must be a
// direct reference to one of the exported Kind* constants declared in
// internal/telemetry/flight. Arbitrary numeric conversions, variables, or
// locally minted kinds would journal records the aegis-flight/v1 dump
// schema and the /flight ?kind= filter do not know, silently breaking
// incident forensics. Call sites inside the flight package itself (the
// implementation iterating its own taxonomy) are exempt.
var flightkindRule = &Rule{
	Name: "flightkind",
	Doc:  "flight record kinds are registered flight.Kind* constants",
	Run:  runFlightkind,
}

// flightPkgSuffix matches the flight package by import-path suffix, so
// fixture trees can opt in with the same layout.
const flightPkgSuffix = "internal/telemetry/flight"

func runFlightkind(pass *Pass) {
	if pathHasSuffix(pass.Path, flightPkgSuffix) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || !pkgPathHasSuffix(fn.Pkg(), flightPkgSuffix) {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return true
			}
			params := sig.Params()
			for i := 0; i < params.Len() && i < len(call.Args); i++ {
				if isFlightKindType(params.At(i).Type()) {
					checkFlightKindArg(pass, call.Args[i])
				}
			}
			return true
		})
	}
}

// isFlightKindType reports whether t is the named type Kind declared in
// the flight package.
func isFlightKindType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Kind" && pkgPathHasSuffix(obj.Pkg(), flightPkgSuffix)
}

// checkFlightKindArg requires the argument to name an exported Kind*
// constant from the flight package.
func checkFlightKindArg(pass *Pass, arg ast.Expr) {
	var obj types.Object
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[e]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[e.Sel]
	}
	if c, ok := obj.(*types.Const); ok && c.Exported() &&
		strings.HasPrefix(c.Name(), "Kind") &&
		pkgPathHasSuffix(c.Pkg(), flightPkgSuffix) {
		return
	}
	pass.Reportf(arg.Pos(), "flight record kind must be a registered flight.Kind* constant from %s", flightPkgSuffix)
}
