// Fixture for the metricname rule: call sites against the stand-in
// telemetry package.
package app

import "fixture/internal/telemetry"

func dyn() string { return "app_requests_total" }

var (
	good        = telemetry.C("app_requests_total")
	goodHist    = telemetry.H("app_latency_seconds", nil)
	goodGauge   = telemetry.G("app_workers")
	goodLabeled = telemetry.C("app_requests_total", telemetry.L("code", "200"))

	badSuffix   = telemetry.C("app_requests")        // want "must end in _total" "not registered"
	badCase     = telemetry.C("AppRequests_total")   // want "not snake_case"
	badGauge    = telemetry.G("app_workers_total")   // want "must not end in _total" "not registered"
	badHist     = telemetry.H("app_legacy_delta", nil) // want "unit suffix"
	notConstant = telemetry.C(dyn())                 // want "compile-time constant"

	legacy = telemetry.H("app_legacy_delta", nil) //aegis:allow(metricname) fixture: legacy name kept for dashboard continuity
)
