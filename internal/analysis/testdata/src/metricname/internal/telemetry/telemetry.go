// Fixture stand-in for internal/telemetry: the constructors the
// metricname rule resolves by package-path suffix, plus the Metric*
// registry constants it validates names against.
package telemetry

type Label struct{ K, V string }

func L(k, v string) Label { return Label{K: k, V: v} }

type Counter struct{}

type Gauge struct{}

type Histogram struct{}

func C(name string, labels ...Label) *Counter { _ = name; return &Counter{} }

func G(name string, labels ...Label) *Gauge { _ = name; return &Gauge{} }

func H(name string, bounds []float64, labels ...Label) *Histogram { _ = name; return &Histogram{} }

// The registry: only these names are legal at call sites.
const (
	MetricRequestsTotal  = "app_requests_total"
	MetricLatencySeconds = "app_latency_seconds"
	MetricLegacyDelta    = "app_legacy_delta"
	MetricWorkers        = "app_workers"
)
