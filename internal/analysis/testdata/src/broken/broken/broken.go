// Fixture: deliberately unparsable, to exercise the load-error exit code
// and to prove the repo-wide gofmt/lint walks skip testdata trees.
package broken

func missingBody( {
