// Fixture for suppression hygiene: placement, missing reasons, unknown
// rules, malformed directives, and unused allows. Expectations live in
// suppress_test.go rather than want markers.
package fuzzer

import "time"

var t0 = time.Now() //aegis:allow(detrand) valid: suppressed on the same line

//aegis:allow(detrand) valid: suppressed from the line above
var t1 = time.Now()

var t2 = time.Now() //aegis:allow(detrand)

var t3 = time.Now() //aegis:allow(clockrule) there is no such rule

var t4 = time.Now() //aegis:allow

var unrelated = 1 //aegis:allow(detrand) nothing on this line trips the rule
