// Fixture for the flightkind rule: record kinds at call sites must be
// the registered flight.Kind* constants.
package app

import "fixture/internal/telemetry/flight"

// localKind is constant but minted outside the flight package.
const localKind flight.Kind = 1

var dynKind = flight.KindFault

var (
	good       = flight.Get(flight.KindObfuscatorTick)
	goodParens = flight.Get((flight.KindFault))

	badConversion = flight.Get(flight.Kind(3)) // want "registered flight.Kind"
	badLocalConst = flight.Get(localKind)      // want "registered flight.Kind"
	badVariable   = flight.Get(dynKind)        // want "registered flight.Kind"

	allowed = flight.Get(flight.Kind(7)) //aegis:allow(flightkind) fixture: probing an unregistered kind on purpose
)

func methods(r *flight.Recorder) {
	r.Handle(flight.KindFault)
	r.Handle(flight.Kind(9)) // want "registered flight.Kind"
}
