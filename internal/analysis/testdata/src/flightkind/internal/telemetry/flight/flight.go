// Fixture stand-in for internal/telemetry/flight: the Kind taxonomy and
// the entry points the flightkind rule checks call sites against.
package flight

type Kind uint8

// The registered record taxonomy: only these constants are legal kinds at
// call sites outside this package.
const (
	KindObfuscatorTick Kind = iota
	KindFault
)

type Handle struct{}

type Recorder struct{}

func Get(k Kind) *Handle { _ = k; return &Handle{} }

func (r *Recorder) Handle(k Kind) *Handle { _ = k; return &Handle{} }

// internalSweep iterates the taxonomy numerically; the flight package
// itself is exempt from the rule.
func internalSweep() {
	for k := Kind(0); k <= KindFault; k++ {
		Get(k)
	}
}

var _ = internalSweep
