// Fixture for the errwrap rule.
package wrap

import (
	"errors"
	"fmt"
)

var ErrSentinel = errors.New("sentinel")

func wrapV(err error) error {
	return fmt.Errorf("ctx: %v", err) // want "use %w"
}

func wrapS(err error) error {
	return fmt.Errorf("ctx %d: %s", 7, err) // want "use %w"
}

func wrapOK(err error) error {
	return fmt.Errorf("ctx: %w", err)
}

func nonError() error {
	// %v over a non-error argument is fine.
	return fmt.Errorf("ctx: %v", 42)
}

func compare(err error) bool {
	if err == ErrSentinel { // want "errors.Is"
		return true
	}
	return err != nil // nil comparison is fine
}

func compareAllowed(err error) bool {
	//aegis:allow(errwrap) fixture: identity check against a process-unique marker error
	return err == ErrSentinel
}

func sw(err error) int {
	switch err { // want "switch on an error"
	case ErrSentinel:
		return 1
	default:
		return 0
	}
}
