// Package dep holds helpers reached from the hot package's annotated
// functions; sinks here are reported with full cross-package call chains.
package dep

import "fmt"

// Scale is the two-hop sink: hot.Tick -> hot.step -> dep.Scale.
func Scale(v float64) float64 {
	if v < 0 {
		_ = fmt.Sprintf("negative sum %v", v) // want "calls fmt.Sprintf, which allocates; move formatting off the steady-state path or suppress a cold branch with a reason on the hot path (call chain: hot.Tick -> hot.step -> dep.Scale)"
	}
	return v * 2
}

// Describe allocates, but is only reached through a pruned (allowed)
// edge, so it must produce no diagnostic.
func Describe(x int) string {
	return fmt.Sprintf("x=%d", x)
}
