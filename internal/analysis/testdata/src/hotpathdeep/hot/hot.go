// Package hot exercises the hotpathdeep rule: violations live in helpers
// the annotated functions reach transitively, not in the annotated bodies
// themselves (those belong to the intra-procedural hotpath fixture).
package hot

import "fixture/dep"

// Tick reaches an allocating helper two hops away through step.
//
//aegis:hotpath
func Tick(buf []float64) float64 {
	return step(buf)
}

// step is clean itself but calls into dep, whose Scale formats with fmt.
func step(buf []float64) float64 {
	var s float64
	for _, v := range buf {
		s += v
	}
	return dep.Scale(s)
}

// Apply calls a function value the graph cannot resolve: reported
// conservatively at the call site.
//
//aegis:hotpath
func Apply(fn func(int) int, x int) int {
	return fn(x) // want "calls function value fn on the hot path; the callee cannot be resolved statically"
}

// Op is dispatched through an interface: the rule over-approximates to
// every matching method in the import closure, marking the hop "~>".
type Op interface {
	Do(x int) int
}

//aegis:hotpath
func Run(o Op, x int) int {
	return o.Do(x)
}

// Alloc is the only Do implementation in scope; its map construction is
// reported with the dispatch chain.
type Alloc struct{}

func (Alloc) Do(x int) int {
	m := make(map[int]int) // want "(call chain: hot.Run ~> (hot.Alloc).Do)"
	m[x] = x
	return m[x]
}

// Cold prunes an edge with a reasoned allow: coldHelper's formatting is
// never reported, and the suppression counts as used.
//
//aegis:hotpath
func Cold(x int) int {
	//aegis:allow(hotpathdeep) coldHelper only runs on the error path, which the steady-state benchmark never takes
	return coldHelper(x)
}

func coldHelper(x int) int {
	s := dep.Describe(x)
	return len(s)
}
