// Package stats is a deterministic package (path suffix internal/stats)
// that launders nondeterminism through the util helper package — the
// pattern the intra-procedural detrand rule cannot see.
package stats

import (
	"os"

	"fixture/util"
)

// Mean reaches time.Now two hops away: Mean -> util.Scale -> util.tick.
func Mean(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs)) * util.Scale()
}

// Env reads the environment directly; detrand does not police env reads,
// so the deep rule reports them even at depth 0.
func Env() string {
	return os.Getenv("AEGIS_SEED") // want "os.Getenv read in deterministic package stats; outputs must be pure functions of (seed, config)"
}

// Jitter reaches a function-value call the graph cannot resolve.
func Jitter() float64 {
	return util.Apply(nil)
}

// Allowed prunes the edge into util.Stamp with a reasoned suppression:
// Stamp's clock read must produce no diagnostic.
func Allowed() float64 {
	//aegis:allow(detranddeep) Stamp feeds a latency histogram only; timing never influences computed values
	return util.Stamp()
}
