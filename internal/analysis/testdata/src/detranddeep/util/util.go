// Package util is a non-deterministic helper package: sinks here are only
// violations when a deterministic package reaches them transitively.
package util

import "time"

// Scale launders a clock read behind two hops.
func Scale() float64 {
	return tick()
}

func tick() float64 {
	return float64(time.Now().UnixNano()) // want "deterministic package stats transitively reaches time.Now (call chain: internal/stats.Mean -> util.Scale -> util.tick)"
}

// Stamp reads the clock but is only reached through a pruned (allowed)
// edge, so it must produce no diagnostic.
func Stamp() float64 {
	return float64(time.Now().UnixNano())
}

// Apply calls a function value: determinism cannot be established, so the
// site is reported conservatively when reached from a deterministic
// package.
func Apply(f func() float64) float64 {
	if f == nil {
		return 0
	}
	return f() // want "deterministic package stats reaches a call of function value f whose determinism cannot be established (call chain: internal/stats.Jitter -> util.Apply)"
}
