// Fixture for the detrand rule: the package path ends in internal/fuzzer,
// so it counts as a deterministic package.
package fuzzer

import (
	"math/rand" // want "import of math/rand"
	"time"
)

func clock() int64 {
	t := time.Now()   // want "call to time.Now"
	_ = time.Since(t) // want "call to time.Since"
	start := time.Now() //aegis:allow(detrand) fixture: telemetry-only timing site
	_ = start
	return t.Unix()
}

func draw() float64 {
	// The import diagnostic covers the package; the global draw is not
	// separately flagged outside internal/rng.
	return rand.Float64()
}

func racy(ch chan int) int {
	select { // want "select with default"
	case v := <-ch:
		return v
	default:
		return 0
	}
}

func disciplined(ch chan int) int {
	// A select without default blocks deterministically on its cases.
	select {
	case v := <-ch:
		return v
	}
}
