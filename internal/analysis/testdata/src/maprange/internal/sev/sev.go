// Fixture for the maprange rule: the package path ends in internal/sev,
// so it counts as a deterministic package.
package sev

import "sort"

// keys is the exempt collect-then-sort idiom: the body only appends and
// the next statement sorts the collected slice.
func keys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sum(m map[string]int) int {
	total := 0
	for _, v := range m { // want "range over map"
		total += v
	}
	return total
}

func copyInto(dst, src map[string]int) {
	//aegis:allow(maprange) fixture: flat key-by-key copy, order cannot leak
	for k, v := range src {
		dst[k] = v
	}
}

// collectNoSort looks like collecting but never sorts: still flagged.
func collectNoSort(m map[string]int) []string {
	var ks []string
	for k := range m { // want "range over map"
		ks = append(ks, k)
	}
	return ks
}
