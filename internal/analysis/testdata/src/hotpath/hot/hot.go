// Fixture for the hotpath rule: only functions annotated //aegis:hotpath
// are checked.
package hot

import "fmt"

type ring struct {
	buf []float64
	log []string
}

// push violates every banned construct.
//
//aegis:hotpath
func (r *ring) push(v float64) {
	r.buf = append(r.buf, v)  // want "appends to field"
	m := make(map[string]int) // want "constructs a map with make"
	_ = m
	l := map[string]int{"a": 1} // want "constructs a map literal"
	_ = l
	s := fmt.Sprintf("%f", v) // want "calls fmt.Sprintf"
	b := []byte(s)            // want "converts"
	_ = b
	f := func() {} // want "constructs a closure"
	_ = f
}

// pushFast shows the sanctioned shapes: appends to locals/parameters, and
// a suppressed pre-grown receiver append.
//
//aegis:hotpath
func (r *ring) pushFast(v float64, dst []float64) []float64 {
	dst = append(dst, v)
	var local []float64
	local = append(local, v)
	_ = local
	r.log = append(r.log[:0], "x") //aegis:allow(hotpath) fixture: pre-grown capacity, append never reallocates
	return dst
}

// cold is not annotated, so nothing inside it is checked.
func cold(r *ring) string {
	return fmt.Sprintf("%v", r.buf)
}
