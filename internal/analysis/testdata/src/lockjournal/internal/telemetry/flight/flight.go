// Package flight stubs the journal API surface the lockjournal rule
// matches (Record/Incident methods of a package whose path ends in
// internal/telemetry/flight).
package flight

// Code mirrors the real flight code enum.
type Code int

// Handle mirrors the real journal handle.
type Handle struct{}

// Record appends a record to the journal.
func (h *Handle) Record(tick int64, code, sub Code, a, b, c float64) {}

// Incident appends an incident record to the journal.
func (h *Handle) Incident(tick int64, code, sub Code, a, b, c float64) {}
