// Package daemon exercises the lockjournal rule: flight-journal writes
// are legal only in //aegis:serialized functions or functions provably
// reached while holding the daemon mutex.
package daemon

import (
	"sync"

	"fixture/internal/telemetry/flight"
)

// Daemon mirrors the real daemon's lock-plus-journal shape.
type Daemon struct {
	mu   sync.Mutex
	f    *flight.Handle
	tick int64
}

// Attach acquires the mutex at depth 0; the write after Lock is legal,
// and heldness propagates into finish.
func (d *Daemon) Attach() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.f.Record(d.tick, 0, 0, 0, 0, 0)
	d.finish()
}

// finish is provably held: its only caller writes after acquiring.
func (d *Daemon) finish() {
	d.f.Record(d.tick, 1, 0, 0, 0, 0)
}

// barrier is trusted via the annotation.
//
//aegis:serialized
func (d *Daemon) barrier() {
	d.f.Incident(d.tick, 2, 0, 0, 0, 0)
}

// Rogue writes with no lock context at all.
func (d *Daemon) Rogue() {
	d.f.Record(d.tick, 3, 0, 0, 0, 0) // want "which is neither //aegis:serialized nor provably holding the daemon mutex: it has no callers in the call graph"
}

// Entry -> middle -> sink: unheldness propagates down a two-hop chain.
func (d *Daemon) Entry() {
	d.middle()
}

func (d *Daemon) middle() {
	d.sink()
}

func (d *Daemon) sink() {
	d.f.Record(d.tick, 4, 0, 0, 0, 0) // want "its caller (*internal/daemon.Daemon).middle does not hold the mutex"
}

// Worker launches pump from a goroutine closure: the lockset does not
// survive into the literal.
func (d *Daemon) Worker() {
	d.mu.Lock()
	defer d.mu.Unlock()
	go func() {
		d.pump()
	}()
}

func (d *Daemon) pump() {
	d.f.Record(d.tick, 5, 0, 0, 0, 0) // want "it is called from a func literal in (*internal/daemon.Daemon).Worker"
}

// Inline writes the journal from inside a func literal even though the
// enclosing function holds the mutex: the literal can outlive the
// serialized section.
func (d *Daemon) Inline() {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := func() {
		d.f.Record(d.tick, 6, 0, 0, 0, 0) // want "inside a func literal in (*internal/daemon.Daemon).Inline"
	}
	f()
}

// Spawn launches the write itself on a goroutine.
func (d *Daemon) Spawn() {
	d.mu.Lock()
	defer d.mu.Unlock()
	go d.f.Record(d.tick, 7, 0, 0, 0, 0) // want "launched by a go statement in (*internal/daemon.Daemon).Spawn"
}

// ticker is dispatched through an interface, so step's lock context is a
// conservative over-approximation even though Drive holds the mutex.
type ticker interface {
	step()
}

// Drive holds the mutex but calls through the interface.
func (d *Daemon) Drive(t ticker) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t.step()
}

func (d *Daemon) step() {
	d.f.Record(d.tick, 8, 0, 0, 0, 0) // want "it is reachable via conservative interface dispatch from (*internal/daemon.Daemon).Drive"
}

// Boot suppresses a deliberate pre-concurrency write with a reason.
func (d *Daemon) Boot() {
	//aegis:allow(lockjournal) startup write happens before any goroutine exists, so no lock is needed yet
	d.f.Record(d.tick, 9, 0, 0, 0, 0)
}
