package analysis

import (
	"testing"
)

// TestRepoIsLintClean runs the full rule set over the enclosing module —
// the same work as `aegis-lint ./...` — and requires zero diagnostics.
// This keeps the tree honest: deleting any //aegis:allow comment whose
// site still trips a rule, or introducing a fresh violation (say,
// time.Now() in internal/fuzzer), fails this test and `make lint` alike.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	root, module, err := FindModule(".")
	if err != nil {
		t.Fatalf("locating enclosing module: %v", err)
	}
	pkgs, err := NewLoader(root, module).LoadAll()
	if err != nil {
		t.Fatalf("loading %s: %v", module, err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("suspiciously few packages loaded (%d); walk is broken", len(pkgs))
	}
	// The self-check must include the interprocedural rules: if one is
	// ever dropped from the registry, this clean-tree run would silently
	// stop proving the deep contracts.
	for _, name := range []string{"hotpathdeep", "detranddeep", "lockjournal"} {
		if RuleByName(name) == nil {
			t.Fatalf("call-graph rule %q missing from AllRules", name)
		}
	}
	diags := Analyze(pkgs, AllRules())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("repo is not lint-clean: %d finding(s); fix the site or add //aegis:allow(rule) with a reason", len(diags))
	}
}
