package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// This file builds the module-wide call graph behind the interprocedural
// rules (hotpathdeep, detranddeep, lockjournal). The graph is exact where
// Go lets it be and conservative everywhere else:
//
//   - A call whose callee resolves statically to a function or method
//     declared in the module becomes one exact edge.
//   - A call through an interface method becomes one over-approximated
//     edge to every module method with the same name and an identical
//     signature that is declared inside the calling package's import
//     closure (a concrete type cannot reach a call site without its
//     package being imported somewhere in that closure, and restricting
//     dispatch to the closure keeps per-package analysis results — and
//     therefore the lint cache — independent of which other packages
//     happen to be loaded). These edges carry Dynamic=true, and the deep
//     rules name the dispatch in their call chains.
//   - A call of a function-typed value (a method value, a stored closure,
//     a func field or parameter) cannot be resolved at all; the site is
//     recorded as a DynSite and the deep rules report it conservatively —
//     the callee could do anything — unless the site carries an
//     //aegis:allow for the reporting rule.
//
// Calls lexically inside a func literal are attributed to the enclosing
// declared function with InClosure=true: hotpathdeep skips them (the
// intra-procedural rule already flags closure construction on hot paths,
// and a literal's body is cold until invoked), detranddeep follows them
// (the closure will run eventually), and lockjournal treats them as
// escaping the caller's lockset (the literal may run on another
// goroutine). Edges launched by a go statement carry Async=true and never
// extend a lockset.
//
// Node and edge order is deterministic: nodes sort by their full
// type-qualified name, edges by (callee name, position), so two runs over
// the same tree produce identical graphs and identical diagnostic order.

// Node is one declared function or method in the module, with its
// outgoing call edges.
type Node struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// Edges are the node's resolved calls, sorted by (callee, position)
	// and deduplicated.
	Edges []Edge
	// Dynamic are the node's unresolvable call sites (calls of
	// function-typed values), in source order.
	Dynamic []DynSite

	id string // Fn.FullName(), cached for sorting
}

// ID returns the node's stable identity: the type-qualified full name of
// its function (e.g. "(*path/to/pkg.T).Method" or "path/to/pkg.F").
func (n *Node) ID() string { return n.id }

// Edge is one call from a node to a module function.
type Edge struct {
	Callee *Node
	Pos    token.Pos
	// Dynamic marks an interface-dispatch over-approximation: the callee
	// is one of possibly many methods matching the interface method's
	// name and signature.
	Dynamic bool
	// InClosure marks a call site lexically inside a func literal of the
	// caller.
	InClosure bool
	// Async marks a call launched by a go statement.
	Async bool
}

// DynSite is a call of a function-typed value — a site the graph cannot
// resolve even conservatively.
type DynSite struct {
	Pos       token.Pos
	Expr      string // source text of the called expression
	InClosure bool
	Async     bool
}

// CallGraph is the module-wide graph over every loaded package.
type CallGraph struct {
	nodes map[*types.Func]*Node
	// callers is the reverse adjacency: for each node, every edge
	// pointing at it (the edge's owner is recorded alongside).
	callers map[*Node][]CallerEdge
	sorted  []*Node
}

// CallerEdge is one incoming call as seen from the callee.
type CallerEdge struct {
	Caller *Node
	Edge   Edge
}

// Program is a set of loaded packages analyzed together, with the shared
// call graph and per-package import closures built on demand.
type Program struct {
	Packages []*Package

	byPath   map[string]*Package
	once     sync.Once
	graph    *CallGraph
	closures map[*Package]map[string]bool
}

// NewProgram indexes the given packages for whole-module analysis.
// Packages are sorted by import path so iteration order is deterministic
// regardless of load order.
func NewProgram(pkgs []*Package) *Program {
	sorted := make([]*Package, len(pkgs))
	copy(sorted, pkgs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	byPath := make(map[string]*Package, len(sorted))
	for _, p := range sorted {
		byPath[p.Path] = p
	}
	return &Program{Packages: sorted, byPath: byPath}
}

// PackageByPath returns the loaded package with the given import path.
func (prog *Program) PackageByPath(path string) *Package { return prog.byPath[path] }

// Closure returns the set of module import paths reachable from pkg
// (including pkg itself) among the program's loaded packages.
func (prog *Program) Closure(pkg *Package) map[string]bool {
	if prog.closures == nil {
		prog.closures = make(map[*Package]map[string]bool)
	}
	if c, ok := prog.closures[pkg]; ok {
		return c
	}
	closure := make(map[string]bool)
	var visit func(p *Package)
	visit = func(p *Package) {
		if closure[p.Path] {
			return
		}
		closure[p.Path] = true
		for _, imp := range p.Types.Imports() {
			if dep, ok := prog.byPath[imp.Path()]; ok {
				visit(dep)
			}
		}
	}
	visit(pkg)
	prog.closures[pkg] = closure
	return closure
}

// CallGraph builds (once) and returns the program's call graph.
func (prog *Program) CallGraph() *CallGraph {
	prog.once.Do(func() { prog.graph = buildCallGraph(prog) })
	return prog.graph
}

// Node returns the graph node for fn, or nil when fn is not a module
// function with a body.
func (g *CallGraph) Node(fn *types.Func) *Node { return g.nodes[fn] }

// Nodes returns every node sorted by ID.
func (g *CallGraph) Nodes() []*Node { return g.sorted }

// Callers returns the incoming edges of n, sorted by (caller ID,
// position).
func (g *CallGraph) Callers(n *Node) []CallerEdge { return g.callers[n] }

// methodKey indexes module methods for interface-dispatch
// over-approximation: name plus the canonical signature string with the
// receiver stripped (types.Identical ignores receivers, and so must the
// index).
func methodKey(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	// Rebuild the tuples with unnamed vars: Signature.String renders
	// parameter names, and an interface method's names need not match an
	// implementation's ("Do(int)" must key equal to "Do(x int)").
	unnamed := func(t *types.Tuple) *types.Tuple {
		if t == nil {
			return nil
		}
		vars := make([]*types.Var, t.Len())
		for i := 0; i < t.Len(); i++ {
			vars[i] = types.NewVar(token.NoPos, nil, "", t.At(i).Type())
		}
		return types.NewTuple(vars...)
	}
	noRecv := types.NewSignatureType(nil, nil, nil, unnamed(sig.Params()), unnamed(sig.Results()), sig.Variadic())
	return fn.Name() + " " + noRecv.String()
}

func buildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{
		nodes:   make(map[*types.Func]*Node),
		callers: make(map[*Node][]CallerEdge),
	}

	// Pass 1: one node per declared function/method with a body, plus the
	// method index for dispatch over-approximation.
	methods := make(map[string][]*Node)
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Fn: fn, Decl: fd, Pkg: pkg, id: fn.FullName()}
				g.nodes[fn] = n
				if fd.Recv != nil {
					methods[methodKey(fn)] = append(methods[methodKey(fn)], n)
				}
			}
		}
	}

	// Pass 2: edges.
	for _, pkg := range prog.Packages {
		closure := prog.Closure(pkg)
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				caller := g.nodes[pkg.Info.Defs[fd.Name].(*types.Func)]
				if caller == nil {
					continue
				}
				collectEdges(g, methods, closure, pkg, caller, fd.Body)
			}
		}
	}

	// Deterministic order everywhere.
	for _, n := range g.nodes {
		sortEdges(n.Edges)
		g.sorted = append(g.sorted, n)
	}
	sort.Slice(g.sorted, func(i, j int) bool { return g.sorted[i].id < g.sorted[j].id })
	for _, n := range g.sorted {
		for _, e := range n.Edges {
			g.callers[e.Callee] = append(g.callers[e.Callee], CallerEdge{Caller: n, Edge: e})
		}
	}
	return g
}

func sortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Callee.id != edges[j].Callee.id {
			return edges[i].Callee.id < edges[j].Callee.id
		}
		return edges[i].Pos < edges[j].Pos
	})
}

// collectEdges walks one function body recording edges and dynamic sites
// on caller. ctx tracks closure nesting and go-statement launching.
func collectEdges(g *CallGraph, methods map[string][]*Node, closure map[string]bool, pkg *Package, caller *Node, body *ast.BlockStmt) {
	type frame struct{ inClosure, async bool }
	var walk func(n ast.Node, fr frame)
	// asyncCalls marks call expressions that are the immediate operand of
	// a go statement.
	asyncCalls := make(map[*ast.CallExpr]bool)
	walk = func(n ast.Node, fr frame) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				asyncCalls[n.Call] = true
			case *ast.FuncLit:
				walk(n.Body, frame{inClosure: true, async: fr.async})
				return false
			case *ast.CallExpr:
				addCall(g, methods, closure, pkg, caller, n, fr.inClosure, fr.async || asyncCalls[n])
			}
			return true
		})
	}
	walk(body, frame{})
}

// addCall records one call expression on caller: an exact edge, a set of
// over-approximated dispatch edges, or a dynamic site.
func addCall(g *CallGraph, methods map[string][]*Node, closure map[string]bool, pkg *Package, caller *Node, call *ast.CallExpr, inClosure, async bool) {
	fun := ast.Unparen(call.Fun)

	// Conversions and builtins are not calls the graph tracks.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	if id, ok := fun.(*ast.Ident); ok {
		if _, isB := pkg.Info.Uses[id].(*types.Builtin); isB {
			return
		}
	}

	if fn := calleeFunc(pkg.Info, call); fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if types.IsInterface(sig.Recv().Type()) {
				// Interface dispatch: over-approximate to every module
				// method matching (name, signature) in the caller's
				// import closure.
				for _, target := range methods[methodKey(fn)] {
					if closure[target.Pkg.Path] {
						caller.Edges = append(caller.Edges, Edge{
							Callee: target, Pos: call.Pos(),
							Dynamic: true, InClosure: inClosure, Async: async,
						})
					}
				}
				return
			}
		}
		if target := g.nodes[fn]; target != nil {
			caller.Edges = append(caller.Edges, Edge{
				Callee: target, Pos: call.Pos(), InClosure: inClosure, Async: async,
			})
		}
		return
	}

	// Not a static callee, not a builtin, not a conversion: if the called
	// expression has a function type, it is a dynamic call we cannot
	// resolve (method value, stored closure, func field/param).
	if tv, ok := pkg.Info.Types[call.Fun]; ok {
		if _, isSig := tv.Type.Underlying().(*types.Signature); isSig {
			caller.Dynamic = append(caller.Dynamic, DynSite{
				Pos: call.Pos(), Expr: types.ExprString(fun), InClosure: inClosure, Async: async,
			})
		}
	}
}

// shortName strips the module prefix from a type-qualified function name
// so diagnostics read "(*internal/daemon.Daemon).runTick" rather than the
// full import path.
func shortName(fullName, module string) string {
	name := strings.ReplaceAll(fullName, module+"/", "")
	return strings.ReplaceAll(name, module+".", lastElem(module)+".")
}

// shortFuncName renders a node's function compactly for call-chain
// diagnostics.
func shortFuncName(n *Node, module string) string {
	return shortName(n.id, module)
}

// chainHop is one step of a rendered call chain: the node reached and
// whether the edge into it was a conservative interface-dispatch
// over-approximation.
type chainHop struct {
	n       *Node
	dynamic bool
}

// chainString renders a call chain root → … → sink for diagnostics.
// Exact edges render as " -> "; conservative interface-dispatch edges as
// " ~> " so a reader can tell which hops are over-approximated (and
// therefore candidates for an //aegis:allow at the call site).
func chainString(chain []chainHop, module string) string {
	var b strings.Builder
	for i, h := range chain {
		if i > 0 {
			if h.dynamic {
				b.WriteString(" ~> ")
			} else {
				b.WriteString(" -> ")
			}
		}
		b.WriteString(shortFuncName(h.n, module))
	}
	return b.String()
}

// extendChain copies chain and appends one hop (chains are shared across
// BFS branches, so append-in-place would alias).
func extendChain(chain []chainHop, n *Node, dynamic bool) []chainHop {
	out := make([]chainHop, len(chain), len(chain)+1)
	copy(out, chain)
	return append(out, chainHop{n: n, dynamic: dynamic})
}
