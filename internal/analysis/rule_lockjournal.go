package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// lockjournalRule turns the PR-8 serialized-journal invariant — aegisd's
// flight journal is written only from the serialized section, which is
// what makes the journal replayable — from a test-only property into a
// compile-time one. In internal/daemon, every call that writes the flight
// journal (a Record or Incident method of the flight package) must occur
// in a function that is either annotated //aegis:serialized or provably
// reached while holding the daemon mutex.
//
// Lockset model (see DESIGN.md "Mechanically enforced invariants"):
// a function body is held when
//
//   - it carries the //aegis:serialized doc directive (a trusted, reviewed
//     annotation for barrier-path helpers), or
//   - it acquires a sync.Mutex/RWMutex write lock at closure depth 0 — in
//     which case only code after the Lock call is held, or
//   - every incoming call edge is clean (same package, not through a func
//     literal, not a go statement, not conservative interface dispatch)
//     and comes from a held position of a held caller.
//
// Heldness is a greatest fixpoint: all functions start held and lose the
// property when an unclean or unheld incoming edge is found, so mutual
// recursion inside the serialized section stays held. Journal writes
// inside func literals or go statements are always violations — the
// literal can outlive the serialized section that created it. Sites may
// be suppressed with //aegis:allow(lockjournal) and a reason.
var lockjournalRule = &Rule{
	Name: "lockjournal",
	Doc:  "daemon flight-journal writes only in //aegis:serialized or provably-locked functions",
	Run:  runLockjournal,
}

// SerializedAnnotation is the doc-comment directive marking a function
// that only runs in the daemon's serialized (mutex-held) section.
const SerializedAnnotation = "//aegis:serialized"

// isSerializedAnnotated reports whether the function declaration carries
// the //aegis:serialized directive in its doc comment.
func isSerializedAnnotated(fd *ast.FuncDecl) bool {
	return hasDirective(fd, SerializedAnnotation)
}

// lockjournalPkgSuffix scopes the rule: only the daemon owns a serialized
// journal contract.
const lockjournalPkgSuffix = "internal/daemon"

// flightPkgSuffixLJ is the flight-journal package whose Record/Incident
// methods count as journal writes (suffix-matched so fixture stubs
// participate).
const flightPkgSuffixLJ = "internal/telemetry/flight"

func runLockjournal(pass *Pass) {
	if pass.Prog == nil || !pathHasSuffix(pass.Path, lockjournalPkgSuffix) {
		return
	}
	g := pass.Prog.CallGraph()
	module := pass.Pkg.Module

	// Classify every function of the daemon package.
	var nodes []*Node
	annotated := make(map[*Node]bool)
	lockPos := make(map[*Node]token.Pos) // first depth-0 mutex acquisition
	for _, n := range g.Nodes() {
		if n.Pkg != pass.Pkg {
			continue
		}
		nodes = append(nodes, n)
		if isSerializedAnnotated(n.Decl) {
			annotated[n] = true
		} else if pos, ok := depth0MutexLock(n.Pkg.Info, n.Decl); ok {
			lockPos[n] = pos
		}
	}

	held := lockjournalFixpoint(g, pass.Pkg, nodes, annotated, lockPos)

	for _, n := range nodes {
		for _, w := range collectJournalWrites(n.Pkg.Info, n.Decl) {
			fname := shortFuncName(n, module)
			w.name = shortName(w.name, module)
			switch {
			case w.async:
				pass.Reportf(w.pos, "flight-journal write %s launched by a go statement in %s; the goroutine runs outside the serialized section", w.name, fname)
			case w.inClosure:
				pass.Reportf(w.pos, "flight-journal write %s inside a func literal in %s; the literal can outlive the serialized section — hoist the write into the serialized caller", w.name, fname)
			case annotated[n]:
				// trusted
			case lockPos[n] != token.NoPos && w.pos > lockPos[n]:
				// after the depth-0 Lock
			case lockPos[n] != token.NoPos:
				pass.Reportf(w.pos, "flight-journal write %s in %s before the mutex is acquired", w.name, fname)
			case held[n]:
				// every incoming edge is clean and held
			default:
				pass.Reportf(w.pos, "flight-journal write %s in %s, which is neither //aegis:serialized nor provably holding the daemon mutex: %s",
					w.name, fname, unheldReason(g, n, pass.Pkg, annotated, lockPos, held, module))
			}
		}
	}
}

// lockjournalFixpoint computes, for functions that neither carry the
// annotation nor acquire the mutex themselves, whether every path into
// them holds the lock. Greatest fixpoint: start optimistic, strike
// functions with a missing, unclean, or unheld incoming edge, repeat
// until stable (iteration over sorted nodes keeps it deterministic).
func lockjournalFixpoint(g *CallGraph, pkg *Package, nodes []*Node, annotated map[*Node]bool, lockPos map[*Node]token.Pos) map[*Node]bool {
	held := make(map[*Node]bool, len(nodes))
	for _, n := range nodes {
		if !annotated[n] {
			if _, acquires := lockPos[n]; !acquires {
				held[n] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			if !held[n] {
				continue
			}
			ok := len(g.Callers(n)) > 0
			for _, ce := range g.Callers(n) {
				if ce.Edge.Dynamic || ce.Edge.InClosure || ce.Edge.Async || ce.Caller.Pkg != pkg {
					ok = false
					break
				}
				if annotated[ce.Caller] {
					continue
				}
				if lp, acquires := lockPos[ce.Caller]; acquires {
					if ce.Edge.Pos > lp {
						continue
					}
					ok = false
					break
				}
				if !held[ce.Caller] {
					ok = false
					break
				}
			}
			if !ok {
				held[n] = false
				changed = true
			}
		}
	}
	return held
}

// unheldReason explains why the fixpoint struck a function, naming the
// first offending incoming edge in deterministic order.
func unheldReason(g *CallGraph, n *Node, pkg *Package, annotated map[*Node]bool, lockPos map[*Node]token.Pos, held map[*Node]bool, module string) string {
	callers := g.Callers(n)
	if len(callers) == 0 {
		return "it has no callers in the call graph, so no lock context reaches it"
	}
	for _, ce := range callers {
		caller := shortFuncName(ce.Caller, module)
		switch {
		case ce.Edge.Dynamic:
			return fmt.Sprintf("it is reachable via conservative interface dispatch from %s", caller)
		case ce.Edge.Async:
			return fmt.Sprintf("it is launched on a goroutine by %s", caller)
		case ce.Edge.InClosure:
			return fmt.Sprintf("it is called from a func literal in %s", caller)
		case ce.Caller.Pkg != pkg:
			return fmt.Sprintf("it is called from outside the daemon package by %s", caller)
		case annotated[ce.Caller]:
			continue
		default:
			if lp, acquires := lockPos[ce.Caller]; acquires {
				if ce.Edge.Pos > lp {
					continue
				}
				return fmt.Sprintf("it is called by %s before the mutex is acquired", caller)
			}
			if !held[ce.Caller] {
				return fmt.Sprintf("its caller %s does not hold the mutex", caller)
			}
		}
	}
	return "its lock state cannot be established"
}

// journalWrite is one flight-journal write site inside a daemon function.
type journalWrite struct {
	pos       token.Pos
	name      string // "flight.Record" / "flight.Incident" style label
	inClosure bool
	async     bool
}

// collectJournalWrites finds every call of a flight-package Record or
// Incident method in the function body, with closure/go-statement
// attribution mirroring the call-graph builder's.
func collectJournalWrites(info *types.Info, fd *ast.FuncDecl) []journalWrite {
	var out []journalWrite
	asyncCalls := make(map[*ast.CallExpr]bool)
	var walk func(n ast.Node, inClosure bool)
	walk = func(n ast.Node, inClosure bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				asyncCalls[n.Call] = true
			case *ast.FuncLit:
				walk(n.Body, true)
				return false
			case *ast.CallExpr:
				if name, ok := journalWriteName(info, n); ok {
					out = append(out, journalWrite{
						pos: n.Pos(), name: name,
						inClosure: inClosure, async: asyncCalls[n],
					})
				}
			}
			return true
		})
	}
	walk(fd.Body, false)
	return out
}

// journalWriteName reports whether the call writes the flight journal and
// labels it (receiver type + method, e.g. "(*flight.Handle).Record").
func journalWriteName(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || (fn.Name() != "Record" && fn.Name() != "Incident") {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !pkgPathHasSuffix(fn.Pkg(), flightPkgSuffixLJ) {
		return "", false
	}
	return fn.FullName(), true
}

// depth0MutexLock returns the position of the first sync.Mutex/RWMutex
// Lock call at closure depth 0 of the function body.
func depth0MutexLock(info *types.Info, fd *ast.FuncDecl) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Name() != "Lock" || fn.Pkg() != nil && fn.Pkg().Path() != "sync" {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return true
		}
		pos, found = call.Pos(), true
		return false
	})
	return pos, found
}
