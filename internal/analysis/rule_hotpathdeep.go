package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotpathdeepRule extends the intra-procedural hotpath contract to the
// transitive closure: everything an //aegis:hotpath function reaches
// through static calls (and, conservatively, interface dispatch) must be
// free of the same allocating constructs, so the static gate finally
// matches what `make bench-alloc` measures dynamically.
//
// Traversal policy, per the call-graph construction rules in callgraph.go:
//
//   - Edges lexically inside func literals are skipped: the intra rule
//     already flags closure construction on hot paths, and the literal's
//     body is cold until invoked.
//   - Edges launched by go statements are skipped: a spawned goroutine's
//     allocations are not the hot path's synchronous work (and spawning
//     from a hot path is visible to the dynamic gate).
//   - Callees that are themselves //aegis:hotpath are traversed through
//     but not re-scanned — the intra rule owns their bodies, and scanning
//     twice would double-report.
//   - Interface-dispatch edges are followed (marked "~>" in the reported
//     chain); a call of a bare function value cannot be resolved at all
//     and is reported conservatively.
//   - An //aegis:allow(hotpathdeep) on a call-site line prunes that edge
//     (or silences that dynamic site) out of the closure.
//
// Each forbidden op is reported once, with the shortest call chain from
// the first hot root (in file order) that reaches it.
var hotpathdeepRule = &Rule{
	Name: "hotpathdeep",
	Doc:  "the transitive closure of //aegis:hotpath functions must avoid allocating constructs",
	Run:  runHotpathdeep,
}

func runHotpathdeep(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	g := pass.Prog.CallGraph()
	module := pass.Pkg.Module
	reported := make(map[token.Pos]bool)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpathAnnotated(fd) {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if root := g.Node(fn); root != nil {
				deepCheckHotpath(pass, g, root, module, reported)
			}
		}
	}
}

func deepCheckHotpath(pass *Pass, g *CallGraph, root *Node, module string, reported map[token.Pos]bool) {
	type item struct {
		n     *Node
		chain []chainHop
	}
	rootChain := []chainHop{{n: root}}

	// The intra rule cannot see through a function-value call in the root
	// either; report those sites conservatively here.
	reportHotpathDynSites(pass, root, rootChain, module, reported)

	visited := map[*Node]bool{root: true}
	queue := []item{{root, rootChain}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		for _, e := range it.n.Edges {
			if e.InClosure || e.Async {
				continue
			}
			if pass.AllowedAt(e.Pos) {
				continue
			}
			callee := e.Callee
			if visited[callee] {
				continue
			}
			visited[callee] = true
			chain := extendChain(it.chain, callee, e.Dynamic)
			if !isHotpathAnnotated(callee.Decl) {
				scanAllocOps(callee.Pkg.Info, callee.Decl, func(pos token.Pos, op string) {
					if reported[pos] {
						return
					}
					reported[pos] = true
					pass.Reportf(pos, "%s %s on the hot path (call chain: %s)",
						shortFuncName(callee, module), op, chainString(chain, module))
				})
				reportHotpathDynSites(pass, callee, chain, module, reported)
			}
			queue = append(queue, item{callee, chain})
		}
	}
}

// reportHotpathDynSites conservatively reports calls of function-typed
// values reached on a hot path: the callee cannot be resolved statically,
// so it may allocate.
func reportHotpathDynSites(pass *Pass, n *Node, chain []chainHop, module string, reported map[token.Pos]bool) {
	for _, ds := range n.Dynamic {
		if ds.InClosure || ds.Async || reported[ds.Pos] {
			continue
		}
		if pass.AllowedAt(ds.Pos) {
			continue
		}
		reported[ds.Pos] = true
		pass.Reportf(ds.Pos, "%s calls function value %s on the hot path; the callee cannot be resolved statically and may allocate (call chain: %s)",
			shortFuncName(n, module), ds.Expr, chainString(chain, module))
	}
}
