package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// detrandRule bans sources of nondeterminism inside the deterministic
// simulation packages (internal/rng, fuzzer, profiler, obfuscator, sev,
// hpc, stats, workload, faultinject), whose outputs must replay
// byte-identically from (seed, config) alone:
//
//   - wall-clock and timer reads (time.Now, time.Since, time.Until,
//     time.Tick, time.After, time.AfterFunc, time.NewTimer,
//     time.NewTicker) — a telemetry-only timing site is the one legitimate
//     use, and must be suppressed with a reason;
//   - select statements with a default clause, which race goroutine
//     scheduling against channel readiness;
//   - math/rand and math/rand/v2 anywhere in the module: all randomness
//     must derive from internal/rng streams (pure functions of seed and
//     labels), so importing math/rand is banned everywhere outside
//     internal/rng, and the global draws are banned even there.
var detrandRule = &Rule{
	Name: "detrand",
	Doc:  "no wall-clock, global math/rand, or racing select in deterministic packages",
	Run:  runDetrand,
}

// clockFuncs are the time package functions that read the wall clock or
// start timers.
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Tick": true,
	"After": true, "AfterFunc": true, "NewTimer": true, "NewTicker": true,
}

// randConstructors are the math/rand functions that build a private
// generator rather than drawing from the global one; they are tolerated
// inside internal/rng only.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func runDetrand(pass *Pass) {
	deterministic := IsDeterministicPackage(pass.Path)
	isRng := pathHasSuffix(pass.Path, "internal/rng")

	for _, f := range pass.Files {
		// math/rand is policed module-wide: the import itself is the
		// violation outside internal/rng.
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || (p != "math/rand" && p != "math/rand/v2") {
				continue
			}
			if !isRng {
				pass.Reportf(imp.Pos(), "import of %s; derive randomness from internal/rng streams (rand.New is allowed only inside internal/rng)", p)
			}
		}

		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj, ok := pass.Info.Uses[n.Sel]
				if !ok || obj.Pkg() == nil {
					return true
				}
				switch obj.Pkg().Path() {
				case "time":
					if deterministic && clockFuncs[obj.Name()] {
						pass.Reportf(n.Pos(), "call to time.%s in deterministic package %s; outputs must be pure functions of (seed, config)", obj.Name(), lastElem(pass.Path))
					}
				case "math/rand", "math/rand/v2":
					if _, isFn := obj.(*types.Func); isFn && isRng && !randConstructors[obj.Name()] {
						pass.Reportf(n.Pos(), "global math/rand draw rand.%s; use an explicit rng stream", obj.Name())
					}
				}
			case *ast.SelectStmt:
				if !deterministic {
					return true
				}
				for _, clause := range n.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
						pass.Reportf(n.Pos(), "select with default clause races goroutine scheduling in deterministic package %s", lastElem(pass.Path))
					}
				}
			}
			return true
		})
	}
}
