package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotpathRule is the static twin of the dynamic allocation gate
// (alloc_gate_test.go / `make bench-alloc`): functions annotated with a
// //aegis:hotpath doc-comment line must stay allocation-free in steady
// state, so inside their bodies the rule bans the allocation shapes the
// PR-4 rebuild eliminated:
//
//   - fmt formatting calls (Sprintf, Sprint, Sprintln, Errorf, Appendf,
//     Append, Appendln) — cold error branches may be suppressed with a
//     reason;
//   - []byte <-> string conversions, which copy;
//   - map construction (make or composite literal) and closure literals,
//     which heap-allocate;
//   - append whose destination is not a variable local to the annotated
//     function (a field, a package-level var, or a captured variable):
//     growth of an escaping slice allocates, and the zero-alloc kernels
//     instead reuse caller-owned or receiver-owned scratch.
//
// The annotation is load-bearing documentation: every function gated by a
// TestZeroAlloc* benchmark carries it, so the dynamic gate and this rule
// police the same set. The hotpathdeep rule extends the same op scan to
// everything an annotated function transitively calls.
var hotpathRule = &Rule{
	Name: "hotpath",
	Doc:  "functions annotated //aegis:hotpath must avoid allocating constructs",
	Run:  runHotpath,
}

// fmtAllocFuncs are fmt functions that allocate their result.
var fmtAllocFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
	"Appendf": true, "Append": true, "Appendln": true,
}

// HotpathAnnotation is the doc-comment directive marking a zero-alloc
// steady-state function.
const HotpathAnnotation = "//aegis:hotpath"

// isHotpathAnnotated reports whether the function declaration carries the
// //aegis:hotpath directive in its doc comment.
func isHotpathAnnotated(fd *ast.FuncDecl) bool {
	return hasDirective(fd, HotpathAnnotation)
}

// hasDirective reports whether the function declaration carries the given
// //aegis:* directive in its doc comment.
func hasDirective(fd *ast.FuncDecl, directive string) bool {
	if fd == nil || fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

func runHotpath(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpathAnnotated(fd) {
				continue
			}
			scanAllocOps(pass.Info, fd, func(pos token.Pos, op string) {
				pass.Reportf(pos, "hot path %s %s", fd.Name.Name, op)
			})
		}
	}
}

// scanAllocOps walks one function body reporting every allocating
// construct the hot-path contract bans, as (position, op description)
// pairs. It is shared between the intra-procedural hotpath rule (which
// prefixes "hot path <fn>") and hotpathdeep (which appends the call
// chain). Func-literal bodies are not descended: the literal itself is
// reported, and its body is cold until invoked.
func scanAllocOps(info *types.Info, fd *ast.FuncDecl, report func(pos token.Pos, op string)) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "constructs a closure; closures heap-allocate their captures")
			return false // the literal's body is cold until invoked
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					report(n.Pos(), "constructs a map literal; maps heap-allocate")
				}
			}
		case *ast.CallExpr:
			scanAllocCall(info, fd, n, report)
		}
		return true
	})
}

func scanAllocCall(info *types.Info, fd *ast.FuncDecl, call *ast.CallExpr, report func(pos token.Pos, op string)) {
	// fmt formatting calls.
	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil &&
		fn.Pkg().Path() == "fmt" && fmtAllocFuncs[fn.Name()] {
		report(call.Pos(), fmt.Sprintf("calls fmt.%s, which allocates; move formatting off the steady-state path or suppress a cold branch with a reason", fn.Name()))
		return
	}
	// make(map[...]...).
	if isBuiltin(info, call, "make") && len(call.Args) > 0 {
		if tv, ok := info.Types[call.Args[0]]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				report(call.Pos(), "constructs a map with make; maps heap-allocate")
			}
		}
		return
	}
	// append to a destination that escapes the function.
	if isBuiltin(info, call, "append") && len(call.Args) > 0 {
		if dst, desc := nonLocalAppendDst(info, fd, call.Args[0]); dst {
			report(call.Pos(), fmt.Sprintf("appends to %s %s; growth allocates — reuse receiver- or caller-owned scratch instead", desc, types.ExprString(call.Args[0])))
		}
		return
	}
	// []byte <-> string conversions.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if argTV, ok := info.Types[call.Args[0]]; ok {
			to, from := tv.Type, argTV.Type
			if (isString(to) && isByteSlice(from)) || (isByteSlice(to) && isString(from)) {
				report(call.Pos(), fmt.Sprintf("converts %s to %s, which copies", from, to))
			}
		}
	}
}

// nonLocalAppendDst reports whether the append destination lives outside
// the enclosing function (field, package-level, or captured variable) and
// describes it. Slice and paren expressions are unwrapped so the
// `append(x[:0], ...)` reslice idiom is judged by its base.
func nonLocalAppendDst(info *types.Info, fd *ast.FuncDecl, dst ast.Expr) (bool, string) {
	for {
		switch d := dst.(type) {
		case *ast.ParenExpr:
			dst = d.X
		case *ast.SliceExpr:
			dst = d.X
		case *ast.Ident:
			v, ok := info.Uses[d].(*types.Var)
			if !ok {
				if _, ok := info.Defs[d]; ok {
					return false, "" // := defines a fresh local
				}
				return false, ""
			}
			if v.Pos() >= fd.Pos() && v.Pos() < fd.End() {
				return false, ""
			}
			return true, "non-local variable"
		case *ast.SelectorExpr:
			return true, "field or imported variable"
		case *ast.IndexExpr:
			return true, "indexed element"
		default:
			return false, ""
		}
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
