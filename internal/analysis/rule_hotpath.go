package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// hotpathRule is the static twin of the dynamic allocation gate
// (alloc_gate_test.go / `make bench-alloc`): functions annotated with a
// //aegis:hotpath doc-comment line must stay allocation-free in steady
// state, so inside their bodies the rule bans the allocation shapes the
// PR-4 rebuild eliminated:
//
//   - fmt formatting calls (Sprintf, Sprint, Sprintln, Errorf, Appendf,
//     Append, Appendln) — cold error branches may be suppressed with a
//     reason;
//   - []byte <-> string conversions, which copy;
//   - map construction (make or composite literal) and closure literals,
//     which heap-allocate;
//   - append whose destination is not a variable local to the annotated
//     function (a field, a package-level var, or a captured variable):
//     growth of an escaping slice allocates, and the zero-alloc kernels
//     instead reuse caller-owned or receiver-owned scratch.
//
// The annotation is load-bearing documentation: every function gated by a
// TestZeroAlloc* benchmark carries it, so the dynamic gate and this rule
// police the same set.
var hotpathRule = &Rule{
	Name: "hotpath",
	Doc:  "functions annotated //aegis:hotpath must avoid allocating constructs",
	Run:  runHotpath,
}

// fmtAllocFuncs are fmt functions that allocate their result.
var fmtAllocFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
	"Appendf": true, "Append": true, "Appendln": true,
}

// HotpathAnnotation is the doc-comment directive marking a zero-alloc
// steady-state function.
const HotpathAnnotation = "//aegis:hotpath"

// isHotpathAnnotated reports whether the function declaration carries the
// //aegis:hotpath directive in its doc comment.
func isHotpathAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == HotpathAnnotation || strings.HasPrefix(c.Text, HotpathAnnotation+" ") {
			return true
		}
	}
	return false
}

func runHotpath(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpathAnnotated(fd) {
				continue
			}
			checkHotpathBody(pass, fd)
		}
	}
}

func checkHotpathBody(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "hot path %s constructs a closure; closures heap-allocate their captures", fd.Name.Name)
			return false // the literal's body is cold until invoked
		case *ast.CompositeLit:
			if tv, ok := pass.Info.Types[n]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "hot path %s constructs a map literal; maps heap-allocate", fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkHotpathCall(pass, fd, n)
		}
		return true
	})
}

func checkHotpathCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	// fmt formatting calls.
	if fn := calleeFunc(pass.Info, call); fn != nil && fn.Pkg() != nil &&
		fn.Pkg().Path() == "fmt" && fmtAllocFuncs[fn.Name()] {
		pass.Reportf(call.Pos(), "hot path %s calls fmt.%s, which allocates; move formatting off the steady-state path or suppress a cold branch with a reason", fd.Name.Name, fn.Name())
		return
	}
	// make(map[...]...).
	if isBuiltin(pass.Info, call, "make") && len(call.Args) > 0 {
		if tv, ok := pass.Info.Types[call.Args[0]]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				pass.Reportf(call.Pos(), "hot path %s constructs a map with make; maps heap-allocate", fd.Name.Name)
			}
		}
		return
	}
	// append to a destination that escapes the function.
	if isBuiltin(pass.Info, call, "append") && len(call.Args) > 0 {
		if dst, desc := nonLocalAppendDst(pass, fd, call.Args[0]); dst {
			pass.Reportf(call.Pos(), "hot path %s appends to %s %s; growth allocates — reuse receiver- or caller-owned scratch instead", fd.Name.Name, desc, types.ExprString(call.Args[0]))
		}
		return
	}
	// []byte <-> string conversions.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if argTV, ok := pass.Info.Types[call.Args[0]]; ok {
			to, from := tv.Type, argTV.Type
			if (isString(to) && isByteSlice(from)) || (isByteSlice(to) && isString(from)) {
				pass.Reportf(call.Pos(), "hot path %s converts %s to %s, which copies", fd.Name.Name, from, to)
			}
		}
	}
}

// nonLocalAppendDst reports whether the append destination lives outside
// the annotated function (field, package-level, or captured variable) and
// describes it. Slice and paren expressions are unwrapped so the
// `append(x[:0], ...)` reslice idiom is judged by its base.
func nonLocalAppendDst(pass *Pass, fd *ast.FuncDecl, dst ast.Expr) (bool, string) {
	for {
		switch d := dst.(type) {
		case *ast.ParenExpr:
			dst = d.X
		case *ast.SliceExpr:
			dst = d.X
		case *ast.Ident:
			v, ok := pass.Info.Uses[d].(*types.Var)
			if !ok {
				if _, ok := pass.Info.Defs[d]; ok {
					return false, "" // := defines a fresh local
				}
				return false, ""
			}
			if v.Pos() >= fd.Pos() && v.Pos() < fd.End() {
				return false, ""
			}
			return true, "non-local variable"
		case *ast.SelectorExpr:
			return true, "field or imported variable"
		case *ast.IndexExpr:
			return true, "indexed element"
		default:
			return false, ""
		}
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
