package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/repro/aegis/internal/artifact"
)

// Incremental linting: per-package results are cached in the PR-9
// artifact store under the "lint-result" kind, content-addressed by
// everything that can change the package's analysis — the rule-set
// version and names, the package identity, and the file contents of the
// package plus its whole transitive module import closure. The closure is
// in the address because the interprocedural rules see through package
// boundaries: editing a dependency must re-analyze its dependents, while
// the cached result of an untouched subtree stays valid. A warm run with
// no edits is therefore all-hit and byte-identical to a cold one; an edit
// re-analyzes exactly the packages whose closure contains the edited
// file.

// LintResultKind is the artifact kind under which per-package lint
// results are cached (see the artifact-kind table in DESIGN.md).
const LintResultKind = "lint-result"

// lintRulesetVersion versions the rule implementations for cache
// invalidation: bump it whenever any rule's logic or message format
// changes, since cached diagnostics embed rendered messages.
const lintRulesetVersion = "aegis-lint-rules/v2"

// lintFingerprint content-addresses one package's analysis inputs.
func lintFingerprint(prog *Program, pkg *Package, rules []*Rule) (string, error) {
	f := artifact.NewFingerprint(LintResultKind)
	f.String("ruleset", lintRulesetVersion)
	for _, r := range rules {
		f.String("rule", r.Name)
	}
	f.String("package", pkg.Path)
	closure := prog.Closure(pkg)
	paths := make([]string, 0, len(closure))
	for p := range closure {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		dep := prog.PackageByPath(p)
		if dep == nil {
			continue
		}
		f.String("dep", dep.Path)
		for _, name := range dep.Filenames {
			data, err := os.ReadFile(name)
			if err != nil {
				return "", fmt.Errorf("fingerprinting %s: %w", pkg.Path, err)
			}
			f.String("file", filepath.Base(name))
			f.Bytes("content", data)
		}
	}
	return f.Sum(), nil
}

// relocatePath maps an absolute file name under root to a slash-separated
// relative one, so cached results survive a checkout move.
func relocatePath(name, root string) string {
	if r, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(r, "..") {
		return filepath.ToSlash(r)
	}
	return name
}

// unrelocatePath is the inverse of relocatePath.
func unrelocatePath(name, root string) string {
	if filepath.IsAbs(name) {
		return name
	}
	return filepath.Join(root, filepath.FromSlash(name))
}

// mapKeyFile rewrites the file component of a "file:line:rule" used-key.
func mapKeyFile(key string, fn func(string) string) string {
	i := strings.LastIndexByte(key, ':')
	if i < 0 {
		return key
	}
	j := strings.LastIndexByte(key[:i], ':')
	if j < 0 {
		return key
	}
	return fn(key[:j]) + key[j:]
}

// relocateResult maps every path in a PackageResult through fn.
func relocateResult(res PackageResult, fn func(string) string) PackageResult {
	out := res
	out.Diagnostics = make([]Diagnostic, len(res.Diagnostics))
	for i, d := range res.Diagnostics {
		d.Pos.Filename = fn(d.Pos.Filename)
		out.Diagnostics[i] = d
	}
	out.Allows = make([]AllowRecord, len(res.Allows))
	for i, a := range res.Allows {
		a.Pos.Filename = fn(a.Pos.Filename)
		out.Allows[i] = a
	}
	out.UsedKeys = make([]string, len(res.UsedKeys))
	for i, k := range res.UsedKeys {
		out.UsedKeys[i] = mapKeyFile(k, fn)
	}
	return out
}

// encodeLintResult packs one package's result into a lint-result
// artifact; paths are stored relative to root.
func encodeLintResult(res PackageResult, root, fingerprint string) (*artifact.Artifact, error) {
	rel := relocateResult(res, func(p string) string { return relocatePath(p, root) })
	data, err := json.Marshal(rel)
	if err != nil {
		return nil, fmt.Errorf("encoding lint result for %s: %w", res.Path, err)
	}
	a := artifact.New(LintResultKind, fingerprint)
	a.Meta["package"] = res.Path
	a.Meta["ruleset"] = lintRulesetVersion
	a.Meta["diagnostics"] = strconv.Itoa(len(res.Diagnostics))
	a.Meta["result"] = string(data)
	return a, nil
}

// decodeLintResult unpacks a cached result, rehydrating paths under root.
func decodeLintResult(a *artifact.Artifact, root string) (PackageResult, error) {
	var rel PackageResult
	if err := json.Unmarshal([]byte(a.Meta["result"]), &rel); err != nil {
		return PackageResult{}, fmt.Errorf("decoding lint result: %w", err)
	}
	return relocateResult(rel, func(p string) string { return unrelocatePath(p, root) }), nil
}

// CacheStats reports one cached run's hit/miss funnel.
type CacheStats struct {
	Hits   int
	Misses int
}

// AnalyzeCachedPackage returns one package's result, from the store when
// the fingerprint hits and by running the rules (then populating the
// store) when it misses. A corrupt or undecodable artifact is a miss,
// mirroring the store's own torn-file policy.
func AnalyzeCachedPackage(prog *Program, pkg *Package, rules []*Rule, store *artifact.Store, root string, stats *CacheStats) (PackageResult, error) {
	fp, err := lintFingerprint(prog, pkg, rules)
	if err != nil {
		return PackageResult{}, err
	}
	if a, ok := store.Get(LintResultKind, fp); ok {
		if res, err := decodeLintResult(a, root); err == nil {
			stats.Hits++
			return res, nil
		}
	}
	stats.Misses++
	res := AnalyzePackage(prog, pkg, rules)
	a, err := encodeLintResult(res, root, fp)
	if err != nil {
		return PackageResult{}, err
	}
	if err := store.Put(a); err != nil {
		return PackageResult{}, fmt.Errorf("caching lint result for %s: %w", pkg.Path, err)
	}
	return res, nil
}
