package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// errwrapRule enforces the error-chain conventions that keep sentinel
// errors matchable across package boundaries:
//
//   - an error passed to fmt.Errorf must be formatted with %w, not %v or
//     %s, so callers can unwrap it with errors.Is / errors.As;
//   - error values must not be compared with == or != (or switched on):
//     wrapped errors never compare equal, so sentinel checks must go
//     through errors.Is. Comparisons against nil are of course fine.
var errwrapRule = &Rule{
	Name: "errwrap",
	Doc:  "fmt.Errorf wraps errors with %w; sentinel errors are compared with errors.Is",
	Run:  runErrwrap,
}

func runErrwrap(pass *Pass) {
	errType := types.Universe.Lookup("error").Type()
	isErr := func(e ast.Expr) bool {
		tv, ok := pass.Info.Types[e]
		if !ok || tv.Value != nil || tv.IsNil() {
			return false
		}
		// Both concrete implementations and the error interface itself
		// count: either way == is the wrong comparison and %v the wrong
		// verb.
		return types.AssignableTo(tv.Type, errType)
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(pass.Info, n); fn != nil && fn.FullName() == "fmt.Errorf" {
					checkErrorfVerbs(pass, n, isErr)
				}
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if isErr(n.X) && isErr(n.Y) {
					pass.Reportf(n.Pos(), "error values compared with %s never match wrapped errors; use errors.Is", n.Op)
				}
			case *ast.SwitchStmt:
				if n.Tag != nil && isErr(n.Tag) {
					pass.Reportf(n.Tag.Pos(), "switch on an error value never matches wrapped errors; use errors.Is chains")
				}
			}
			return true
		})
	}
}

// checkErrorfVerbs aligns the format verbs of a fmt.Errorf call with its
// arguments and flags error-typed arguments formatted with anything but
// %w.
func checkErrorfVerbs(pass *Pass, call *ast.CallExpr, isErr func(ast.Expr) bool) {
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs := formatVerbs(constant.StringVal(tv.Value))
	args := call.Args[1:]
	for i, verb := range verbs {
		if i >= len(args) {
			break // malformed format; go vet reports the arity mismatch
		}
		if verb != 'w' && verb != '*' && isErr(args[i]) {
			pass.Reportf(args[i].Pos(), "error argument formatted with %%%c; use %%w so callers can errors.Is/As through the wrap", verb)
		}
	}
}

// formatVerbs returns one rune per argument the format string consumes, in
// order: the verb itself, or '*' for a width/precision argument.
func formatVerbs(format string) []rune {
	var verbs []rune
	rs := []rune(format)
	for i := 0; i < len(rs); i++ {
		if rs[i] != '%' {
			continue
		}
		i++
		// flags, width, precision — a '*' consumes an argument.
		for i < len(rs) {
			r := rs[i]
			if r == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if r == '+' || r == '-' || r == '#' || r == ' ' || r == '0' ||
				r == '.' || (r >= '1' && r <= '9') {
				i++
				continue
			}
			break
		}
		if i >= len(rs) {
			break
		}
		if rs[i] == '%' {
			continue // literal %%
		}
		verbs = append(verbs, rs[i])
	}
	return verbs
}
