package analysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Tests for the v2 CLI surface: SARIF output, the lint-result artifact
// cache, and the -audit suppression inventory.

func TestCLISARIF(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":                "module tmpmod\n\ngo 1.21\n",
		"internal/fuzzer/fz.go": dirtyFuzzer,
	})
	code, stdout, stderr := runCLI(t, "-C", root, "-sarif", "./...")
	if code != ExitFindings {
		t.Fatalf("exit = %d, want %d\nstderr: %s", code, ExitFindings, stderr)
	}
	var doc struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("invalid SARIF JSON: %v\n%s", err, stdout)
	}
	if doc.Version != SARIFVersion {
		t.Errorf("version = %q, want %q", doc.Version, SARIFVersion)
	}
	if doc.Schema == "" || len(doc.Runs) != 1 {
		t.Fatalf("want $schema and exactly one run, got schema=%q runs=%d", doc.Schema, len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "aegis-lint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) < len(AllRules()) {
		t.Errorf("driver lists %d rules, want at least %d", len(run.Tool.Driver.Rules), len(AllRules()))
	}
	if len(run.Results) == 0 {
		t.Fatal("no results for a dirty tree")
	}
	r := run.Results[0]
	if r.RuleID != "detrand" || r.Level != "error" || r.Message.Text == "" {
		t.Errorf("unexpected first result: %+v", r)
	}
	if r.RuleIndex < 0 || r.RuleIndex >= len(run.Tool.Driver.Rules) ||
		run.Tool.Driver.Rules[r.RuleIndex].ID != r.RuleID {
		t.Errorf("ruleIndex %d does not resolve to %q in the driver rules", r.RuleIndex, r.RuleID)
	}
	if len(r.Locations) != 1 {
		t.Fatalf("result has %d locations, want 1", len(r.Locations))
	}
	loc := r.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/fuzzer/fz.go" {
		t.Errorf("uri = %q, want repo-relative internal/fuzzer/fz.go", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 5 || loc.Region.StartColumn == 0 {
		t.Errorf("region = %+v, want line 5 with a column", loc.Region)
	}
}

func TestCLISARIFCleanTree(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":              "module tmpmod\n\ngo 1.21\n",
		"internal/clean/c.go": cleanFile,
	})
	code, stdout, _ := runCLI(t, "-C", root, "-sarif", "./...")
	if code != ExitClean {
		t.Fatalf("exit = %d, want %d", code, ExitClean)
	}
	if !strings.Contains(stdout, `"results": []`) {
		t.Errorf("clean SARIF run should carry an empty results array, not null:\n%s", stdout)
	}
}

func TestCLICacheWarmRunIsAllHitAndByteIdentical(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":                "module tmpmod\n\ngo 1.21\n",
		"internal/fuzzer/fz.go": dirtyFuzzer,
		"internal/clean/c.go":   cleanFile,
	})
	store := filepath.Join(root, "lint.aegis-artifact")

	code1, out1, err1 := runCLI(t, "-C", root, "-cache", "-store", store, "./...")
	if code1 != ExitFindings {
		t.Fatalf("cold exit = %d, want %d\nstderr: %s", code1, ExitFindings, err1)
	}
	if !strings.Contains(err1, "0 hit, 2 miss") {
		t.Errorf("cold run funnel = %q, want 0 hit, 2 miss", err1)
	}

	code2, out2, err2 := runCLI(t, "-C", root, "-cache", "-store", store, "./...")
	if code2 != ExitFindings {
		t.Fatalf("warm exit = %d, want %d", code2, ExitFindings)
	}
	if !strings.Contains(err2, "2 hit, 0 miss") {
		t.Errorf("warm run funnel = %q, want 2 hit, 0 miss", err2)
	}
	if out1 != out2 {
		t.Errorf("warm run diagnostics differ from cold run:\n--- cold\n%s--- warm\n%s", out1, out2)
	}

	// Editing one package re-analyzes only it; the untouched package hits.
	if err := os.WriteFile(filepath.Join(root, "internal/clean/c.go"),
		[]byte(cleanFile+"\nfunc Add2(a, b int) int { return a + b }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code3, _, err3 := runCLI(t, "-C", root, "-cache", "-store", store, "./...")
	if code3 != ExitFindings {
		t.Fatalf("post-edit exit = %d, want %d", code3, ExitFindings)
	}
	if !strings.Contains(err3, "1 hit, 1 miss") {
		t.Errorf("post-edit funnel = %q, want 1 hit, 1 miss", err3)
	}
}

func TestCLICacheInvalidatesDependents(t *testing.T) {
	// dep is imported by app: editing dep must re-analyze both, because
	// the interprocedural rules read through the import closure.
	root := writeTree(t, map[string]string{
		"go.mod":     "module tmpmod\n\ngo 1.21\n",
		"dep/d.go":   "package dep\n\nfunc D() int { return 1 }\n",
		"app/a.go":   "package app\n\nimport \"tmpmod/dep\"\n\nfunc A() int { return dep.D() }\n",
		"other/o.go": "package other\n\nfunc O() {}\n",
	})
	store := filepath.Join(root, "lint.aegis-artifact")
	if code, _, err1 := runCLI(t, "-C", root, "-cache", "-store", store, "./..."); code != ExitClean {
		t.Fatalf("cold exit = %d\nstderr: %s", code, err1)
	}
	if err := os.WriteFile(filepath.Join(root, "dep/d.go"),
		[]byte("package dep\n\nfunc D() int { return 2 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err2 := runCLI(t, "-C", root, "-cache", "-store", store, "./...")
	if !strings.Contains(err2, "1 hit, 2 miss") {
		t.Errorf("after dep edit funnel = %q, want 1 hit, 2 miss (dep and app re-analyzed, other hits)", err2)
	}
}

const suppressedFuzzer = `package fuzzer

import "time"

//aegis:allow(detrand) wall-clock feeds telemetry only, never simulation state
var T = time.Now()
`

func TestCLIAudit(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":                "module tmpmod\n\ngo 1.21\n",
		"internal/fuzzer/fz.go": suppressedFuzzer,
		"internal/clean/c.go": "package clean\n\n" +
			"//aegis:allow(errwrap) stale suppression retained to exercise the audit\n" +
			"func Add(a, b int) int { return a + b }\n",
	})
	code, stdout, stderr := runCLI(t, "-C", root, "-audit", "./...")
	if code != ExitClean {
		t.Fatalf("audit exit = %d, want %d\nstderr: %s", code, ExitClean, stderr)
	}
	var report struct {
		Schema  string `json:"schema"`
		Root    string `json:"root"`
		Ruleset string `json:"ruleset"`
		Allows  []struct {
			Rule   string `json:"rule"`
			File   string `json:"file"`
			Line   int    `json:"line"`
			Reason string `json:"reason"`
			Active bool   `json:"active"`
		} `json:"allows"`
	}
	if err := json.Unmarshal([]byte(stdout), &report); err != nil {
		t.Fatalf("invalid audit JSON: %v\n%s", err, stdout)
	}
	if report.Schema != AuditSchema {
		t.Errorf("schema = %q, want %q", report.Schema, AuditSchema)
	}
	if report.Root != root || report.Ruleset == "" {
		t.Errorf("root/ruleset = %q/%q", report.Root, report.Ruleset)
	}
	if len(report.Allows) != 2 {
		t.Fatalf("audit lists %d allows, want 2:\n%s", len(report.Allows), stdout)
	}
	byRule := map[string]int{}
	for i, a := range report.Allows {
		byRule[a.Rule] = i
		if a.Reason == "" || a.Line == 0 {
			t.Errorf("allow %d missing reason/line: %+v", i, a)
		}
	}
	if a := report.Allows[byRule["detrand"]]; !a.Active || a.File != "internal/fuzzer/fz.go" {
		t.Errorf("detrand allow should be active in internal/fuzzer/fz.go: %+v", a)
	}
	if a := report.Allows[byRule["errwrap"]]; a.Active {
		t.Errorf("stale errwrap allow should be inactive: %+v", a)
	}
}
